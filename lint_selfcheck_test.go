package dataai

import (
	"testing"

	"dataai/internal/lint"
)

// TestLintSelfCheck runs the full static-analysis suite (internal/lint)
// over every package in the module, exactly as `go run ./cmd/dataailint
// ./...` does. Its presence makes the determinism, error-handling, and
// concurrency invariants part of tier-1 verification: introducing a
// time.Now into internal/experiments, an unchecked error, or an
// unbalanced mutex fails `go test ./...`, not just a CI step someone has
// to remember to run.
func TestLintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	// The full suite must be exactly the eight analyzers the docs and
	// fixtures cover; shrinking it should fail loudly, not silently
	// weaken the gate.
	if got := len(lint.Analyzers()); got != 8 {
		var names []string
		for _, a := range lint.Analyzers() {
			names = append(names, a.Name)
		}
		t.Fatalf("suite has %d analyzers (%v), want 8", got, names)
	}
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) < 20 {
		// The module has ~25 packages; a short list means the loader
		// silently missed most of the tree and the gate is not gating.
		t.Fatalf("loaded only %d packages; loader lost the module tree", len(pkgs))
	}
	// RunAudited matches what `go run ./cmd/dataailint ./...` does: the
	// full suite plus the stale-suppression audit, so a //lint:ignore
	// whose finding has been fixed also fails tier-1.
	diags := lint.RunAudited(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("run `go run ./cmd/dataailint ./...` locally; suppress a justified finding with //lint:ignore <check> <reason>")
	}
}
