#!/usr/bin/env bash
# The single local CI entrypoint: formatting, vet, build, the repo's own
# static-analysis suite (cmd/dataailint), and the full test suite under
# the race detector. ROADMAP.md's tier-1 line points here; a clean run of
# this script is the definition of "no worse than the seed".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== dataailint ./..."
go run ./cmd/dataailint ./...

echo "== dataailint -sarif (well-formed machine output)"
# A clean run still emits the full rule table; a SARIF consumer can see
# what was checked. grep pins the envelope, the unit tests pin the rest.
go run ./cmd/dataailint -sarif ./... > /tmp/dataai_lint.sarif
grep -q '"name": "dataailint"' /tmp/dataai_lint.sarif
grep -q 'sarif-2.1.0' /tmp/dataai_lint.sarif
rm -f /tmp/dataai_lint.sarif

echo "== dataailint -fix idempotence (no edits on a clean tree)"
# -fix on a tree with no findings must not touch a single byte; if it
# does, either the suite is not clean or the fix engine is not
# convergent. Either way the diff fails the gate.
go run ./cmd/dataailint -fix ./...
git diff --exit-code

echo "== go test -race ./..."
go test -race ./...

echo "== resilience stress under race (repeated runs)"
# The fault injector, resilient middleware, and single-flight cache are
# the repo's most mutex-dense code; hammer them a few extra times under
# the race detector so scheduling-dependent interleavings get more
# chances to surface.
go test -race -count=3 ./internal/faults ./internal/resilient
go test -race -count=3 -run 'SingleFlight|Parallel' ./internal/llm ./internal/semop

echo "== servesim smoke (routed cluster end-to-end)"
# One routed run with faults exercises the whole serving stack from the
# CLI: event engine, online router, fault plan, breakers, re-routing.
go build -o /tmp/dataai_servesim ./cmd/servesim
/tmp/dataai_servesim -policy routed -instances 4 -router breaker-aware -faults severe -n 200 -rate 60 > /dev/null

echo "== servesim trace (invariants + serial vs parallel-8 byte-identical)"
# The same severe routed run with -trace -decisions: servesim runs the
# structural invariant checker (internal/obs Check) over the recorded
# timeline — including the decision invariants, since -decisions attaches
# the routing log to the tracer — and refuses to write a malformed trace;
# running it again at -parallel 8 (eight concurrent replicas, each with
# its own decision log, traces compared in-process, replica 0 emitted)
# and diffing the two files pins the observability layer's byte-identical
# determinism contract end to end.
/tmp/dataai_servesim -policy routed -instances 4 -router breaker-aware -faults severe -n 200 -rate 60 \
    -decisions -trace /tmp/dataai_trace_serial.json > /dev/null 2>/dev/null
/tmp/dataai_servesim -policy routed -instances 4 -router breaker-aware -faults severe -n 200 -rate 60 \
    -decisions -trace /tmp/dataai_trace_par.json -parallel 8 > /dev/null 2>/dev/null
diff /tmp/dataai_trace_serial.json /tmp/dataai_trace_par.json
# The decision annotations actually reached the trace: request spans
# carry the decision seq / chosen instance args.
grep -q '"decision":' /tmp/dataai_trace_serial.json
grep -q '"inst":' /tmp/dataai_trace_serial.json
# A trace is non-trivial and well-formed: it opens the Chrome trace-event
# envelope and carries events (full JSON validity is pinned by the unit
# tests in internal/obs and cmd/benchall).
head -c 16 /tmp/dataai_trace_serial.json | grep -q '{"traceEvents"'
rm -f /tmp/dataai_trace_serial.json /tmp/dataai_trace_par.json

echo "== decision replay smoke (counterfactual regret from the CLI)"
# The decision-tracing stack end to end: record every routing decision of
# a severe routed run, replay each forced to its first runner-up at 8
# workers, and print the regret tables. Exact output checks: the replay
# count must equal the decision count (rank-2 forcing only), and the
# regret tables must render.
/tmp/dataai_servesim -policy routed -instances 4 -router breaker-aware -faults severe -n 160 -rate 60 \
    -decisions -counterfactual-k 2 -regret-top 5 -parallel 8 > /tmp/dataai_decisions.txt
grep -q 'decision regret (counterfactual replay' /tmp/dataai_decisions.txt
grep -q 'top 5 decisions by regret' /tmp/dataai_decisions.txt
awk -F'  +' '/decisions \/ replays/ {split($2, a, "/"); if (a[1] != a[2] || a[1]+0 == 0) exit 1}' /tmp/dataai_decisions.txt
rm -f /tmp/dataai_decisions.txt

echo "== admission smoke (token bucket sheds 2x overload; FCFS queues it)"
# The multi-tenant stack from the CLI: at ~2x the cluster's sustainable
# rate, a token-bucket router must turn requests away while the
# no-admission baseline admits everything (and pays in latency). The
# simulator is deterministic, so these are exact counts.
open_rej=$(/tmp/dataai_servesim -policy routed -spec multi-tenant -n 400 -rate 130 \
    | awk -F'  +' '/adm rejected/ {print $2}')
shed_rej=$(/tmp/dataai_servesim -policy routed -spec multi-tenant -n 400 -rate 130 \
    -admission reject -sched priority | awk '/adm rejected/ {split($NF, a, "/"); print a[1]}')
awk -v none="${open_rej:-0}" -v shed="${shed_rej:-0}" 'BEGIN {
    if (none+0 == 0 && shed+0 > 0) exit 0
    printf "admission smoke failed: no-admission rejected %s (want 0), token-bucket rejected %s (want > 0)\n", none, shed
    exit 1
}'

echo "== sim engine smoke (calendar queue beats the reference heap)"
# A 10^5-event clustered program timed against the container/heap
# reference queue; the calendar queue must come out ahead (the full 2x
# acceptance ratio at 10^6 events is recorded in BENCH_sim.json). Skips
# itself under -race, so run it without the detector here.
go test -short -run 'TestCalendarOutperformsHeap' -count=1 ./internal/sim

echo "== recovery smoke (checkpoint + migration beats recompute-from-zero)"
# The crash-survivable stack from the CLI: a correlated-domain severe run
# with checkpoints and migration must strictly beat the same run that
# recovers by re-prefilling from token zero. The simulator is
# deterministic, so this is an exact comparison, not a flaky one.
base_goodput=$(/tmp/dataai_servesim -policy routed -faults severe -domains 4 -n 300 -rate 70 \
    -slo-ttft 1500 -slo-tbt 25 | awk '/goodput/ {print $NF}')
ckpt_goodput=$(/tmp/dataai_servesim -policy routed -faults severe -domains 4 -n 300 -rate 70 \
    -slo-ttft 1500 -slo-tbt 25 -ckpt-every 8 -migrate | awk '/goodput/ {print $NF}')
awk -v a="$ckpt_goodput" -v b="$base_goodput" 'BEGIN {
    if (a+0 > b+0) exit 0
    printf "recovery smoke failed: ckpt+migrate goodput %s <= reroute-only %s\n", a, b
    exit 1
}'

echo "== servesim sweep (grid runner, serial vs parallel-8 byte-identical)"
# The sim.Sweep grid runner from the CLI: 27 router x faults x load
# cells, each on its own engine. Serial and 8-worker runs must print the
# same bytes — the sweep analogue of the benchall golden gate.
/tmp/dataai_servesim -sweep -n 120 > /tmp/dataai_sweep_serial.txt
/tmp/dataai_servesim -sweep -n 120 -parallel 8 > /tmp/dataai_sweep_par.txt
diff /tmp/dataai_sweep_serial.txt /tmp/dataai_sweep_par.txt
rm -f /tmp/dataai_servesim /tmp/dataai_sweep_serial.txt /tmp/dataai_sweep_par.txt

echo "== bench smoke (every Par benchmark runs once)"
go test -run '^$' -bench=Par -benchtime=1x ./...

echo "== benchall serial vs parallel (fast subset, byte-identical)"
# The full-set golden diff runs inside the test suite
# (cmd/benchall/main_test.go); this end-to-end gate re-checks the built
# binary on a fast experiment subset so a flag-wiring regression cannot
# hide behind the in-process test.
subset="E1 E2 E5 E8 E11 E17 E19 E22 E23 E24 E25 E26"
go build -o /tmp/dataai_benchall ./cmd/benchall
/tmp/dataai_benchall $subset > /tmp/dataai_benchall_serial.txt
/tmp/dataai_benchall -parallel 8 $subset > /tmp/dataai_benchall_par.txt
diff /tmp/dataai_benchall_serial.txt /tmp/dataai_benchall_par.txt
rm -f /tmp/dataai_benchall /tmp/dataai_benchall_serial.txt /tmp/dataai_benchall_par.txt

echo "OK"
