#!/usr/bin/env bash
# The single local CI entrypoint: formatting, vet, build, the repo's own
# static-analysis suite (cmd/dataailint), and the full test suite under
# the race detector. ROADMAP.md's tier-1 line points here; a clean run of
# this script is the definition of "no worse than the seed".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== dataailint ./..."
go run ./cmd/dataailint ./...

echo "== go test -race ./..."
go test -race ./...

echo "OK"
