// Package extract implements schema extraction from semi-structured
// documents (§2.2.2 "Schema Extraction"), contrasting the two strategies
// the paper describes:
//
//   - Direct: call the LLM once per (record, attribute). Accurate but the
//     cost scales with collection size — the paper calls complete reliance
//     on LLMs for extraction "huge and unaffordable".
//   - Evaporate [7]: spend LLM calls only on a small sample — use it to
//     synthesize and validate cheap rule-based extraction functions, then
//     run those functions over the whole collection and combine their
//     outputs by accuracy-weighted vote (weak supervision). Cost is O(k)
//     in sample size instead of O(n) in collection size.
//
// Experiment E3 regenerates the cost/quality comparison.
package extract

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"dataai/internal/corpus"
	"dataai/internal/llm"
)

// ErrNoRecords indicates an empty record set.
var ErrNoRecords = errors.New("extract: no records")

// Results holds per-record extracted attribute values plus cost accounting.
type Results struct {
	// Values maps record ID -> attribute -> extracted value.
	Values map[string]map[string]string
	// LLMCalls and CostUSD meter the model usage behind the extraction.
	LLMCalls int
	CostUSD  float64
	// Degraded counts responses a resilience policy produced after the
	// primary model path failed; zero with an unwrapped client.
	Degraded int
}

// Extractor turns a record set into attribute values.
type Extractor interface {
	Extract(rs *corpus.RecordSet) (*Results, error)
}

// Direct extracts every (record, attribute) pair with one LLM call.
type Direct struct {
	Client llm.Client
}

// Extract implements Extractor.
func (d Direct) Extract(rs *corpus.RecordSet) (*Results, error) {
	if len(rs.Records) == 0 {
		return nil, ErrNoRecords
	}
	out := &Results{Values: make(map[string]map[string]string, len(rs.Records))}
	for _, rec := range rs.Records {
		vals := make(map[string]string, len(rs.Attributes))
		for _, attr := range rs.Attributes {
			resp, err := d.Client.Complete(llm.Request{Prompt: llm.ExtractPrompt(attr, rec.Text)})
			if err != nil {
				return nil, fmt.Errorf("extract: direct %s/%s: %w", rec.ID, attr, err)
			}
			out.LLMCalls++
			if resp.Degraded {
				out.Degraded++
			}
			out.CostUSD += resp.CostUSD
			if !llm.IsUnknown(resp.Text) {
				vals[attr] = resp.Text
			}
		}
		out.Values[rec.ID] = vals
	}
	return out, nil
}

// candidateFn is a synthesized rule-based extraction function.
type candidateFn struct {
	name string
	fn   func(text, attr string) string
	// weight is the function's measured accuracy on the labeled sample.
	weight float64
}

// The candidate pool Evaporate "synthesizes". In the real system the LLM
// writes these as Python snippets from sample documents; here they are the
// layout conventions semi-structured collections actually follow, plus a
// deliberately weak heuristic so that vote weighting has work to do.
func candidatePool() []candidateFn {
	return []candidateFn{
		{name: "colon", fn: func(text, attr string) string {
			return firstMatch(text, regexp.MustCompile(`(?mi)^`+regexp.QuoteMeta(attr)+`\s*:\s*(.+)$`))
		}},
		{name: "equals", fn: func(text, attr string) string {
			return firstMatch(text, regexp.MustCompile(`(?mi)^`+regexp.QuoteMeta(attr)+`\s*=\s*(.+)$`))
		}},
		{name: "prose", fn: func(text, attr string) string {
			return firstMatch(text, regexp.MustCompile(`(?i)the `+regexp.QuoteMeta(attr)+` is ([^.\n]+)`))
		}},
		{name: "next-token", fn: func(text, attr string) string {
			// Weak heuristic: the token following the attribute word.
			fields := strings.Fields(text)
			for i, f := range fields {
				if strings.EqualFold(strings.Trim(f, ":=."), attr) && i+1 < len(fields) {
					return strings.Trim(fields[i+1], ":=.")
				}
			}
			return ""
		}},
	}
}

func firstMatch(text string, re *regexp.Regexp) string {
	m := re.FindStringSubmatch(text)
	if m == nil {
		return ""
	}
	return strings.TrimSpace(m[1])
}

// Evaporate synthesizes extraction functions on a sample and applies them
// collection-wide with accuracy-weighted voting.
type Evaporate struct {
	Client llm.Client
	// SampleSize is how many records receive direct LLM extraction to
	// label the sample (default 10).
	SampleSize int
	// MinAccuracy prunes candidate functions scoring below it on the
	// sample (default 0.3).
	MinAccuracy float64
}

// Extract implements Extractor.
func (e Evaporate) Extract(rs *corpus.RecordSet) (*Results, error) {
	if len(rs.Records) == 0 {
		return nil, ErrNoRecords
	}
	sampleSize := e.SampleSize
	if sampleSize <= 0 {
		sampleSize = 10
	}
	if sampleSize > len(rs.Records) {
		sampleSize = len(rs.Records)
	}
	minAcc := e.MinAccuracy
	if minAcc <= 0 {
		minAcc = 0.3
	}
	out := &Results{Values: make(map[string]map[string]string, len(rs.Records))}

	// Phase 1: label a sample with the LLM (the only model spending).
	sample := rs.Records[:sampleSize]
	labels := make(map[string]map[string]string, sampleSize)
	for _, rec := range sample {
		vals := make(map[string]string, len(rs.Attributes))
		for _, attr := range rs.Attributes {
			resp, err := e.Client.Complete(llm.Request{Prompt: llm.ExtractPrompt(attr, rec.Text)})
			if err != nil {
				return nil, fmt.Errorf("extract: evaporate sample %s/%s: %w", rec.ID, attr, err)
			}
			out.LLMCalls++
			if resp.Degraded {
				out.Degraded++
			}
			out.CostUSD += resp.CostUSD
			if !llm.IsUnknown(resp.Text) {
				vals[attr] = resp.Text
			}
		}
		labels[rec.ID] = vals
	}

	// Phase 2: score candidate functions against the sample labels.
	// Functions abstain by returning ""; they are scored on precision
	// when they fire (labeling-function semantics), not on coverage —
	// a colon-format extractor is not wrong about equals-format records,
	// it is silent about them.
	cands := candidatePool()
	var kept []candidateFn
	for _, c := range cands {
		agree, fired := 0, 0
		for _, rec := range sample {
			for _, attr := range rs.Attributes {
				want, ok := labels[rec.ID][attr]
				if !ok {
					continue
				}
				got := c.fn(rec.Text, attr)
				if got == "" {
					continue
				}
				fired++
				if got == want {
					agree++
				}
			}
		}
		if fired == 0 {
			continue
		}
		c.weight = float64(agree) / float64(fired)
		if c.weight >= minAcc {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		// No function generalized: fall back to the weak-supervision-free
		// answer of running every candidate unweighted.
		kept = candidatePool()
		for i := range kept {
			kept[i].weight = 1
		}
	}

	// Phase 3: apply kept functions everywhere, combine by weighted vote.
	for _, rec := range rs.Records {
		vals := make(map[string]string, len(rs.Attributes))
		for _, attr := range rs.Attributes {
			votes := make(map[string]float64)
			for _, c := range kept {
				if v := c.fn(rec.Text, attr); v != "" {
					votes[v] += c.weight
				}
			}
			if best := argmaxVote(votes); best != "" {
				vals[attr] = best
			}
		}
		out.Values[rec.ID] = vals
	}
	return out, nil
}

// argmaxVote returns the highest-weighted value, ties broken
// lexicographically for determinism.
func argmaxVote(votes map[string]float64) string {
	keys := make([]string, 0, len(votes))
	for v := range votes {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	best, bestW := "", -1.0
	for _, v := range keys {
		if votes[v] > bestW {
			best, bestW = v, votes[v]
		}
	}
	return best
}

// Accuracy scores extracted values against a record set's gold labels:
// the fraction of (record, attribute) pairs whose extraction matches.
func Accuracy(rs *corpus.RecordSet, res *Results) float64 {
	total, right := 0, 0
	for _, rec := range rs.Records {
		for _, attr := range rs.Attributes {
			total++
			if res.Values[rec.ID][attr] == rec.Gold[attr] {
				right++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(right) / float64(total)
}

// ToTable materializes extraction results as a relational table with an
// "id" column plus one string column per attribute — the preprocessing
// step that lets extracted schemas serve SQL/NL queries (§2.2.2).
func ToTable(rs *corpus.RecordSet, res *Results) (*Table, error) {
	cols := append([]string{"id"}, rs.Attributes...)
	t := &Table{Columns: cols}
	for _, rec := range rs.Records {
		row := make([]string, len(cols))
		row[0] = rec.ID
		for i, attr := range rs.Attributes {
			row[i+1] = res.Values[rec.ID][attr]
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table is a simple string-typed materialization of extraction output.
// Callers needing typed relational processing convert via
// relation.NewTable; keeping this intermediate form avoids a hard
// dependency direction between extract and relation.
type Table struct {
	Columns []string
	Rows    [][]string
}
