package extract

import (
	"errors"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/llm"
)

var attrs = []string{"name", "owner", "status"}

func perfectClient(seed uint64) *llm.Simulator {
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	return llm.NewSimulator(m, seed)
}

func records(t *testing.T, n int, noise float64) *corpus.RecordSet {
	t.Helper()
	rs, err := corpus.GenerateRecords(7, n, attrs, noise)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestDirectPerfectModelPerfectRecords(t *testing.T) {
	rs := records(t, 50, 0)
	res, err := Direct{Client: perfectClient(1)}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(rs, res); acc < 0.999 {
		t.Errorf("direct accuracy = %v, want ~1", acc)
	}
	if res.LLMCalls != 50*len(attrs) {
		t.Errorf("calls = %d, want %d", res.LLMCalls, 50*len(attrs))
	}
}

func TestEvaporateMuchCheaperSimilarAccuracy(t *testing.T) {
	rs := records(t, 200, 0)
	client := llm.NewSimulator(llm.LargeModel(), 2) // realistic error rates

	direct, err := Direct{Client: client}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	evap, err := Evaporate{Client: client, SampleSize: 10}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	accD := Accuracy(rs, direct)
	accE := Accuracy(rs, evap)
	if evap.LLMCalls*5 > direct.LLMCalls {
		t.Errorf("evaporate calls %d not ≪ direct %d", evap.LLMCalls, direct.LLMCalls)
	}
	if evap.CostUSD >= direct.CostUSD {
		t.Errorf("evaporate cost %v >= direct %v", evap.CostUSD, direct.CostUSD)
	}
	if accE < accD-0.1 {
		t.Errorf("evaporate accuracy %v much worse than direct %v", accE, accD)
	}
	if accE < 0.8 {
		t.Errorf("evaporate accuracy %v too low", accE)
	}
}

func TestEvaporateHandlesNoisyRecords(t *testing.T) {
	rs := records(t, 150, 0.2)
	evap, err := Evaporate{Client: perfectClient(3), SampleSize: 12}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(rs, evap)
	// 20% of records have one corrupted attribute (of 3): ceiling ~0.93.
	if acc < 0.75 {
		t.Errorf("accuracy %v too low for 20%% noise", acc)
	}
	if acc > 0.97 {
		t.Errorf("accuracy %v above the noise ceiling — gold leak?", acc)
	}
}

func TestEvaporateSampleLargerThanSet(t *testing.T) {
	rs := records(t, 5, 0)
	res, err := Evaporate{Client: perfectClient(4), SampleSize: 50}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLMCalls != 5*len(attrs) {
		t.Errorf("calls = %d", res.LLMCalls)
	}
}

func TestEmptyRecordSet(t *testing.T) {
	rs := &corpus.RecordSet{Attributes: attrs}
	if _, err := (Direct{Client: perfectClient(5)}).Extract(rs); !errors.Is(err, ErrNoRecords) {
		t.Errorf("direct err = %v", err)
	}
	if _, err := (Evaporate{Client: perfectClient(5)}).Extract(rs); !errors.Is(err, ErrNoRecords) {
		t.Errorf("evaporate err = %v", err)
	}
}

func TestCandidateFunctionsCoverFormats(t *testing.T) {
	cands := candidatePool()
	texts := map[int]string{
		0: "owner: ann\n",
		1: "owner = ann\n",
		2: "The owner is ann. Extra.",
	}
	for format, text := range texts {
		hit := false
		for _, c := range cands {
			if c.fn(text, "owner") == "ann" {
				hit = true
			}
		}
		if !hit {
			t.Errorf("no candidate extracts format %d", format)
		}
	}
}

func TestWeakFunctionDownweighted(t *testing.T) {
	// On format-0 records the "next-token" heuristic extracts the value
	// with trailing colon content equal — ensure vote combination does
	// not let a weak function override three strong ones.
	rs := records(t, 100, 0)
	evap, err := Evaporate{Client: perfectClient(6), SampleSize: 15, MinAccuracy: 0.3}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(rs, evap); acc < 0.95 {
		t.Errorf("accuracy %v with clean records", acc)
	}
}

func TestToTable(t *testing.T) {
	rs := records(t, 10, 0)
	res, err := Direct{Client: perfectClient(7)}.Extract(rs)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ToTable(rs, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != len(attrs)+1 {
		t.Errorf("columns = %v", tbl.Columns)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != rs.Records[0].ID {
		t.Errorf("id column = %v", tbl.Rows[0][0])
	}
}

func TestArgmaxVoteDeterministic(t *testing.T) {
	v := map[string]float64{"b": 1, "a": 1}
	if got := argmaxVote(v); got != "a" {
		t.Errorf("tie break = %q, want a", got)
	}
	if got := argmaxVote(nil); got != "" {
		t.Errorf("empty vote = %q", got)
	}
}

func BenchmarkEvaporate(b *testing.B) {
	rs, _ := corpus.GenerateRecords(7, 500, attrs, 0.05)
	client := llm.NewSimulator(llm.LargeModel(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Evaporate{Client: client, SampleSize: 10}).Extract(rs); err != nil {
			b.Fatal(err)
		}
	}
}
