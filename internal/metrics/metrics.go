// Package metrics provides the measurement utilities shared by every
// experiment harness: streaming summaries with exact percentiles, SLO
// attainment accounting, and a fixed-width table printer so `cmd/benchall`
// output reads like the evaluation tables the paper lacks.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary accumulates float64 samples and reports order statistics.
// Samples are retained (exact percentiles), which is fine at the scales
// our simulators produce (≤ millions of samples). The zero value is ready
// to use.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// Count reports the number of recorded samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum reports the total of recorded samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max reports the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile reports the p-th percentile (0 <= p <= 100) by nearest-rank
// with linear interpolation, or 0 with no samples.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// P50 is Percentile(50).
func (s *Summary) P50() float64 { return s.Percentile(50) }

// P95 is Percentile(95).
func (s *Summary) P95() float64 { return s.Percentile(95) }

// P99 is Percentile(99).
func (s *Summary) P99() float64 { return s.Percentile(99) }

// Stddev reports the population standard deviation, or 0 with < 2 samples.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// FractionBelow reports the fraction of samples <= limit — the SLO
// attainment measure used by the serving experiments (E11/E12).
func (s *Summary) FractionBelow(limit float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	// Binary search for the first sample > limit.
	idx := sort.SearchFloat64s(s.samples, math.Nextafter(limit, math.Inf(1)))
	return float64(idx) / float64(len(s.samples))
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Table accumulates rows and renders a fixed-width text table. It is the
// single output format of every experiment harness, so EXPERIMENTS.md and
// `cmd/benchall` output align.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings/ints and %.4g for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.4g", v)
		case float32:
			strs[i] = fmt.Sprintf("%.4g", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Rows returns a copy of the rendered cell rows (formatting already
// applied), in insertion order — the machine-readable view cmd/benchall
// -json serializes.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Jain computes Jain's fairness index over per-party allocations:
// (Σx)² / (n·Σx²). It is 1 when every party gets the same amount and
// approaches 1/n as one party takes everything. Conventions: no parties
// → 0 (nothing to be fair about); one party, or all-zero allocations
// (everyone equally starved) → 1. Negative allocations are invalid and
// clamp to 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JainWeighted is Jain's index over normalized allocations x_i/w_i —
// fairness relative to entitlements w (e.g. purchased rate fractions)
// instead of absolute equality: it is 1 when every party receives in
// proportion to its weight. Panics if the lengths differ; parties with
// weight <= 0 are skipped (no entitlement, no fairness claim).
func JainWeighted(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("metrics: JainWeighted lengths differ")
	}
	norm := make([]float64, 0, len(xs))
	for i, x := range xs {
		if ws[i] <= 0 {
			continue
		}
		norm = append(norm, x/ws[i])
	}
	return Jain(norm)
}

// Ratio formats a/b as a "N.NNx" speedup string, guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// F1 computes the harmonic mean of precision and recall.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecall computes precision and recall from counts.
func PrecisionRecall(truePos, falsePos, falseNeg int) (precision, recall float64) {
	if truePos+falsePos > 0 {
		precision = float64(truePos) / float64(truePos+falsePos)
	}
	if truePos+falseNeg > 0 {
		recall = float64(truePos) / float64(truePos+falseNeg)
	}
	return precision, recall
}
