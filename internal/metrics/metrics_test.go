package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.P50() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Sum() != 6 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.P50() != 2 {
		t.Errorf("P50 = %v", s.P50())
	}
}

func TestSummaryAddAfterSort(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Max() // triggers sort
	s.Add(1)    // must invalidate sorted state
	if s.Min() != 1 {
		t.Errorf("Min after late add = %v", s.Min())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Summary
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	// rank(50) = 1.5 -> 2.5
	if got := s.Percentile(50); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("P50 = %v, want 2.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("P-5 = %v", got)
	}
	if got := s.Percentile(150); got != 4 {
		t.Errorf("P150 = %v", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Summary
	for i := 0; i < 500; i++ {
		s.Add(rng.ExpFloat64())
	}
	f := func(a, b float64) bool {
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	var s Summary
	s.Add(2)
	if s.Stddev() != 0 {
		t.Error("single sample stddev should be 0")
	}
	s.Add(4)
	if got := s.Stddev(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Stddev = %v, want 1", got)
	}
}

func TestFractionBelow(t *testing.T) {
	var s Summary
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FractionBelow(5); got != 0.5 {
		t.Errorf("FractionBelow(5) = %v, want 0.5", got)
	}
	if got := s.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
	if got := s.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow(10) = %v", got)
	}
	var empty Summary
	if empty.FractionBelow(1) != 0 {
		t.Error("empty FractionBelow should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("gamma") // short row
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, sep, 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and separator have equal display width.
	if len(strings.TrimRight(lines[1], " ")) > len(lines[2]) {
		t.Error("separator shorter than header")
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x", "overflow")
	if strings.Contains(tb.String(), "overflow") {
		t.Error("extra cell should be dropped")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Errorf("Ratio/0 = %q", got)
	}
}

func TestF1AndPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall(8, 2, 2)
	if p != 0.8 || r != 0.8 {
		t.Errorf("P/R = %v/%v", p, r)
	}
	if got := F1(p, r); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("F1 = %v", got)
	}
	if F1(0, 0) != 0 {
		t.Error("F1(0,0) should be 0")
	}
	p, r = PrecisionRecall(0, 0, 0)
	if p != 0 || r != 0 {
		t.Error("zero counts should yield zero P/R")
	}
}

func BenchmarkSummaryPercentile(b *testing.B) {
	var s Summary
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(99)
	}
}

func TestAddRowfFormatPinned(t *testing.T) {
	// The %.4g float rendering is part of the repo's byte-identical
	// output contract: EXPERIMENTS.md transcripts and golden benchall
	// tests depend on it. Pin it here so a drive-by format change fails
	// loudly instead of silently invalidating every golden file.
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddRowf(1234.5678, 0.000123456, float32(2.5), 7)
	row := tb.Rows()[0]
	want := []string{"1235", "0.0001235", "2.5", "7"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("cell %d = %q, want %q (AddRowf must keep %%.4g)", i, row[i], w)
		}
	}
}

func TestHeadersAndRowsAreCopies(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow("1", "2")
	h := tb.Headers()
	r := tb.Rows()
	h[0] = "mutated"
	r[0][0] = "mutated"
	if tb.Headers()[0] != "x" || tb.Rows()[0][0] != "1" {
		t.Error("Headers/Rows must return copies, not aliases")
	}
}

func TestStddevNoSamples(t *testing.T) {
	var s Summary
	if s.Stddev() != 0 {
		t.Error("empty-summary stddev should be 0")
	}
}

func TestPercentileFractionalRank(t *testing.T) {
	var s Summary
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	// rank(25) = 0.75 -> 1.75; rank(75) = 2.25 -> 3.25.
	if got := s.Percentile(25); math.Abs(got-1.75) > 1e-9 {
		t.Errorf("P25 = %v, want 1.75", got)
	}
	if got := s.Percentile(75); math.Abs(got-3.25) > 1e-9 {
		t.Errorf("P75 = %v, want 3.25", got)
	}
}

func TestFractionBelowNextafterBoundary(t *testing.T) {
	var s Summary
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	// The limit is inclusive: a sample exactly at the limit counts, and
	// the largest float64 strictly below an integer sample must not.
	if got := s.FractionBelow(math.Nextafter(5, 0)); got != 0.4 {
		t.Errorf("FractionBelow(5-ulp) = %v, want 0.4", got)
	}
	if got := s.FractionBelow(math.Nextafter(5, math.Inf(1))); got != 0.5 {
		t.Errorf("FractionBelow(5+ulp) = %v, want 0.5", got)
	}
	if got := s.FractionBelow(5.5); got != 0.5 {
		t.Errorf("FractionBelow(5.5) = %v, want 0.5", got)
	}
	if got := s.FractionBelow(-1); got != 0 {
		t.Errorf("FractionBelow(-1) = %v, want 0", got)
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"one takes all", []float64{10, 0, 0, 0}, 0.25},
		{"mixed", []float64{4, 2}, 0.9},
	}
	for _, tc := range cases {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Jain = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Negative allocations are invalid and clamp to zero rather than
	// inflating the index.
	if got, want := Jain([]float64{-3, 6}), Jain([]float64{0, 6}); got != want {
		t.Errorf("negative clamp: %v != %v", got, want)
	}
}

func TestJainWeighted(t *testing.T) {
	// 60/30 split over 2:1 entitlements is perfectly fair.
	if got := JainWeighted([]float64{60, 30}, []float64{2, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("proportional = %v, want 1", got)
	}
	// The same split over equal entitlements is not.
	if got := JainWeighted([]float64{60, 30}, []float64{1, 1}); got >= 1 {
		t.Errorf("disproportional = %v, want < 1", got)
	}
	// Zero-weight parties carry no fairness claim and are skipped.
	if got := JainWeighted([]float64{60, 30, 99}, []float64{2, 1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("zero weight skipped = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	JainWeighted([]float64{1}, []float64{1, 2})
}
