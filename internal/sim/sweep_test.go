package sim

import (
	"fmt"
	"reflect"
	"testing"
)

func testGrid() Grid {
	return Grid{Dims: []Dim{
		{Name: "policy", Values: []string{"rr", "cache", "breaker"}},
		{Name: "faults", Values: []string{"none", "severe"}},
		{Name: "load", Values: []string{"30", "60", "120", "240"}},
	}}
}

func TestGridCellsAndCoords(t *testing.T) {
	g := testGrid()
	if g.Cells() != 24 {
		t.Fatalf("Cells = %d, want 24", g.Cells())
	}
	// Cell 0 is the first value of every dim; the last dim varies fastest.
	if got := g.Coords(0); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Errorf("Coords(0) = %v", got)
	}
	if got := g.Coords(1); !reflect.DeepEqual(got, []int{0, 0, 1}) {
		t.Errorf("Coords(1) = %v", got)
	}
	if got := g.Coords(4); !reflect.DeepEqual(got, []int{0, 1, 0}) {
		t.Errorf("Coords(4) = %v", got)
	}
	if got := g.Coords(23); !reflect.DeepEqual(got, []int{2, 1, 3}) {
		t.Errorf("Coords(23) = %v", got)
	}
	if got := g.Label(5); got != "policy=rr faults=severe load=60" {
		t.Errorf("Label(5) = %q", got)
	}
	if got := g.Value(1, 5); got != "severe" {
		t.Errorf("Value(1, 5) = %q", got)
	}
	if got := g.ValueNamed("faults", 5); got != "severe" {
		t.Errorf(`ValueNamed("faults", 5) = %q`, got)
	}
	if got := g.ValueNamed("load", 23); got != "240" {
		t.Errorf(`ValueNamed("load", 23) = %q`, got)
	}
	if got := g.ValueNamed("nope", 5); got != "" {
		t.Errorf(`ValueNamed("nope", 5) = %q, want ""`, got)
	}
	if (Grid{}).Cells() != 1 {
		t.Error("empty grid should have one cell")
	}
	empty := Grid{Dims: []Dim{{Name: "x"}}}
	if empty.Cells() != 0 || Sweep(empty, 4, func(int, []int) int { return 1 }) != nil {
		t.Error("grid with an empty dimension should sweep zero cells")
	}
}

func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	// Each cell runs its own engine program; the per-cell output must be
	// identical at every worker count — the sweep analogue of the
	// benchall serial-vs-parallel golden gate.
	g := testGrid()
	run := func(workers int) []string {
		return Sweep(g, workers, func(cell int, coords []int) string {
			e := NewEngine()
			total := 0.0
			var h ArgHandler
			h = func(now float64, arg uint64) {
				total += now
				if arg > 0 {
					e.AfterArg(float64(cell%7)+0.5, h, arg-1)
				}
			}
			e.AfterArg(float64(coords[2]), h, uint64(20+cell))
			e.Run()
			return fmt.Sprintf("%s fired=%d sum=%.3f", g.Label(cell), e.Fired(), total)
		})
	}
	serial := run(1)
	if len(serial) != g.Cells() {
		t.Fatalf("got %d results, want %d", len(serial), g.Cells())
	}
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d diverged from serial", workers)
		}
	}
}
