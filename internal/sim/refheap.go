package sim

import "container/heap"

// heapQueue is the seed engine's event queue: a single container/heap
// min-heap ordered by (time, seq). It is kept verbatim as the reference
// implementation — the differential fuzz tests in diff_test.go run every
// schedule through both queues and assert identical firing order, and
// BENCH_sim.json's heap-vs-calendar comparison measures against it. Note
// heap.Push takes `any`, so every scheduled event pays one boxing
// allocation; that, plus O(log n) sift per operation, is what the
// calendar queue removes.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e event) { heap.Push(&q.h, e) }
func (q *heapQueue) size() int    { return len(q.h) }
func (q *heapQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}
