package sim

import (
	"reflect"
	"testing"
)

func TestEventOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func(now float64) { got = append(got, 3) })
	e.At(10, func(now float64) { got = append(got, 1) })
	e.At(20, func(now float64) { got = append(got, 2) })
	e.Run()
	if want := []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	// Events at the same instant fire in the order they were scheduled —
	// the (time, seq) total order the serving cluster's determinism
	// rests on.
	e := NewEngine()
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		e.At(5, func(now float64) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie at seq %d fired as %d: %v", i, v, got)
		}
	}
}

func TestHandlersScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	var times []float64
	var chain func(now float64)
	n := 0
	chain = func(now float64) {
		times = append(times, now)
		n++
		if n < 4 {
			e.After(2.5, chain)
		}
	}
	e.At(1, chain)
	e.Run()
	if want := []float64{1, 3.5, 6, 8.5}; !reflect.DeepEqual(times, want) {
		t.Errorf("times = %v, want %v", times, want)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(10, func(now float64) {
		e.At(3, func(now float64) { at = now }) // in the past: fires at 10
	})
	e.Run()
	if at != 10 {
		t.Errorf("past event fired at %v, want 10", at)
	}
}

func TestPastEventFiresAfterQueuedSameInstant(t *testing.T) {
	// A clamped-to-now event still respects seq order against events
	// already queued at the current instant.
	e := NewEngine()
	var got []string
	e.At(10, func(now float64) {
		e.At(0, func(now float64) { got = append(got, "late") })
	})
	e.At(10, func(now float64) { got = append(got, "peer") })
	e.Run()
	if want := []string{"peer", "late"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5, func(now float64) {
		e.After(-100, func(now float64) { fired = now == 5 })
	})
	e.Run()
	if !fired {
		t.Error("negative After did not fire at Now")
	}
}

func TestStepAndPending(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine reported work")
	}
	e.At(1, func(now float64) {})
	e.At(2, func(now float64) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if !e.Step() || e.Pending() != 1 {
		t.Errorf("after one Step: pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("after Run: pending = %d", e.Pending())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var times []float64
		for i := 0; i < 50; i++ {
			d := float64((i * 37) % 11)
			e.At(d, func(now float64) { times = append(times, now) })
		}
		e.Run()
		return times
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("engine runs diverged")
	}
}
