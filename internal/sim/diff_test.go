package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// The differential harness: run the same event program through the
// calendar queue (NewEngine) and the reference min-heap (newHeapEngine)
// and assert identical firing order. The program is a function of the
// firing order itself (handlers draw from a seeded rng to schedule more
// events), so any divergence compounds instead of hiding.

type fireRec struct {
	id int
	t  float64
}

// runProgram schedules a randomized self-extending event program on e
// and returns the (id, time) firing log. Deltas are chosen to stress the
// calendar queue's seams: same-instant chains, sub-bucket fractions,
// exact bucket-width multiples, far-future overflow pushes, and
// past-time clamps.
func runProgram(e *Engine, seed int64, roots, depth int) []fireRec {
	rng := rand.New(rand.NewSource(seed))
	var log []fireRec
	nextID := 0
	var schedule func(t float64, d int)
	schedule = func(t float64, d int) {
		id := nextID
		nextID++
		e.At(t, func(now float64) {
			log = append(log, fireRec{id, now})
			if d == 0 {
				return
			}
			for j := rng.Intn(3); j > 0; j-- {
				var delta float64
				switch rng.Intn(6) {
				case 0:
					delta = 0 // same-instant chain
				case 1:
					delta = rng.Float64() * 0.5 // sub-bucket
				case 2:
					delta = rng.Float64() * 3 // a few buckets out
				case 3:
					delta = float64(rng.Intn(5)) * calWidth // exact bucket multiples
				case 4:
					delta = calBuckets*calWidth + rng.Float64()*2000 // overflow
				case 5:
					delta = -rng.Float64() * 10 // past: clamps to now
				}
				schedule(now+delta, d-1)
			}
		})
	}
	for i := 0; i < roots; i++ {
		// Roots span several buckets and reach past the horizon.
		schedule(rng.Float64()*float64(2*calBuckets), depth)
	}
	e.Run()
	return log
}

func TestDifferentialCalendarVsHeap(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cal := runProgram(NewEngine(), seed, 40, 3)
		ref := runProgram(newHeapEngine(), seed, 40, 3)
		if !reflect.DeepEqual(cal, ref) {
			n := len(cal)
			if len(ref) < n {
				n = len(ref)
			}
			for i := 0; i < n; i++ {
				if cal[i] != ref[i] {
					t.Fatalf("seed %d: firing logs diverge at %d: calendar %+v, heap %+v",
						seed, i, cal[i], ref[i])
				}
			}
			t.Fatalf("seed %d: firing logs differ in length: calendar %d, heap %d",
				seed, len(cal), len(ref))
		}
	}
}

func TestSameInstantAcrossOverflowAndWheel(t *testing.T) {
	// Two events at the same instant, one routed through the overflow
	// heap (scheduled while 5000 was past the horizon) and one through
	// the wheel (scheduled once the clock was close), must still fire in
	// seq order.
	e := NewEngine()
	var got []string
	e.At(5000, func(now float64) { got = append(got, "early-seq") }) // overflow at schedule time
	e.At(4999, func(now float64) {
		e.At(5000, func(now float64) { got = append(got, "late-seq") }) // wheel at schedule time
	})
	e.Run()
	if want := []string{"early-seq", "late-seq"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestClampAtBucketBoundary(t *testing.T) {
	// A handler firing fractionally past a bucket boundary schedules
	// into the past; the clamped event maps before the current bucket's
	// base and must still fire immediately, after same-instant peers.
	e := NewEngine()
	var got []string
	at := 3*calWidth + 0.25
	e.At(at, func(now float64) {
		e.At(now-5*calWidth, func(float64) { got = append(got, "clamped") })
	})
	e.At(at, func(now float64) { got = append(got, "peer") })
	e.Run()
	if want := []string{"peer", "clamped"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if e.Now() != at {
		t.Errorf("Now = %v, want %v", e.Now(), at)
	}
}

func TestFarFutureOnlySchedule(t *testing.T) {
	// An empty wheel with overflow-only events exercises the jump path:
	// the queue must leap to each epoch rather than crawl, and order by
	// (time, seq) throughout.
	e := NewEngine()
	var got []float64
	times := []float64{90000, 5000, 300000, 5000, 77777.5}
	for _, at := range times {
		e.At(at, func(now float64) { got = append(got, now) })
	}
	e.Run()
	want := []float64{5000, 5000, 77777.5, 90000, 300000}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fired at %v, want %v", got, want)
	}
}

func TestArgHandlerCarriesArgument(t *testing.T) {
	e := NewEngine()
	var got []uint64
	h := func(now float64, arg uint64) { got = append(got, arg) }
	e.AtArg(10, h, 7)
	e.AtArg(5, h, 3)
	e.AfterArg(-1, h, 9) // negative clamps to now (0)
	e.Run()
	if want := []uint64{9, 3, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("args = %v, want %v", got, want)
	}
}

func TestHeapEngineMatchesExistingContract(t *testing.T) {
	// The reference engine honors the same clamp and tie-break rules, so
	// the differential test compares like with like.
	e := newHeapEngine()
	var got []string
	e.At(10, func(now float64) {
		e.At(0, func(now float64) { got = append(got, "late") })
	})
	e.At(10, func(now float64) { got = append(got, "peer") })
	e.Run()
	if want := []string{"peer", "late"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}
