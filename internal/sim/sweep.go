package sim

import (
	"strings"

	"dataai/internal/par"
)

// A Dim is one axis of a sweep grid: a named parameter and the values it
// takes, in the order they should appear in reports.
type Dim struct {
	Name   string
	Values []string
}

// A Grid is the cartesian product of its dimensions. Cells are numbered
// in row-major order with the LAST dimension varying fastest, so for
// dims (policy, faults, load) the cell sequence walks loads within a
// fault plan within a policy — the order a nested for-loop would visit.
type Grid struct {
	Dims []Dim
}

// Cells reports the number of cells in the grid (the product of the
// dimension sizes); an empty grid has one cell, a grid with an empty
// dimension has zero.
func (g Grid) Cells() int {
	n := 1
	for _, d := range g.Dims {
		n *= len(d.Values)
	}
	return n
}

// Coords expands a cell number into one value index per dimension.
func (g Grid) Coords(cell int) []int {
	coords := make([]int, len(g.Dims))
	for i := len(g.Dims) - 1; i >= 0; i-- {
		size := len(g.Dims[i].Values)
		coords[i] = cell % size
		cell /= size
	}
	return coords
}

// Value returns the value the given cell takes along dimension dim.
func (g Grid) Value(dim, cell int) string {
	return g.Dims[dim].Values[g.Coords(cell)[dim]]
}

// ValueNamed returns the value the given cell takes along the dimension
// called name, or "" when no dimension has that name. Sweep callbacks
// use it to read a cell's coordinates without hard-coding dimension
// positions, so reordering a grid's axes cannot silently misread cells.
func (g Grid) ValueNamed(name string, cell int) string {
	for i, d := range g.Dims {
		if d.Name == name {
			return g.Value(i, cell)
		}
	}
	return ""
}

// Label renders a cell as "name=value name=value ...", the header the
// sweep runner prints above each cell's report.
func (g Grid) Label(cell int) string {
	coords := g.Coords(cell)
	var b strings.Builder
	for i, d := range g.Dims {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(d.Name)
		b.WriteByte('=')
		b.WriteString(d.Values[coords[i]])
	}
	return b.String()
}

// Sweep runs one independent simulation per grid cell on up to workers
// goroutines and returns the results in cell order. Each cell must build
// its own Engine (engines are single-threaded); run receives the cell
// number and its per-dimension value indexes. Results commit into a
// preallocated slice slot per cell, so the output is a pure function of
// the grid no matter which worker ran which cell: serial and -parallel 8
// sweeps are byte-identical, and a grid costs the wall-clock of its
// slowest cell rather than the sum.
func Sweep[T any](g Grid, workers int, run func(cell int, coords []int) T) []T {
	cells := g.Cells()
	if cells == 0 {
		return nil
	}
	out := make([]T, cells)
	par.ForEach(cells, workers, func(c int) {
		out[c] = run(c, g.Coords(c))
	})
	return out
}
