// Package sim is the shared discrete-event engine the serving simulators
// run on. It provides a logical-millisecond clock and a deterministic
// event queue: events fire in (time, seq) total order, where seq is the
// scheduling order, so two events at the same instant fire in the order
// they were scheduled. Nothing sleeps and nothing reads wall time — a
// run is a pure function of the events its processes schedule, which is
// what lets a whole serving cluster (instances, routers, fault windows)
// share one clock and still produce byte-identical reports on every run.
//
// The engine is deliberately single-threaded: handlers run one at a
// time, in order, on the caller's goroutine. Determinism comes from the
// total order, not from locking; concurrency belongs one level up
// (benchall runs whole experiments in parallel, each on its own engine,
// and Sweep fans a grid of independent runs across workers).
//
// Internally the queue is a calendar queue (calqueue.go): a fixed wheel
// of time buckets for the near future plus an overflow heap for events
// beyond the horizon. For the clustered-in-time schedules serving
// workloads produce, push and pop are amortized O(1) instead of the
// O(log n) of a single binary heap, and neither path allocates in steady
// state. The seed's container/heap queue is kept as a reference
// implementation (refheap.go) for differential tests and benchmarks.
package sim

// Handler is an event callback. now is the event's firing time on the
// logical clock (always >= every previously fired event's time).
type Handler func(now float64)

// ArgHandler is an event callback that also receives the uint64 argument
// it was scheduled with. It exists so long-lived processes (a serving
// instance, an arrival pump) can bind ONE closure at construction time
// and schedule it many times with per-event data in arg — the schedule
// path then allocates nothing, where a fresh closure per event would
// allocate every time.
type ArgHandler func(now float64, arg uint64)

// event is one scheduled callback. Exactly one of fn and afn is set.
type event struct {
	time float64
	seq  uint64
	fn   Handler
	afn  ArgHandler
	arg  uint64
}

// eventCmp orders events by (time, seq) — the engine's total order. seq
// is unique, so the order is strict and any sort (stable or not) yields
// the same permutation.
func eventCmp(a, b event) int {
	if a.time != b.time {
		if a.time < b.time {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// eventQueue is the priority-queue contract both implementations
// satisfy: pop returns events in (time, seq) order.
type eventQueue interface {
	push(e event)
	pop() (event, bool)
	size() int
}

// Engine is the discrete-event loop. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	queue eventQueue
	seq   uint64
	now   float64
	// fired counts delivered events (visible for tests and reports).
	fired uint64
}

// NewEngine returns an empty engine at time zero, backed by the calendar
// queue.
func NewEngine() *Engine {
	return &Engine{queue: newCalQueue()}
}

// newHeapEngine returns an engine backed by the seed's container/heap
// queue. It is the reference implementation the differential tests and
// the BENCH_sim baseline run against; production callers use NewEngine.
func newHeapEngine() *Engine {
	return &Engine{queue: &heapQueue{}}
}

// Now is the current logical time in milliseconds: the firing time of
// the event being handled (or of the last one handled).
func (e *Engine) Now() float64 { return e.now }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return e.queue.size() }

// Fired reports how many events have been delivered.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute time t. Scheduling in the past (t < Now)
// clamps to Now: the event fires next, after already-queued events at
// the current instant — time never runs backwards.
func (e *Engine) At(t float64, fn Handler) {
	if t < e.now {
		t = e.now
	}
	e.queue.push(event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn d milliseconds from Now. Negative d clamps to zero.
func (e *Engine) After(d float64, fn Handler) {
	e.At(e.now+d, fn)
}

// AtArg schedules fn at absolute time t with a caller-chosen argument,
// under the same clamping and (time, seq) ordering as At. Reusing one
// ArgHandler across many AtArg calls keeps the schedule path
// allocation-free.
func (e *Engine) AtArg(t float64, fn ArgHandler, arg uint64) {
	if t < e.now {
		t = e.now
	}
	e.queue.push(event{time: t, seq: e.seq, afn: fn, arg: arg})
	e.seq++
}

// AfterArg schedules fn d milliseconds from Now with an argument.
// Negative d clamps to zero.
func (e *Engine) AfterArg(d float64, fn ArgHandler, arg uint64) {
	e.AtArg(e.now+d, fn, arg)
}

// Run fires events in (time, seq) order until the queue is empty.
// Handlers may schedule further events.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Step fires the single next event, reporting false when the queue is
// empty.
func (e *Engine) Step() bool {
	ev, ok := e.queue.pop()
	if !ok {
		return false
	}
	e.now = ev.time
	e.fired++
	if ev.afn != nil {
		ev.afn(ev.time, ev.arg)
	} else {
		ev.fn(ev.time)
	}
	return true
}
