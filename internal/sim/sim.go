// Package sim is the shared discrete-event engine the serving simulators
// run on. It provides a logical-millisecond clock and a deterministic
// event queue: events fire in (time, seq) total order, where seq is the
// scheduling order, so two events at the same instant fire in the order
// they were scheduled. Nothing sleeps and nothing reads wall time — a
// run is a pure function of the events its processes schedule, which is
// what lets a whole serving cluster (instances, routers, fault windows)
// share one clock and still produce byte-identical reports on every run.
//
// The engine is deliberately single-threaded: handlers run one at a
// time, in order, on the caller's goroutine. Determinism comes from the
// total order, not from locking; concurrency belongs one level up
// (benchall runs whole experiments in parallel, each on its own engine).
package sim

import "container/heap"

// Handler is an event callback. now is the event's firing time on the
// logical clock (always >= every previously fired event's time).
type Handler func(now float64)

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   Handler
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event loop. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	queue eventHeap
	seq   uint64
	now   float64
	// fired counts delivered events (visible for tests and reports).
	fired uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now is the current logical time in milliseconds: the firing time of
// the event being handled (or of the last one handled).
func (e *Engine) Now() float64 { return e.now }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have been delivered.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute time t. Scheduling in the past (t < Now)
// clamps to Now: the event fires next, after already-queued events at
// the current instant — time never runs backwards.
func (e *Engine) At(t float64, fn Handler) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn d milliseconds from Now. Negative d clamps to zero.
func (e *Engine) After(d float64, fn Handler) {
	e.At(e.now+d, fn)
}

// Run fires events in (time, seq) order until the queue is empty.
// Handlers may schedule further events.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		e.Step()
	}
}

// Step fires the single next event, reporting false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	e.fired++
	ev.fn(ev.time)
	return true
}
