package sim

import (
	"slices"
	"sort"
)

// The calendar queue: a fixed wheel of time buckets covering the near
// future plus a min-heap for everything beyond the horizon.
//
// Layout. The wheel has calBuckets buckets of calWidth logical ms each;
// buckets[cursor] covers [base, base+calWidth) and bucket (cursor+i)
// covers [base+i*calWidth, ...). An event whose time falls inside the
// horizon is appended to its bucket unsorted; events at or past the
// horizon go to the overflow heap and are pulled into the wheel lazily
// as base advances past the point where they fit.
//
// Ordering. A bucket is sorted by (time, seq) once, the first time pop
// drains from it. Handlers that schedule while the bucket is draining
// either land in a later bucket (plain append) or at the current instant
// (clamped to now), in which case they are placed by binary search into
// the still-undrained sorted tail — the only insertion the queue ever
// shifts elements for, and in practice a tail of length 0 or 1 (the
// After(0) kick chain). seq is unique, so the sort's permutation is
// deterministic whether or not the algorithm is stable, and the pop
// sequence is exactly the (time, seq) total order the Engine promises.
//
// Cost. For the clustered schedules serving workloads produce (many
// events per millisecond), push is an append and pop is an index bump:
// amortized O(1), no per-event allocation once bucket capacity has
// grown. The heap only sees far-future events (arrival horizons), which
// enter and leave it once each. Sparse stretches cost one empty-bucket
// step per calWidth of simulated silence; a fully empty wheel jumps
// straight to the overflow's next epoch instead of crawling.
const (
	calBuckets = 1024
	calMask    = calBuckets - 1
	calWidth   = 1.0 // logical ms per bucket
)

type calQueue struct {
	base    float64 // start time of buckets[cursor]
	cursor  int     // wheel index of the current bucket
	curIdx  int     // drain position within the current bucket
	entered bool    // current bucket sorted; [curIdx:] is its sorted tail
	wheel   int     // events resident in wheel buckets
	buckets [calBuckets][]event
	over    overflowHeap // events at or beyond the horizon
}

func newCalQueue() *calQueue {
	return &calQueue{}
}

func (q *calQueue) size() int { return q.wheel + len(q.over) }

func (q *calQueue) push(e event) {
	// The mapping d = (t-base)/width is monotone in t, so even when two
	// nearby times straddle a bucket boundary differently than exact
	// arithmetic would place them, earlier times never map to later
	// buckets — the per-bucket sort restores the exact (time, seq) order.
	d := (e.time - q.base) / calWidth
	if d >= calBuckets {
		q.over.push(e)
		return
	}
	idx := int(d)
	if idx < 0 {
		// Clamped-to-now events can sit fractionally before base after
		// the cursor advanced; they belong to the current bucket.
		idx = 0
	}
	if idx == 0 && q.entered {
		// The current bucket is mid-drain: keep its undrained tail
		// sorted by inserting in place.
		b := q.buckets[q.cursor]
		tail := b[q.curIdx:]
		pos := q.curIdx + sort.Search(len(tail), func(i int) bool {
			return eventCmp(e, tail[i]) < 0
		})
		b = append(b, event{})
		copy(b[pos+1:], b[pos:])
		b[pos] = e
		q.buckets[q.cursor] = b
	} else {
		slot := (q.cursor + idx) & calMask
		q.buckets[slot] = append(q.buckets[slot], e)
	}
	q.wheel++
}

func (q *calQueue) pop() (event, bool) {
	for {
		if q.wheel == 0 {
			if len(q.over) == 0 {
				return event{}, false
			}
			q.jump()
			continue
		}
		b := q.buckets[q.cursor]
		if q.curIdx < len(b) {
			if !q.entered {
				slices.SortFunc(b, eventCmp)
				q.entered = true
			}
			e := b[q.curIdx]
			b[q.curIdx] = event{} // release the handler for GC
			q.curIdx++
			q.wheel--
			if q.curIdx == len(b) {
				// Bucket drained: reset it (keeping capacity) so pushes
				// at the current instant start a fresh sorted tail.
				q.buckets[q.cursor] = b[:0]
				q.curIdx = 0
			}
			return e, true
		}
		q.advance()
	}
}

// advance moves the cursor to the next bucket and pulls any overflow
// events that now fall inside the horizon into their wheel buckets.
func (q *calQueue) advance() {
	q.buckets[q.cursor] = q.buckets[q.cursor][:0]
	q.cursor = (q.cursor + 1) & calMask
	q.base += calWidth
	q.curIdx = 0
	q.entered = false
	q.pull()
}

// jump is advance for an empty wheel: instead of stepping bucket by
// bucket through simulated silence, move base directly to the overflow
// head's epoch and refill from there.
func (q *calQueue) jump() {
	t := q.over[0].time
	if d := (t - q.base) / calWidth; d >= calBuckets {
		q.base = t
	} else if d >= 1 {
		steps := int(d)
		q.cursor = (q.cursor + steps) & calMask
		q.base += float64(steps) * calWidth
	}
	q.curIdx = 0
	q.entered = false
	q.pull()
}

// pull drains overflow events that fit inside the wheel horizon into
// their buckets.
func (q *calQueue) pull() {
	for len(q.over) > 0 {
		d := (q.over[0].time - q.base) / calWidth
		if d >= calBuckets {
			return
		}
		e := q.over.pop()
		idx := int(d)
		if idx < 0 {
			idx = 0
		}
		slot := (q.cursor + idx) & calMask
		q.buckets[slot] = append(q.buckets[slot], e)
		q.wheel++
	}
}

// overflowHeap is a plain min-heap of events ordered by (time, seq). It
// is hand-rolled rather than container/heap because the interface-based
// heap boxes every pushed event into an `any`, which is exactly the
// per-event allocation this queue exists to remove.
type overflowHeap []event

func (h *overflowHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if eventCmp(s[i], s[parent]) >= 0 {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *overflowHeap) pop() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = event{} // release the handler for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventCmp(s[l], s[min]) < 0 {
			min = l
		}
		if r < n && eventCmp(s[r], s[min]) < 0 {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
