//go:build !race

package sim

// raceEnabled reports whether the race detector is active; timing
// assertions skip under it (instrumentation overhead differs per queue).
const raceEnabled = false
