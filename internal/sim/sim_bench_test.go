package sim

import (
	"testing"
	"time"
)

// runClustered drives procs self-rescheduling processes until each has
// fired perProc events — the shape serving workloads produce: many
// concurrent processes, deltas clustered within a few milliseconds, an
// always-short horizon. One ArgHandler serves every event, so the
// steady-state schedule/fire path allocates nothing on the calendar
// engine.
func runClustered(e *Engine, procs, perProc int) {
	remaining := make([]int, procs)
	var h ArgHandler
	h = func(now float64, arg uint64) {
		p := int(arg)
		remaining[p]--
		if remaining[p] > 0 {
			// Deterministic pseudo-random delta in [0, 9.7) ms.
			d := float64((p*7+remaining[p]*13)%97) / 10
			e.AfterArg(d, h, arg)
		}
	}
	for p := 0; p < procs; p++ {
		remaining[p] = perProc
		e.AfterArg(float64(p%50)/5, h, uint64(p))
	}
	e.Run()
}

// runSpread schedules every event up front across a wide horizon — the
// arrival-wave shape (a whole trace's arrivals scheduled before Run), in
// which most events pass through the overflow heap.
func runSpread(e *Engine, n int) {
	h := ArgHandler(func(now float64, arg uint64) {})
	for i := 0; i < n; i++ {
		e.AtArg(float64((i*2654435761)%100000), h, uint64(i))
	}
	e.Run()
}

const benchEvents = 1 << 20 // ~10^6 events per op

func BenchmarkEngineClustered(b *testing.B) {
	for _, eng := range []struct {
		name string
		mk   func() *Engine
	}{{"calendar", NewEngine}, {"heap", newHeapEngine}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := eng.mk()
				runClustered(e, 100, benchEvents/100)
				if e.Fired() < benchEvents-100 {
					b.Fatalf("fired %d events, want ~%d", e.Fired(), benchEvents)
				}
			}
		})
	}
}

func BenchmarkEngineSpread(b *testing.B) {
	for _, eng := range []struct {
		name string
		mk   func() *Engine
	}{{"calendar", NewEngine}, {"heap", newHeapEngine}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSpread(eng.mk(), benchEvents)
			}
		})
	}
}

// BenchmarkScheduleFire measures the steady-state cost of one
// schedule+fire pair on a warmed engine. The calendar queue must report
// 0 allocs/op (BENCH_sim.json pins it); the heap reference pays the
// container/heap boxing allocation on every event.
func BenchmarkScheduleFire(b *testing.B) {
	for _, eng := range []struct {
		name string
		mk   func() *Engine
	}{{"calendar", NewEngine}, {"heap", newHeapEngine}} {
		b.Run(eng.name, func(b *testing.B) {
			e := eng.mk()
			h := ArgHandler(func(now float64, arg uint64) {})
			// Warm bucket and heap capacity across several full wheel
			// revolutions before measuring.
			for i := 0; i < 1<<16; i++ {
				e.AfterArg(float64(i%37)/4, h, 0)
				e.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.AfterArg(float64(i%37)/4, h, uint64(i))
				e.Step()
			}
		})
	}
}

// TestCalendarOutperformsHeap is the check.sh sim-bench smoke: on a
// 10^5-event clustered schedule the calendar queue must beat the
// reference heap on events/sec. Wall-clock timing in a test is exempt
// from the nondeterminism analyzer (and this asserts only an ordering,
// not a number); raceEnabled skips it because instrumentation skews the
// two queues differently.
func TestCalendarOutperformsHeap(t *testing.T) {
	if raceEnabled {
		t.Skip("timing comparison is meaningless under the race detector")
	}
	const procs, perProc = 100, 1000 // 10^5 events
	best := func(mk func() *Engine) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			runClustered(mk(), procs, perProc)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	// Interleave a throwaway warm-up of each before timing.
	runClustered(NewEngine(), procs, perProc/10)
	runClustered(newHeapEngine(), procs, perProc/10)
	cal, ref := best(NewEngine), best(newHeapEngine)
	t.Logf("calendar %v, heap %v (%.2fx)", cal, ref, float64(ref)/float64(cal))
	if cal >= ref {
		t.Errorf("calendar queue (%v) not faster than reference heap (%v)", cal, ref)
	}
}
