package faults

import (
	"fmt"

	"dataai/internal/token"
)

// This file holds the seeded-draw and fault-window helpers shared by
// every fault model in the repository: the call-path Injector in this
// package and the serving cluster's FaultPlan (internal/serving) both
// derive their faults from Uniform, so a fault is always a pure function
// of (seed, identity key) — never of wall time or execution order.

// Uniform maps (seed, key) to a deterministic uniform in [0,1). It is
// the single randomness primitive of the fault layer: equal inputs give
// equal draws on every run, platform, and worker count.
func Uniform(seed uint64, key string) float64 {
	h := token.Hash64Seed(key, seed)
	return float64(h>>11) / float64(1<<53)
}

// WindowIndex maps a logical-clock time to its fault-window ordinal for
// windows of widthMS. Times before zero clamp to window 0.
func WindowIndex(tMS, widthMS float64) int {
	if widthMS <= 0 || tMS <= 0 {
		return 0
	}
	return int(tMS / widthMS)
}

// WindowKey names one (kind, instance, window) cell for Uniform, giving
// cluster fault plans a shared, collision-free key scheme.
func WindowKey(kind string, instance, window int) string {
	return fmt.Sprintf("%s\x00%d\x00%d", kind, instance, window)
}
