package faults

import (
	"errors"
	"fmt"
	"testing"

	"dataai/internal/llm"
)

// echoClient is a trivial deterministic inner client.
type echoClient struct{ calls int }

func (e *echoClient) Complete(req llm.Request) (llm.Response, error) {
	e.calls++
	return llm.Response{Text: "alpha beta gamma delta", CompletionTokens: 4, CostUSD: 0.001, LatencyMS: 10}, nil
}

// outcome flattens a Complete result for comparison.
func outcome(r llm.Response, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("ok:%s/%d/%.0f", r.Text, r.PromptTokens, r.LatencyMS)
}

func TestInjectorDeterministic(t *testing.T) {
	// Two injectors with the same seed fed the same call sequence must
	// produce identical outcomes and identical stats.
	run := func() ([]string, Stats) {
		in := New(&echoClient{}, Severe(), 99)
		var got []string
		for i := 0; i < 40; i++ {
			for a := 0; a < 3; a++ {
				got = append(got, outcome(in.Complete(llm.Request{Prompt: fmt.Sprintf("q%d", i)})))
			}
		}
		return got, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged:\n%s\n%s", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Injected() == 0 {
		t.Fatal("severe plan injected nothing across 120 calls")
	}
}

func TestInjectorOrderIndependent(t *testing.T) {
	// Faults are a function of (prompt, seed, per-prompt attempt), so
	// interleaving calls from different prompts differently must not
	// change any prompt's outcome sequence.
	prompts := []string{"p0", "p1", "p2", "p3"}
	const attempts = 4

	collect := func(order [][2]int) map[string][]string {
		in := New(&echoClient{}, Medium(), 7)
		out := map[string][]string{}
		for _, pa := range order {
			p := prompts[pa[0]]
			out[p] = append(out[p], outcome(in.Complete(llm.Request{Prompt: p})))
		}
		return out
	}

	// Order A: prompt-major. Order B: attempt-major (fully interleaved).
	var orderA, orderB [][2]int
	for p := range prompts {
		for a := 0; a < attempts; a++ {
			orderA = append(orderA, [2]int{p, a})
		}
	}
	for a := 0; a < attempts; a++ {
		for p := range prompts {
			orderB = append(orderB, [2]int{p, a})
		}
	}
	ra, rb := collect(orderA), collect(orderB)
	for _, p := range prompts {
		for i := range ra[p] {
			if ra[p][i] != rb[p][i] {
				t.Fatalf("prompt %s attempt %d depends on interleaving:\n%s\n%s", p, i, ra[p][i], rb[p][i])
			}
		}
	}
}

func TestInjectorTimeoutChargesWaste(t *testing.T) {
	in := New(&echoClient{}, Plan{TimeoutRate: 1, TimeoutMS: 123}, 1)
	r, err := in.Complete(llm.Request{Prompt: "will time out"})
	if !errors.Is(err, llm.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !llm.IsRetryable(err) {
		t.Fatal("timeout must be retryable")
	}
	if r.PromptTokens == 0 || r.LatencyMS != 123 {
		t.Fatalf("timeout must charge prompt tokens and deadline latency, got %d tok / %v ms", r.PromptTokens, r.LatencyMS)
	}
	s := in.Stats()
	if s.Timeouts != 1 || s.WastedPromptTokens == 0 || s.WastedLatencyMS != 123 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectorRateLimitCarriesHint(t *testing.T) {
	in := New(&echoClient{}, Plan{RateLimitRate: 1, RetryAfterMS: 77}, 1)
	_, err := in.Complete(llm.Request{Prompt: "throttled"})
	if !errors.Is(err, llm.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if ms, ok := llm.RetryAfter(err); !ok || ms != 77 {
		t.Fatalf("RetryAfter = %v/%v, want 77/true", ms, ok)
	}
}

func TestInjectorTransientRetryable(t *testing.T) {
	in := New(&echoClient{}, Plan{TransientRate: 1}, 1)
	_, err := in.Complete(llm.Request{Prompt: "flap"})
	if !errors.Is(err, llm.ErrTransient) || !llm.IsRetryable(err) {
		t.Fatalf("err = %v, want retryable ErrTransient", err)
	}
}

func TestInjectorOutageSwallowsDepthAttempts(t *testing.T) {
	inner := &echoClient{}
	in := New(inner, Plan{OutageRate: 1, OutageDepth: 3}, 1)
	for a := 0; a < 3; a++ {
		if _, err := in.Complete(llm.Request{Prompt: "down"}); !errors.Is(err, llm.ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want outage ErrTransient", a, err)
		}
	}
	r, err := in.Complete(llm.Request{Prompt: "down"})
	if err != nil || r.Text == "" {
		t.Fatalf("attempt past outage depth must succeed, got %v / %q", err, r.Text)
	}
	if s := in.Stats(); s.OutageHits != 3 {
		t.Fatalf("OutageHits = %d, want 3", s.OutageHits)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (outage never reaches endpoint)", inner.calls)
	}
}

func TestInjectorTruncateAndGarble(t *testing.T) {
	tr := New(&echoClient{}, Plan{TruncateRate: 1}, 1)
	r, err := tr.Complete(llm.Request{Prompt: "cut"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text == "alpha beta gamma delta" || r.Text == "" {
		t.Fatalf("truncation left text unchanged: %q", r.Text)
	}
	if int(r.CompletionTokens) >= 4 {
		t.Fatalf("truncated completion tokens = %d, want < 4", r.CompletionTokens)
	}

	ga := New(&echoClient{}, Plan{GarbleRate: 1}, 1)
	g, err := ga.Complete(llm.Request{Prompt: "corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Text == "alpha beta gamma delta" || g.Text == "" {
		t.Fatalf("garbling left text unchanged: %q", g.Text)
	}
	// Garbled text is itself deterministic.
	g2, _ := New(&echoClient{}, Plan{GarbleRate: 1}, 1).Complete(llm.Request{Prompt: "corrupt"})
	if g2.Text != g.Text {
		t.Fatalf("garble nondeterministic: %q vs %q", g.Text, g2.Text)
	}
}

func TestInjectorZeroPlanTransparent(t *testing.T) {
	inner := &echoClient{}
	in := New(inner, Plan{}, 1)
	for i := 0; i < 20; i++ {
		r, err := in.Complete(llm.Request{Prompt: fmt.Sprintf("clean %d", i)})
		if err != nil || r.Text != "alpha beta gamma delta" {
			t.Fatalf("zero plan must be transparent, got %v / %q", err, r.Text)
		}
	}
	if s := in.Stats(); s.Injected() != 0 || s.Truncated != 0 || s.Garbled != 0 {
		t.Fatalf("zero plan injected something: %+v", s)
	}
}
