// Package faults provides a deterministic fault injector for the LLM
// call path. Every orchestrator this repository reproduces (RAG,
// semantic operators, extraction, agents) assumes the endpoint answers;
// real endpoints time out, rate-limit, truncate, garble, and flap. The
// Injector wraps any llm.Client and injects exactly those failures as a
// pure function of (prompt, seed, attempt#), so experiment E22 can
// measure pipeline reliability under faults without losing the repo's
// byte-identical-output determinism contract.
//
// Determinism by construction: the fault drawn for a call depends only
// on the prompt text, the injector seed, and how many times this
// injector has seen that prompt before (its per-prompt attempt number).
// It never depends on wall time, global call order, or goroutine
// scheduling — two injectors with the same seed given the same
// per-prompt call sequences inject identical faults, regardless of how
// calls from different prompts interleave.
//
// The injector is a plain llm.Client wrapper with no pipeline imports,
// so it composes under caches, cascades, and the resilient middleware
// in any order an experiment needs.
package faults

import (
	"fmt"
	"strings"
	"sync"

	"dataai/internal/llm"
	"dataai/internal/token"
)

// Plan sets the per-call fault probabilities. All rates are in [0,1]
// and are evaluated independently in a fixed precedence order per
// attempt: outage, then timeout, then rate limit, then transient, then
// (on an otherwise successful call) truncation and garbling.
type Plan struct {
	// TransientRate is the probability an attempt fails with
	// llm.ErrTransient before reaching the endpoint (connection reset:
	// nothing is charged).
	TransientRate float64
	// RateLimitRate is the probability an attempt is refused with a
	// llm.RateLimitError carrying RetryAfterMS.
	RateLimitRate float64
	// RetryAfterMS is the hint carried by injected rate-limit errors
	// (default 40ms when zero).
	RetryAfterMS float64
	// TimeoutRate is the probability an attempt times out: the request
	// was sent, so its prompt tokens and TimeoutMS of latency are
	// charged as waste, but no answer comes back.
	TimeoutRate float64
	// TimeoutMS is the simulated latency charged by a timeout (default
	// 250ms when zero).
	TimeoutMS float64
	// OutageRate is the probability a given prompt falls inside a
	// sustained outage window: its first OutageDepth attempts all fail
	// with llm.ErrTransient no matter what, modelling an endpoint that
	// is down for a stretch rather than flapping per call.
	OutageRate float64
	// OutageDepth is how many attempts an outage swallows (default 4
	// when zero and OutageRate > 0).
	OutageDepth int
	// TruncateRate is the probability a successful completion comes
	// back cut to half its tokens (a dropped stream).
	TruncateRate float64
	// GarbleRate is the probability a successful completion comes back
	// as deterministic garbage (a corrupted payload).
	GarbleRate float64
}

// Light returns a mild plan: occasional flaps, rare timeouts.
func Light() Plan {
	return Plan{TransientRate: 0.03, RateLimitRate: 0.02, TimeoutRate: 0.02, TruncateRate: 0.01, GarbleRate: 0.01}
}

// Medium returns a plan with noticeable failure pressure.
func Medium() Plan {
	return Plan{TransientRate: 0.08, RateLimitRate: 0.06, TimeoutRate: 0.06, OutageRate: 0.03, OutageDepth: 3, TruncateRate: 0.03, GarbleRate: 0.03}
}

// Severe returns a plan modelling a badly degraded endpoint, including
// outage windows deeper than a typical retry budget.
func Severe() Plan {
	return Plan{TransientRate: 0.15, RateLimitRate: 0.12, TimeoutRate: 0.12, OutageRate: 0.10, OutageDepth: 5, TruncateRate: 0.06, GarbleRate: 0.06}
}

// Stats counts what the injector did, for experiment waste reporting.
type Stats struct {
	// Calls is every Complete invocation observed.
	Calls int64
	// Transient, RateLimited, Timeouts, and OutageHits count injected
	// errors by kind (outage hits are reported separately from the
	// per-call transient draw they share an error type with).
	Transient   int64
	RateLimited int64
	Timeouts    int64
	OutageHits  int64
	// Truncated and Garbled count corrupted-but-delivered completions.
	Truncated int64
	Garbled   int64
	// WastedPromptTokens and WastedLatencyMS total the work charged to
	// calls that returned no answer (timeouts).
	WastedPromptTokens int64
	WastedLatencyMS    float64
}

// Injected reports the total number of injected errors.
func (s Stats) Injected() int64 {
	return s.Transient + s.RateLimited + s.Timeouts + s.OutageHits
}

// Injector wraps an inner llm.Client and injects Plan faults. Safe for
// concurrent use. Construct with New.
type Injector struct {
	inner llm.Client
	plan  Plan
	seed  uint64

	mu       sync.Mutex
	attempts map[uint64]int
	stats    Stats
}

// New returns an Injector over inner driven by plan and seed.
func New(inner llm.Client, plan Plan, seed uint64) *Injector {
	return &Injector{inner: inner, plan: plan, seed: seed, attempts: make(map[uint64]int)}
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// draw returns a deterministic uniform in [0,1) for (prompt, seed,
// attempt, salt) — the injector's only source of randomness. It is
// Uniform over the injector's historical key format, so existing
// experiment outputs are unchanged.
func (in *Injector) draw(prompt string, attempt int, salt string) float64 {
	return Uniform(in.seed, fmt.Sprintf("%s\x00%d\x00%s", prompt, attempt, salt))
}

// Complete implements llm.Client.
func (in *Injector) Complete(req llm.Request) (llm.Response, error) {
	key := token.Hash64Seed(req.Prompt, uint64(req.MaxTokens)+0x5eed)
	in.mu.Lock()
	attempt := in.attempts[key]
	in.attempts[key] = attempt + 1
	in.stats.Calls++
	in.mu.Unlock()

	retryAfter := in.plan.RetryAfterMS
	if retryAfter <= 0 {
		retryAfter = 40
	}
	timeoutMS := in.plan.TimeoutMS
	if timeoutMS <= 0 {
		timeoutMS = 250
	}
	outageDepth := in.plan.OutageDepth
	if outageDepth <= 0 {
		outageDepth = 4
	}

	// Sustained outage: the outage draw is attempt-independent (the
	// window belongs to the prompt), and swallows the first
	// outageDepth attempts.
	if in.plan.OutageRate > 0 && attempt < outageDepth &&
		in.draw(req.Prompt, 0, "outage") < in.plan.OutageRate {
		in.count(func(s *Stats) { s.OutageHits++ })
		return llm.Response{}, fmt.Errorf("%w: endpoint outage (attempt %d)", llm.ErrTransient, attempt)
	}
	if in.draw(req.Prompt, attempt, "timeout") < in.plan.TimeoutRate {
		wasted := token.Count(req.Prompt)
		in.count(func(s *Stats) {
			s.Timeouts++
			s.WastedPromptTokens += int64(wasted)
			s.WastedLatencyMS += timeoutMS
		})
		// The request was sent: charge its prompt tokens and the full
		// deadline as latency even though no answer comes back.
		return llm.Response{PromptTokens: wasted, LatencyMS: timeoutMS},
			fmt.Errorf("%w after %.0fms (attempt %d)", llm.ErrTimeout, timeoutMS, attempt)
	}
	if in.draw(req.Prompt, attempt, "ratelimit") < in.plan.RateLimitRate {
		in.count(func(s *Stats) { s.RateLimited++ })
		return llm.Response{}, &llm.RateLimitError{RetryAfterMS: retryAfter}
	}
	if in.draw(req.Prompt, attempt, "transient") < in.plan.TransientRate {
		in.count(func(s *Stats) { s.Transient++ })
		return llm.Response{}, fmt.Errorf("%w: connection reset (attempt %d)", llm.ErrTransient, attempt)
	}

	resp, err := in.inner.Complete(req)
	if err != nil {
		return resp, err
	}
	if in.draw(req.Prompt, attempt, "truncate") < in.plan.TruncateRate {
		in.count(func(s *Stats) { s.Truncated++ })
		resp.Text = truncateHalf(resp.Text)
		resp.CompletionTokens = token.Count(resp.Text)
	}
	if in.draw(req.Prompt, attempt, "garble") < in.plan.GarbleRate {
		in.count(func(s *Stats) { s.Garbled++ })
		resp.Text = garble(resp.Text, in.seed)
	}
	return resp, nil
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// truncateHalf cuts text to the first half of its tokens (at least one),
// simulating a dropped response stream.
func truncateHalf(text string) string {
	toks := token.Tokenize(text)
	if len(toks) <= 1 {
		return text
	}
	return token.Detokenize(toks[:(len(toks)+1)/2])
}

// garble replaces text with deterministic junk of similar length,
// simulating payload corruption the caller cannot parse.
func garble(text string, seed uint64) string {
	n := len(token.Tokenize(text))
	if n < 1 {
		n = 1
	}
	syll := []string{"zx", "qv", "kj", "wq", "xr", "vz", "jq", "gk"}
	h := token.Hash64Seed(text, seed^0x6a5b1e)
	parts := make([]string, n)
	for i := range parts {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		parts[i] = syll[h%uint64(len(syll))]
	}
	return strings.Join(parts, " ")
}
