package vecdb

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dataai/internal/embed"
)

// IVF is an inverted-file approximate index: vectors are partitioned into
// nlist cells by a k-means coarse quantizer; a search probes only the
// nprobe cells whose centroids are closest to the query. Vectors may be
// added before training — Train clusters whatever has been buffered, and
// later Adds assign to the nearest existing centroid.
type IVF struct {
	parallelism
	mu        sync.RWMutex
	dim       int
	nlist     int
	nprobe    int
	seed      int64
	trained   bool
	centroids [][]float32
	cells     [][]entry // cells[c] holds entries assigned to centroid c
	pending   []entry   // buffered before training
	ids       map[string]bool
	dists     atomic.Uint64
}

// DistComps implements DistCounter.
func (iv *IVF) DistComps() uint64 { return iv.dists.Load() }

type entry struct {
	id  string
	vec []float32
}

// NewIVF returns an IVF index with nlist cells probing nprobe cells per
// search. nprobe is clamped to [1, nlist].
func NewIVF(dim, nlist, nprobe int, seed int64) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVF{dim: dim, nlist: nlist, nprobe: nprobe, seed: seed, ids: make(map[string]bool)}
}

// Dim implements Index.
func (iv *IVF) Dim() int { return iv.dim }

// Len implements Index.
func (iv *IVF) Len() int {
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	n := len(iv.pending)
	for _, c := range iv.cells {
		n += len(c)
	}
	return n
}

// SetNProbe adjusts the number of probed cells, clamped to [1, nlist].
// This is the recall/latency knob swept in experiment E16.
func (iv *IVF) SetNProbe(n int) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > iv.nlist {
		n = iv.nlist
	}
	iv.nprobe = n
}

// Add implements Index.
func (iv *IVF) Add(id string, vec []float32) error {
	if len(vec) != iv.dim {
		return fmt.Errorf("%w: got %d want %d", ErrDimension, len(vec), iv.dim)
	}
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if iv.ids[id] {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	iv.ids[id] = true
	cp := make([]float32, len(vec))
	copy(cp, vec)
	e := entry{id: id, vec: cp}
	if !iv.trained {
		iv.pending = append(iv.pending, e)
		return nil
	}
	c := iv.nearestCentroid(cp)
	iv.cells[c] = append(iv.cells[c], e)
	return nil
}

// Train runs k-means (iters iterations, k-means++ style seeding by
// sampling without replacement) over the buffered vectors and assigns
// them to cells. Training an already-trained index re-clusters all
// stored vectors.
func (iv *IVF) Train(iters int) error {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	// Gather every stored vector.
	all := iv.pending
	for _, c := range iv.cells {
		all = append(all, c...)
	}
	if len(all) == 0 {
		return ErrEmptyIndex
	}
	k := iv.nlist
	if k > len(all) {
		k = len(all)
	}
	rng := rand.New(rand.NewSource(iv.seed))
	// Seed centroids with a random sample of stored vectors.
	perm := rng.Perm(len(all))
	cents := make([][]float32, k)
	for i := 0; i < k; i++ {
		cents[i] = append([]float32(nil), all[perm[i]].vec...)
	}
	assign := make([]int, len(all))
	for it := 0; it < iters; it++ {
		changed := false
		iv.dists.Add(uint64(len(all)) * uint64(k))
		for i, e := range all {
			best, bestDot := 0, float32(-1<<30)
			for c, cent := range cents {
				if d := embed.Dot(e.vec, cent); d > bestDot {
					best, bestDot = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids as normalized means.
		sums := make([][]float32, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float32, iv.dim)
		}
		for i, e := range all {
			c := assign[i]
			counts[c]++
			for j, x := range e.vec {
				sums[c][j] += x
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cell with a random vector so no
				// cell is wasted.
				cents[c] = append([]float32(nil), all[rng.Intn(len(all))].vec...)
				continue
			}
			embed.Normalize(sums[c])
			cents[c] = sums[c]
		}
		if !changed && it > 0 {
			break
		}
	}
	cells := make([][]entry, k)
	for i, e := range all {
		cells[assign[i]] = append(cells[assign[i]], e)
	}
	iv.centroids = cents
	iv.cells = cells
	iv.pending = nil
	iv.trained = true
	if iv.nprobe > k {
		iv.nprobe = k
	}
	return nil
}

func (iv *IVF) nearestCentroid(vec []float32) int {
	best, bestDot := 0, float32(-1<<30)
	for c, cent := range iv.centroids {
		if d := embed.Dot(vec, cent); d > bestDot {
			best, bestDot = c, d
		}
	}
	iv.dists.Add(uint64(len(iv.centroids)))
	return best
}

// Search implements Index. An untrained index falls back to an exact
// scan over the buffered vectors.
func (iv *IVF) Search(query []float32, k int) ([]Result, error) {
	if len(query) != iv.dim {
		return nil, fmt.Errorf("%w: got %d want %d", ErrDimension, len(query), iv.dim)
	}
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	h := newTopK(k)
	if !iv.trained {
		if len(iv.pending) == 0 {
			return nil, ErrEmptyIndex
		}
		for _, e := range iv.pending {
			h.offer(Result{ID: e.id, Score: embed.Dot(query, e.vec)})
		}
		iv.dists.Add(uint64(len(iv.pending)))
		return h.sorted(), nil
	}
	// Count stored entries inline: calling Len() here would re-acquire
	// the read lock, which deadlocks against a writer queued between the
	// two acquisitions.
	stored := 0
	for _, c := range iv.cells {
		stored += len(c)
	}
	if stored == 0 {
		return nil, ErrEmptyIndex
	}
	// Rank cells by centroid similarity, probe the top nprobe.
	type cs struct {
		cell int
		dot  float32
	}
	ranked := make([]cs, len(iv.centroids))
	for c, cent := range iv.centroids {
		ranked[c] = cs{c, embed.Dot(query, cent)}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].dot > ranked[j].dot })
	probes := iv.nprobe
	if probes > len(ranked) {
		probes = len(ranked)
	}
	dots := uint64(len(iv.centroids))
	for i := 0; i < probes; i++ {
		for _, e := range iv.cells[ranked[i].cell] {
			dots++
			h.offer(Result{ID: e.id, Score: embed.Dot(query, e.vec)})
		}
	}
	iv.dists.Add(dots)
	return h.sorted(), nil
}
