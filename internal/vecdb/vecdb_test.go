package vecdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dataai/internal/embed"
)

// randomUnit generates a deterministic unit vector.
func randomUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	embed.Normalize(v)
	return v
}

func fillIndex(t *testing.T, idx Index, n, dim int, seed int64) [][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		vecs[i] = randomUnit(rng, dim)
		if err := idx.Add(fmt.Sprintf("v%04d", i), vecs[i]); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	return vecs
}

func TestFlatExactNearest(t *testing.T) {
	const dim = 16
	f := NewFlat(dim)
	vecs := fillIndex(t, f, 100, dim, 1)
	// Query exactly equal to vector 42: it must come back first.
	res, err := f.Search(vecs[42], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	if res[0].ID != "v0042" {
		t.Errorf("nearest = %s, want v0042", res[0].ID)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Error("results not sorted by score")
		}
	}
}

func TestFlatErrors(t *testing.T) {
	f := NewFlat(4)
	if _, err := f.Search([]float32{1, 0, 0, 0}, 3); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("empty search err = %v, want ErrEmptyIndex", err)
	}
	if err := f.Add("a", []float32{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("bad dim err = %v", err)
	}
	if err := f.Add("a", []float32{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("a", []float32{0, 1, 0, 0}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup err = %v", err)
	}
	if _, err := f.Search([]float32{1}, 3); !errors.Is(err, ErrDimension) {
		t.Errorf("bad query dim err = %v", err)
	}
	if _, err := f.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing err = %v", err)
	}
}

func TestFlatGetReturnsStoredVector(t *testing.T) {
	f := NewFlat(3)
	in := []float32{0.1, 0.2, 0.3}
	if err := f.Add("x", in); err != nil {
		t.Fatal(err)
	}
	in[0] = 99 // mutate caller copy; index must be unaffected
	got, err := f.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.1 {
		t.Error("index did not copy the inserted vector")
	}
}

func TestFlatSearchFilter(t *testing.T) {
	const dim = 8
	f := NewFlat(dim)
	vecs := fillIndex(t, f, 50, dim, 2)
	keepOdd := func(id string) bool { return (id[4]-'0')%2 == 1 }
	res, err := f.SearchFilter(vecs[3], 10, keepOdd)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !keepOdd(r.ID) {
			t.Errorf("filter leaked id %s", r.ID)
		}
	}
}

func TestFlatFewerThanK(t *testing.T) {
	f := NewFlat(2)
	_ = f.Add("only", []float32{1, 0})
	res, err := f.Search([]float32{1, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("got %d results, want 1", len(res))
	}
}

func TestIVFRecallImprovesWithNProbe(t *testing.T) {
	const dim, n = 32, 2000
	flat := NewFlat(dim)
	ivf := NewIVF(dim, 32, 1, 7)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v := randomUnit(rng, dim)
		id := fmt.Sprintf("v%05d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := ivf.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ivf.Train(10); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 20)
	for i := range queries {
		queries[i] = randomUnit(rng, dim)
	}
	recallAt := func(nprobe int) float64 {
		ivf.SetNProbe(nprobe)
		var sum float64
		for _, q := range queries {
			exact, err := flat.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := ivf.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sum += Recall(approx, exact)
		}
		return sum / float64(len(queries))
	}
	r1 := recallAt(1)
	r8 := recallAt(8)
	rAll := recallAt(32)
	if r8 < r1 {
		t.Errorf("recall decreased with more probes: nprobe1=%v nprobe8=%v", r1, r8)
	}
	if rAll < 0.999 {
		t.Errorf("probing all cells should be exact, recall=%v", rAll)
	}
}

func TestIVFUntrainedFallsBackToExact(t *testing.T) {
	const dim = 8
	ivf := NewIVF(dim, 4, 2, 1)
	vecs := fillIndex(t, ivf, 30, dim, 4)
	res, err := ivf.Search(vecs[7], 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != "v0007" {
		t.Errorf("untrained IVF nearest = %s", res[0].ID)
	}
}

func TestIVFAddAfterTrain(t *testing.T) {
	const dim = 8
	ivf := NewIVF(dim, 4, 4, 1)
	fillIndex(t, ivf, 40, dim, 5)
	if err := ivf.Train(5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	late := randomUnit(rng, dim)
	if err := ivf.Add("late", late); err != nil {
		t.Fatal(err)
	}
	if ivf.Len() != 41 {
		t.Errorf("Len = %d, want 41", ivf.Len())
	}
	res, err := ivf.Search(late, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != "late" {
		t.Errorf("late vector not found, got %s", res[0].ID)
	}
}

func TestIVFTrainEmpty(t *testing.T) {
	ivf := NewIVF(4, 2, 1, 0)
	if err := ivf.Train(3); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("Train on empty = %v, want ErrEmptyIndex", err)
	}
}

func TestIVFDuplicate(t *testing.T) {
	ivf := NewIVF(2, 2, 1, 0)
	if err := ivf.Add("a", []float32{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ivf.Add("a", []float32{0, 1}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup err = %v", err)
	}
}

func TestHNSWHighRecall(t *testing.T) {
	const dim, n = 32, 2000
	flat := NewFlat(dim)
	hnsw := NewHNSW(dim, 16, 128, 11)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < n; i++ {
		v := randomUnit(rng, dim)
		id := fmt.Sprintf("v%05d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := hnsw.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	var sum float64
	const q = 20
	for i := 0; i < q; i++ {
		query := randomUnit(rng, dim)
		exact, err := flat.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := hnsw.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		sum += Recall(approx, exact)
	}
	if avg := sum / q; avg < 0.85 {
		t.Errorf("HNSW recall@10 = %v, want >= 0.85", avg)
	}
}

func TestHNSWSelfQuery(t *testing.T) {
	const dim = 16
	h := NewHNSW(dim, 8, 64, 2)
	vecs := fillIndex(t, h, 300, dim, 8)
	hits := 0
	for i := 0; i < 300; i += 17 {
		res, err := h.Search(vecs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID == fmt.Sprintf("v%04d", i) {
			hits++
		}
	}
	if hits < 15 { // 18 probes; allow a couple of graph misses
		t.Errorf("self-query hits = %d/18", hits)
	}
}

func TestHNSWEFSearchImprovesRecall(t *testing.T) {
	const dim, n = 24, 1500
	flat := NewFlat(dim)
	h := NewHNSW(dim, 8, 64, 13)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < n; i++ {
		v := randomUnit(rng, dim)
		id := fmt.Sprintf("v%05d", i)
		_ = flat.Add(id, v)
		if err := h.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([][]float32, 15)
	for i := range queries {
		queries[i] = randomUnit(rng, dim)
	}
	recallAt := func(ef int) float64 {
		h.SetEFSearch(ef)
		var sum float64
		for _, q := range queries {
			exact, _ := flat.Search(q, 10)
			approx, err := h.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			sum += Recall(approx, exact)
		}
		return sum / float64(len(queries))
	}
	low := recallAt(10)
	high := recallAt(256)
	if high < low {
		t.Errorf("recall fell as efSearch grew: ef10=%v ef256=%v", low, high)
	}
	if high < 0.9 {
		t.Errorf("recall at ef=256 too low: %v", high)
	}
}

func TestHNSWErrors(t *testing.T) {
	h := NewHNSW(4, 4, 8, 0)
	if _, err := h.Search([]float32{1, 0, 0, 0}, 1); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("empty err = %v", err)
	}
	if err := h.Add("a", []float32{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("dim err = %v", err)
	}
	_ = h.Add("a", []float32{1, 0, 0, 0})
	if err := h.Add("a", []float32{0, 1, 0, 0}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup err = %v", err)
	}
}

func TestRecallHelper(t *testing.T) {
	got := []Result{{ID: "a"}, {ID: "b"}}
	want := []Result{{ID: "a"}, {ID: "c"}}
	if r := Recall(got, want); r != 0.5 {
		t.Errorf("Recall = %v, want 0.5", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("Recall empty = %v, want 1", r)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	const dim = 8
	f := NewFlat(dim)
	vecs := fillIndex(t, f, 25, dim, 21)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 25 || loaded.Dim() != dim {
		t.Fatalf("loaded Len=%d Dim=%d", loaded.Len(), loaded.Dim())
	}
	a, _ := f.Search(vecs[5], 3)
	b, _ := loaded.Search(vecs[5], 3)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("result %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
}

func TestLoadFlatCorrupt(t *testing.T) {
	if _, err := LoadFlat(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("expected error for corrupt input")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	h := newTopK(2)
	h.offer(Result{ID: "b", Score: 1})
	h.offer(Result{ID: "a", Score: 1})
	h.offer(Result{ID: "c", Score: 1})
	out := h.sorted()
	if out[0].ID != "a" && out[0].ID != "b" {
		t.Errorf("unexpected top: %v", out)
	}
	if out[0].ID > out[1].ID {
		t.Errorf("ties not broken by ID: %v", out)
	}
}

func benchIndex(b *testing.B, mk func() Index, n int) {
	const dim = 64
	idx := mk()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		if err := idx.Add(fmt.Sprintf("v%06d", i), randomUnit(rng, dim)); err != nil {
			b.Fatal(err)
		}
	}
	if iv, ok := idx.(*IVF); ok {
		if err := iv.Train(8); err != nil {
			b.Fatal(err)
		}
	}
	q := randomUnit(rng, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatSearch10k(b *testing.B) {
	benchIndex(b, func() Index { return NewFlat(64) }, 10000)
}

func BenchmarkIVFSearch10k(b *testing.B) {
	benchIndex(b, func() Index { return NewIVF(64, 64, 8, 1) }, 10000)
}

func BenchmarkHNSWSearch10k(b *testing.B) {
	benchIndex(b, func() Index { return NewHNSW(64, 16, 100, 1) }, 10000)
}
