package vecdb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestFlatDelete(t *testing.T) {
	f := NewFlat(4)
	for i := 0; i < 10; i++ {
		v := []float32{float32(i), 1, 0, 0}
		if err := f.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Delete("v3"); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 9 {
		t.Errorf("Len = %d", f.Len())
	}
	if _, err := f.Get("v3"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted vector still retrievable")
	}
	// Swap-removed element must still be addressable.
	if _, err := f.Get("v9"); err != nil {
		t.Errorf("swap victim lost: %v", err)
	}
	res, err := f.Search([]float32{3, 1, 0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == "v3" {
			t.Error("deleted vector in results")
		}
	}
	if err := f.Delete("v3"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	// Deleted id can be re-added.
	if err := f.Add("v3", []float32{9, 9, 9, 9}); err != nil {
		t.Errorf("re-add after delete: %v", err)
	}
}

func TestIVFDelete(t *testing.T) {
	iv := NewIVF(4, 4, 4, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		if err := iv.Add(fmt.Sprintf("v%d", i), randomUnit(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete pre-training (pending) and post-training (cells).
	if err := iv.Delete("v5"); err != nil {
		t.Fatal(err)
	}
	if err := iv.Train(5); err != nil {
		t.Fatal(err)
	}
	if err := iv.Delete("v6"); err != nil {
		t.Fatal(err)
	}
	if iv.Len() != 38 {
		t.Errorf("Len = %d, want 38", iv.Len())
	}
	if err := iv.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	res, err := iv.Search(randomUnit(rng, 4), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == "v5" || r.ID == "v6" {
			t.Error("deleted vector in results")
		}
	}
}

func TestHNSWDeleteTombstones(t *testing.T) {
	h := NewHNSW(8, 8, 32, 3)
	rng := rand.New(rand.NewSource(4))
	vecs := make([][]float32, 50)
	for i := range vecs {
		vecs[i] = randomUnit(rng, 8)
		if err := h.Add(fmt.Sprintf("v%02d", i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Delete("v07"); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 49 || h.Deleted() != 1 {
		t.Errorf("Len=%d Deleted=%d", h.Len(), h.Deleted())
	}
	// Self-query for the deleted vector must not return it.
	res, err := h.Search(vecs[7], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == "v07" {
			t.Error("tombstoned vector returned")
		}
	}
	if err := h.Delete("v07"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if err := h.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	// Graph still routes correctly for live vectors.
	res, err = h.Search(vecs[20], 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != "v20" {
		t.Errorf("post-delete self query = %s", res[0].ID)
	}
}

func TestDeleteViaInterface(t *testing.T) {
	for _, idx := range []Index{NewFlat(4), NewIVF(4, 2, 1, 1), NewHNSW(4, 4, 8, 1)} {
		if err := idx.Add("a", []float32{1, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if err := idx.Delete("a"); err != nil {
			t.Fatalf("%T: %v", idx, err)
		}
		if idx.Len() != 0 {
			t.Errorf("%T: Len = %d after delete", idx, idx.Len())
		}
	}
}
