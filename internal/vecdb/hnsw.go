package vecdb

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"dataai/internal/embed"
)

// HNSW is a hierarchical navigable small world graph index (Malkov &
// Yashunin). Inner product is the similarity; construction is
// deterministic for a given seed and insertion order.
type HNSW struct {
	parallelism
	mu             sync.RWMutex
	dim            int
	m              int // max links per node on upper levels
	m0             int // max links on level 0
	efConstruction int
	efSearch       int
	levelMult      float64
	rng            *rand.Rand

	nodes []*hnswNode
	pos   map[string]int
	entry int // index into nodes, -1 when empty
	top   int // highest level in the graph
	// tombstones marks deleted nodes: they still route searches but are
	// excluded from results (see delete.go).
	tombstones map[int]bool
	dists      atomic.Uint64
}

// DistComps implements DistCounter.
func (h *HNSW) DistComps() uint64 { return h.dists.Load() }

type hnswNode struct {
	id    string
	vec   []float32
	level int
	// links[l] lists neighbor node indexes at level l, 0 <= l <= level.
	links [][]int
}

// NewHNSW returns an empty HNSW index. m is the graph degree (16 is a
// conventional default), efConstruction the construction beam width.
func NewHNSW(dim, m, efConstruction int, seed int64) *HNSW {
	if m < 2 {
		m = 2
	}
	if efConstruction < m {
		efConstruction = m
	}
	return &HNSW{
		dim:            dim,
		m:              m,
		m0:             2 * m,
		efConstruction: efConstruction,
		efSearch:       efConstruction,
		levelMult:      1 / math.Log(float64(m)),
		rng:            rand.New(rand.NewSource(seed)),
		pos:            make(map[string]int),
		entry:          -1,
	}
}

// SetEFSearch sets the search beam width (the recall/latency knob swept
// in experiment E16). Values below 1 are clamped to 1.
func (h *HNSW) SetEFSearch(ef int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ef < 1 {
		ef = 1
	}
	h.efSearch = ef
}

// Dim implements Index.
func (h *HNSW) Dim() int { return h.dim }

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes) - len(h.tombstones)
}

func (h *HNSW) maxLinks(level int) int {
	if level == 0 {
		return h.m0
	}
	return h.m
}

// Add implements Index.
func (h *HNSW) Add(id string, vec []float32) error {
	if len(vec) != h.dim {
		return fmt.Errorf("%w: got %d want %d", ErrDimension, len(vec), h.dim)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.pos[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	cp := make([]float32, len(vec))
	copy(cp, vec)
	level := int(math.Floor(-math.Log(h.rng.Float64()+1e-12) * h.levelMult))
	n := &hnswNode{id: id, vec: cp, level: level, links: make([][]int, level+1)}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, n)
	h.pos[id] = idx

	if h.entry < 0 {
		h.entry, h.top = idx, level
		return nil
	}

	ep := h.entry
	// Greedy descent through levels above the new node's level.
	for l := h.top; l > level; l-- {
		ep = h.greedyClosest(cp, ep, l)
	}
	// Insert with beam search on each level the node participates in.
	for l := min(level, h.top); l >= 0; l-- {
		cands := h.searchLayer(cp, ep, h.efConstruction, l)
		maxL := h.maxLinks(l)
		neighbors := h.selectNeighbors(cands, maxL)
		n.links[l] = append([]int(nil), neighbors...)
		for _, nb := range neighbors {
			nbNode := h.nodes[nb]
			nbNode.links[l] = append(nbNode.links[l], idx)
			if len(nbNode.links[l]) > maxL {
				nbNode.links[l] = h.shrink(nbNode.vec, nbNode.links[l], maxL)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].node
		}
	}
	if level > h.top {
		h.top, h.entry = level, idx
	}
	return nil
}

type scored struct {
	node int
	dot  float32
}

// greedyClosest walks level l edges greedily toward vec.
func (h *HNSW) greedyClosest(vec []float32, ep, l int) int {
	cur := ep
	curDot := embed.Dot(vec, h.nodes[cur].vec)
	dots := uint64(1)
	for {
		improved := false
		node := h.nodes[cur]
		if l < len(node.links) {
			dots += uint64(len(node.links[l]))
			for _, nb := range node.links[l] {
				if d := embed.Dot(vec, h.nodes[nb].vec); d > curDot {
					cur, curDot = nb, d
					improved = true
				}
			}
		}
		if !improved {
			h.dists.Add(dots)
			return cur
		}
	}
}

// searchLayer runs a beam search of width ef on level l starting at ep,
// returning candidates sorted most similar first.
func (h *HNSW) searchLayer(vec []float32, ep, ef, l int) []scored {
	visited := map[int]bool{ep: true}
	epDot := embed.Dot(vec, h.nodes[ep].vec)
	dots := uint64(1)
	defer func() { h.dists.Add(dots) }()
	cand := &maxHeap{{ep, epDot}}
	result := &minHeap{{ep, epDot}}
	for cand.Len() > 0 {
		c := heap.Pop(cand).(scored)
		if result.Len() >= ef && c.dot < (*result)[0].dot {
			break
		}
		node := h.nodes[c.node]
		if l >= len(node.links) {
			continue
		}
		for _, nb := range node.links[l] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			dots++
			d := embed.Dot(vec, h.nodes[nb].vec)
			if result.Len() < ef || d > (*result)[0].dot {
				heap.Push(cand, scored{nb, d})
				heap.Push(result, scored{nb, d})
				if result.Len() > ef {
					heap.Pop(result)
				}
			}
		}
	}
	out := make([]scored, result.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(result).(scored)
	}
	return out
}

// selectNeighbors keeps the top max candidates by similarity.
func (h *HNSW) selectNeighbors(cands []scored, max int) []int {
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// shrink re-selects the best max links for a node whose list overflowed.
func (h *HNSW) shrink(vec []float32, links []int, max int) []int {
	cands := make([]scored, len(links))
	h.dists.Add(uint64(len(links)))
	for i, nb := range links {
		cands[i] = scored{nb, embed.Dot(vec, h.nodes[nb].vec)}
	}
	// Partial selection sort for the top max — lists are small.
	for i := 0; i < max && i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dot > cands[best].dot {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// Search implements Index.
func (h *HNSW) Search(query []float32, k int) ([]Result, error) {
	if len(query) != h.dim {
		return nil, fmt.Errorf("%w: got %d want %d", ErrDimension, len(query), h.dim)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.entry < 0 {
		return nil, ErrEmptyIndex
	}
	ep := h.entry
	for l := h.top; l > 0; l-- {
		ep = h.greedyClosest(query, ep, l)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	// Tombstoned nodes still route but cannot be returned; widen the
	// beam so k live results survive the filter.
	ef += len(h.tombstones)
	cands := h.searchLayer(query, ep, ef, 0)
	tk := newTopK(k)
	for _, c := range cands {
		if h.tombstones[c.node] {
			continue
		}
		tk.offer(Result{ID: h.nodes[c.node].id, Score: c.dot})
	}
	return tk.sorted(), nil
}

// maxHeap pops the highest-dot candidate first.
type maxHeap []scored

func (q maxHeap) Len() int            { return len(q) }
func (q maxHeap) Less(i, j int) bool  { return q[i].dot > q[j].dot }
func (q maxHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *maxHeap) Push(x interface{}) { *q = append(*q, x.(scored)) }
func (q *maxHeap) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// minHeap pops the lowest-dot result first (for bounding the beam).
type minHeap []scored

func (q minHeap) Len() int            { return len(q) }
func (q minHeap) Less(i, j int) bool  { return q[i].dot < q[j].dot }
func (q minHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *minHeap) Push(x interface{}) { *q = append(*q, x.(scored)) }
func (q *minHeap) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
