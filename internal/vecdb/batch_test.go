package vecdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// fillFlat populates a Flat index with n seeded random unit vectors.
func fillFlat(t testing.TB, n, dim int, seed int64) (*Flat, [][]float32) {
	t.Helper()
	f := NewFlat(dim)
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		vecs[i] = v
		if err := f.Add(fmt.Sprintf("v%06d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return f, vecs
}

// TestFlatParallelScanMatchesSerial is the determinism contract for the
// sharded scan: at every worker count, including counts that do not
// divide the index size, the parallel scan returns exactly the serial
// scan's results and counts exactly the serial number of inner products.
func TestFlatParallelScanMatchesSerial(t *testing.T) {
	const dim, n, k = 32, 6000, 10
	f, _ := fillFlat(t, n, dim, 42)
	rng := rand.New(rand.NewSource(7))
	queries := make([][]float32, 20)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	for qi, q := range queries {
		f.SetParallelism(1)
		before := f.DistComps()
		want, err := f.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		serialDots := f.DistComps() - before
		for _, workers := range []int{2, 3, 4, 8} {
			f.SetParallelism(workers)
			before = f.DistComps()
			got, err := f.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if dots := f.DistComps() - before; dots != serialDots {
				t.Errorf("q%d w%d: %d dist comps, serial %d", qi, workers, dots, serialDots)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("q%d w%d: parallel results differ from serial\ngot  %v\nwant %v", qi, workers, got, want)
			}
		}
	}
}

// TestFlatParallelScanWithTies forces exact score ties — duplicate
// vectors under distinct ids — across shard boundaries, the adversarial
// case for order-dependent selection. The beats total order must yield
// identical results at every worker count.
func TestFlatParallelScanWithTies(t *testing.T) {
	const dim, n, k = 16, 6000, 8
	f := NewFlat(dim)
	rng := rand.New(rand.NewSource(3))
	base := make([][]float32, 5)
	for i := range base {
		base[i] = randVec(rng, dim)
	}
	// Every stored vector duplicates one of 5 base vectors, so every
	// search sees ~1200-way score ties straddling every shard boundary.
	for i := 0; i < n; i++ {
		if err := f.Add(fmt.Sprintf("dup%05d", i), base[i%len(base)]); err != nil {
			t.Fatal(err)
		}
	}
	q := randVec(rng, dim)
	f.SetParallelism(1)
	want, err := f.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8, 13} {
		f.SetParallelism(workers)
		got, err := f.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("w%d: tie-heavy parallel scan differs from serial\ngot  %v\nwant %v", workers, got, want)
		}
	}
}

// TestFlatParallelScanFiltered: the keep filter must compose with
// sharding — same results, and only kept vectors counted.
func TestFlatParallelScanFiltered(t *testing.T) {
	const dim, n, k = 16, 5000, 5
	f, _ := fillFlat(t, n, dim, 11)
	keep := func(id string) bool { return id[len(id)-1] == '3' }
	q := randVec(rand.New(rand.NewSource(5)), dim)
	f.SetParallelism(1)
	before := f.DistComps()
	want, err := f.SearchFilter(q, k, keep)
	if err != nil {
		t.Fatal(err)
	}
	serialDots := f.DistComps() - before
	f.SetParallelism(4)
	before = f.DistComps()
	got, err := f.SearchFilter(q, k, keep)
	if err != nil {
		t.Fatal(err)
	}
	if dots := f.DistComps() - before; dots != serialDots {
		t.Errorf("filtered parallel scan counted %d dist comps, serial %d", dots, serialDots)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered parallel scan differs from serial\ngot  %v\nwant %v", got, want)
	}
}

// TestSearchBatchMatchesSearchLoop: for all three index types, a batch
// is byte-identical to a serial Search loop at every worker count.
func TestSearchBatchMatchesSearchLoop(t *testing.T) {
	const dim, n, nq, k = 16, 400, 30, 5
	rng := rand.New(rand.NewSource(21))
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = randVec(rng, dim)
	}
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	fill := func(idx Index) {
		for i, v := range vecs {
			if err := idx.Add(fmt.Sprintf("v%04d", i), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	iv := NewIVF(dim, 8, 4, 9)
	fill(iv)
	if err := iv.Train(4); err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(dim)
	fill(flat)
	hnsw := NewHNSW(dim, 8, 32, 9)
	fill(hnsw)
	for name, idx := range map[string]Index{"flat": flat, "ivf": iv, "hnsw": hnsw} {
		want := make([][]Result, nq)
		for i, q := range queries {
			r, err := idx.Search(q, k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want[i] = r
		}
		for _, workers := range []int{1, 2, 4, 8} {
			idx.SetParallelism(workers)
			got, err := idx.SearchBatch(queries, k)
			if err != nil {
				t.Fatalf("%s w%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s w%d: SearchBatch differs from Search loop", name, workers)
			}
		}
	}
}

// TestSearchBatchErrors: dimension mismatches surface as the first
// failing query by index, and empty batches are fine.
func TestSearchBatchErrors(t *testing.T) {
	f, _ := fillFlat(t, 10, 8, 1)
	if out, err := f.SearchBatch(nil, 3); err != nil || out != nil {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
	good := make([]float32, 8)
	bad := make([]float32, 5)
	_, err := f.SearchBatch([][]float32{good, bad, bad}, 3)
	if err == nil {
		t.Fatal("want error for dimension mismatch")
	}
	want := "batch query 1"
	if got := err.Error(); !contains(got, want) {
		t.Fatalf("error %q does not name first failing query (%q)", got, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSearchBatchConcurrentAdd is the -race stress for the batch path:
// SearchBatch fans out internally while writers add vectors, covering
// the RLock-per-query snapshot semantics. Results are not asserted
// (they legitimately depend on interleaving); the race detector and the
// per-query well-formedness checks are the point.
func TestSearchBatchConcurrentAdd(t *testing.T) {
	t.Parallel()
	const dim, k = 16, 5
	for name, idx := range map[string]Index{
		"flat": NewFlat(dim),
		"ivf":  NewIVF(dim, 8, 4, 5),
		"hnsw": NewHNSW(dim, 8, 32, 5),
	} {
		idx := idx
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			idx.SetParallelism(4)
			seedRng := rand.New(rand.NewSource(77))
			for i := 0; i < 64; i++ {
				if err := idx.Add(fmt.Sprintf("seed%03d", i), randVec(seedRng, dim)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(200 + w)))
					for i := 0; i < 80; i++ {
						if err := idx.Add(fmt.Sprintf("w%d-%03d", w, i), randVec(rng, dim)); err != nil {
							t.Errorf("Add: %v", err)
							return
						}
					}
				}(w)
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(300 + r)))
					for i := 0; i < 20; i++ {
						queries := make([][]float32, 8)
						for j := range queries {
							queries[j] = randVec(rng, dim)
						}
						res, err := idx.SearchBatch(queries, k)
						if err != nil {
							t.Errorf("SearchBatch: %v", err)
							return
						}
						if len(res) != len(queries) {
							t.Errorf("SearchBatch returned %d result sets for %d queries", len(res), len(queries))
							return
						}
						for qi, rs := range res {
							for ri := 1; ri < len(rs); ri++ {
								if beats(rs[ri], rs[ri-1]) {
									t.Errorf("query %d: results out of order at %d", qi, ri)
									return
								}
							}
						}
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestSetParallelismClamp: negative values behave like the default.
func TestSetParallelismClamp(t *testing.T) {
	f := NewFlat(4)
	f.SetParallelism(-5)
	if w := f.searchWorkers(); w < 1 {
		t.Fatalf("searchWorkers after SetParallelism(-5) = %d", w)
	}
}
