package vecdb

import (
	"fmt"
	"sync/atomic"

	"dataai/internal/par"
)

// This file implements the batched search API: SearchBatch fans a query
// slice out across workers while committing per-query results in query
// order, so a batch is byte-identical to a serial Search loop at every
// worker count. Parallelism is a scheduling knob, never a semantics
// knob — the property every later scaling PR (sharding, batching,
// multi-backend) builds on.

// parallelism carries an index's search worker count. It is embedded in
// every index type; the zero value means "default", which resolves to
// GOMAXPROCS at search time.
type parallelism struct {
	w atomic.Int32
}

// SetParallelism sets the worker count used by SearchBatch (and, for
// Flat, the sharded single-query scan). n <= 0 restores the default:
// GOMAXPROCS at search time. Worker count never changes search results,
// only how the same work is scheduled; tests pin it so behaviour is
// identical on any machine.
func (p *parallelism) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	p.w.Store(int32(n))
}

// searchWorkers resolves the configured worker count.
func (p *parallelism) searchWorkers() int {
	if w := p.w.Load(); w > 0 {
		return int(w)
	}
	return par.DefaultWorkers()
}

// searchBatch fans queries out over workers goroutines through search,
// committing per-query results in query order. The first failing query
// (by query index, not completion order) determines the returned error.
func searchBatch(queries [][]float32, workers int, search func(q []float32) ([]Result, error)) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	type qr struct {
		res []Result
		err error
	}
	outs := par.Map(len(queries), workers, func(i int) qr {
		r, err := search(queries[i])
		return qr{res: r, err: err}
	})
	results := make([][]Result, len(outs))
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("vecdb: batch query %d: %w", i, o.err)
		}
		results[i] = o.res
	}
	return results, nil
}

// SearchBatch implements Index. Parallelism is across queries; each
// query's scan runs serially inside its worker (the sharded single-query
// scan is for latency on one query, the batch for throughput on many —
// stacking both would oversubscribe the pool).
func (f *Flat) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return searchBatch(queries, f.searchWorkers(), func(q []float32) ([]Result, error) {
		return f.searchOne(q, k, nil, 1)
	})
}

// SearchBatch implements Index. Each query takes the read lock
// independently, so a batch may interleave with concurrent Adds; every
// individual query still sees one consistent snapshot.
func (iv *IVF) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return searchBatch(queries, iv.searchWorkers(), func(q []float32) ([]Result, error) {
		return iv.Search(q, k)
	})
}

// SearchBatch implements Index. See IVF.SearchBatch on snapshot
// semantics under concurrent writes.
func (h *HNSW) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return searchBatch(queries, h.searchWorkers(), func(q []float32) ([]Result, error) {
		return h.Search(q, k)
	})
}
