package vecdb

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-disk representation of a Flat index.
type snapshot struct {
	Dim  int
	IDs  []string
	Vecs [][]float32
}

// Save serializes the Flat index to w in gob format.
func (f *Flat) Save(w io.Writer) error {
	f.mu.RLock()
	snap := snapshot{Dim: f.dim, IDs: f.ids, Vecs: f.vecs}
	f.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vecdb: save: %w", err)
	}
	return nil
}

// LoadFlat reads a Flat index previously written by Save.
func LoadFlat(r io.Reader) (*Flat, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecdb: load: %w", err)
	}
	f := NewFlat(snap.Dim)
	for i, id := range snap.IDs {
		if len(snap.Vecs[i]) != snap.Dim {
			return nil, fmt.Errorf("vecdb: load: %w: vector %d", ErrDimension, i)
		}
		if err := f.Add(id, snap.Vecs[i]); err != nil {
			return nil, fmt.Errorf("vecdb: load: %w", err)
		}
	}
	return f, nil
}
