package vecdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dataai/internal/embed"
)

// Concurrency stress tests: every index documents itself as safe for
// concurrent use, and these tests make `go test -race ./...` prove it —
// parallel Add/Search/Delete/Len on shared instances. A sequential suite
// never exercises the RWMutex reader/writer interleavings (one of which
// hid a recursive-RLock deadlock in IVF.Search until this test existed).

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	embed.Normalize(v)
	return v
}

// stressIndex hammers idx with concurrent writers and readers. Writers
// own disjoint id ranges (Add returns ErrDuplicateID otherwise); readers
// run Search and Len throughout.
func stressIndex(t *testing.T, idx Index, dim int) {
	t.Helper()
	const (
		writers = 4
		readers = 4
		perW    = 150
	)
	seed := rand.New(rand.NewSource(99))
	if err := idx.Add("seed0", randVec(seed, dim)); err != nil {
		t.Fatalf("seed add: %v", err)
	}
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := idx.Search(randVec(rng, dim), 5); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				idx.Len()
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := idx.Add(id, randVec(rng, dim)); err != nil {
					t.Errorf("Add %s: %v", id, err)
					return
				}
				if i%3 == 0 {
					if err := idx.Delete(id); err != nil {
						t.Errorf("Delete %s: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	// Writers run to completion under reader pressure, then the readers
	// are released.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	wantLive := 1 + writers*perW - writers*((perW+2)/3)
	if got := idx.Len(); got != wantLive {
		t.Fatalf("Len = %d, want %d", got, wantLive)
	}
}

func TestFlatParallel(t *testing.T) {
	t.Parallel()
	stressIndex(t, NewFlat(16), 16)
}

func TestHNSWParallel(t *testing.T) {
	t.Parallel()
	stressIndex(t, NewHNSW(16, 8, 32, 5), 16)
}

func TestIVFParallelUntrained(t *testing.T) {
	t.Parallel()
	stressIndex(t, NewIVF(16, 8, 4, 5), 16)
}

func TestIVFParallelTrained(t *testing.T) {
	t.Parallel()
	iv := NewIVF(16, 8, 4, 5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if err := iv.Add(fmt.Sprintf("pre%d", i), randVec(rng, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := iv.Train(4); err != nil {
		t.Fatal(err)
	}
	// Concurrent Search + SetNProbe + Add on a trained index: this is
	// the interleaving where Search's old Len() call could deadlock
	// against a queued writer.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 100; i++ {
				switch w % 4 {
				case 0:
					iv.SetNProbe(1 + i%8)
				case 1:
					if err := iv.Add(fmt.Sprintf("c%d-%d", w, i), randVec(r, 16)); err != nil {
						t.Errorf("Add: %v", err)
						return
					}
				default:
					if _, err := iv.Search(randVec(r, 16), 5); err != nil {
						t.Errorf("Search: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
