package vecdb

import "fmt"

// Deletion support. Data management is not append-only: corrections,
// retention rules, and flywheel feedback replacement all remove vectors.
// Flat and IVF delete eagerly; HNSW uses tombstones (its graph links are
// expensive to repair), filtering them at search time.

// Delete removes id from the Flat index.
func (f *Flat) Delete(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.pos[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	last := len(f.ids) - 1
	f.ids[i] = f.ids[last]
	f.vecs[i] = f.vecs[last]
	f.pos[f.ids[i]] = i
	f.ids = f.ids[:last]
	f.vecs = f.vecs[:last]
	delete(f.pos, id)
	return nil
}

// Delete removes id from the IVF index (trained or not).
func (iv *IVF) Delete(id string) error {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if !iv.ids[id] {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(iv.ids, id)
	remove := func(entries []entry) ([]entry, bool) {
		for i, e := range entries {
			if e.id == id {
				entries[i] = entries[len(entries)-1]
				return entries[:len(entries)-1], true
			}
		}
		return entries, false
	}
	var removed bool
	if iv.pending, removed = remove(iv.pending); removed {
		return nil
	}
	for c := range iv.cells {
		if iv.cells[c], removed = remove(iv.cells[c]); removed {
			return nil
		}
	}
	return fmt.Errorf("%w: %q (index inconsistent)", ErrNotFound, id)
}

// Delete tombstones id in the HNSW graph: the node keeps routing
// traffic but never appears in results. Tombstoned ids cannot be
// re-added (graph identity is permanent).
func (h *HNSW) Delete(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx, ok := h.pos[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if h.tombstones == nil {
		h.tombstones = make(map[int]bool)
	}
	if h.tombstones[idx] {
		return fmt.Errorf("%w: %q already deleted", ErrNotFound, id)
	}
	h.tombstones[idx] = true
	return nil
}

// Deleted reports the number of tombstoned nodes.
func (h *HNSW) Deleted() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.tombstones)
}
