package vecdb

import (
	"fmt"
	"math/rand"
	"testing"

	"dataai/internal/par"
)

// Serial-vs-parallel benchmarks for the wired search paths, at 1/2/4/8
// workers (run them all with `go test -bench=Par -benchtime=1x ./...`).
//
// Two metrics per run:
//
//   - ns/op — wall clock, which is machine-dependent and in particular
//     shows no speedup on a single-core container (the CI box pins the
//     process to one CPU);
//   - critpath-x — the deterministic critical-path speedup: total
//     distance computations divided by the largest per-worker share.
//     This is the repo's usual machine-independent cost proxy (exactly
//     like E16 reporting dist/query instead of QPS) and is what
//     BENCH_par.json records as the scaling evidence.

// critPathSpeedupShards is total work over the largest contiguous shard
// (the single-query sharded scan's critical path).
func critPathSpeedupShards(n, workers int) float64 {
	chunks := par.Chunks(n, workers)
	maxShard := 0
	for c := 0; c < chunks; c++ {
		lo, hi := par.ChunkBounds(n, chunks, c)
		if hi-lo > maxShard {
			maxShard = hi - lo
		}
	}
	return float64(n) / float64(maxShard)
}

// critPathSpeedupQueries is total work over the largest per-worker
// query share (the batch path's critical path; queries all cost the
// same full scan on Flat).
func critPathSpeedupQueries(nq, workers int) float64 {
	if workers > nq {
		workers = nq
	}
	perWorker := (nq + workers - 1) / workers
	return float64(nq) / float64(perWorker)
}

func benchFlat(b *testing.B, n, dim int) *Flat {
	b.Helper()
	f := NewFlat(dim)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := f.Add(fmt.Sprintf("v%06d", i), randVec(rng, dim)); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkParFlatSearch measures the sharded single-query Flat scan.
func BenchmarkParFlatSearch(b *testing.B) {
	const n, dim, k = 16384, 64, 10
	f := benchFlat(b, n, dim)
	q := randVec(rand.New(rand.NewSource(2)), dim)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			f.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Search(q, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(critPathSpeedupShards(n, workers), "critpath-x")
		})
	}
}

// BenchmarkParFlatSearchBatch measures SearchBatch across queries — the
// acceptance path: ≥ 2x critical-path speedup at 4 workers.
func BenchmarkParFlatSearchBatch(b *testing.B) {
	const n, dim, nq, k = 8192, 64, 32, 10
	f := benchFlat(b, n, dim)
	rng := rand.New(rand.NewSource(3))
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			f.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.SearchBatch(queries, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(critPathSpeedupQueries(nq, workers), "critpath-x")
		})
	}
}

// BenchmarkParIVFSearchBatch measures the batch path on a trained IVF.
func BenchmarkParIVFSearchBatch(b *testing.B) {
	const n, dim, nq, k = 8192, 64, 32, 10
	iv := NewIVF(dim, 64, 8, 4)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		if err := iv.Add(fmt.Sprintf("v%06d", i), randVec(rng, dim)); err != nil {
			b.Fatal(err)
		}
	}
	if err := iv.Train(4); err != nil {
		b.Fatal(err)
	}
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			iv.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := iv.SearchBatch(queries, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(critPathSpeedupQueries(nq, workers), "critpath-x")
		})
	}
}

// BenchmarkParHNSWSearchBatch measures the batch path on HNSW (smaller
// index: graph construction dominates setup).
func BenchmarkParHNSWSearchBatch(b *testing.B) {
	const n, dim, nq, k = 2048, 64, 32, 10
	h := NewHNSW(dim, 16, 64, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		if err := h.Add(fmt.Sprintf("v%06d", i), randVec(rng, dim)); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			h.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.SearchBatch(queries, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(critPathSpeedupQueries(nq, workers), "critpath-x")
		})
	}
}
