// Package vecdb implements the vector database substrate the paper lists
// under both LLM4Data (RAG retrieval, §2.2.1: "embedding indexing and
// searching") and the Figure 1 architecture's "Vector Database" box.
//
// Three index types are provided with one interface:
//
//   - Flat: exact brute-force scan — the recall ceiling and baseline.
//   - IVF: inverted-file index with k-means coarse quantizer and an
//     nprobe search parameter.
//   - HNSW: hierarchical navigable small world graph.
//
// All similarity is inner product; callers that want cosine should insert
// unit vectors (package embed produces them already normalized).
package vecdb

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dataai/internal/embed"
	"dataai/internal/par"
)

// Errors returned by index operations. Callers branch on these with
// errors.Is.
var (
	// ErrDimension indicates a vector whose length does not match the
	// index dimensionality.
	ErrDimension = errors.New("vecdb: vector dimension mismatch")
	// ErrDuplicateID indicates an Add with an id already present.
	ErrDuplicateID = errors.New("vecdb: duplicate id")
	// ErrNotFound indicates a lookup for an absent id.
	ErrNotFound = errors.New("vecdb: id not found")
	// ErrEmptyIndex indicates a search against an index with no vectors.
	ErrEmptyIndex = errors.New("vecdb: empty index")
)

// Result is one search hit. Score is the inner product with the query —
// higher is more similar.
type Result struct {
	ID    string
	Score float32
}

// Index is the common contract of all vector indexes in this package.
type Index interface {
	// Add inserts a vector under id. It returns ErrDimension or
	// ErrDuplicateID on invalid input.
	Add(id string, vec []float32) error
	// Search returns the k nearest vectors to query by inner product,
	// most similar first. Fewer than k results are returned when the
	// index holds fewer vectors. It returns ErrEmptyIndex when empty.
	Search(query []float32, k int) ([]Result, error)
	// SearchBatch runs Search for every query, fanning the queries out
	// across the index's configured parallelism (SetParallelism) and
	// returning per-query results in query order — identical to calling
	// Search in a loop. The first per-query error (by query index) is
	// returned, with no results.
	SearchBatch(queries [][]float32, k int) ([][]Result, error)
	// SetParallelism sets the worker count used by SearchBatch (and,
	// for Flat, the sharded single-query scan). n <= 0 restores the
	// default: GOMAXPROCS at search time. Parallelism never changes
	// results — only how the same work is scheduled.
	SetParallelism(n int)
	// Delete removes id from the index (tombstoned in HNSW). It returns
	// ErrNotFound for absent ids.
	Delete(id string) error
	// Len reports the number of stored (live) vectors.
	Len() int
	// Dim reports the index dimensionality.
	Dim() int
}

// DistCounter is implemented by every index in this package: a running
// count of inner-product evaluations. It is the deterministic cost proxy
// experiment E16 reports instead of wall-clock QPS — identical across
// runs and machines, which wall time never is, and the quantity ANN
// papers themselves use to compare search effort.
type DistCounter interface {
	// DistComps returns the cumulative number of inner products computed
	// by this index across Add, Train, and Search. Callers measuring one
	// phase snapshot before and after and subtract.
	DistComps() uint64
}

// Flat is an exact brute-force index. It is safe for concurrent use.
type Flat struct {
	parallelism
	mu    sync.RWMutex
	dim   int
	ids   []string
	vecs  [][]float32
	pos   map[string]int
	dists atomic.Uint64
}

// DistComps implements DistCounter.
func (f *Flat) DistComps() uint64 { return f.dists.Load() }

// NewFlat returns an empty exact index for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	return &Flat{dim: dim, pos: make(map[string]int)}
}

// Dim implements Index.
func (f *Flat) Dim() int { return f.dim }

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// Add implements Index.
func (f *Flat) Add(id string, vec []float32) error {
	if len(vec) != f.dim {
		return fmt.Errorf("%w: got %d want %d", ErrDimension, len(vec), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pos[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	cp := make([]float32, len(vec))
	copy(cp, vec)
	f.vecs = append(f.vecs, cp)
	return nil
}

// Get returns the stored vector for id.
func (f *Flat) Get(id string) ([]float32, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, ok := f.pos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return f.vecs[i], nil
}

// Search implements Index.
func (f *Flat) Search(query []float32, k int) ([]Result, error) {
	return f.SearchFilter(query, k, nil)
}

// SearchFilter is Search restricted to ids accepted by keep. A nil keep
// accepts everything. Filtered search supports the data-lake linking
// experiments, which search within one modality at a time.
//
// When the index's parallelism (SetParallelism, default GOMAXPROCS) is
// above 1 and the index is large enough, the scan shards across workers;
// keep must then be safe for concurrent calls (the pure closures callers
// pass already are). Sharding never changes the result: see scanShards.
func (f *Flat) SearchFilter(query []float32, k int, keep func(id string) bool) ([]Result, error) {
	return f.searchOne(query, k, keep, f.searchWorkers())
}

// flatParallelMin is the index size below which a sharded scan is not
// worth the fan-out overhead; measured crossover is a few thousand
// 64-dim vectors (see BenchmarkParFlatSearch).
const flatParallelMin = 4096

// searchOne runs one scan at the given worker count.
func (f *Flat) searchOne(query []float32, k int, keep func(id string) bool, workers int) ([]Result, error) {
	if len(query) != f.dim {
		return nil, fmt.Errorf("%w: got %d want %d", ErrDimension, len(query), f.dim)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := len(f.ids)
	if n == 0 {
		return nil, ErrEmptyIndex
	}
	if workers > 1 && n >= flatParallelMin {
		return f.scanShards(query, k, keep, workers), nil
	}
	h := newTopK(k)
	var dots uint64
	for i, v := range f.vecs {
		if keep != nil && !keep(f.ids[i]) {
			continue
		}
		dots++
		h.offer(Result{ID: f.ids[i], Score: embed.Dot(query, v)})
	}
	f.dists.Add(dots)
	return h.sorted(), nil
}

// flatShard is one shard's contribution to a sharded scan: its local
// top-k heap and its own count of inner products evaluated.
type flatShard struct {
	h    *topK
	dots uint64
}

// scanShards is the parallel Flat scan: the vector array is split into
// contiguous shards, each shard selects its local top-k under the same
// strict total order the serial scan uses (see beats), and shards merge
// in shard-index order. Determinism is by construction, not by luck:
//
//   - topK selection under a strict total order is a pure function of
//     the candidate multiset (offer order cannot matter), so merging
//     the shard-local top-ks yields exactly the serial scan's top-k;
//   - every stored vector is scored in exactly one shard, and the
//     per-shard uint64 counts sum — integer addition is associative —
//     to exactly the serial DistComps increment.
//
// Must be called with f.mu read-held.
func (f *Flat) scanShards(query []float32, k int, keep func(id string) bool, workers int) []Result {
	parts := par.MapChunks(len(f.vecs), workers, func(_, lo, hi int) flatShard {
		sh := flatShard{h: newTopK(k)}
		for i := lo; i < hi; i++ {
			if keep != nil && !keep(f.ids[i]) {
				continue
			}
			sh.dots++
			sh.h.offer(Result{ID: f.ids[i], Score: embed.Dot(query, f.vecs[i])})
		}
		return sh
	})
	h := newTopK(k)
	var dots uint64
	for _, sh := range parts {
		dots += sh.dots
		for _, r := range sh.h.items {
			h.offer(r)
		}
	}
	f.dists.Add(dots)
	return h.sorted()
}

// beats reports whether a ranks strictly ahead of b in result order:
// higher score first, score ties by ascending ID. Because IDs are
// unique within an index, this is a strict total order over candidates
// — which makes streaming top-k selection a pure function of the
// candidate multiset, independent of offer order. That property is what
// lets the sharded parallel scan (scanShards) and the serial scan
// produce byte-identical results, and it also pins tie behaviour at the
// k boundary to something principled instead of heap happenstance.
func beats(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// topK keeps the k best results seen so far using a min-heap under the
// beats total order (the root is the worst kept candidate). items is
// preallocated to capacity k so a full search performs exactly one
// allocation for the heap regardless of how many candidates it sees.
type topK struct {
	k     int
	items []Result
}

func newTopK(k int) *topK {
	if k < 1 {
		k = 1
	}
	return &topK{k: k, items: make([]Result, 0, k)}
}

func (h *topK) Len() int           { return len(h.items) }
func (h *topK) Less(i, j int) bool { return beats(h.items[j], h.items[i]) }
func (h *topK) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topK) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *topK) Pop() interface{} {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

func (h *topK) offer(r Result) {
	if len(h.items) < h.k {
		heap.Push(h, r)
		return
	}
	if beats(r, h.items[0]) {
		h.items[0] = r
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into a best-first slice under the same total
// order selection used, so output order is deterministic too.
func (h *topK) sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return beats(out[i], out[j]) })
	return out
}

// Recall computes recall@k of got against an exact result set: the
// fraction of want ids that appear in got. Used by the E16 experiment.
func Recall(got, want []Result) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[string]bool, len(got))
	for _, r := range got {
		set[r.ID] = true
	}
	hit := 0
	for _, r := range want {
		if set[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
