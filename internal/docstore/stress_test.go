package docstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestStoreParallel makes `go test -race ./...` exercise the Store's
// RWMutex: concurrent document adds and removals against readers of
// every accessor. Writers own disjoint id ranges; readers tolerate
// ErrNotFound (a doc may be added or removed under them) but no other
// error and no torn data.
func TestStoreParallel(t *testing.T) {
	s := NewStore()
	chunker := SentenceChunker{MaxTokens: 8}
	const (
		writers = 4
		readers = 4
		perW    = 120
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("doc-w%d-%d", r%writers, i%perW)
				if d, err := s.Document(id); err == nil {
					if d.ID != id {
						t.Errorf("Document(%q) returned id %q", id, d.ID)
						return
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Errorf("Document(%q): %v", id, err)
					return
				}
				for _, c := range s.DocChunks(id) {
					if c.DocID != id {
						t.Errorf("DocChunks(%q) returned chunk of %q", id, c.DocID)
						return
					}
				}
				s.Chunks()
				s.Len()
				s.ChunkCount()
				i++
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("doc-w%d-%d", w, i)
				doc := Document{
					ID:   id,
					Text: fmt.Sprintf("Sentence one of %s. Sentence two is a bit longer. The third closes it.", id),
				}
				chunks, err := s.AddDocument(doc, chunker)
				if err != nil {
					t.Errorf("AddDocument(%q): %v", id, err)
					return
				}
				if len(chunks) == 0 {
					t.Errorf("AddDocument(%q): no chunks", id)
					return
				}
				if i%4 == 0 {
					if _, err := s.RemoveDocument(id); err != nil {
						t.Errorf("RemoveDocument(%q): %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	removedPerW := (perW + 3) / 4
	wantDocs := writers * (perW - removedPerW)
	if got := s.Len(); got != wantDocs {
		t.Fatalf("Len = %d, want %d", got, wantDocs)
	}
	// Every surviving chunk must belong to a surviving document and be
	// retrievable by id.
	for _, c := range s.Chunks() {
		if _, err := s.Document(c.DocID); err != nil {
			t.Fatalf("chunk %q orphaned: %v", c.ID, err)
		}
		if _, err := s.Chunk(c.ID); err != nil {
			t.Fatalf("Chunk(%q): %v", c.ID, err)
		}
	}
}
