package docstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"dataai/internal/token"
)

func TestFixedChunkerWindows(t *testing.T) {
	text := "a b c d e f g h i j"
	chunks := FixedChunker{Size: 4, Overlap: 1}.Chunk(text)
	// step 3: [a..d], [d..g], [g..j] — the last window reaches the end.
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks: %v", len(chunks), chunks)
	}
	if chunks[0] != "a b c d" || chunks[1] != "d e f g" || chunks[2] != "g h i j" {
		t.Errorf("chunks = %v", chunks)
	}
}

func TestFixedChunkerDegenerateConfig(t *testing.T) {
	text := "a b c"
	for _, c := range []FixedChunker{{Size: 0}, {Size: 2, Overlap: 2}, {Size: 3, Overlap: -1}} {
		got := c.Chunk(text)
		if len(got) != 1 || got[0] != text {
			t.Errorf("config %+v: got %v", c, got)
		}
	}
	if got := (FixedChunker{Size: 4}).Chunk(""); got != nil {
		t.Errorf("empty text: %v", got)
	}
}

func TestFixedChunkerCoversAllTokens(t *testing.T) {
	f := func(s string) bool {
		chunks := FixedChunker{Size: 8, Overlap: 2}.Chunk(s)
		var joined []string
		for _, c := range chunks {
			joined = append(joined, token.Tokenize(c)...)
		}
		// Every original token must appear in the concatenation (with
		// overlap duplicates allowed).
		orig := token.Tokenize(s)
		if len(orig) == 0 {
			return chunks == nil
		}
		freq := token.Frequencies(joined)
		for _, tok := range orig {
			if freq[tok] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("First one. Second! Third? trailing bit")
	want := []string{"First one.", "Second!", "Third?", "trailing bit"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
	if got := SplitSentences(""); got != nil {
		t.Errorf("empty: %v", got)
	}
	if got := SplitSentences("..."); got != nil {
		t.Errorf("dots only: %v", got)
	}
}

func TestSentenceChunkerKeepsSentencesWhole(t *testing.T) {
	text := "The ceo of Acme is bob. Filler words here. Another fact stated plainly. More filler."
	chunks := SentenceChunker{MaxTokens: 12}.Chunk(text)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %v", chunks)
	}
	for _, c := range chunks {
		// No chunk starts or ends mid-sentence: each chunk is a join of
		// complete sentences, so it must end with a terminator or be the
		// trailing fragment.
		if !strings.HasSuffix(c, ".") {
			t.Errorf("chunk %q does not end at a sentence boundary", c)
		}
	}
	// The fact sentence must survive intact in some chunk.
	found := false
	for _, c := range chunks {
		if strings.Contains(c, "The ceo of Acme is bob.") {
			found = true
		}
	}
	if !found {
		t.Error("fact sentence split across chunks")
	}
}

func TestSentenceChunkerBudget(t *testing.T) {
	var sentences []string
	for i := 0; i < 20; i++ {
		sentences = append(sentences, fmt.Sprintf("sentence number %d here.", i))
	}
	text := strings.Join(sentences, " ")
	chunks := SentenceChunker{MaxTokens: 15}.Chunk(text)
	for _, c := range chunks {
		n := token.Count(c)
		// A chunk may exceed the budget only if it is one long sentence.
		if n > 15 && len(SplitSentences(c)) > 1 {
			t.Errorf("chunk has %d tokens over budget: %q", n, c)
		}
	}
}

func TestSentenceChunkerDefaults(t *testing.T) {
	chunks := SentenceChunker{}.Chunk("one. two. three.")
	if len(chunks) != 1 {
		t.Errorf("default budget should pack all: %v", chunks)
	}
	if got := (SentenceChunker{MaxTokens: 5}).Chunk(""); got != nil {
		t.Errorf("empty text: %v", got)
	}
}

func TestStoreAddAndLookup(t *testing.T) {
	s := NewStore()
	chunks, err := s.AddDocument(Document{ID: "d1", Text: "alpha beta. gamma delta."}, SentenceChunker{MaxTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if chunks[0].ID != "d1#0" || chunks[1].Seq != 1 {
		t.Errorf("chunk identity wrong: %+v", chunks)
	}
	d, err := s.Document("d1")
	if err != nil || d.Text == "" {
		t.Fatalf("Document: %v", err)
	}
	c, err := s.Chunk("d1#1")
	if err != nil || c.DocID != "d1" {
		t.Fatalf("Chunk: %v %+v", err, c)
	}
	if s.Len() != 1 || s.ChunkCount() != 2 {
		t.Errorf("Len/ChunkCount = %d/%d", s.Len(), s.ChunkCount())
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.AddDocument(Document{ID: ""}, FixedChunker{Size: 4}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := s.AddDocument(Document{ID: "x", Text: "t"}, FixedChunker{Size: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddDocument(Document{ID: "x", Text: "t"}, FixedChunker{Size: 4}); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := s.Document("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Document err = %v", err)
	}
	if _, err := s.Chunk("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Chunk err = %v", err)
	}
}

func TestDocChunksOrdered(t *testing.T) {
	s := NewStore()
	text := strings.Repeat("word ", 50)
	if _, err := s.AddDocument(Document{ID: "d", Text: text}, FixedChunker{Size: 10}); err != nil {
		t.Fatal(err)
	}
	chunks := s.DocChunks("d")
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	for i, c := range chunks {
		if c.Seq != i {
			t.Errorf("chunk %d has Seq %d", i, c.Seq)
		}
	}
}

func TestChunksInsertionOrder(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		if _, err := s.AddDocument(Document{ID: fmt.Sprintf("d%d", i), Text: "one two"}, FixedChunker{Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Chunks()
	if len(all) != 3 {
		t.Fatalf("got %d chunks", len(all))
	}
	for i, c := range all {
		if c.DocID != fmt.Sprintf("d%d", i) {
			t.Errorf("chunk %d from %s, want d%d", i, c.DocID, i)
		}
	}
}

func TestRemoveDocument(t *testing.T) {
	s := NewStore()
	if _, err := s.AddDocument(Document{ID: "a", Text: "one two. three four."}, SentenceChunker{MaxTokens: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddDocument(Document{ID: "b", Text: "five six."}, SentenceChunker{MaxTokens: 3}); err != nil {
		t.Fatal(err)
	}
	removed, err := s.RemoveDocument("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v", removed)
	}
	if s.Len() != 1 || s.ChunkCount() != 1 {
		t.Errorf("Len=%d ChunkCount=%d", s.Len(), s.ChunkCount())
	}
	if _, err := s.Document("a"); !errors.Is(err, ErrNotFound) {
		t.Error("removed document still present")
	}
	all := s.Chunks()
	if len(all) != 1 || all[0].DocID != "b" {
		t.Errorf("Chunks = %v", all)
	}
	if _, err := s.RemoveDocument("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}
