// Package docstore provides the document store and the segmentation
// (chunking) strategies that feed retrieval. The paper lists "semantic
// document segmentation" among the RAG challenges (§2.2.1); this package
// implements the two standard strategies systems choose between — fixed
// token windows with overlap, and sentence-packing up to a token budget —
// so the RAG pipeline can treat segmentation as a pluggable policy.
package docstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dataai/internal/token"
)

// ErrNotFound indicates a lookup of an absent document or chunk.
var ErrNotFound = errors.New("docstore: not found")

// Document is a stored source document.
type Document struct {
	ID   string
	Text string
	// Meta carries caller-defined attributes (domain, kind, ...).
	Meta map[string]string
}

// Chunk is a retrievable segment of a document.
type Chunk struct {
	// ID is unique per chunk: "<docID>#<n>".
	ID    string
	DocID string
	// Seq is the chunk's position within its document.
	Seq  int
	Text string
}

// Chunker splits a document's text into retrieval units.
type Chunker interface {
	Chunk(text string) []string
}

// FixedChunker emits windows of Size tokens advancing by Size-Overlap.
type FixedChunker struct {
	Size    int
	Overlap int
}

// Chunk implements Chunker. Invalid configurations (Size <= 0, Overlap >=
// Size) degrade to a single chunk of the whole text.
func (f FixedChunker) Chunk(text string) []string {
	toks := token.Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	if f.Size <= 0 || f.Overlap < 0 || f.Overlap >= f.Size {
		return []string{text}
	}
	step := f.Size - f.Overlap
	var out []string
	for start := 0; start < len(toks); start += step {
		end := start + f.Size
		if end > len(toks) {
			end = len(toks)
		}
		out = append(out, token.Detokenize(toks[start:end]))
		if end == len(toks) {
			break
		}
	}
	return out
}

// SentenceChunker packs whole sentences into chunks of at most MaxTokens
// tokens. Sentences longer than the budget become their own chunk. This is
// the "semantic segmentation" policy: fact statements are never split
// mid-sentence, which measurably improves retrieval granularity.
type SentenceChunker struct {
	MaxTokens int
}

// Chunk implements Chunker.
func (s SentenceChunker) Chunk(text string) []string {
	sentences := SplitSentences(text)
	if len(sentences) == 0 {
		return nil
	}
	budget := s.MaxTokens
	if budget <= 0 {
		budget = 64
	}
	var out []string
	var cur []string
	curTokens := 0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, strings.Join(cur, " "))
			cur, curTokens = nil, 0
		}
	}
	for _, sent := range sentences {
		n := token.Count(sent)
		if curTokens+n > budget && curTokens > 0 {
			flush()
		}
		cur = append(cur, sent)
		curTokens += n
		if curTokens >= budget {
			flush()
		}
	}
	flush()
	return out
}

// SplitSentences splits text at '.', '!' and '?' boundaries, keeping the
// terminator with the sentence.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '.', '!', '?':
			s := strings.TrimSpace(text[start : i+1])
			if s != "" && s != "." && s != "!" && s != "?" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// Store holds documents and their chunks. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	docs   map[string]Document
	chunks map[string]Chunk
	order  []string // chunk ids in insertion order
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		docs:   make(map[string]Document),
		chunks: make(map[string]Chunk),
	}
}

// AddDocument stores doc and indexes its chunks produced by chunker.
// It returns the chunks created. Re-adding an existing ID is an error.
func (s *Store) AddDocument(doc Document, chunker Chunker) ([]Chunk, error) {
	if doc.ID == "" {
		return nil, fmt.Errorf("docstore: empty document id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[doc.ID]; ok {
		return nil, fmt.Errorf("docstore: duplicate document %q", doc.ID)
	}
	s.docs[doc.ID] = doc
	pieces := chunker.Chunk(doc.Text)
	out := make([]Chunk, 0, len(pieces))
	for i, p := range pieces {
		ch := Chunk{
			ID:    fmt.Sprintf("%s#%d", doc.ID, i),
			DocID: doc.ID,
			Seq:   i,
			Text:  p,
		}
		s.chunks[ch.ID] = ch
		s.order = append(s.order, ch.ID)
		out = append(out, ch)
	}
	return out, nil
}

// Document returns the stored document with the given id.
func (s *Store) Document(id string) (Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return Document{}, fmt.Errorf("%w: document %q", ErrNotFound, id)
	}
	return d, nil
}

// Chunk returns the chunk with the given id.
func (s *Store) Chunk(id string) (Chunk, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chunks[id]
	if !ok {
		return Chunk{}, fmt.Errorf("%w: chunk %q", ErrNotFound, id)
	}
	return c, nil
}

// Chunks returns all chunks in insertion order.
func (s *Store) Chunks() []Chunk {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Chunk, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.chunks[id])
	}
	return out
}

// DocChunks returns the chunks of one document in sequence order.
func (s *Store) DocChunks(docID string) []Chunk {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Chunk
	for _, c := range s.chunks {
		if c.DocID == docID {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RemoveDocument deletes a document and its chunks, returning the removed
// chunk ids (so callers can drop them from derived indexes).
func (s *Store) RemoveDocument(docID string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[docID]; !ok {
		return nil, fmt.Errorf("%w: document %q", ErrNotFound, docID)
	}
	delete(s.docs, docID)
	var removed []string
	for id, c := range s.chunks {
		if c.DocID == docID {
			removed = append(removed, id)
			delete(s.chunks, id)
		}
	}
	sort.Strings(removed)
	kept := s.order[:0]
	for _, id := range s.order {
		if _, ok := s.chunks[id]; ok {
			kept = append(kept, id)
		}
	}
	s.order = kept
	return removed, nil
}

// Len reports the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// ChunkCount reports the number of stored chunks.
func (s *Store) ChunkCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}
