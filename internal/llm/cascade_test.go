package llm

import (
	"errors"
	"testing"
)

// fixedClient returns a canned response or error.
type fixedClient struct {
	r   Response
	err error
}

func (f fixedClient) Complete(Request) (Response, error) { return f.r, f.err }

// Regression: when the expensive model errors after a cheap-model miss,
// the returned response must still carry the cheap call's spend so
// caller-side metering sees it as waste, and the errored call must
// count toward Stats() total.
func TestCascadeExpensiveErrorCarriesCheapSpend(t *testing.T) {
	cheap := fixedClient{r: Response{
		Text: "maybe", Confidence: 0.1,
		PromptTokens: 10, CompletionTokens: 3, CostUSD: 0.002, LatencyMS: 12,
	}}
	boom := errors.New("expensive model down")
	cas := NewCascade(cheap, fixedClient{err: boom}, 0.5)

	r, err := cas.Complete(Request{Prompt: "q"})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if r.CostUSD != 0.002 || r.LatencyMS != 12 {
		t.Fatalf("error response lost cheap spend: cost=%v latency=%v", r.CostUSD, r.LatencyMS)
	}
	if r.PromptTokens != 10 || r.CompletionTokens != 3 {
		t.Fatalf("error response lost cheap tokens: %d/%d", r.PromptTokens, r.CompletionTokens)
	}
	escalated, total := cas.Stats()
	if escalated != 1 || total != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", escalated, total)
	}
}

// Regression: a cheap-model error must still count toward total so the
// Stats() denominator matches the number of Complete calls.
func TestCascadeCheapErrorCountsTowardTotal(t *testing.T) {
	boom := errors.New("cheap model down")
	cas := NewCascade(fixedClient{err: boom}, fixedClient{r: Response{Text: "yes", Confidence: 1}}, 0.5)
	if _, err := cas.Complete(Request{Prompt: "q"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	escalated, total := cas.Stats()
	if total != 1 {
		t.Fatalf("total = %d, want 1 (errored calls count)", total)
	}
	if escalated != 0 {
		t.Fatalf("escalated = %d, want 0", escalated)
	}
}

// A confident cheap answer must not pick up phantom spend.
func TestCascadeNoEscalationUnchanged(t *testing.T) {
	cheap := fixedClient{r: Response{Text: "yes", Confidence: 0.9, CostUSD: 0.001, LatencyMS: 5}}
	cas := NewCascade(cheap, fixedClient{err: errors.New("never called")}, 0.5)
	r, err := cas.Complete(Request{Prompt: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if r.CostUSD != 0.001 || r.LatencyMS != 5 || r.Text != "yes" {
		t.Fatalf("unexpected response: %+v", r)
	}
}
