package llm

import (
	"fmt"
	"strings"
	"sync"

	"dataai/internal/corpus"
	"dataai/internal/token"
)

// Simulator is the deterministic LLM stand-in. It is safe for concurrent
// use. Construct with NewSimulator.
type Simulator struct {
	model Model
	seed  uint64

	mu sync.RWMutex
	// kb maps "subject|relation" (lower-cased) to the object: the facts
	// this model "memorized during pretraining".
	kb map[string]string
	// byRelObj maps "relation|object" to the subject, for bridge queries.
	byRelObj map[string]string
	// labelLexicon maps classification labels to their keyword lists.
	labelLexicon map[string][]string

	meter usageMeter
}

// NewSimulator returns a Simulator for the given model tier. seed
// determines every stochastic behaviour.
func NewSimulator(model Model, seed uint64) *Simulator {
	return &Simulator{
		model:        model,
		seed:         seed,
		kb:           make(map[string]string),
		byRelObj:     make(map[string]string),
		labelLexicon: make(map[string][]string),
	}
}

// Model returns the simulator's model description.
func (s *Simulator) Model() Model { return s.model }

// AddKnowledge loads facts into the model's "pretraining memory". RAG
// experiments load only a subset, leaving the rest answerable solely via
// retrieval.
func (s *Simulator) AddKnowledge(facts []corpus.Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range facts {
		s.kb[kbKey(f.Subject, f.Relation)] = f.Object
		s.byRelObj[strings.ToLower(f.Relation)+"|"+strings.ToLower(f.Object)] = f.Subject
	}
}

// RegisterLabel teaches the simulator the keyword lexicon of a
// classification label (its "world knowledge" about that class).
func (s *Simulator) RegisterLabel(label string, keywords []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.labelLexicon[label] = append([]string(nil), keywords...)
}

// Usage returns the accumulated consumption tally.
func (s *Simulator) Usage() Usage { return s.meter.snapshot() }

// ResetUsage zeroes the tally.
func (s *Simulator) ResetUsage() { s.meter.reset() }

func kbKey(subject, relation string) string {
	return strings.ToLower(subject) + "|" + strings.ToLower(relation)
}

// Complete implements Client.
func (s *Simulator) Complete(req Request) (Response, error) {
	promptTokens := token.Count(req.Prompt)
	if promptTokens > s.model.ContextWindow {
		return Response{}, fmt.Errorf("%w: %d > %d tokens", ErrContextOverflow, promptTokens, s.model.ContextWindow)
	}
	p, err := parsePrompt(req.Prompt)
	if err != nil {
		return Response{}, err
	}

	var text string
	var conf float64
	switch p.task {
	case taskAnswer:
		text, conf = s.answer(req.Prompt, p)
	case taskBridge:
		text, conf = s.bridge(req.Prompt, p)
	case taskJudge:
		text, conf = s.judge(req.Prompt, p)
	case taskExtract:
		text, conf = s.extract(req.Prompt, p)
	case taskClassify:
		text, conf = s.classify(req.Prompt, p)
	case taskGenerate:
		text, conf = s.generate(req.Prompt, p, req.MaxTokens)
	}
	if req.MaxTokens > 0 {
		text = truncateTokens(text, req.MaxTokens)
	}
	completion := token.Count(text)
	resp := Response{
		Text:             text,
		Confidence:       conf,
		PromptTokens:     promptTokens,
		CompletionTokens: completion,
		LatencyMS:        latency(s.model, promptTokens, completion),
		CostUSD:          price(s.model, promptTokens, completion),
	}
	s.meter.record(resp)
	return resp, nil
}

// confidence mixes the correctness draw with an independent draw so that
// confidence correlates with correctness without revealing it exactly.
func (s *Simulator) confidence(prompt string, uErr float64) float64 {
	uConf := decision(prompt, s.model.Name, s.seed, "conf")
	c := 0.6*uErr + 0.4*uConf
	if c > 0.999 {
		c = 0.999
	}
	return c
}

// answer resolves a QA prompt: grounded context first, then the knowledge
// base, then hallucination or honest refusal.
func (s *Simulator) answer(prompt string, p parsedPrompt) (string, float64) {
	uErr := decision(prompt, s.model.Name, s.seed, "err")
	wrong := uErr < s.model.ErrRate

	truth, found := s.resolve(p.question, p.context)
	if found {
		if wrong {
			return fabricate(prompt, s.seed), s.confidence(prompt, uErr)
		}
		return truth, s.confidence(prompt, uErr)
	}
	// Not answerable from context or memory: hallucinate or refuse.
	if decision(prompt, s.model.Name, s.seed, "hallucinate") < s.model.HallucinationRate {
		return fabricate(prompt, s.seed), s.confidence(prompt, 0.5)
	}
	return Unknown, 0.1 * decision(prompt, s.model.Name, s.seed, "unkconf")
}

// resolve finds the true answer to a question from context passages first
// and the knowledge base second.
func (s *Simulator) resolve(question string, context []string) (string, bool) {
	if m := twoHopRe.FindStringSubmatch(question); m != nil {
		r2, r1, x := strings.ToLower(m[1]), strings.ToLower(m[2]), strings.ToLower(m[3])
		// From context: find subject with (r1 = x), then its r2.
		var subj string
		for _, c := range context {
			for _, f := range factsIn(c) {
				if strings.ToLower(f[0]) == r1 && strings.ToLower(f[2]) == x {
					subj = f[1]
				}
			}
		}
		if subj == "" {
			s.mu.RLock()
			subj = s.byRelObj[r1+"|"+x]
			s.mu.RUnlock()
		}
		if subj == "" {
			return "", false
		}
		for _, c := range context {
			for _, f := range factsIn(c) {
				if strings.EqualFold(f[1], subj) && strings.ToLower(f[0]) == r2 {
					return f[2], true
				}
			}
		}
		s.mu.RLock()
		obj, ok := s.kb[kbKey(subj, r2)]
		s.mu.RUnlock()
		return obj, ok
	}
	if m := oneHopRe.FindStringSubmatch(question); m != nil {
		rel, subj := m[1], m[2]
		for _, c := range context {
			for _, f := range factsIn(c) {
				if strings.EqualFold(f[0], rel) && strings.EqualFold(f[1], subj) {
					return f[2], true
				}
			}
		}
		s.mu.RLock()
		obj, ok := s.kb[kbKey(subj, rel)]
		s.mu.RUnlock()
		return obj, ok
	}
	return "", false
}

// bridge names the intermediate entity of a two-hop question.
func (s *Simulator) bridge(prompt string, p parsedPrompt) (string, float64) {
	m := twoHopRe.FindStringSubmatch(p.question)
	if m == nil {
		return Unknown, 0.05
	}
	r1, x := strings.ToLower(m[2]), strings.ToLower(m[3])
	uErr := decision(prompt, s.model.Name, s.seed, "err")
	if uErr < s.model.ErrRate {
		return fabricate(prompt, s.seed), s.confidence(prompt, uErr)
	}
	for _, c := range p.context {
		for _, f := range factsIn(c) {
			if strings.ToLower(f[0]) == r1 && strings.ToLower(f[2]) == x {
				return f[1], s.confidence(prompt, uErr)
			}
		}
	}
	s.mu.RLock()
	subj, ok := s.byRelObj[r1+"|"+x]
	s.mu.RUnlock()
	if !ok {
		return Unknown, 0.1
	}
	return subj, s.confidence(prompt, uErr)
}

// judge evaluates a "contains:<term>" criterion against the text, with the
// model's error rate flipping the verdict.
func (s *Simulator) judge(prompt string, p parsedPrompt) (string, float64) {
	uErr := decision(prompt, s.model.Name, s.seed, "err")
	truth := false
	if strings.HasPrefix(p.criterion, containsPre) {
		term := strings.TrimSpace(strings.TrimPrefix(p.criterion, containsPre))
		truth = containsTokens(p.text, term)
	}
	ans := truth
	if uErr < s.model.ErrRate {
		ans = !ans
	}
	if ans {
		return "yes", s.confidence(prompt, uErr)
	}
	return "no", s.confidence(prompt, uErr)
}

// containsTokens reports whether term's token sequence occurs in text.
func containsTokens(text, term string) bool {
	tt := token.Tokenize(text)
	qt := token.Tokenize(term)
	if len(qt) == 0 {
		return false
	}
outer:
	for i := 0; i+len(qt) <= len(tt); i++ {
		for j := range qt {
			if tt[i+j] != qt[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// extract pulls an attribute value from text, handling the three record
// formats the corpus generator emits plus fact sentences.
func (s *Simulator) extract(prompt string, p parsedPrompt) (string, float64) {
	uErr := decision(prompt, s.model.Name, s.seed, "err")
	val := extractValue(p.text, p.attribute)
	if val == "" {
		if decision(prompt, s.model.Name, s.seed, "hallucinate") < s.model.HallucinationRate {
			return fabricate(prompt, s.seed), s.confidence(prompt, 0.5)
		}
		return Unknown, 0.1
	}
	if uErr < s.model.ErrRate {
		return fabricate(prompt, s.seed), s.confidence(prompt, uErr)
	}
	return val, s.confidence(prompt, uErr)
}

// extractValue is the ground-truth extraction the simulator "knows how" to
// do: colon, equals, and prose conventions.
func extractValue(text, attr string) string {
	lower := strings.ToLower(text)
	attr = strings.ToLower(attr)
	for _, pat := range []string{attr + ": ", attr + " = ", "the " + attr + " is "} {
		idx := strings.Index(lower, pat)
		if idx < 0 {
			continue
		}
		rest := text[idx+len(pat):]
		end := strings.IndexAny(rest, ".\n")
		if end < 0 {
			end = len(rest)
		}
		v := strings.TrimSpace(rest[:end])
		if v != "" {
			return v
		}
	}
	return ""
}

// classify picks the label whose registered lexicon overlaps the text
// most, with the model's error rate substituting a wrong label.
//
// In-context learning: each demonstration example multiplies the
// effective error rate by a factor below one — 0.7 for a demonstration
// sharing distinctive vocabulary with the text, 0.95 for an unrelated
// one (capped at 6 demonstrations). This is the mechanism that makes
// demonstration selection (§2.2.1) measurable: similar demonstrations
// buy more accuracy per prompt token.
func (s *Simulator) classify(prompt string, p parsedPrompt) (string, float64) {
	uErr := decision(prompt, s.model.Name, s.seed, "err")
	errRate := s.model.ErrRate
	textToks := token.Frequencies(token.Tokenize(p.text))
	for i, ex := range p.examples {
		if i >= 6 {
			break
		}
		overlap := 0
		seen := map[string]bool{}
		for _, tok := range token.Tokenize(ex.Input) {
			if textToks[tok] > 0 && len(tok) > 3 && !seen[tok] {
				overlap++
				seen[tok] = true
			}
		}
		// A demonstration needs substantial shared vocabulary to teach
		// the task; generic words shared by any same-corpus document do
		// not count for much.
		if overlap >= 5 {
			errRate *= 0.7
		} else {
			errRate *= 0.95
		}
	}
	toks := token.Frequencies(token.Tokenize(p.text))
	best, bestScore := "", -1
	s.mu.RLock()
	for _, label := range p.labels {
		score := 0
		for _, kw := range s.labelLexicon[label] {
			score += toks[strings.ToLower(kw)]
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	s.mu.RUnlock()
	if uErr < errRate && len(p.labels) > 1 {
		// Substitute a deterministic wrong label.
		h := token.Hash64Seed(prompt, s.seed^0xbad)
		pick := p.labels[int(h%uint64(len(p.labels)))]
		if pick == best {
			pick = p.labels[(int(h%uint64(len(p.labels)))+1)%len(p.labels)]
		}
		best = pick
	}
	return best, s.confidence(prompt, uErr)
}

// generate emits deterministic filler continuation text.
func (s *Simulator) generate(prompt string, p parsedPrompt, maxTokens int) (string, float64) {
	if maxTokens <= 0 {
		maxTokens = 32
	}
	words := []string{"data", "model", "system", "query", "cache", "index", "token", "plan", "store", "train"}
	h := token.Hash64Seed(p.free, s.seed^0x9e37)
	parts := make([]string, maxTokens)
	for i := range parts {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		parts[i] = words[h%uint64(len(words))]
	}
	_ = prompt
	return strings.Join(parts, " "), 0.5
}

func truncateTokens(text string, max int) string {
	toks := token.Tokenize(text)
	if len(toks) <= max {
		return text
	}
	return token.Detokenize(toks[:max])
}
