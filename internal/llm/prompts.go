package llm

import (
	"fmt"
	"regexp"
	"strings"
)

// The simulator understands a small prompt protocol, mirroring the way real
// orchestration frameworks steer an LLM with structured instructions. Each
// builder below produces a prompt; the simulator parses the header to pick
// a task. Free-form prompts without a TASK header are treated as "generate".

// Task headers recognized by the simulator.
const (
	taskAnswer   = "answer"
	taskBridge   = "bridge"
	taskJudge    = "judge"
	taskExtract  = "extract"
	taskClassify = "classify"
	taskGenerate = "generate"
)

// AnswerPrompt builds a question-answering prompt. context documents, if
// any, are the retrieved grounding passages (the RAG case).
func AnswerPrompt(question string, context []string) string {
	var b strings.Builder
	b.WriteString("TASK: answer\nQUESTION: ")
	b.WriteString(question)
	if len(context) > 0 {
		b.WriteString("\nCONTEXT:\n")
		for _, c := range context {
			b.WriteString(c)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// BridgePrompt asks the model to name the bridging entity of a two-hop
// question ("...the entity whose R is X..."), used by iterative RAG.
func BridgePrompt(question string, context []string) string {
	return strings.Replace(AnswerPrompt(question, context), "TASK: answer", "TASK: bridge", 1)
}

// JudgePrompt builds a boolean semantic-filter prompt. criterion uses the
// form "contains:<term>"; the model answers yes/no.
func JudgePrompt(criterion, text string) string {
	return fmt.Sprintf("TASK: judge\nCRITERION: %s\nTEXT: %s", criterion, text)
}

// ExtractPrompt builds an attribute-extraction prompt.
func ExtractPrompt(attribute, text string) string {
	return fmt.Sprintf("TASK: extract\nATTRIBUTE: %s\nTEXT: %s", attribute, text)
}

// ClassifyPrompt builds a classification prompt over the given labels.
func ClassifyPrompt(labels []string, text string) string {
	return fmt.Sprintf("TASK: classify\nLABELS: %s\nTEXT: %s", strings.Join(labels, "|"), text)
}

// Example is a few-shot demonstration: an input with its gold label.
type Example struct {
	Input string
	Label string
}

// ClassifyPromptFewShot builds a classification prompt carrying
// demonstration examples. The simulator models in-context learning: each
// demonstration lowers the effective error rate, and demonstrations
// similar to the text lower it more — which is why demonstration
// *selection* (§2.2.1) matters.
func ClassifyPromptFewShot(labels []string, examples []Example, text string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TASK: classify\nLABELS: %s\n", strings.Join(labels, "|"))
	for _, ex := range examples {
		fmt.Fprintf(&b, "EXAMPLE: %s => %s\n", ex.Input, ex.Label)
	}
	fmt.Fprintf(&b, "TEXT: %s", text)
	return b.String()
}

// GeneratePrompt builds a free-form generation prompt.
func GeneratePrompt(instruction string) string {
	return "TASK: generate\nPROMPT: " + instruction
}

// IsYes interprets a judge response.
func IsYes(text string) bool { return strings.EqualFold(strings.TrimSpace(text), "yes") }

// Unknown is the simulator's honest "I don't know" answer.
const Unknown = "unknown"

// IsUnknown reports whether an answer is the honest refusal.
func IsUnknown(text string) bool { return strings.EqualFold(strings.TrimSpace(text), Unknown) }

// parsed prompt representation.
type parsedPrompt struct {
	task      string
	question  string
	context   []string
	criterion string
	attribute string
	labels    []string
	examples  []Example
	text      string
	free      string
}

func parsePrompt(prompt string) (parsedPrompt, error) {
	p := parsedPrompt{}
	if !strings.HasPrefix(prompt, "TASK: ") {
		p.task = taskGenerate
		p.free = prompt
		return p, nil
	}
	// TEXT: is always the final field and may itself contain newlines, so
	// split it off before line-based parsing of the remaining fields.
	head := prompt
	if idx := strings.Index(prompt, "\nTEXT: "); idx >= 0 {
		head = prompt[:idx]
		p.text = prompt[idx+len("\nTEXT: "):]
	}
	lines := strings.Split(head, "\n")
	p.task = strings.TrimSpace(strings.TrimPrefix(lines[0], "TASK:"))
	body := lines[1:]
	switch p.task {
	case taskAnswer, taskBridge:
		inCtx := false
		for _, l := range body {
			switch {
			case strings.HasPrefix(l, "QUESTION: "):
				p.question = strings.TrimPrefix(l, "QUESTION: ")
			case l == "CONTEXT:":
				inCtx = true
			case inCtx && l != "":
				p.context = append(p.context, l)
			}
		}
		if p.question == "" {
			return p, fmtErrBadPrompt("answer task missing QUESTION")
		}
	case taskJudge:
		for _, l := range body {
			switch {
			case strings.HasPrefix(l, "CRITERION: "):
				p.criterion = strings.TrimPrefix(l, "CRITERION: ")
			case strings.HasPrefix(l, "TEXT: "):
				p.text = strings.TrimPrefix(l, "TEXT: ")
			}
		}
		if p.criterion == "" {
			return p, fmtErrBadPrompt("judge task missing CRITERION")
		}
	case taskExtract:
		for _, l := range body {
			switch {
			case strings.HasPrefix(l, "ATTRIBUTE: "):
				p.attribute = strings.TrimPrefix(l, "ATTRIBUTE: ")
			case strings.HasPrefix(l, "TEXT: "):
				p.text = strings.TrimPrefix(l, "TEXT: ")
			}
		}
		if p.attribute == "" {
			return p, fmtErrBadPrompt("extract task missing ATTRIBUTE")
		}
	case taskClassify:
		for _, l := range body {
			switch {
			case strings.HasPrefix(l, "LABELS: "):
				p.labels = strings.Split(strings.TrimPrefix(l, "LABELS: "), "|")
			case strings.HasPrefix(l, "EXAMPLE: "):
				parts := strings.SplitN(strings.TrimPrefix(l, "EXAMPLE: "), " => ", 2)
				if len(parts) == 2 {
					p.examples = append(p.examples, Example{Input: parts[0], Label: parts[1]})
				}
			case strings.HasPrefix(l, "TEXT: "):
				p.text = strings.TrimPrefix(l, "TEXT: ")
			}
		}
		if len(p.labels) == 0 {
			return p, fmtErrBadPrompt("classify task missing LABELS")
		}
	case taskGenerate:
		for _, l := range body {
			if strings.HasPrefix(l, "PROMPT: ") {
				p.free = strings.TrimPrefix(l, "PROMPT: ")
			}
		}
	default:
		return p, fmtErrBadPrompt("unknown task " + p.task)
	}
	return p, nil
}

// Question shapes the simulator (and corpus generator) agree on.
var (
	twoHopRe    = regexp.MustCompile(`^What is the (.+) of the entity whose (.+) is (.+)\?$`)
	oneHopRe    = regexp.MustCompile(`^What is the (.+) of (.+)\?$`)
	factStmtRe  = regexp.MustCompile(`The ([a-z][a-z ]*?) of ([A-Z][A-Za-z ]*?) is ([a-z]+)\.`)
	containsPre = "contains:"
)

// factsIn extracts (relation, subject, object) statements from a passage.
func factsIn(passage string) [][3]string {
	var out [][3]string
	for _, m := range factStmtRe.FindAllStringSubmatch(passage, -1) {
		out = append(out, [3]string{m[1], m[2], m[3]})
	}
	return out
}
