package llm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dataai/internal/corpus"
)

func perfectModel() Model {
	m := LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	return m
}

func testFacts() []corpus.Fact {
	return []corpus.Fact{
		{Subject: "Zorvex Fi", Relation: "ceo", Object: "anor", Domain: "finance"},
		{Subject: "Zorvex Fi", Relation: "revenue", Object: "elim", Domain: "finance"},
		{Subject: "Lumtar Me", Relation: "treatment", Object: "osur", Domain: "medicine"},
	}
}

func TestAnswerFromKnowledgeBase(t *testing.T) {
	s := NewSimulator(perfectModel(), 1)
	s.AddKnowledge(testFacts())
	r, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of Zorvex Fi?", nil)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "anor" {
		t.Errorf("answer = %q, want anor", r.Text)
	}
	if r.PromptTokens == 0 || r.CompletionTokens == 0 {
		t.Error("tokens not metered")
	}
	if r.CostUSD <= 0 || r.LatencyMS <= 0 {
		t.Error("cost/latency not metered")
	}
}

func TestAnswerUnknownWithoutKnowledge(t *testing.T) {
	s := NewSimulator(perfectModel(), 1)
	r, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of Zorvex Fi?", nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !IsUnknown(r.Text) {
		t.Errorf("answer = %q, want unknown", r.Text)
	}
	if r.Confidence > 0.2 {
		t.Errorf("unknown answer confidence = %v, want low", r.Confidence)
	}
}

func TestAnswerFromContextBeatsMissingKnowledge(t *testing.T) {
	s := NewSimulator(perfectModel(), 1)
	ctx := []string{"Some filler text. The ceo of Zorvex Fi is anor. More filler."}
	r, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of Zorvex Fi?", ctx)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "anor" {
		t.Errorf("grounded answer = %q, want anor", r.Text)
	}
}

func TestHallucinationRate(t *testing.T) {
	m := perfectModel()
	m.HallucinationRate = 1
	s := NewSimulator(m, 2)
	r, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of Nowhere Co?", nil)})
	if err != nil {
		t.Fatal(err)
	}
	if IsUnknown(r.Text) || r.Text == "" {
		t.Errorf("always-hallucinate model answered %q", r.Text)
	}
}

func TestTwoHopAnswer(t *testing.T) {
	s := NewSimulator(perfectModel(), 3)
	s.AddKnowledge(testFacts())
	q := "What is the revenue of the entity whose ceo is anor?"
	r, err := s.Complete(Request{Prompt: AnswerPrompt(q, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "elim" {
		t.Errorf("two-hop answer = %q, want elim", r.Text)
	}
}

func TestTwoHopFromContext(t *testing.T) {
	s := NewSimulator(perfectModel(), 3)
	ctx := []string{
		"The ceo of Zorvex Fi is anor.",
		"The revenue of Zorvex Fi is elim.",
	}
	q := "What is the revenue of the entity whose ceo is anor?"
	r, err := s.Complete(Request{Prompt: AnswerPrompt(q, ctx)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "elim" {
		t.Errorf("two-hop grounded answer = %q, want elim", r.Text)
	}
}

func TestBridge(t *testing.T) {
	s := NewSimulator(perfectModel(), 4)
	s.AddKnowledge(testFacts())
	q := "What is the revenue of the entity whose ceo is anor?"
	r, err := s.Complete(Request{Prompt: BridgePrompt(q, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "Zorvex Fi" {
		t.Errorf("bridge = %q, want Zorvex Fi", r.Text)
	}
	// Non-two-hop question: unknown.
	r, err = s.Complete(Request{Prompt: BridgePrompt("What is the ceo of Zorvex Fi?", nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !IsUnknown(r.Text) {
		t.Errorf("bridge on one-hop = %q", r.Text)
	}
}

func TestJudgeTruth(t *testing.T) {
	s := NewSimulator(perfectModel(), 5)
	r, err := s.Complete(Request{Prompt: JudgePrompt("contains:merger", "the quarterly Merger was approved")})
	if err != nil {
		t.Fatal(err)
	}
	if !IsYes(r.Text) {
		t.Errorf("judge = %q, want yes", r.Text)
	}
	r, err = s.Complete(Request{Prompt: JudgePrompt("contains:merger", "nothing relevant here")})
	if err != nil {
		t.Fatal(err)
	}
	if IsYes(r.Text) {
		t.Errorf("judge = %q, want no", r.Text)
	}
	// Multi-word term must match as a token sequence.
	r, _ = s.Complete(Request{Prompt: JudgePrompt("contains:release year", "the release year is 2009")})
	if !IsYes(r.Text) {
		t.Error("multi-word criterion failed")
	}
}

func TestJudgeErrRateFlipsSomeVerdicts(t *testing.T) {
	m := perfectModel()
	m.ErrRate = 0.5
	s := NewSimulator(m, 6)
	flips := 0
	const n = 200
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("document number %d mentions merger", i)
		r, err := s.Complete(Request{Prompt: JudgePrompt("contains:merger", text)})
		if err != nil {
			t.Fatal(err)
		}
		if !IsYes(r.Text) {
			flips++
		}
	}
	if flips < n/4 || flips > 3*n/4 {
		t.Errorf("flips = %d/%d with ErrRate 0.5", flips, n)
	}
}

func TestDeterminismAcrossCalls(t *testing.T) {
	m := LargeModel() // nonzero error rates
	s := NewSimulator(m, 7)
	s.AddKnowledge(testFacts())
	p := AnswerPrompt("What is the treatment of Lumtar Me?", nil)
	r1, err := s.Complete(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Complete(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text || r1.Confidence != r2.Confidence {
		t.Error("identical calls returned different responses")
	}
}

func TestExtractFormats(t *testing.T) {
	s := NewSimulator(perfectModel(), 8)
	cases := []struct{ text, attr, want string }{
		{"name: widget\nowner: acme\n", "owner", "acme"},
		{"header\nname = widget\nend", "name", "widget"},
		{"The status is active. Reviewed twice.", "status", "active"},
	}
	for _, c := range cases {
		r, err := s.Complete(Request{Prompt: ExtractPrompt(c.attr, c.text)})
		if err != nil {
			t.Fatal(err)
		}
		if r.Text != c.want {
			t.Errorf("extract %q from %q = %q, want %q", c.attr, c.text, r.Text, c.want)
		}
	}
	// Missing attribute with zero hallucination: unknown.
	r, err := s.Complete(Request{Prompt: ExtractPrompt("missing", "no such field here")})
	if err != nil {
		t.Fatal(err)
	}
	if !IsUnknown(r.Text) {
		t.Errorf("missing attr = %q", r.Text)
	}
}

func TestClassify(t *testing.T) {
	s := NewSimulator(perfectModel(), 9)
	s.RegisterLabel("finance", []string{"market", "shares", "dividend"})
	s.RegisterLabel("sports", []string{"season", "score", "playoff"})
	r, err := s.Complete(Request{Prompt: ClassifyPrompt([]string{"finance", "sports"}, "the market shares rose after the dividend")})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text != "finance" {
		t.Errorf("classify = %q", r.Text)
	}
}

func TestGenerateRespectsMaxTokens(t *testing.T) {
	s := NewSimulator(perfectModel(), 10)
	r, err := s.Complete(Request{Prompt: GeneratePrompt("write something"), MaxTokens: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletionTokens != 7 {
		t.Errorf("completion tokens = %d, want 7", r.CompletionTokens)
	}
}

func TestFreeFormPromptIsGenerate(t *testing.T) {
	s := NewSimulator(perfectModel(), 11)
	r, err := s.Complete(Request{Prompt: "just some text", MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Text == "" {
		t.Error("free-form prompt produced nothing")
	}
}

func TestContextOverflow(t *testing.T) {
	m := perfectModel()
	m.ContextWindow = 10
	s := NewSimulator(m, 12)
	_, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of X?", []string{strings.Repeat("word ", 50)})})
	if !errors.Is(err, ErrContextOverflow) {
		t.Errorf("err = %v, want ErrContextOverflow", err)
	}
}

func TestMalformedPrompts(t *testing.T) {
	s := NewSimulator(perfectModel(), 13)
	for _, p := range []string{
		"TASK: answer\nno question here",
		"TASK: judge\nTEXT: only text",
		"TASK: extract\nTEXT: only text",
		"TASK: classify\nTEXT: only text",
		"TASK: frobnicate\nX: y",
	} {
		if _, err := s.Complete(Request{Prompt: p}); !errors.Is(err, ErrBadPrompt) {
			t.Errorf("prompt %q err = %v, want ErrBadPrompt", p, err)
		}
	}
}

func TestUsageAccounting(t *testing.T) {
	s := NewSimulator(perfectModel(), 14)
	s.AddKnowledge(testFacts())
	for i := 0; i < 3; i++ {
		if _, err := s.Complete(Request{Prompt: AnswerPrompt("What is the ceo of Zorvex Fi?", nil)}); err != nil {
			t.Fatal(err)
		}
	}
	u := s.Usage()
	if u.Calls != 3 {
		t.Errorf("Calls = %d", u.Calls)
	}
	if u.CostUSD <= 0 || u.PromptTokens <= 0 {
		t.Error("usage not accumulated")
	}
	s.ResetUsage()
	if s.Usage().Calls != 0 {
		t.Error("ResetUsage did not clear")
	}
}

func TestCacheHitIsFree(t *testing.T) {
	s := NewSimulator(perfectModel(), 15)
	s.AddKnowledge(testFacts())
	c := NewCache(s)
	p := AnswerPrompt("What is the ceo of Zorvex Fi?", nil)
	r1, err := c.Complete(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first call should miss")
	}
	r2, err := c.Complete(Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second call should hit")
	}
	if r2.CostUSD != 0 {
		t.Error("hit should be free")
	}
	if r2.Text != r1.Text {
		t.Error("hit returned different text")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if s.Usage().Calls != 1 {
		t.Errorf("inner model called %d times, want 1", s.Usage().Calls)
	}
}

func TestCacheKeyIncludesMaxTokens(t *testing.T) {
	s := NewSimulator(perfectModel(), 16)
	c := NewCache(s)
	r1, _ := c.Complete(Request{Prompt: GeneratePrompt("x"), MaxTokens: 3})
	r2, _ := c.Complete(Request{Prompt: GeneratePrompt("x"), MaxTokens: 9})
	if r2.Cached {
		t.Error("different MaxTokens must not share a cache entry")
	}
	if r1.CompletionTokens == r2.CompletionTokens {
		t.Error("expected different completion lengths")
	}
}

func TestCascadeEscalation(t *testing.T) {
	cheap := NewSimulator(SmallModel(), 17)
	expensive := NewSimulator(perfectModel(), 17)
	// Threshold 1: always escalate.
	c := NewCascade(cheap, expensive, 1.0)
	r, err := c.Complete(Request{Prompt: JudgePrompt("contains:x", "x y z")})
	if err != nil {
		t.Fatal(err)
	}
	if esc, total := c.Stats(); esc != 1 || total != 1 {
		t.Errorf("stats = %d/%d", esc, total)
	}
	if expensive.Usage().Calls != 1 {
		t.Error("expensive model not consulted")
	}
	// Cost must include both tiers.
	soloCheap, _ := cheap.Complete(Request{Prompt: JudgePrompt("contains:x", "x y z")})
	if r.CostUSD <= soloCheap.CostUSD {
		t.Error("escalated cost should exceed cheap-only cost")
	}

	// Threshold 0: never escalate.
	c0 := NewCascade(cheap, expensive, 0)
	before := expensive.Usage().Calls
	if _, err := c0.Complete(Request{Prompt: JudgePrompt("contains:x", "x y")}); err != nil {
		t.Fatal(err)
	}
	if expensive.Usage().Calls != before {
		t.Error("threshold 0 escalated")
	}
}

func TestCascadeAccuracyBetweenTiers(t *testing.T) {
	// Over many judgments, cascade accuracy should exceed cheap-only and
	// cost should undercut expensive-only.
	cheap := NewSimulator(SmallModel(), 18)
	expensive := NewSimulator(LargeModel(), 18)
	cascade := NewCascade(NewSimulator(SmallModel(), 18), NewSimulator(LargeModel(), 18), 0.35)

	type verdict struct {
		text  string
		truth bool
	}
	var cases []verdict
	for i := 0; i < 300; i++ {
		truth := i%2 == 0
		text := "filler words here item" + strings.Repeat("z", i%11)
		if truth {
			text += " merger"
		}
		cases = append(cases, verdict{text, truth})
	}
	score := func(c Client) (acc float64, cost float64) {
		right := 0
		for _, v := range cases {
			r, err := c.Complete(Request{Prompt: JudgePrompt("contains:merger", v.text)})
			if err != nil {
				t.Fatal(err)
			}
			if IsYes(r.Text) == v.truth {
				right++
			}
			cost += r.CostUSD
		}
		return float64(right) / float64(len(cases)), cost
	}
	accCheap, _ := score(cheap)
	accExp, costExp := score(expensive)
	accCas, costCas := score(cascade)
	if accCas <= accCheap {
		t.Errorf("cascade accuracy %v not better than cheap %v", accCas, accCheap)
	}
	if costCas >= costExp {
		t.Errorf("cascade cost %v not cheaper than expensive %v", costCas, costExp)
	}
	if accExp < accCas-0.05 {
		t.Errorf("expensive accuracy %v unexpectedly below cascade %v", accExp, accCas)
	}
}

func BenchmarkSimulatorAnswer(b *testing.B) {
	s := NewSimulator(LargeModel(), 1)
	s.AddKnowledge(testFacts())
	p := AnswerPrompt("What is the ceo of Zorvex Fi?", []string{"The ceo of Zorvex Fi is anor. Extra context sentence here."})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Complete(Request{Prompt: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFewShotExamplesReduceClassifyError(t *testing.T) {
	m := perfectModel()
	m.ErrRate = 0.4
	s := NewSimulator(m, 20)
	s.RegisterLabel("finance", []string{"market", "dividend", "shares"})
	s.RegisterLabel("sports", []string{"playoff", "stadium", "referee"})
	labels := []string{"finance", "sports"}
	// Demonstrations sharing substantial distinctive vocabulary with the
	// classified text (>= 5 long tokens) — the in-context-learning model
	// discounts demonstrations that merely share generic words.
	demos := []Example{
		{Input: "the market dividend and shares moved together after earnings", Label: "finance"},
		{Input: "market watchers saw dividend shares moved together sharply", Label: "finance"},
	}
	zeroRight, fewRight := 0, 0
	const n = 150
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("report %d: the market dividend and shares moved together", i)
		r0, err := s.Complete(Request{Prompt: ClassifyPrompt(labels, text)})
		if err != nil {
			t.Fatal(err)
		}
		if r0.Text == "finance" {
			zeroRight++
		}
		r1, err := s.Complete(Request{Prompt: ClassifyPromptFewShot(labels, demos, text)})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Text == "finance" {
			fewRight++
		}
	}
	if fewRight <= zeroRight {
		t.Errorf("few-shot %d/%d not better than zero-shot %d/%d", fewRight, n, zeroRight, n)
	}
}

func TestSimulatorModelAndCacheUsage(t *testing.T) {
	s := NewSimulator(LargeModel(), 21)
	if s.Model().Name != "large" {
		t.Errorf("Model = %+v", s.Model())
	}
	c := NewCache(s)
	p := GeneratePrompt("usage check")
	if _, err := c.Complete(Request{Prompt: p, MaxTokens: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(Request{Prompt: p, MaxTokens: 4}); err != nil {
		t.Fatal(err)
	}
	u := c.Usage()
	if u.Calls != 2 {
		t.Errorf("cache usage calls = %d, want 2 (hit + miss)", u.Calls)
	}
	if u.CostUSD <= 0 {
		t.Error("cache usage cost missing the miss")
	}
}
