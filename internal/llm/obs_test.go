package llm

import (
	"testing"

	"dataai/internal/obs"
)

func TestCacheObsCounters(t *testing.T) {
	inner := fixedClient{r: Response{Text: "a", LatencyMS: 100}}
	c := NewCache(inner)
	tr := obs.NewTracer()
	c.SetObs(tr)

	req := Request{Prompt: "p", MaxTokens: 8}
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(req); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	reg := tr.Registry()
	if got := reg.Lookup("cache/hits").Final(); got != float64(hits) {
		t.Errorf("cache/hits = %v, stats say %d", got, hits)
	}
	if got := reg.Lookup("cache/misses").Final(); got != float64(misses) {
		t.Errorf("cache/misses = %v, stats say %d", got, misses)
	}
	// The logical clock charged the miss's 100ms then two 0.01ms hits:
	// the last hit point must sit past the miss point.
	missPts := reg.Lookup("cache/misses").Points()
	hitPts := reg.Lookup("cache/hits").Points()
	if len(missPts) != 1 || len(hitPts) != 2 {
		t.Fatalf("points = %d misses / %d hits, want 1/2", len(missPts), len(hitPts))
	}
	if hitPts[1].AtMS <= missPts[0].AtMS {
		t.Errorf("hit at %v not after miss at %v on the accumulated clock",
			hitPts[1].AtMS, missPts[0].AtMS)
	}
}

func TestCacheObsOffByDefault(t *testing.T) {
	c := NewCache(fixedClient{r: Response{Text: "a"}})
	if _, err := c.Complete(Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("stats = %d/%d, want 0 hits 1 miss", h, m)
	}
}

func TestCascadeObsCounters(t *testing.T) {
	cheap := fixedClient{r: Response{Text: "meh", Confidence: 0.2, LatencyMS: 10}}
	expensive := fixedClient{r: Response{Text: "good", Confidence: 0.9, LatencyMS: 200}}
	c := NewCascade(cheap, expensive, 0.5)
	tr := obs.NewTracer()
	c.SetObs(tr)

	if _, err := c.Complete(Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	escalated, total := c.Stats()
	if escalated != 1 || total != 1 {
		t.Fatalf("stats = %d/%d", escalated, total)
	}
	reg := tr.Registry()
	if got := reg.Lookup("cascade/calls").Final(); got != 1 {
		t.Errorf("cascade/calls = %v, want 1", got)
	}
	if got := reg.Lookup("cascade/escalations").Final(); got != 1 {
		t.Errorf("cascade/escalations = %v, want 1", got)
	}
}
