package llm

import (
	"errors"
	"fmt"
)

// Failure taxonomy for the call path. Real LLM endpoints fail in ways the
// paper's orchestrators (§2.2) silently assume away: connections flap,
// providers rate-limit, requests time out after burning prefill tokens.
// These sentinels classify those failures so middleware (package
// resilient) and fault injectors (package faults) agree on semantics
// without importing each other.
var (
	// ErrTransient indicates a momentary failure (connection reset,
	// 5xx); an immediate or backed-off retry is expected to succeed.
	ErrTransient = errors.New("llm: transient failure")
	// ErrRateLimited indicates the endpoint refused the call to shed
	// load (429). Errors wrapping it may carry a retry-after hint via
	// RateLimitError.
	ErrRateLimited = errors.New("llm: rate limited")
	// ErrTimeout indicates the call consumed its deadline without an
	// answer. Unlike ErrTransient the request was sent, so its prompt
	// tokens and latency are already spent (wasted work the resilience
	// layer meters).
	ErrTimeout = errors.New("llm: request timed out")
)

// RateLimitError wraps ErrRateLimited with the endpoint's retry-after
// hint, mirroring the Retry-After header real providers return.
type RateLimitError struct {
	// RetryAfterMS is the simulated wait the endpoint requests before
	// the next attempt.
	RetryAfterMS float64
}

// Error implements error.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("llm: rate limited (retry after %.0fms)", e.RetryAfterMS)
}

// Unwrap makes errors.Is(e, ErrRateLimited) true.
func (e *RateLimitError) Unwrap() error { return ErrRateLimited }

// RetryAfter extracts the retry-after hint from an error chain; ok is
// false when err carries no hint.
func RetryAfter(err error) (ms float64, ok bool) {
	var rl *RateLimitError
	if errors.As(err, &rl) {
		return rl.RetryAfterMS, true
	}
	return 0, false
}

// IsRetryable reports whether err names a failure a retry can fix:
// transient errors, rate limits, and timeouts. Malformed prompts and
// context overflows are not retryable — resending the same request
// deterministically fails again; those need degradation (shrink the
// context, fall back to a larger-window model) instead.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, ErrRateLimited) ||
		errors.Is(err, ErrTimeout)
}
