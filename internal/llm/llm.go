// Package llm provides the simulated large language model client that every
// LLM4Data technique in this repository orchestrates.
//
// The paper's techniques (§2.2) treat the LLM as a callable oracle with four
// problematic properties — imperfect accuracy, per-call cost, latency, and
// hallucination — and every surveyed system (RAG, semantic operators,
// Evaporate, SYMPHONY, ...) is a strategy for managing those properties.
// This package substitutes a deterministic simulator that exhibits exactly
// those properties:
//
//   - A knowledge base stands in for "what the model memorized during
//     pretraining". Questions about facts outside it are answered
//     "unknown" or, with Model.HallucinationRate probability, fabricated.
//   - Judgments, extractions, and grounded answers are wrong with
//     Model.ErrRate probability. Wrongness is a deterministic function of
//     (prompt, model, seed), so identical calls return identical results —
//     which is what makes response caching semantically sound.
//   - Every call is metered: prompt/completion tokens, simulated latency
//     from a prefill+decode cost model, and dollar cost. No wall-clock
//     time is consumed; latency is returned, not slept.
//
// Two model presets, SmallModel and LargeModel, differ in cost and error
// rate, enabling the model-cascade optimization that LOTUS/PALIMPZEST-style
// systems use (experiment E2).
package llm

import (
	"errors"
	"fmt"
	"sync"

	"dataai/internal/token"
)

// Errors returned by clients.
var (
	// ErrBadPrompt indicates a prompt the model cannot interpret.
	ErrBadPrompt = errors.New("llm: malformed prompt")
	// ErrContextOverflow indicates a prompt exceeding the context window.
	ErrContextOverflow = errors.New("llm: prompt exceeds context window")
)

// Model describes a simulated model tier.
type Model struct {
	// Name distinguishes tiers; it is mixed into the decision hash so
	// different models disagree on the margin.
	Name string
	// ErrRate is the probability a judgment/extraction/grounded answer
	// is wrong.
	ErrRate float64
	// HallucinationRate is the probability of fabricating an answer when
	// the truth is not available (vs. admitting "unknown").
	HallucinationRate float64
	// ContextWindow is the maximum prompt size in tokens.
	ContextWindow int
	// PromptCostPer1K / CompletionCostPer1K are dollar costs per 1000
	// tokens, mirroring API pricing structure.
	PromptCostPer1K     float64
	CompletionCostPer1K float64
	// PrefillTokensPerMS / DecodeTokensPerMS set the latency model:
	// latency = promptTokens/prefillRate + completionTokens/decodeRate.
	PrefillTokensPerMS float64
	DecodeTokensPerMS  float64
}

// LargeModel returns a preset mirroring a frontier API model: accurate and
// expensive.
func LargeModel() Model {
	return Model{
		Name:                "large",
		ErrRate:             0.02,
		HallucinationRate:   0.3,
		ContextWindow:       8192,
		PromptCostPer1K:     0.01,
		CompletionCostPer1K: 0.03,
		PrefillTokensPerMS:  20,
		DecodeTokensPerMS:   0.05,
	}
}

// SmallModel returns a preset mirroring a cheap proxy model: an order of
// magnitude cheaper and several times less accurate — the cascade's first
// tier.
func SmallModel() Model {
	return Model{
		Name:                "small",
		ErrRate:             0.15,
		HallucinationRate:   0.5,
		ContextWindow:       4096,
		PromptCostPer1K:     0.0005,
		CompletionCostPer1K: 0.0015,
		PrefillTokensPerMS:  80,
		DecodeTokensPerMS:   0.4,
	}
}

// Request is one completion call.
type Request struct {
	Prompt string
	// MaxTokens caps the completion length; 0 means the model default.
	MaxTokens int
}

// Response is the result of a completion call.
type Response struct {
	Text string
	// Confidence in [0,1); correlates with correctness but noisily, as
	// real calibrated-confidence signals do. Cascades escalate on it.
	Confidence float64
	// PromptTokens and CompletionTokens are the metered sizes.
	PromptTokens     int
	CompletionTokens int
	// LatencyMS is the simulated latency of this call.
	LatencyMS float64
	// CostUSD is the simulated dollar cost of this call.
	CostUSD float64
	// Cached reports whether the response was served from a cache
	// without invoking the model.
	Cached bool
	// Degraded reports that a resilience policy produced this response
	// after the primary path failed — a fallback model answered, or the
	// failure was converted into an explicit refusal so the rest of the
	// batch could proceed. Callers use it to separate "the model said
	// unknown" from "the serving path gave up".
	Degraded bool
}

// Client is anything that can complete prompts: the simulator, a cache
// wrapper, or a cascade router.
type Client interface {
	Complete(req Request) (Response, error)
}

// Usage is a running tally of client consumption.
type Usage struct {
	Calls            int64
	PromptTokens     int64
	CompletionTokens int64
	CostUSD          float64
	LatencyMS        float64
}

// usageMeter is the shared accounting primitive.
type usageMeter struct {
	mu sync.Mutex
	u  Usage
}

func (m *usageMeter) record(r Response) {
	m.mu.Lock()
	m.u.Calls++
	m.u.PromptTokens += int64(r.PromptTokens)
	m.u.CompletionTokens += int64(r.CompletionTokens)
	m.u.CostUSD += r.CostUSD
	m.u.LatencyMS += r.LatencyMS
	m.mu.Unlock()
}

func (m *usageMeter) snapshot() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.u
}

func (m *usageMeter) reset() {
	m.mu.Lock()
	m.u = Usage{}
	m.mu.Unlock()
}

// price computes a call's dollar cost under model m.
func price(m Model, promptTokens, completionTokens int) float64 {
	return float64(promptTokens)/1000*m.PromptCostPer1K +
		float64(completionTokens)/1000*m.CompletionCostPer1K
}

// latency computes a call's simulated latency under model m.
func latency(m Model, promptTokens, completionTokens int) float64 {
	var l float64
	if m.PrefillTokensPerMS > 0 {
		l += float64(promptTokens) / m.PrefillTokensPerMS
	}
	if m.DecodeTokensPerMS > 0 {
		l += float64(completionTokens) / m.DecodeTokensPerMS
	}
	return l
}

// decision returns a deterministic uniform value in [0,1) for a
// (prompt, model, seed, salt) tuple. It drives every stochastic choice the
// simulator makes, so repeated identical calls agree.
func decision(prompt, modelName string, seed uint64, salt string) float64 {
	h := token.Hash64Seed(prompt+"\x00"+modelName+"\x00"+salt, seed)
	return float64(h>>11) / float64(1<<53)
}

// fabricate synthesizes a plausible-but-wrong value for hallucinations,
// deterministic per prompt.
func fabricate(prompt string, seed uint64) string {
	syllables := []string{"an", "or", "el", "im", "os", "ur", "et", "ax", "on", "ir"}
	h := token.Hash64Seed(prompt, seed^0xfab)
	n := 2 + int(h%3)
	out := ""
	for i := 0; i < n; i++ {
		out += syllables[(h>>uint(8*i))%uint64(len(syllables))]
	}
	return out
}

func fmtErrBadPrompt(detail string) error {
	return fmt.Errorf("%w: %s", ErrBadPrompt, detail)
}
