package llm

import (
	"sync"

	"dataai/internal/obs"
	"dataai/internal/token"
)

// Cache wraps a Client with an exact-prompt response cache — the paper's
// §2.2.1 cost-efficiency principle ("this can be achieved through caching
// and reducing unnecessary model invocations"). A hit returns the stored
// response with zero marginal token cost and a fixed small lookup latency.
//
// Caching is sound here because the simulator is deterministic per prompt;
// for real LLMs the same design trades freshness for cost identically.
type Cache struct {
	inner Client

	mu     sync.Mutex
	m      map[uint64]Response
	flight map[uint64]*flightCall
	hits   int64
	misses int64

	// obsClockMS is the cache's logical clock when tracing: accumulated
	// simulated latency of the responses it served. obsHits/obsMisses
	// mirror the stats counters into a tracer's registry (nil = off).
	obsClockMS         float64
	obsHits, obsMisses *obs.Metric

	meter usageMeter
}

// flightCall is one in-progress inner call that concurrent identical
// misses wait on instead of re-issuing (single-flight deduplication).
type flightCall struct {
	done chan struct{}
	r    Response
	err  error
}

// CacheLookupLatencyMS is the simulated latency of serving a hit.
const CacheLookupLatencyMS = 0.01

// NewCache wraps inner with a response cache.
func NewCache(inner Client) *Cache {
	return &Cache{inner: inner, m: make(map[uint64]Response), flight: make(map[uint64]*flightCall)}
}

// SetObs mirrors the cache's hit/miss tallies into tr's metric registry
// as the cache/hits and cache/misses counters, timestamped on a logical
// clock of accumulated simulated latency. Call before issuing requests;
// a nil tracer (or never calling SetObs) leaves the cache untraced.
func (c *Cache) SetObs(tr *obs.Tracer) {
	reg := tr.Registry()
	c.mu.Lock()
	c.obsHits = reg.Counter("cache/hits")
	c.obsMisses = reg.Counter("cache/misses")
	c.mu.Unlock()
}

// Complete implements Client. Concurrent identical misses are
// deduplicated: the first caller (the leader) issues the inner call and
// every other caller waits for its result, so N racing misses cost one
// inner invocation instead of N. Waiters are accounted as hits — they
// were served without spending tokens, exactly like a lookup hit.
func (c *Cache) Complete(req Request) (Response, error) {
	key := token.Hash64Seed(req.Prompt, uint64(req.MaxTokens)+1)
	c.mu.Lock()
	if r, ok := c.m[key]; ok {
		c.hits++
		c.obsHit(CacheLookupLatencyMS)
		c.mu.Unlock()
		return c.serveHit(r), nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.mu.Lock()
		if f.err != nil {
			// The shared call failed: the waiter observed a miss and
			// inherits the leader's error.
			c.misses++
			c.obsMiss(f.r.LatencyMS)
			c.mu.Unlock()
			return f.r, f.err
		}
		c.hits++
		c.obsHit(CacheLookupLatencyMS)
		c.mu.Unlock()
		return c.serveHit(f.r), nil
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[key] = f
	c.misses++
	c.mu.Unlock()

	f.r, f.err = c.inner.Complete(req)
	c.mu.Lock()
	delete(c.flight, key) // an errored flight must not poison later calls
	if f.err == nil {
		c.m[key] = f.r
	}
	c.obsMiss(f.r.LatencyMS) // the leader's miss, charged at call end
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return f.r, f.err
	}
	c.meter.record(f.r)
	return f.r, nil
}

// obsHit / obsMiss advance the observability clock by the latency the
// caller is charged and record the counter point. Both require c.mu and
// no-op when SetObs was never called.
func (c *Cache) obsHit(latencyMS float64) {
	if c.obsHits == nil {
		return
	}
	c.obsClockMS += latencyMS
	c.obsHits.Add(c.obsClockMS, 1)
}

func (c *Cache) obsMiss(latencyMS float64) {
	if c.obsMisses == nil {
		return
	}
	c.obsClockMS += latencyMS
	c.obsMisses.Add(c.obsClockMS, 1)
}

// serveHit marks and meters a response served without an inner call.
func (c *Cache) serveHit(r Response) Response {
	r.Cached = true
	r.CostUSD = 0
	r.LatencyMS = CacheLookupLatencyMS
	c.meter.record(r)
	return r
}

// Stats reports cache hits and misses.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Usage returns the tally of responses served through the cache,
// including zero-cost hits.
func (c *Cache) Usage() Usage { return c.meter.snapshot() }

// Cascade routes calls through a cheap model first and escalates to an
// expensive model when the cheap model's confidence falls below Threshold —
// the model-cascade optimization LOTUS/PALIMPZEST-style systems apply to
// semantic operators (experiment E2).
type Cascade struct {
	Cheap     Client
	Expensive Client
	// Threshold in [0,1]: cheap responses with Confidence below it are
	// escalated. 0 never escalates; 1 always escalates.
	Threshold float64

	mu        sync.Mutex
	escalated int64
	total     int64

	// Observability mirror of the tallies, on an accumulated-latency
	// logical clock (see Cache). Nil metrics mean tracing is off.
	obsClockMS               float64
	obsCalls, obsEscalations *obs.Metric
}

// NewCascade builds a cascade router.
func NewCascade(cheap, expensive Client, threshold float64) *Cascade {
	return &Cascade{Cheap: cheap, Expensive: expensive, Threshold: threshold}
}

// SetObs mirrors the cascade's call/escalation tallies into tr's metric
// registry as the cascade/calls and cascade/escalations counters. Call
// before issuing requests; a nil tracer leaves the cascade untraced.
func (c *Cascade) SetObs(tr *obs.Tracer) {
	reg := tr.Registry()
	c.mu.Lock()
	c.obsCalls = reg.Counter("cascade/calls")
	c.obsEscalations = reg.Counter("cascade/escalations")
	c.mu.Unlock()
}

// Complete implements Client. The returned response carries the combined
// cost and latency of every model consulted — including on the error
// path: when the expensive model fails after a cheap-model miss, the
// cheap call's spend rides on the returned response so caller-side
// metering still sees it as waste.
func (c *Cascade) Complete(req Request) (Response, error) {
	r1, err := c.Cheap.Complete(req)
	// Every call counts toward total, errored or not, so Stats()
	// denominators are consistent with the number of Complete calls.
	c.mu.Lock()
	c.total++
	if c.obsCalls != nil {
		c.obsClockMS += r1.LatencyMS
		c.obsCalls.Add(c.obsClockMS, 1)
	}
	c.mu.Unlock()
	if err != nil {
		return r1, err
	}
	if r1.Confidence >= c.Threshold {
		return r1, nil
	}
	c.mu.Lock()
	c.escalated++
	if c.obsEscalations != nil {
		c.obsEscalations.Add(c.obsClockMS, 1)
	}
	c.mu.Unlock()
	r2, err := c.Expensive.Complete(req)
	c.mu.Lock()
	if c.obsCalls != nil {
		c.obsClockMS += r2.LatencyMS // the escalated tier's own latency
	}
	c.mu.Unlock()
	r2.CostUSD += r1.CostUSD
	r2.LatencyMS += r1.LatencyMS
	r2.PromptTokens += r1.PromptTokens
	r2.CompletionTokens += r1.CompletionTokens
	if err != nil {
		return r2, err
	}
	return r2, nil
}

// Stats reports how many calls were escalated out of the total.
func (c *Cascade) Stats() (escalated, total int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.escalated, c.total
}
