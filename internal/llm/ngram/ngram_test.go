package ngram

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/token"
)

func TestTrainedTextScoresBetterThanRandom(t *testing.T) {
	m := New()
	for i := 0; i < 50; i++ {
		m.Train("the quick brown fox jumps over the lazy dog")
	}
	ppTrained, err := m.Perplexity("the quick brown fox")
	if err != nil {
		t.Fatal(err)
	}
	ppRandom, err := m.Perplexity("zebra waffle umbrella xylophone quantum")
	if err != nil {
		t.Fatal(err)
	}
	if ppTrained >= ppRandom {
		t.Errorf("trained text ppl %v >= random %v", ppTrained, ppRandom)
	}
	if ppTrained > 3 {
		t.Errorf("memorized text perplexity %v unexpectedly high", ppTrained)
	}
}

func TestPerplexityPositiveAndFinite(t *testing.T) {
	m := New()
	m.Train("alpha beta gamma delta")
	for _, text := range []string{"alpha beta", "unseen tokens entirely", "alpha unseen beta"} {
		pp, err := m.Perplexity(text)
		if err != nil {
			t.Fatal(err)
		}
		if pp <= 0 || math.IsInf(pp, 0) || math.IsNaN(pp) {
			t.Errorf("Perplexity(%q) = %v", text, pp)
		}
	}
}

func TestEmptyTextErrors(t *testing.T) {
	m := New()
	m.Train("some text")
	if _, err := m.Perplexity(""); err == nil {
		t.Error("empty text should error")
	}
	if _, err := m.CorpusPerplexity(nil); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestScoringDoesNotMutateModel(t *testing.T) {
	m := New()
	m.Train("the cat sat on the mat")
	before := m.VocabSize()
	pp1, _ := m.Perplexity("completely novel vocabulary here")
	if m.VocabSize() != before {
		t.Error("scoring grew the vocabulary")
	}
	pp2, _ := m.Perplexity("completely novel vocabulary here")
	if pp1 != pp2 {
		t.Errorf("repeated scoring changed: %v then %v", pp1, pp2)
	}
}

func TestMoreDataImprovesHeldOut(t *testing.T) {
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	var clean []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean {
			clean = append(clean, d.Text)
		}
	}
	if len(clean) < 100 {
		t.Skip("not enough clean docs")
	}
	heldOut := clean[:40]
	train := clean[40:]

	small := New()
	small.TrainAll(train[:30])
	big := New()
	big.TrainAll(train)

	ppSmall, err := small.CorpusPerplexity(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	ppBig, err := big.CorpusPerplexity(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	if ppBig >= ppSmall {
		t.Errorf("more data did not help: %v (big) vs %v (small)", ppBig, ppSmall)
	}
}

func TestDomainMismatchHurts(t *testing.T) {
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	pick := func(domain string) []string {
		var out []string
		for _, d := range c.DomainDocs(domain) {
			if d.Kind == corpus.Clean {
				out = append(out, d.Text)
			}
		}
		return out
	}
	fin := pick("finance")
	med := pick("medicine")
	if len(fin) < 40 || len(med) < 40 {
		t.Skip("not enough docs")
	}
	heldOut := fin[:20]
	inDomain := New()
	inDomain.TrainAll(fin[20:])
	offDomain := New()
	offDomain.TrainAll(med)

	ppIn, _ := inDomain.CorpusPerplexity(heldOut)
	ppOff, _ := offDomain.CorpusPerplexity(heldOut)
	if ppIn >= ppOff {
		t.Errorf("in-domain ppl %v >= off-domain %v", ppIn, ppOff)
	}
}

func TestSetWeights(t *testing.T) {
	m := New()
	if err := m.SetWeights(0.4, 0.3, 0.2, 0.1); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	if err := m.SetWeights(0.5, 0.5, 0.5, 0.5); err == nil {
		t.Error("non-normalized weights accepted")
	}
	if err := m.SetWeights(0.5, 0.3, 0.2, 0); err == nil {
		t.Error("zero uniform weight accepted (perplexity could be infinite)")
	}
}

func TestGenerateDeterministicAndFromVocab(t *testing.T) {
	m := New()
	m.TrainAll([]string{
		"the market rallied after earnings",
		"the market slipped after losses",
		"investors watched the market",
	})
	g1 := m.Generate(rand.New(rand.NewSource(1)), 20)
	g2 := m.Generate(rand.New(rand.NewSource(1)), 20)
	if g1 != g2 {
		t.Error("generation not deterministic for the same seed")
	}
	if g1 == "" {
		t.Fatal("empty generation")
	}
	vocab := map[string]bool{}
	for _, w := range strings.Fields("the market rallied slipped after earnings losses investors watched") {
		vocab[w] = true
	}
	for _, w := range strings.Fields(g1) {
		if !vocab[w] {
			t.Errorf("generated token %q outside training vocabulary", w)
		}
	}
}

func TestGenerateEmptyModel(t *testing.T) {
	m := New()
	if got := m.Generate(rand.New(rand.NewSource(1)), 10); got != "" {
		t.Errorf("empty model generated %q", got)
	}
}

func TestTokensAndVocabCounters(t *testing.T) {
	m := New()
	m.Train("a b a")
	if m.Tokens() != 4 { // a b a <eos>
		t.Errorf("Tokens = %d, want 4", m.Tokens())
	}
	if m.VocabSize() != 5 { // 3 specials + a + b
		t.Errorf("VocabSize = %d, want 5", m.VocabSize())
	}
}

func BenchmarkTrain(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog . ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New()
		m.Train(text)
	}
}

func BenchmarkPerplexity(b *testing.B) {
	m := New()
	gen, _ := corpus.NewGenerator(corpus.DefaultConfig(1))
	c := gen.Generate()
	m.TrainAll(c.Texts()[:200])
	text := c.Docs[300].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Perplexity(text); err != nil {
			b.Fatal(err)
		}
	}
}

// TestProbSumsToOne is the defining property of a language model: for any
// context, the next-token distribution must sum to 1 over the vocabulary
// — including contexts never seen in training, where the interpolation
// weights renormalize over the available orders.
func TestProbSumsToOne(t *testing.T) {
	m := New()
	m.TrainAll([]string{
		"the cat sat on the mat",
		"the dog sat on the rug",
		"cats and dogs live together",
	})
	contexts := [][2]int{
		{token.BOSID, token.BOSID},          // seen
		{m.lookup("the"), m.lookup("cat")},  // seen trigram context
		{m.lookup("mat"), m.lookup("cats")}, // unseen trigram, seen bigram
		{m.lookup("rug"), token.UnknownID},  // unknown continuation context
		{token.UnknownID, token.UnknownID},  // fully unknown
	}
	for _, ctx := range contexts {
		var sum float64
		for w := 0; w < m.VocabSize(); w++ {
			sum += m.prob(ctx[0], ctx[1], w)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("context %v: probabilities sum to %v", ctx, sum)
		}
	}
}

func TestProbSumsToOneProperty(t *testing.T) {
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	m := New()
	m.TrainAll(c.Texts()[:100])
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b2 := rng.Intn(m.VocabSize())
		b1 := rng.Intn(m.VocabSize())
		var sum float64
		for w := 0; w < m.VocabSize(); w++ {
			sum += m.prob(b2, b1, w)
		}
		if math.Abs(sum-1) > 1e-8 {
			t.Fatalf("context (%d,%d): sum %v", b2, b1, sum)
		}
	}
}
