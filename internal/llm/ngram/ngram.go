// Package ngram implements an interpolated n-gram language model with true
// perplexity evaluation.
//
// The Data4LLM experiments (E6 mixture, E7 selection, E8 cleaning) all make
// claims of the form "preparing the data this way yields a better model per
// token of training data". Testing those claims needs a model whose quality
// responds to training-data quality. Training a neural LM is out of scope
// (and unnecessary — the claims are about data, not architecture), so this
// package provides a genuine statistical language model: a Jelinek-Mercer
// interpolated trigram model. Its perplexity on held-out text moves in the
// same direction as a neural LM's loss would when the training data gains
// duplicates, noise, or domain mismatch — which is the property the
// experiments measure.
//
// It also doubles as the perplexity scorer used by perplexity-based data
// selection (§2.3.2 Data Selection, [14]) and as a Markov text generator
// for data synthesis (§2.3.2 Data Synthesis).
package ngram

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dataai/internal/token"
)

// Model is an interpolated trigram language model. The zero value is not
// usable; construct with New. Train and score phases may interleave, but
// the model is not safe for concurrent mutation.
type Model struct {
	vocab *token.Vocabulary

	// Counts at each order. Context keys pack predecessor token ids.
	uni      map[int]int
	bi       map[uint64]map[int]int
	tri      map[uint64]map[int]int
	biTotal  map[uint64]int
	triTotal map[uint64]int
	tokens   int // total unigram mass

	// Interpolation weights for trigram, bigram, unigram, uniform.
	l3, l2, l1, l0 float64
}

// New returns an empty model with conventional interpolation weights.
func New() *Model {
	return &Model{
		vocab:    token.NewVocabulary(),
		uni:      make(map[int]int),
		bi:       make(map[uint64]map[int]int),
		tri:      make(map[uint64]map[int]int),
		biTotal:  make(map[uint64]int),
		triTotal: make(map[uint64]int),
		l3:       0.5, l2: 0.3, l1: 0.19, l0: 0.01,
	}
}

// SetWeights overrides the interpolation weights; they must be positive
// and sum to 1 within 1e-6.
func (m *Model) SetWeights(l3, l2, l1, l0 float64) error {
	sum := l3 + l2 + l1 + l0
	if math.Abs(sum-1) > 1e-6 || l3 < 0 || l2 < 0 || l1 < 0 || l0 <= 0 {
		return fmt.Errorf("ngram: invalid weights %v %v %v %v (sum %v)", l3, l2, l1, l0, sum)
	}
	m.l3, m.l2, m.l1, m.l0 = l3, l2, l1, l0
	return nil
}

func biKey(a int) uint64     { return uint64(a) }
func triKey(a, b int) uint64 { return uint64(a)<<32 | uint64(b) }

// Train ingests one document. Documents are independent: each is framed
// with <bos> and <eos> so cross-document transitions are not learned.
func (m *Model) Train(text string) {
	ids := m.frame(text, false)
	for i := 2; i < len(ids); i++ {
		w, b1, b2 := ids[i], ids[i-1], ids[i-2]
		m.uni[w]++
		m.tokens++
		bk := biKey(b1)
		if m.bi[bk] == nil {
			m.bi[bk] = make(map[int]int)
		}
		m.bi[bk][w]++
		m.biTotal[bk]++
		tk := triKey(b2, b1)
		if m.tri[tk] == nil {
			m.tri[tk] = make(map[int]int)
		}
		m.tri[tk][w]++
		m.triTotal[tk]++
	}
}

// TrainAll ingests each document in texts.
func (m *Model) TrainAll(texts []string) {
	for _, t := range texts {
		m.Train(t)
	}
}

// frame encodes text as <bos> <bos> w1 ... wn <eos>. When frozen is true
// the vocabulary does not grow (scoring mode).
func (m *Model) frame(text string, frozen bool) []int {
	toks := token.Tokenize(text)
	ids := make([]int, 0, len(toks)+3)
	ids = append(ids, token.BOSID, token.BOSID)
	for _, t := range toks {
		if frozen {
			ids = append(ids, m.lookup(t))
		} else {
			ids = append(ids, m.vocab.ID(t))
		}
	}
	return append(ids, token.EOSID)
}

// lookup maps a token without growing the vocabulary: scoring held-out
// text must not change the model (and with it the uniform term's V).
func (m *Model) lookup(t string) int {
	if id, ok := m.vocab.IDIfPresent(t); ok {
		return id
	}
	return token.UnknownID
}

// VocabSize reports the number of distinct trained tokens (plus specials).
func (m *Model) VocabSize() int { return m.vocab.Size() }

// Tokens reports the total number of training tokens ingested.
func (m *Model) Tokens() int { return m.tokens }

// prob returns the interpolated probability of w after context (b2, b1).
// Interpolation weights are renormalized over the *available* orders: a
// context never seen in training contributes no trigram/bigram term, and
// naively skipping those terms would leave the distribution summing to
// less than one (a deficient model whose perplexities are not comparable
// across contexts). Redistributing the missing weight onto the lower
// orders keeps Σ_w prob(ctx, w) = 1 for every context.
func (m *Model) prob(b2, b1, w int) float64 {
	v := float64(m.vocab.Size())
	weight := m.l0
	p := m.l0 / v
	if m.tokens > 0 {
		p += m.l1 * float64(m.uni[w]) / float64(m.tokens)
		weight += m.l1
	}
	if t := m.biTotal[biKey(b1)]; t > 0 {
		p += m.l2 * float64(m.bi[biKey(b1)][w]) / float64(t)
		weight += m.l2
	}
	if t := m.triTotal[triKey(b2, b1)]; t > 0 {
		p += m.l3 * float64(m.tri[triKey(b2, b1)][w]) / float64(t)
		weight += m.l3
	}
	return p / weight
}

// CrossEntropy returns the average negative log2 probability per token of
// text under the model, or an error for empty text.
func (m *Model) CrossEntropy(text string) (float64, error) {
	ids := m.frame(text, true)
	n := len(ids) - 2 // predicted positions (content tokens + <eos>)
	if n <= 1 {       // only <eos> would be predicted
		return 0, fmt.Errorf("ngram: empty text")
	}
	var h float64
	for i := 2; i < len(ids); i++ {
		p := m.prob(ids[i-2], ids[i-1], ids[i])
		h -= math.Log2(p)
	}
	return h / float64(n), nil
}

// Perplexity returns 2^CrossEntropy(text).
func (m *Model) Perplexity(text string) (float64, error) {
	h, err := m.CrossEntropy(text)
	if err != nil {
		return 0, err
	}
	return math.Exp2(h), nil
}

// CorpusPerplexity scores a held-out set as one stream, token-weighted.
func (m *Model) CorpusPerplexity(texts []string) (float64, error) {
	var bits float64
	var n int
	for _, t := range texts {
		ids := m.frame(t, true)
		for i := 2; i < len(ids); i++ {
			bits -= math.Log2(m.prob(ids[i-2], ids[i-1], ids[i]))
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("ngram: no tokens to score")
	}
	return math.Exp2(bits / float64(n)), nil
}

// Generate samples up to maxTokens tokens from the model, starting from
// the <bos> context, using the provided rng. Generation stops at <eos>.
// It is the Markov-chain synthesizer used by the data-synthesis stage.
func (m *Model) Generate(rng *rand.Rand, maxTokens int) string {
	if m.tokens == 0 {
		return ""
	}
	b2, b1 := token.BOSID, token.BOSID
	var out []string
	for len(out) < maxTokens {
		w := m.sample(rng, b2, b1)
		if w == token.EOSID {
			break
		}
		out = append(out, m.vocab.Word(w))
		b2, b1 = b1, w
	}
	return token.Detokenize(out)
}

// sample draws the next token: from the trigram distribution when the
// context was seen, backing off to bigram then unigram.
func (m *Model) sample(rng *rand.Rand, b2, b1 int) int {
	if dist := m.tri[triKey(b2, b1)]; len(dist) > 0 && rng.Float64() < 0.8 {
		return sampleDist(rng, dist, m.triTotal[triKey(b2, b1)])
	}
	if dist := m.bi[biKey(b1)]; len(dist) > 0 && rng.Float64() < 0.8 {
		return sampleDist(rng, dist, m.biTotal[biKey(b1)])
	}
	return sampleDist(rng, m.uni, m.tokens)
}

// sampleDist samples from a count map deterministically given the rng, by
// walking keys in sorted order (map iteration order must not leak).
func sampleDist(rng *rand.Rand, dist map[int]int, total int) int {
	target := rng.Intn(total)
	keys := make([]int, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	acc := 0
	for _, k := range keys {
		acc += dist[k]
		if target < acc {
			return k
		}
	}
	return keys[len(keys)-1]
}
