package llm

import (
	"fmt"
	"sync"
	"testing"
)

// These stress tests exist so `go test -race ./...` actually exercises
// the mutexes in cache.go: many goroutines hammering the same few cache
// keys forces hit/miss races, double-insert races, and concurrent meter
// updates that a sequential test never reaches.

func TestCacheParallelComplete(t *testing.T) {
	c := NewCache(NewSimulator(LargeModel(), 7))
	const (
		workers = 8
		rounds  = 200
		keys    = 16 // few keys → heavy contention on the same entries
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				prompt := fmt.Sprintf("stress prompt %d", (w+i)%keys)
				r, err := c.Complete(Request{Prompt: prompt, MaxTokens: 32})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if r.Text == "" {
					t.Error("empty response text")
					return
				}
				// Interleave reads of the shared counters.
				c.Stats()
				c.Usage()
			}
		}(w)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, workers*rounds)
	}
	// Each distinct prompt misses at least once; it may miss more than
	// once when two goroutines race past the lookup before either
	// inserts, but hits must dominate with this much key reuse.
	if misses < keys {
		t.Fatalf("misses = %d, want >= %d distinct prompts", misses, keys)
	}
	if hits == 0 {
		t.Fatal("no cache hits under heavy key reuse")
	}
}

func TestCacheParallelDeterministicResponses(t *testing.T) {
	// Responses served concurrently must equal the sequential responses:
	// the cache must never hand one prompt's response to another.
	ref := NewSimulator(LargeModel(), 7)
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("determinism %d", i)
		r, err := ref.Complete(Request{Prompt: p, MaxTokens: 32})
		if err != nil {
			t.Fatal(err)
		}
		want[p] = r.Text
	}
	c := NewCache(NewSimulator(LargeModel(), 7))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("determinism %d", i%8)
				r, err := c.Complete(Request{Prompt: p, MaxTokens: 32})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if r.Text != want[p] {
					t.Errorf("prompt %q: got %q, want %q", p, r.Text, want[p])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCascadeParallelComplete(t *testing.T) {
	cas := NewCascade(NewSimulator(SmallModel(), 3), NewSimulator(LargeModel(), 4), 0.5)
	const workers, rounds = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := cas.Complete(Request{Prompt: fmt.Sprintf("cascade %d/%d", w, i), MaxTokens: 16})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				cas.Stats()
			}
		}(w)
	}
	wg.Wait()
	escalated, total := cas.Stats()
	if total != workers*rounds {
		t.Fatalf("total = %d, want %d", total, workers*rounds)
	}
	if escalated < 0 || escalated > total {
		t.Fatalf("escalated = %d out of %d", escalated, total)
	}
}
