package llm

import (
	"fmt"
	"sync"
	"testing"
)

// These stress tests exist so `go test -race ./...` actually exercises
// the mutexes in cache.go: many goroutines hammering the same few cache
// keys forces hit/miss races, double-insert races, and concurrent meter
// updates that a sequential test never reaches.

func TestCacheParallelComplete(t *testing.T) {
	c := NewCache(NewSimulator(LargeModel(), 7))
	const (
		workers = 8
		rounds  = 200
		keys    = 16 // few keys → heavy contention on the same entries
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				prompt := fmt.Sprintf("stress prompt %d", (w+i)%keys)
				r, err := c.Complete(Request{Prompt: prompt, MaxTokens: 32})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if r.Text == "" {
					t.Error("empty response text")
					return
				}
				// Interleave reads of the shared counters.
				c.Stats()
				c.Usage()
			}
		}(w)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, workers*rounds)
	}
	// Single-flight deduplication: each distinct prompt misses exactly
	// once — racing goroutines wait on the leader's in-flight call
	// instead of re-issuing it.
	if misses != keys {
		t.Fatalf("misses = %d, want exactly %d distinct prompts (single-flight)", misses, keys)
	}
	if hits == 0 {
		t.Fatal("no cache hits under heavy key reuse")
	}
}

func TestCacheParallelDeterministicResponses(t *testing.T) {
	// Responses served concurrently must equal the sequential responses:
	// the cache must never hand one prompt's response to another.
	ref := NewSimulator(LargeModel(), 7)
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("determinism %d", i)
		r, err := ref.Complete(Request{Prompt: p, MaxTokens: 32})
		if err != nil {
			t.Fatal(err)
		}
		want[p] = r.Text
	}
	c := NewCache(NewSimulator(LargeModel(), 7))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("determinism %d", i%8)
				r, err := c.Complete(Request{Prompt: p, MaxTokens: 32})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if r.Text != want[p] {
					t.Errorf("prompt %q: got %q, want %q", p, r.Text, want[p])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCascadeParallelComplete(t *testing.T) {
	cas := NewCascade(NewSimulator(SmallModel(), 3), NewSimulator(LargeModel(), 4), 0.5)
	const workers, rounds = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := cas.Complete(Request{Prompt: fmt.Sprintf("cascade %d/%d", w, i), MaxTokens: 16})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				cas.Stats()
			}
		}(w)
	}
	wg.Wait()
	escalated, total := cas.Stats()
	if total != workers*rounds {
		t.Fatalf("total = %d, want %d", total, workers*rounds)
	}
	if escalated < 0 || escalated > total {
		t.Fatalf("escalated = %d out of %d", escalated, total)
	}
}

// countingClient counts inner Complete invocations and can fail on
// demand; it is the probe for single-flight deduplication.
type countingClient struct {
	mu    sync.Mutex
	calls int64
	fail  func(prompt string) error
}

func (c *countingClient) Complete(req Request) (Response, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	if c.fail != nil {
		if err := c.fail(req.Prompt); err != nil {
			return Response{}, err
		}
	}
	return Response{Text: "echo: " + req.Prompt, CompletionTokens: 2, CostUSD: 0.001, LatencyMS: 5}, nil
}

func (c *countingClient) count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestCacheSingleFlightDedup(t *testing.T) {
	// 64 goroutines racing over a handful of distinct prompts must cost
	// exactly one inner call per distinct prompt: concurrent identical
	// misses coalesce onto the leader's in-flight call.
	inner := &countingClient{}
	c := NewCache(inner)
	const (
		workers  = 64
		rounds   = 50
		distinct = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := fmt.Sprintf("flight %d", (w*rounds+i)%distinct)
				r, err := c.Complete(Request{Prompt: p, MaxTokens: 8})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if r.Text != "echo: "+p {
					t.Errorf("prompt %q served wrong response %q", p, r.Text)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := inner.count(); got != distinct {
		t.Fatalf("inner calls = %d, want exactly %d (one per distinct prompt)", got, distinct)
	}
	hits, misses := c.Stats()
	if misses != distinct {
		t.Fatalf("misses = %d, want %d", misses, distinct)
	}
	if hits+misses != workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) != %d calls", hits, misses, workers*rounds)
	}
}

func TestCacheSingleFlightErrorNotCached(t *testing.T) {
	// A failed flight must propagate its error to every waiter but not
	// poison the key: the next call retries the inner client.
	inner := &countingClient{}
	boom := fmt.Errorf("first call fails")
	first := true
	var mu sync.Mutex
	inner.fail = func(string) error {
		mu.Lock()
		defer mu.Unlock()
		if first {
			first = false
			return boom
		}
		return nil
	}
	c := NewCache(inner)
	if _, err := c.Complete(Request{Prompt: "flaky"}); err == nil {
		t.Fatal("want error from first call")
	}
	r, err := c.Complete(Request{Prompt: "flaky"})
	if err != nil {
		t.Fatalf("second call: %v", err)
	}
	if r.Cached {
		t.Fatal("second call must be a fresh inner call, not a cache hit")
	}
	if got := inner.count(); got != 2 {
		t.Fatalf("inner calls = %d, want 2 (error not cached)", got)
	}
	if r2, err := c.Complete(Request{Prompt: "flaky"}); err != nil || !r2.Cached {
		t.Fatalf("third call: err=%v cached=%v, want cached hit", err, r2.Cached)
	}
}
