package relation

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrSQL indicates a query that could not be parsed or executed.
var ErrSQL = errors.New("relation: sql error")

// Catalog resolves table names for query execution.
type Catalog map[string]*Table

// Query executes a SQL-subset query against the catalog:
//
//	SELECT <*|cols|aggs> FROM t [JOIN u ON t.a = u.b]
//	  [WHERE col op literal [AND ...]]
//	  [GROUP BY col[, col...]] [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// Aggregates: count(*), sum(c), avg(c), min(c), max(c), each with an
// optional "AS alias". Comparison operators: = != < <= > >=. String
// literals use single quotes. This subset covers what the LLM4Data layers
// emit (NL2SQL output over extracted schemas, lake sub-queries).
func (c Catalog) Query(sql string) (*Table, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	return q.execute(c)
}

// --- lexer ---

type sqlToken struct {
	kind string // "ident", "number", "string", "sym"
	text string
}

func lexSQL(s string) ([]sqlToken, error) {
	var out []sqlToken
	i := 0
	for i < len(s) {
		r := s[i]
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			i++
		case r == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("%w: unterminated string literal", ErrSQL)
			}
			out = append(out, sqlToken{"string", s[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(rune(r)) || (r == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			out = append(out, sqlToken{"number", s[i:j]})
			i = j
		case unicode.IsLetter(rune(r)) || r == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.') {
				j++
			}
			out = append(out, sqlToken{"ident", s[i:j]})
			i = j
		case r == '!' || r == '<' || r == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				out = append(out, sqlToken{"sym", s[i : i+2]})
				i += 2
			} else {
				out = append(out, sqlToken{"sym", string(r)})
				i++
			}
		case r == '=' || r == '(' || r == ')' || r == ',' || r == '*':
			out = append(out, sqlToken{"sym", string(r)})
			i++
		default:
			return nil, fmt.Errorf("%w: unexpected character %q", ErrSQL, r)
		}
	}
	return out, nil
}

// --- parser ---

type selectItem struct {
	col   string
	agg   *Agg // non-nil for aggregate items
	alias string
}

type whereCond struct {
	col string
	op  string
	val Value
}

type sqlQuery struct {
	items     []selectItem
	star      bool
	table     string
	joinTable string
	joinLeft  string
	joinRight string
	where     []whereCond
	groupBy   []string
	orderBy   string
	orderDesc bool
	limit     int
	hasLimit  bool
}

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) peek() sqlToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return sqlToken{"eof", ""}
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *sqlParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != "ident" || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("%w: expected %s, got %q", ErrSQL, kw, t.text)
	}
	return nil
}

func (p *sqlParser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == "ident" && strings.EqualFold(t.text, kw)
}

func (p *sqlParser) expectSym(sym string) error {
	t := p.next()
	if t.kind != "sym" || t.text != sym {
		return fmt.Errorf("%w: expected %q, got %q", ErrSQL, sym, t.text)
	}
	return nil
}

var aggNames = map[string]AggFunc{
	"count": Count, "sum": Sum, "avg": Avg, "min": Min, "max": Max,
}

func (p *sqlParser) parse() (*sqlQuery, error) {
	q := &sqlQuery{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if p.peek().kind == "sym" && p.peek().text == "*" {
		p.next()
		q.star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.items = append(q.items, item)
			if p.peek().kind == "sym" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != "ident" {
		return nil, fmt.Errorf("%w: expected table name, got %q", ErrSQL, t.text)
	}
	q.table = t.text

	if p.atKeyword("join") {
		p.next()
		jt := p.next()
		if jt.kind != "ident" {
			return nil, fmt.Errorf("%w: expected join table, got %q", ErrSQL, jt.text)
		}
		q.joinTable = jt.text
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		l := p.next()
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		r := p.next()
		if l.kind != "ident" || r.kind != "ident" {
			return nil, fmt.Errorf("%w: join condition must be col = col", ErrSQL)
		}
		q.joinLeft, q.joinRight = l.text, r.text
	}

	if p.atKeyword("where") {
		p.next()
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			q.where = append(q.where, cond)
			if p.atKeyword("and") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != "ident" {
				return nil, fmt.Errorf("%w: expected group column, got %q", ErrSQL, t.text)
			}
			q.groupBy = append(q.groupBy, t.text)
			if p.peek().kind == "sym" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != "ident" {
			return nil, fmt.Errorf("%w: expected order column, got %q", ErrSQL, t.text)
		}
		q.orderBy = t.text
		if p.atKeyword("desc") {
			p.next()
			q.orderDesc = true
		} else if p.atKeyword("asc") {
			p.next()
		}
	}
	if p.atKeyword("limit") {
		p.next()
		t := p.next()
		if t.kind != "number" {
			return nil, fmt.Errorf("%w: expected limit count, got %q", ErrSQL, t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad limit %q", ErrSQL, t.text)
		}
		q.limit, q.hasLimit = n, true
	}
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("%w: trailing input at %q", ErrSQL, p.peek().text)
	}
	return q, nil
}

func (p *sqlParser) parseSelectItem() (selectItem, error) {
	t := p.next()
	if t.kind != "ident" {
		return selectItem{}, fmt.Errorf("%w: expected column, got %q", ErrSQL, t.text)
	}
	item := selectItem{col: t.text}
	if f, isAgg := aggNames[strings.ToLower(t.text)]; isAgg && p.peek().kind == "sym" && p.peek().text == "(" {
		p.next()
		arg := p.next()
		if arg.kind == "sym" && arg.text == "*" {
			if f != Count {
				return selectItem{}, fmt.Errorf("%w: %s(*) not allowed", ErrSQL, t.text)
			}
			item.agg = &Agg{Func: Count}
		} else if arg.kind == "ident" {
			item.agg = &Agg{Func: f, Col: arg.text}
		} else {
			return selectItem{}, fmt.Errorf("%w: bad aggregate argument %q", ErrSQL, arg.text)
		}
		if err := p.expectSym(")"); err != nil {
			return selectItem{}, err
		}
	}
	if p.atKeyword("as") {
		p.next()
		a := p.next()
		if a.kind != "ident" {
			return selectItem{}, fmt.Errorf("%w: expected alias, got %q", ErrSQL, a.text)
		}
		item.alias = a.text
	}
	if item.agg != nil {
		item.agg.As = item.alias
		if item.agg.As == "" {
			item.agg.As = strings.ToLower(t.text)
			if item.agg.Col != "" {
				item.agg.As += "_" + strings.ReplaceAll(item.agg.Col, ".", "_")
			}
		}
	}
	return item, nil
}

func (p *sqlParser) parseCond() (whereCond, error) {
	col := p.next()
	if col.kind != "ident" {
		return whereCond{}, fmt.Errorf("%w: expected column in WHERE, got %q", ErrSQL, col.text)
	}
	op := p.next()
	valid := map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}
	if op.kind != "sym" || !valid[op.text] {
		return whereCond{}, fmt.Errorf("%w: bad operator %q", ErrSQL, op.text)
	}
	lit := p.next()
	var v Value
	switch lit.kind {
	case "string":
		v = lit.text
	case "number":
		if strings.Contains(lit.text, ".") {
			f, err := strconv.ParseFloat(lit.text, 64)
			if err != nil {
				return whereCond{}, fmt.Errorf("%w: bad number %q", ErrSQL, lit.text)
			}
			v = f
		} else {
			n, err := strconv.ParseInt(lit.text, 10, 64)
			if err != nil {
				return whereCond{}, fmt.Errorf("%w: bad number %q", ErrSQL, lit.text)
			}
			v = n
		}
	case "ident":
		switch strings.ToLower(lit.text) {
		case "true":
			v = true
		case "false":
			v = false
		default:
			return whereCond{}, fmt.Errorf("%w: bad literal %q", ErrSQL, lit.text)
		}
	default:
		return whereCond{}, fmt.Errorf("%w: bad literal %q", ErrSQL, lit.text)
	}
	return whereCond{col: col.text, op: op.text, val: v}, nil
}

// --- executor ---

func (q *sqlQuery) execute(c Catalog) (*Table, error) {
	t, ok := c[q.table]
	if !ok {
		return nil, fmt.Errorf("%w: unknown table %q", ErrSQL, q.table)
	}
	cur := t
	if q.joinTable != "" {
		u, ok := c[q.joinTable]
		if !ok {
			return nil, fmt.Errorf("%w: unknown table %q", ErrSQL, q.joinTable)
		}
		left := strings.TrimPrefix(q.joinLeft, q.table+".")
		right := strings.TrimPrefix(q.joinRight, q.joinTable+".")
		joined, err := cur.Join(u, left, right)
		if err != nil {
			return nil, err
		}
		cur = joined
	}
	for _, w := range q.where {
		idx, err := cur.Schema.Index(w.col)
		if err != nil {
			return nil, err
		}
		w := w
		cur = cur.Select(func(r Row) bool { return evalCond(r[idx], w.op, w.val) })
	}
	if len(q.groupBy) > 0 || q.hasAggregates() {
		var aggs []Agg
		var plainCols []string
		for _, item := range q.items {
			if item.agg != nil {
				aggs = append(aggs, *item.agg)
			} else {
				plainCols = append(plainCols, item.col)
			}
		}
		// Non-aggregated select items must be group columns.
		for _, pc := range plainCols {
			found := false
			for _, g := range q.groupBy {
				if g == pc {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: column %q must appear in GROUP BY", ErrSQL, pc)
			}
		}
		grouped, err := cur.GroupBy(q.groupBy, aggs)
		if err != nil {
			return nil, err
		}
		cur = grouped
	} else if !q.star {
		cols := make([]string, len(q.items))
		for i, item := range q.items {
			cols[i] = item.col
		}
		projected, err := cur.Project(cols...)
		if err != nil {
			return nil, err
		}
		// Apply aliases.
		for i, item := range q.items {
			if item.alias != "" {
				projected.Schema[i].Name = item.alias
			}
		}
		cur = projected
	}
	if q.orderBy != "" {
		ordered, err := cur.OrderBy(q.orderBy, q.orderDesc)
		if err != nil {
			return nil, err
		}
		cur = ordered
	}
	if q.hasLimit {
		cur = cur.Limit(q.limit)
	}
	return cur, nil
}

func (q *sqlQuery) hasAggregates() bool {
	for _, item := range q.items {
		if item.agg != nil {
			return true
		}
	}
	return false
}

func evalCond(cell Value, op string, lit Value) bool {
	switch op {
	case "=":
		return valueEq(cell, lit)
	case "!=":
		return cell != nil && !valueEq(cell, lit)
	case "<":
		return cell != nil && valueLess(cell, lit)
	case "<=":
		return cell != nil && (valueLess(cell, lit) || valueEq(cell, lit))
	case ">":
		return cell != nil && valueLess(lit, cell)
	case ">=":
		return cell != nil && (valueLess(lit, cell) || valueEq(cell, lit))
	}
	return false
}
