package relation

import (
	"fmt"
	"sort"
)

// AggFunc enumerates aggregate functions.
type AggFunc int

// Supported aggregates.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(f))
	}
}

// Agg is one aggregate specification: Func applied to Col, output named As.
// Count ignores Col ("count(*)").
type Agg struct {
	Func AggFunc
	Col  string
	As   string
}

// GroupBy groups rows by the named columns and computes the aggregates.
// With no group columns, the whole table forms one group (scalar
// aggregation). Output schema: group columns, then one column per Agg.
func (t *Table) GroupBy(groupCols []string, aggs []Agg) (*Table, error) {
	groupIdx := make([]int, len(groupCols))
	schema := make(Schema, 0, len(groupCols)+len(aggs))
	for i, c := range groupCols {
		idx, err := t.Schema.Index(c)
		if err != nil {
			return nil, err
		}
		groupIdx[i] = idx
		schema = append(schema, t.Schema[idx])
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == Count {
			aggIdx[i] = -1
		} else {
			idx, err := t.Schema.Index(a.Col)
			if err != nil {
				return nil, err
			}
			ct := t.Schema[idx].Type
			if ct != Int && ct != Float && !(a.Func == Min || a.Func == Max) {
				return nil, fmt.Errorf("%w: %s over %s column %q", ErrType, a.Func, ct, a.Col)
			}
			aggIdx[i] = idx
		}
		name := a.As
		if name == "" {
			name = a.Func.String() + "_" + a.Col
			if a.Func == Count {
				name = "count"
			}
		}
		typ := Float
		if a.Func == Count {
			typ = Int
		} else if a.Func == Min || a.Func == Max {
			typ = t.Schema[aggIdx[i]].Type
		}
		schema = append(schema, Column{Name: name, Type: typ})
	}
	if err := schema.validate(); err != nil {
		return nil, err
	}

	type group struct {
		key    string
		sample Row // representative row for group column values
		rows   []Row
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range t.Rows {
		k := ""
		for _, gi := range groupIdx {
			k += keyOf(r[gi]) + "\x01"
		}
		g, ok := groups[k]
		if !ok {
			g = &group{key: k, sample: r}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	// Scalar aggregation over an empty table still yields one row of
	// zero-counts, matching SQL semantics for COUNT.
	if len(groupCols) == 0 && len(order) == 0 {
		groups[""] = &group{key: ""}
		order = append(order, "")
	}
	sort.Strings(order) // deterministic output independent of map order

	out := &Table{Name: t.Name, Schema: schema}
	for _, k := range order {
		g := groups[k]
		row := make(Row, 0, len(schema))
		for _, gi := range groupIdx {
			row = append(row, g.sample[gi])
		}
		for i, a := range aggs {
			row = append(row, computeAgg(a.Func, g.rows, aggIdx[i]))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func computeAgg(f AggFunc, rows []Row, idx int) Value {
	if f == Count {
		return int64(len(rows))
	}
	var vals []Value
	for _, r := range rows {
		if r[idx] != nil {
			vals = append(vals, r[idx])
		}
	}
	if len(vals) == 0 {
		return nil
	}
	switch f {
	case Sum, Avg:
		var s float64
		for _, v := range vals {
			fv, _ := toFloat(v)
			s += fv
		}
		if f == Avg {
			s /= float64(len(vals))
		}
		return s
	case Min:
		best := vals[0]
		for _, v := range vals[1:] {
			if valueLess(v, best) {
				best = v
			}
		}
		return best
	case Max:
		best := vals[0]
		for _, v := range vals[1:] {
			if valueLess(best, v) {
				best = v
			}
		}
		return best
	}
	return nil
}
