package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func parsedCatalog(t *testing.T) Catalog {
	t.Helper()
	return catalog(t)
}

func TestParseQueryAndExecute(t *testing.T) {
	c := parsedCatalog(t)
	p, err := ParseQuery("SELECT name FROM companies WHERE revenue >= 80 AND sector = 'tech' ORDER BY name LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Execute(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d", out.Len())
	}
	if _, err := ParseQuery("SELECT FROM"); err == nil {
		t.Error("bad sql parsed")
	}
}

func TestParsedQueryAccessors(t *testing.T) {
	p, err := ParseQuery("SELECT sector, count(*) AS n FROM companies WHERE revenue > 50 GROUP BY sector ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasAggregates() || !p.HasGroupBy() {
		t.Error("aggregate/group detection failed")
	}
	col, desc := p.OrderBy()
	if col != "n" || !desc {
		t.Errorf("OrderBy = %q/%v", col, desc)
	}
	conds := p.Conds()
	if len(conds) != 1 || conds[0].Col != "revenue" || conds[0].Op != ">" {
		t.Errorf("Conds = %+v", conds)
	}
	p.DropOrderBy()
	if col, _ := p.OrderBy(); col != "" {
		t.Error("DropOrderBy did not drop")
	}
	p.SetConds(nil)
	if len(p.Conds()) != 0 {
		t.Error("SetConds(nil) left conjuncts")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, err := ParseQuery("SELECT name FROM companies WHERE revenue > 50 AND sector = 'tech'")
	if err != nil {
		t.Fatal(err)
	}
	cp := p.Clone()
	cp.SetConds(cp.Conds()[:1])
	cp.DropOrderBy()
	if len(p.Conds()) != 2 {
		t.Error("mutating clone changed original conds")
	}
}

func TestRenderLiterals(t *testing.T) {
	c := parsedCatalog(t)
	for _, q := range []string{
		"SELECT name FROM companies WHERE public = true",
		"SELECT name FROM companies WHERE revenue > 100.5",
		"SELECT name FROM companies WHERE employees >= 500",
		"SELECT name FROM companies WHERE sector != 'tech'",
		"SELECT * FROM companies JOIN sectors ON sector = sname LIMIT 3",
	} {
		p, err := ParseQuery(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rendered := p.Render()
		p2, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		a, err := p.Execute(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.Execute(c)
		if err != nil {
			t.Fatalf("execute rendered %q: %v", rendered, err)
		}
		if Fingerprint(a) != Fingerprint(b) {
			t.Errorf("render changed semantics: %q -> %q", q, rendered)
		}
	}
}

func TestFingerprintSchemaSensitive(t *testing.T) {
	a, _ := NewTable("t", Schema{{Name: "x", Type: Int}})
	b, _ := NewTable("t", Schema{{Name: "y", Type: Int}})
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("fingerprint ignores schema")
	}
}

// TestParserNeverPanics feeds arbitrary strings through the lexer and
// parser; malformed input must produce errors, not panics.
func TestParserNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = ParseQuery(s)
		_, _ = ParseQuery("SELECT " + s)
		_, _ = ParseQuery("SELECT a FROM t WHERE " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTypeAndAggStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		String: "string", Int: "int", Float: "float", Bool: "bool", Type(9): "type(9)",
	} {
		if typ.String() != want {
			t.Errorf("Type(%d) = %q", int(typ), typ.String())
		}
	}
	for f, want := range map[AggFunc]string{
		Count: "count", Sum: "sum", Avg: "avg", Min: "min", Max: "max", AggFunc(9): "agg(9)",
	} {
		if f.String() != want {
			t.Errorf("AggFunc(%d) = %q", int(f), f.String())
		}
	}
}

func TestTableString(t *testing.T) {
	tbl := companies(t)
	s := tbl.String()
	if !strings.Contains(s, "companies") || !strings.Contains(s, "5 rows") {
		t.Errorf("Table.String = %q", s)
	}
}

func TestMustInsertPanics(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{Name: "a", Type: Int}})
	defer func() {
		if recover() == nil {
			t.Error("MustInsert did not panic on bad row")
		}
	}()
	tbl.MustInsert(Row{"not an int"})
}
