package relation

import (
	"errors"
	"testing"
)

func companies(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("companies", Schema{
		{"name", String}, {"sector", String}, {"revenue", Float}, {"employees", Int}, {"public", Bool},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"acme", "tech", 120.5, int64(500), true},
		{"bolt", "tech", 80.0, int64(120), false},
		{"corp", "finance", 300.0, int64(2000), true},
		{"dyna", "finance", 50.0, int64(90), false},
		{"echo", "health", 10.0, int64(30), true},
	}
	for _, r := range rows {
		tbl.MustInsert(r)
	}
	return tbl
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewTable("t", Schema{}); !errors.Is(err, ErrSchema) {
		t.Errorf("empty schema err = %v", err)
	}
	if _, err := NewTable("t", Schema{{"a", Int}, {"a", String}}); !errors.Is(err, ErrSchema) {
		t.Errorf("dup col err = %v", err)
	}
	if _, err := NewTable("t", Schema{{"", Int}}); !errors.Is(err, ErrSchema) {
		t.Errorf("empty name err = %v", err)
	}
}

func TestInsertTypeChecks(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{"a", Int}, {"b", String}})
	if err := tbl.Insert(Row{int64(1), "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{nil, nil}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
	if err := tbl.Insert(Row{1, "x"}); !errors.Is(err, ErrType) {
		t.Errorf("int (not int64) err = %v", err)
	}
	if err := tbl.Insert(Row{"x", "y"}); !errors.Is(err, ErrType) {
		t.Errorf("wrong type err = %v", err)
	}
	if err := tbl.Insert(Row{int64(1)}); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{"a", Int}})
	r := Row{int64(5)}
	_ = tbl.Insert(r)
	r[0] = int64(99)
	if v, _ := tbl.Get(0, "a"); v != int64(5) {
		t.Error("Insert did not copy the row")
	}
}

func TestSelectProject(t *testing.T) {
	tbl := companies(t)
	tech, err := tbl.SelectEq("sector", "tech")
	if err != nil {
		t.Fatal(err)
	}
	if tech.Len() != 2 {
		t.Errorf("tech rows = %d", tech.Len())
	}
	names, err := tech.Project("name", "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if len(names.Schema) != 2 || names.Schema[0].Name != "name" {
		t.Errorf("projected schema = %v", names.Schema)
	}
	if _, err := tbl.Project("missing"); !errors.Is(err, ErrColumn) {
		t.Errorf("missing col err = %v", err)
	}
}

func TestJoin(t *testing.T) {
	tbl := companies(t)
	sectors, _ := NewTable("sectors", Schema{{"sector", String}, {"region", String}})
	sectors.MustInsert(Row{"tech", "west"})
	sectors.MustInsert(Row{"finance", "east"})
	joined, err := tbl.Join(sectors, "sector", "sector")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 4 { // health has no sector row
		t.Errorf("joined rows = %d", joined.Len())
	}
	// Collision handling: second "sector" column gets prefixed.
	if _, err := joined.Schema.Index("sectors.sector"); err != nil {
		t.Errorf("prefixed column missing: %v", err)
	}
	if _, err := joined.Schema.Index("region"); err != nil {
		t.Errorf("region column missing: %v", err)
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	tbl := companies(t)
	byRev, err := tbl.OrderBy("revenue", true)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := byRev.Get(0, "name"); v != "corp" {
		t.Errorf("top by revenue = %v", v)
	}
	top2 := byRev.Limit(2)
	if top2.Len() != 2 {
		t.Errorf("limit = %d", top2.Len())
	}
	if tbl.Limit(100).Len() != 5 || tbl.Limit(-1).Len() != 0 {
		t.Error("limit bounds wrong")
	}
	sectors, _ := tbl.Project("sector")
	if d := sectors.Distinct(); d.Len() != 3 {
		t.Errorf("distinct sectors = %d", d.Len())
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{"a", Int}})
	tbl.MustInsert(Row{int64(2)})
	tbl.MustInsert(Row{nil})
	tbl.MustInsert(Row{int64(1)})
	sorted, _ := tbl.OrderBy("a", false)
	if sorted.Rows[0][0] != nil {
		t.Error("NULL should sort first ascending")
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := companies(t)
	g, err := tbl.GroupBy([]string{"sector"}, []Agg{
		{Func: Count, As: "n"},
		{Func: Sum, Col: "revenue", As: "total"},
		{Func: Avg, Col: "employees", As: "avg_emp"},
		{Func: Max, Col: "name", As: "max_name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d", g.Len())
	}
	// Find the finance group.
	for i := 0; i < g.Len(); i++ {
		sector, _ := g.Get(i, "sector")
		if sector != "finance" {
			continue
		}
		if n, _ := g.Get(i, "n"); n != int64(2) {
			t.Errorf("finance count = %v", n)
		}
		if total, _ := g.Get(i, "total"); total != 350.0 {
			t.Errorf("finance total = %v", total)
		}
		if avg, _ := g.Get(i, "avg_emp"); avg != 1045.0 {
			t.Errorf("finance avg emp = %v", avg)
		}
		if mn, _ := g.Get(i, "max_name"); mn != "dyna" {
			t.Errorf("finance max name = %v", mn)
		}
	}
}

func TestScalarAggregation(t *testing.T) {
	tbl := companies(t)
	g, err := tbl.GroupBy(nil, []Agg{{Func: Count, As: "n"}, {Func: Min, Col: "revenue", As: "mn"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("scalar agg rows = %d", g.Len())
	}
	if n, _ := g.Get(0, "n"); n != int64(5) {
		t.Errorf("count = %v", n)
	}
	if mn, _ := g.Get(0, "mn"); mn != 10.0 {
		t.Errorf("min = %v", mn)
	}
}

func TestScalarAggregationEmptyTable(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{"a", Int}})
	g, err := tbl.GroupBy(nil, []Agg{{Func: Count, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("rows = %d", g.Len())
	}
	if n, _ := g.Get(0, "n"); n != int64(0) {
		t.Errorf("count = %v", n)
	}
}

func TestAggNullHandling(t *testing.T) {
	tbl, _ := NewTable("t", Schema{{"a", Float}})
	tbl.MustInsert(Row{1.0})
	tbl.MustInsert(Row{nil})
	g, err := tbl.GroupBy(nil, []Agg{{Func: Sum, Col: "a", As: "s"}, {Func: Count, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := g.Get(0, "s"); s != 1.0 {
		t.Errorf("sum with null = %v", s)
	}
	if n, _ := g.Get(0, "n"); n != int64(2) {
		t.Errorf("count = %v", n)
	}
}

func TestSumOverStringRejected(t *testing.T) {
	tbl := companies(t)
	if _, err := tbl.GroupBy(nil, []Agg{{Func: Sum, Col: "name"}}); !errors.Is(err, ErrType) {
		t.Errorf("sum(string) err = %v", err)
	}
}

func TestValueEqCrossNumeric(t *testing.T) {
	if !valueEq(int64(3), 3.0) {
		t.Error("int64(3) != 3.0")
	}
	if valueEq(nil, nil) {
		t.Error("NULL should not equal NULL")
	}
}
