package relation

import (
	"errors"
	"testing"
)

func catalog(t *testing.T) Catalog {
	t.Helper()
	comp := companies(t)
	sectors, _ := NewTable("sectors", Schema{{"sname", String}, {"region", String}})
	sectors.MustInsert(Row{"tech", "west"})
	sectors.MustInsert(Row{"finance", "east"})
	sectors.MustInsert(Row{"health", "north"})
	return Catalog{"companies": comp, "sectors": sectors}
}

func TestSQLSelectStar(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT * FROM companies")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 || len(r.Schema) != 5 {
		t.Errorf("got %d rows, %d cols", r.Len(), len(r.Schema))
	}
}

func TestSQLWhere(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT name FROM companies WHERE sector = 'tech' AND revenue > 100")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	if v, _ := r.Get(0, "name"); v != "acme" {
		t.Errorf("name = %v", v)
	}
}

func TestSQLWhereOperators(t *testing.T) {
	c := catalog(t)
	cases := []struct {
		q    string
		rows int
	}{
		{"SELECT name FROM companies WHERE employees >= 500", 2},
		{"SELECT name FROM companies WHERE employees < 100", 2},
		{"SELECT name FROM companies WHERE sector != 'tech'", 3},
		{"SELECT name FROM companies WHERE public = true", 3},
		{"SELECT name FROM companies WHERE revenue <= 50.0", 2},
	}
	for _, tc := range cases {
		r, err := c.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if r.Len() != tc.rows {
			t.Errorf("%s: rows = %d, want %d", tc.q, r.Len(), tc.rows)
		}
	}
}

func TestSQLGroupBy(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT sector, count(*) AS n, sum(revenue) AS total FROM companies GROUP BY sector ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("groups = %d", r.Len())
	}
	if v, _ := r.Get(0, "sector"); v != "finance" {
		t.Errorf("top sector = %v", v)
	}
	if n, _ := r.Get(0, "n"); n != int64(2) {
		t.Errorf("count = %v", n)
	}
}

func TestSQLScalarAgg(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT count(*) FROM companies WHERE public = true")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	if v := r.Rows[0][0]; v != int64(3) {
		t.Errorf("count = %v", v)
	}
}

func TestSQLJoin(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT name, region FROM companies JOIN sectors ON sector = sname WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if v, _ := r.Get(i, "region"); v != "west" {
			t.Errorf("region = %v", v)
		}
	}
}

func TestSQLJoinQualifiedOn(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT name FROM companies JOIN sectors ON companies.sector = sectors.sname")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Errorf("rows = %d", r.Len())
	}
}

func TestSQLOrderLimit(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT name, revenue FROM companies ORDER BY revenue DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	if v, _ := r.Get(0, "name"); v != "corp" {
		t.Errorf("first = %v", v)
	}
	if v, _ := r.Get(1, "name"); v != "acme" {
		t.Errorf("second = %v", v)
	}
}

func TestSQLAlias(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("SELECT name AS company FROM companies LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema[0].Name != "company" {
		t.Errorf("alias not applied: %v", r.Schema[0].Name)
	}
}

func TestSQLErrors(t *testing.T) {
	c := catalog(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM missing",
		"SELECT nope FROM companies",
		"SELECT name FROM companies WHERE sector ~ 'x'",
		"SELECT name FROM companies WHERE sector = ",
		"SELECT sum(*) FROM companies",
		"SELECT name FROM companies LIMIT abc",
		"SELECT name FROM companies GROUP BY sector", // name not in GROUP BY... wait, no aggregate
		"SELECT name FROM companies trailing garbage",
		"SELECT name FROM companies WHERE sector = 'unterminated",
	}
	for _, q := range bad {
		if _, err := c.Query(q); err == nil {
			t.Errorf("query %q should have failed", q)
		}
	}
}

func TestSQLNonGroupedColumnRejected(t *testing.T) {
	c := catalog(t)
	if _, err := c.Query("SELECT name, count(*) FROM companies GROUP BY sector"); !errors.Is(err, ErrSQL) {
		t.Errorf("err = %v", err)
	}
}

func TestSQLCaseInsensitiveKeywords(t *testing.T) {
	c := catalog(t)
	r, err := c.Query("select name from companies where sector = 'tech' order by name asc limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("rows = %d", r.Len())
	}
}

func BenchmarkSQLGroupBy(b *testing.B) {
	comp, _ := NewTable("c", Schema{{"sector", String}, {"revenue", Float}})
	sectors := []string{"a", "b", "c", "d"}
	for i := 0; i < 10000; i++ {
		comp.MustInsert(Row{sectors[i%4], float64(i)})
	}
	cat := Catalog{"c": comp}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query("SELECT sector, sum(revenue) FROM c GROUP BY sector"); err != nil {
			b.Fatal(err)
		}
	}
}
