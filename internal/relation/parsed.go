package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParsedQuery is a structured, mutable view of a parsed SQL query, used
// by the query-rewriting layer (package rewrite): rewrite rules edit the
// structure and Render regenerates SQL text.
type ParsedQuery struct {
	inner *sqlQuery
}

// ParseQuery parses sql into a structured query without executing it.
func ParseQuery(sql string) (*ParsedQuery, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	q, err := (&sqlParser{toks: toks}).parse()
	if err != nil {
		return nil, err
	}
	return &ParsedQuery{inner: q}, nil
}

// Execute runs the parsed query against the catalog.
func (p *ParsedQuery) Execute(c Catalog) (*Table, error) {
	return p.inner.execute(c)
}

// Clone deep-copies the query.
func (p *ParsedQuery) Clone() *ParsedQuery {
	cp := *p.inner
	cp.items = append([]selectItem(nil), p.inner.items...)
	for i, it := range cp.items {
		if it.agg != nil {
			a := *it.agg
			cp.items[i].agg = &a
		}
	}
	cp.where = append([]whereCond(nil), p.inner.where...)
	cp.groupBy = append([]string(nil), p.inner.groupBy...)
	return &ParsedQuery{inner: &cp}
}

// Cond is one WHERE conjunct.
type Cond struct {
	Col string
	Op  string
	Val Value
}

// Conds returns the WHERE conjuncts.
func (p *ParsedQuery) Conds() []Cond {
	out := make([]Cond, len(p.inner.where))
	for i, w := range p.inner.where {
		out[i] = Cond{Col: w.col, Op: w.op, Val: w.val}
	}
	return out
}

// SetConds replaces the WHERE conjuncts.
func (p *ParsedQuery) SetConds(conds []Cond) {
	p.inner.where = make([]whereCond, len(conds))
	for i, c := range conds {
		p.inner.where[i] = whereCond{col: c.Col, op: c.Op, val: c.Val}
	}
}

// OrderBy reports the ORDER BY column ("" when absent) and direction.
func (p *ParsedQuery) OrderBy() (col string, desc bool) {
	return p.inner.orderBy, p.inner.orderDesc
}

// DropOrderBy removes the ORDER BY clause.
func (p *ParsedQuery) DropOrderBy() {
	p.inner.orderBy = ""
	p.inner.orderDesc = false
}

// HasAggregates reports whether the select list contains aggregates.
func (p *ParsedQuery) HasAggregates() bool { return p.inner.hasAggregates() }

// HasGroupBy reports whether the query groups.
func (p *ParsedQuery) HasGroupBy() bool { return len(p.inner.groupBy) > 0 }

// Render regenerates SQL text for the query.
func (p *ParsedQuery) Render() string {
	q := p.inner
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.star {
		b.WriteString("*")
	} else {
		for i, it := range q.items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.agg != nil {
				if it.agg.Func == Count && it.agg.Col == "" {
					b.WriteString("count(*)")
				} else {
					fmt.Fprintf(&b, "%s(%s)", it.agg.Func, it.agg.Col)
				}
				if it.agg.As != "" {
					fmt.Fprintf(&b, " AS %s", it.agg.As)
				}
				continue
			}
			b.WriteString(it.col)
			if it.alias != "" {
				fmt.Fprintf(&b, " AS %s", it.alias)
			}
		}
	}
	fmt.Fprintf(&b, " FROM %s", q.table)
	if q.joinTable != "" {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", q.joinTable, q.joinLeft, q.joinRight)
	}
	for i, w := range q.where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s %s %s", w.col, w.op, renderLiteral(w.val))
	}
	if len(q.groupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(q.groupBy, ", "))
	}
	if q.orderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", q.orderBy)
		if q.orderDesc {
			b.WriteString(" DESC")
		}
	}
	if q.hasLimit {
		fmt.Fprintf(&b, " LIMIT %d", q.limit)
	}
	return b.String()
}

func renderLiteral(v Value) string {
	switch x := v.(type) {
	case string:
		return "'" + x + "'"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Fingerprint renders a table's contents as a canonical multiset string:
// schema names/types plus sorted rows. Two tables with equal fingerprints
// hold the same bag of rows — the comparison the rewrite verifier uses.
// Row order is ignored unless the caller includes ORDER BY semantics
// separately.
func Fingerprint(t *Table) string {
	var b strings.Builder
	for _, c := range t.Schema {
		fmt.Fprintf(&b, "%s:%s;", c.Name, c.Type)
	}
	b.WriteByte('\n')
	rows := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		var rb strings.Builder
		for _, v := range r {
			rb.WriteString(keyOf(v))
			rb.WriteByte('\x01')
		}
		rows[i] = rb.String()
	}
	sort.Strings(rows)
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
