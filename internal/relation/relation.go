// Package relation implements a small in-memory relational engine: typed
// tables, the core relational-algebra operators, grouped aggregation, and
// a SQL subset (see sql.go).
//
// In the paper's architecture (Figure 1, "Structured Tables" + "Database
// Tasks"), structured processing is the substrate that LLM4Data techniques
// target: schema extraction (§2.2.2) turns unstructured documents into
// tables that are then queried in SQL, and data-lake planners compile NL
// queries into pipelines whose structured steps are relational operators.
// This package is that substrate.
//
// Tables are immutable under algebra: every operator returns a new Table
// sharing row storage where safe.
package relation

import (
	"errors"
	"fmt"
	"sort"
)

// Type enumerates column types.
type Type int

// Supported column types.
const (
	String Type = iota
	Int
	Float
	Bool
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Errors callers branch on.
var (
	// ErrColumn indicates a reference to an unknown column.
	ErrColumn = errors.New("relation: unknown column")
	// ErrType indicates a value whose type does not match its column.
	ErrType = errors.New("relation: type mismatch")
	// ErrArity indicates a row with the wrong number of values.
	ErrArity = errors.New("relation: wrong arity")
	// ErrSchema indicates an invalid schema definition.
	ErrSchema = errors.New("relation: invalid schema")
)

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column.
func (s Schema) Index(name string) (int, error) {
	for i, c := range s {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %q", ErrColumn, name)
}

// validate checks column names are nonempty and unique.
func (s Schema) validate() error {
	if len(s) == 0 {
		return fmt.Errorf("%w: empty schema", ErrSchema)
	}
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("%w: empty column name", ErrSchema)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate column %q", ErrSchema, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Value is a cell value: string, int64, float64, bool, or nil (NULL).
type Value interface{}

// Row is one tuple.
type Row []Value

// Table is a named relation.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// NewTable creates an empty table after validating the schema.
func NewTable(name string, schema Schema) (*Table, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	return &Table{Name: name, Schema: append(Schema(nil), schema...)}, nil
}

// checkValue verifies v is valid for column type t. nil is always valid.
func checkValue(v Value, t Type) error {
	if v == nil {
		return nil
	}
	ok := false
	switch t {
	case String:
		_, ok = v.(string)
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	}
	if !ok {
		return fmt.Errorf("%w: %T for %s column", ErrType, v, t)
	}
	return nil
}

// Insert appends a row after arity and type checking.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("%w: got %d values for %d columns", ErrArity, len(row), len(t.Schema))
	}
	for i, v := range row {
		if err := checkValue(v, t.Schema[i].Type); err != nil {
			return fmt.Errorf("column %q: %w", t.Schema[i].Name, err)
		}
	}
	t.Rows = append(t.Rows, append(Row(nil), row...))
	return nil
}

// MustInsert inserts and panics on error — for literals in tests/examples.
func (t *Table) MustInsert(row Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Get returns the value at (row, column name).
func (t *Table) Get(row int, col string) (Value, error) {
	idx, err := t.Schema.Index(col)
	if err != nil {
		return nil, err
	}
	if row < 0 || row >= len(t.Rows) {
		return nil, fmt.Errorf("relation: row %d out of range [0,%d)", row, len(t.Rows))
	}
	return t.Rows[row][idx], nil
}

// Select returns the rows satisfying pred.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := &Table{Name: t.Name, Schema: t.Schema}
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// SelectEq returns rows whose col equals v.
func (t *Table) SelectEq(col string, v Value) (*Table, error) {
	idx, err := t.Schema.Index(col)
	if err != nil {
		return nil, err
	}
	return t.Select(func(r Row) bool { return valueEq(r[idx], v) }), nil
}

// Project returns a table with only the named columns, in the given order.
func (t *Table) Project(cols ...string) (*Table, error) {
	idxs := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for i, c := range cols {
		idx, err := t.Schema.Index(c)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
		schema[i] = t.Schema[idx]
	}
	out := &Table{Name: t.Name, Schema: schema}
	for _, r := range t.Rows {
		nr := make(Row, len(idxs))
		for i, idx := range idxs {
			nr[i] = r[idx]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Join performs an inner hash equi-join on t.leftCol == other.rightCol.
// Output columns are t's columns followed by other's, with other's column
// names prefixed by its table name when they collide.
func (t *Table) Join(other *Table, leftCol, rightCol string) (*Table, error) {
	li, err := t.Schema.Index(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := other.Schema.Index(rightCol)
	if err != nil {
		return nil, err
	}
	schema := append(Schema(nil), t.Schema...)
	names := make(map[string]bool, len(schema))
	for _, c := range schema {
		names[c.Name] = true
	}
	for _, c := range other.Schema {
		name := c.Name
		if names[name] {
			name = other.Name + "." + c.Name
		}
		names[name] = true
		schema = append(schema, Column{Name: name, Type: c.Type})
	}
	out := &Table{Name: t.Name + "_" + other.Name, Schema: schema}
	// Build hash on the smaller side conceptually; here on other.
	idx := make(map[string][]Row)
	for _, r := range other.Rows {
		idx[keyOf(r[ri])] = append(idx[keyOf(r[ri])], r)
	}
	for _, lr := range t.Rows {
		for _, rr := range idx[keyOf(lr[li])] {
			nr := make(Row, 0, len(schema))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// keyOf renders a value as a hash key; NULLs never join.
func keyOf(v Value) string {
	if v == nil {
		return "\x00null\x00" // joins on NULL excluded by uniqueness of this token per side? kept simple: NULL==NULL here
	}
	return fmt.Sprintf("%T|%v", v, v)
}

// valueEq compares two cell values; NULL equals nothing.
func valueEq(a, b Value) bool {
	if a == nil || b == nil {
		return false
	}
	// Allow int/float cross-comparison, as the SQL layer produces both.
	af, aIsNum := toFloat(a)
	bf, bIsNum := toFloat(b)
	if aIsNum && bIsNum {
		//lint:ignore floateq SQL equality semantics are exact: WHERE v = 3 must match the stored 3.0, not a neighborhood of it
		return af == bf
	}
	return a == b
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// valueLess orders two cell values of compatible types. NULL sorts first.
func valueLess(a, b Value) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	af, aNum := toFloat(a)
	bf, bNum := toFloat(b)
	if aNum && bNum {
		return af < bf
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return as < bs
	}
	ab, aok := a.(bool)
	bb, bok := b.(bool)
	if aok && bok {
		return !ab && bb
	}
	return fmt.Sprintf("%T", a) < fmt.Sprintf("%T", b)
}

// OrderBy returns rows sorted by col; desc reverses.
func (t *Table) OrderBy(col string, desc bool) (*Table, error) {
	idx, err := t.Schema.Index(col)
	if err != nil {
		return nil, err
	}
	out := &Table{Name: t.Name, Schema: t.Schema, Rows: append([]Row(nil), t.Rows...)}
	sort.SliceStable(out.Rows, func(i, j int) bool {
		if desc {
			return valueLess(out.Rows[j][idx], out.Rows[i][idx])
		}
		return valueLess(out.Rows[i][idx], out.Rows[j][idx])
	})
	return out, nil
}

// Limit returns the first n rows.
func (t *Table) Limit(n int) *Table {
	if n < 0 {
		n = 0
	}
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	return &Table{Name: t.Name, Schema: t.Schema, Rows: t.Rows[:n]}
}

// Distinct removes duplicate rows, preserving first-seen order.
func (t *Table) Distinct() *Table {
	seen := make(map[string]bool, len(t.Rows))
	out := &Table{Name: t.Name, Schema: t.Schema}
	for _, r := range t.Rows {
		k := ""
		for _, v := range r {
			k += keyOf(v) + "\x01"
		}
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// String renders the table for debugging and example output.
func (t *Table) String() string {
	s := t.Name + "("
	for i, c := range t.Schema {
		if i > 0 {
			s += ", "
		}
		s += c.Name + " " + c.Type.String()
	}
	s += fmt.Sprintf(") %d rows", len(t.Rows))
	return s
}
