package experiments

import (
	"testing"

	"dataai/internal/obs"
	"dataai/internal/workload"
)

// TestE25AdmissionHoldsSLOMargin pins the E25 acceptance claim with a
// margin, not a hair: at saturation, class-blind FCFS with no admission
// blows the interactive TTFT SLO by at least 4x, while token-bucket
// shedding plus class-priority scheduling holds every interactive
// request inside it. The simulation is deterministic, so these are
// exact bounds — if a change erodes either side, the multi-tenant story
// regressed.
func TestE25AdmissionHoldsSLOMargin(t *testing.T) {
	blind, err := e25Cell("saturate", "none", "fcfs", nil)
	if err != nil {
		t.Fatal(err)
	}
	blindTTFT := blind.ClassTTFT(workload.Interactive)
	if p99 := blindTTFT.P99(); p99 < 4*e25TTFTSLOms {
		t.Errorf("unprotected p99 TTFT %.0fms under 4x SLO (%.0fms) — saturation arm too gentle", p99, 4.0*e25TTFTSLOms)
	}
	prot, err := e25Cell("saturate", "reject", "priority", nil)
	if err != nil {
		t.Fatal(err)
	}
	inter := prot.ClassTTFT(workload.Interactive)
	if p99 := inter.P99(); p99 > e25TTFTSLOms {
		t.Errorf("protected p99 TTFT %.0fms exceeds the %dms SLO", p99, e25TTFTSLOms)
	}
	if attain := inter.FractionBelow(e25TTFTSLOms); attain != 1 {
		t.Errorf("protected attainment %.4f, want 1", attain)
	}
	if prot.AdmissionRejected == 0 {
		t.Error("protection arm shed nothing — the bucket is inert")
	}
	// Scheduling alone is not enough at this load: priority without
	// admission still misses the SLO (the queue grows without bound), so
	// the experiment genuinely needs both mechanisms.
	schedOnly, err := e25Cell("saturate", "none", "priority", nil)
	if err != nil {
		t.Fatal(err)
	}
	schedTTFT := schedOnly.ClassTTFT(workload.Interactive)
	if p99 := schedTTFT.P99(); p99 <= e25TTFTSLOms {
		t.Errorf("priority-only p99 TTFT %.0fms already inside SLO — admission adds nothing", p99)
	}
	// And fairness moves the right way: shedding by purchased share
	// improves the weighted Jain index over the unprotected cell.
	if jb, jp := e25Jain(blind), e25Jain(prot); jp <= jb {
		t.Errorf("weighted Jain %.4f (protected) not above %.4f (unprotected)", jp, jb)
	}
}

// TestE25TenantMetricsRegistered pins the observability layer: a traced
// E25 cell lands per-tenant admission counters and queue-depth gauges in
// the registry, and the trace passes the structural checker.
func TestE25TenantMetricsRegistered(t *testing.T) {
	tr := obs.NewTracer()
	rep, err := e25Cell("saturate", "queue", "priority", tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("trace invariants: %v", err)
	}
	snap := tr.Registry().Snapshot(rep.MakespanMS)
	for _, tenant := range []string{"chat", "bulk-a", "bulk-b"} {
		if snap["tenant/"+tenant+"/admitted"] <= 0 {
			t.Errorf("tenant/%s/admitted missing or zero (snapshot %v)", tenant, snap["tenant/"+tenant+"/admitted"])
		}
	}
	if rep.AdmissionDelayed > 0 {
		if _, ok := snap["tenant/bulk-a/queue_depth"]; !ok {
			t.Error("queue mode delayed requests but registered no queue_depth gauge")
		}
	}
	// Counters must agree with the report's tallies.
	for _, ts := range rep.Tenants {
		if got := snap["tenant/"+ts.Tenant+"/admitted"]; int(got) != ts.Admitted {
			t.Errorf("tenant/%s/admitted = %v, report says %d", ts.Tenant, got, ts.Admitted)
		}
	}
}

// TestE25WorkerCountInvariance pins the sweep determinism contract for
// the new grid: one worker and eight render byte-identical tables.
func TestE25WorkerCountInvariance(t *testing.T) {
	serial, err := runE25Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runE25Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Tables) != len(parallel.Tables) {
		t.Fatalf("table count differs: %d vs %d", len(serial.Tables), len(parallel.Tables))
	}
	for i := range serial.Tables {
		a, b := serial.Tables[i].String(), parallel.Tables[i].String()
		if a != b {
			t.Errorf("table %d differs between 1 and 8 sweep workers:\n--- serial ---\n%s\n--- parallel ---\n%s", i, a, b)
		}
	}
}
