package experiments

import (
	"fmt"

	"dataai/internal/metrics"
	"dataai/internal/training"
)

func init() {
	register("E9", "Checkpointing engines and recovery (§2.3.2 Checkpointing)", runE9)
	register("E10", "Data-parallel memory strategies (ZeRO/FSDP, §2.3.2)", runE10)
}

func runE9() (*metrics.Table, error) {
	m := training.GPT13B()
	c := training.DefaultCluster()
	rc := training.RunConfig{
		Steps:            64,
		BatchTokens:      1 << 21,
		CheckpointEvery:  8,
		FailAtExecSteps:  []int{30},
		RestartOverheadS: 30,
	}
	t := metrics.NewTable("E9: checkpointing engines (64 steps, failure at step 30)",
		"engine", "total (s)", "stall (s)", "recompute (s)", "recovery (s)", "persisted (GB)")
	policies := []training.Policy{
		training.SyncPolicy{},
		training.AsyncPolicy{},
		&training.DiffPolicy{FullEvery: 4, ChangedFraction: 0.2},
		training.QuantPolicy{},
	}
	for _, p := range policies {
		cfg := rc
		cfg.Policy = p
		rep, err := training.SimulateRun(m, c, training.ZeRO2, cfg)
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", p.Name(), err)
		}
		t.AddRowf(p.Name(), rep.TotalS, rep.StallS, rep.RecomputeS, rep.RecoveryS,
			float64(rep.BytesPersisted)/(1<<30))
	}
	// CheckFreq-style interval tuning row: Young/Daly optimum.
	stepS, err := training.StepTime(m, c, training.ZeRO2, rc.BatchTokens)
	if err != nil {
		return nil, err
	}
	ckptCost := float64(training.CheckpointBytes(m)) / c.StorageBW
	mtbf := 64 * stepS // one failure per run
	optS := training.OptimalIntervalS(ckptCost, mtbf)
	t.AddRow("young-daly optimal interval", fmt.Sprintf("%.1f s (~%.0f steps)", optS, optS/stepS))
	return t, nil
}

func runE10() (*metrics.Table, error) {
	m := training.GPT13B()
	c := training.DefaultCluster()
	t := metrics.NewTable("E10: data-parallel strategies (1.3B params, 8 workers)",
		"strategy", "mem/worker (GB)", "comm/step (GB)", "step time (s)", "fits 8GB device")
	for _, s := range []training.Strategy{training.DP, training.ZeRO1, training.ZeRO2, training.ZeRO3, training.FSDP} {
		mem, err := training.MemoryPerWorker(m, s, c.Workers)
		if err != nil {
			return nil, err
		}
		comm, err := training.CommBytesPerStep(m, s, c.Workers)
		if err != nil {
			return nil, err
		}
		step, err := training.StepTime(m, c, s, 1<<21)
		if err != nil {
			return nil, err
		}
		small := c
		small.DeviceMemory = 8 << 30
		fits := "yes"
		if err := training.FitsMemory(m, small, s); err != nil {
			fits = "no"
		}
		t.AddRowf(s.String(), float64(mem)/(1<<30), comm/(1<<30), step, fits)
	}
	return t, nil
}
