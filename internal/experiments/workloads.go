package experiments

import (
	"fmt"

	"dataai/internal/corpus"
	"dataai/internal/relation"
	"dataai/internal/workload"
)

// This file names every workload the experiment harnesses replay, so
// E-code reads as workload names instead of magic seed/count/rate
// triples, and two experiments that mean "the same traffic" provably
// share it. Each helper is deterministic in its seed and returns a fresh
// trace per call (runs mutate nothing, but aliasing across concurrent
// sweep cells is cheaper to rule out than to reason about).

// batchingWorkload is the E11 baseline: a single anonymous Poisson
// stream at moderate load, where batching policy differences dominate.
func batchingWorkload() ([]workload.Request, error) {
	return workload.Generate(workload.DefaultTrace(1101, 400, 40))
}

// overloadWorkload is the E12 stress stream: the same shape at 100/s,
// past what one GPU sustains — the disaggregation budget study.
func overloadWorkload() ([]workload.Request, error) {
	return workload.Generate(workload.DefaultTrace(1102, 400, 100))
}

// prefixTrace is a DefaultTrace with a shared-prefix population layered
// on: prefixes distinct prompts of prefixTokens tokens, each request
// drawing one with probability prob.
func prefixTrace(seed int64, count int, rate float64, prefixes, prefixTokens int, prob float64) workload.TraceConfig {
	cfg := workload.DefaultTrace(seed, count, rate)
	cfg.SharedPrefixes = prefixes
	cfg.SharedPrefixTokens = prefixTokens
	cfg.SharedPrefixProb = prob
	return cfg
}

// pagedKVWorkload is the E13 allocation study: few hot prefixes over a
// small KV budget, where allocator discipline decides concurrency.
func pagedKVWorkload() ([]workload.Request, error) {
	return workload.Generate(prefixTrace(1103, 250, 50, 2, 512, 0.7))
}

// conversationWorkload is the E14 multi-turn trace (Zipf-skewed session
// popularity, accumulated history tokens).
func conversationWorkload() ([]workload.Request, error) {
	return workload.GenerateConversations(workload.DefaultConversations(1104))
}

// routingWorkload is the E21 routing study: eight long shared prefixes,
// high reuse probability — cache affinity is worth routing for.
func routingWorkload() ([]workload.Request, error) {
	return workload.Generate(prefixTrace(1121, 400, 60, 8, 512, 0.8))
}

// faultWorkload is the E23 fault-plan study: the routing shape with
// shorter prefixes and a longer trace, so crash windows land mid-run.
func faultWorkload() ([]workload.Request, error) {
	return workload.Generate(prefixTrace(2301, 600, 60, 8, 192, 0.6))
}

// decisionWorkload is the E26 counterfactual-replay study: the E23
// routing shape on a shorter trace — every routing decision is replayed
// once per forced alternative, so trace length multiplies directly into
// the replay bill. Severe-plan crash windows still land mid-run at this
// length (the E26 tests pin that reroute decisions exist).
func decisionWorkload() ([]workload.Request, error) {
	return workload.Generate(prefixTrace(2601, 240, 60, 8, 192, 0.6))
}

// recoveryWorkload is the E24 crash-recovery trace: 900 requests at
// 75/s against 8 instances, with shared prefixes so the tiered prefix
// cache has something to demote and re-promote across crashes.
func recoveryWorkload() ([]workload.Request, error) {
	return workload.Generate(prefixTrace(2401, 900, 75, 8, 192, 0.6))
}

// multiTenantSpec is the E25 traffic mix — the canonical three-tenant
// spec (see workload.DefaultMultiTenant for the shape).
func multiTenantSpec(seed int64, count int, ratePerSec float64) workload.WorkloadSpec {
	return workload.DefaultMultiTenant(seed, count, ratePerSec)
}

// resilienceCorpus is the reduced E22 corpus: E22 replays the same
// workload nine times (three fault levels x three stacks), so it trades
// corpus size for arm count.
func resilienceCorpus(seed int64) (*corpus.Corpus, error) {
	cfg := corpus.DefaultConfig(seed)
	cfg.EntitiesPerDomain = 12
	cfg.DocsPerDomainWeight = 20
	cfg.QACount = 30
	cfg.MultiHopQACount = 0
	g, err := corpus.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// resilienceTable is the semantic-operator half of the E22 workload.
func resilienceTable() (*relation.Table, error) {
	tbl, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 120; i++ {
		body := fmt.Sprintf("memo %d reviews quarterly earnings in detail", i)
		if i%3 == 0 {
			body = fmt.Sprintf("memo %d announces a merger agreement", i)
		}
		tbl.MustInsert(relation.Row{int64(i), body})
	}
	return tbl, nil
}
