package experiments

import (
	"fmt"
	"math/rand"

	"dataai/internal/core"
	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/metrics"
	"dataai/internal/rag"
	"dataai/internal/vecdb"
)

func init() {
	register("E16", "Vector index recall/throughput trade-off (§2.2.1 RAG challenges)", runE16)
	register("E17", "Data flywheel (§2.4)", runE17)
}

func runE16() (*metrics.Table, error) {
	const dim, n, queries, k = 64, 20000, 50, 10
	rng := rand.New(rand.NewSource(1601))
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embed.Normalize(v)
		vecs[i] = v
	}
	qs := make([][]float32, queries)
	for i := range qs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embed.Normalize(v)
		qs[i] = v
	}
	fill := func(idx vecdb.Index) error {
		for i, v := range vecs {
			if err := idx.Add(fmt.Sprintf("v%06d", i), v); err != nil {
				return err
			}
		}
		return nil
	}
	flat := vecdb.NewFlat(dim)
	if err := fill(flat); err != nil {
		return nil, err
	}
	exact := make([][]vecdb.Result, queries)
	for i, q := range qs {
		r, err := flat.Search(q, k)
		if err != nil {
			return nil, err
		}
		exact[i] = r
	}
	// Search effort is metered in inner-product evaluations per query
	// (vecdb.DistCounter) rather than wall time: the same recall/cost
	// frontier, but byte-identical across runs and machines — benchall
	// output is part of the repo's determinism contract.
	measure := func(idx vecdb.Index) (recall float64, distPerQuery float64, err error) {
		dc := idx.(vecdb.DistCounter)
		before := dc.DistComps()
		var sum float64
		for i, q := range qs {
			got, err := idx.Search(q, k)
			if err != nil {
				return 0, 0, err
			}
			sum += vecdb.Recall(got, exact[i])
		}
		return sum / queries, float64(dc.DistComps()-before) / queries, nil
	}
	t := metrics.NewTable("E16: vector indexes (20k vectors, recall@10)",
		"index", "recall@10", "dist/query")
	r, q, err := measure(flat)
	if err != nil {
		return nil, err
	}
	t.AddRowf("flat (exact)", r, q)
	for _, nprobe := range []int{1, 4, 16} {
		ivf := vecdb.NewIVF(dim, 64, nprobe, 16)
		if err := fill(ivf); err != nil {
			return nil, err
		}
		if err := ivf.Train(8); err != nil {
			return nil, err
		}
		r, q, err := measure(ivf)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("IVF nprobe=%d", nprobe), r, q)
	}
	for _, ef := range []int{16, 64, 128} {
		h := vecdb.NewHNSW(dim, 16, 128, 16)
		if err := fill(h); err != nil {
			return nil, err
		}
		h.SetEFSearch(ef)
		r, q, err := measure(h)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("HNSW ef=%d", ef), r, q)
	}
	return t, nil
}

func runE17() (*metrics.Table, error) {
	c, err := experimentCorpus(1017)
	if err != nil {
		return nil, err
	}
	client := groundingClient(17)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, err := rag.New(client, e, vecdb.NewFlat(e.Dim()))
	if err != nil {
		return nil, err
	}
	var seed []docstore.Document
	for _, d := range c.Docs[:len(c.Docs)/20] {
		seed = append(seed, docstore.Document{ID: d.ID, Text: d.Text})
	}
	if err := p.Ingest(seed); err != nil {
		return nil, err
	}
	fw, err := core.NewFlywheel(p, 0.7, 170)
	if err != nil {
		return nil, err
	}
	var qas []corpus.QA
	for _, qa := range c.QAs {
		if qa.Hops == 1 {
			qas = append(qas, qa)
		}
	}
	rng := rand.New(rand.NewSource(171))
	t := metrics.NewTable("E17: data flywheel (feedback rate 0.7, 40 queries/iteration)",
		"iteration", "accuracy", "feedback", "new docs", "index chunks")
	for iter := 0; iter < 6; iter++ {
		batch := make([]corpus.QA, 40)
		for i := range batch {
			batch[i] = qas[rng.Intn(len(qas))]
		}
		rep, err := fw.Iterate(batch)
		if err != nil {
			return nil, err
		}
		t.AddRowf(iter, rep.Accuracy(), rep.Feedback, rep.NewDocs, rep.TotalDocs)
	}
	return t, nil
}
