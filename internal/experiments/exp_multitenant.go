package experiments

import (
	"fmt"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/serving"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

func init() {
	registerX("E25", "Multi-tenant admission control and SLO-class scheduling (§2.3.2)", runE25)
}

// E25 answers the ROADMAP question the multi-tenant refactor opened: can
// a cluster hold interactive p99 TTFT inside its SLO while batch tenants
// saturate it? The grid crosses admission policy (none, token-bucket
// reject, token-bucket queue) with batch-formation policy (FCFS,
// class-priority, class-SJF — the latter two with batch-slot preemption)
// at two loads. The interactive tenant buys 30% of the rate; the bucket
// weights match purchased fractions, so Jain's index over
// fraction-normalized served tokens reads 1 as "everyone got what they
// paid for".

// e25TTFTSLOms is the interactive tenant's TTFT bound.
const e25TTFTSLOms = 500

// e25Instances is the cluster width every cell runs on.
const e25Instances = 4

func e25Grid() sim.Grid {
	return sim.Grid{Dims: []sim.Dim{
		{Name: "load", Values: []string{"moderate", "saturate"}},
		{Name: "admission", Values: []string{"none", "reject", "queue"}},
		{Name: "sched", Values: []string{"fcfs", "priority", "sjf"}},
	}}
}

// e25Workload is the shared three-tenant trace at the cell's load:
// "moderate" sits inside cluster capacity, "saturate" is past the decode
// limit — only shedding or reordering can protect the interactive class.
func e25Workload(load string) ([]workload.Request, error) {
	rate := 60.0
	if load == "saturate" {
		rate = 130
	}
	return workload.GenerateSpec(multiTenantSpec(2501, 600, rate))
}

// e25Admission maps an admission cell value to its config. The bucket
// charges trace tokens (prompt+output) against per-tenant allowances
// weighted by purchased rate fraction; "queue" holds the overflow up to
// 2s instead of shedding it.
func e25Admission(name string) serving.AdmissionConfig {
	if name == "none" {
		return serving.AdmissionConfig{}
	}
	cfg := serving.AdmissionConfig{
		Policy:       serving.AdmitReject,
		BurstTokens:  30000,
		RefillPerSec: 36000,
		Weights:      e25Weights(),
	}
	if name == "queue" {
		cfg.Policy = serving.AdmitQueue
		cfg.MaxQueueMS = 2000
	}
	return cfg
}

// e25Weights is the tenant → purchased-rate-fraction map, shared by the
// admission bucket and the fairness index.
func e25Weights() map[string]float64 {
	spec := multiTenantSpec(2501, 600, 60)
	w := make(map[string]float64, len(spec.Clients))
	for _, c := range spec.Clients {
		w[c.TenantID] = c.RateFraction
	}
	return w
}

// e25Opts maps a sched cell value to instance options: both priority
// policies run with batch-slot preemption (an interactive arrival may
// evict the most recent batch sequence), FCFS is the class-blind
// baseline.
func e25Opts(sched string) serving.ContinuousOpts {
	opts := serving.ContinuousOpts{ChunkTokens: 256}
	switch sched {
	case "priority":
		opts.Sched = serving.SchedPriority
		opts.PreemptBatch = true
	case "sjf":
		opts.Sched = serving.SchedSJF
		opts.PreemptBatch = true
	}
	return opts
}

// e25Cell runs one grid cell. Exposed (package-private) so the margin
// test can pin individual cells without rendering the whole table.
func e25Cell(load, admission, sched string, tr *obs.Tracer) (*serving.RoutedReport, error) {
	reqs, err := e25Workload(load)
	if err != nil {
		return nil, err
	}
	opts := e25Opts(sched)
	opts.Trace = tr
	return serving.RunRoutedAdmission(serving.DefaultGPU(), reqs, e25Instances,
		serving.CacheAware, opts, nil, serving.RecoveryConfig{}, e25Admission(admission))
}

// e25Jain is the weighted Jain index over per-tenant served output
// tokens, normalized by purchased rate fraction.
func e25Jain(rep *serving.RoutedReport) float64 {
	weights := e25Weights()
	xs := make([]float64, 0, len(rep.Tenants))
	ws := make([]float64, 0, len(rep.Tenants))
	for _, t := range rep.Tenants {
		xs = append(xs, float64(t.OutputTokens))
		ws = append(ws, weights[t.Tenant])
	}
	return metrics.JainWeighted(xs, ws)
}

func runE25() (*Output, error) { return runE25Workers(3) }

// runE25Workers runs the E25 grid on the given number of sweep workers;
// rendered output is identical at every worker count (sim.Sweep commits
// each cell into its own slot), which the worker-invariance test pins.
func runE25Workers(workers int) (*Output, error) {
	grid := e25Grid()
	type cellOut struct {
		rep *serving.RoutedReport
		err error
	}
	cells := sim.Sweep(grid, workers, func(cell int, coords []int) cellOut {
		rep, err := e25Cell(grid.ValueNamed("load", cell),
			grid.ValueNamed("admission", cell), grid.ValueNamed("sched", cell), nil)
		return cellOut{rep, err}
	})
	t := metrics.NewTable(
		fmt.Sprintf("E25: multi-tenant admission x scheduling (%d instances, 600 reqs, interactive SLO TTFT<=%dms)",
			e25Instances, e25TTFTSLOms),
		"load", "admission", "sched", "inter p99 TTFT (ms)", "inter attain",
		"batch tok/s", "adm rejected", "delayed", "preempt", "jain")
	for cell, co := range cells {
		if co.err != nil {
			return nil, co.err
		}
		rep := co.rep
		inter := rep.ClassTTFT(workload.Interactive)
		t.AddRowf(grid.ValueNamed("load", cell), grid.ValueNamed("admission", cell),
			grid.ValueNamed("sched", cell),
			inter.P99(), inter.FractionBelow(e25TTFTSLOms),
			float64(rep.ClassOutputTokens(workload.Batch))/(rep.MakespanMS/1000),
			rep.AdmissionRejected, rep.AdmissionDelayed, rep.Preemptions, e25Jain(rep))
	}

	// Per-tenant breakdown of the flagship saturation cell — token-bucket
	// shedding plus class-priority scheduling — traced, so the per-tenant
	// counters and gauges land in the registry and the span invariants
	// are checked. Tracing only observes; the grid cells stay untraced.
	tr := obs.NewTracer()
	rep, err := e25Cell("saturate", "reject", "priority", tr)
	if err != nil {
		return nil, err
	}
	if err := tr.Check(); err != nil {
		return nil, fmt.Errorf("E25 trace invariants: %w", err)
	}
	bt := metrics.NewTable("E25 per-tenant outcomes (saturate, token-bucket, priority)",
		"tenant", "admitted", "adm rejected", "served", "output tok", "share", "paid share")
	weights := e25Weights()
	totalOut := 0
	for _, ts := range rep.Tenants {
		totalOut += ts.OutputTokens
	}
	for _, ts := range rep.Tenants {
		share := 0.0
		if totalOut > 0 {
			share = float64(ts.OutputTokens) / float64(totalOut)
		}
		bt.AddRowf(ts.Tenant, ts.Admitted, ts.AdmissionRejected, ts.Served,
			ts.OutputTokens, share, weights[ts.Tenant])
	}
	return &Output{Tables: []*metrics.Table{t, bt}, Trace: tr}, nil
}
