package experiments

import (
	"fmt"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/serving"
	"dataai/internal/sim"
)

func init() {
	register("E11", "Static vs continuous vs chunked-prefill batching (§2.3.2)", runE11)
	register("E12", "Prefill/decode disaggregation goodput (DistServe, §2.3.2)", runE12)
	register("E13", "Paged KV cache and prefix sharing (vLLM/Prompt Cache, §2.3.2)", runE13)
	register("E14", "KV store eviction policies and hierarchy (AttentionStore, §2.3.2)", runE14)
	register("E15", "KV cache vs per-step recomputation (§2.3.2)", runE15)
	register("E21", "KV-cache-aware request routing (Mooncake, §2.3.2)", runE21)
	registerX("E23", "Routing policies under cluster fault plans (§2.3.2)", runE23)
	registerX("E24", "Crash recovery: checkpoints, migration, correlated faults (§2.3.2)", runE24)
}

func runE11() (*metrics.Table, error) {
	gpu := serving.DefaultGPU()
	reqs, err := batchingWorkload()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E11: batching policies (400 reqs @ 40/s)",
		"policy", "throughput (tok/s)", "p50 TTFT (ms)", "p95 TTFT", "p50 TBT", "p95 TBT")
	addRow := func(name string, rep *serving.Report) {
		t.AddRowf(name, rep.Throughput(), rep.TTFT.P50(), rep.TTFT.P95(), rep.TBT.P50(), rep.TBT.P95())
	}
	static, err := serving.RunStatic(gpu, reqs, 16)
	if err != nil {
		return nil, err
	}
	addRow("static (batch=16)", static)
	cont, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{})
	if err != nil {
		return nil, err
	}
	addRow("continuous (Orca)", cont)
	for _, chunk := range []int{64, 128, 256} {
		rep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{ChunkTokens: chunk})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("chunked prefill (%d tok)", chunk), rep)
	}
	return t, nil
}

func runE12() (*metrics.Table, error) {
	gpu := serving.DefaultGPU()
	reqs, err := overloadWorkload()
	if err != nil {
		return nil, err
	}
	const ttftSLO, tbtSLO = 1000, 12
	t := metrics.NewTable(
		fmt.Sprintf("E12: 4-GPU budget, goodput @ SLO(TTFT<=%.0fms, TBT<=%.0fms), 100 req/s", float64(ttftSLO), float64(tbtSLO)),
		"architecture", "p95 TTFT", "p95 TBT", "goodput")
	colo, err := serving.RunColocated(gpu, reqs, 4, serving.ContinuousOpts{})
	if err != nil {
		return nil, err
	}
	t.AddRowf("colocated 4x", colo.TTFT.P95(), colo.TBT.P95(), colo.Goodput(ttftSLO, tbtSLO))
	for _, split := range [][2]int{{1, 3}, {2, 2}, {3, 1}} {
		rep, err := serving.RunDisaggregated(gpu, reqs, serving.DisaggOpts{
			PrefillGPUs: split[0], DecodeGPUs: split[1],
			TransferMSPerToken: 0.005, OverlapTransfer: true,
		})
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("disaggregated %dP+%dD", split[0], split[1]),
			rep.TTFT.P95(), rep.TBT.P95(), rep.Goodput(ttftSLO, tbtSLO))
	}
	return t, nil
}

func runE13() (*metrics.Table, error) {
	gpu := serving.DefaultGPU()
	gpu.KVBlocks = 512
	t := metrics.NewTable("E13: KV allocation and prefix reuse",
		"configuration", "max concurrent (256p+64o)", "makespan (ms)", "mean TTFT", "prefill tokens")

	reqs, err := pagedKVWorkload()
	if err != nil {
		return nil, err
	}
	contigRep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{KV: serving.NewContiguousKV(gpu)})
	if err != nil {
		return nil, err
	}
	t.AddRowf("contiguous prealloc",
		serving.MaxConcurrent(serving.NewContiguousKV(gpu), 256, 64),
		contigRep.MakespanMS, contigRep.TTFT.Mean(), contigRep.PrefillTokens)
	pagedRep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{KV: serving.NewPagedKV(gpu)})
	if err != nil {
		return nil, err
	}
	t.AddRowf("paged (vLLM)",
		serving.MaxConcurrent(serving.NewPagedKV(gpu), 256, 64),
		pagedRep.MakespanMS, pagedRep.TTFT.Mean(), pagedRep.PrefillTokens)
	onDemandRep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{
		KV: serving.NewPagedKV(gpu), OnDemand: true,
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf(fmt.Sprintf("paged on-demand (%d preemptions)", onDemandRep.Preemptions),
		serving.MaxConcurrent(serving.NewPagedKV(gpu), 256, 64),
		onDemandRep.MakespanMS, onDemandRep.TTFT.Mean(), onDemandRep.PrefillTokens)
	prefixRep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{
		KV: serving.NewPagedKV(gpu), Prefix: serving.NewPrefixCache(),
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("paged + prefix cache",
		serving.MaxConcurrent(serving.NewPagedKV(gpu), 256, 64),
		prefixRep.MakespanMS, prefixRep.TTFT.Mean(), prefixRep.PrefillTokens)
	return t, nil
}

func runE14() (*metrics.Table, error) {
	gpu := serving.DefaultGPU()
	reqs, err := conversationWorkload()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E14: conversation KV store (multi-turn trace)",
		"store", "hit rate", "saved tokens", "mean TTFT (ms)")
	plain, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{})
	if err != nil {
		return nil, err
	}
	t.AddRowf("none (re-prefill history)", 0.0, 0, plain.TTFT.Mean())

	type armSpec struct {
		name string
		cfg  serving.SessionStoreConfig
	}
	arms := []armSpec{
		{"GPU-only LRU (2k tok)", serving.SessionStoreConfig{GPUCapacityTokens: 2000, Policy: serving.LRU}},
		{"GPU-only LFU (2k tok)", serving.SessionStoreConfig{GPUCapacityTokens: 2000, Policy: serving.LFU}},
		{"GPU-only TreeLRU (2k tok)", serving.SessionStoreConfig{GPUCapacityTokens: 2000, Policy: serving.TreeLRU}},
		{"hierarchical LRU, blocking xfer", serving.SessionStoreConfig{
			GPUCapacityTokens: 2000, CPUCapacityTokens: 1 << 20,
			Policy: serving.LRU, TransferMSPerToken: 0.02}},
		{"hierarchical LRU, overlapped xfer", serving.SessionStoreConfig{
			GPUCapacityTokens: 2000, CPUCapacityTokens: 1 << 20,
			Policy: serving.LRU, TransferMSPerToken: 0.02, OverlapTransfer: true}},
	}
	for _, a := range arms {
		a.cfg.PrefillTokensPerMS = gpu.PrefillTokensPerMS
		store, err := serving.NewSessionStore(a.cfg)
		if err != nil {
			return nil, err
		}
		rep, err := serving.RunContinuous(gpu, reqs, serving.ContinuousOpts{SessionCache: store})
		if err != nil {
			return nil, err
		}
		t.AddRowf(a.name, store.HitRate(), store.SavedTokens, rep.TTFT.Mean())
	}
	return t, nil
}

func runE15() (*metrics.Table, error) {
	m := serving.DefaultDecodeCost()
	t := metrics.NewTable("E15: KV cache vs recomputing K/V each step (256-token prompt)",
		"output tokens", "with KV cache (ms)", "without (ms)", "speedup")
	for _, out := range []int{16, 64, 256, 1024} {
		with, err := m.GenerateLatencyMS(256, out, true)
		if err != nil {
			return nil, err
		}
		without, err := m.GenerateLatencyMS(256, out, false)
		if err != nil {
			return nil, err
		}
		t.AddRowf(out, with, without, metrics.Ratio(without, with))
	}
	return t, nil
}

func runE21() (*metrics.Table, error) {
	gpu := serving.DefaultGPU()
	reqs, err := routingWorkload()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E21: multi-instance routing (4 instances, 8 shared prefixes)",
		"router", "prefix hit rate", "prefill tokens", "mean TTFT (ms)", "p95 TTFT")
	for _, pol := range []serving.RouterPolicy{serving.RoundRobin, serving.CacheAware, serving.BreakerAware} {
		rep, err := serving.RunRouted(gpu, reqs, 4, pol, serving.ContinuousOpts{})
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if rep.PrefixHits+rep.PrefixMisses > 0 {
			hitRate = float64(rep.PrefixHits) / float64(rep.PrefixHits+rep.PrefixMisses)
		}
		t.AddRowf(pol.String(), hitRate, rep.PrefillTokens, rep.TTFT.Mean(), rep.TTFT.P95())
	}
	return t, nil
}

func runE23() (*Output, error) {
	// The same trace under three routing policies and three cluster fault
	// plans, on the shared discrete-event clock. Goodput is the DistServe
	// measure at SLO(TTFT<=1500ms, TBT<=25ms); faults are pure functions
	// of (plan seed, instance, window), so every cell is reproducible.
	gpu := serving.DefaultGPU()
	reqs, err := faultWorkload()
	if err != nil {
		return nil, err
	}
	const ttftSLO, tbtSLO = 1500, 25
	t := metrics.NewTable(
		fmt.Sprintf("E23: routing under cluster faults (4 instances, 600 reqs @ 60/s, SLO TTFT<=%.0fms TBT<=%.0fms)",
			float64(ttftSLO), float64(tbtSLO)),
		"faults", "router", "goodput", "p50 TTFT (ms)", "p99 TTFT", "p99 TBT", "preempt", "rerouted", "crashes")
	plans := []struct {
		name string
		plan *serving.FaultPlan
	}{
		{"none", nil},
		{"medium", serving.MediumFaultPlan(2303)},
		{"severe", serving.SevereFaultPlan(2303)},
	}
	for _, pc := range plans {
		for _, pol := range []serving.RouterPolicy{serving.RoundRobin, serving.CacheAware, serving.BreakerAware} {
			rep, err := serving.RunRoutedFaults(gpu, reqs, 4, pol, serving.ContinuousOpts{ChunkTokens: 256}, pc.plan)
			if err != nil {
				return nil, err
			}
			t.AddRowf(pc.name, pol.String(), rep.Goodput(ttftSLO, tbtSLO),
				rep.TTFT.P50(), rep.TTFT.P99(), rep.TBT.P99(),
				rep.Preemptions, rep.Rerouted, rep.Crashes)
		}
	}

	// Where does a request's time go under the severe plan? Re-run each
	// policy's severe cell with a tracer attached (tracing is observer-
	// only, so the cells above are unchanged) and fold the request spans
	// into per-phase summaries. The reroute column is the crash tax: time
	// between a crash dropping a sequence and another instance queueing it.
	bt := metrics.NewTable("E23 time breakdown under the severe plan (per-request phase ms)",
		"router", "queue mean", "queue p99", "prefill mean", "prefill p99",
		"decode mean", "decode p99", "reroute mean", "reroute p99")
	var lastTrace *obs.Tracer
	for _, pol := range []serving.RouterPolicy{serving.RoundRobin, serving.CacheAware, serving.BreakerAware} {
		tr := obs.NewTracer()
		if _, err := serving.RunRoutedFaults(gpu, reqs, 4, pol,
			serving.ContinuousOpts{ChunkTokens: 256, Trace: tr}, serving.SevereFaultPlan(2303)); err != nil {
			return nil, err
		}
		if err := tr.Check(); err != nil {
			return nil, fmt.Errorf("E23 trace invariants (%s): %w", pol, err)
		}
		_, byPhase := obs.PhaseBreakdown(tr)
		cells := []interface{}{pol.String()}
		for _, phase := range []string{"queue", "prefill", "decode", "reroute"} {
			s := byPhase[phase]
			if s == nil {
				s = &metrics.Summary{}
			}
			cells = append(cells, s.Mean(), s.P99())
		}
		bt.AddRowf(cells...)
		lastTrace = tr
	}
	return &Output{Tables: []*metrics.Table{t, bt}, Trace: lastTrace}, nil
}

// e24Grid is the E24 recovery-policy × fault-plan product. The sweep
// reads cells by dimension name (ValueNamed), so the axes can be
// reordered without silently misreading a cell.
func e24Grid() sim.Grid {
	return sim.Grid{Dims: []sim.Dim{
		{Name: "faults", Values: []string{"independent", "rack", "cascade"}},
		{Name: "recovery", Values: []string{"reroute-only", "checkpoint", "ckpt+migrate"}},
	}}
}

// e24Plan maps a fault-plan cell value to its plan: "independent" is the
// E23 severe plan (per-instance draws), "rack" adds correlated
// rack-crash draws (8 instances in racks of 4 — one draw can take out
// half the cluster), "cascade" additionally slows the survivors in
// proportion to how many instances are down.
func e24Plan(name string) *serving.FaultPlan {
	switch name {
	case "independent":
		return serving.SevereFaultPlan(2403)
	case "rack":
		return serving.CorrelatedFaultPlan(2403, 4)
	default:
		return serving.CascadeFaultPlan(2403, 4)
	}
}

// e24Recovery maps a recovery-policy cell value to its config. Every arm
// shares the same tiered prefix cache, so the goodput and wasted-token
// gaps isolate checkpointing and migration rather than cache geometry.
func e24Recovery(name string) serving.RecoveryConfig {
	rec := serving.RecoveryConfig{PrefixGPUTokens: 1024, PrefixCPUTokens: 8192}
	switch name {
	case "checkpoint":
		rec.CkptEveryIters = 8
	case "ckpt+migrate":
		rec.CkptEveryIters = 8
		rec.Migrate = true
		rec.HotLoadFactor = 3
		rec.MigrateMinTokens = 128
	}
	return rec
}

func runE24() (*Output, error) { return runE24Workers(3) }

// runE24Workers runs the E24 grid on the given number of sweep workers.
// The rendered output is identical at every worker count — sim.Sweep
// commits each cell into its own slot — which the worker-invariance
// test pins.
func runE24Workers(workers int) (*Output, error) {
	gpu := serving.DefaultGPU()
	reqs, err := recoveryWorkload()
	if err != nil {
		return nil, err
	}
	const ttftSLO, tbtSLO = 1500, 25
	grid := e24Grid()
	type cellOut struct {
		rep *serving.RoutedReport
		err error
	}
	cells := sim.Sweep(grid, workers, func(cell int, coords []int) cellOut {
		rep, err := serving.RunRoutedRecovery(gpu, reqs, 8, serving.BreakerAware,
			serving.ContinuousOpts{ChunkTokens: 256},
			e24Plan(grid.ValueNamed("faults", cell)),
			e24Recovery(grid.ValueNamed("recovery", cell)))
		return cellOut{rep, err}
	})
	t := metrics.NewTable(
		fmt.Sprintf("E24: crash recovery (8 instances, racks of 4, 900 reqs @ 75/s, SLO TTFT<=%.0fms TBT<=%.0fms)",
			float64(ttftSLO), float64(tbtSLO)),
		"faults", "recovery", "goodput", "wasted tok", "p99 TTFT (ms)", "recovery p50 (ms)",
		"resumed", "migrations", "demotions", "crashes")
	for cell, co := range cells {
		if co.err != nil {
			return nil, co.err
		}
		rep := co.rep
		t.AddRowf(grid.ValueNamed("faults", cell), grid.ValueNamed("recovery", cell),
			rep.Goodput(ttftSLO, tbtSLO), rep.WastedRecomputeTokens,
			rep.TTFT.P99(), rep.RecoveryMS.P50(),
			rep.ResumedFromCkpt, rep.Migrations, rep.PrefixDemotions, rep.Crashes)
	}

	// Where does recovery time go under the cascade plan? Re-run each arm
	// traced (tracing is observer-only) and fold the request spans into
	// per-phase summaries. The migrate column only fills in for the
	// ckpt+migrate arm; reroute is the crash tax checkpoints shrink.
	bt := metrics.NewTable("E24 time breakdown under the cascade plan (per-request phase ms)",
		"recovery", "queue mean", "prefill mean", "decode mean",
		"reroute mean", "reroute p99", "migrate mean", "migrate p99")
	var lastTrace *obs.Tracer
	for _, arm := range grid.Dims[1].Values {
		tr := obs.NewTracer()
		if _, err := serving.RunRoutedRecovery(gpu, reqs, 8, serving.BreakerAware,
			serving.ContinuousOpts{ChunkTokens: 256, Trace: tr},
			e24Plan("cascade"), e24Recovery(arm)); err != nil {
			return nil, err
		}
		if err := tr.Check(); err != nil {
			return nil, fmt.Errorf("E24 trace invariants (%s): %w", arm, err)
		}
		_, byPhase := obs.PhaseBreakdown(tr)
		cells := []interface{}{arm}
		for _, phase := range []string{"queue", "prefill", "decode"} {
			s := byPhase[phase]
			if s == nil {
				s = &metrics.Summary{}
			}
			cells = append(cells, s.Mean())
		}
		for _, phase := range []string{"reroute", "migrate"} {
			s := byPhase[phase]
			if s == nil {
				s = &metrics.Summary{}
			}
			cells = append(cells, s.Mean(), s.P99())
		}
		bt.AddRowf(cells...)
		lastTrace = tr
	}
	return &Output{Tables: []*metrics.Table{t, bt}, Trace: lastTrace}, nil
}
