package experiments

import (
	"fmt"
	"strings"

	"dataai/internal/metrics"
	"dataai/internal/relation"
	"dataai/internal/rewrite"
)

func init() {
	register("E20", "Query rewriting with equivalence verification (§2.2.1, Figure 1)", runE20)
}

func runE20() (*metrics.Table, error) {
	// Witness with boundary rows for every predicate the workload uses.
	tbl, err := relation.NewTable("m", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "v", Type: relation.Float},
		{Name: "tag", Type: relation.String},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 40; i++ {
		tag := "a"
		if i%3 == 0 {
			tag = "b"
		}
		tbl.MustInsert(relation.Row{int64(i), float64(i) / 2, tag})
	}
	witness := relation.Catalog{"m": tbl}

	var queries []string
	for i := 2; i < 12; i++ {
		queries = append(queries,
			fmt.Sprintf("SELECT id FROM m WHERE v > %d AND v > %d", i, i-2),
			fmt.Sprintf("SELECT id FROM m WHERE v >= %d AND tag = 'a'", i),
			fmt.Sprintf("SELECT count(*) AS n FROM m WHERE v <= %d ORDER BY n", i),
		)
	}

	t := metrics.NewTable("E20: LLM query rewriting with verification (30 queries)",
		"proposer", "proposals", "verified+applied", "unsound proposed", "unsound caught")
	for _, unsound := range []float64{0, 1} {
		r := &rewrite.Rewriter{
			Proposer: rewrite.SimulatedLLMProposer{UnsoundRate: unsound, Seed: 20},
			Witness:  witness,
		}
		proposals, applied, unsoundProposed, unsoundCaught := 0, 0, 0, 0
		for _, q := range queries {
			res, err := r.Rewrite(q)
			if err != nil {
				return nil, fmt.Errorf("E20 %q: %w", q, err)
			}
			proposals += res.Verified + len(res.Rejected)
			if res.Applied != "" {
				applied++
			}
			for _, rej := range res.Rejected {
				if strings.Contains(rej, "bound-relaxation") {
					unsoundCaught++
				}
			}
			if unsound > 0 {
				// Every query with an inclusive bound got one unsound
				// candidate.
				if strings.Contains(q, ">=") || strings.Contains(q, "<=") {
					unsoundProposed++
				}
			}
		}
		name := "sound rules only"
		if unsound > 0 {
			name = "with hallucinated rewrites"
		}
		t.AddRowf(name, proposals, applied, unsoundProposed, unsoundCaught)
	}
	return t, nil
}
