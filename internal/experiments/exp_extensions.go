package experiments

import (
	"fmt"

	"dataai/internal/corpus"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/metrics"
	"dataai/internal/prompting"
	"dataai/internal/token"
	"dataai/internal/training"
)

func init() {
	register("E18", "3D parallelism: pipeline bubbles and layout search (§2.3.2 [26,40])", runE18)
	register("E19", "Prompting: demonstration selection and compression (§2.2.1)", runE19)
}

func runE18() (*metrics.Table, error) {
	m := training.GPT13B()
	c := training.DefaultCluster()
	c.DeviceMemory = 6 << 30 // tight enough that pure DP cannot fit
	const devices = 16
	t := metrics.NewTable("E18: 3D layouts on 16 devices (6GB each, 1.3B params)",
		"layout (DxPxT)", "mem/device (GB)", "bubble", "step time (s)", "fits")
	layouts := []training.ParallelConfig{
		{Data: 16, Pipeline: 1, Tensor: 1},
		{Data: 8, Pipeline: 2, Tensor: 1, MicroBatches: 8},
		{Data: 4, Pipeline: 4, Tensor: 1, MicroBatches: 8},
		{Data: 4, Pipeline: 1, Tensor: 4},
		{Data: 2, Pipeline: 4, Tensor: 2, MicroBatches: 8},
		{Data: 1, Pipeline: 4, Tensor: 4, MicroBatches: 8},
	}
	for _, p := range layouts {
		mem, err := training.MemoryPerDevice3D(m, training.DP, p)
		if err != nil {
			return nil, err
		}
		fits := "yes"
		if mem > c.DeviceMemory {
			fits = "no"
		}
		cluster := c
		cluster.Workers = p.Data
		step, err := training.StepTime3D(m, cluster, training.DP, p, 1<<21)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("%dx%dx%d", p.Data, p.Pipeline, p.Tensor),
			float64(mem)/(1<<30),
			training.PipelineBubbleFraction(p.Pipeline, p.MicroBatches),
			step, fits)
	}
	best, stepS, err := training.BestLayout(m, c, training.DP, devices, 1<<21, 8)
	if err != nil {
		return nil, err
	}
	t.AddRow("best fitting layout",
		fmt.Sprintf("%dx%dx%d @ %.2fs/step", best.Data, best.Pipeline, best.Tensor, stepS))
	return t, nil
}

func runE19() (*metrics.Table, error) {
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(1019))
	if err != nil {
		return nil, err
	}
	c := gen.Generate()
	var pool, test []llm.Example
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		ex := llm.Example{Input: d.Text, Label: d.Domain}
		if len(pool) < 200 {
			pool = append(pool, ex)
		} else if len(test) < 120 {
			test = append(test, ex)
		}
	}
	m := llm.LargeModel()
	m.ErrRate = 0.35
	m.ContextWindow = 1 << 20
	client := llm.NewSimulator(m, 19)
	lexicons := map[string][]string{
		"finance":    {"market", "shares", "dividend", "portfolio", "merger", "equity", "earnings"},
		"medicine":   {"clinical", "patient", "therapy", "immune", "diagnosis", "receptor"},
		"technology": {"compiler", "kernel", "protocol", "latency", "framework", "runtime"},
		"sports":     {"championship", "playoff", "referee", "stadium", "tournament", "season"},
	}
	for d, kws := range lexicons {
		client.RegisterLabel(d, kws)
	}
	sel, err := prompting.NewDemoSelector(embed.NewHashEmbedder(embed.DefaultDim), pool)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E19: prompting techniques (domain classification, ErrRate 0.35 model)",
		"technique", "accuracy", "prompt tokens/query")
	score := func(name string, mk func(tc llm.Example) (string, error)) error {
		right := 0
		var promptToks int64
		for _, tc := range test {
			p, err := mk(tc)
			if err != nil {
				return err
			}
			resp, err := client.Complete(llm.Request{Prompt: p})
			if err != nil {
				return err
			}
			promptToks += int64(resp.PromptTokens)
			if resp.Text == tc.Label {
				right++
			}
		}
		t.AddRowf(name, float64(right)/float64(len(test)), promptToks/int64(len(test)))
		return nil
	}
	if err := score("zero-shot", func(tc llm.Example) (string, error) {
		return llm.ClassifyPrompt(c.Domains, tc.Input), nil
	}); err != nil {
		return nil, err
	}
	if err := score("4 random demos", func(tc llm.Example) (string, error) {
		return llm.ClassifyPromptFewShot(c.Domains, sel.Random(4, int64(token.Hash64(tc.Input)%4096)), tc.Input), nil
	}); err != nil {
		return nil, err
	}
	if err := score("4 similar demos", func(tc llm.Example) (string, error) {
		demos, err := sel.Similar(tc.Input, 4)
		if err != nil {
			return "", err
		}
		return llm.ClassifyPromptFewShot(c.Domains, demos, tc.Input), nil
	}); err != nil {
		return nil, err
	}
	if err := score("4 similar demos, compressed", func(tc llm.Example) (string, error) {
		demos, err := sel.Similar(tc.Input, 4)
		if err != nil {
			return "", err
		}
		compact := make([]llm.Example, len(demos))
		for i, d := range demos {
			parts := prompting.Compress([]string{d.Input}, tc.Input, 16)
			in := d.Input
			if len(parts) > 0 {
				in = parts[0]
			}
			compact[i] = llm.Example{Input: in, Label: d.Label}
		}
		return llm.ClassifyPromptFewShot(c.Domains, compact, tc.Input), nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
