package experiments

import (
	"testing"

	"dataai/internal/serving"
)

// TestE24CheckpointMigrateDominates pins the E24 acceptance claim: under
// the correlated-domain plans (rack and cascade), checkpoint+migrate
// strictly beats reroute-only on BOTH goodput and wasted recompute
// tokens. The simulation is deterministic, so these are exact
// inequalities, not statistical ones — if a change flips either, the
// recovery story regressed.
func TestE24CheckpointMigrateDominates(t *testing.T) {
	reqs, err := recoveryWorkload()
	if err != nil {
		t.Fatal(err)
	}
	gpu := serving.DefaultGPU()
	const ttftSLO, tbtSLO = 1500, 25
	run := func(plan, arm string) *serving.RoutedReport {
		t.Helper()
		rep, err := serving.RunRoutedRecovery(gpu, reqs, 8, serving.BreakerAware,
			serving.ContinuousOpts{ChunkTokens: 256}, e24Plan(plan), e24Recovery(arm))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, plan := range []string{"rack", "cascade"} {
		base := run(plan, "reroute-only")
		full := run(plan, "ckpt+migrate")
		if base.Crashes == 0 {
			t.Fatalf("%s plan injected no crashes", plan)
		}
		if full.ResumedFromCkpt == 0 || full.Migrations == 0 {
			t.Fatalf("%s ckpt+migrate arm inert: %d resumes, %d migrations",
				plan, full.ResumedFromCkpt, full.Migrations)
		}
		bg, fg := base.Goodput(ttftSLO, tbtSLO), full.Goodput(ttftSLO, tbtSLO)
		if fg <= bg {
			t.Errorf("%s plan: ckpt+migrate goodput %.4f does not beat reroute-only %.4f", plan, fg, bg)
		}
		if full.WastedRecomputeTokens >= base.WastedRecomputeTokens {
			t.Errorf("%s plan: ckpt+migrate wasted %d tokens, reroute-only %d — no recompute saving",
				plan, full.WastedRecomputeTokens, base.WastedRecomputeTokens)
		}
	}
}

// TestE24WorkerCountInvariance pins the sweep determinism contract: the
// E24 grid rendered on one sweep worker is byte-identical to the same
// grid rendered on eight — cell results commit into per-cell slots, so
// scheduling cannot leak into the output.
func TestE24WorkerCountInvariance(t *testing.T) {
	serial, err := runE24Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runE24Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Tables) != len(parallel.Tables) {
		t.Fatalf("table count differs: %d vs %d", len(serial.Tables), len(parallel.Tables))
	}
	for i := range serial.Tables {
		a, b := serial.Tables[i].String(), parallel.Tables[i].String()
		if a != b {
			t.Errorf("table %d differs between 1 and 8 sweep workers:\n--- serial ---\n%s\n--- parallel ---\n%s", i, a, b)
		}
	}
}
