package experiments

import (
	"fmt"

	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/faults"
	"dataai/internal/llm"
	"dataai/internal/metrics"
	"dataai/internal/rag"
	"dataai/internal/relation"
	"dataai/internal/resilient"
	"dataai/internal/semop"
	"dataai/internal/vecdb"
)

func init() {
	register("E22", "Pipeline reliability under injected LLM faults (§2.2.1 robustness)", runE22)
}

// resilienceCorpus is a reduced corpus: E22 replays the same workload
// nine times (three fault levels x three stacks), so it trades corpus
// size for arm count.
func resilienceCorpus(seed int64) (*corpus.Corpus, error) {
	cfg := corpus.DefaultConfig(seed)
	cfg.EntitiesPerDomain = 12
	cfg.DocsPerDomainWeight = 20
	cfg.QACount = 30
	cfg.MultiHopQACount = 0
	g, err := corpus.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// resilienceTable is the semantic-operator half of the E22 workload.
func resilienceTable() (*relation.Table, error) {
	tbl, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 120; i++ {
		body := fmt.Sprintf("memo %d reviews quarterly earnings in detail", i)
		if i%3 == 0 {
			body = fmt.Sprintf("memo %d announces a merger agreement", i)
		}
		tbl.MustInsert(relation.Row{int64(i), body})
	}
	return tbl, nil
}

// runE22 runs an identical semop+RAG workload against a fault-injecting
// client under three stacks — (a) naive passthrough, (b) retry-only,
// (c) the full resilient middleware (retries + breaker + hedging +
// fallback + degradation) — at three fault severities. Every stack sees
// the exact same fault draws (same injector plan and seed, and faults
// are a pure function of prompt/seed/attempt), so per-query outcomes
// are directly comparable: any request the naive stack survives, the
// retry stack survives too.
func runE22() (*metrics.Table, error) {
	c, err := resilienceCorpus(2201)
	if err != nil {
		return nil, err
	}
	tbl, err := resilienceTable()
	if err != nil {
		return nil, err
	}

	levels := []struct {
		name string
		plan faults.Plan
	}{
		{"light", faults.Light()},
		{"medium", faults.Medium()},
		{"severe", faults.Severe()},
	}
	stacks := []struct {
		name string
		wrap func(inner llm.Client) llm.Client
	}{
		{"naive", func(inner llm.Client) llm.Client { return inner }},
		{"retry", func(inner llm.Client) llm.Client {
			return resilient.Wrap(inner, resilient.RetryOnly(3, 2203))
		}},
		{"resilient", func(inner llm.Client) llm.Client {
			fallback := llm.NewSimulator(llm.SmallModel(), 2202)
			return resilient.Wrap(inner, resilient.Full(3, 2203, fallback))
		}},
	}

	t := metrics.NewTable("E22: pipeline reliability under injected faults",
		"faults", "stack", "success", "acc", "cost ($)", "wasted tok", "latency (ms)")
	for _, lv := range levels {
		for _, st := range stacks {
			// Fresh base model + injector per arm with identical seeds:
			// every arm replays the same fault schedule.
			m := llm.LargeModel()
			m.ContextWindow = 1 << 20
			base := llm.NewSimulator(m, 2202)
			inj := faults.New(base, lv.plan, 2204)
			client := st.wrap(inj)

			ok, total := 0, 0
			right := 0
			var latency float64

			// RAG half: one grounded answer per QA. A failed answer
			// counts against success and accuracy both.
			e := embed.NewHashEmbedder(embed.DefaultDim)
			p, err := rag.New(client, e, vecdb.NewFlat(e.Dim()), rag.WithContextShrink())
			if err != nil {
				return nil, err
			}
			docs := make([]docstore.Document, len(c.Docs))
			for i, d := range c.Docs {
				docs[i] = docstore.Document{ID: d.ID, Text: d.Text}
			}
			if err := p.Ingest(docs); err != nil {
				return nil, err
			}
			for _, qa := range c.QAs {
				total++
				a, err := p.Answer(qa.Question)
				if err != nil {
					continue
				}
				ok++
				latency += a.LatencyMS
				if a.Text == qa.Answer {
					right++
				}
			}

			// Semop half: four SemFilter batch jobs over table slices.
			// A batch either completes or counts as one failure.
			ex := semop.NewExecutor(client)
			sliceLen := tbl.Len() / 4
			for j := 0; j < 4; j++ {
				total++
				slice := &relation.Table{Name: tbl.Name, Schema: tbl.Schema,
					Rows: tbl.Rows[j*sliceLen : (j+1)*sliceLen]}
				f := semop.SemFilter{TextCol: "body", Criterion: "contains:merger"}
				if _, err := f.Apply(ex, slice); err != nil {
					continue
				}
				ok++
			}
			latency += ex.LatencyMS

			fs := inj.Stats()
			t.AddRowf(lv.name, st.name,
				float64(ok)/float64(total),
				float64(right)/float64(len(c.QAs)),
				base.Usage().CostUSD,
				fs.WastedPromptTokens,
				latency)
		}
	}
	return t, nil
}
