package experiments

import (
	"fmt"

	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/faults"
	"dataai/internal/llm"
	"dataai/internal/metrics"
	"dataai/internal/rag"
	"dataai/internal/relation"
	"dataai/internal/resilient"
	"dataai/internal/semop"
	"dataai/internal/vecdb"
)

func init() {
	register("E22", "Pipeline reliability under injected LLM faults (§2.2.1 robustness)", runE22)
}

// resilienceArm replays the shared E22 workload (RAG half + semop half)
// through one stack under one fault plan and returns the metric cells
// for its table row. Every arm builds a fresh base model + injector with
// identical seeds, so every arm replays the same fault schedule and
// per-query outcomes are directly comparable.
func resilienceArm(c *corpus.Corpus, tbl *relation.Table, plan faults.Plan,
	wrap func(inner llm.Client) (llm.Client, func() resilient.Stats)) ([]interface{}, error) {
	m := llm.LargeModel()
	m.ContextWindow = 1 << 20
	base := llm.NewSimulator(m, 2202)
	inj := faults.New(base, plan, 2204)
	client, stats := wrap(inj)

	ok, total := 0, 0
	right := 0
	var latency float64
	var perQA metrics.Summary

	// RAG half: one grounded answer per QA. A failed answer counts
	// against success and accuracy both; per-answer latencies feed the
	// tail summary the hedge sweep reads.
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, err := rag.New(client, e, vecdb.NewFlat(e.Dim()), rag.WithContextShrink())
	if err != nil {
		return nil, err
	}
	docs := make([]docstore.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = docstore.Document{ID: d.ID, Text: d.Text}
	}
	if err := p.Ingest(docs); err != nil {
		return nil, err
	}
	for _, qa := range c.QAs {
		total++
		a, err := p.Answer(qa.Question)
		if err != nil {
			continue
		}
		ok++
		latency += a.LatencyMS
		perQA.Add(a.LatencyMS)
		if a.Text == qa.Answer {
			right++
		}
	}

	// Semop half: four SemFilter batch jobs over table slices.
	// A batch either completes or counts as one failure.
	ex := semop.NewExecutor(client)
	sliceLen := tbl.Len() / 4
	for j := 0; j < 4; j++ {
		total++
		slice := &relation.Table{Name: tbl.Name, Schema: tbl.Schema,
			Rows: tbl.Rows[j*sliceLen : (j+1)*sliceLen]}
		f := semop.SemFilter{TextCol: "body", Criterion: "contains:merger"}
		if _, err := f.Apply(ex, slice); err != nil {
			continue
		}
		ok++
	}
	latency += ex.LatencyMS

	// "wasted tok" sums the injector's fault-charged prompt tokens with
	// the duplicate prefills of hedges the primary outran (the latter
	// never reach the injector — they are modelled in the middleware).
	fs := inj.Stats()
	rs := stats()
	return []interface{}{
		float64(ok) / float64(total),
		float64(right) / float64(len(c.QAs)),
		base.Usage().CostUSD,
		fs.WastedPromptTokens + rs.HedgeWastedTokens,
		latency,
		perQA.P99(),
		fmt.Sprintf("%d/%d", rs.Hedges, rs.HedgesLost),
	}, nil
}

// runE22 runs an identical semop+RAG workload against a fault-injecting
// client under three stacks — (a) naive passthrough, (b) retry-only,
// (c) the full resilient middleware (retries + breaker + hedging +
// fallback + degradation) — at three fault severities. Every stack sees
// the exact same fault draws (same injector plan and seed, and faults
// are a pure function of prompt/seed/attempt), so per-query outcomes
// are directly comparable: any request the naive stack survives, the
// retry stack survives too.
//
// The tail rows sweep the full stack's HedgeAfterMS offset at severe
// faults: a lower offset truncates timeout tails harder (lower p99 and
// total latency) but fires more losing hedges, whose duplicate prefills
// show up as wasted tokens — the hedge policy's trade-off curve.
func runE22() (*metrics.Table, error) {
	c, err := resilienceCorpus(2201)
	if err != nil {
		return nil, err
	}
	tbl, err := resilienceTable()
	if err != nil {
		return nil, err
	}

	levels := []struct {
		name string
		plan faults.Plan
	}{
		{"light", faults.Light()},
		{"medium", faults.Medium()},
		{"severe", faults.Severe()},
	}
	noStats := func() resilient.Stats { return resilient.Stats{} }
	stacks := []struct {
		name string
		wrap func(inner llm.Client) (llm.Client, func() resilient.Stats)
	}{
		{"naive", func(inner llm.Client) (llm.Client, func() resilient.Stats) {
			return inner, noStats
		}},
		{"retry", func(inner llm.Client) (llm.Client, func() resilient.Stats) {
			rc := resilient.Wrap(inner, resilient.RetryOnly(3, 2203))
			return rc, rc.Stats
		}},
		{"resilient", func(inner llm.Client) (llm.Client, func() resilient.Stats) {
			fallback := llm.NewSimulator(llm.SmallModel(), 2202)
			rc := resilient.Wrap(inner, resilient.Full(3, 2203, fallback))
			return rc, rc.Stats
		}},
	}

	t := metrics.NewTable("E22: pipeline reliability under injected faults",
		"faults", "stack", "success", "acc", "cost ($)", "wasted tok", "latency (ms)", "p99 QA lat", "hedges won/lost")
	for _, lv := range levels {
		for _, st := range stacks {
			row, err := resilienceArm(c, tbl, lv.plan, st.wrap)
			if err != nil {
				return nil, err
			}
			t.AddRowf(append([]interface{}{lv.name, st.name}, row...)...)
		}
	}

	// Hedge-offset sweep: the full stack at severe faults, HedgeAfterMS
	// from "never hedge" down through ever-more-aggressive offsets (the
	// base "resilient" rows above sit at Full's default of 300ms).
	for _, offset := range []float64{0, 400, 100, 25, 20, 16} {
		name := "no hedge"
		if offset > 0 {
			name = fmt.Sprintf("hedge@%.0fms", offset)
		}
		row, err := resilienceArm(c, tbl, faults.Severe(),
			func(inner llm.Client) (llm.Client, func() resilient.Stats) {
				fallback := llm.NewSimulator(llm.SmallModel(), 2202)
				pol := resilient.Full(3, 2203, fallback)
				pol.HedgeAfterMS = offset
				rc := resilient.Wrap(inner, pol)
				return rc, rc.Stats
			})
		if err != nil {
			return nil, err
		}
		t.AddRowf(append([]interface{}{"severe", name}, row...)...)
	}
	return t, nil
}
