package experiments

import (
	"fmt"

	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/extract"
	"dataai/internal/lake"
	"dataai/internal/llm"
	"dataai/internal/metrics"
	"dataai/internal/rag"
	"dataai/internal/relation"
	"dataai/internal/semop"
	"dataai/internal/vecdb"
)

func init() {
	register("E1", "RAG vs closed-book, single vs iterative multi-hop (§2.2.2 RAG)", runE1)
	register("E2", "Semantic-operator plan optimization (LOTUS/PALIMPZEST, §2.2.2)", runE2)
	register("E3", "Schema extraction: direct LLM vs Evaporate (§2.2.2)", runE3)
	register("E4", "Data-lake schema linking: lexical vs embedding (AOP, §2.2.2)", runE4)
	register("E5", "Lake query planning vs single-shot LLM (SYMPHONY/CAESURA, §2.2.2)", runE5)
}

// grounding client used across LLM4Data experiments: realistic error
// rates, no pretraining knowledge of the corpus.
func groundingClient(seed uint64) *llm.Simulator {
	m := llm.LargeModel()
	m.ContextWindow = 1 << 20
	return llm.NewSimulator(m, seed)
}

func experimentCorpus(seed int64) (*corpus.Corpus, error) {
	g, err := corpus.NewGenerator(corpus.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

func runE1() (*metrics.Table, error) {
	c, err := experimentCorpus(1001)
	if err != nil {
		return nil, err
	}
	client := groundingClient(11)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, err := rag.New(client, e, vecdb.NewFlat(e.Dim()))
	if err != nil {
		return nil, err
	}
	docs := make([]docstore.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = docstore.Document{ID: d.ID, Text: d.Text}
	}
	if err := p.Ingest(docs); err != nil {
		return nil, err
	}

	type arm struct {
		name   string
		answer func(q string) (string, float64, error)
	}
	arms := []arm{
		{"closed-book", func(q string) (string, float64, error) {
			r, err := client.Complete(llm.Request{Prompt: llm.AnswerPrompt(q, nil)})
			return r.Text, r.CostUSD, err
		}},
		{"rag-single", func(q string) (string, float64, error) {
			a, err := p.Answer(q)
			return a.Text, a.CostUSD, err
		}},
		{"rag-iterative", func(q string) (string, float64, error) {
			a, err := p.AnswerIterative(q)
			return a.Text, a.CostUSD, err
		}},
	}
	t := metrics.NewTable("E1: RAG grounding (accuracy by question type)",
		"method", "acc@1hop", "acc@2hop", "cost/query ($)")
	for _, a := range arms {
		var right1, total1, right2, total2 int
		var cost float64
		for _, qa := range c.QAs {
			ans, cs, err := a.answer(qa.Question)
			if err != nil {
				return nil, fmt.Errorf("E1 %s: %w", a.name, err)
			}
			cost += cs
			if qa.Hops == 1 {
				total1++
				if ans == qa.Answer {
					right1++
				}
			} else {
				total2++
				if ans == qa.Answer {
					right2++
				}
			}
		}
		t.AddRowf(a.name,
			float64(right1)/float64(max(total1, 1)),
			float64(right2)/float64(max(total2, 1)),
			cost/float64(len(c.QAs)))
	}
	return t, nil
}

func runE2() (*metrics.Table, error) {
	// 600-row table; 1/3 of rows satisfy the semantic predicate, half
	// the classical one.
	tbl, err := relation.NewTable("docs", relation.Schema{
		{Name: "id", Type: relation.Int},
		{Name: "year", Type: relation.Int},
		{Name: "body", Type: relation.String},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 600; i++ {
		body := fmt.Sprintf("report %d reviews quarterly earnings in detail", i)
		if i%3 == 0 {
			body = fmt.Sprintf("report %d announces a merger agreement", i)
		}
		year := int64(2023 + i%2)
		tbl.MustInsert(relation.Row{int64(i), year, body})
	}
	ops := []semop.Op{
		semop.SemFilter{TextCol: "body", Criterion: "contains:merger", EstSelectivity: 0.33},
		semop.ClassicalFilter{
			Col:            "year",
			Pred:           func(v relation.Value) bool { return v == int64(2024) },
			EstSelectivity: 0.5,
		},
	}

	t := metrics.NewTable("E2: semantic-operator plan optimization",
		"plan", "rows out", "LLM calls", "cost ($)", "vs naive")
	naive := semop.NewExecutor(llm.NewSimulator(llm.LargeModel(), 21))
	naiveOut, err := semop.NewPipeline(ops...).Run(naive, tbl)
	if err != nil {
		return nil, err
	}
	t.AddRowf("naive (sem first, large)", naiveOut.Len(), naive.Calls, naive.CostUSD, "1.00x")

	opt := semop.NewExecutor(llm.NewSimulator(llm.LargeModel(), 21))
	optOut, err := semop.NewPipeline(semop.Optimize(ops)...).Run(opt, tbl)
	if err != nil {
		return nil, err
	}
	t.AddRowf("reordered (classical first)", optOut.Len(), opt.Calls, opt.CostUSD,
		metrics.Ratio(naive.CostUSD, opt.CostUSD))

	cascade := semop.NewExecutor(llm.NewCascade(
		llm.NewSimulator(llm.SmallModel(), 21),
		llm.NewSimulator(llm.LargeModel(), 21), 0.3))
	cascadeOut, err := semop.NewPipeline(semop.Optimize(ops)...).Run(cascade, tbl)
	if err != nil {
		return nil, err
	}
	t.AddRowf("reordered + cascade", cascadeOut.Len(), cascade.Calls, cascade.CostUSD,
		metrics.Ratio(naive.CostUSD, cascade.CostUSD))

	cached := semop.NewExecutor(llm.NewCache(llm.NewSimulator(llm.LargeModel(), 21)))
	// Duplicate the table rows to expose cache reuse.
	doubled := &relation.Table{Name: tbl.Name, Schema: tbl.Schema, Rows: append(append([]relation.Row{}, tbl.Rows...), tbl.Rows...)}
	cachedOut, err := semop.NewPipeline(semop.Optimize(ops)...).Run(cached, doubled)
	if err != nil {
		return nil, err
	}
	t.AddRowf("reordered + cache (2x rows)", cachedOut.Len(), cached.Calls, cached.CostUSD,
		metrics.Ratio(2*naive.CostUSD, cached.CostUSD))
	return t, nil
}

func runE3() (*metrics.Table, error) {
	rs, err := corpus.GenerateRecords(31, 400, []string{"name", "owner", "status", "category"}, 0.05)
	if err != nil {
		return nil, err
	}
	client := llm.NewSimulator(llm.LargeModel(), 31)
	t := metrics.NewTable("E3: schema extraction cost vs quality",
		"method", "accuracy", "LLM calls", "cost ($)", "calls vs direct")
	direct, err := extract.Direct{Client: client}.Extract(rs)
	if err != nil {
		return nil, err
	}
	t.AddRowf("direct (LLM per record)", extract.Accuracy(rs, direct), direct.LLMCalls, direct.CostUSD, "1.00x")
	for _, sample := range []int{5, 10, 25} {
		evap, err := extract.Evaporate{Client: client, SampleSize: sample}.Extract(rs)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("evaporate (sample=%d)", sample),
			extract.Accuracy(rs, evap), evap.LLMCalls, evap.CostUSD,
			fmt.Sprintf("%.3fx", float64(evap.LLMCalls)/float64(direct.LLMCalls)))
	}
	return t, nil
}

func runE4() (*metrics.Table, error) {
	c, err := experimentCorpus(1004)
	if err != nil {
		return nil, err
	}
	l, err := lake.BuildFromCorpus(c)
	if err != nil {
		return nil, err
	}
	e := embed.NewHashEmbedder(embed.DefaultDim)
	t := metrics.NewTable("E4: cross-modal schema linking",
		"method", "precision", "recall", "F1")
	lex, err := l.LinkLexical(1)
	if err != nil {
		return nil, err
	}
	p, r := l.LinkingQuality(lex)
	t.AddRowf("lexical Jaccard", p, r, metrics.F1(p, r))
	emb, err := l.LinkEmbedding(e, 1)
	if err != nil {
		return nil, err
	}
	p, r = l.LinkingQuality(emb)
	t.AddRowf("unified embedding (AOP)", p, r, metrics.F1(p, r))
	return t, nil
}

func runE5() (*metrics.Table, error) {
	c, err := experimentCorpus(1005)
	if err != nil {
		return nil, err
	}
	l, err := lake.BuildFromCorpus(c)
	if err != nil {
		return nil, err
	}
	planner, err := lake.NewPlanner(groundingClient(51), l, embed.NewHashEmbedder(embed.DefaultDim))
	if err != nil {
		return nil, err
	}
	queries := lake.GenerateQueries(l, c, 30, 55)
	type tally struct{ right, total int }
	single := map[lake.QueryKind]*tally{}
	planned := map[lake.QueryKind]*tally{}
	for _, kind := range []lake.QueryKind{lake.KindLookup, lake.KindTwoHop, lake.KindCount} {
		single[kind] = &tally{}
		planned[kind] = &tally{}
	}
	for _, q := range queries {
		single[q.Kind].total++
		planned[q.Kind].total++
		if got, err := planner.SingleShot(q.Text); err == nil && got == q.Gold {
			single[q.Kind].right++
		}
		if got, _, err := planner.Answer(q.Text); err == nil && got == q.Gold {
			planned[q.Kind].right++
		}
	}
	t := metrics.NewTable("E5: lake query answering (accuracy)",
		"query kind", "n", "single-shot LLM", "decomposed plan")
	for _, kind := range []lake.QueryKind{lake.KindLookup, lake.KindTwoHop, lake.KindCount} {
		s, p := single[kind], planned[kind]
		t.AddRowf(string(kind), s.total,
			float64(s.right)/float64(max(s.total, 1)),
			float64(p.right)/float64(max(p.total, 1)))
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
