package experiments

import "testing"

// TestAllExperimentsRun executes every registered experiment once and
// verifies it produces a non-empty table. Individual claims are verified
// by the owning packages' tests; this guards the harness wiring.
func TestAllExperimentsRun(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Fatalf("registered experiments = %d, want 26: %v", len(ids), ids)
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			if Title(id) == "" {
				t.Error("missing title")
			}
			out, err := Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, tbl := range out.Tables {
				if tbl.String() == "" {
					t.Fatalf("%s produced an empty table", id)
				}
				t.Logf("\n%s", tbl.String())
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E999"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if expNum(ids[i-1]) >= expNum(ids[i]) {
			t.Fatalf("ids not ordered: %v", ids)
		}
	}
}
