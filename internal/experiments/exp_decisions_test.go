package experiments

import (
	"testing"

	"dataai/internal/obs"
)

// TestE26RegretConcentration pins the E26 acceptance claims: under the
// severe plan a small fraction of decisions carries most of the regret
// (the top-10% share dominates), and crash-reroute decisions carry a
// regret share under severe faults that the fault-free plan cannot have
// (it makes no reroute decisions at all). Deterministic simulation, so
// these are exact checks.
func TestE26RegretConcentration(t *testing.T) {
	byPlan := map[string]float64{} // plan → reroute share of total regret
	for _, pc := range e26Plans {
		rep, err := e26Regret(pc.plan, 3)
		if err != nil {
			t.Fatal(err)
		}
		reg := rep.Regret
		if reg == nil || reg.Decisions == 0 {
			t.Fatalf("%s plan: no decisions priced", pc.name)
		}
		if reg.Replays != reg.Decisions {
			t.Fatalf("%s plan: %d replays for %d decisions at rank 2",
				pc.name, reg.Replays, reg.Decisions)
		}
		reroutes := 0
		for _, dr := range reg.Top {
			if dr.Decision.Kind == obs.DecisionReroute {
				reroutes++
			}
		}
		share := 0.0
		if reg.TotalRegretMS > 0 {
			share = reg.RerouteRegretMS / reg.TotalRegretMS
		}
		byPlan[pc.name] = share
		if pc.name == "none" && share != 0 {
			t.Errorf("fault-free plan has reroute regret share %.3f", share)
		}
		if pc.name == "severe" {
			// Concentration: the top decile of decisions carries several
			// times its proportional (0.10) share of total regret.
			if reg.TopShare <= 0.3 {
				t.Errorf("severe plan: top-10%% of decisions carries only %.3f of regret — expected concentration", reg.TopShare)
			}
			if share == 0 {
				t.Error("severe plan: reroute decisions carry no regret despite crashes")
			}
		}
	}
	if byPlan["severe"] <= byPlan["none"] {
		t.Errorf("reroute regret share did not grow with fault severity: %v", byPlan)
	}
}

// TestE26WorkerCountInvariance pins the replay determinism contract: the
// E26 tables rendered with one replay worker are byte-identical to the
// same tables rendered with eight.
func TestE26WorkerCountInvariance(t *testing.T) {
	serial, err := runE26Workers(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runE26Workers(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Tables) != len(parallel.Tables) {
		t.Fatalf("table count differs: %d vs %d", len(serial.Tables), len(parallel.Tables))
	}
	for i := range serial.Tables {
		a, b := serial.Tables[i].String(), parallel.Tables[i].String()
		if a != b {
			t.Errorf("table %d differs between 1 and 8 replay workers:\n--- serial ---\n%s\n--- parallel ---\n%s", i, a, b)
		}
	}
}
