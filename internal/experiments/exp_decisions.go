package experiments

import (
	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/serving"
)

func init() {
	registerX("E26", "Pricing routing decisions by counterfactual replay (§2.3.2)", runE26)
}

// e26Plans are the E23 fault-plan shapes the regret study prices the
// breaker-aware router's decisions under. The plan seed differs from
// E23's (2304, not 2303) because E26 runs a 4-second trace — a quarter
// of E23's — and 2303's medium-plan draws all land past it; with 2304
// the medium plan fires one mid-run crash and the severe plan three, so
// the regret gradient none → medium → severe is populated at every
// level. Fresh plan values per run keep the replay arms independent.
var e26Plans = []struct {
	name string
	plan func() *serving.FaultPlan
}{
	{"none", func() *serving.FaultPlan { return nil }},
	{"medium", func() *serving.FaultPlan { return serving.MediumFaultPlan(2304) }},
	{"severe", func() *serving.FaultPlan { return serving.SevereFaultPlan(2304) }},
}

func runE26() (*Output, error) { return runE26Workers(3) }

// e26Regret prices every routing decision of the E26 configuration under
// one fault plan: a baseline run records the decision log, then each
// decision is replayed forced to its first runner-up while everything
// else is re-decided live (serving.ReplayRegret).
func e26Regret(plan func() *serving.FaultPlan, workers int) (*serving.RoutedReport, error) {
	gpu := serving.DefaultGPU()
	reqs, err := decisionWorkload()
	if err != nil {
		return nil, err
	}
	run := func(dl *obs.DecisionLog, force *serving.ForcedChoice) (*serving.RoutedReport, error) {
		return serving.RunRoutedFaults(gpu, reqs, 4, serving.BreakerAware,
			serving.ContinuousOpts{ChunkTokens: 256, Decisions: dl, Force: force}, plan())
	}
	return serving.ReplayRegret(run, serving.ReplayConfig{
		MaxRank: 2, Workers: workers, TTFTSLOms: 1500, TBTSLOms: 25, TopN: 5})
}

// runE26Workers runs the E26 replay batches on the given worker count.
// ReplayRegret commits every forced run into its own slot and aggregates
// serially, so the rendered tables are identical at every worker count —
// the invariance test pins it.
func runE26Workers(workers int) (*Output, error) {
	t := metrics.NewTable(
		"E26: decision regret by counterfactual replay (breaker-aware, 4 instances, 240 reqs @ 60/s, rank-2 forcing, SLO TTFT<=1500ms TBT<=25ms)",
		"faults", "decisions", "replays", "total regret (ms)", "reroute share",
		"goodput regret", "improvable", "top-10% share")
	top := metrics.NewTable("E26 most expensive decisions per plan (vs first runner-up)",
		"faults", "seq", "t (ms)", "kind", "req", "chosen", "regret (ms)", "goodput Δ")
	for _, pc := range e26Plans {
		rep, err := e26Regret(pc.plan, workers)
		if err != nil {
			return nil, err
		}
		reg := rep.Regret
		rerouteShare := 0.0
		if reg.TotalRegretMS > 0 {
			rerouteShare = reg.RerouteRegretMS / reg.TotalRegretMS
		}
		t.AddRowf(pc.name, reg.Decisions, reg.Replays, reg.TotalRegretMS, rerouteShare,
			reg.TotalGoodputRegret, reg.Improvable, reg.TopShare)
		for _, dr := range reg.Top {
			d := dr.Decision
			top.AddRowf(pc.name, d.Seq, d.AtMS, d.Kind, d.ReqID, d.Chosen,
				dr.RegretMS, dr.GoodputRegret)
		}
	}
	return &Output{Tables: []*metrics.Table{t, top}}, nil
}
