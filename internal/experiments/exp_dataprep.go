package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dataai/internal/corpus"
	"dataai/internal/dataprep"
	"dataai/internal/embed"
	"dataai/internal/llm/ngram"
	"dataai/internal/metrics"
)

func init() {
	register("E6", "Domain mixture optimization (§2.3.2 Data Discovery)", runE6)
	register("E7", "Data selection at budget (§2.3.2 Data Selection)", runE7)
	register("E8", "Cleaning and deduplication (§2.3.2 Data Cleaning)", runE8)
}

func trainPPL(train, heldOut []string) (float64, error) {
	m := ngram.New()
	m.TrainAll(train)
	return m.CorpusPerplexity(heldOut)
}

func runE6() (*metrics.Table, error) {
	c, err := experimentCorpus(1006)
	if err != nil {
		return nil, err
	}
	pool := dataprep.DomainPool{}
	var target, heldOut []string
	finSeen := 0
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		if d.Domain == "finance" && finSeen < 50 {
			if finSeen < 20 {
				target = append(target, d.Text)
			} else {
				heldOut = append(heldOut, d.Text)
			}
			finSeen++
			continue
		}
		pool[d.Domain] = append(pool[d.Domain], d.Text)
	}
	const budget = 100
	t := metrics.NewTable("E6: domain mixture vs target-domain perplexity (budget 100 docs)",
		"mixture", "finance weight", "target ppl")
	addArm := func(name string, mix dataprep.Mixture) error {
		ppl, err := dataprep.EvaluateMixture(pool, mix, heldOut, budget, 9)
		if err != nil {
			return err
		}
		t.AddRowf(name, mix["finance"], ppl)
		return nil
	}
	if err := addArm("uniform", dataprep.UniformMixture(pool)); err != nil {
		return nil, err
	}
	if err := addArm("proportional (heuristic)", dataprep.ProportionalMixture(pool)); err != nil {
		return nil, err
	}
	imp, err := dataprep.ImportanceMixture(pool, target)
	if err != nil {
		return nil, err
	}
	if err := addArm("importance resampling (DSIR)", imp); err != nil {
		return nil, err
	}
	grad, err := dataprep.GradientMixture(pool, target, 1)
	if err != nil {
		return nil, err
	}
	if err := addArm("gradient reweighting (DoGE)", grad); err != nil {
		return nil, err
	}
	return t, nil
}

func runE7() (*metrics.Table, error) {
	c, err := experimentCorpus(1007)
	if err != nil {
		return nil, err
	}
	var pool, target, heldOut []string
	finSeen := 0
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		if d.Domain == "finance" {
			switch {
			case finSeen < 20:
				target = append(target, d.Text)
			case finSeen < 50:
				heldOut = append(heldOut, d.Text)
			default:
				pool = append(pool, d.Text)
			}
			finSeen++
			continue
		}
		pool = append(pool, d.Text)
	}
	e := embed.NewHashEmbedder(embed.DefaultDim)
	selectors := []dataprep.Selector{
		dataprep.RandomSelector{Seed: 7},
		dataprep.PerplexitySelector{Target: target},
		dataprep.InfluenceSelector{Embedder: e, Target: target},
		dataprep.CoresetSelector{Embedder: e, Seed: 7},
	}
	t := metrics.NewTable("E7: data selection — target perplexity by budget",
		"selector", "budget 40", "budget 80", "budget 160")
	for _, s := range selectors {
		row := []interface{}{s.Name()}
		for _, budget := range []int{40, 80, 160} {
			idx, err := s.Select(pool, budget)
			if err != nil {
				return nil, fmt.Errorf("E7 %s: %w", s.Name(), err)
			}
			ppl, err := trainPPL(dataprep.Pick(pool, idx), heldOut)
			if err != nil {
				return nil, err
			}
			row = append(row, ppl)
		}
		t.AddRowf(row...)
	}
	return t, nil
}

func runE8() (*metrics.Table, error) {
	cfg := corpus.DefaultConfig(1008)
	cfg.DuplicateFraction = 0.3
	cfg.NoisyFraction = 0.08
	cfg.ToxicFraction = 0.07
	cfg.BoilerplateFraction = 0.08
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	c := gen.Generate()
	perm := rand.New(rand.NewSource(88)).Perm(len(c.Docs))
	var heldOut, raw []string
	heldOutIDs := map[string]bool{}
	cleanSeen := 0
	for _, pi := range perm {
		d := c.Docs[pi]
		if d.Kind == corpus.Clean && cleanSeen < 60 {
			heldOut = append(heldOut, d.Text)
			heldOutIDs[d.ID] = true
			cleanSeen++
		}
	}
	for _, pi := range perm {
		d := c.Docs[pi]
		if heldOutIDs[d.ID] || (d.Kind == corpus.Duplicate && heldOutIDs[d.DupOf]) {
			continue
		}
		raw = append(raw, d.Text)
	}

	filters := []dataprep.Filter{
		dataprep.DefaultHeuristicFilter(),
		dataprep.ToxicityFilter{Lexicon: c.ToxicLexicon},
	}
	filtered, _ := dataprep.ApplyFilters(raw, filters...)
	mh, err := dataprep.NewMinHasher(128, 32, 3, 8)
	if err != nil {
		return nil, err
	}
	deduped, _ := mh.Dedup(filtered, 0.6)

	budget := len(deduped)
	toxicLeak := func(docs []string) int {
		leaks := 0
		for _, d := range docs {
			for _, w := range c.ToxicLexicon {
				if strings.Contains(d, w) {
					leaks++
					break
				}
			}
		}
		return leaks
	}
	t := metrics.NewTable(fmt.Sprintf("E8: cleaning pipeline (matched %d-doc training budget)", budget),
		"pipeline", "docs", "toxic docs", "held-out ppl")
	arms := []struct {
		name string
		docs []string
	}{
		{"raw", raw[:min(budget, len(raw))]},
		{"filtered", filtered[:min(budget, len(filtered))]},
		{"filtered+deduped", deduped},
	}
	for _, a := range arms {
		ppl, err := trainPPL(a.docs, heldOut)
		if err != nil {
			return nil, err
		}
		t.AddRowf(a.name, len(a.docs), toxicLeak(a.docs), ppl)
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
