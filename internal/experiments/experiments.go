// Package experiments implements the reproduction suite: one runnable
// experiment per quantitative claim the tutorial makes in prose (the
// paper has no evaluation section of its own — see DESIGN.md). Each
// experiment builds its workload, runs the baseline and the surveyed
// technique, and renders a table. `cmd/benchall` prints every table;
// bench_test.go wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"

	"dataai/internal/metrics"
	"dataai/internal/obs"
)

// Runner produces one experiment's table.
type Runner func() (*metrics.Table, error)

// Output is everything one experiment produced: one or more tables
// (rendered in order by cmd/benchall) and, for experiments that record
// a request timeline, the tracer whose Chrome-trace export benchall's
// -trace-dir flag writes.
type Output struct {
	Tables []*metrics.Table
	Trace  *obs.Tracer
}

// RunnerX is the extended runner shape for experiments with multiple
// tables or a trace; single-table experiments keep the plain Runner.
type RunnerX func() (*Output, error)

// registry maps experiment IDs to runners; populated by init functions
// in the per-area files.
var registry = map[string]entry{}

type entry struct {
	runner RunnerX
	title  string
}

func register(id, title string, r Runner) {
	registerX(id, title, func() (*Output, error) {
		tbl, err := r()
		if err != nil {
			return nil, err
		}
		return &Output{Tables: []*metrics.Table{tbl}}, nil
	})
}

func registerX(id, title string, r RunnerX) {
	registry[id] = entry{runner: r, title: title}
}

// IDs lists registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric ordering: E2 before E10.
		return expNum(out[i]) < expNum(out[j])
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Title returns the experiment's one-line description.
func Title(id string) string { return registry[id].title }

// Known reports whether id names a registered experiment, letting
// callers validate a whole id list before running anything.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// Run executes one experiment. The returned Output always carries at
// least one table on success.
func Run(id string) (*Output, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
	out, err := e.runner()
	if err != nil {
		return nil, err
	}
	if out == nil || len(out.Tables) == 0 {
		return nil, fmt.Errorf("experiments: %s produced no table", id)
	}
	return out, nil
}
