// Package corpus generates synthetic text corpora with known ground truth.
//
// The paper's experiments need web-scale corpora (The Pile, C4) and
// production document collections; neither is available offline, and more
// importantly neither carries the *labels* needed to score data-preparation
// or analytics quality. This generator substitutes corpora where everything
// is known by construction:
//
//   - Facts: (subject, relation, object) triples per domain, rendered into
//     natural sentences. They are the retrieval ground truth for RAG (E1)
//     and the knowledge base of the simulated LLM.
//   - QA pairs: single-hop and multi-hop questions whose answers and
//     supporting documents are recorded.
//   - Quality labels: documents are clean, noisy (gibberish-heavy),
//     boilerplate, or toxic (containing lexicon markers), so filtering
//     precision/recall is measurable (E8).
//   - Duplicates: exact and near duplicates with provenance, so dedup
//     recall is measurable (E8).
//   - Domains: every document belongs to a domain, so mixture optimization
//     has a target to hit (E6).
//
// Generation is fully deterministic for a given Config.Seed.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind labels the quality class of a generated document.
type Kind int

// Document quality classes.
const (
	Clean Kind = iota
	Noisy
	Boilerplate
	Toxic
	Duplicate
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Clean:
		return "clean"
	case Noisy:
		return "noisy"
	case Boilerplate:
		return "boilerplate"
	case Toxic:
		return "toxic"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fact is a (subject, relation, object) triple attached to a domain.
type Fact struct {
	Subject  string
	Relation string
	Object   string
	Domain   string
}

// Sentence renders the fact as a natural-language sentence.
func (f Fact) Sentence() string {
	return fmt.Sprintf("The %s of %s is %s.", f.Relation, f.Subject, f.Object)
}

// Doc is one generated document.
type Doc struct {
	ID     string
	Domain string
	Text   string
	Kind   Kind
	// DupOf holds the original document's ID when Kind == Duplicate.
	DupOf string
	// Facts lists the triples stated inside this document.
	Facts []Fact
}

// QA is a question with its gold answer and supporting documents.
type QA struct {
	Question string
	Answer   string
	// Hops is 1 for direct lookups, 2 for chained questions.
	Hops int
	// SupportDocs lists IDs of documents that state the needed facts.
	SupportDocs []string
	Domain      string
}

// Corpus is the full generated collection.
type Corpus struct {
	Docs  []Doc
	Facts []Fact
	QAs   []QA
	// ToxicLexicon lists the marker tokens injected into Toxic docs;
	// cleaning filters receive it as domain knowledge.
	ToxicLexicon []string
	// Domains lists the domain names used, in generation order.
	Domains []string
}

// Config controls corpus generation. The zero value is not useful;
// call DefaultConfig and adjust.
type Config struct {
	Seed int64
	// Domains to generate, with relative document weights.
	Domains []DomainConfig
	// EntitiesPerDomain is the number of distinct subjects per domain.
	EntitiesPerDomain int
	// DocsPerDomainWeight scales total documents: a domain with weight w
	// gets round(w * DocsPerDomainWeight) documents.
	DocsPerDomainWeight int
	// DuplicateFraction of documents are near/exact duplicates of
	// earlier documents (0..1).
	DuplicateFraction float64
	// NoisyFraction of documents are gibberish-heavy (0..1).
	NoisyFraction float64
	// ToxicFraction of documents contain toxic markers (0..1).
	ToxicFraction float64
	// BoilerplateFraction of documents are repeated boilerplate (0..1).
	BoilerplateFraction float64
	// SentencesPerDoc is the mean document length in sentences.
	SentencesPerDoc int
	// QACount is the number of single-hop QA pairs to emit.
	QACount int
	// MultiHopQACount is the number of 2-hop QA pairs to emit.
	MultiHopQACount int
}

// DomainConfig names a domain and weights its share of the corpus.
type DomainConfig struct {
	Name   string
	Weight int
}

// DefaultConfig returns a moderate four-domain configuration suitable for
// unit tests and examples.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Domains: []DomainConfig{
			{Name: "finance", Weight: 4},
			{Name: "medicine", Weight: 3},
			{Name: "technology", Weight: 2},
			{Name: "sports", Weight: 1},
		},
		EntitiesPerDomain:   40,
		DocsPerDomainWeight: 60,
		DuplicateFraction:   0.1,
		NoisyFraction:       0.05,
		ToxicFraction:       0.05,
		BoilerplateFraction: 0.05,
		SentencesPerDoc:     6,
		QACount:             80,
		MultiHopQACount:     20,
	}
}

// relations available per domain; objects are synthesized values.
var domainRelations = map[string][]string{
	"finance":    {"ceo", "revenue", "headquarters", "founder", "ticker", "sector"},
	"medicine":   {"treatment", "dosage", "symptom", "discoverer", "pathogen", "vaccine"},
	"technology": {"inventor", "language", "release year", "maintainer", "license", "platform"},
	"sports":     {"coach", "stadium", "captain", "league", "record", "mascot"},
}

var genericRelations = []string{"origin", "category", "owner", "location", "status", "rank"}

// Background filler vocabulary per domain, used for distractor sentences.
var domainFiller = map[string][]string{
	"finance":    {"market", "shares", "dividend", "quarter", "earnings", "portfolio", "merger", "capital", "asset", "equity", "bond", "analyst"},
	"medicine":   {"clinical", "trial", "patient", "diagnosis", "therapy", "chronic", "acute", "protein", "cell", "immune", "receptor", "gene"},
	"technology": {"compiler", "kernel", "protocol", "latency", "throughput", "cluster", "cache", "runtime", "module", "framework", "sensor", "network"},
	"sports":     {"season", "championship", "tournament", "transfer", "training", "defense", "offense", "score", "referee", "stadium", "playoff", "medal"},
}

var genericFiller = []string{"report", "study", "analysis", "review", "summary", "update", "overview", "context", "detail", "note", "trend", "signal"}

var toxicLexicon = []string{"grubflark", "snarkvile", "mudgehex", "vranklot", "pestroil", "quagspit"}

var boilerplateText = "subscribe to our newsletter for the latest updates . all rights reserved . terms and conditions apply . click here to read more . follow us on social media ."

// syllables used to synthesize entity names deterministically.
var nameSyllables = []string{"zor", "vex", "lum", "tar", "quin", "bel", "dra", "fen", "gal", "hax", "mir", "nol", "pex", "rav", "syl", "tob", "ul", "wix", "yor", "kel"}

var valueSyllables = []string{"an", "or", "el", "im", "os", "ur", "et", "ax", "on", "ir"}

// Generator produces corpora from a Config.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator validates cfg and returns a Generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if len(cfg.Domains) == 0 {
		return nil, fmt.Errorf("corpus: config needs at least one domain")
	}
	if cfg.EntitiesPerDomain < 1 {
		return nil, fmt.Errorf("corpus: EntitiesPerDomain must be >= 1, got %d", cfg.EntitiesPerDomain)
	}
	if cfg.DocsPerDomainWeight < 1 {
		return nil, fmt.Errorf("corpus: DocsPerDomainWeight must be >= 1, got %d", cfg.DocsPerDomainWeight)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DuplicateFraction", cfg.DuplicateFraction},
		{"NoisyFraction", cfg.NoisyFraction},
		{"ToxicFraction", cfg.ToxicFraction},
		{"BoilerplateFraction", cfg.BoilerplateFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return nil, fmt.Errorf("corpus: %s out of range: %v", f.name, f.v)
		}
	}
	if cfg.SentencesPerDoc < 1 {
		cfg.SentencesPerDoc = 1
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Generate builds the corpus.
func (g *Generator) Generate() *Corpus {
	c := &Corpus{ToxicLexicon: append([]string(nil), toxicLexicon...)}
	factsByDomain := make(map[string][]Fact)
	factDoc := make(map[Fact]string) // fact -> first doc stating it

	for _, d := range g.cfg.Domains {
		c.Domains = append(c.Domains, d.Name)
		facts := g.genFacts(d.Name)
		factsByDomain[d.Name] = facts
		c.Facts = append(c.Facts, facts...)
	}

	docID := 0
	nextID := func() string {
		id := fmt.Sprintf("doc-%05d", docID)
		docID++
		return id
	}

	for _, d := range g.cfg.Domains {
		nDocs := d.Weight * g.cfg.DocsPerDomainWeight
		facts := factsByDomain[d.Name]
		var domainDocs []Doc // originals generated for this domain so far
		for i := 0; i < nDocs; i++ {
			roll := g.rng.Float64()
			var doc Doc
			switch {
			case roll < g.cfg.DuplicateFraction && len(domainDocs) > 0:
				orig := domainDocs[g.rng.Intn(len(domainDocs))]
				doc = g.duplicateOf(orig, nextID())
			case roll < g.cfg.DuplicateFraction+g.cfg.NoisyFraction:
				doc = g.noisyDoc(d.Name, nextID())
			case roll < g.cfg.DuplicateFraction+g.cfg.NoisyFraction+g.cfg.ToxicFraction:
				doc = g.toxicDoc(d.Name, facts, nextID())
			case roll < g.cfg.DuplicateFraction+g.cfg.NoisyFraction+g.cfg.ToxicFraction+g.cfg.BoilerplateFraction:
				doc = Doc{ID: nextID(), Domain: d.Name, Text: boilerplateText, Kind: Boilerplate}
			default:
				doc = g.cleanDoc(d.Name, facts, nextID())
			}
			for _, f := range doc.Facts {
				if _, ok := factDoc[f]; !ok {
					factDoc[f] = doc.ID
				}
			}
			if doc.Kind != Duplicate {
				domainDocs = append(domainDocs, doc)
			}
			c.Docs = append(c.Docs, doc)
		}
	}

	g.genQAs(c, factDoc)
	return c
}

// genFacts creates EntitiesPerDomain subjects, each with 2-4 facts.
func (g *Generator) genFacts(domain string) []Fact {
	rels := domainRelations[domain]
	if rels == nil {
		rels = genericRelations
	}
	var facts []Fact
	for e := 0; e < g.cfg.EntitiesPerDomain; e++ {
		subject := g.entityName(domain, e)
		nf := 2 + g.rng.Intn(3)
		perm := g.rng.Perm(len(rels))
		for r := 0; r < nf && r < len(rels); r++ {
			facts = append(facts, Fact{
				Subject:  subject,
				Relation: rels[perm[r]],
				Object:   g.valueName(),
				Domain:   domain,
			})
		}
	}
	return facts
}

func (g *Generator) entityName(domain string, idx int) string {
	// Deterministic per (domain, idx): seed a local generator so names
	// are stable regardless of rng consumption order.
	local := rand.New(rand.NewSource(g.cfg.Seed ^ int64(idx)<<8 ^ int64(len(domain))))
	n := 2 + local.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(nameSyllables[local.Intn(len(nameSyllables))])
	}
	return strings.Title(b.String()) + " " + strings.Title(domain[:1]) + domain[1:2] //nolint:staticcheck // ASCII domains only
}

func (g *Generator) valueName() string {
	n := 2 + g.rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(valueSyllables[g.rng.Intn(len(valueSyllables))])
	}
	return b.String()
}

func (g *Generator) fillerSentence(domain string) string {
	words := domainFiller[domain]
	if words == nil {
		words = genericFiller
	}
	n := 5 + g.rng.Intn(6)
	parts := make([]string, n)
	for i := range parts {
		if g.rng.Float64() < 0.3 {
			parts[i] = genericFiller[g.rng.Intn(len(genericFiller))]
		} else {
			parts[i] = words[g.rng.Intn(len(words))]
		}
	}
	return strings.Join(parts, " ") + " ."
}

// cleanDoc states 1-3 facts surrounded by domain filler.
func (g *Generator) cleanDoc(domain string, facts []Fact, id string) Doc {
	nf := 1 + g.rng.Intn(3)
	var stated []Fact
	var sentences []string
	for i := 0; i < nf && len(facts) > 0; i++ {
		f := facts[g.rng.Intn(len(facts))]
		stated = append(stated, f)
		sentences = append(sentences, f.Sentence())
	}
	for len(sentences) < g.cfg.SentencesPerDoc {
		sentences = append(sentences, g.fillerSentence(domain))
	}
	g.shuffleStrings(sentences)
	return Doc{ID: id, Domain: domain, Text: strings.Join(sentences, " "), Kind: Clean, Facts: stated}
}

func (g *Generator) noisyDoc(domain, id string) Doc {
	n := g.cfg.SentencesPerDoc * 8
	parts := make([]string, n)
	for i := range parts {
		// Gibberish: random consonant strings that no filter vocabulary
		// contains, with high repetition.
		parts[i] = fmt.Sprintf("zzq%c%c", 'a'+byte(g.rng.Intn(26)), 'a'+byte(g.rng.Intn(26)))
	}
	return Doc{ID: id, Domain: domain, Text: strings.Join(parts, " "), Kind: Noisy}
}

func (g *Generator) toxicDoc(domain string, facts []Fact, id string) Doc {
	base := g.cleanDoc(domain, facts, id)
	toks := strings.Fields(base.Text)
	nToxic := 1 + g.rng.Intn(3)
	for i := 0; i < nToxic; i++ {
		w := toxicLexicon[g.rng.Intn(len(toxicLexicon))]
		pos := g.rng.Intn(len(toks) + 1)
		toks = append(toks[:pos], append([]string{w}, toks[pos:]...)...)
	}
	return Doc{ID: id, Domain: domain, Text: strings.Join(toks, " "), Kind: Toxic, Facts: base.Facts}
}

// duplicateOf produces an exact copy or a near-duplicate (a few token
// substitutions) of orig.
func (g *Generator) duplicateOf(orig Doc, id string) Doc {
	text := orig.Text
	if g.rng.Float64() < 0.5 { // near duplicate: perturb ~3% of tokens
		toks := strings.Fields(text)
		n := len(toks)/33 + 1
		for i := 0; i < n && len(toks) > 0; i++ {
			toks[g.rng.Intn(len(toks))] = genericFiller[g.rng.Intn(len(genericFiller))]
		}
		text = strings.Join(toks, " ")
	}
	src := orig.ID
	if orig.Kind == Duplicate && orig.DupOf != "" {
		src = orig.DupOf // chain duplicates back to the root
	}
	return Doc{ID: id, Domain: orig.Domain, Text: text, Kind: Duplicate, DupOf: src, Facts: orig.Facts}
}

func (g *Generator) shuffleStrings(s []string) {
	g.rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// genQAs emits single-hop and two-hop QA pairs for facts that appear in
// at least one document.
func (g *Generator) genQAs(c *Corpus, factDoc map[Fact]string) {
	var answerable []Fact
	for _, f := range c.Facts {
		if _, ok := factDoc[f]; ok {
			answerable = append(answerable, f)
		}
	}
	if len(answerable) == 0 {
		return
	}
	for i := 0; i < g.cfg.QACount; i++ {
		f := answerable[g.rng.Intn(len(answerable))]
		c.QAs = append(c.QAs, QA{
			Question:    fmt.Sprintf("What is the %s of %s?", f.Relation, f.Subject),
			Answer:      f.Object,
			Hops:        1,
			SupportDocs: []string{factDoc[f]},
			Domain:      f.Domain,
		})
	}
	// Two-hop: find pairs f1=(s, r1, mid) and f2 whose subject contains
	// mid is unlikely with synthesized values, so instead chain through
	// shared subjects: "What is the r2 of the entity whose r1 is x?"
	bySubject := make(map[string][]Fact)
	for _, f := range answerable {
		bySubject[f.Subject] = append(bySubject[f.Subject], f)
	}
	var subjects []string
	for s, fs := range bySubject {
		if len(fs) >= 2 {
			subjects = append(subjects, s)
		}
	}
	sort.Strings(subjects) // map iteration order must not leak into output
	for i := 0; i < g.cfg.MultiHopQACount && len(subjects) > 0; i++ {
		s := subjects[g.rng.Intn(len(subjects))]
		fs := bySubject[s]
		f1 := fs[g.rng.Intn(len(fs))]
		f2 := fs[g.rng.Intn(len(fs))]
		if f1 == f2 {
			continue
		}
		c.QAs = append(c.QAs, QA{
			Question:    fmt.Sprintf("What is the %s of the entity whose %s is %s?", f2.Relation, f1.Relation, f1.Object),
			Answer:      f2.Object,
			Hops:        2,
			SupportDocs: []string{factDoc[f1], factDoc[f2]},
			Domain:      f1.Domain,
		})
	}
}

// DocByID returns the document with the given id.
func (c *Corpus) DocByID(id string) (Doc, bool) {
	for _, d := range c.Docs {
		if d.ID == id {
			return d, true
		}
	}
	return Doc{}, false
}

// CountKind returns the number of documents of kind k.
func (c *Corpus) CountKind(k Kind) int {
	n := 0
	for _, d := range c.Docs {
		if d.Kind == k {
			n++
		}
	}
	return n
}

// DomainDocs returns the documents belonging to domain.
func (c *Corpus) DomainDocs(domain string) []Doc {
	var out []Doc
	for _, d := range c.Docs {
		if d.Domain == domain {
			out = append(out, d)
		}
	}
	return out
}

// Texts returns all document texts in order.
func (c *Corpus) Texts() []string {
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Text
	}
	return out
}
