package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Record is a semi-structured document describing one entity, paired with
// its gold attribute map. It is the workload for the schema-extraction
// experiment (E3, Evaporate): extractors must recover Gold from Text.
type Record struct {
	ID   string
	Text string
	// Gold maps attribute name -> true value.
	Gold map[string]string
	// Format identifies which of the rendering templates was used,
	// so tests can assert per-format extraction behaviour.
	Format int
}

// RecordSet is a collection of records sharing one schema.
type RecordSet struct {
	Attributes []string
	Records    []Record
}

// NumRecordFormats is how many distinct textual renderings GenerateRecords
// uses. Evaporate's premise is that a handful of layout conventions cover
// a semi-structured collection; rule-based extractors synthesized from a
// sample then generalize.
const NumRecordFormats = 3

// GenerateRecords produces n semi-structured records over the given
// attributes. Each record renders its attributes in one of three formats:
//
//	0: "attr: value" lines
//	1: "attr = value" lines with surrounding chatter
//	2: prose sentences "the attr is value"
//
// A noiseRate fraction of records get one attribute value corrupted
// relative to the gold (simulating dirty sources), which caps achievable
// extraction accuracy and exercises weak-supervision vote combination.
func GenerateRecords(seed int64, n int, attributes []string, noiseRate float64) (*RecordSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("corpus: record count must be >= 1, got %d", n)
	}
	if len(attributes) == 0 {
		return nil, fmt.Errorf("corpus: need at least one attribute")
	}
	if noiseRate < 0 || noiseRate > 1 {
		return nil, fmt.Errorf("corpus: noiseRate out of range: %v", noiseRate)
	}
	rng := rand.New(rand.NewSource(seed))
	rs := &RecordSet{Attributes: append([]string(nil), attributes...)}
	for i := 0; i < n; i++ {
		gold := make(map[string]string, len(attributes))
		for _, a := range attributes {
			gold[a] = recordValue(rng)
		}
		format := rng.Intn(NumRecordFormats)
		text := renderRecord(rng, attributes, gold, format)
		if rng.Float64() < noiseRate {
			// Corrupt one attribute in the *text* only: gold stays the
			// truth, so extraction of this record's attribute is wrong
			// no matter the method.
			a := attributes[rng.Intn(len(attributes))]
			text = strings.Replace(text, gold[a], recordValue(rng), 1)
		}
		rs.Records = append(rs.Records, Record{
			ID:     fmt.Sprintf("rec-%05d", i),
			Text:   text,
			Gold:   gold,
			Format: format,
		})
	}
	return rs, nil
}

func recordValue(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(valueSyllables[rng.Intn(len(valueSyllables))])
	}
	return b.String()
}

func renderRecord(rng *rand.Rand, attrs []string, gold map[string]string, format int) string {
	var b strings.Builder
	switch format {
	case 0:
		for _, a := range attrs {
			fmt.Fprintf(&b, "%s: %s\n", a, gold[a])
		}
	case 1:
		b.WriteString("record metadata follows\n")
		for _, a := range attrs {
			fmt.Fprintf(&b, "%s = %s\n", a, gold[a])
		}
		b.WriteString("end of record\n")
	default:
		for _, a := range attrs {
			fmt.Fprintf(&b, "The %s is %s. ", a, gold[a])
		}
		// Extra distractor sentence.
		fmt.Fprintf(&b, "This entry was reviewed %d times.", rng.Intn(10))
	}
	return b.String()
}
