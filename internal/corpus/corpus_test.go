package corpus

import (
	"strings"
	"testing"
)

func mustGen(t *testing.T, cfg Config) *Corpus {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate()
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	a := mustGen(t, cfg)
	b := mustGen(t, cfg)
	if len(a.Docs) != len(b.Docs) {
		t.Fatalf("doc counts differ: %d vs %d", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text || a.Docs[i].ID != b.Docs[i].ID {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
	if len(a.QAs) != len(b.QAs) {
		t.Fatal("QA counts differ")
	}
}

func TestSeedChangesCorpus(t *testing.T) {
	a := mustGen(t, DefaultConfig(1))
	b := mustGen(t, DefaultConfig(2))
	same := 0
	for i := range a.Docs {
		if i < len(b.Docs) && a.Docs[i].Text == b.Docs[i].Text {
			same++
		}
	}
	if same > len(a.Docs)/2 {
		t.Errorf("seeds 1 and 2 produced %d/%d identical docs", same, len(a.Docs))
	}
}

func TestDocCountsMatchWeights(t *testing.T) {
	cfg := DefaultConfig(7)
	c := mustGen(t, cfg)
	total := 0
	for _, d := range cfg.Domains {
		n := len(c.DomainDocs(d.Name))
		want := d.Weight * cfg.DocsPerDomainWeight
		if n != want {
			t.Errorf("domain %s has %d docs, want %d", d.Name, n, want)
		}
		total += n
	}
	if total != len(c.Docs) {
		t.Errorf("domain docs sum %d != total %d", total, len(c.Docs))
	}
}

func TestKindFractionsApproximate(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.DocsPerDomainWeight = 200 // larger sample for stable fractions
	c := mustGen(t, cfg)
	n := float64(len(c.Docs))
	dup := float64(c.CountKind(Duplicate)) / n
	if dup < 0.05 || dup > 0.2 {
		t.Errorf("duplicate fraction %v far from configured 0.1", dup)
	}
	tox := float64(c.CountKind(Toxic)) / n
	if tox < 0.02 || tox > 0.1 {
		t.Errorf("toxic fraction %v far from configured 0.05", tox)
	}
	if c.CountKind(Clean) == 0 {
		t.Error("no clean docs")
	}
}

func TestDuplicatesHaveValidProvenance(t *testing.T) {
	c := mustGen(t, DefaultConfig(13))
	ids := make(map[string]Kind, len(c.Docs))
	for _, d := range c.Docs {
		ids[d.ID] = d.Kind
	}
	for _, d := range c.Docs {
		if d.Kind != Duplicate {
			continue
		}
		if d.DupOf == "" {
			t.Fatalf("duplicate %s missing DupOf", d.ID)
		}
		k, ok := ids[d.DupOf]
		if !ok {
			t.Fatalf("duplicate %s points at unknown doc %s", d.ID, d.DupOf)
		}
		if k == Duplicate {
			t.Errorf("duplicate %s chains to another duplicate %s", d.ID, d.DupOf)
		}
	}
}

func TestToxicDocsContainLexicon(t *testing.T) {
	c := mustGen(t, DefaultConfig(17))
	for _, d := range c.Docs {
		if d.Kind != Toxic {
			continue
		}
		found := false
		for _, w := range c.ToxicLexicon {
			if strings.Contains(d.Text, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("toxic doc %s contains no lexicon marker", d.ID)
		}
	}
}

func TestQAsAreAnswerable(t *testing.T) {
	c := mustGen(t, DefaultConfig(19))
	if len(c.QAs) == 0 {
		t.Fatal("no QAs generated")
	}
	multiHop := 0
	for _, qa := range c.QAs {
		if qa.Answer == "" || qa.Question == "" {
			t.Fatal("empty QA fields")
		}
		if len(qa.SupportDocs) < qa.Hops {
			t.Errorf("QA %q: %d support docs for %d hops", qa.Question, len(qa.SupportDocs), qa.Hops)
		}
		for _, id := range qa.SupportDocs {
			doc, ok := c.DocByID(id)
			if !ok {
				t.Fatalf("support doc %s missing", id)
			}
			// The supporting document must mention the relevant text.
			if qa.Hops == 1 && !strings.Contains(doc.Text, qa.Answer) {
				t.Errorf("support doc %s does not contain answer %q", id, qa.Answer)
			}
		}
		if qa.Hops == 2 {
			multiHop++
		}
	}
	if multiHop == 0 {
		t.Error("no multi-hop QAs generated")
	}
}

func TestFactSentenceStatedInSupportDoc(t *testing.T) {
	c := mustGen(t, DefaultConfig(23))
	for _, d := range c.Docs {
		for _, f := range d.Facts {
			if d.Kind == Duplicate || d.Kind == Toxic {
				continue // near-duplicates and toxic docs may perturb wording
			}
			if !strings.Contains(d.Text, f.Object) {
				t.Errorf("doc %s missing fact object %q", d.ID, f.Object)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Domains: []DomainConfig{{"x", 1}}, EntitiesPerDomain: 0, DocsPerDomainWeight: 1},
		{Domains: []DomainConfig{{"x", 1}}, EntitiesPerDomain: 1, DocsPerDomainWeight: 0},
		func() Config { c := DefaultConfig(1); c.ToxicFraction = 1.5; return c }(),
		func() Config { c := DefaultConfig(1); c.DuplicateFraction = -0.1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d should have failed validation", i)
		}
	}
}

func TestDocByID(t *testing.T) {
	c := mustGen(t, DefaultConfig(29))
	d, ok := c.DocByID(c.Docs[3].ID)
	if !ok || d.ID != c.Docs[3].ID {
		t.Error("DocByID failed for existing doc")
	}
	if _, ok := c.DocByID("nope"); ok {
		t.Error("DocByID found nonexistent doc")
	}
}

func TestTexts(t *testing.T) {
	c := mustGen(t, DefaultConfig(31))
	texts := c.Texts()
	if len(texts) != len(c.Docs) {
		t.Fatal("Texts length mismatch")
	}
	if texts[0] != c.Docs[0].Text {
		t.Error("Texts order mismatch")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Clean: "clean", Noisy: "noisy", Boilerplate: "boilerplate",
		Toxic: "toxic", Duplicate: "duplicate", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestGenerateRecords(t *testing.T) {
	attrs := []string{"name", "owner", "status"}
	rs, err := GenerateRecords(5, 100, attrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 100 {
		t.Fatalf("got %d records", len(rs.Records))
	}
	formats := map[int]int{}
	for _, r := range rs.Records {
		formats[r.Format]++
		if len(r.Gold) != len(attrs) {
			t.Fatalf("record %s gold has %d attrs", r.ID, len(r.Gold))
		}
		// With zero noise, every gold value must appear in the text.
		for a, v := range r.Gold {
			if !strings.Contains(r.Text, v) {
				t.Errorf("record %s (fmt %d) missing %s value %q", r.ID, r.Format, a, v)
			}
		}
	}
	if len(formats) != NumRecordFormats {
		t.Errorf("only %d formats used", len(formats))
	}
}

func TestGenerateRecordsNoise(t *testing.T) {
	attrs := []string{"alpha", "beta"}
	rs, err := GenerateRecords(9, 200, attrs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, r := range rs.Records {
		for _, v := range r.Gold {
			if !strings.Contains(r.Text, v) {
				corrupted++
				break
			}
		}
	}
	if corrupted < 20 || corrupted > 120 {
		t.Errorf("corrupted count %d far from expected ~60", corrupted)
	}
}

func TestGenerateRecordsValidation(t *testing.T) {
	if _, err := GenerateRecords(1, 0, []string{"a"}, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := GenerateRecords(1, 5, nil, 0); err == nil {
		t.Error("no attrs should fail")
	}
	if _, err := GenerateRecords(1, 5, []string{"a"}, 2); err == nil {
		t.Error("bad noise rate should fail")
	}
}

func TestGenerateRecordsDeterministic(t *testing.T) {
	attrs := []string{"x", "y"}
	a, _ := GenerateRecords(3, 50, attrs, 0.1)
	b, _ := GenerateRecords(3, 50, attrs, 0.1)
	for i := range a.Records {
		if a.Records[i].Text != b.Records[i].Text {
			t.Fatal("records not deterministic")
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		g, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g.Generate()
	}
}
