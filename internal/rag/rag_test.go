package rag

import (
	"errors"
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/vecdb"
)

// buildCorpusPipeline ingests a generated corpus into a fresh pipeline.
func buildCorpusPipeline(t *testing.T, client llm.Client, opts ...Option) (*Pipeline, *corpus.Corpus) {
	t.Helper()
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(101))
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, err := New(client, e, vecdb.NewFlat(e.Dim()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]docstore.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = docstore.Document{ID: d.ID, Text: d.Text, Meta: map[string]string{"domain": d.Domain}}
	}
	if err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func perfectClient(seed uint64) *llm.Simulator {
	m := llm.LargeModel()
	m.ErrRate = 0
	m.HallucinationRate = 0
	m.ContextWindow = 1 << 20
	return llm.NewSimulator(m, seed)
}

func TestNewDimMismatch(t *testing.T) {
	e := embed.NewHashEmbedder(64)
	if _, err := New(perfectClient(1), e, vecdb.NewFlat(32)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestRetrieveEmpty(t *testing.T) {
	e := embed.NewHashEmbedder(32)
	p, err := New(perfectClient(1), e, vecdb.NewFlat(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Retrieve("anything", 3); !errors.Is(err, ErrEmptyIndex) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrieveFindsSupportDoc(t *testing.T) {
	p, c := buildCorpusPipeline(t, perfectClient(2))
	found, total := 0, 0
	for _, qa := range c.QAs {
		if qa.Hops != 1 {
			continue
		}
		total++
		hits, err := p.Retrieve(qa.Question, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			if strings.Contains(h.Chunk.Text, qa.Answer) {
				found++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no single-hop QAs")
	}
	if frac := float64(found) / float64(total); frac < 0.7 {
		t.Errorf("retrieval found answer chunk for only %.2f of questions", frac)
	}
}

func TestRAGBeatsClosedBook(t *testing.T) {
	client := perfectClient(3) // empty knowledge base: closed book knows nothing
	p, c := buildCorpusPipeline(t, client)
	closed, open, total := 0, 0, 0
	for _, qa := range c.QAs {
		if qa.Hops != 1 {
			continue
		}
		total++
		resp, err := client.Complete(llm.Request{Prompt: llm.AnswerPrompt(qa.Question, nil)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Text == qa.Answer {
			closed++
		}
		ans, err := p.Answer(qa.Question)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Text == qa.Answer {
			open++
		}
	}
	if closed >= open {
		t.Errorf("closed-book %d/%d >= RAG %d/%d", closed, total, open, total)
	}
	if float64(open)/float64(total) < 0.6 {
		t.Errorf("RAG accuracy %d/%d too low", open, total)
	}
}

func TestIterativeBeatsSingleShotOnMultiHop(t *testing.T) {
	client := perfectClient(4)
	p, c := buildCorpusPipeline(t, client)
	single, iter, total := 0, 0, 0
	for _, qa := range c.QAs {
		if qa.Hops != 2 {
			continue
		}
		total++
		a1, err := p.Answer(qa.Question)
		if err != nil {
			t.Fatal(err)
		}
		if a1.Text == qa.Answer {
			single++
		}
		a2, err := p.AnswerIterative(qa.Question)
		if err != nil {
			t.Fatal(err)
		}
		if a2.Text == qa.Answer {
			iter++
		}
	}
	if total == 0 {
		t.Fatal("no multi-hop QAs")
	}
	if iter < single {
		t.Errorf("iterative %d/%d worse than single %d/%d", iter, total, single, total)
	}
	if float64(iter)/float64(total) < 0.5 {
		t.Errorf("iterative accuracy %d/%d too low", iter, total)
	}
}

func TestIterativeDegradesGracefullyOnOneHop(t *testing.T) {
	client := perfectClient(5)
	p, c := buildCorpusPipeline(t, client)
	var qa corpus.QA
	for _, q := range c.QAs {
		if q.Hops == 1 {
			qa = q
			break
		}
	}
	a, err := p.AnswerIterative(qa.Question)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != qa.Answer {
		t.Errorf("iterative one-hop answer = %q, want %q", a.Text, qa.Answer)
	}
}

func TestAnswerAccountsCost(t *testing.T) {
	client := perfectClient(6)
	p, c := buildCorpusPipeline(t, client)
	a, err := p.Answer(c.QAs[0].Question)
	if err != nil {
		t.Fatal(err)
	}
	if a.CostUSD <= 0 || a.LatencyMS <= 0 {
		t.Error("answer cost/latency not accounted")
	}
	if len(a.Retrieved) == 0 || a.Hops != 1 {
		t.Error("retrieval metadata missing")
	}
}

func TestRerankImprovesOrNeutral(t *testing.T) {
	clientA := perfectClient(7)
	plain, c := buildCorpusPipeline(t, clientA)
	clientB := perfectClient(7)
	reranked, _ := buildCorpusPipeline(t, clientB, WithRerank())

	score := func(p *Pipeline) int {
		hit := 0
		for _, qa := range c.QAs[:40] {
			hits, err := p.Retrieve(qa.Question, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range hits {
				if strings.Contains(h.Chunk.Text, qa.Answer) {
					hit++
					break
				}
			}
		}
		return hit
	}
	plainHits := score(plain)
	rerankHits := score(reranked)
	if rerankHits < plainHits-2 {
		t.Errorf("rerank hits %d much worse than plain %d", rerankHits, plainHits)
	}
}

func TestReformulate(t *testing.T) {
	q := "What is the revenue of the entity whose ceo is anor?"
	got := reformulate(q, "Zorvex Fi")
	if got != "What is the revenue of Zorvex Fi?" {
		t.Errorf("reformulate = %q", got)
	}
	if got := reformulate("plain question?", "X"); !strings.Contains(got, "X") {
		t.Errorf("fallback reformulate = %q", got)
	}
}

func TestChunkCount(t *testing.T) {
	p, _ := buildCorpusPipeline(t, perfectClient(8))
	if p.ChunkCount() == 0 {
		t.Error("no chunks indexed")
	}
}

func TestIngestDuplicateDocFails(t *testing.T) {
	e := embed.NewHashEmbedder(32)
	p, err := New(perfectClient(9), e, vecdb.NewFlat(32))
	if err != nil {
		t.Fatal(err)
	}
	docs := []docstore.Document{{ID: "a", Text: "hello world."}}
	if err := p.Ingest(docs); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(docs); err == nil {
		t.Error("duplicate ingest accepted")
	}
}

func BenchmarkRAGAnswer(b *testing.B) {
	gen, _ := corpus.NewGenerator(corpus.DefaultConfig(1))
	c := gen.Generate()
	client := llm.NewSimulator(llm.LargeModel(), 1)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	p, _ := New(client, e, vecdb.NewFlat(e.Dim()))
	docs := make([]docstore.Document, len(c.Docs))
	for i, d := range c.Docs {
		docs[i] = docstore.Document{ID: d.ID, Text: d.Text}
	}
	if err := p.Ingest(docs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Answer(c.QAs[i%len(c.QAs)].Question); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRemoveDocumentForgetsFacts(t *testing.T) {
	client := perfectClient(31)
	p, c := buildCorpusPipeline(t, client)
	// Find an answerable one-hop QA and remove every doc that states the
	// fact; the pipeline must then stop answering it.
	var qa corpus.QA
	for _, q := range c.QAs {
		if q.Hops == 1 {
			qa = q
			break
		}
	}
	before, err := p.Answer(qa.Question)
	if err != nil {
		t.Fatal(err)
	}
	if before.Text != qa.Answer {
		t.Skip("question not answered pre-removal at this seed")
	}
	removedAny := false
	for _, d := range c.Docs {
		states := false
		for _, f := range d.Facts {
			if strings.Contains(qa.Question, f.Subject) && strings.Contains(qa.Question, f.Relation) {
				states = true
			}
		}
		if states {
			if err := p.Remove(d.ID); err != nil {
				t.Fatal(err)
			}
			removedAny = true
		}
	}
	if !removedAny {
		t.Skip("no stating docs found")
	}
	after, err := p.Answer(qa.Question)
	if err != nil {
		t.Fatal(err)
	}
	if after.Text == qa.Answer {
		t.Errorf("pipeline still answers %q after removing its sources", qa.Question)
	}
	if err := p.Remove("doc-does-not-exist"); err == nil {
		t.Error("removing unknown doc succeeded")
	}
}
