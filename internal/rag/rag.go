// Package rag implements the retrieval-augmented generation pipeline of
// §2.2.2: semantic chunking → embedding → vector indexing → top-k dense
// retrieval → (optional) reranking → prompt assembly → LLM call, plus the
// iterative multi-hop variant the paper notes is "often iterative" [65].
//
// The pipeline is the E1 experiment's subject: closed-book answers from the
// model's parametric knowledge vs. retrieval-grounded answers, and
// single-shot vs. iterative retrieval on two-hop questions.
package rag

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dataai/internal/docstore"
	"dataai/internal/embed"
	"dataai/internal/llm"
	"dataai/internal/token"
	"dataai/internal/vecdb"
)

// ErrEmptyIndex indicates retrieval against an unpopulated pipeline.
var ErrEmptyIndex = errors.New("rag: nothing ingested")

// Retrieved is one retrieval hit surfaced to the caller.
type Retrieved struct {
	Chunk docstore.Chunk
	Score float32
}

// Answer is a grounded response.
type Answer struct {
	Text       string
	Confidence float64
	Retrieved  []Retrieved
	// Hops is the number of retrieval rounds performed.
	Hops int
	// CostUSD and LatencyMS total the LLM calls behind this answer.
	CostUSD   float64
	LatencyMS float64
	// Shrinks counts context halvings forced by llm.ErrContextOverflow
	// (only under WithContextShrink).
	Shrinks int
	// Degraded reports that a resilience policy in the client produced
	// this answer after the primary model path failed.
	Degraded bool
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithTopK sets the retrieval depth (default 4).
func WithTopK(k int) Option { return func(p *Pipeline) { p.topK = k } }

// WithRerank enables lexical reranking of an over-fetched candidate set:
// the pipeline fetches 4x candidates by embedding similarity, then orders
// them by a blend of vector score and query token overlap (§2.2.1 lists
// "reranking" among the RAG challenges).
func WithRerank() Option { return func(p *Pipeline) { p.rerank = true } }

// WithChunker sets the segmentation policy used at ingest (default
// SentenceChunker with a 48-token budget).
func WithChunker(c docstore.Chunker) Option { return func(p *Pipeline) { p.chunker = c } }

// WithContextShrink enables graceful degradation on context overflow:
// when the model rejects the assembled prompt with
// llm.ErrContextOverflow, the pipeline halves the retrieved context and
// retries until the prompt fits (or no context remains) instead of
// failing the answer. Off by default — without it, behaviour is
// unchanged and overflow errors propagate as before.
func WithContextShrink() Option { return func(p *Pipeline) { p.shrink = true } }

// Pipeline is a configured RAG stack.
type Pipeline struct {
	client  llm.Client
	emb     embed.Embedder
	index   vecdb.Index
	store   *docstore.Store
	chunker docstore.Chunker
	topK    int
	rerank  bool
	shrink  bool
}

// New assembles a pipeline from its parts. index must be empty and match
// emb's dimensionality.
func New(client llm.Client, emb embed.Embedder, index vecdb.Index, opts ...Option) (*Pipeline, error) {
	if emb.Dim() != index.Dim() {
		return nil, fmt.Errorf("rag: embedder dim %d != index dim %d", emb.Dim(), index.Dim())
	}
	p := &Pipeline{
		client:  client,
		emb:     emb,
		index:   index,
		store:   docstore.NewStore(),
		chunker: docstore.SentenceChunker{MaxTokens: 16},
		topK:    4,
	}
	for _, o := range opts {
		o(p)
	}
	if p.topK < 1 {
		p.topK = 1
	}
	return p, nil
}

// Ingest chunks, embeds, and indexes the documents.
func (p *Pipeline) Ingest(docs []docstore.Document) error {
	for _, d := range docs {
		chunks, err := p.store.AddDocument(d, p.chunker)
		if err != nil {
			return fmt.Errorf("rag: ingest %s: %w", d.ID, err)
		}
		for _, c := range chunks {
			if err := p.index.Add(c.ID, p.emb.Embed(c.Text)); err != nil {
				return fmt.Errorf("rag: index %s: %w", c.ID, err)
			}
		}
	}
	return nil
}

// ChunkCount reports how many retrieval units are indexed.
func (p *Pipeline) ChunkCount() int { return p.store.ChunkCount() }

// Remove deletes a document and its chunks from the store and the vector
// index — corrections and retention both need retrieval to forget.
func (p *Pipeline) Remove(docID string) error {
	chunkIDs, err := p.store.RemoveDocument(docID)
	if err != nil {
		return fmt.Errorf("rag: remove %s: %w", docID, err)
	}
	for _, id := range chunkIDs {
		if err := p.index.Delete(id); err != nil {
			return fmt.Errorf("rag: remove %s: %w", docID, err)
		}
	}
	return nil
}

// Retrieve returns the top-k chunks for the query.
func (p *Pipeline) Retrieve(query string, k int) ([]Retrieved, error) {
	if p.store.ChunkCount() == 0 {
		return nil, ErrEmptyIndex
	}
	fetch := k
	if p.rerank {
		fetch = 4 * k
	}
	res, err := p.index.Search(p.emb.Embed(query), fetch)
	if err != nil {
		return nil, fmt.Errorf("rag: search: %w", err)
	}
	out := make([]Retrieved, 0, len(res))
	for _, r := range res {
		ch, err := p.store.Chunk(r.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, Retrieved{Chunk: ch, Score: r.Score})
	}
	if p.rerank {
		out = rerankByOverlap(query, out)
		if len(out) > k {
			out = out[:k]
		}
	}
	return out, nil
}

// rerankByOverlap orders candidates by a blend of dense score and query
// token overlap.
func rerankByOverlap(query string, cands []Retrieved) []Retrieved {
	qtoks := token.Frequencies(token.Tokenize(query))
	type scoredCand struct {
		r     Retrieved
		blend float64
	}
	scored := make([]scoredCand, len(cands))
	for i, c := range cands {
		overlap := 0
		ctoks := token.Tokenize(c.Chunk.Text)
		seen := map[string]bool{}
		for _, t := range ctoks {
			if qtoks[t] > 0 && !seen[t] {
				overlap++
				seen[t] = true
			}
		}
		var j float64
		if len(qtoks) > 0 {
			j = float64(overlap) / float64(len(qtoks))
		}
		scored[i] = scoredCand{c, 0.5*float64(c.Score) + 0.5*j}
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].blend > scored[j].blend })
	out := make([]Retrieved, len(scored))
	for i, s := range scored {
		out[i] = s.r
	}
	return out
}

// grounded issues the final answer call over ctx, applying the
// WithContextShrink degradation policy: each llm.ErrContextOverflow
// halves the context and retries until the prompt fits or no context
// remains. Without the option it is a single Complete call.
func (p *Pipeline) grounded(question string, ctx []string) (llm.Response, int, error) {
	shrinks := 0
	for {
		resp, err := p.client.Complete(llm.Request{Prompt: llm.AnswerPrompt(question, ctx)})
		if err == nil || !p.shrink || !errors.Is(err, llm.ErrContextOverflow) || len(ctx) == 0 {
			return resp, shrinks, err
		}
		ctx = ctx[:len(ctx)/2]
		shrinks++
	}
}

// Answer runs one retrieval round and asks the model with the retrieved
// context.
func (p *Pipeline) Answer(question string) (Answer, error) {
	hits, err := p.Retrieve(question, p.topK)
	if err != nil {
		return Answer{}, err
	}
	ctx := make([]string, len(hits))
	for i, h := range hits {
		ctx[i] = h.Chunk.Text
	}
	resp, shrinks, err := p.grounded(question, ctx)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: answer: %w", err)
	}
	return Answer{
		Text:       resp.Text,
		Confidence: resp.Confidence,
		Retrieved:  hits,
		Hops:       1,
		CostUSD:    resp.CostUSD,
		LatencyMS:  resp.LatencyMS,
		Shrinks:    shrinks,
		Degraded:   resp.Degraded,
	}, nil
}

// AnswerIterative performs multi-hop retrieval: it retrieves for the
// original question, asks the model to name the bridging entity, issues a
// second retrieval focused on that entity, and answers over the union of
// both context sets. Questions that don't need a bridge degrade gracefully
// to single-hop behaviour.
func (p *Pipeline) AnswerIterative(question string) (Answer, error) {
	first, err := p.Retrieve(question, p.topK)
	if err != nil {
		return Answer{}, err
	}
	ctx := make([]string, len(first))
	for i, h := range first {
		ctx[i] = h.Chunk.Text
	}
	var cost, lat float64
	hops := 1

	bridgeResp, err := p.client.Complete(llm.Request{Prompt: llm.BridgePrompt(question, ctx)})
	if err != nil {
		return Answer{}, fmt.Errorf("rag: bridge: %w", err)
	}
	cost += bridgeResp.CostUSD
	lat += bridgeResp.LatencyMS

	all := first
	if !llm.IsUnknown(bridgeResp.Text) {
		followup := reformulate(question, bridgeResp.Text)
		second, err := p.Retrieve(followup, p.topK)
		if err == nil {
			hops++
			seen := map[string]bool{}
			for _, h := range all {
				seen[h.Chunk.ID] = true
			}
			for _, h := range second {
				if !seen[h.Chunk.ID] {
					all = append(all, h)
					ctx = append(ctx, h.Chunk.Text)
				}
			}
		}
	}

	resp, shrinks, err := p.grounded(question, ctx)
	if err != nil {
		return Answer{}, fmt.Errorf("rag: answer: %w", err)
	}
	return Answer{
		Text:       resp.Text,
		Confidence: resp.Confidence,
		Retrieved:  all,
		Hops:       hops,
		CostUSD:    cost + resp.CostUSD,
		LatencyMS:  lat + resp.LatencyMS,
		Shrinks:    shrinks,
		Degraded:   resp.Degraded,
	}, nil
}

// reformulate builds the follow-up retrieval query once the bridging
// entity is known: "What is the R2 of the entity whose R1 is X?" becomes
// "What is the R2 of <entity>?". Unrecognized shapes just append the
// entity as a retrieval hint.
func reformulate(question, entity string) string {
	marker := " of the entity whose "
	if idx := strings.Index(question, marker); idx >= 0 {
		return question[:idx] + " of " + entity + "?"
	}
	return question + " " + entity
}
