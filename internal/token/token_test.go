package token

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", ",", "world", "!"}},
		{"a  b\tc\nd", []string{"a", "b", "c", "d"}},
		{"GPT-4 costs $0.03", []string{"gpt", "-", "4", "costs", "$", "0", ".", "03"}},
		{"  leading and trailing  ", []string{"leading", "and", "trailing"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("café 東京!")
	want := []string{"café", "東京", "!"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestCountMatchesTokenize(t *testing.T) {
	inputs := []string{
		"", "one", "Hello, World!", "a b c d e", "x;y;z", "  spaced   out  ",
		"punctuation... everywhere!!! ok?",
	}
	for _, in := range inputs {
		if got, want := Count(in), len(Tokenize(in)); got != want {
			t.Errorf("Count(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestCountMatchesTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		return Count(s) == len(Tokenize(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDetokenizeRoundTrip(t *testing.T) {
	inputs := []string{
		"hello world", "a, b, c!", "the quick brown fox .",
	}
	for _, in := range inputs {
		toks := Tokenize(in)
		back := Tokenize(Detokenize(toks))
		if !reflect.DeepEqual(toks, back) {
			t.Errorf("round trip %q: %v != %v", in, toks, back)
		}
	}
}

func TestDetokenizeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		return reflect.DeepEqual(toks, Tokenize(Detokenize(toks)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVocabularyAssignsStableIDs(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("apple")
	b := v.ID("banana")
	if a == b {
		t.Fatal("distinct tokens share an id")
	}
	if v.ID("apple") != a {
		t.Error("repeated lookup changed id")
	}
	if v.Word(a) != "apple" || v.Word(b) != "banana" {
		t.Error("Word does not invert ID")
	}
	if v.Size() != numReserved+2 {
		t.Errorf("Size = %d, want %d", v.Size(), numReserved+2)
	}
}

func TestVocabularyReserved(t *testing.T) {
	v := NewVocabulary()
	if v.Word(UnknownID) != "<unk>" || v.Word(BOSID) != "<bos>" || v.Word(EOSID) != "<eos>" {
		t.Error("reserved tokens not registered")
	}
	if v.Word(-1) != "<unk>" || v.Word(9999) != "<unk>" {
		t.Error("out-of-range Word should return <unk>")
	}
}

func TestVocabularyFreeze(t *testing.T) {
	v := NewVocabulary()
	v.ID("known")
	v.Freeze()
	if got := v.ID("unseen"); got != UnknownID {
		t.Errorf("frozen vocab returned %d for unseen token, want UnknownID", got)
	}
	if got := v.ID("known"); got == UnknownID {
		t.Error("frozen vocab lost a known token")
	}
}

func TestVocabularyEncodeDecode(t *testing.T) {
	v := NewVocabulary()
	ids := v.Encode("the cat sat on the mat")
	if len(ids) != 6 {
		t.Fatalf("Encode len = %d, want 6", len(ids))
	}
	if ids[0] != ids[4] {
		t.Error("repeated word got different ids")
	}
	if got := v.Decode(ids); got != "the cat sat on the mat" {
		t.Errorf("Decode = %q", got)
	}
}

func TestVocabularyConcurrent(t *testing.T) {
	v := NewVocabulary()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				v.ID(strings.Repeat("x", i%17+1))
				v.Word(i % 50)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if v.ID("xxx") != v.ID("xxx") {
		t.Error("unstable id after concurrent growth")
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	got := NGrams(toks, 2)
	want := []string{"a b", "b c", "c d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
	if NGrams(toks, 5) != nil {
		t.Error("n > len should be nil")
	}
	if NGrams(toks, 0) != nil {
		t.Error("n=0 should be nil")
	}
	if got := NGrams(toks, 4); len(got) != 1 || got[0] != "a b c d" {
		t.Errorf("full-width ngram = %v", got)
	}
}

func TestHashNGramsMatchesJoinedHash(t *testing.T) {
	toks := Tokenize("the quick brown fox jumps over the lazy dog")
	for _, n := range []int{1, 2, 3, 5} {
		hashes := HashNGrams(toks, n)
		grams := NGrams(toks, n)
		if len(hashes) != len(grams) {
			t.Fatalf("n=%d: len mismatch", n)
		}
		for i, g := range grams {
			if hashes[i] != Hash64(g+" ") {
				t.Errorf("n=%d gram %d: hash mismatch", n, i)
			}
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64("abc") != Hash64("abc") {
		t.Error("Hash64 not deterministic")
	}
	if Hash64("abc") == Hash64("abd") {
		t.Error("trivial collision")
	}
	// Known FNV-1a value for empty string.
	if Hash64("") != fnvOffset {
		t.Error("empty string hash should be the FNV offset basis")
	}
}

func TestHash64SeedFamilies(t *testing.T) {
	s := "same input"
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		h := Hash64Seed(s, seed)
		if seen[h] {
			t.Fatalf("seed %d collided with an earlier seed", seed)
		}
		seen[h] = true
		if h != Hash64Seed(s, seed) {
			t.Fatal("Hash64Seed not deterministic")
		}
	}
}

func TestFrequenciesAndTopK(t *testing.T) {
	toks := Tokenize("a b a c a b")
	f := Frequencies(toks)
	if f["a"] != 3 || f["b"] != 2 || f["c"] != 1 {
		t.Errorf("Frequencies = %v", f)
	}
	top := TopK(f, 2)
	if !reflect.DeepEqual(top, []string{"a", "b"}) {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(f, 10); len(got) != 3 {
		t.Errorf("TopK overflow len = %d", len(got))
	}
	// Tie-break lexicographic.
	tie := map[string]int{"z": 1, "y": 1, "x": 1}
	if got := TopK(tie, 3); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("tie break = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]string{"a", "b"}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := Validate([]string{"a", ""}); err == nil {
		t.Error("expected error for empty token")
	}
}

func TestTokenizeNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		return Validate(Tokenize(s)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkHashNGrams(b *testing.B) {
	toks := Tokenize(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashNGrams(toks, 5)
	}
}

// TestHash64SeedBytesMatchesString: the byte-slice variant must agree
// with the string variant for every input — embed's no-allocation
// trigram path depends on this equivalence for bit-identical vectors.
func TestHash64SeedBytesMatchesString(t *testing.T) {
	cases := []string{"", "a", "##abc", "##xyz", "the quick brown fox", "##\x00\xff"}
	seeds := []uint64{0, 1, 0x5eed, ^uint64(0)}
	for _, s := range cases {
		for _, seed := range seeds {
			if got, want := Hash64SeedBytes([]byte(s), seed), Hash64Seed(s, seed); got != want {
				t.Errorf("Hash64SeedBytes(%q, %#x) = %#x, want %#x", s, seed, got, want)
			}
		}
	}
}
