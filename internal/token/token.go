// Package token provides tokenization primitives shared by every layer of
// the Data+AI stack: a deterministic word-level tokenizer with a mutable
// vocabulary, n-gram extraction, and stable 64-bit hashing for shingles.
//
// The tokenizer is intentionally simple — lower-cased word and punctuation
// splitting — because the experiments in this repository measure *systems*
// behaviour (cost, cache hit rates, dedup recall, perplexity deltas), not
// linguistic quality. Determinism matters more than BPE fidelity here: the
// same text must always produce the same token stream so that every
// simulator and benchmark is reproducible.
package token

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Special token identifiers reserved at the bottom of every Vocabulary.
const (
	// UnknownID is returned for tokens not present in a frozen vocabulary.
	UnknownID = 0
	// BOSID marks the beginning of a sequence.
	BOSID = 1
	// EOSID marks the end of a sequence.
	EOSID = 2

	numReserved = 3
)

// Tokenize splits text into lower-cased word and punctuation tokens.
// Runs of letters or digits form one token; every other non-space rune is
// its own token. The output is deterministic for a given input.
func Tokenize(text string) []string {
	if text == "" {
		return nil
	}
	toks := make([]string, 0, len(text)/5+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, strings.ToLower(b.String()))
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			toks = append(toks, string(unicode.ToLower(r)))
		}
	}
	flush()
	return toks
}

// Detokenize joins tokens back into readable text. Punctuation tokens are
// attached to the preceding word. Tokenize(Detokenize(t)) == t for token
// streams produced by Tokenize.
func Detokenize(toks []string) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && !isPunct(t) {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	return b.String()
}

func isPunct(t string) bool {
	if len(t) == 0 {
		return false
	}
	r := []rune(t)[0]
	return !unicode.IsLetter(r) && !unicode.IsDigit(r)
}

// Count returns the number of tokens in text without materializing them.
func Count(text string) int {
	n := 0
	inWord := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if !inWord {
				n++
				inWord = true
			}
		case unicode.IsSpace(r):
			inWord = false
		default:
			n++
			inWord = false
		}
	}
	return n
}

// Vocabulary maps token strings to dense integer identifiers. The zero
// value is not usable; construct with NewVocabulary. A Vocabulary is safe
// for concurrent use.
type Vocabulary struct {
	mu     sync.RWMutex
	ids    map[string]int
	words  []string
	frozen bool
}

// NewVocabulary returns an empty vocabulary with the reserved special
// tokens pre-registered.
func NewVocabulary() *Vocabulary {
	v := &Vocabulary{
		ids:   make(map[string]int, 1024),
		words: make([]string, numReserved, 1024),
	}
	v.words[UnknownID] = "<unk>"
	v.words[BOSID] = "<bos>"
	v.words[EOSID] = "<eos>"
	v.ids["<unk>"] = UnknownID
	v.ids["<bos>"] = BOSID
	v.ids["<eos>"] = EOSID
	return v
}

// Size reports the number of registered tokens, including reserved ones.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.words)
}

// Freeze prevents further growth: unseen tokens map to UnknownID afterwards.
func (v *Vocabulary) Freeze() {
	v.mu.Lock()
	v.frozen = true
	v.mu.Unlock()
}

// ID returns the identifier for tok, registering it if the vocabulary is
// not frozen. Frozen vocabularies return UnknownID for unseen tokens.
func (v *Vocabulary) ID(tok string) int {
	v.mu.RLock()
	id, ok := v.ids[tok]
	frozen := v.frozen
	v.mu.RUnlock()
	if ok {
		return id
	}
	if frozen {
		return UnknownID
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.ids[tok]; ok { // re-check under write lock
		return id
	}
	id = len(v.words)
	v.ids[tok] = id
	v.words = append(v.words, tok)
	return id
}

// IDIfPresent returns the identifier for tok without registering it,
// reporting whether tok is known.
func (v *Vocabulary) IDIfPresent(tok string) (int, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.ids[tok]
	return id, ok
}

// Word returns the token string for id, or "<unk>" if out of range.
func (v *Vocabulary) Word(id int) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if id < 0 || id >= len(v.words) {
		return v.words[UnknownID]
	}
	return v.words[id]
}

// Encode tokenizes text and maps each token through the vocabulary.
func (v *Vocabulary) Encode(text string) []int {
	toks := Tokenize(text)
	ids := make([]int, len(toks))
	for i, t := range toks {
		ids[i] = v.ID(t)
	}
	return ids
}

// Decode maps ids back to a detokenized string.
func (v *Vocabulary) Decode(ids []int) string {
	toks := make([]string, len(ids))
	for i, id := range ids {
		toks[i] = v.Word(id)
	}
	return Detokenize(toks)
}

// NGrams returns all contiguous n-grams of toks joined by a single space.
// It returns nil when len(toks) < n or n <= 0.
func NGrams(toks []string, n int) []string {
	if n <= 0 || len(toks) < n {
		return nil
	}
	out := make([]string, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		out = append(out, strings.Join(toks[i:i+n], " "))
	}
	return out
}

// HashNGrams returns the FNV-1a 64-bit hash of every n-gram of toks,
// avoiding the string join. Used by dedup (shingling) and SimHash.
func HashNGrams(toks []string, n int) []uint64 {
	if n <= 0 || len(toks) < n {
		return nil
	}
	out := make([]uint64, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		h := fnvOffset
		for j := i; j < i+n; j++ {
			for k := 0; k < len(toks[j]); k++ {
				h ^= uint64(toks[j][k])
				h *= fnvPrime
			}
			h ^= ' '
			h *= fnvPrime
		}
		out = append(out, h)
	}
	return out
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash64 returns the FNV-1a 64-bit hash of s. It is the single stable
// string hash used across the repository (embeddings, MinHash seeds,
// cache keys) so results are reproducible across runs and platforms.
func Hash64(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Hash64Seed hashes s mixed with a seed, for families of hash functions.
func Hash64Seed(s string, seed uint64) uint64 {
	h := fnvOffset ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Final avalanche (splitmix64 tail) so nearby seeds decorrelate.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Hash64SeedBytes is Hash64Seed over a byte slice: it lets hot paths
// hash composed features (prefix + substring) through a reusable stack
// buffer instead of allocating a string per feature. For any s and
// seed, Hash64SeedBytes([]byte(s), seed) == Hash64Seed(s, seed).
func Hash64SeedBytes(b []byte, seed uint64) uint64 {
	h := fnvOffset ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Frequencies counts token occurrences in toks.
func Frequencies(toks []string) map[string]int {
	m := make(map[string]int, len(toks))
	for _, t := range toks {
		m[t]++
	}
	return m
}

// TopK returns the k most frequent tokens, ties broken lexicographically
// for determinism.
func TopK(freq map[string]int, k int) []string {
	type tf struct {
		tok string
		n   int
	}
	all := make([]tf, 0, len(freq))
	for t, n := range freq {
		all = append(all, tf{t, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].tok < all[j].tok
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].tok
	}
	return out
}

// Validate reports an error when a token stream contains empty tokens —
// a guard used by property tests.
func Validate(toks []string) error {
	for i, t := range toks {
		if t == "" {
			return fmt.Errorf("token: empty token at position %d", i)
		}
	}
	return nil
}
