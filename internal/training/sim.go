package training

import (
	"fmt"
	"math"
	"sort"
)

// Policy is a checkpointing engine's cost model. OnCheckpoint is invoked
// when the training loop reaches a checkpoint step; it returns the
// synchronous stall imposed on training, the additional delay until the
// checkpoint is durable on storage (zero for synchronous engines), and
// the persisted size.
type Policy interface {
	Name() string
	OnCheckpoint(step int, m ModelConfig, c ClusterConfig) (stallS, durableDelayS float64, bytes int64)
}

// SyncPolicy persists the full state synchronously: training stalls for
// the entire storage write.
type SyncPolicy struct{}

// Name implements Policy.
func (SyncPolicy) Name() string { return "sync" }

// OnCheckpoint implements Policy.
func (SyncPolicy) OnCheckpoint(_ int, m ModelConfig, c ClusterConfig) (float64, float64, int64) {
	bytes := CheckpointBytes(m)
	return float64(bytes) / c.StorageBW, 0, bytes
}

// AsyncPolicy snapshots device state to host memory (short stall) and
// flushes to storage in the background — the lazy asynchronous scheme of
// DataStates-LLM/CheckFreq [27,37,38]. The checkpoint is durable only
// when the background flush completes; a failure before that falls back
// to the previous durable checkpoint.
type AsyncPolicy struct{}

// Name implements Policy.
func (AsyncPolicy) Name() string { return "async" }

// OnCheckpoint implements Policy.
func (AsyncPolicy) OnCheckpoint(_ int, m ModelConfig, c ClusterConfig) (float64, float64, int64) {
	bytes := CheckpointBytes(m)
	snapshot := float64(bytes) / c.HostMemoryBW
	flush := float64(bytes) / c.StorageBW
	return snapshot, flush, bytes
}

// DiffPolicy persists a full checkpoint every FullEvery checkpoints and a
// differential checkpoint (ChangedFraction of the state) otherwise —
// Check-N-Run's differential checkpointing [17]. Writes are synchronous.
type DiffPolicy struct {
	// FullEvery forces a full checkpoint every k-th call (k >= 1).
	FullEvery int
	// ChangedFraction is the fraction of state captured by a delta.
	ChangedFraction float64
	calls           int
}

// Name implements Policy.
func (d *DiffPolicy) Name() string { return "differential" }

// OnCheckpoint implements Policy.
func (d *DiffPolicy) OnCheckpoint(_ int, m ModelConfig, c ClusterConfig) (float64, float64, int64) {
	full := CheckpointBytes(m)
	k := d.FullEvery
	if k < 1 {
		k = 4
	}
	frac := d.ChangedFraction
	if frac <= 0 || frac > 1 {
		frac = 0.2
	}
	d.calls++
	bytes := full
	if (d.calls-1)%k != 0 {
		bytes = int64(float64(full) * frac)
	}
	return float64(bytes) / c.StorageBW, 0, bytes
}

// QuantPolicy quantizes the state before persisting (Check-N-Run [17]):
// fp16 parameters and fp32 optimizer state compress to 8 bits.
type QuantPolicy struct{}

// Name implements Policy.
func (QuantPolicy) Name() string { return "quantized" }

// OnCheckpoint implements Policy.
func (QuantPolicy) OnCheckpoint(_ int, m ModelConfig, c ClusterConfig) (float64, float64, int64) {
	// 1 byte per parameter value and per optimizer scalar.
	optScalars := m.OptimBytesPerParam / 4 // fp32 scalars per param
	bytes := m.Params * (1 + optScalars)
	return float64(bytes) / c.StorageBW, 0, bytes
}

// OptimalIntervalS is the Young/Daly first-order optimum that CheckFreq's
// frequency tuner converges to: checkpoint every sqrt(2·C·MTBF) seconds,
// where C is the checkpoint cost.
func OptimalIntervalS(checkpointCostS, mtbfS float64) float64 {
	if checkpointCostS <= 0 || mtbfS <= 0 {
		return 0
	}
	return math.Sqrt(2 * checkpointCostS * mtbfS)
}

// RunConfig drives one simulated training run.
type RunConfig struct {
	// Steps is the number of optimizer steps to complete.
	Steps int
	// BatchTokens is the global batch size in tokens.
	BatchTokens int64
	// CheckpointEvery checkpoints after every k completed steps
	// (0 disables checkpointing).
	CheckpointEvery int
	// Policy is the checkpointing engine (required when
	// CheckpointEvery > 0).
	Policy Policy
	// FailAtExecSteps lists execution-timeline step indexes at which a
	// worker failure occurs (an executed step counts even if its work is
	// later lost). Each failure rolls progress back to the last durable
	// checkpoint.
	FailAtExecSteps []int
	// RestartOverheadS is the fixed process-restart cost per failure.
	RestartOverheadS float64
}

// RunReport aggregates a simulated run.
type RunReport struct {
	// TotalS is the end-to-end wall time.
	TotalS float64
	// ComputeS is time spent on steps that contributed final progress.
	ComputeS float64
	// RecomputeS is time spent re-executing steps lost to failures.
	RecomputeS float64
	// StallS is synchronous checkpoint stall time.
	StallS float64
	// RecoveryS is restart + checkpoint-load time across failures.
	RecoveryS float64
	// Failures is the number of injected failures that fired.
	Failures int
	// Checkpoints counts checkpoints initiated; DurableCheckpoints those
	// that reached storage before the run ended or a failure hit.
	Checkpoints        int
	DurableCheckpoints int
	// BytesPersisted totals checkpoint traffic to storage.
	BytesPersisted int64
}

// SimulateRun executes the training timeline under the given strategy and
// checkpoint policy, injecting the configured failures.
func SimulateRun(m ModelConfig, c ClusterConfig, s Strategy, rc RunConfig) (RunReport, error) {
	if err := FitsMemory(m, c, s); err != nil {
		return RunReport{}, err
	}
	if rc.Steps <= 0 {
		return RunReport{}, fmt.Errorf("%w: steps %d", ErrConfig, rc.Steps)
	}
	if rc.CheckpointEvery > 0 && rc.Policy == nil {
		return RunReport{}, fmt.Errorf("%w: checkpointing enabled without a policy", ErrConfig)
	}
	stepS, err := StepTime(m, c, s, rc.BatchTokens)
	if err != nil {
		return RunReport{}, err
	}

	failures := append([]int(nil), rc.FailAtExecSteps...)
	sort.Ints(failures)

	var rep RunReport
	now := 0.0
	progress := 0     // completed steps surviving so far
	lastDurable := 0  // step of the newest durable checkpoint
	execSteps := 0    // execution-timeline counter (includes rework)
	pendingStep := -1 // step of an in-flight async checkpoint
	pendingAt := 0.0  // time the in-flight checkpoint becomes durable
	loadS := float64(CheckpointBytes(m)) / c.StorageBW

	settle := func() {
		if pendingStep >= 0 && pendingAt <= now {
			lastDurable = pendingStep
			rep.DurableCheckpoints++
			pendingStep = -1
		}
	}

	for progress < rc.Steps {
		// Execute one step.
		now += stepS
		execSteps++
		progress++
		rep.ComputeS += stepS
		settle()

		// Checkpoint boundary.
		if rc.CheckpointEvery > 0 && progress%rc.CheckpointEvery == 0 && progress < rc.Steps {
			stall, delay, bytes := rc.Policy.OnCheckpoint(progress, m, c)
			now += stall
			rep.StallS += stall
			rep.Checkpoints++
			rep.BytesPersisted += bytes
			if delay == 0 {
				lastDurable = progress
				rep.DurableCheckpoints++
			} else {
				// A newer in-flight checkpoint supersedes an unfinished
				// older one (the engine cancels the stale flush).
				settle()
				pendingStep = progress
				pendingAt = now + delay
			}
		}

		// Failure injection.
		if len(failures) > 0 && execSteps >= failures[0] {
			failures = failures[1:]
			rep.Failures++
			settle()
			// Anything after the last durable checkpoint is lost.
			lost := progress - lastDurable
			if lost < 0 {
				lost = 0
			}
			rep.ComputeS -= float64(lost) * stepS
			rep.RecomputeS += float64(lost) * stepS
			progress = lastDurable
			pendingStep = -1 // in-flight flush dies with the job
			recovery := rc.RestartOverheadS + loadS
			now += recovery
			rep.RecoveryS += recovery
		}
	}
	settle()
	rep.TotalS = now
	return rep, nil
}
