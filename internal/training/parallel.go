package training

import (
	"fmt"
	"math"
)

// This file models the other parallelism axes §2.3.2 says are "often used
// in combination" with data parallelism [26, 40, 48]: pipeline
// parallelism (GPipe's bubble overhead), tensor parallelism (Megatron's
// per-layer activation collectives), and their 3D composition.

// ParallelConfig is a 3D parallel layout: Data × Pipeline × Tensor.
type ParallelConfig struct {
	Data     int
	Pipeline int
	Tensor   int
	// MicroBatches per pipeline flush (GPipe's m); only meaningful when
	// Pipeline > 1.
	MicroBatches int
}

// Devices is the total device count of the layout.
func (p ParallelConfig) Devices() int { return p.Data * p.Pipeline * p.Tensor }

// Validate checks the layout.
func (p ParallelConfig) Validate(m ModelConfig) error {
	if p.Data < 1 || p.Pipeline < 1 || p.Tensor < 1 {
		return fmt.Errorf("%w: parallel degrees %d/%d/%d", ErrConfig, p.Data, p.Pipeline, p.Tensor)
	}
	if p.Pipeline > m.Layers {
		return fmt.Errorf("%w: pipeline degree %d exceeds %d layers", ErrConfig, p.Pipeline, m.Layers)
	}
	if p.Pipeline > 1 && p.MicroBatches < 1 {
		return fmt.Errorf("%w: pipeline parallelism needs MicroBatches >= 1", ErrConfig)
	}
	return nil
}

// PipelineBubbleFraction is GPipe's idle fraction: with p stages and m
// micro-batches, (p-1)/(m+p-1) of the flush is bubble.
func PipelineBubbleFraction(stages, microBatches int) float64 {
	if stages <= 1 {
		return 0
	}
	if microBatches < 1 {
		microBatches = 1
	}
	return float64(stages-1) / float64(microBatches+stages-1)
}

// MemoryPerDevice3D returns model-state bytes per device under the 3D
// layout with the given data-parallel strategy applied along the data
// axis. Pipeline splits layers; tensor splits each layer's parameters;
// the ZeRO stage then shards the remainder across data-parallel replicas.
func MemoryPerDevice3D(m ModelConfig, s Strategy, p ParallelConfig) (int64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(m); err != nil {
		return 0, err
	}
	shard := m
	shard.Params = m.Params / int64(p.Pipeline) / int64(p.Tensor)
	if shard.Params == 0 {
		shard.Params = 1
	}
	shard.Layers = m.Layers / p.Pipeline
	if shard.Layers == 0 {
		shard.Layers = 1
	}
	return MemoryPerWorker(shard, s, p.Data)
}

// StepTime3D estimates one optimizer step under the 3D layout:
//
//   - compute: 6·P·T FLOPs spread over all devices,
//   - stretched by the pipeline bubble,
//   - plus tensor-parallel activation collectives (per layer, per
//     micro-batch: 2 all-reduces forward + 2 backward of the hidden
//     activations — approximated as 8·hidden·tokens bytes per layer),
//   - plus the data-parallel gradient collective of the chosen strategy.
func StepTime3D(m ModelConfig, c ClusterConfig, s Strategy, p ParallelConfig, batchTokens int64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(m); err != nil {
		return 0, err
	}
	if batchTokens <= 0 {
		return 0, fmt.Errorf("%w: batchTokens %d", ErrConfig, batchTokens)
	}
	// Ideal compute: the whole batch's FLOPs over every device.
	computeS := 6 * float64(m.Params) * float64(batchTokens) / (float64(p.Devices()) * c.FLOPs)
	// Pipeline bubble stretches compute.
	bubble := PipelineBubbleFraction(p.Pipeline, p.MicroBatches)
	computeS /= (1 - bubble)

	// Tensor-parallel activation traffic per device: ~8 bytes/param-col…
	// approximated via hidden size derived from params/layers (hidden ≈
	// sqrt(params/(12·layers)) for a transformer block).
	var tpS float64
	if p.Tensor > 1 {
		hidden := math.Sqrt(float64(m.Params) / (12 * float64(m.Layers)))
		tokensPerReplica := float64(batchTokens) / float64(p.Data)
		bytes := 8 * hidden * tokensPerReplica * float64(m.Layers/p.Pipeline) * float64(m.BytesPerParam)
		tpS = bytes / c.InterconnectBW
	}

	// Data-parallel gradient collective over the shard each replica owns.
	shard := m
	shard.Params = m.Params / int64(p.Pipeline) / int64(p.Tensor)
	if shard.Params == 0 {
		shard.Params = 1
	}
	dpBytes, err := CommBytesPerStep(shard, s, p.Data)
	if err != nil {
		return 0, err
	}
	dpS := dpBytes / c.InterconnectBW

	// Half the collective traffic overlaps with compute, as in StepTime.
	comm := tpS + dpS
	hidden := 0.5 * comm
	if hidden > computeS {
		hidden = computeS
	}
	return computeS + comm - hidden, nil
}

// BestLayout searches 3D layouts over a device budget for the lowest
// simulated step time that fits memory, returning the layout and its
// step time. It enumerates divisor splits of the budget.
func BestLayout(m ModelConfig, c ClusterConfig, s Strategy, devices int, batchTokens int64, microBatches int) (ParallelConfig, float64, error) {
	if devices < 1 {
		return ParallelConfig{}, 0, fmt.Errorf("%w: devices %d", ErrConfig, devices)
	}
	best := ParallelConfig{}
	bestT := math.Inf(1)
	for dp := 1; dp <= devices; dp++ {
		if devices%dp != 0 {
			continue
		}
		rest := devices / dp
		for pp := 1; pp <= rest; pp++ {
			if rest%pp != 0 || pp > m.Layers {
				continue
			}
			tp := rest / pp
			cfg := ParallelConfig{Data: dp, Pipeline: pp, Tensor: tp, MicroBatches: microBatches}
			mem, err := MemoryPerDevice3D(m, s, cfg)
			if err != nil {
				continue
			}
			if mem > c.DeviceMemory {
				continue
			}
			cluster := c
			cluster.Workers = dp
			t, err := StepTime3D(m, cluster, s, cfg, batchTokens)
			if err != nil {
				continue
			}
			if t < bestT {
				best, bestT = cfg, t
			}
		}
	}
	if math.IsInf(bestT, 1) {
		return ParallelConfig{}, 0, fmt.Errorf("%w: no layout fits %d devices", ErrOOM, devices)
	}
	return best, bestT, nil
}
