package training

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint materializes a distributed training state: the step it was
// taken at, the parallel configuration, and one parameter shard per
// worker. Real systems persist tensors; the simulator persists float32
// slices, which is enough to verify the round-trip and resharding
// invariants the paper's checkpointing systems (DCP [51], UCP [33],
// ByteCheckpoint [56]) are built around.
type Checkpoint struct {
	Step    int
	Workers int
	// Shards holds each worker's contiguous parameter range. Shard
	// lengths may differ by one when the total is not divisible.
	Shards [][]float32
}

// ErrCheckpoint indicates a malformed or inconsistent checkpoint.
var ErrCheckpoint = fmt.Errorf("training: bad checkpoint")

// NewCheckpoint shards params across workers in contiguous ranges.
func NewCheckpoint(step int, params []float32, workers int) (*Checkpoint, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("%w: workers %d", ErrConfig, workers)
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("%w: no parameters", ErrCheckpoint)
	}
	ck := &Checkpoint{Step: step, Workers: workers, Shards: make([][]float32, workers)}
	base := len(params) / workers
	extra := len(params) % workers
	pos := 0
	for w := 0; w < workers; w++ {
		n := base
		if w < extra {
			n++
		}
		shard := make([]float32, n)
		copy(shard, params[pos:pos+n])
		ck.Shards[w] = shard
		pos += n
	}
	return ck, nil
}

// Flatten reassembles the full parameter vector.
func (c *Checkpoint) Flatten() []float32 {
	var total int
	for _, s := range c.Shards {
		total += len(s)
	}
	out := make([]float32, 0, total)
	for _, s := range c.Shards {
		out = append(out, s...)
	}
	return out
}

// TotalParams reports the parameter count across shards.
func (c *Checkpoint) TotalParams() int {
	n := 0
	for _, s := range c.Shards {
		n += len(s)
	}
	return n
}

// Reshard redistributes the checkpoint for a new data-parallel degree —
// the core operation of UCP/ByteCheckpoint: "the parallel configuration
// may change during training, necessitating checkpoint resharding".
func (c *Checkpoint) Reshard(newWorkers int) (*Checkpoint, error) {
	if newWorkers <= 0 {
		return nil, fmt.Errorf("%w: workers %d", ErrConfig, newWorkers)
	}
	return NewCheckpoint(c.Step, c.Flatten(), newWorkers)
}

// Validate checks internal consistency.
func (c *Checkpoint) Validate() error {
	if c.Workers != len(c.Shards) {
		return fmt.Errorf("%w: %d workers but %d shards", ErrCheckpoint, c.Workers, len(c.Shards))
	}
	if c.Workers == 0 {
		return fmt.Errorf("%w: empty", ErrCheckpoint)
	}
	return nil
}

// Format enumerates the persistence layouts the paper catalogs:
// "array-based [1,2,50], file-based [49,56], and disaggregated [51]".
type Format int

// Supported checkpoint formats.
const (
	// ArrayFormat persists the whole state as one array blob (the
	// TensorStore/Zarr family).
	ArrayFormat Format = iota
	// FileFormat persists one record per shard (the safetensors/
	// ByteCheckpoint family); shards can be loaded independently.
	FileFormat
)

// arrayBlob is the ArrayFormat wire form.
type arrayBlob struct {
	Step    int
	Workers int
	Params  []float32
}

// fileBlob is the FileFormat wire form: shard records with indexes, so a
// reader can load any single shard without the rest.
type fileBlob struct {
	Step    int
	Workers int
	Index   int
	Shard   []float32
}

// Save writes the checkpoint to w in the given format.
func (c *Checkpoint) Save(w io.Writer, f Format) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	switch f {
	case ArrayFormat:
		return enc.Encode(arrayBlob{Step: c.Step, Workers: c.Workers, Params: c.Flatten()})
	case FileFormat:
		for i, s := range c.Shards {
			if err := enc.Encode(fileBlob{Step: c.Step, Workers: c.Workers, Index: i, Shard: s}); err != nil {
				return fmt.Errorf("training: save shard %d: %w", i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown format %d", ErrCheckpoint, int(f))
	}
}

// Load reads a checkpoint written by Save in the given format.
func Load(r io.Reader, f Format) (*Checkpoint, error) {
	dec := gob.NewDecoder(r)
	switch f {
	case ArrayFormat:
		var blob arrayBlob
		if err := dec.Decode(&blob); err != nil {
			return nil, fmt.Errorf("training: load: %w", err)
		}
		return NewCheckpoint(blob.Step, blob.Params, blob.Workers)
	case FileFormat:
		var ck *Checkpoint
		for {
			var blob fileBlob
			err := dec.Decode(&blob)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("training: load shard: %w", err)
			}
			if ck == nil {
				ck = &Checkpoint{Step: blob.Step, Workers: blob.Workers, Shards: make([][]float32, blob.Workers)}
			}
			if blob.Index < 0 || blob.Index >= len(ck.Shards) {
				return nil, fmt.Errorf("%w: shard index %d of %d", ErrCheckpoint, blob.Index, len(ck.Shards))
			}
			ck.Shards[blob.Index] = blob.Shard
		}
		if ck == nil {
			return nil, fmt.Errorf("%w: empty stream", ErrCheckpoint)
		}
		for i, s := range ck.Shards {
			if s == nil {
				return nil, fmt.Errorf("%w: missing shard %d", ErrCheckpoint, i)
			}
		}
		return ck, nil
	default:
		return nil, fmt.Errorf("%w: unknown format %d", ErrCheckpoint, int(f))
	}
}

// Diff returns the indices and values of parameters that changed between
// base and cur — the payload of differential checkpointing [17].
func Diff(base, cur []float32) (idx []int, vals []float32, err error) {
	if len(base) != len(cur) {
		return nil, nil, fmt.Errorf("%w: diff length mismatch %d vs %d", ErrCheckpoint, len(base), len(cur))
	}
	for i := range cur {
		//lint:ignore floateq change detection must be exact: an ulp-sized update is still an update the diff must carry
		if cur[i] != base[i] {
			idx = append(idx, i)
			vals = append(vals, cur[i])
		}
	}
	return idx, vals, nil
}

// ApplyDiff reconstructs the current parameters from a base and a diff.
func ApplyDiff(base []float32, idx []int, vals []float32) ([]float32, error) {
	if len(idx) != len(vals) {
		return nil, fmt.Errorf("%w: diff arity %d vs %d", ErrCheckpoint, len(idx), len(vals))
	}
	out := make([]float32, len(base))
	copy(out, base)
	for i, j := range idx {
		if j < 0 || j >= len(out) {
			return nil, fmt.Errorf("%w: diff index %d out of range", ErrCheckpoint, j)
		}
		out[j] = vals[i]
	}
	return out, nil
}

// Quantize compresses parameters to 8-bit with per-tensor scale — the
// lossy size reduction of Check-N-Run [17]. Dequantize reverses it with
// bounded error.
func Quantize(params []float32) (data []byte, scale float32) {
	var max float32
	for _, v := range params {
		if v > max {
			max = v
		}
		if -v > max {
			max = -v
		}
	}
	if max == 0 {
		return make([]byte, len(params)), 0
	}
	scale = max / 127
	data = make([]byte, len(params))
	for i, v := range params {
		q := int32(v/scale + 0.5)
		if v < 0 {
			q = int32(v/scale - 0.5)
		}
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		data[i] = byte(int8(q))
	}
	return data, scale
}

// Dequantize reverses Quantize.
func Dequantize(data []byte, scale float32) []float32 {
	out := make([]float32, len(data))
	for i, b := range data {
		out[i] = float32(int8(b)) * scale
	}
	return out
}
