package training

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryPerWorkerOrdering(t *testing.T) {
	m := GPT13B()
	const workers = 8
	var prev int64 = math.MaxInt64
	for _, s := range []Strategy{DP, ZeRO1, ZeRO2, ZeRO3} {
		mem, err := MemoryPerWorker(m, s, workers)
		if err != nil {
			t.Fatal(err)
		}
		if mem > prev {
			t.Errorf("%s memory %d exceeds previous stage %d", s, mem, prev)
		}
		prev = mem
	}
	// FSDP matches ZeRO-3.
	z3, _ := MemoryPerWorker(m, ZeRO3, workers)
	fs, _ := MemoryPerWorker(m, FSDP, workers)
	if z3 != fs {
		t.Errorf("FSDP %d != ZeRO-3 %d", fs, z3)
	}
}

func TestMemoryPerWorkerZeROPaperRatios(t *testing.T) {
	// The ZeRO paper's canonical accounting: 16 bytes/param baseline,
	// 16/N at stage 3.
	m := GPT13B()
	const workers = 8
	dp, _ := MemoryPerWorker(m, DP, workers)
	if dp != m.Params*16 {
		t.Errorf("DP memory = %d, want 16 bytes/param", dp)
	}
	z3, _ := MemoryPerWorker(m, ZeRO3, workers)
	if z3 != m.Params*16/workers {
		t.Errorf("ZeRO-3 memory = %d, want 16/N bytes/param", z3)
	}
	z1, _ := MemoryPerWorker(m, ZeRO1, workers)
	want := m.Params*4 + m.Params*12/workers
	if z1 != want {
		t.Errorf("ZeRO-1 memory = %d, want %d", z1, want)
	}
}

func TestMemoryValidation(t *testing.T) {
	if _, err := MemoryPerWorker(ModelConfig{}, DP, 4); !errors.Is(err, ErrConfig) {
		t.Errorf("bad model err = %v", err)
	}
	if _, err := MemoryPerWorker(GPT13B(), DP, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("bad workers err = %v", err)
	}
}

func TestCommBytes(t *testing.T) {
	m := GPT13B()
	dp, _ := CommBytesPerStep(m, DP, 8)
	z3, _ := CommBytesPerStep(m, ZeRO3, 8)
	if z3 != dp*1.5 {
		t.Errorf("ZeRO-3 comm %v != 1.5x DP %v", z3, dp)
	}
	single, _ := CommBytesPerStep(m, DP, 1)
	if single != 0 {
		t.Errorf("single worker comm = %v", single)
	}
}

func TestStepTimeScaling(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	t1, err := StepTime(m, c, DP, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := StepTime(m, c, DP, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 {
		t.Error("larger batch not slower")
	}
	// ZeRO-3 pays more communication.
	t3, _ := StepTime(m, c, ZeRO3, 1<<20)
	if t3 <= t1 {
		t.Errorf("ZeRO-3 step %v not slower than DP %v", t3, t1)
	}
}

func TestFitsMemory(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	c.DeviceMemory = 10 << 30 // 10 GiB: DP needs ~20.8 GB, ZeRO-3 ~2.6 GB
	if err := FitsMemory(m, c, DP); !errors.Is(err, ErrOOM) {
		t.Errorf("DP should OOM: %v", err)
	}
	if err := FitsMemory(m, c, ZeRO3); err != nil {
		t.Errorf("ZeRO-3 should fit: %v", err)
	}
}

func TestCheckpointShardingAndFlatten(t *testing.T) {
	params := []float32{1, 2, 3, 4, 5, 6, 7}
	ck, err := NewCheckpoint(10, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Shards) != 3 {
		t.Fatalf("shards = %d", len(ck.Shards))
	}
	// 7 params over 3 workers: 3,2,2.
	if len(ck.Shards[0]) != 3 || len(ck.Shards[1]) != 2 || len(ck.Shards[2]) != 2 {
		t.Errorf("shard sizes: %d %d %d", len(ck.Shards[0]), len(ck.Shards[1]), len(ck.Shards[2]))
	}
	flat := ck.Flatten()
	for i, v := range params {
		if flat[i] != v {
			t.Fatalf("flatten mismatch at %d", i)
		}
	}
	if ck.TotalParams() != 7 {
		t.Errorf("TotalParams = %d", ck.TotalParams())
	}
}

func TestReshardPreservesParamsProperty(t *testing.T) {
	f := func(seed int64, n uint8, w1, w2 uint8) bool {
		size := int(n)%200 + 1
		workers1 := int(w1)%16 + 1
		workers2 := int(w2)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		params := make([]float32, size)
		for i := range params {
			params[i] = rng.Float32()
		}
		ck, err := NewCheckpoint(5, params, workers1)
		if err != nil {
			return false
		}
		re, err := ck.Reshard(workers2)
		if err != nil {
			return false
		}
		if re.Workers != workers2 || re.Step != 5 {
			return false
		}
		flat := re.Flatten()
		if len(flat) != size {
			return false
		}
		for i := range params {
			if flat[i] != params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadBothFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := make([]float32, 101)
	for i := range params {
		params[i] = rng.Float32()
	}
	ck, err := NewCheckpoint(7, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{ArrayFormat, FileFormat} {
		var buf bytes.Buffer
		if err := ck.Save(&buf, f); err != nil {
			t.Fatalf("format %d save: %v", f, err)
		}
		got, err := Load(&buf, f)
		if err != nil {
			t.Fatalf("format %d load: %v", f, err)
		}
		if got.Step != 7 || got.Workers != 4 {
			t.Errorf("format %d meta: %+v", f, got)
		}
		flat := got.Flatten()
		for i := range params {
			if flat[i] != params[i] {
				t.Fatalf("format %d param mismatch at %d", f, i)
			}
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk")), ArrayFormat); err == nil {
		t.Error("corrupt array load succeeded")
	}
	if _, err := Load(bytes.NewReader(nil), FileFormat); err == nil {
		t.Error("empty file-format load succeeded")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	base := []float32{1, 2, 3, 4, 5}
	cur := []float32{1, 9, 3, 8, 5}
	idx, vals, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("diff size = %d", len(idx))
	}
	got, err := ApplyDiff(base, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		if got[i] != cur[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if _, _, err := Diff([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ApplyDiff(base, []int{99}, []float32{1}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestQuantizeBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	params := make([]float32, 500)
	for i := range params {
		params[i] = (rng.Float32() - 0.5) * 4
	}
	data, scale := Quantize(params)
	back := Dequantize(data, scale)
	for i := range params {
		if math.Abs(float64(back[i]-params[i])) > float64(scale)/2+1e-6 {
			t.Fatalf("quantization error at %d: %v vs %v (scale %v)", i, back[i], params[i], scale)
		}
	}
	// All-zero input.
	data, scale = Quantize(make([]float32, 4))
	if scale != 0 {
		t.Error("zero input scale")
	}
	for _, b := range Dequantize(data, scale) {
		if b != 0 {
			t.Error("zero input roundtrip")
		}
	}
}

func TestOptimalInterval(t *testing.T) {
	got := OptimalIntervalS(10, 3600)
	want := math.Sqrt(2 * 10 * 3600)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OptimalIntervalS = %v, want %v", got, want)
	}
	if OptimalIntervalS(0, 100) != 0 || OptimalIntervalS(10, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func runCfg(policy Policy, failures []int) RunConfig {
	return RunConfig{
		Steps:            64,
		BatchTokens:      1 << 21,
		CheckpointEvery:  8,
		Policy:           policy,
		FailAtExecSteps:  failures,
		RestartOverheadS: 30,
	}
}

func TestSimulateRunNoFailures(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	rep, err := SimulateRun(m, c, ZeRO2, runCfg(SyncPolicy{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.RecomputeS != 0 || rep.RecoveryS != 0 {
		t.Errorf("clean run has failure artifacts: %+v", rep)
	}
	if rep.Checkpoints != 7 { // steps 8..56, not at 64
		t.Errorf("checkpoints = %d, want 7", rep.Checkpoints)
	}
	if rep.StallS <= 0 {
		t.Error("sync policy produced no stall")
	}
	if rep.TotalS < rep.ComputeS {
		t.Error("total < compute")
	}
}

func TestAsyncStallsLessThanSync(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	syncRep, err := SimulateRun(m, c, ZeRO2, runCfg(SyncPolicy{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	asyncRep, err := SimulateRun(m, c, ZeRO2, runCfg(AsyncPolicy{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if asyncRep.StallS >= syncRep.StallS {
		t.Errorf("async stall %v >= sync %v", asyncRep.StallS, syncRep.StallS)
	}
	if asyncRep.TotalS >= syncRep.TotalS {
		t.Errorf("async total %v >= sync %v", asyncRep.TotalS, syncRep.TotalS)
	}
}

func TestDiffAndQuantPersistLess(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	syncRep, _ := SimulateRun(m, c, ZeRO2, runCfg(SyncPolicy{}, nil))
	diffRep, err := SimulateRun(m, c, ZeRO2, runCfg(&DiffPolicy{FullEvery: 4, ChangedFraction: 0.2}, nil))
	if err != nil {
		t.Fatal(err)
	}
	quantRep, err := SimulateRun(m, c, ZeRO2, runCfg(QuantPolicy{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if diffRep.BytesPersisted >= syncRep.BytesPersisted {
		t.Errorf("diff bytes %d >= sync %d", diffRep.BytesPersisted, syncRep.BytesPersisted)
	}
	if quantRep.BytesPersisted >= syncRep.BytesPersisted {
		t.Errorf("quant bytes %d >= sync %d", quantRep.BytesPersisted, syncRep.BytesPersisted)
	}
	if diffRep.StallS >= syncRep.StallS {
		t.Errorf("diff stall %v >= sync %v", diffRep.StallS, syncRep.StallS)
	}
}

func TestFailureRecovery(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	rep, err := SimulateRun(m, c, ZeRO2, runCfg(SyncPolicy{}, []int{20}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d", rep.Failures)
	}
	if rep.RecoveryS <= 0 {
		t.Error("no recovery time recorded")
	}
	// Failed at exec step 20, last durable checkpoint at 16: 4 steps lost.
	stepS, _ := StepTime(m, c, ZeRO2, 1<<21)
	wantLost := 4 * stepS
	if math.Abs(rep.RecomputeS-wantLost) > stepS/2 {
		t.Errorf("recompute %v, want ~%v", rep.RecomputeS, wantLost)
	}
	clean, _ := SimulateRun(m, c, ZeRO2, runCfg(SyncPolicy{}, nil))
	if rep.TotalS <= clean.TotalS {
		t.Error("failed run not slower than clean run")
	}
}

func TestMoreFrequentCheckpointsLoseLessWork(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	mk := func(every int) RunReport {
		rc := runCfg(SyncPolicy{}, []int{40})
		rc.CheckpointEvery = every
		rep, err := SimulateRun(m, c, ZeRO2, rc)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	frequent := mk(4)
	rare := mk(32)
	if frequent.RecomputeS >= rare.RecomputeS {
		t.Errorf("frequent ckpt recompute %v >= rare %v", frequent.RecomputeS, rare.RecomputeS)
	}
	if frequent.StallS <= rare.StallS {
		t.Errorf("frequent ckpt stall %v <= rare %v", frequent.StallS, rare.StallS)
	}
}

func TestNoCheckpointLosesEverything(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	rc := runCfg(nil, []int{30})
	rc.CheckpointEvery = 0
	rep, err := SimulateRun(m, c, ZeRO2, rc)
	if err != nil {
		t.Fatal(err)
	}
	stepS, _ := StepTime(m, c, ZeRO2, 1<<21)
	if math.Abs(rep.RecomputeS-30*stepS) > stepS/2 {
		t.Errorf("recompute %v, want ~%v (all 30 steps)", rep.RecomputeS, 30*stepS)
	}
}

func TestAsyncFailureBeforeFlushFallsBack(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	// Make flush very slow so the first checkpoint is still in flight
	// when the failure hits right after it.
	c.StorageBW = 1 << 20 // 1 MiB/s
	rc := RunConfig{
		Steps:            20,
		BatchTokens:      1 << 21,
		CheckpointEvery:  8,
		Policy:           AsyncPolicy{},
		FailAtExecSteps:  []int{9},
		RestartOverheadS: 1,
	}
	rep, err := SimulateRun(m, c, ZeRO2, rc)
	if err != nil {
		t.Fatal(err)
	}
	// The step-8 checkpoint was not durable at exec step 9: all 9 steps
	// are recomputed.
	stepS, _ := StepTime(m, c, ZeRO2, 1<<21)
	if rep.RecomputeS < 8*stepS {
		t.Errorf("recompute %v, want >= 8 steps (%v)", rep.RecomputeS, 8*stepS)
	}
}

func TestSimulateRunValidation(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	if _, err := SimulateRun(m, c, ZeRO2, RunConfig{Steps: 0, BatchTokens: 1}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := SimulateRun(m, c, ZeRO2, RunConfig{Steps: 5, BatchTokens: 1 << 20, CheckpointEvery: 2}); err == nil {
		t.Error("checkpointing without policy accepted")
	}
	small := c
	small.DeviceMemory = 1 << 20
	if _, err := SimulateRun(m, small, DP, runCfg(SyncPolicy{}, nil)); !errors.Is(err, ErrOOM) {
		t.Errorf("OOM not reported: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		DP: "DP", ZeRO1: "ZeRO-1", ZeRO2: "ZeRO-2", ZeRO3: "ZeRO-3", FSDP: "FSDP",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func BenchmarkSimulateRun(b *testing.B) {
	m := GPT13B()
	c := DefaultCluster()
	rc := runCfg(AsyncPolicy{}, []int{20, 45})
	for i := 0; i < b.N; i++ {
		if _, err := SimulateRun(m, c, ZeRO2, rc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReshard(b *testing.B) {
	params := make([]float32, 1<<20)
	ck, _ := NewCheckpoint(1, params, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Reshard(4); err != nil {
			b.Fatal(err)
		}
	}
}
