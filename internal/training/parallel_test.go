package training

import (
	"errors"
	"testing"
)

func TestPipelineBubbleFraction(t *testing.T) {
	if got := PipelineBubbleFraction(1, 8); got != 0 {
		t.Errorf("single stage bubble = %v", got)
	}
	// GPipe: p=4, m=4 -> 3/7.
	if got := PipelineBubbleFraction(4, 4); got != 3.0/7 {
		t.Errorf("bubble = %v, want 3/7", got)
	}
	// More micro-batches shrink the bubble.
	if PipelineBubbleFraction(4, 32) >= PipelineBubbleFraction(4, 4) {
		t.Error("bubble did not shrink with micro-batches")
	}
	if got := PipelineBubbleFraction(4, 0); got != PipelineBubbleFraction(4, 1) {
		t.Errorf("m=0 should clamp to 1: %v", got)
	}
}

func TestParallelConfigValidate(t *testing.T) {
	m := GPT13B()
	bad := []ParallelConfig{
		{Data: 0, Pipeline: 1, Tensor: 1},
		{Data: 1, Pipeline: 100, Tensor: 1},                // exceeds layers
		{Data: 1, Pipeline: 2, Tensor: 1, MicroBatches: 0}, // pp without micro-batches
	}
	for i, cfg := range bad {
		if err := cfg.Validate(m); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d accepted: %v", i, err)
		}
	}
	good := ParallelConfig{Data: 2, Pipeline: 4, Tensor: 2, MicroBatches: 8}
	if err := good.Validate(m); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Devices() != 16 {
		t.Errorf("Devices = %d", good.Devices())
	}
}

func TestMemoryPerDevice3DDividesByModelAxes(t *testing.T) {
	m := GPT13B()
	base, err := MemoryPerDevice3D(m, DP, ParallelConfig{Data: 1, Pipeline: 1, Tensor: 1})
	if err != nil {
		t.Fatal(err)
	}
	split, err := MemoryPerDevice3D(m, DP, ParallelConfig{Data: 1, Pipeline: 2, Tensor: 2, MicroBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if split != base/4 {
		t.Errorf("2x2 model split memory %d, want %d", split, base/4)
	}
	// ZeRO-3 along data axis composes with model splitting.
	z3, err := MemoryPerDevice3D(m, ZeRO3, ParallelConfig{Data: 4, Pipeline: 2, Tensor: 2, MicroBatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if z3 != base/16 {
		t.Errorf("3D + ZeRO-3 memory %d, want %d", z3, base/16)
	}
}

func TestStepTime3DBubblePenalty(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	few, err := StepTime3D(m, c, DP, ParallelConfig{Data: 1, Pipeline: 4, Tensor: 1, MicroBatches: 2}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	many, err := StepTime3D(m, c, DP, ParallelConfig{Data: 1, Pipeline: 4, Tensor: 1, MicroBatches: 32}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if many >= few {
		t.Errorf("more micro-batches did not reduce step time: %v vs %v", many, few)
	}
}

func TestStepTime3DTensorCommCost(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	// Same device count, tensor split vs data split: tensor pays
	// activation collectives.
	dataOnly, err := StepTime3D(m, c, DP, ParallelConfig{Data: 8, Pipeline: 1, Tensor: 1}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	tensorHeavy, err := StepTime3D(m, c, DP, ParallelConfig{Data: 1, Pipeline: 1, Tensor: 8}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if tensorHeavy <= dataOnly {
		t.Errorf("tensor-parallel step %v not slower than data-parallel %v at equal devices", tensorHeavy, dataOnly)
	}
}

func TestBestLayoutFitsTightMemory(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	c.DeviceMemory = 6 << 30 // pure DP (19.4GB) cannot fit
	cfg, stepS, err := BestLayout(m, c, DP, 8, 1<<21, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Devices() != 8 {
		t.Errorf("layout uses %d devices", cfg.Devices())
	}
	if cfg.Pipeline*cfg.Tensor < 2 {
		t.Errorf("layout %+v should split the model to fit 6GB", cfg)
	}
	if stepS <= 0 {
		t.Error("no step time")
	}
	mem, err := MemoryPerDevice3D(m, DP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem > c.DeviceMemory {
		t.Errorf("chosen layout does not fit: %d > %d", mem, c.DeviceMemory)
	}
}

func TestBestLayoutNoFit(t *testing.T) {
	m := GPT13B()
	c := DefaultCluster()
	c.DeviceMemory = 1 << 20 // 1 MiB: nothing fits
	if _, _, err := BestLayout(m, c, DP, 8, 1<<21, 8); !errors.Is(err, ErrOOM) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := BestLayout(m, c, DP, 0, 1<<21, 8); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
}
