// Package training simulates distributed LLM training (§2.3.2 "LLM
// Training"): the memory and communication behaviour of data-parallel
// strategies (plain DP, ZeRO stages 1–3 [6,47], FSDP [68]), and the
// checkpointing engines (synchronous, asynchronous [27,37,38,61],
// differential and quantized [17]) with checkpoint resharding across
// parallel-configuration changes [33,51,56].
//
// Nothing here trains a real network — the paper's training claims are
// about *systems* quantities (bytes per device, stall seconds, recovery
// time), which a cost model reproduces faithfully. All time is logical
// (seconds as float64); no wall-clock is consumed.
package training

import (
	"errors"
	"fmt"
)

// Errors callers branch on.
var (
	// ErrConfig indicates an invalid model or cluster configuration.
	ErrConfig = errors.New("training: invalid configuration")
	// ErrOOM indicates a strategy whose per-worker memory exceeds the
	// device capacity.
	ErrOOM = errors.New("training: out of device memory")
)

// ModelConfig describes the trained model.
type ModelConfig struct {
	// Params is the total parameter count.
	Params int64
	// Layers is used by pipeline-parallel splitting.
	Layers int
	// BytesPerParam is the forward/backward precision (2 for fp16).
	BytesPerParam int64
	// GradBytesPerParam is gradient precision (2 for fp16).
	GradBytesPerParam int64
	// OptimBytesPerParam covers optimizer state: Adam keeps fp32
	// momentum, variance, and a master copy — 12 bytes/param.
	OptimBytesPerParam int64
}

// Validate checks the configuration.
func (m ModelConfig) Validate() error {
	if m.Params <= 0 || m.Layers <= 0 || m.BytesPerParam <= 0 ||
		m.GradBytesPerParam <= 0 || m.OptimBytesPerParam <= 0 {
		return fmt.Errorf("%w: %+v", ErrConfig, m)
	}
	return nil
}

// GPT13B returns a 1.3B-parameter configuration (the E10 subject) with
// mixed-precision Adam accounting.
func GPT13B() ModelConfig {
	return ModelConfig{
		Params:             1_300_000_000,
		Layers:             24,
		BytesPerParam:      2,
		GradBytesPerParam:  2,
		OptimBytesPerParam: 12,
	}
}

// ClusterConfig describes the training cluster.
type ClusterConfig struct {
	// Workers is the data-parallel degree.
	Workers int
	// DeviceMemory is per-worker memory in bytes.
	DeviceMemory int64
	// FLOPs is per-worker sustained throughput (fp16 FLOP/s).
	FLOPs float64
	// InterconnectBW is per-worker collective bandwidth in bytes/s.
	InterconnectBW float64
	// StorageBW is checkpoint persistence bandwidth in bytes/s (shared
	// filesystem or object store).
	StorageBW float64
	// HostMemoryBW is the device→host snapshot copy bandwidth in
	// bytes/s, used by asynchronous checkpointing.
	HostMemoryBW float64
}

// Validate checks the configuration.
func (c ClusterConfig) Validate() error {
	if c.Workers <= 0 || c.DeviceMemory <= 0 || c.FLOPs <= 0 ||
		c.InterconnectBW <= 0 || c.StorageBW <= 0 || c.HostMemoryBW <= 0 {
		return fmt.Errorf("%w: %+v", ErrConfig, c)
	}
	return nil
}

// DefaultCluster returns an 8-worker A100-like configuration.
func DefaultCluster() ClusterConfig {
	return ClusterConfig{
		Workers:        8,
		DeviceMemory:   40 << 30,  // 40 GiB
		FLOPs:          150e12,    // 150 TFLOP/s sustained
		InterconnectBW: 100 << 30, // 100 GiB/s NVLink-class
		StorageBW:      2 << 30,   // 2 GiB/s shared storage
		HostMemoryBW:   20 << 30,  // 20 GiB/s D2H
	}
}

// Strategy enumerates data-parallel memory strategies.
type Strategy int

// Supported strategies, in increasing sharding order.
const (
	// DP is plain data parallelism: full replication.
	DP Strategy = iota
	// ZeRO1 shards optimizer state.
	ZeRO1
	// ZeRO2 also shards gradients.
	ZeRO2
	// ZeRO3 also shards parameters.
	ZeRO3
	// FSDP is PyTorch's fully sharded data parallel — same memory model
	// as ZeRO3 with slightly different communication scheduling.
	FSDP
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DP:
		return "DP"
	case ZeRO1:
		return "ZeRO-1"
	case ZeRO2:
		return "ZeRO-2"
	case ZeRO3:
		return "ZeRO-3"
	case FSDP:
		return "FSDP"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// MemoryPerWorker returns the model-state bytes each worker holds under
// the strategy — the ZeRO paper's accounting: parameters, gradients and
// optimizer states are replicated or sharded per stage. Activations are
// excluded (they depend on batch size, not strategy).
func MemoryPerWorker(m ModelConfig, s Strategy, workers int) (int64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if workers <= 0 {
		return 0, fmt.Errorf("%w: workers %d", ErrConfig, workers)
	}
	n := int64(workers)
	p := m.Params
	paramB := p * m.BytesPerParam
	gradB := p * m.GradBytesPerParam
	optimB := p * m.OptimBytesPerParam
	switch s {
	case DP:
		return paramB + gradB + optimB, nil
	case ZeRO1:
		return paramB + gradB + optimB/n, nil
	case ZeRO2:
		return paramB + (gradB+optimB)/n, nil
	case ZeRO3, FSDP:
		return (paramB + gradB + optimB) / n, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %d", ErrConfig, int(s))
	}
}

// CommBytesPerStep returns the per-worker communication volume of one
// training step. Ring collectives move ~2x the payload; ZeRO-3/FSDP add
// a parameter all-gather in forward and backward (the ZeRO paper's "1.5x
// of baseline" — 3Ψ vs 2Ψ parameter-scale volume).
func CommBytesPerStep(m ModelConfig, s Strategy, workers int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if workers <= 0 {
		return 0, fmt.Errorf("%w: workers %d", ErrConfig, workers)
	}
	if workers == 1 {
		return 0, nil
	}
	psi := float64(m.Params) * float64(m.GradBytesPerParam)
	switch s {
	case DP, ZeRO1, ZeRO2:
		// Gradient all-reduce: reduce-scatter + all-gather = 2Ψ.
		return 2 * psi, nil
	case ZeRO3, FSDP:
		// Reduce-scatter grads (Ψ) + forward param all-gather (Ψ) +
		// backward param all-gather (Ψ) = 3Ψ.
		return 3 * psi, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %d", ErrConfig, int(s))
	}
}

// StepTime returns one step's simulated duration for the given global
// batch (in tokens). Compute follows the 6·P·T FLOP rule for transformer
// training; communication overlaps with backward compute up to
// overlapFraction (0.5 is typical for well-tuned stacks; FSDP prefetch
// gets slightly more).
func StepTime(m ModelConfig, c ClusterConfig, s Strategy, batchTokens int64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if batchTokens <= 0 {
		return 0, fmt.Errorf("%w: batchTokens %d", ErrConfig, batchTokens)
	}
	perWorkerTokens := float64(batchTokens) / float64(c.Workers)
	computeS := 6 * float64(m.Params) * perWorkerTokens / c.FLOPs
	commBytes, err := CommBytesPerStep(m, s, c.Workers)
	if err != nil {
		return 0, err
	}
	commS := commBytes / c.InterconnectBW
	overlap := 0.5
	if s == FSDP {
		overlap = 0.6 // prefetched all-gathers hide more latency
	}
	hidden := commS * overlap
	if hidden > computeS {
		hidden = computeS
	}
	return computeS + (commS - hidden), nil
}

// FitsMemory reports whether the strategy fits the cluster, returning
// ErrOOM with the deficit otherwise.
func FitsMemory(m ModelConfig, c ClusterConfig, s Strategy) error {
	need, err := MemoryPerWorker(m, s, c.Workers)
	if err != nil {
		return err
	}
	if need > c.DeviceMemory {
		return fmt.Errorf("%w: need %d bytes, have %d (%s, %d workers)",
			ErrOOM, need, c.DeviceMemory, s, c.Workers)
	}
	return nil
}

// CheckpointBytes is the persisted checkpoint size: parameters plus
// optimizer state (gradients are not checkpointed).
func CheckpointBytes(m ModelConfig) int64 {
	return m.Params * (m.BytesPerParam + m.OptimBytesPerParam)
}
