package serving

import (
	"fmt"
	"sort"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/workload"
)

// AdmissionPolicy selects what the router does with a request whose
// tenant has exhausted its token-bucket allowance. The zero value admits
// everything — the historical behavior, byte-identical to it.
type AdmissionPolicy int

// Supported admission policies.
const (
	// AdmitAll performs no admission control (historical behavior).
	AdmitAll AdmissionPolicy = iota
	// AdmitReject turns away requests the tenant's bucket cannot cover —
	// load shedding: the cluster never sees the excess.
	AdmitReject
	// AdmitQueue holds excess requests at the router until the tenant's
	// bucket refills (a reservation: the bucket goes negative and the
	// request is delivered when it would have reached zero), rejecting
	// only when the wait would exceed MaxQueueMS. TTFT includes the hold,
	// so over-rate tenants pay in latency instead of errors.
	AdmitQueue
)

// String names the policy.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitAll:
		return "none"
	case AdmitReject:
		return "token-bucket"
	case AdmitQueue:
		return "token-bucket-queue"
	default:
		return fmt.Sprintf("admission(%d)", int(p))
	}
}

// AdmissionConfig parameterizes per-tenant token-bucket admission at the
// router. Cost is charged in trace tokens (prompt + output) — the same
// unit as instance load — so the bucket bounds each tenant's outstanding
// token demand, not just its request count. The zero value is AdmitAll.
type AdmissionConfig struct {
	Policy AdmissionPolicy
	// BurstTokens is a tenant's bucket capacity (its allowed burst).
	BurstTokens float64
	// RefillPerSec is a tenant's sustained token allowance per second.
	RefillPerSec float64
	// MaxQueueMS bounds AdmitQueue's hold; a request whose reservation
	// would wait longer is rejected without charging the bucket.
	// 0 means unbounded.
	MaxQueueMS float64
	// Weights scales BurstTokens and RefillPerSec per tenant ID; tenants
	// absent from the map (and the "" tenant of untenanted traces)
	// weigh 1. Weighted refill is what makes the bucket a fairness
	// mechanism rather than a flat cap.
	Weights map[string]float64
}

func (a AdmissionConfig) weight(tenant string) float64 {
	if w, ok := a.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// tenantBucket is one tenant's token-bucket state on the logical clock.
// level may go negative under AdmitQueue: the deficit is the reservation
// backlog, and a request admits at the instant level would return to 0.
type tenantBucket struct {
	level     float64
	lastMS    float64
	ratePerMS float64
	burst     float64
	queued    int // requests currently held at the router
}

func (b *tenantBucket) refill(now float64) {
	b.level += (now - b.lastMS) * b.ratePerMS
	if b.level > b.burst {
		b.level = b.burst
	}
	b.lastMS = now
}

// tenantTally accumulates one tenant's admission outcomes for the
// post-run TenantStats.
type tenantTally struct {
	admitted, rejected, delayed int
	delayMS                     metrics.Summary
}

// admitter applies an AdmissionConfig at the router's delivery point.
// Buckets are created lazily per tenant and only ever accessed by key
// (final stats iterate a sorted key list), so map order never reaches
// the simulation.
type admitter struct {
	cfg     AdmissionConfig
	buckets map[string]*tenantBucket
	tallies map[string]*tenantTally
	reg     *obs.Registry // nil-safe: untraced runs record nothing
}

func newAdmitter(cfg AdmissionConfig, reg *obs.Registry) *admitter {
	return &admitter{
		cfg:     cfg,
		buckets: make(map[string]*tenantBucket),
		tallies: make(map[string]*tenantTally),
		reg:     reg,
	}
}

func (a *admitter) bucket(tenant string) *tenantBucket {
	b, ok := a.buckets[tenant]
	if !ok {
		w := a.cfg.weight(tenant)
		b = &tenantBucket{
			level:     a.cfg.BurstTokens * w,
			ratePerMS: a.cfg.RefillPerSec * w / 1000,
			burst:     a.cfg.BurstTokens * w,
		}
		a.buckets[tenant] = b
	}
	return b
}

func (a *admitter) tally(tenant string) *tenantTally {
	t, ok := a.tallies[tenant]
	if !ok {
		t = &tenantTally{}
		a.tallies[tenant] = t
	}
	return t
}

// decide charges r against its tenant's bucket and returns how long the
// router must hold the request (0 = deliver now) and whether it is
// admitted at all. Rejections never charge the bucket.
func (a *admitter) decide(now float64, r workload.Request) (delayMS float64, ok bool) {
	cost := float64(r.PromptTokens + r.OutputTokens)
	b := a.bucket(r.Tenant)
	b.refill(now)
	switch a.cfg.Policy {
	case AdmitReject:
		if b.level < cost {
			a.reject(now, r)
			return 0, false
		}
		b.level -= cost
	case AdmitQueue:
		wait := 0.0
		if deficit := cost - b.level; deficit > 0 {
			if b.ratePerMS <= 0 {
				a.reject(now, r)
				return 0, false
			}
			wait = deficit / b.ratePerMS
		}
		if a.cfg.MaxQueueMS > 0 && wait > a.cfg.MaxQueueMS {
			a.reject(now, r)
			return 0, false
		}
		b.level -= cost // reservation: negative level = queued backlog
		if wait > 0 {
			t := a.tally(r.Tenant)
			t.delayed++
			t.delayMS.Add(wait)
			b.queued++
			a.gaugeDepth(now, r.Tenant, b)
			return wait, true
		}
	}
	a.tally(r.Tenant).admitted++
	a.counter(now, r.Tenant, "admitted")
	return 0, true
}

// delivered completes a held request's admission accounting at its
// delayed delivery instant.
func (a *admitter) delivered(now float64, tenant string) {
	b := a.bucket(tenant)
	b.queued--
	a.gaugeDepth(now, tenant, b)
	a.tally(tenant).admitted++
	a.counter(now, tenant, "admitted")
}

func (a *admitter) reject(now float64, r workload.Request) {
	a.tally(r.Tenant).rejected++
	a.counter(now, r.Tenant, "rejected")
}

func (a *admitter) counter(now float64, tenant, name string) {
	if a.reg == nil || tenant == "" {
		return
	}
	a.reg.Counter("tenant/"+tenant+"/"+name).Add(now, 1)
}

func (a *admitter) gaugeDepth(now float64, tenant string, b *tenantBucket) {
	if a.reg == nil || tenant == "" {
		return
	}
	a.reg.Gauge("tenant/"+tenant+"/queue_depth").Set(now, float64(b.queued))
}

// TenantStats summarizes one tenant's admission and service outcomes in
// a routed run.
type TenantStats struct {
	Tenant string
	// Admitted counts requests the admission controller let through
	// (every arrival when admission is off); AdmissionRejected counts
	// token-bucket turn-aways, Delayed the AdmitQueue holds, and
	// MeanDelayMS the mean hold across them.
	Admitted          int
	AdmissionRejected int
	Delayed           int
	MeanDelayMS       float64
	// Served counts finished sequences and OutputTokens their emitted
	// tokens — the per-tenant allocation a fairness index weighs.
	Served       int
	OutputTokens int
}

// tenantStats folds admission tallies (nil when admission was off) and
// served results into per-tenant rows, sorted by tenant ID. Untenanted
// requests ("") are excluded: a run with no Tenant fields reports none.
func tenantStats(adm *admitter, results []Result) []TenantStats {
	rows := make(map[string]*TenantStats)
	row := func(t string) *TenantStats {
		s, ok := rows[t]
		if !ok {
			s = &TenantStats{Tenant: t}
			rows[t] = s
		}
		return s
	}
	for i := range results {
		r := &results[i]
		if r.Req.Tenant == "" {
			continue
		}
		s := row(r.Req.Tenant)
		if r.Rejected {
			continue
		}
		s.Served++
		s.OutputTokens += r.Req.OutputTokens
	}
	if adm != nil {
		for t, tl := range adm.tallies {
			if t == "" {
				continue
			}
			s := row(t)
			s.Admitted = tl.admitted
			s.AdmissionRejected = tl.rejected
			s.Delayed = tl.delayed
			s.MeanDelayMS = tl.delayMS.Mean()
		}
	} else {
		for i := range results {
			r := &results[i]
			if r.Req.Tenant != "" {
				row(r.Req.Tenant).Admitted++
			}
		}
	}
	ids := make([]string, 0, len(rows))
	for t := range rows {
		ids = append(ids, t)
	}
	sort.Strings(ids)
	out := make([]TenantStats, len(ids))
	for i, t := range ids {
		out[i] = *rows[t]
	}
	return out
}
