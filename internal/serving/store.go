package serving

import (
	"fmt"
	"math"
)

// SessionStore caches conversation KV state between turns — the
// AttentionStore [19] design: a GPU-resident tier backed by a larger CPU
// (host-memory) tier. A later turn of the same session reuses the cached
// span instead of re-prefilling its history; CPU-tier hits pay a
// transmission cost that can be overlapped with the prefill of the
// uncached suffix [19, 45].
//
// Eviction policy is pluggable (the E14 comparison): LRU and LFU evict
// whole sessions (vLLM's all-or-nothing semantics [28]); TreeLRU trims
// tokens from the tail of the least-recently-used session first —
// TensorRT-LLM's dependency-tree rule that "evicts dependent nodes
// first, even if they have more recent reuse counters" [3]: later-turn
// KV depends on earlier-turn KV, so tails go before roots.
type SessionStore struct {
	cfg SessionStoreConfig

	gpu              map[string]*storeEntry
	cpu              map[string]*storeEntry
	gpuUsed, cpuUsed int

	// Stats.
	Hits, Misses   int
	SavedTokens    int
	Demotions      int
	Evictions      int
	TransferTokens int
}

type storeEntry struct {
	tokens int
	lastMS float64
	freq   int
}

// EvictionPolicy selects the victim strategy.
type EvictionPolicy int

// Supported policies.
const (
	// LRU evicts the least-recently-used session entirely.
	LRU EvictionPolicy = iota
	// LFU evicts the least-frequently-used session entirely.
	LFU
	// TreeLRU trims tail tokens from the least-recently-used session,
	// preserving its prefix (dependency-aware partial eviction).
	TreeLRU
)

// String names the policy.
func (p EvictionPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case TreeLRU:
		return "TreeLRU"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// SessionStoreConfig sizes and parameterizes the store.
type SessionStoreConfig struct {
	// GPUCapacityTokens and CPUCapacityTokens size the two tiers
	// (CPU 0 disables the second tier).
	GPUCapacityTokens int
	CPUCapacityTokens int
	Policy            EvictionPolicy
	// TransferMSPerToken is the CPU→GPU fetch cost.
	TransferMSPerToken float64
	// OverlapTransfer hides the fetch behind the prefill of the
	// uncached suffix (scheduler-aware fetching).
	OverlapTransfer bool
	// PrefillTokensPerMS converts residual transfer delay into
	// token-equivalents so Lookup can report net savings.
	PrefillTokensPerMS float64
}

// NewSessionStore builds the store.
func NewSessionStore(cfg SessionStoreConfig) (*SessionStore, error) {
	if cfg.GPUCapacityTokens <= 0 {
		return nil, fmt.Errorf("%w: gpu capacity %d", ErrConfig, cfg.GPUCapacityTokens)
	}
	if cfg.PrefillTokensPerMS <= 0 {
		cfg.PrefillTokensPerMS = DefaultGPU().PrefillTokensPerMS
	}
	return &SessionStore{
		cfg: cfg,
		gpu: make(map[string]*storeEntry),
		cpu: make(map[string]*storeEntry),
	}, nil
}

// Lookup reports the *net* prompt tokens saved for a request of session
// with historyTokens of reusable span inside a promptTokens prompt. CPU
// hits subtract the token-equivalent of any unhidden transfer time; with
// OverlapTransfer the fetch hides behind prefilling the prompt's *new*
// suffix (promptTokens − reused span) — scheduler-aware fetching. The
// entry's recency and frequency are refreshed.
func (s *SessionStore) Lookup(nowMS float64, session string, historyTokens, promptTokens int) int {
	if s == nil || session == "" || historyTokens <= 0 {
		return 0
	}
	if e, ok := s.gpu[session]; ok {
		s.Hits++
		e.lastMS = nowMS
		e.freq++
		saved := min(e.tokens, historyTokens)
		s.SavedTokens += saved
		return saved
	}
	if e, ok := s.cpu[session]; ok {
		s.Hits++
		e.lastMS = nowMS
		e.freq++
		usable := min(e.tokens, historyTokens)
		s.TransferTokens += usable
		transferMS := float64(usable) * s.cfg.TransferMSPerToken
		if s.cfg.OverlapTransfer {
			// Hidden behind prefilling the prompt's uncached remainder
			// (the new turn's text plus any history beyond the cache).
			suffix := promptTokens - usable
			if suffix < 0 {
				suffix = 0
			}
			suffixMS := float64(suffix) / s.cfg.PrefillTokensPerMS
			transferMS = math.Max(0, transferMS-suffixMS)
		}
		penaltyTokens := int(transferMS * s.cfg.PrefillTokensPerMS)
		saved := usable - penaltyTokens
		if saved < 0 {
			saved = 0
		}
		s.SavedTokens += saved
		// Promote to GPU tier for the active turn.
		s.cpuUsed -= e.tokens
		delete(s.cpu, session)
		s.insertGPU(nowMS, session, e.tokens, e.freq)
		return saved
	}
	s.Misses++
	return 0
}

// Store caches the session's full KV span (prompt+output of the turn
// that just finished).
func (s *SessionStore) Store(nowMS float64, session string, tokens int) {
	if s == nil || session == "" || tokens <= 0 {
		return
	}
	if tokens > s.cfg.GPUCapacityTokens {
		tokens = s.cfg.GPUCapacityTokens
	}
	freq := 1
	if e, ok := s.gpu[session]; ok {
		freq = e.freq
		s.gpuUsed -= e.tokens
		delete(s.gpu, session)
	} else if e, ok := s.cpu[session]; ok {
		freq = e.freq
		s.cpuUsed -= e.tokens
		delete(s.cpu, session)
	}
	s.insertGPU(nowMS, session, tokens, freq)
}

func (s *SessionStore) insertGPU(nowMS float64, session string, tokens, freq int) {
	for s.gpuUsed+tokens > s.cfg.GPUCapacityTokens {
		if !s.evictGPU(nowMS) {
			return // cannot make space
		}
	}
	s.gpu[session] = &storeEntry{tokens: tokens, lastMS: nowMS, freq: freq}
	s.gpuUsed += tokens
}

// evictGPU frees space per the policy, demoting victims to the CPU tier
// where possible. Returns false when nothing can be evicted.
func (s *SessionStore) evictGPU(nowMS float64) bool {
	victim := s.pickVictim()
	if victim == "" {
		return false
	}
	e := s.gpu[victim]
	if s.cfg.Policy == TreeLRU {
		// Trim a quarter of the victim's tail (round up); the prefix
		// stays useful. Entries trimmed to nothing disappear.
		trim := (e.tokens + 3) / 4
		e.tokens -= trim
		s.gpuUsed -= trim
		s.Evictions++
		if e.tokens <= 0 {
			delete(s.gpu, victim)
		}
		return true
	}
	// Whole-entry eviction, demote to CPU tier.
	s.gpuUsed -= e.tokens
	delete(s.gpu, victim)
	s.Evictions++
	if s.cfg.CPUCapacityTokens > 0 {
		for s.cpuUsed+e.tokens > s.cfg.CPUCapacityTokens {
			if !s.evictCPULRU() {
				return true // demoted entry is dropped instead
			}
		}
		s.cpu[victim] = e
		s.cpuUsed += e.tokens
		s.Demotions++
	}
	return true
}

func (s *SessionStore) pickVictim() string {
	victim := ""
	bestLast := math.Inf(1)
	bestFreq := math.MaxInt32
	for id, e := range s.gpu {
		switch s.cfg.Policy {
		case LFU:
			if e.freq < bestFreq || (e.freq == bestFreq && e.lastMS < bestLast) ||
				(e.freq == bestFreq && e.lastMS == bestLast && id < victim) {
				victim, bestFreq, bestLast = id, e.freq, e.lastMS
			}
		default: // LRU and TreeLRU share recency-based victim choice
			if e.lastMS < bestLast || (e.lastMS == bestLast && id < victim) {
				victim, bestLast = id, e.lastMS
			}
		}
	}
	return victim
}

func (s *SessionStore) evictCPULRU() bool {
	victim := ""
	bestLast := math.Inf(1)
	for id, e := range s.cpu {
		if e.lastMS < bestLast || (e.lastMS == bestLast && id < victim) {
			victim, bestLast = id, e.lastMS
		}
	}
	if victim == "" {
		return false
	}
	s.cpuUsed -= s.cpu[victim].tokens
	delete(s.cpu, victim)
	s.Evictions++
	return true
}

// DropGPU wipes the GPU-resident tier — an instance crash loses device
// memory, while the CPU (host-memory) tier survives and keeps serving
// transfer-priced hits after recovery. Stats counters are preserved.
func (s *SessionStore) DropGPU() {
	if s == nil {
		return
	}
	s.gpu = make(map[string]*storeEntry)
	s.gpuUsed = 0
}

// HitRate is hits / (hits + misses).
func (s *SessionStore) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
