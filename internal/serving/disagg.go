package serving

import (
	"fmt"
	"sort"

	"dataai/internal/workload"
)

// DisaggOpts configures RunDisaggregated.
type DisaggOpts struct {
	// PrefillGPUs and DecodeGPUs split a fixed device budget between the
	// two phases — the DistServe/Splitwise architecture.
	PrefillGPUs int
	DecodeGPUs  int
	// TransferMSPerToken is the KV shipping cost from prefill to decode
	// instances.
	TransferMSPerToken float64
	// OverlapTransfer hides transmission behind prefill computation
	// (layer-wise streaming), the common optimization of [19, 45].
	OverlapTransfer bool
}

// RunColocated serves the trace on n identical GPUs, each running
// continuous batching over a round-robin share — the baseline where
// every GPU interleaves prefill and decode and prefills stall decodes.
func RunColocated(gpu GPUConfig, reqs []workload.Request, n int, opts ContinuousOpts) (*Report, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: gpus %d", ErrConfig, n)
	}
	shares := make([][]workload.Request, n)
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })
	for i, r := range ordered {
		shares[i%n] = append(shares[i%n], r)
	}
	var all []Result
	peak := 0
	for _, share := range shares {
		if len(share) == 0 {
			continue
		}
		shareOpts := opts
		shareOpts.KV = nil // each GPU owns its cache
		rep, err := RunContinuous(gpu, share, shareOpts)
		if err != nil {
			return nil, err
		}
		all = append(all, rep.Results...)
		peak += rep.PeakKVBlocks
	}
	rep := buildReport(all)
	rep.PeakKVBlocks = peak
	return rep, nil
}

// RunDisaggregated serves the trace with prefill and decode on separate
// GPU pools. Prefill instances each process one prompt at a time FCFS;
// finished KV ships to the least-loaded decode instance, which batches
// decodes continuously and is never stalled by a prefill.
func RunDisaggregated(gpu GPUConfig, reqs []workload.Request, opts DisaggOpts) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if opts.PrefillGPUs < 1 || opts.DecodeGPUs < 1 {
		return nil, fmt.Errorf("%w: pool sizes %d/%d", ErrConfig, opts.PrefillGPUs, opts.DecodeGPUs)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	// Phase 1: prefill pool. Each GPU serves prompts FCFS.
	prefillFree := make([]float64, opts.PrefillGPUs)
	jobs := make([]decodeJob, 0, len(ordered))
	for _, r := range ordered {
		// Earliest-available prefill GPU.
		g := 0
		for i := 1; i < len(prefillFree); i++ {
			if prefillFree[i] < prefillFree[g] {
				g = i
			}
		}
		start := r.ArrivalMS
		if prefillFree[g] > start {
			start = prefillFree[g]
		}
		end := start + gpu.prefillMS(r.PromptTokens)
		prefillFree[g] = end
		transfer := float64(r.PromptTokens) * opts.TransferMSPerToken
		if opts.OverlapTransfer {
			transfer = 0 // streamed layer-wise during prefill
		}
		jobs = append(jobs, decodeJob{req: r, firstToken: end, readyMS: end + transfer})
	}

	// Phase 2: decode pool. Assign jobs round-robin by readiness order,
	// then run a decode-only continuous loop per GPU.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].readyMS < jobs[j].readyMS })
	pools := make([][]decodeJob, opts.DecodeGPUs)
	for i, j := range jobs {
		pools[i%opts.DecodeGPUs] = append(pools[i%opts.DecodeGPUs], j)
	}
	var results []Result
	peak := 0
	for _, pool := range pools {
		res, peakBlocks := runDecodePool(gpu, pool)
		results = append(results, res...)
		peak += peakBlocks
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = peak
	return rep, nil
}

// runDecodePool batches decode iterations over jobs on one decode GPU.
func runDecodePool(gpu GPUConfig, jobs []decodeJob) ([]Result, int) {
	kv := NewPagedKV(gpu)
	var results []Result
	type dstate struct {
		job       decodeJob
		generated int
		finishMS  float64
	}
	clock := 0.0
	next := 0
	var running []*dstate
	var waiting []*dstate

	finish := func(d *dstate) {
		kv.Free(d.job.req.ID)
		r := Result{
			Req:             d.job.req,
			FinishMS:        d.finishMS,
			TTFTms:          d.job.firstToken - d.job.req.ArrivalMS,
			PrefilledTokens: d.job.req.PromptTokens,
		}
		if d.job.req.OutputTokens > 1 {
			r.TBTms = (d.finishMS - d.job.firstToken) / float64(d.job.req.OutputTokens-1)
		}
		results = append(results, r)
	}

	for next < len(jobs) || len(waiting) > 0 || len(running) > 0 {
		for next < len(jobs) && jobs[next].readyMS <= clock {
			d := &dstate{job: jobs[next], generated: 1} // token 1 came from prefill
			if d.job.req.OutputTokens <= 1 {
				d.finishMS = d.job.firstToken
				kv.Alloc(d.job.req.ID, 0)
				finish(d)
			} else {
				waiting = append(waiting, d)
			}
			next++
		}
		admitted := waiting[:0]
		for _, d := range waiting {
			if (gpu.MaxBatch == 0 || len(running) < gpu.MaxBatch) &&
				kv.Alloc(d.job.req.ID, d.job.req.PromptTokens+d.job.req.OutputTokens) {
				running = append(running, d)
				continue
			}
			admitted = append(admitted, d)
		}
		waiting = admitted

		if len(running) == 0 {
			if next < len(jobs) {
				clock = jobs[next].readyMS
				continue
			}
			if len(waiting) > 0 {
				// Blocked on KV space with nothing running: impossible
				// to progress; mark rejected.
				for _, d := range waiting {
					results = append(results, Result{Req: d.job.req, Rejected: true})
				}
				waiting = nil
			}
			break
		}
		clock += gpu.decodeIterMS(len(running))
		still := running[:0]
		for _, d := range running {
			d.generated++
			d.finishMS = clock
			if d.generated >= d.job.req.OutputTokens {
				finish(d)
				continue
			}
			still = append(still, d)
		}
		running = still
	}
	return results, kv.PeakBlocks()
}

// decodeJob is shared between RunDisaggregated and runDecodePool.
type decodeJob struct {
	req        workload.Request
	firstToken float64
	readyMS    float64
}
