package serving

import (
	"fmt"
	"sort"

	"dataai/internal/obs"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// DisaggOpts configures RunDisaggregated.
type DisaggOpts struct {
	// PrefillGPUs and DecodeGPUs split a fixed device budget between the
	// two phases — the DistServe/Splitwise architecture.
	PrefillGPUs int
	DecodeGPUs  int
	// TransferMSPerToken is the KV shipping cost from prefill to decode
	// instances.
	TransferMSPerToken float64
	// OverlapTransfer hides transmission behind prefill computation
	// (layer-wise streaming), the common optimization of [19, 45].
	OverlapTransfer bool
	// Faults, when non-nil, draws per-transfer KV-shipping failures from
	// the plan's seed: a failed transfer is retried after paying the full
	// (unoverlapped) transfer time again. Nil disables injection.
	Faults *FaultPlan
	// Trace, when non-nil, records the run's timeline: prefill-pool and
	// decode-pool iteration spans plus per-request lifecycle phases
	// (queue → prefill → transfer → queue → decode). Nil (the default)
	// changes nothing and costs nothing.
	Trace *obs.Tracer
}

// RunColocated serves the trace on n identical GPUs, each running
// continuous batching over a round-robin share — the baseline where
// every GPU interleaves prefill and decode and prefills stall decodes.
// All instances run as event processes on one shared sim.Engine clock.
func RunColocated(gpu GPUConfig, reqs []workload.Request, n int, opts ContinuousOpts) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: gpus %d", ErrConfig, n)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	eng := sim.NewEngine()
	pool := &seqPool{}
	perInst := make([][]Result, n)
	insts := make([]*instance, n)
	shares := make([][]workload.Request, n)
	for i := range insts {
		i := i
		shareOpts := opts
		shareOpts.KV = nil // each GPU owns its cache
		insts[i] = newInstance(i, gpu, shareOpts, eng, pool, func(_ float64, r Result) { perInst[i] = append(perInst[i], r) })
	}
	for i, r := range ordered {
		shares[i%n] = append(shares[i%n], r)
	}
	for i, share := range shares {
		i := i
		scheduleArrivals(eng, gpu, share, insts[i], pool, func(r Result) { perInst[i] = append(perInst[i], r) })
	}
	eng.Run()

	var all []Result
	peak := 0
	preemptions := 0
	for i, inst := range insts {
		for j := 0; j < inst.waiting.Len(); j++ {
			s := inst.waiting.At(j)
			perInst[i] = append(perInst[i], Result{Req: s.req, Rejected: true})
		}
		all = append(all, perInst[i]...)
		peak += inst.kv.PeakBlocks()
		preemptions += inst.preemptions
	}
	rep := buildReport(all)
	rep.PeakKVBlocks = peak
	rep.Preemptions = preemptions
	return rep, nil
}

// RunDisaggregated serves the trace with prefill and decode on separate
// GPU pools. Prefill instances each process one prompt at a time FCFS;
// finished KV ships to decode instances round-robin in readiness order;
// decode GPUs batch continuously and are never stalled by a prefill.
// Both pools run on one shared sim.Engine clock: arrivals claim the
// earliest-available prefill GPU, and each transfer-completion event
// hands the sequence to the decode pool.
func RunDisaggregated(gpu GPUConfig, reqs []workload.Request, opts DisaggOpts) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if opts.PrefillGPUs < 1 || opts.DecodeGPUs < 1 {
		return nil, fmt.Errorf("%w: pool sizes %d/%d", ErrConfig, opts.PrefillGPUs, opts.DecodeGPUs)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	eng := sim.NewEngine()
	perPool := make([][]Result, opts.DecodeGPUs)
	pools := make([]*decodeInstance, opts.DecodeGPUs)
	for i := range pools {
		i := i
		pools[i] = &decodeInstance{
			id: i, gpu: gpu, kv: NewPagedKV(gpu), eng: eng,
			onFinish: func(_ float64, r Result) { perPool[i] = append(perPool[i], r) },
		}
		if opts.Trace != nil {
			pools[i].trace = opts.Trace
			pools[i].track = fmt.Sprintf("decode%d", i)
		}
	}

	// Prefill pool state: per-GPU next-free time, advanced in arrival
	// order (the engine fires arrivals in exactly that order).
	prefillFree := make([]float64, opts.PrefillGPUs)
	nextPool := 0
	var deliver func(job decodeJob, attempt int)
	deliver = func(job decodeJob, attempt int) {
		eng.At(job.readyMS, func(now float64) {
			if opts.Faults != nil && opts.Faults.transferFails(job.req.ID, attempt) {
				// The shipment was lost: resend, paying the full transfer
				// time (a retry cannot hide behind the finished prefill).
				if opts.Trace != nil {
					opts.Trace.Instant(now, reqTrack(job.req), "transfer-retry")
					opts.Trace.Registry().Counter("transfer/retries").Add(now, 1)
				}
				retry := job
				retry.readyMS = now + float64(job.req.PromptTokens)*opts.TransferMSPerToken
				deliver(retry, attempt+1)
				return
			}
			opts.Trace.End(now, job.transfer)
			p := pools[nextPool%len(pools)]
			nextPool++
			p.arrive(now, job)
		})
	}
	for _, r := range ordered {
		r := r
		eng.At(r.ArrivalMS, func(now float64) {
			// Earliest-available prefill GPU.
			g := 0
			for i := 1; i < len(prefillFree); i++ {
				if prefillFree[i] < prefillFree[g] {
					g = i
				}
			}
			start := now
			if prefillFree[g] > start {
				start = prefillFree[g]
			}
			end := start + gpu.prefillMS(r.PromptTokens)
			prefillFree[g] = end
			transfer := float64(r.PromptTokens) * opts.TransferMSPerToken
			if opts.OverlapTransfer {
				transfer = 0 // streamed layer-wise during prefill
			}
			job := decodeJob{req: r, firstToken: end, readyMS: end + transfer}
			if tr := opts.Trace; tr != nil {
				// The prefill pool's schedule is fully decided here, so its
				// spans are recorded now with their (future) logical times;
				// the exporter's (time, seq) sort puts them in place.
				gSpan := tr.Begin(start, fmt.Sprintf("prefill%d", g), obs.CatGPU, "prefill", 0)
				tr.End(end, gSpan)
				job.root = tr.Begin(now, reqTrack(r), obs.CatRequest, "request", 0)
				q := tr.Begin(now, reqTrack(r), obs.CatRequest, "queue", job.root)
				tr.End(start, q)
				p := tr.Begin(start, reqTrack(r), obs.CatRequest, "prefill", job.root)
				tr.End(end, p)
				job.transfer = tr.Begin(end, reqTrack(r), obs.CatRequest, "transfer", job.root)
			}
			deliver(job, 0)
		})
	}
	eng.Run()

	var results []Result
	peak := 0
	for i, pool := range pools {
		for _, d := range pool.waiting {
			if tr := opts.Trace; tr != nil {
				tr.End(eng.Now(), d.phase)
				tr.EndReason(eng.Now(), d.job.root, "reject")
			}
			perPool[i] = append(perPool[i], Result{Req: d.job.req, Rejected: true})
		}
		results = append(results, perPool[i]...)
		peak += pool.kv.PeakBlocks()
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = peak
	return rep, nil
}

// decodeInstance is one decode-pool GPU as an event process: it batches
// decode-only iterations over sequences whose KV arrived by transfer,
// reproducing the historical per-pool loop step for step.
type decodeInstance struct {
	id  int
	gpu GPUConfig
	kv  KVManager
	eng *sim.Engine

	waiting []*dstate
	running []*dstate
	busy    bool

	// trace/track mirror instance's observability seam (nil/"" when
	// tracing is off).
	trace *obs.Tracer
	track string

	onFinish func(now float64, r Result)
}

type dstate struct {
	job       decodeJob
	generated int
	finishMS  float64
	// phase is the open lifecycle child span (queue, then decode) under
	// job.root when tracing is on.
	phase obs.SpanRef
}

func (di *decodeInstance) finish(now float64, d *dstate) {
	di.kv.Free(d.job.req.ID)
	r := Result{
		Req:             d.job.req,
		FinishMS:        d.finishMS,
		TTFTms:          d.job.firstToken - d.job.req.ArrivalMS,
		PrefilledTokens: d.job.req.PromptTokens,
		Instance:        di.id,
	}
	if d.job.req.OutputTokens > 1 {
		r.TBTms = (d.finishMS - d.job.firstToken) / float64(d.job.req.OutputTokens-1)
	}
	if di.trace != nil {
		di.trace.End(now, d.phase)
		d.phase = 0
		di.trace.EndReason(now, d.job.root, "finish")
	}
	di.onFinish(d.finishMS, r)
}

// arrive queues a transferred sequence. An idle instance defers its wake
// to a same-instant event so that simultaneous transfers are all queued
// before the boundary runs — exactly the historical loop's clock jump.
func (di *decodeInstance) arrive(now float64, job decodeJob) {
	d := &dstate{job: job, generated: 1} // token 1 came from prefill
	if di.trace != nil {
		d.phase = di.trace.Begin(now, reqTrack(job.req), obs.CatRequest, "queue", job.root)
	}
	di.waiting = append(di.waiting, d)
	if !di.busy {
		di.busy = true
		di.eng.After(0, func(t float64) {
			di.busy = false
			di.step(t)
		})
	}
}

// step runs an iteration boundary: finalize zero-decode sequences, admit
// what fits, then start the next decode iteration or go idle.
func (di *decodeInstance) step(now float64) {
	keep := di.waiting[:0]
	for _, d := range di.waiting {
		if d.job.req.OutputTokens <= 1 {
			// The prefill's token was the whole output.
			d.finishMS = d.job.firstToken
			di.kv.Alloc(d.job.req.ID, 0)
			di.finish(now, d)
			continue
		}
		keep = append(keep, d)
	}
	di.waiting = keep

	admitted := di.waiting[:0]
	for _, d := range di.waiting {
		if (di.gpu.MaxBatch == 0 || len(di.running) < di.gpu.MaxBatch) &&
			di.kv.Alloc(d.job.req.ID, d.job.req.PromptTokens+d.job.req.OutputTokens) {
			if di.trace != nil {
				di.trace.End(now, d.phase)
				d.phase = di.trace.Begin(now, reqTrack(d.job.req), obs.CatRequest, "decode", d.job.root)
			}
			di.running = append(di.running, d)
			continue
		}
		admitted = append(admitted, d)
	}
	di.waiting = admitted

	if len(di.running) == 0 {
		di.busy = false
		return // idle: the next transfer re-kicks; stuck waiters reject at drain
	}
	di.busy = true
	iterSpan := di.trace.Begin(now, di.track, obs.CatGPU, "decode", 0)
	di.eng.At(now+di.gpu.decodeIterMS(len(di.running)), func(end float64) {
		di.trace.End(end, iterSpan)
		di.endIter(end)
	})
}

func (di *decodeInstance) endIter(now float64) {
	still := di.running[:0]
	for _, d := range di.running {
		d.generated++
		d.finishMS = now
		if d.generated >= d.job.req.OutputTokens {
			di.finish(now, d)
			continue
		}
		still = append(still, d)
	}
	di.running = still
	di.step(now)
}

// decodeJob is a prefilled sequence in flight to the decode pool.
type decodeJob struct {
	req        workload.Request
	firstToken float64
	readyMS    float64
	// root and transfer are the request's lifecycle spans when tracing
	// is on: transfer stays open across shipping retries and closes on
	// delivery.
	root, transfer obs.SpanRef
}
