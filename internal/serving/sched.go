package serving

import (
	"fmt"
	"sort"

	"dataai/internal/workload"
)

// seqState tracks one request through the simulator.
type seqState struct {
	req workload.Request
	// prefillLeft is the number of prompt tokens still to prefill.
	prefillLeft int
	// prefilled is the number actually prefilled (after cache savings).
	prefilled int
	// generated counts emitted output tokens.
	generated    int
	firstTokenMS float64
	finishMS     float64
	admitted     bool
	// saved is the prompt span satisfied from a prefix/session cache.
	saved int
}

func (s *seqState) result() Result {
	r := Result{
		Req:             s.req,
		FinishMS:        s.finishMS,
		TTFTms:          s.firstTokenMS - s.req.ArrivalMS,
		PrefilledTokens: s.prefilled,
	}
	if s.req.OutputTokens > 1 {
		r.TBTms = (s.finishMS - s.firstTokenMS) / float64(s.req.OutputTokens-1)
	}
	return r
}

// RunStatic serves the trace with static batching: requests are grouped
// in arrival order into batches of batchSize; each batch is prefilled
// then decoded to the *longest* member's completion before the next
// batch starts — early finishers hold their slot, which is exactly the
// inefficiency continuous batching removes.
func RunStatic(gpu GPUConfig, reqs []workload.Request, batchSize int) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, batchSize)
	}
	kv := NewContiguousKV(gpu)
	maxBatch := kv.Capacity() / ((gpu.MaxSeqLen + gpu.BlockSize - 1) / gpu.BlockSize)
	if batchSize > maxBatch && maxBatch > 0 {
		batchSize = maxBatch
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	var results []Result
	clock := 0.0
	for start := 0; start < len(ordered); start += batchSize {
		end := start + batchSize
		if end > len(ordered) {
			end = len(ordered)
		}
		batch := make([]*seqState, 0, end-start)
		for _, r := range ordered[start:end] {
			if r.ArrivalMS > clock {
				clock = r.ArrivalMS // batch forms when its members arrived
			}
			s := &seqState{req: r, prefillLeft: r.PromptTokens}
			kv.Alloc(r.ID, r.PromptTokens+r.OutputTokens)
			batch = append(batch, s)
		}
		// Sequential prefill; each member's first token arrives at the
		// end of its own prefill.
		for _, s := range batch {
			clock += gpu.prefillMS(s.prefillLeft)
			s.prefilled = s.prefillLeft
			s.prefillLeft = 0
			s.generated = 1
			s.firstTokenMS = clock
			s.finishMS = clock
		}
		// Lock-step decode until the longest output completes. The
		// iteration cost always charges the full batch width.
		maxOut := 0
		for _, s := range batch {
			if s.req.OutputTokens > maxOut {
				maxOut = s.req.OutputTokens
			}
		}
		for it := 1; it < maxOut; it++ {
			clock += gpu.decodeIterMS(len(batch))
			for _, s := range batch {
				if s.generated < s.req.OutputTokens {
					s.generated++
					s.finishMS = clock
				}
			}
		}
		for _, s := range batch {
			kv.Free(s.req.ID)
			results = append(results, s.result())
		}
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = kv.PeakBlocks()
	return rep, nil
}

// ContinuousOpts configures RunContinuous.
type ContinuousOpts struct {
	// KV selects the allocator; nil defaults to paged.
	KV KVManager
	// ChunkTokens > 0 enables Sarathi-style chunked prefill: each
	// iteration processes at most ChunkTokens prefill tokens *alongside*
	// the decode batch, so decodes never stall behind a long prompt.
	// 0 runs whole prompts in dedicated prefill iterations (Orca/vLLM
	// default), stalling decodes for the duration.
	ChunkTokens int
	// Prefix enables shared-prefix KV reuse.
	Prefix *PrefixCache
	// SessionCache enables multi-turn KV reuse across a conversation
	// (AttentionStore-style); see store.go.
	SessionCache *SessionStore
	// OnDemand switches KV management to vLLM's actual discipline [28]:
	// output lengths are unknown to the scheduler, admission reserves
	// only the prompt (behind a watermark), blocks grow one step at a
	// time during decoding, and exhaustion preempts the most recently
	// admitted sequence with all-or-nothing eviction — every block it
	// holds is freed and its state is recomputed by a later prefill.
	// The default (false) reserves each sequence's full footprint up
	// front using the trace's known output length (an oracle real
	// servers lack).
	OnDemand bool
}

// admissionWatermark is the occupancy fraction above which OnDemand mode
// stops admitting: vLLM keeps headroom so fresh admissions don't
// immediately force preemptions of running sequences.
const admissionWatermark = 0.95

// RunContinuous serves the trace with iteration-level (continuous)
// batching on one GPU.
func RunContinuous(gpu GPUConfig, reqs []workload.Request, opts ContinuousOpts) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if opts.ChunkTokens < 0 {
		return nil, fmt.Errorf("%w: chunk tokens %d", ErrConfig, opts.ChunkTokens)
	}
	kv := opts.KV
	if kv == nil {
		kv = NewPagedKV(gpu)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	var results []Result
	clock := 0.0
	next := 0 // next arrival index
	var waiting []*seqState
	var prefillQ []*seqState // admitted, prefill outstanding
	var running []*seqState  // decoding
	active := func() int { return len(prefillQ) + len(running) }

	preemptions := 0
	admit := func(s *seqState) bool {
		if gpu.MaxBatch > 0 && active() >= gpu.MaxBatch {
			return false
		}
		if !s.admitted { // cache lookups happen once, not on re-admission
			if opts.Prefix != nil {
				s.saved = opts.Prefix.SavedTokens(s.req.PrefixID, s.req.PrefixTokens)
			}
			if opts.SessionCache != nil {
				if hit := opts.SessionCache.Lookup(clock, s.req.Session, s.req.HistoryTokens, s.req.PromptTokens); hit > s.saved {
					s.saved = hit
				}
			}
			s.prefillLeft = s.req.PromptTokens - s.saved
		}
		if opts.OnDemand {
			// Admit behind the watermark, reserving only what must be
			// prefilled now (plus already-generated tokens of a resumed
			// sequence).
			if float64(kv.UsedBlocks()) >= admissionWatermark*float64(kv.Capacity()) {
				return false
			}
			if !kv.Alloc(s.req.ID, s.prefillLeft+s.generated) {
				return false
			}
		} else {
			// Oracle reservation of the full eventual footprint.
			need := s.req.PromptTokens - s.saved + s.req.OutputTokens
			if !kv.Alloc(s.req.ID, need) {
				return false
			}
		}
		s.admitted = true
		return true
	}

	// preempt frees every block the victim holds (all-or-nothing) and
	// requeues it at the head of the waiting queue; a later prefill
	// recomputes its prompt plus everything it had generated.
	preempt := func(v *seqState, waiting *[]*seqState) {
		kv.Free(v.req.ID)
		v.prefillLeft = v.req.PromptTokens - v.saved + v.generated
		*waiting = append([]*seqState{v}, *waiting...)
		preemptions++
	}

	finish := func(s *seqState) {
		kv.Free(s.req.ID)
		if opts.SessionCache != nil && s.req.Session != "" {
			opts.SessionCache.Store(clock, s.req.Session, s.req.PromptTokens+s.req.OutputTokens)
		}
		results = append(results, s.result())
	}

	capacityTokens := kv.Capacity() * gpu.BlockSize
	for next < len(ordered) || len(waiting) > 0 || active() > 0 {
		// Move arrivals into the waiting queue, rejecting requests that
		// can never fit (they would otherwise block the FIFO forever).
		for next < len(ordered) && ordered[next].ArrivalMS <= clock {
			r := ordered[next]
			next++
			footprint := r.PromptTokens + r.OutputTokens
			if footprint > capacityTokens || footprint > gpu.MaxSeqLen {
				results = append(results, Result{Req: r, Rejected: true})
				continue
			}
			waiting = append(waiting, &seqState{req: r})
		}
		// Admit FCFS while space permits.
		for len(waiting) > 0 && admit(waiting[0]) {
			prefillQ = append(prefillQ, waiting[0])
			waiting = waiting[1:]
		}

		if active() == 0 {
			if next < len(ordered) {
				clock = ordered[next].ArrivalMS
				continue
			}
			break // nothing active, nothing arriving: waiting can never admit
		}

		if opts.ChunkTokens == 0 && len(prefillQ) > 0 {
			// Dedicated prefill iterations: one whole prompt at a time;
			// decodes stall behind it. The prefill iteration emits the
			// first token (unless this is a preempted sequence being
			// recomputed, whose first token was already served).
			s := prefillQ[0]
			prefillQ = prefillQ[1:]
			clock += gpu.prefillMS(s.prefillLeft)
			s.prefilled += s.prefillLeft
			s.prefillLeft = 0
			if s.generated == 0 {
				s.generated = 1
				s.firstTokenMS = clock
			}
			s.finishMS = clock
			if s.req.OutputTokens <= s.generated {
				finish(s)
			} else {
				running = append(running, s)
			}
			continue
		}

		// One mixed iteration: an optional prefill chunk plus one decode
		// step for every running sequence.
		var iterMS float64
		var completing *seqState
		if opts.ChunkTokens > 0 && len(prefillQ) > 0 {
			s := prefillQ[0]
			chunk := opts.ChunkTokens
			if chunk > s.prefillLeft {
				chunk = s.prefillLeft
			}
			iterMS += gpu.prefillMS(chunk)
			s.prefillLeft -= chunk
			s.prefilled += chunk
			if s.prefillLeft == 0 {
				prefillQ = prefillQ[1:]
				completing = s // first token lands at this iteration's end
			}
		}
		if len(running) > 0 {
			iterMS += gpu.decodeIterMS(len(running))
		}
		if iterMS == 0 {
			iterMS = gpu.DecodeBaseMS // defensive: never stall the clock
		}
		clock += iterMS

		preempted := map[*seqState]bool{}
		stillRunning := running[:0]
		for idx, s := range running {
			if preempted[s] {
				continue
			}
			s.generated++
			s.finishMS = clock
			if s.generated >= s.req.OutputTokens {
				finish(s)
				continue
			}
			if opts.OnDemand {
				ok := true
				for !kv.Extend(s.req.ID, s.req.PromptTokens-s.saved+s.generated) {
					// Victim: the most recently admitted running sequence
					// that is not s and not already preempted.
					var victim *seqState
					for j := len(running) - 1; j > idx; j-- {
						if !preempted[running[j]] {
							victim = running[j]
							break
						}
					}
					if victim == nil {
						// No lower-priority sequence to evict: vLLM's
						// all-or-nothing now applies to s itself — free
						// everything it holds and recompute it later,
						// once the earlier sequences release memory.
						preempted[s] = true
						preempt(s, &waiting)
						ok = false
						break
					}
					preempted[victim] = true
					preempt(victim, &waiting)
				}
				if !ok {
					continue
				}
			}
			stillRunning = append(stillRunning, s)
		}
		running = stillRunning
		if completing != nil && !preempted[completing] {
			if completing.generated == 0 {
				completing.generated = 1
				completing.firstTokenMS = clock
			}
			completing.finishMS = clock
			if completing.req.OutputTokens <= completing.generated {
				finish(completing)
			} else {
				running = append(running, completing)
			}
		}
	}

	// Anything still waiting could never be admitted (footprint larger
	// than the whole cache): report as rejected.
	for _, s := range waiting {
		results = append(results, Result{Req: s.req, Rejected: true})
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = kv.PeakBlocks()
	rep.Preemptions = preemptions
	return rep, nil
}
