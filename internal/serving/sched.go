package serving

import (
	"fmt"
	"sort"

	"dataai/internal/obs"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// seqState tracks one request through the simulator.
type seqState struct {
	req workload.Request
	// prefillLeft is the number of prompt tokens still to prefill.
	prefillLeft int
	// prefilled is the number actually prefilled (after cache savings).
	prefilled int
	// generated counts emitted output tokens.
	generated    int
	firstTokenMS float64
	finishMS     float64
	admitted     bool
	// preempted marks a sequence evicted during the current iteration
	// pass (endMixed); the next successful admission clears it.
	preempted bool
	// saved is the prompt span satisfied from a prefix/session cache.
	saved int
	// crashDropped / migrated mark a sequence in flight between
	// instances (crash reroute or live migration); the next successful
	// admission consumes them for recovery accounting. droppedAtMS is
	// the crash instant, for the drop→re-admission latency sample.
	crashDropped bool
	migrated     bool
	droppedAtMS  float64
	// root and phase are the request's lifecycle spans when tracing is
	// on (zero refs otherwise, safe to End): root covers arrival to
	// terminal, phase is the currently open queue/prefill/decode/reroute
	// child.
	root, phase obs.SpanRef
}

func (s *seqState) result() Result {
	r := Result{
		Req:             s.req,
		FinishMS:        s.finishMS,
		TTFTms:          s.firstTokenMS - s.req.ArrivalMS,
		PrefilledTokens: s.prefilled,
	}
	if s.req.OutputTokens > 1 {
		r.TBTms = (s.finishMS - s.firstTokenMS) / float64(s.req.OutputTokens-1)
	}
	return r
}

// RunStatic serves the trace with static batching: requests are grouped
// in arrival order into batches of batchSize; each batch is prefilled
// then decoded to the *longest* member's completion before the next
// batch starts — early finishers hold their slot, which is exactly the
// inefficiency continuous batching removes.
func RunStatic(gpu GPUConfig, reqs []workload.Request, batchSize int) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, batchSize)
	}
	kv := NewContiguousKV(gpu)
	maxBatch := kv.Capacity() / ((gpu.MaxSeqLen + gpu.BlockSize - 1) / gpu.BlockSize)
	if batchSize > maxBatch && maxBatch > 0 {
		batchSize = maxBatch
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	var results []Result
	clock := 0.0
	for start := 0; start < len(ordered); start += batchSize {
		end := start + batchSize
		if end > len(ordered) {
			end = len(ordered)
		}
		batch := make([]*seqState, 0, end-start)
		for _, r := range ordered[start:end] {
			if r.ArrivalMS > clock {
				clock = r.ArrivalMS // batch forms when its members arrived
			}
			s := &seqState{req: r, prefillLeft: r.PromptTokens}
			kv.Alloc(r.ID, r.PromptTokens+r.OutputTokens)
			batch = append(batch, s)
		}
		// Sequential prefill; each member's first token arrives at the
		// end of its own prefill.
		for _, s := range batch {
			clock += gpu.prefillMS(s.prefillLeft)
			s.prefilled = s.prefillLeft
			s.prefillLeft = 0
			s.generated = 1
			s.firstTokenMS = clock
			s.finishMS = clock
		}
		// Lock-step decode until the longest output completes. The
		// iteration cost always charges the full batch width.
		maxOut := 0
		for _, s := range batch {
			if s.req.OutputTokens > maxOut {
				maxOut = s.req.OutputTokens
			}
		}
		for it := 1; it < maxOut; it++ {
			clock += gpu.decodeIterMS(len(batch))
			for _, s := range batch {
				if s.generated < s.req.OutputTokens {
					s.generated++
					s.finishMS = clock
				}
			}
		}
		for _, s := range batch {
			kv.Free(s.req.ID)
			results = append(results, s.result())
		}
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = kv.PeakBlocks()
	return rep, nil
}

// ContinuousOpts configures RunContinuous.
type ContinuousOpts struct {
	// KV selects the allocator; nil defaults to paged.
	KV KVManager
	// ChunkTokens > 0 enables Sarathi-style chunked prefill: each
	// iteration processes at most ChunkTokens prefill tokens *alongside*
	// the decode batch, so decodes never stall behind a long prompt.
	// 0 runs whole prompts in dedicated prefill iterations (Orca/vLLM
	// default), stalling decodes for the duration.
	ChunkTokens int
	// Prefix enables shared-prefix KV reuse.
	Prefix *PrefixCache
	// SessionCache enables multi-turn KV reuse across a conversation
	// (AttentionStore-style); see store.go.
	SessionCache *SessionStore
	// Sched selects batch-formation order across SLO classes at
	// iteration boundaries (see SchedPolicy). The zero value is FCFS,
	// the historical behavior.
	Sched SchedPolicy
	// PreemptBatch lets an interactive sequence that cannot be admitted
	// evict the most recently admitted batch-class running sequence and
	// take its slot; the victim recomputes later, as after any
	// preemption. Only meaningful alongside a priority-aware Sched.
	PreemptBatch bool
	// OnDemand switches KV management to vLLM's actual discipline [28]:
	// output lengths are unknown to the scheduler, admission reserves
	// only the prompt (behind a watermark), blocks grow one step at a
	// time during decoding, and exhaustion preempts the most recently
	// admitted sequence with all-or-nothing eviction — every block it
	// holds is freed and its state is recomputed by a later prefill.
	// The default (false) reserves each sequence's full footprint up
	// front using the trace's known output length (an oracle real
	// servers lack).
	OnDemand bool
	// Trace, when non-nil, records the run's timeline (spans, instants,
	// and registry gauges — see trace.go and internal/obs). Tracing only
	// observes the simulation: a nil Trace (the default) changes nothing
	// and costs nothing.
	Trace *obs.Tracer
	// Decisions, when non-nil, appends one obs.Decision per routing
	// decision of a routed run (fresh arrivals and crash reroutes): the
	// scored candidate vector, the chosen instance, and the logical
	// decision time — the record ReplayRegret replays against. When a
	// Trace is also set, the log is attached to it, so obs.Check
	// verifies decisions against the timeline. Nil (the default)
	// records nothing and adds nothing to the route path. Ignored
	// outside the RunRouted* entry points.
	Decisions *obs.DecisionLog
	// Force, when non-nil, overrides one routing decision during a
	// counterfactual replay: the Force.Decision-th route call returns
	// its Force.Rank-th scored alternative instead of the argmin, with
	// every other decision re-decided live by the policy. Ignored
	// outside the RunRouted* entry points.
	Force *ForcedChoice
}

// admissionWatermark is the occupancy fraction above which OnDemand mode
// stops admitting: vLLM keeps headroom so fresh admissions don't
// immediately force preemptions of running sequences.
const admissionWatermark = 0.95

// RunContinuous serves the trace with iteration-level (continuous)
// batching on one GPU. Since the event-engine refactor it is a one-
// instance cluster: the instance runs as a discrete-event process on a
// private sim.Engine, with identical scheduling (and identical numbers)
// to the historical standalone loop.
func RunContinuous(gpu GPUConfig, reqs []workload.Request, opts ContinuousOpts) (*Report, error) {
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if opts.ChunkTokens < 0 {
		return nil, fmt.Errorf("%w: chunk tokens %d", ErrConfig, opts.ChunkTokens)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	eng := sim.NewEngine()
	pool := &seqPool{}
	var results []Result
	inst := newInstance(0, gpu, opts, eng, pool, func(_ float64, r Result) { results = append(results, r) })
	scheduleArrivals(eng, gpu, ordered, inst, pool, func(r Result) { results = append(results, r) })
	eng.Run()

	// Anything still waiting could never be admitted (footprint larger
	// than the whole cache): report as rejected and reclaim the state —
	// Result copies the request, so pooling is safe.
	for inst.waiting.Len() > 0 {
		s := inst.waiting.PopFront()
		inst.load -= seqLoad(s)
		inst.traceReject(eng.Now(), s)
		results = append(results, Result{Req: s.req, Rejected: true})
		pool.put(s)
	}
	rep := buildReport(results)
	rep.PeakKVBlocks = inst.kv.PeakBlocks()
	rep.Preemptions = inst.preemptions
	return rep, nil
}
