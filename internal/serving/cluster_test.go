package serving

import (
	"fmt"
	"reflect"
	"testing"

	"dataai/internal/par"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// assignments extracts the per-request routing decision (request ID →
// serving instance) from a routed report, the routing trace the
// determinism contract is stated over.
func assignments(rep *RoutedReport) map[string]int {
	out := make(map[string]int, len(rep.Results))
	for _, r := range rep.Results {
		if !r.Rejected {
			out[r.Req.ID] = r.Instance
		}
	}
	return out
}

func TestRouterDeterministicAcrossInstanceAndWorkerCounts(t *testing.T) {
	// Same trace + same seed must yield byte-identical routing decisions
	// and Report fields on every run, for every instance count, and
	// regardless of how many workers run the simulation concurrently —
	// each run owns a private engine, so parallelism cannot leak in.
	gpu := DefaultGPU()
	reqs := prefixTrace(t, 47)
	plans := []struct {
		name string
		plan *FaultPlan
	}{{"none", nil}, {"severe", SevereFaultPlan(2303)}}
	for _, n := range []int{1, 2, 4, 8} {
		for _, policy := range []RouterPolicy{RoundRobin, CacheAware, BreakerAware} {
			for _, pc := range plans {
				t.Run(fmt.Sprintf("n%d/%s/%s", n, policy, pc.name), func(t *testing.T) {
					const runs = 4
					reps := par.Map(runs, runs, func(int) *RoutedReport {
						rep, err := RunRoutedFaults(gpu, reqs, n, policy, ContinuousOpts{ChunkTokens: 256}, pc.plan)
						if err != nil {
							t.Error(err)
							return nil
						}
						return rep
					})
					if reps[0] == nil {
						t.Fatal("missing report")
					}
					for i := 1; i < runs; i++ {
						if reps[i] == nil {
							t.Fatal("missing report")
						}
						if !reflect.DeepEqual(assignments(reps[0]), assignments(reps[i])) {
							t.Fatal("routing decisions diverged across concurrent runs")
						}
						if !reflect.DeepEqual(reps[0], reps[i]) {
							t.Fatal("report fields diverged across concurrent runs")
						}
					}
				})
			}
		}
	}
}

func TestRouterTieBreakAtEqualScores(t *testing.T) {
	// With identical live state (fresh idle instances) every policy must
	// break ties deterministically toward the lowest eligible index.
	noAffinity := workload.Request{ID: "r", PromptTokens: 100, OutputTokens: 10}
	cases := []struct {
		policy  RouterPolicy
		exclude int
		want    int
	}{
		{CacheAware, -1, 0},
		{CacheAware, 0, 1}, // exclusion shifts the tie to the next index
		{BreakerAware, -1, 0},
		{BreakerAware, 0, 1},
	}
	for _, tc := range cases {
		c := newBareCluster(tc.policy, 4)
		if g := c.route(0, noAffinity, tc.exclude, false); g != tc.want {
			t.Errorf("%v exclude=%d picked %d, want %d", tc.policy, tc.exclude, g, tc.want)
		}
	}
	// RoundRobin rotates regardless of state.
	c := newBareCluster(RoundRobin, 4)
	got := []int{}
	for i := 0; i < 5; i++ {
		got = append(got, c.route(0, noAffinity, -1, false))
	}
	if want := []int{0, 1, 2, 3, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("round-robin order = %v, want %v", got, want)
	}
	// An open breaker pushes an otherwise-idle instance out of the
	// breaker-aware choice.
	c = newBareCluster(BreakerAware, 4)
	for i := 0; i < 2; i++ {
		c.breakers[0].OnFailure(0)
	}
	if g := c.route(0, noAffinity, -1, false); g != 1 {
		t.Errorf("breaker-aware with instance 0 open picked %d, want 1", g)
	}
}

func TestClusterPeakKVIsSimultaneousHighWater(t *testing.T) {
	// Regression for the historical RoutedReport.PeakKVBlocks bug: it
	// summed per-instance peaks from runs that never shared a clock, so
	// two instances busy at *different* times still counted as if their
	// peaks coincided. The shared tally must track true simultaneous
	// occupancy.
	gpu := DefaultGPU()
	tally := &clusterTally{}
	a := &talliedKV{KVManager: NewPagedKV(gpu), tally: tally}
	b := &talliedKV{KVManager: NewPagedKV(gpu), tally: tally}

	if !a.Alloc("s1", 1600) { // 100 blocks
		t.Fatal("alloc a")
	}
	a.Free("s1")
	if !b.Alloc("s2", 1600) { // 100 blocks, after a's released
		t.Fatal("alloc b")
	}
	b.Free("s2")
	sum := a.PeakBlocks() + b.PeakBlocks()
	if tally.peak != 100 || sum != 200 {
		t.Errorf("cluster peak = %d (per-instance sum %d), want 100 vs 200", tally.peak, sum)
	}

	// Overlapping usage does count together.
	a.Alloc("s3", 1600)
	b.Alloc("s4", 1600)
	if tally.peak != 200 {
		t.Errorf("overlapping peak = %d, want 200", tally.peak)
	}
}

func TestRoutedSingleInstanceMatchesContinuous(t *testing.T) {
	// A cluster of one with no prefixes in the trace is exactly
	// RunContinuous on the same engine semantics: reports must agree.
	gpu := DefaultGPU()
	reqs, err := workload.Generate(workload.DefaultTrace(53, 200, 40))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunContinuous(gpu, reqs, ContinuousOpts{ChunkTokens: 256})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := RunRouted(gpu, reqs, 1, RoundRobin, ContinuousOpts{ChunkTokens: 256})
	if err != nil {
		t.Fatal(err)
	}
	if routed.MakespanMS != solo.MakespanMS || routed.OutputTokens != solo.OutputTokens ||
		routed.PeakKVBlocks != solo.PeakKVBlocks || routed.TTFT.Mean() != solo.TTFT.Mean() {
		t.Errorf("routed n=1 diverged from continuous: makespan %v vs %v, peak %d vs %d",
			routed.MakespanMS, solo.MakespanMS, routed.PeakKVBlocks, solo.PeakKVBlocks)
	}
}

func TestFaultPlanDrawsArePure(t *testing.T) {
	p1 := SevereFaultPlan(99)
	p2 := SevereFaultPlan(99)
	other := SevereFaultPlan(100)
	differs := false
	for inst := 0; inst < 4; inst++ {
		for w := 0; w < 32; w++ {
			if p1.crashAt(inst, w) != p2.crashAt(inst, w) {
				t.Fatal("crash draw not a pure function of (seed, instance, window)")
			}
			if p1.slowdownAt(inst, w) != p2.slowdownAt(inst, w) {
				t.Fatal("straggler draw not pure")
			}
			if p1.crashAt(inst, w) != other.crashAt(inst, w) {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("different seeds never diverged in 128 windows")
	}
	if p1.transferFails("req-1", 0) != p2.transferFails("req-1", 0) {
		t.Error("transfer draw not pure")
	}
	// A nil plan injects nothing.
	var nilPlan *FaultPlan
	if nilPlan.crashAt(0, 0) || nilPlan.slowdownAt(0, 0) != 1 || nilPlan.transferFails("x", 0) {
		t.Error("nil plan injected a fault")
	}
}

func TestCrashDropsAndReroutesInFlightSequences(t *testing.T) {
	// Drive two instances by hand: crash one mid-decode and verify its
	// sequences are surrendered with their KV freed and cache savings
	// forgotten, then complete on the survivor with the emitted-token
	// count intact.
	gpu := DefaultGPU()
	eng := sim.NewEngine()
	var finished []Result
	pool := &seqPool{}
	a := newInstance(0, gpu, ContinuousOpts{}, eng, pool, func(_ float64, r Result) { finished = append(finished, r) })
	b := newInstance(1, gpu, ContinuousOpts{}, eng, pool, func(_ float64, r Result) { finished = append(finished, r) })
	// The pool zeroes a sequence when it finishes, so capture the
	// dropped state at drop time, not after the run.
	dropped, droppedGen := 0, 0
	a.onDrop = func(now float64, s *seqState) {
		dropped++
		droppedGen = s.generated
		b.arrive(now, s) // immediate re-route for the test
	}
	req := workload.Request{ID: "r1", PromptTokens: 200, OutputTokens: 20, ArrivalMS: 0}
	eng.At(0, func(now float64) { a.arrive(now, pool.get(req)) })
	// Prefill takes 10ms; crash at 30ms lands mid-decode.
	eng.At(30, func(now float64) { a.crash(now) })
	eng.Run()

	if dropped != 1 {
		t.Fatalf("dropped %d sequences, want 1", dropped)
	}
	if droppedGen < 1 {
		t.Error("crash before any emitted token despite 30ms of decode")
	}
	if a.kv.UsedBlocks() != 0 {
		t.Errorf("crashed instance still holds %d KV blocks", a.kv.UsedBlocks())
	}
	if len(finished) != 1 {
		t.Fatalf("finished %d results, want 1", len(finished))
	}
	r := finished[0]
	if r.Instance != 1 {
		t.Errorf("completed on instance %d, want the re-route target 1", r.Instance)
	}
	if r.Rejected || r.FinishMS <= 30 {
		t.Errorf("suspicious completion: %+v", r)
	}
	if b.kv.UsedBlocks() != 0 || b.preemptions != 0 {
		t.Error("survivor did not settle cleanly")
	}
}

func TestPrefixInvalidateAndSessionDropGPU(t *testing.T) {
	pc := NewPrefixCache()
	if pc.SavedTokens("p1", 100) != 0 { // warms
		t.Fatal("first lookup should miss")
	}
	if pc.SavedTokens("p1", 100) != 100 {
		t.Fatal("second lookup should hit")
	}
	pc.Invalidate()
	if pc.SavedTokens("p1", 100) != 0 {
		t.Error("invalidate did not clear cached prefixes")
	}
	hits, misses := pc.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats after invalidate = %d/%d, want 1/2", hits, misses)
	}

	store, err := NewSessionStore(SessionStoreConfig{
		GPUCapacityTokens: 1000, CPUCapacityTokens: 1000,
		TransferMSPerToken: 0.01, PrefillTokensPerMS: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	store.Store(0, "sess-gpu", 400)
	store.Store(0, "sess-demoted", 700) // evicts sess-gpu to CPU tier
	store.DropGPU()
	if got := store.Lookup(1, "sess-demoted", 700, 800); got != 0 {
		t.Errorf("GPU-tier entry survived the crash: saved %d", got)
	}
	if got := store.Lookup(1, "sess-gpu", 400, 500); got <= 0 {
		t.Errorf("CPU-tier entry should survive the crash, saved %d", got)
	}
}

func TestBreakerAwareWinsGoodputUnderSevereFaults(t *testing.T) {
	// The E23 acceptance property: under the severe fault plan the
	// breaker-aware policy routes around tripped instances and beats both
	// baselines on goodput.
	gpu := DefaultGPU()
	cfg := workload.DefaultTrace(2301, 600, 60)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 192
	cfg.SharedPrefixProb = 0.6
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := SevereFaultPlan(2303)
	goodput := map[RouterPolicy]float64{}
	for _, pol := range []RouterPolicy{RoundRobin, CacheAware, BreakerAware} {
		rep, err := RunRoutedFaults(gpu, reqs, 4, pol, ContinuousOpts{ChunkTokens: 256}, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Crashes == 0 {
			t.Fatalf("%v: severe plan applied no crashes", pol)
		}
		goodput[pol] = rep.Goodput(1500, 25)
	}
	if goodput[BreakerAware] <= goodput[RoundRobin] || goodput[BreakerAware] <= goodput[CacheAware] {
		t.Errorf("breaker-aware goodput %.4f does not beat round-robin %.4f / cache-aware %.4f",
			goodput[BreakerAware], goodput[RoundRobin], goodput[CacheAware])
	}
}
