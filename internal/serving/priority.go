package serving

import (
	"fmt"

	"dataai/internal/workload"
)

// SchedPolicy selects the order in which an instance admits waiting
// sequences into its batch at iteration boundaries. The zero value is
// FCFS — the historical behavior, and byte-identical to it.
//
// Both priority policies are class-prioritized: every Interactive
// sequence outranks every Batch sequence, and the policy only chooses
// the order *within* a class. That matters for PreemptBatch: after an
// interactive arrival evicts a batch victim for its slot, the victim
// (now at the head of the waiting queue) can never outrank the
// interactive candidate at re-selection, so slot preemption cannot
// livelock.
type SchedPolicy int

// Supported batch-formation policies.
const (
	// SchedFCFS admits strictly in queue order, blocking on the head —
	// SLO-class blind, exactly the historical loop.
	SchedFCFS SchedPolicy = iota
	// SchedPriority admits the earliest-queued sequence of the best
	// (lowest) SLO class: interactive requests jump the batch backlog
	// but stay FCFS among themselves.
	SchedPriority
	// SchedSJF admits the shortest job (least outstanding token work)
	// within the best SLO class — favors short interactive prompts under
	// pressure at the cost of long-job fairness.
	SchedSJF
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedFCFS:
		return "fcfs"
	case SchedPriority:
		return "priority"
	case SchedSJF:
		return "sjf"
	default:
		return fmt.Sprintf("sched(%d)", int(p))
	}
}

// nextWaiting picks the waiting-queue index the scheduler admits next.
// FCFS returns the head without scanning; the priority policies scan the
// ring (arrival order, preempted victims pushed back at the front) and
// break ties to the lowest index, so selection is deterministic.
func (in *instance) nextWaiting() int {
	switch in.opts.Sched {
	case SchedPriority:
		best := 0
		for i := 1; i < in.waiting.Len(); i++ {
			if in.waiting.At(i).req.SLOClass < in.waiting.At(best).req.SLOClass {
				best = i
			}
		}
		return best
	case SchedSJF:
		best := 0
		for i := 1; i < in.waiting.Len(); i++ {
			s, b := in.waiting.At(i), in.waiting.At(best)
			if s.req.SLOClass < b.req.SLOClass ||
				(s.req.SLOClass == b.req.SLOClass && seqLoad(s) < seqLoad(b)) {
				best = i
			}
		}
		return best
	default:
		return 0
	}
}

// preemptForSlot evicts one batch-class running sequence — the most
// recently admitted, mirroring OnDemand's victim order — to make room
// for an interactive admission. The victim leaves the running slice
// immediately (unlike decode-time preemption, which endMixed's rebuild
// handles), so active() and the next iteration's decode width are
// correct for the caller's retry. Returns false when no batch sequence
// is running.
func (in *instance) preemptForSlot(now float64) bool {
	for j := len(in.running) - 1; j >= 0; j-- {
		v := in.running[j]
		if v.req.SLOClass != workload.Batch || v.preempted {
			continue
		}
		copy(in.running[j:], in.running[j+1:])
		in.running[len(in.running)-1] = nil
		in.running = in.running[:len(in.running)-1]
		in.preempt(now, v)
		return true
	}
	return false
}
