//go:build race

package serving

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
