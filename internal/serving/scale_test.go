package serving

import (
	"reflect"
	"testing"

	"dataai/internal/par"
	"dataai/internal/workload"
)

// TestClusterScaleMillionRequests is the ROADMAP's north-star workload
// made an ordinary test: an E23-shaped run (shared prefixes, severe
// fault plan, breaker-aware routing, chunked prefill) at 100 instances
// and 10^6 requests on one shared engine clock. It exists to keep the
// engine fast enough that cluster experiments of this size stay cheap —
// the calendar queue and the pooled serving path are what make it
// complete in seconds (BENCH_sim.json records the wall time). -short
// and race runs scale the trace down 10x; the scheduling code exercised
// is identical.
func TestClusterScaleMillionRequests(t *testing.T) {
	const instances = 100
	n, rate := 1_000_000, 1500.0 // 15 req/s per instance, E23's density
	if testing.Short() || raceEnabled {
		n, rate = 100_000, 1500.0
	}
	cfg := workload.DefaultTrace(2301, n, rate)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 192
	cfg.SharedPrefixProb = 0.6
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunRoutedFaults(DefaultGPU(), reqs, instances, BreakerAware,
		ContinuousOpts{ChunkTokens: 256}, SevereFaultPlan(2303))
	if err != nil {
		t.Fatal(err)
	}
	// Every request must resolve exactly once: finished or rejected.
	if got := len(rep.Results); got != n {
		t.Fatalf("resolved %d results, want %d", got, n)
	}
	finished := n - rep.Rejected
	if finished <= n/2 {
		t.Fatalf("only %d/%d requests finished; the cluster wedged", finished, n)
	}
	if rep.Crashes == 0 || rep.Rerouted == 0 {
		t.Errorf("severe plan injected no faults (crashes=%d rerouted=%d)", rep.Crashes, rep.Rerouted)
	}
	if rep.MakespanMS <= 0 || rep.TTFT.P50() <= 0 {
		t.Errorf("degenerate report: makespan=%v p50TTFT=%v", rep.MakespanMS, rep.TTFT.P50())
	}
	t.Logf("%d reqs / %d instances: finished=%d rejected=%d crashes=%d rerouted=%d makespan=%.0fms",
		n, instances, finished, rep.Rejected, rep.Crashes, rep.Rerouted, rep.MakespanMS)
}

// TestMigrationUnderFaultsScale is the recovery stack's scale +
// determinism gate in one: 100 instances in racks of 10 under the
// cascading correlated fault plan with checkpoints, live migration, and
// tiered prefix caches all on. One serial run is compared DeepEqual
// against replicas raced on 8 workers — migration scans, checkpoint
// writes, and correlated crash draws are all pure functions of the
// logical clock, so concurrent replicas must agree bit for bit. -short
// and race runs scale the trace down 10x like the million-request test.
func TestMigrationUnderFaultsScale(t *testing.T) {
	const instances = 100
	n, rate := 1_000_000, 1500.0
	if testing.Short() || raceEnabled {
		n, rate = 100_000, 1500.0
	}
	cfg := workload.DefaultTrace(2301, n, rate)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 192
	cfg.SharedPrefixProb = 0.6
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecoveryConfig{
		CkptEveryIters: 8, Migrate: true,
		PrefixGPUTokens: 2048, PrefixCPUTokens: 16384,
	}
	run := func() *RoutedReport {
		rep, err := RunRoutedRecovery(DefaultGPU(), reqs, instances, BreakerAware,
			ContinuousOpts{ChunkTokens: 256}, CascadeFaultPlan(2403, 10), rec)
		if err != nil {
			t.Error(err)
			return nil
		}
		return rep
	}
	serial := run()
	if serial == nil {
		t.Fatal("missing serial report")
	}
	if got := len(serial.Results); got != n {
		t.Fatalf("resolved %d results, want %d", got, n)
	}
	if serial.Crashes == 0 || serial.ResumedFromCkpt == 0 || serial.Migrations == 0 {
		t.Fatalf("recovery stack inert at scale: crashes=%d resumes=%d migrations=%d",
			serial.Crashes, serial.ResumedFromCkpt, serial.Migrations)
	}
	if finished := n - serial.Rejected; finished <= n/2 {
		t.Fatalf("only %d/%d requests finished; the cluster wedged", finished, n)
	}
	replicas := par.Map(8, 8, func(int) *RoutedReport { return run() })
	for i, rep := range replicas {
		if rep == nil {
			t.Fatal("missing parallel report")
		}
		if !reflect.DeepEqual(serial, rep) {
			t.Fatalf("parallel replica %d diverged from the serial run", i)
		}
	}
	t.Logf("%d reqs / %d instances: crashes=%d resumes=%d migrations=%d wasted=%d makespan=%.0fms",
		n, instances, serial.Crashes, serial.ResumedFromCkpt, serial.Migrations,
		serial.WastedRecomputeTokens, serial.MakespanMS)
}
