package serving

import (
	"dataai/internal/obs"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// This file is the serving layer's observability seam. Every hook guards
// on a nil tracer (or calls nil-safe obs methods directly), so an
// untraced run — the default everywhere — takes the exact same decisions
// and produces byte-identical reports; tracing only *observes* the
// simulation, it never feeds back into scheduling.
//
// Span taxonomy (see obs package doc):
//
//   - "gpu<i>" / "prefill<i>" / "decode<i>" tracks carry CatGPU iteration
//     spans (one per scheduled iteration, never overlapping within a
//     track) plus "crash"/"preempt"/"reject" instants;
//   - "req/<ID>" tracks carry one CatRequest root span per request with
//     nested phase children: queue → prefill → decode, re-entering queue
//     after a preemption and passing through reroute after a crash (or
//     migrate during a live migration). Phases under one root never
//     overlap — a sequence is resident in one place at a time, an
//     invariant obs.Check enforces. Roots terminate with reason "finish"
//     or "reject";
//   - the registry gains, per instance: <track>/queue_depth,
//     <track>/kv_used_blocks, <track>/kv_capacity_blocks,
//     <track>/cache_saved_tokens, <track>/ckpt_tokens,
//     gpu<i>/breaker_state, and cluster-wide router/crashes plus the
//     recovery counters router/reroute_crash, router/reroute_migration,
//     and router/resume_from_checkpoint.

// reqTrack names a request's lifecycle track.
func reqTrack(r workload.Request) string { return "req/" + r.ID }

// gaugedKV wraps a KVManager and mirrors its occupancy into an obs gauge
// at the engine's current logical time. Installed only when tracing is
// on, so untraced runs keep the unwrapped allocator.
type gaugedKV struct {
	KVManager
	used *obs.Metric
	eng  *sim.Engine
}

func (g *gaugedKV) sync() {
	g.used.Set(g.eng.Now(), float64(g.KVManager.UsedBlocks()))
}

// Alloc implements KVManager.
func (g *gaugedKV) Alloc(id string, tokens int) bool {
	ok := g.KVManager.Alloc(id, tokens)
	g.sync()
	return ok
}

// Extend implements KVManager.
func (g *gaugedKV) Extend(id string, newTotal int) bool {
	ok := g.KVManager.Extend(id, newTotal)
	g.sync()
	return ok
}

// Free implements KVManager.
func (g *gaugedKV) Free(id string) {
	g.KVManager.Free(id)
	g.sync()
}

// traceDepth records the instance's current queue depth.
func (in *instance) traceDepth(now float64) {
	in.depthGauge.Set(now, float64(in.queueDepth()))
}

// tracePhase closes the sequence's current lifecycle phase and opens the
// next one under its root span.
func (in *instance) tracePhase(now float64, s *seqState, name string) {
	if in.trace == nil {
		return
	}
	in.trace.End(now, s.phase)
	s.phase = in.trace.Begin(now, reqTrack(s.req), obs.CatRequest, name, s.root)
}

// traceArrive opens the request's root span on first arrival and puts it
// in the queue phase; a re-routed sequence's open reroute hop ends here.
func (in *instance) traceArrive(now float64, s *seqState) {
	if in.trace == nil {
		return
	}
	if s.root == 0 {
		s.root = in.trace.Begin(now, reqTrack(s.req), obs.CatRequest, "request", 0)
	}
	in.tracePhase(now, s, "queue")
	in.traceDepth(now)
}

// traceFinish terminates the request's lifecycle chain as completed.
func (in *instance) traceFinish(now float64, s *seqState) {
	if in.trace == nil {
		return
	}
	in.trace.End(now, s.phase)
	s.phase = 0
	in.trace.EndReason(now, s.root, "finish")
	in.traceDepth(now)
}

// traceReject terminates the chain as rejected (admission-impossible at
// arrival, or still waiting when the cluster drained).
func (in *instance) traceReject(now float64, s *seqState) {
	if in.trace == nil {
		return
	}
	if s.root == 0 {
		s.root = in.trace.Begin(now, reqTrack(s.req), obs.CatRequest, "request", 0)
	}
	in.trace.End(now, s.phase)
	s.phase = 0
	in.trace.EndReason(now, s.root, "reject")
}

// traceRejectArrival records an arrival-time rejection for a request that
// never reached an instance (footprint can never fit).
func traceRejectArrival(tr *obs.Tracer, now float64, r workload.Request) {
	if tr == nil {
		return
	}
	root := tr.Begin(now, reqTrack(r), obs.CatRequest, "request", 0)
	tr.EndReason(now, root, "reject")
}
