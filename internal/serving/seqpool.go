package serving

import "dataai/internal/workload"

// This file holds the serving layer's steady-state allocation machinery:
// a free-listed pool of seqStates and a ring deque for instance queues.
// Together with the engine's argument-carrying events (sim.AtArg binding
// one handler per instance instead of one closure per event) they take
// the per-request cost of a run down to zero heap allocations once pools
// and rings have warmed up — which is what makes million-request traces
// affordable (see BENCH_sim.json).

// seqSlab is how many seqStates a pool carves per backing allocation.
const seqSlab = 256

// seqPool recycles seqStates within one run. Engines are
// single-threaded, so the pool needs no locking; a sequence is released
// exactly once — by instance.finish after its Result has been handed to
// onFinish, or by the post-run drain loop after reporting it rejected
// (crash-dropped and migrating sequences stay live in between: they
// travel to another instance; admission-impossible rejects are reported
// straight from their request, never pooled).
type seqPool struct {
	free []*seqState
	// outstanding counts live sequences (gets minus puts). After a
	// routed run drains — crashes, migrations, and all — it must be
	// zero: every sequence either finished (pooled by instance.finish)
	// or was reported rejected and pooled by the drain loop. The
	// post-drain invariant test pins this alongside KV occupancy.
	outstanding int
}

// get returns a zeroed seqState carrying req.
func (p *seqPool) get(req workload.Request) *seqState {
	n := len(p.free)
	if n == 0 {
		slab := make([]seqState, seqSlab)
		for i := range slab {
			p.free = append(p.free, &slab[i])
		}
		n = len(p.free)
	}
	s := p.free[n-1]
	p.free = p.free[:n-1]
	s.req = req
	p.outstanding++
	return s
}

// put zeroes s (releasing its request and span refs) and returns it to
// the free list.
func (p *seqPool) put(s *seqState) {
	if p == nil {
		return
	}
	*s = seqState{}
	p.free = append(p.free, s)
	p.outstanding--
}

// seqRing is a growable ring deque of sequences — an instance's waiting
// and prefill queues. The historical code used plain slices, which leak
// the popped head (`q = q[1:]`) and reallocate the whole queue to push a
// preempted victim back at the front; the ring does both in O(1) with no
// steady-state allocation, and pops nil the vacated slot so finished
// sequences can be pooled without the queue pinning them.
type seqRing struct {
	buf  []*seqState
	head int
	n    int
}

// Len reports the number of queued sequences.
func (q *seqRing) Len() int { return q.n }

// At returns the i-th sequence from the front (0 <= i < Len).
func (q *seqRing) At(i int) *seqState {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Front returns the head without removing it.
func (q *seqRing) Front() *seqState { return q.At(0) }

func (q *seqRing) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*seqState, size) // power of two: grow doubles, start 16
	for i := 0; i < q.n; i++ {
		buf[i] = q.At(i)
	}
	q.buf = buf
	q.head = 0
}

// PushBack appends s at the tail.
func (q *seqRing) PushBack(s *seqState) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = s
	q.n++
}

// PushFront prepends s at the head — how a preempted victim rejoins the
// waiting queue first in line.
func (q *seqRing) PushFront(s *seqState) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = s
	q.n++
}

// RemoveAt removes and returns the i-th sequence from the front
// (0 <= i < Len) — how a priority scheduler admits out of FCFS order.
// The shorter side of the ring shifts to close the gap, so RemoveAt(0)
// is PopFront and the worst case moves n/2 pointers; the vacated slot is
// nilled like every pop so the queue never pins a finished sequence.
func (q *seqRing) RemoveAt(i int) *seqState {
	s := q.At(i)
	mask := len(q.buf) - 1
	if i < q.n-1-i {
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
		}
		q.buf[q.head] = nil
		q.head = (q.head + 1) & mask
	} else {
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
		}
		q.buf[(q.head+q.n-1)&mask] = nil
	}
	q.n--
	return s
}

// PopFront removes and returns the head.
func (q *seqRing) PopFront() *seqState {
	s := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return s
}

// Clear empties the ring, nilling every slot for GC.
func (q *seqRing) Clear() {
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = nil
	}
	q.head, q.n = 0, 0
}
