package serving

import "fmt"

// This file models the KV cache mechanism itself (experiment E15): the
// paper's §2.3.2 explanation that "the KV cache mechanism is proposed to
// store these vectors to avoid repeated calculation of key and value
// vectors ... enabling faster and more efficient inference".
//
// Per decode step over a context of length L:
//   - with a KV cache, the step computes Q/K/V for ONE token and attends
//     over L cached keys: cost ∝ a + b·L.
//   - without one, the step recomputes K/V for all L context tokens
//     before attending: cost ∝ a + c·L with c ≫ b (c includes the K/V
//     projection FLOPs for every position, b only the attention reads).
// Generating N tokens is therefore ~quadratic either way in the attention
// term, but the no-cache variant's coefficient is the full projection
// cost rather than a memory read — the measured gap.

// DecodeCostModel parameterizes the per-step costs.
type DecodeCostModel struct {
	// StepBaseMS is the fixed per-step overhead.
	StepBaseMS float64
	// AttendMSPerToken is the cached-attention read cost per context
	// token.
	AttendMSPerToken float64
	// RecomputeMSPerToken is the K/V projection cost per context token
	// paid only without a cache.
	RecomputeMSPerToken float64
}

// DefaultDecodeCost mirrors the GPU model's decode constants.
func DefaultDecodeCost() DecodeCostModel {
	return DecodeCostModel{
		StepBaseMS:          2,
		AttendMSPerToken:    0.001,
		RecomputeMSPerToken: 0.02,
	}
}

// GenerateLatencyMS returns the total latency of generating outputTokens
// after promptTokens of context, with or without a KV cache.
func (m DecodeCostModel) GenerateLatencyMS(promptTokens, outputTokens int, kvCache bool) (float64, error) {
	if promptTokens < 0 || outputTokens < 1 {
		return 0, fmt.Errorf("%w: prompt %d output %d", ErrConfig, promptTokens, outputTokens)
	}
	total := 0.0
	for i := 0; i < outputTokens; i++ {
		context := promptTokens + i
		step := m.StepBaseMS + m.AttendMSPerToken*float64(context)
		if !kvCache {
			step += m.RecomputeMSPerToken * float64(context)
		}
		total += step
	}
	return total, nil
}

// Speedup reports cached/uncached latency ratio for a generation shape.
func (m DecodeCostModel) Speedup(promptTokens, outputTokens int) (float64, error) {
	with, err := m.GenerateLatencyMS(promptTokens, outputTokens, true)
	if err != nil {
		return 0, err
	}
	without, err := m.GenerateLatencyMS(promptTokens, outputTokens, false)
	if err != nil {
		return 0, err
	}
	return without / with, nil
}
