package serving

import (
	"errors"
	"testing"

	"dataai/internal/workload"
)

func prefixTrace(t *testing.T, seed int64) []workload.Request {
	t.Helper()
	cfg := workload.DefaultTrace(seed, 300, 50)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 512
	cfg.SharedPrefixProb = 0.8
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestRunRoutedValidation(t *testing.T) {
	if _, err := RunRouted(DefaultGPU(), nil, 0, RoundRobin, ContinuousOpts{}); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestCacheAwareRoutingBeatsRoundRobinOnPrefixes(t *testing.T) {
	// The Mooncake claim: KV-centric routing concentrates shared-prefix
	// traffic, so each prefix is computed once per cluster instead of
	// once per instance.
	gpu := DefaultGPU()
	reqs := prefixTrace(t, 41)
	rr, err := RunRouted(gpu, reqs, 4, RoundRobin, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := RunRouted(gpu, reqs, 4, CacheAware, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ca.PrefixMisses >= rr.PrefixMisses {
		t.Errorf("cache-aware misses %d >= round-robin %d", ca.PrefixMisses, rr.PrefixMisses)
	}
	if ca.PrefillTokens >= rr.PrefillTokens {
		t.Errorf("cache-aware prefill %d >= round-robin %d", ca.PrefillTokens, rr.PrefillTokens)
	}
	if len(ca.Results) != len(reqs) || len(rr.Results) != len(reqs) {
		t.Fatal("results lost in routing")
	}
	// Prefix misses under cache-aware routing: at most one per prefix.
	if ca.PrefixMisses > 8 {
		t.Errorf("cache-aware misses %d > 8 prefixes", ca.PrefixMisses)
	}
}

func TestRoutedSessionsStayTogether(t *testing.T) {
	gpu := DefaultGPU()
	reqs, err := workload.GenerateConversations(workload.DefaultConversations(43))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunRouted(gpu, reqs, 4, RoundRobin, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := RunRouted(gpu, reqs, 4, CacheAware, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Same-session turns hitting one instance means its session store
	// serves them: less prefill than when turns scatter.
	if ca.PrefillTokens >= rr.PrefillTokens {
		t.Errorf("cache-aware prefill %d >= round-robin %d", ca.PrefillTokens, rr.PrefillTokens)
	}
}

func TestRoutedDeterministic(t *testing.T) {
	gpu := DefaultGPU()
	reqs := prefixTrace(t, 47)
	a, err := RunRouted(gpu, reqs, 3, CacheAware, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRouted(gpu, reqs, 3, CacheAware, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanMS != b.MakespanMS || a.PrefixHits != b.PrefixHits {
		t.Error("routed run not deterministic")
	}
}

func TestRouterPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || CacheAware.String() != "cache-aware" {
		t.Error("policy names")
	}
}
