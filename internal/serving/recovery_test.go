package serving

import (
	"reflect"
	"testing"

	"dataai/internal/obs"
	"dataai/internal/workload"
)

// recoveryArms spans the policy space the drain invariant must hold
// over: nothing, checkpoints alone, checkpoints + migration, and the
// full stack with tiered prefix caches.
func recoveryArms() map[string]RecoveryConfig {
	return map[string]RecoveryConfig{
		"zero":       {},
		"ckpt":       {CkptEveryIters: 8},
		"ckpt+migr":  {CkptEveryIters: 8, Migrate: true},
		"full-stack": {CkptEveryIters: 4, Migrate: true, PrefixGPUTokens: 1024, PrefixCPUTokens: 8192},
	}
}

// TestPostDrainInvariants is the leak check behind every fault plan:
// once a routed run returns, no instance may still hold KV blocks, the
// sequence pool must have every seqState back (outstanding == 0), and
// the checkpoint store must be empty — finished and drain-rejected
// sequences both drop their checkpoints.
func TestPostDrainInvariants(t *testing.T) {
	reqs := prefixTrace(t, 83)
	plans := map[string]*FaultPlan{
		"none":       nil,
		"severe":     SevereFaultPlan(2303),
		"correlated": CorrelatedFaultPlan(2303, 2),
		"cascade":    CascadeFaultPlan(2303, 2),
	}
	for planName, plan := range plans {
		for armName, rec := range recoveryArms() {
			rep, c, err := runRoutedCluster(DefaultGPU(), reqs, 4, BreakerAware,
				ContinuousOpts{ChunkTokens: 256}, plan, rec, AdmissionConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", planName, armName, err)
			}
			if len(rep.Results) != len(reqs) {
				t.Errorf("%s/%s: %d results for %d requests", planName, armName, len(rep.Results), len(reqs))
			}
			for i, in := range c.insts {
				if used := in.kv.UsedBlocks(); used != 0 {
					t.Errorf("%s/%s: instance %d still holds %d KV blocks after drain", planName, armName, i, used)
				}
				if in.load != 0 || in.queueLoadScan() != 0 {
					t.Errorf("%s/%s: instance %d load counter %d (scan %d) after drain, want 0",
						planName, armName, i, in.load, in.queueLoadScan())
				}
			}
			if c.pool.outstanding != 0 {
				t.Errorf("%s/%s: %d sequences never returned to the pool", planName, armName, c.pool.outstanding)
			}
			if len(c.rec.ctx) != 0 {
				t.Errorf("%s/%s: %d checkpoints leaked past drain", planName, armName, len(c.rec.ctx))
			}
		}
	}
}

// TestRecoveryZeroConfigMatchesFaults pins the compatibility seam:
// RunRoutedRecovery with a zero RecoveryConfig is the same simulation
// as RunRoutedFaults, report and all.
func TestRecoveryZeroConfigMatchesFaults(t *testing.T) {
	reqs := prefixTrace(t, 47)
	old, err := RunRoutedFaults(DefaultGPU(), reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256}, SevereFaultPlan(2303))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunRoutedRecovery(DefaultGPU(), reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256}, SevereFaultPlan(2303), RecoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, rec) {
		t.Error("zero RecoveryConfig changed the routed report")
	}
}

func TestCheckpointStore(t *testing.T) {
	r := newRecovery(RecoveryConfig{CkptEveryIters: 4})
	if got := r.covered("a"); got != 0 {
		t.Fatalf("covered on empty store = %d", got)
	}
	if delta := r.save("a", 100); delta != 100 {
		t.Fatalf("first save delta = %d, want 100", delta)
	}
	if delta := r.save("a", 140); delta != 40 {
		t.Fatalf("incremental save delta = %d, want 40", delta)
	}
	// A save that covers nothing new writes nothing.
	if delta := r.save("a", 140); delta != 0 {
		t.Fatalf("no-progress save delta = %d, want 0", delta)
	}
	if got := r.covered("a"); got != 140 {
		t.Fatalf("covered = %d, want 140", got)
	}
	if r.writes != 2 || r.writeTokens != 140 {
		t.Fatalf("writes=%d writeTokens=%d, want 2 and 140", r.writes, r.writeTokens)
	}
	r.drop("a")
	if got := r.covered("a"); got != 0 {
		t.Fatalf("covered after drop = %d", got)
	}
	// nil store (disabled policy) is inert and nil-safe.
	var nilRec *recovery
	if nilRec.covered("x") != 0 {
		t.Error("nil recovery claims coverage")
	}
	nilRec.drop("x")
}

// TestCheckpointCutsWastedRecompute is the tentpole's core mechanism in
// isolation: under an aggressive crash plan, checkpointed sequences
// resume from their saved context instead of re-prefilling from token
// zero, so the checkpointed run must waste strictly fewer recompute
// tokens and record resumes.
func TestCheckpointCutsWastedRecompute(t *testing.T) {
	reqs := prefixTrace(t, 47)
	plan := SevereFaultPlan(2303)
	base, err := RunRoutedRecovery(DefaultGPU(), reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256}, plan, RecoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := RunRoutedRecovery(DefaultGPU(), reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256}, plan, RecoveryConfig{CkptEveryIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.Crashes == 0 || base.WastedRecomputeTokens == 0 {
		t.Fatalf("baseline injected nothing: %d crashes, %d wasted", base.Crashes, base.WastedRecomputeTokens)
	}
	if ck.CkptWrites == 0 || ck.ResumedFromCkpt == 0 {
		t.Fatalf("checkpoint arm inert: %d writes, %d resumes", ck.CkptWrites, ck.ResumedFromCkpt)
	}
	if ck.WastedRecomputeTokens >= base.WastedRecomputeTokens {
		t.Errorf("checkpointing did not cut wasted recompute: %d >= %d",
			ck.WastedRecomputeTokens, base.WastedRecomputeTokens)
	}
	if ck.RecoveryMS.Count() == 0 {
		t.Error("no recovery latency samples on a crashing checkpointed run")
	}
}

// TestMigrationTraceInvariants runs the full recovery stack traced and
// checks the migration story end to end: migrations happen, the
// "migrate" phase appears under request roots, the reroute_migration
// and resume_from_checkpoint counters agree with the report, and the
// trace passes obs.Check — including its migrated-session non-overlap
// invariant (a sequence is never resident in two places at once).
func TestMigrationTraceInvariants(t *testing.T) {
	cfg := workload.DefaultTrace(2401, 400, 70)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 192
	cfg.SharedPrefixProb = 0.6
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	rec := RecoveryConfig{CkptEveryIters: 8, Migrate: true, MigrateMinTokens: 64,
		PrefixGPUTokens: 1024, PrefixCPUTokens: 8192}
	rep, err := RunRoutedRecovery(DefaultGPU(), reqs, 8, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Trace: tr}, CascadeFaultPlan(2403, 4), rec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations == 0 {
		t.Fatal("cascade plan produced no migrations")
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("migration trace failed invariants: %v", err)
	}
	migratePhases := 0
	for _, s := range tr.Spans() {
		if s.Cat == obs.CatRequest && s.Name == "migrate" {
			migratePhases++
		}
	}
	if migratePhases != rep.Migrations {
		t.Errorf("migrate phase spans = %d, report says %d migrations", migratePhases, rep.Migrations)
	}
	reg := tr.Registry()
	if got := reg.Lookup("router/reroute_migration").Final(); got != float64(rep.Migrations) {
		t.Errorf("router/reroute_migration counter = %v, report says %d", got, rep.Migrations)
	}
	if got := reg.Lookup("router/resume_from_checkpoint").Final(); got != float64(rep.ResumedFromCkpt) {
		t.Errorf("router/resume_from_checkpoint counter = %v, report says %d", got, rep.ResumedFromCkpt)
	}
	if rep.ResumedFromCkpt == 0 {
		t.Error("no checkpoint resumes under a crashing plan with migration on")
	}
}

// TestMigrationDeterministic: two identical full-stack runs must agree
// exactly — migration decisions read only logical-clock state.
func TestMigrationDeterministic(t *testing.T) {
	reqs := prefixTrace(t, 83)
	rec := RecoveryConfig{CkptEveryIters: 8, Migrate: true, PrefixGPUTokens: 1024, PrefixCPUTokens: 8192}
	run := func() *RoutedReport {
		rep, err := RunRoutedRecovery(DefaultGPU(), reqs, 4, BreakerAware,
			ContinuousOpts{ChunkTokens: 256}, CascadeFaultPlan(2303, 2), rec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("two identical migration runs diverged")
	}
}

func TestTieredPrefixCache(t *testing.T) {
	pc := NewTieredPrefixCache(PrefixCacheConfig{
		GPUCapacityTokens: 100, CPUCapacityTokens: 200,
		TransferMSPerToken: 0.01, PrefillTokensPerMS: 50,
	})
	// Warm three prefixes of 50 tokens; the third overflows the GPU tier
	// and demotes the coldest (the first).
	for _, id := range []string{"a", "b", "c"} {
		if got := pc.SavedTokens(id, 50); got != 0 {
			t.Fatalf("cold lookup %s saved %d", id, got)
		}
	}
	cpuHits, demotions := pc.TierStats()
	if demotions != 1 || cpuHits != 0 {
		t.Fatalf("after overflow: %d demotions %d cpu hits, want 1 and 0", demotions, cpuHits)
	}
	// Hitting the demoted prefix promotes it back, netting the transfer
	// cost: 50 - floor(50*0.01*50) = 50 - 25 = 25 tokens saved.
	if got := pc.SavedTokens("a", 50); got != 25 {
		t.Fatalf("promoted hit saved %d tokens, want 25", got)
	}
	cpuHits, _ = pc.TierStats()
	if cpuHits != 1 {
		t.Fatalf("cpu hits = %d, want 1", cpuHits)
	}
	// A GPU hit is free of transfer cost.
	if got := pc.SavedTokens("a", 50); got != 50 {
		t.Fatalf("gpu hit saved %d tokens, want 50", got)
	}
	// Invalidate wipes the GPU tier only: the host tier survives the
	// crash, so the demoted entry is still promotable afterwards.
	pc.Invalidate()
	if got := pc.SavedTokens("a", 50); got != 0 {
		t.Fatalf("post-crash gpu lookup saved %d, want 0 (tier wiped)", got)
	}
	pc2 := NewTieredPrefixCache(PrefixCacheConfig{
		GPUCapacityTokens: 100, CPUCapacityTokens: 200,
		TransferMSPerToken: 0.01, PrefillTokensPerMS: 50,
	})
	pc2.SavedTokens("x", 80)
	pc2.SavedTokens("y", 80) // x demoted to CPU
	pc2.Invalidate()         // y (GPU) gone, x (CPU) survives
	if got := pc2.SavedTokens("x", 80); got <= 0 {
		t.Errorf("CPU tier did not survive Invalidate: saved %d", got)
	}
	// The unbounded legacy cache never demotes.
	legacy := NewPrefixCache()
	for i := 0; i < 50; i++ {
		legacy.SavedTokens(string(rune('a'+i%26))+"x", 1000)
	}
	if _, d := legacy.TierStats(); d != 0 {
		t.Errorf("unbounded cache demoted %d prefixes", d)
	}
}
