package serving

import (
	"fmt"

	"dataai/internal/obs"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// instance is one GPU running iteration-level continuous batching as an
// event-driven process on a shared sim.Engine. It reproduces, step for
// step, the scheduling loop RunContinuous historically ran standalone —
// admission, dedicated vs chunked prefill, OnDemand preemption — so a
// single instance on a fresh engine yields byte-identical reports; what
// the engine adds is that many instances (and a router, and fault
// windows) can now share one cluster-wide clock.
//
// The instance schedules exactly one event at a time: the end of its
// current iteration. Arrivals land in the waiting queue as engine events
// and are admitted at iteration boundaries, exactly when the historical
// loop ingested them.
//
// The schedule/fire path is allocation-free in steady state: iteration
// events reuse three ArgHandlers bound once at construction (the event
// argument carries the epoch; per-event state like the pending prefill
// sequence lives in pendPrefill/pendCompleting, which is safe because
// the instance has at most one live iteration event — stale pre-crash
// events fail the epoch check before reading anything), the waiting and
// prefill queues are ring deques, and sequences come from a free-listed
// pool (seqpool.go).
type instance struct {
	id   int
	gpu  GPUConfig
	opts ContinuousOpts
	kv   KVManager
	eng  *sim.Engine
	pool *seqPool

	waiting  seqRing
	prefillQ seqRing
	running  []*seqState

	// load is the incrementally maintained sum of seqLoad over every
	// sequence the instance owns (waiting + prefillQ + running). The
	// router reads it on every routing decision, so recomputing it by
	// scanning the queues is quadratic under backlog; instead every
	// ownership change and every seqLoad-relevant field mutation adjusts
	// it in place. queueLoadScan is the reference implementation.
	load int

	// busy is true while an iteration-end event is scheduled.
	busy bool
	// down is true inside a crash window (cluster fault plans only).
	down bool
	// slow is the straggler cost multiplier (1 = healthy); it scales
	// every iteration scheduled while active.
	slow float64
	// epoch invalidates in-flight iteration events across a crash.
	epoch uint64

	// kickH, prefillEndH, and mixedEndH are the instance's reusable event
	// handlers; pendPrefill and pendCompleting carry the live iteration
	// event's payload.
	kickH, prefillEndH, mixedEndH sim.ArgHandler
	pendPrefill                   *seqState
	pendCompleting                bool

	preemptions int

	// rec, when non-nil, is the routed cluster's shared crash-recovery
	// state (host-side checkpoint store + accounting, ckpt.go); the
	// cluster installs it after construction, so standalone runs keep
	// nil and change nothing. sinceCkpt counts mixed iterations since
	// the last checkpoint capture.
	rec       *recovery
	sinceCkpt int

	// trace, when non-nil, records the instance's timeline (see
	// trace.go); track is its span-track name, depthGauge its live
	// queue-depth gauge, and iterSpan the currently open iteration span
	// (closed by the iteration-end event, or by crash with the event
	// invalidated).
	trace      *obs.Tracer
	track      string
	depthGauge *obs.Metric
	iterSpan   obs.SpanRef

	// onFinish receives every completed sequence's Result.
	onFinish func(now float64, r Result)
	// onDrop receives sequences lost to a crash, for the cluster router
	// to re-route; nil means standalone runs, which never crash.
	onDrop func(now float64, s *seqState)
}

// newInstance builds an idle instance on eng. A nil opts.KV gets a
// private paged allocator, mirroring RunContinuous's default. pool (may
// be nil) recycles finished sequences.
func newInstance(id int, gpu GPUConfig, opts ContinuousOpts, eng *sim.Engine, pool *seqPool, onFinish func(float64, Result)) *instance {
	kv := opts.KV
	if kv == nil {
		kv = NewPagedKV(gpu)
	}
	in := &instance{id: id, gpu: gpu, opts: opts, kv: kv, eng: eng, pool: pool, slow: 1, onFinish: onFinish}
	in.kickH = in.onKick
	in.prefillEndH = in.onPrefillEnd
	in.mixedEndH = in.onMixedEnd
	if opts.Trace != nil {
		in.trace = opts.Trace
		in.track = fmt.Sprintf("gpu%d", id)
		reg := opts.Trace.Registry()
		in.depthGauge = reg.Gauge(in.track + "/queue_depth")
		reg.Gauge(in.track+obs.KVCapacitySuffix).Set(eng.Now(), float64(kv.Capacity()))
		in.kv = &gaugedKV{KVManager: kv, used: reg.Gauge(in.track + obs.KVUsedSuffix), eng: eng}
	}
	return in
}

func (in *instance) active() int { return in.prefillQ.Len() + len(in.running) }

// seqLoad is one sequence's outstanding token work: remaining prefill
// plus remaining decode.
func seqLoad(s *seqState) int {
	remaining := s.req.OutputTokens - s.generated
	if remaining < 0 {
		remaining = 0
	}
	if s.admitted {
		return s.prefillLeft + remaining
	}
	return s.req.PromptTokens - s.saved + s.generated + remaining
}

// queueLoad is the router's live-load signal: tokens of outstanding work
// across every sequence the instance currently owns, waiting included.
// It is O(1): the load field tracks the queueLoadScan sum exactly.
func (in *instance) queueLoad() int { return in.load }

// queueLoadScan recomputes queueLoad from scratch. It exists as the
// reference the incremental counter is tested against; the hot path
// never calls it.
func (in *instance) queueLoadScan() int {
	load := 0
	for i := 0; i < in.waiting.Len(); i++ {
		load += seqLoad(in.waiting.At(i))
	}
	for i := 0; i < in.prefillQ.Len(); i++ {
		load += seqLoad(in.prefillQ.At(i))
	}
	for _, s := range in.running {
		load += seqLoad(s)
	}
	return load
}

// queueDepth is the router's congestion signal: sequences owned.
func (in *instance) queueDepth() int { return in.waiting.Len() + in.active() }

// arrive enqueues a routed request. An idle instance defers its wake to
// a same-instant event, so that simultaneous arrivals are all queued
// before the boundary runs — the event-driven analogue of the historical
// loop jumping its clock to the next arrival and ingesting everything due.
func (in *instance) arrive(now float64, s *seqState) {
	in.waiting.PushBack(s)
	in.load += seqLoad(s)
	in.traceArrive(now, s)
	in.kick()
}

// kick schedules an immediate iteration boundary on an idle instance.
func (in *instance) kick() {
	if in.busy || in.down {
		return
	}
	in.busy = true
	in.eng.AfterArg(0, in.kickH, in.epoch)
}

// onKick is the kick event's handler; the argument is the epoch the
// event was scheduled in.
func (in *instance) onKick(t float64, epoch uint64) {
	if in.epoch != epoch {
		return
	}
	in.busy = false
	in.step(t)
}

// admit mirrors the historical admission rule: cache lookups happen on
// first admission only, OnDemand reserves behind the watermark, the
// default reserves the oracle footprint.
func (in *instance) admit(now float64, s *seqState) bool {
	if in.gpu.MaxBatch > 0 && in.active() >= in.gpu.MaxBatch {
		return false
	}
	resumed := 0     // checkpointed context tokens this admission restores
	recomputed := 0  // previously computed tokens lost and re-prefilled here
	if !s.admitted { // cache lookups happen once, not on re-admission
		if in.opts.Prefix != nil {
			s.saved = in.opts.Prefix.SavedTokens(s.req.PrefixID, s.req.PrefixTokens)
		}
		if in.opts.SessionCache != nil {
			if hit := in.opts.SessionCache.Lookup(now, s.req.Session, s.req.HistoryTokens, s.req.PromptTokens); hit > s.saved {
				s.saved = hit
			}
		}
		// generated > 0 only for crash-dropped or migrated sequences
		// being re-admitted elsewhere: context KV not covered by a cache
		// or checkpoint must be recomputed, exactly as after a
		// preemption.
		total := s.req.PromptTokens + s.generated
		cover := s.saved
		restore := 0
		if in.rec != nil {
			if ctx := in.rec.covered(s.req.ID); ctx > 0 {
				if ctx > total {
					ctx = total
				}
				if ctx > cover {
					// Resume from the host-side checkpoint: the covered
					// context ships back to the device, priced in
					// prefill-token equivalents like every other
					// transfer in the store.
					cover = ctx
					restore = int(float64(ctx) * in.rec.cfg.restoreMSPerToken() * in.gpu.PrefillTokensPerMS)
					resumed = ctx
				}
			}
		}
		s.prefillLeft = total - cover + restore
		recomputed = total - cover
		if done := s.prefilled + s.generated; recomputed > done {
			recomputed = done // never computed more than this: cap the waste
		}
		if in.trace != nil && s.saved > 0 {
			in.trace.Registry().Counter(in.track+"/cache_saved_tokens").Add(now, float64(s.saved))
		}
	}
	if in.opts.OnDemand {
		// Admit behind the watermark, reserving only what must be
		// prefilled now (plus already-generated tokens of a resumed
		// sequence).
		if float64(in.kv.UsedBlocks()) >= admissionWatermark*float64(in.kv.Capacity()) {
			return false
		}
		if !in.kv.Alloc(s.req.ID, s.prefillLeft+s.generated) {
			return false
		}
	} else {
		// Oracle reservation of the full eventual footprint.
		need := s.req.PromptTokens - s.saved + s.req.OutputTokens
		if resumed > 0 {
			// Checkpoint-restored context replaces part of the prompt
			// recompute: reserve what will actually be materialized.
			need = s.prefillLeft + s.req.OutputTokens - s.generated
		}
		if !in.kv.Alloc(s.req.ID, need) {
			return false
		}
	}
	s.admitted = true
	s.preempted = false
	if in.rec != nil && (s.crashDropped || s.migrated) {
		in.rec.wasted += recomputed
		if s.crashDropped {
			in.rec.recoveryMS.Add(now - s.droppedAtMS)
		}
		if resumed > 0 {
			in.rec.resumes++
			if in.trace != nil {
				in.trace.Registry().Counter("router/resume_from_checkpoint").Add(now, 1)
			}
		}
	}
	s.crashDropped, s.migrated = false, false
	return true
}

// preempt frees every block the victim holds (all-or-nothing), marks it
// preempted for the rest of the current iteration pass, and requeues it
// at the head of the waiting queue; a later prefill recomputes its
// prompt plus everything it had generated.
func (in *instance) preempt(now float64, v *seqState) {
	in.kv.Free(v.req.ID)
	before := seqLoad(v)
	v.preempted = true
	v.prefillLeft = v.req.PromptTokens - v.saved + v.generated
	in.load += seqLoad(v) - before
	in.waiting.PushFront(v)
	in.preemptions++
	if in.trace != nil {
		in.trace.Instant(now, in.track, "preempt")
		in.tracePhase(now, v, "queue")
	}
}

func (in *instance) finish(now float64, s *seqState) {
	in.kv.Free(s.req.ID)
	in.rec.drop(s.req.ID) // reclaim any host-side checkpoint (nil-safe)
	if in.opts.SessionCache != nil && s.req.Session != "" {
		in.opts.SessionCache.Store(now, s.req.Session, s.req.PromptTokens+s.req.OutputTokens)
	}
	r := s.result()
	r.Instance = in.id
	in.traceFinish(now, s)
	in.onFinish(now, r)
	in.pool.put(s) // nothing references s past its Result
}

// step runs at an iteration boundary: admit FCFS, then start the next
// iteration or go idle. One call reproduces one pass of the historical
// RunContinuous loop; the engine's (time, seq) order delivers arrivals
// exactly where the loop used to ingest them.
func (in *instance) step(now float64) {
	if in.down {
		in.busy = false
		return
	}
	for in.waiting.Len() > 0 {
		// The scheduling policy picks the candidate (FCFS picks the head
		// without scanning); it leaves the queue before the admission
		// attempt so a slot preemption's PushFront cannot shift its index.
		s := in.waiting.RemoveAt(in.nextWaiting())
		// admit mutates saved/prefillLeft even when the KV allocation
		// fails, so the load delta applies on both outcomes.
		before := seqLoad(s)
		ok := in.admit(now, s)
		in.load += seqLoad(s) - before
		if !ok && in.opts.PreemptBatch && s.req.SLOClass == workload.Interactive {
			// Evict batch-class running sequences (most recent first)
			// until the interactive candidate fits or none remain.
			for !ok && in.preemptForSlot(now) {
				before = seqLoad(s)
				ok = in.admit(now, s)
				in.load += seqLoad(s) - before
			}
		}
		if !ok {
			in.waiting.PushFront(s)
			break
		}
		in.tracePhase(now, s, "prefill")
		in.prefillQ.PushBack(s)
	}
	if in.active() == 0 {
		in.busy = false
		return // idle: the next arrival (or recovery) re-kicks
	}
	in.busy = true

	if in.opts.ChunkTokens == 0 && in.prefillQ.Len() > 0 {
		// Dedicated prefill iteration: one whole prompt; decodes stall
		// behind it. Effects (including the pop) apply at the end so a
		// crash mid-prefill drops the sequence with everything else.
		s := in.prefillQ.Front()
		iterMS := in.gpu.prefillMS(s.prefillLeft) * in.slow
		in.iterSpan = in.trace.Begin(now, in.track, obs.CatGPU, "prefill", 0)
		in.pendPrefill = s
		in.eng.AtArg(now+iterMS, in.prefillEndH, in.epoch)
		return
	}

	// Periodic decode-state checkpoint: every CkptEveryIters mixed
	// iterations, ship each running sequence's newly covered context
	// tokens to the host-side store. The write cost rides this
	// iteration; it is PCIe traffic, not GPU compute, so the straggler
	// factor does not scale it (added after the slowdown below).
	ckptMS := 0.0
	if in.rec != nil && in.rec.cfg.CkptEveryIters > 0 && len(in.running) > 0 {
		in.sinceCkpt++
		if in.sinceCkpt >= in.rec.cfg.CkptEveryIters {
			in.sinceCkpt = 0
			delta := 0
			for _, rs := range in.running {
				delta += in.rec.save(rs.req.ID, rs.req.PromptTokens+rs.generated)
			}
			if delta > 0 {
				ckptMS = float64(delta) * in.rec.cfg.ckptMSPerToken()
				if in.trace != nil {
					in.trace.Registry().Counter(in.track+"/ckpt_tokens").Add(now, float64(delta))
				}
			}
		}
	}

	// One mixed iteration: an optional prefill chunk plus one decode
	// step for every running sequence. Chunk bookkeeping applies now,
	// as the historical loop did; decode effects at the iteration end.
	var iterMS float64
	completing := false
	chunked := false
	if in.opts.ChunkTokens > 0 && in.prefillQ.Len() > 0 {
		s := in.prefillQ.Front()
		chunk := in.opts.ChunkTokens
		if chunk > s.prefillLeft {
			chunk = s.prefillLeft
		}
		iterMS += in.gpu.prefillMS(chunk)
		s.prefillLeft -= chunk
		s.prefilled += chunk
		in.load -= chunk
		chunked = true
		completing = s.prefillLeft == 0 // first token lands at iteration end
	}
	if len(in.running) > 0 {
		iterMS += in.gpu.decodeIterMS(len(in.running))
	}
	if iterMS == 0 {
		iterMS = in.gpu.DecodeBaseMS // defensive: never stall the clock
	}
	iterMS *= in.slow
	iterMS += ckptMS
	iterName := "decode"
	if chunked {
		iterName = "prefill"
		if len(in.running) > 0 {
			iterName = "prefill+decode"
		}
	}
	in.iterSpan = in.trace.Begin(now, in.track, obs.CatGPU, iterName, 0)
	in.pendCompleting = completing
	in.eng.AtArg(now+iterMS, in.mixedEndH, in.epoch)
}

// onPrefillEnd is the dedicated prefill iteration's end event.
func (in *instance) onPrefillEnd(end float64, epoch uint64) {
	if in.epoch != epoch {
		return
	}
	in.trace.End(end, in.iterSpan)
	in.iterSpan = 0
	s := in.pendPrefill
	in.pendPrefill = nil
	in.endPrefill(end, s)
}

// onMixedEnd is the mixed iteration's end event.
func (in *instance) onMixedEnd(end float64, epoch uint64) {
	if in.epoch != epoch {
		return
	}
	in.trace.End(end, in.iterSpan)
	in.iterSpan = 0
	in.endMixed(end, in.pendCompleting)
}

// endPrefill applies a dedicated prefill iteration's effects. The
// prefill emits the first token unless this is a preempted sequence
// being recomputed, whose first token was already served.
func (in *instance) endPrefill(now float64, s *seqState) {
	in.prefillQ.PopFront()
	before := seqLoad(s)
	s.prefilled += s.prefillLeft
	s.prefillLeft = 0
	if s.generated == 0 {
		s.generated = 1
		s.firstTokenMS = now
	}
	s.finishMS = now
	if s.req.OutputTokens <= s.generated {
		in.load -= before
		in.finish(now, s)
	} else {
		in.load += seqLoad(s) - before
		in.tracePhase(now, s, "decode")
		in.running = append(in.running, s)
	}
	in.step(now)
}

// endMixed applies a mixed iteration's decode step, including OnDemand
// growth and all-or-nothing preemption, then the completing prefill's
// first token. Preemption marks are per-pass: preempt sets the
// sequence's preempted flag and the next successful admission clears it,
// so a sequence marked by an earlier index of this loop is skipped for
// the rest of the pass — exactly the per-call set the historical code
// kept (without its per-iteration map allocation).
func (in *instance) endMixed(now float64, completing bool) {
	var comp *seqState
	if completing {
		comp = in.prefillQ.PopFront()
	}
	stillRunning := in.running[:0]
	for idx, s := range in.running {
		if s.preempted {
			continue
		}
		before := seqLoad(s)
		s.generated++
		s.finishMS = now
		if s.generated >= s.req.OutputTokens {
			in.load -= before
			in.finish(now, s)
			continue
		}
		in.load += seqLoad(s) - before
		if in.opts.OnDemand {
			ok := true
			for !in.kv.Extend(s.req.ID, s.req.PromptTokens-s.saved+s.generated) {
				// Victim: the most recently admitted running sequence
				// that is not s and not already preempted.
				var victim *seqState
				for j := len(in.running) - 1; j > idx; j-- {
					if !in.running[j].preempted {
						victim = in.running[j]
						break
					}
				}
				if victim == nil {
					// No lower-priority sequence to evict: all-or-nothing
					// now applies to s itself — free everything it holds
					// and recompute it later.
					in.preempt(now, s)
					ok = false
					break
				}
				in.preempt(now, victim)
			}
			if !ok {
				continue
			}
		}
		stillRunning = append(stillRunning, s)
	}
	in.running = stillRunning
	if comp != nil && !comp.preempted {
		before := seqLoad(comp)
		if comp.generated == 0 {
			comp.generated = 1
			comp.firstTokenMS = now
		}
		comp.finishMS = now
		if comp.req.OutputTokens <= comp.generated {
			in.load -= before
			in.finish(now, comp)
		} else {
			in.load += seqLoad(comp) - before
			in.tracePhase(now, comp, "decode")
			in.running = append(in.running, comp)
		}
	}
	in.step(now)
}

// crash drops the instance: every owned sequence (in-flight first, then
// the waiting queue) is surrendered through onDrop with its KV freed and
// its cache savings forgotten, the in-flight iteration is invalidated,
// and GPU-resident cache state (prefix cache, session store GPU tier)
// dies with the device.
func (in *instance) crash(now float64) {
	in.down = true
	in.busy = false
	in.epoch++
	in.pendPrefill = nil
	if in.trace != nil {
		// The in-flight iteration's end event is invalidated with the
		// epoch, so its span must close here or dangle.
		in.trace.EndReason(now, in.iterSpan, "crash")
		in.iterSpan = 0
		in.trace.Instant(now, in.track, "crash")
	}
	dropped := make([]*seqState, 0, in.prefillQ.Len()+len(in.running)+in.waiting.Len())
	for i := 0; i < in.prefillQ.Len(); i++ {
		s := in.prefillQ.At(i)
		in.kv.Free(s.req.ID)
		// Admitted sequences held device state the crash destroyed; mark
		// them so the next admission samples recovery latency and wasted
		// recompute. Waiting sequences held nothing, so they reroute
		// unmarked.
		s.crashDropped, s.droppedAtMS = true, now
		dropped = append(dropped, s)
	}
	for _, s := range in.running {
		in.kv.Free(s.req.ID)
		s.crashDropped, s.droppedAtMS = true, now
		dropped = append(dropped, s)
	}
	in.sinceCkpt = 0
	for i := 0; i < in.waiting.Len(); i++ {
		dropped = append(dropped, in.waiting.At(i)) // never admitted: hold no KV
	}
	in.prefillQ.Clear()
	in.waiting.Clear()
	for i := range in.running {
		in.running[i] = nil
	}
	in.running = in.running[:0]
	in.load = 0 // every owned sequence just left; resets below touch unowned seqs
	if in.opts.Prefix != nil {
		in.opts.Prefix.Invalidate()
	}
	if in.opts.SessionCache != nil {
		in.opts.SessionCache.DropGPU()
	}
	for _, s := range dropped {
		// Emitted tokens were already streamed to the client and are
		// kept; their KV (and any cache savings) must be recomputed
		// wherever the sequence lands next.
		s.admitted = false
		s.preempted = false
		s.saved = 0
		s.prefillLeft = 0
		// The reroute hop spans detection delay + routing; it closes when
		// the sequence arrives at its next instance.
		in.tracePhase(now, s, "reroute")
		if in.onDrop != nil {
			in.onDrop(now, s)
		}
	}
	if in.trace != nil {
		in.traceDepth(now)
	}
}

// recoverAt brings a crashed instance back empty; anything queued while
// it was down (routed by a policy that kept trying) starts immediately.
func (in *instance) recoverAt(now float64) {
	in.down = false
	if in.waiting.Len() > 0 {
		in.kick()
	}
}

// setSlowdown applies a straggler window's cost factor; it takes effect
// from the next scheduled iteration.
func (in *instance) setSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	in.slow = factor
}

// scheduleArrivals schedules one engine event per request, in stable
// arrival order, delivering each to inst: requests whose footprint can
// never fit are rejected at arrival, mirroring the historical loop's
// ingest check. reqs must already be sorted by ArrivalMS (stable). One
// shared ArgHandler carries the request index, so scheduling n arrivals
// costs one closure, not n.
func scheduleArrivals(eng *sim.Engine, gpu GPUConfig, reqs []workload.Request, inst *instance, pool *seqPool, reject func(Result)) {
	capacityTokens := inst.kv.Capacity() * gpu.BlockSize
	deliver := func(now float64, i uint64) {
		r := reqs[i]
		footprint := r.PromptTokens + r.OutputTokens
		if footprint > capacityTokens || footprint > gpu.MaxSeqLen {
			traceRejectArrival(inst.trace, now, r)
			reject(Result{Req: r, Rejected: true})
			return
		}
		inst.arrive(now, pool.get(r))
	}
	for i := range reqs {
		eng.AtArg(reqs[i].ArrivalMS, deliver, uint64(i))
	}
}
