// Package serving is a discrete-event simulator of LLM inference serving
// (§2.3.2 "LLM Inference"). It reproduces the systems the paper surveys:
//
//   - Batching: static batches vs. iteration-level continuous batching
//     (Orca [66]) vs. chunked prefill (Sarathi-Serve [4]) — experiment E11.
//   - Prefill/decode disaggregation on separate GPU pools
//     (DistServe [69], Splitwise [44]) — experiment E12.
//   - KV cache management: contiguous preallocation vs. vLLM-style paged
//     blocks [28], and shared-prefix reuse (Prompt Cache [22],
//     TensorRT-LLM [3]) — experiment E13.
//   - KV cache stores for multi-turn reuse with LRU/LFU/all-or-nothing/
//     dependency-tree eviction and an AttentionStore-style [19]
//     hierarchical GPU/CPU store with overlapped transmission — E14.
//   - The KV cache mechanism itself vs. recomputing K/V every step — E15.
//
// Time is a logical millisecond clock; nothing sleeps. The GPU cost model
// is deliberately simple — prefill is compute-bound and processes tokens
// at a fixed rate, a decode iteration costs a base latency plus a
// per-sequence term — because the surveyed results are consequences of
// *scheduling structure*, not of any particular kernel's speed.
package serving

import (
	"errors"
	"fmt"

	"dataai/internal/metrics"
	"dataai/internal/workload"
)

// Errors callers branch on.
var (
	// ErrConfig indicates an invalid simulator configuration.
	ErrConfig = errors.New("serving: invalid configuration")
	// ErrKVFull indicates a KV allocation beyond capacity.
	ErrKVFull = errors.New("serving: kv cache full")
)

// GPUConfig is the per-device cost model.
type GPUConfig struct {
	// PrefillTokensPerMS is prefill throughput (compute-bound).
	PrefillTokensPerMS float64
	// DecodeBaseMS is the fixed cost of one decode iteration.
	DecodeBaseMS float64
	// DecodeMSPerSeq is the marginal cost per batched sequence.
	DecodeMSPerSeq float64
	// KVBlocks and BlockSize size the KV cache: KVBlocks blocks of
	// BlockSize tokens.
	KVBlocks  int
	BlockSize int
	// MaxSeqLen bounds prompt+output; contiguous allocation reserves
	// this much per sequence.
	MaxSeqLen int
	// MaxBatch caps concurrent decoding sequences (0 = unlimited).
	MaxBatch int
}

// DefaultGPU returns an A100-flavoured cost model.
func DefaultGPU() GPUConfig {
	return GPUConfig{
		PrefillTokensPerMS: 20,
		DecodeBaseMS:       4,
		DecodeMSPerSeq:     0.25,
		KVBlocks:           2048,
		BlockSize:          16,
		MaxSeqLen:          4096,
		MaxBatch:           64,
	}
}

// Validate checks the configuration.
func (g GPUConfig) Validate() error {
	if g.PrefillTokensPerMS <= 0 || g.DecodeBaseMS <= 0 || g.DecodeMSPerSeq < 0 ||
		g.KVBlocks <= 0 || g.BlockSize <= 0 || g.MaxSeqLen <= 0 {
		return fmt.Errorf("%w: %+v", ErrConfig, g)
	}
	return nil
}

// prefillMS is the time to prefill n tokens.
func (g GPUConfig) prefillMS(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / g.PrefillTokensPerMS
}

// decodeIterMS is the time of one decode iteration over batch sequences.
func (g GPUConfig) decodeIterMS(batch int) float64 {
	if batch <= 0 {
		return 0
	}
	return g.DecodeBaseMS + g.DecodeMSPerSeq*float64(batch)
}

// Result records one request's serving outcome.
type Result struct {
	Req workload.Request
	// TTFTms is time from arrival to the first output token.
	TTFTms float64
	// TBTms is the mean time between subsequent output tokens.
	TBTms float64
	// FinishMS is the completion time on the logical clock.
	FinishMS float64
	// PrefilledTokens counts prompt tokens actually prefetched/prefilled
	// (lower than PromptTokens when a prefix or session cache hit).
	PrefilledTokens int
	// Rejected requests could not be admitted (KV exhaustion with no
	// possibility of progress).
	Rejected bool
	// Instance is the index of the cluster instance that completed the
	// request (0 for single-instance runs).
	Instance int
}

// Report aggregates a simulation.
type Report struct {
	Results []Result
	// MakespanMS is the completion time of the last request.
	MakespanMS float64
	// TTFT and TBT are per-request summaries (rejected excluded).
	TTFT metrics.Summary
	TBT  metrics.Summary
	// OutputTokens totals generated tokens.
	OutputTokens int
	// PrefillTokens totals prefilled tokens (after any cache savings).
	PrefillTokens int
	// PeakKVBlocks is the high-water KV occupancy.
	PeakKVBlocks int
	// Rejected counts requests never served.
	Rejected int
	// Preemptions counts all-or-nothing evictions of running sequences
	// (OnDemand mode only).
	Preemptions int
}

// Throughput is output tokens per second of makespan.
func (r *Report) Throughput() float64 {
	if r.MakespanMS <= 0 {
		return 0
	}
	return float64(r.OutputTokens) / (r.MakespanMS / 1000)
}

// Goodput is the fraction of requests meeting both SLOs (rejected
// requests count against it) — the DistServe measure.
func (r *Report) Goodput(ttftSLOms, tbtSLOms float64) float64 {
	if len(r.Results) == 0 {
		return 0
	}
	good := 0
	for _, res := range r.Results {
		if !res.Rejected && res.TTFTms <= ttftSLOms && res.TBTms <= tbtSLOms {
			good++
		}
	}
	return float64(good) / float64(len(r.Results))
}

// ClassTTFT summarizes TTFT over served requests of one SLO class — the
// per-class latency breakdown the multi-tenant experiments report. A
// class with no served requests yields a zero Summary.
func (r *Report) ClassTTFT(class workload.SLOClass) metrics.Summary {
	var s metrics.Summary
	for i := range r.Results {
		res := &r.Results[i]
		if !res.Rejected && res.Req.SLOClass == class {
			s.Add(res.TTFTms)
		}
	}
	return s
}

// ClassGoodput is Goodput restricted to one SLO class: the fraction of
// that class's requests (rejected included) meeting both SLO bounds.
func (r *Report) ClassGoodput(class workload.SLOClass, ttftSLOms, tbtSLOms float64) float64 {
	total, good := 0, 0
	for i := range r.Results {
		res := &r.Results[i]
		if res.Req.SLOClass != class {
			continue
		}
		total++
		if !res.Rejected && res.TTFTms <= ttftSLOms && res.TBTms <= tbtSLOms {
			good++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

// ClassOutputTokens sums emitted tokens of served requests of one SLO
// class — a class-level throughput numerator.
func (r *Report) ClassOutputTokens(class workload.SLOClass) int {
	sum := 0
	for i := range r.Results {
		res := &r.Results[i]
		if !res.Rejected && res.Req.SLOClass == class {
			sum += res.Req.OutputTokens
		}
	}
	return sum
}

// buildReport assembles summaries from results.
func buildReport(results []Result) *Report {
	rep := &Report{Results: results}
	for _, res := range results {
		if res.Rejected {
			rep.Rejected++
			continue
		}
		rep.TTFT.Add(res.TTFTms)
		if res.Req.OutputTokens > 1 {
			rep.TBT.Add(res.TBTms)
		}
		rep.OutputTokens += res.Req.OutputTokens
		rep.PrefillTokens += res.PrefilledTokens
		if res.FinishMS > rep.MakespanMS {
			rep.MakespanMS = res.FinishMS
		}
	}
	return rep
}
