package serving

import (
	"fmt"
	"sort"

	"dataai/internal/metrics"
	"dataai/internal/obs"
	"dataai/internal/resilient"
	"dataai/internal/sim"
	"dataai/internal/token"
	"dataai/internal/workload"
)

// RouterPolicy selects how a multi-instance front end spreads requests.
type RouterPolicy int

// Supported routing policies.
const (
	// RoundRobin rotates through instances, ignoring cache and health
	// state — the naive baseline.
	RoundRobin RouterPolicy = iota
	// CacheAware routes requests sharing a prefix or session to the
	// same instance, so its KV cache serves them — the KV-centric
	// scheduling idea of Mooncake [45]: cache reuse is worth more than
	// perfect load spread. Requests with no affinity go to the instance
	// with the least outstanding token load.
	CacheAware
	// BreakerAware scores instances by live load and cache affinity, but
	// feeds each instance's circuit-breaker state (resilient.Breaker,
	// driven by crash detections) into the score so the router steers
	// around tripped instances and trickles probes at half-open ones.
	BreakerAware
)

// String names the policy.
func (p RouterPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case CacheAware:
		return "cache-aware"
	case BreakerAware:
		return "breaker-aware"
	default:
		return fmt.Sprintf("router(%d)", int(p))
	}
}

// RoutedReport aggregates a routed multi-instance run.
type RoutedReport struct {
	Report
	// PrefixHits and PrefixMisses sum the per-instance prefix caches.
	PrefixHits   int
	PrefixMisses int
	// Rerouted counts sequences re-routed to another instance after a
	// crash dropped them (each hop counts once).
	Rerouted int
	// Crashes counts instance-crash windows the fault plan applied.
	Crashes int
	// Migrations counts live-migrated sequences (checkpoint → ship →
	// resume hops off distressed instances).
	Migrations int
	// ResumedFromCkpt counts re-admissions that restored host-side
	// checkpoint state instead of recomputing from token zero.
	ResumedFromCkpt int
	// WastedRecomputeTokens totals context tokens re-prefilled because
	// a crash (or migration shortfall) lost state an instance had
	// already computed — the recompute tax recovery policies shrink.
	WastedRecomputeTokens int
	// CkptWrites and CkptTokens count checkpoint captures and the
	// context tokens they shipped to host memory.
	CkptWrites int
	CkptTokens int
	// RecoveryMS summarizes crash-drop → re-admission latency per
	// dropped sequence.
	RecoveryMS metrics.Summary
	// PrefixCPUHits and PrefixDemotions sum the tiered prefix caches'
	// host-tier traffic (zero with the legacy unbounded caches).
	PrefixCPUHits   int
	PrefixDemotions int
	// AdmissionRejected counts requests the per-tenant token bucket
	// turned away at the router (a subset of Rejected);
	// AdmissionDelayed counts AdmitQueue holds.
	AdmissionRejected int
	AdmissionDelayed  int
	// Tenants summarizes per-tenant admission and service outcomes,
	// sorted by tenant ID (empty for untenanted traces).
	Tenants []TenantStats
	// Regret, when the run was priced by ReplayRegret, summarizes
	// per-decision counterfactual regret (nil otherwise).
	Regret *RegretSummary
}

// clusterTally tracks simultaneous KV occupancy across every instance of
// a routed run — the true cluster high-water mark, which summing
// per-instance peaks from unsynchronized runs used to overstate.
type clusterTally struct{ used, peak int }

// talliedKV wraps one instance's KVManager and mirrors its block deltas
// into the shared cluster tally.
type talliedKV struct {
	KVManager
	tally *clusterTally
}

func (t *talliedKV) settle(before int) {
	t.tally.used += t.KVManager.UsedBlocks() - before
	if t.tally.used > t.tally.peak {
		t.tally.peak = t.tally.used
	}
}

// Alloc implements KVManager.
func (t *talliedKV) Alloc(id string, tokens int) bool {
	before := t.KVManager.UsedBlocks()
	ok := t.KVManager.Alloc(id, tokens)
	t.settle(before)
	return ok
}

// Extend implements KVManager.
func (t *talliedKV) Extend(id string, newTotal int) bool {
	before := t.KVManager.UsedBlocks()
	ok := t.KVManager.Extend(id, newTotal)
	t.settle(before)
	return ok
}

// Free implements KVManager.
func (t *talliedKV) Free(id string) {
	before := t.KVManager.UsedBlocks()
	t.KVManager.Free(id)
	t.settle(before)
}

// Routing-score constants for BreakerAware: an open breaker pushes an
// instance past any plausible load, a half-open one costs a moderate
// token handicap (probes trickle back once the healthy instances carry
// real queues), and cache affinity halves the effective load.
const (
	openPenalty     = 1e9
	halfOpenPenalty = 2000
	affinityFactor  = 0.5
)

// excludedPenalty pushes the instance a re-routed sequence was just
// dropped by past every real score: it stays a scored candidate (so
// decisions record it and replays can force it — it ranks last) but
// never wins against any live instance, reproducing the historical
// skip exactly. 1e18 dwarfs openPenalty plus any achievable token load.
const excludedPenalty = 1e18

// cluster is a routed serving run in flight: n instances on one engine,
// a router making per-arrival decisions from live state, and optional
// fault windows.
type cluster struct {
	eng      *sim.Engine
	insts    []*instance
	prefixes []*PrefixCache
	breakers []*resilient.Breaker
	policy   RouterPolicy

	rr         int // RoundRobin rotation counter
	pending    int // requests arrived-or-scheduled and not yet resolved
	rerouted   int
	crashes    int
	migrations int
	results    []Result
	pool       seqPool

	// rec is the run's crash-recovery state (checkpoint store +
	// accounting); always non-nil for routed runs, inert when the
	// RecoveryConfig is zero.
	rec *recovery

	// adm is the run's per-tenant admission controller; nil when the
	// AdmissionConfig policy is AdmitAll (the historical path).
	adm *admitter

	// trace, when non-nil, records the cluster timeline; instances share
	// it through their ContinuousOpts.
	trace *obs.Tracer

	// scores is the router's per-decision scratch (one slot per
	// instance), reused across decisions so scoring allocates nothing
	// on the route path.
	scores []candScore
	// routeCalls counts route() invocations — the 1-based decision
	// sequence a ForcedChoice matches against, kept whether or not a
	// log records the decisions.
	routeCalls uint64
	// dlog, when non-nil, records every routing decision (see
	// ContinuousOpts.Decisions).
	dlog *obs.DecisionLog
	// force, when non-nil, overrides one decision (see
	// ContinuousOpts.Force).
	force *ForcedChoice
	// rankBuf is scratch for ranking candidates under forcing,
	// allocated on first use (forced replays only).
	rankBuf []int
}

// candScore is one instance's standing in a single routing decision:
// the raw signals alongside the policy's score. route fills the
// cluster's scratch slice, recordDecision copies it into the log.
type candScore struct {
	load     int
	affinity bool
	breaker  int // breaker state BreakerAware consulted, -1 otherwise
	down     bool
	excluded bool
	score    float64
}

// traceBreaker mirrors instance i's breaker state into its gauge
// (0 closed, 1 open, 2 half-open). StateAt is idempotent at a fixed time
// — every breaker mutator calls it first — so the extra read never
// changes routing behavior.
func (c *cluster) traceBreaker(now float64, i int) {
	if c.trace == nil {
		return
	}
	c.trace.Registry().Gauge(fmt.Sprintf("gpu%d/breaker_state", i)).
		Set(now, float64(c.breakers[i].StateAt(now)))
}

// affinity returns the instance a request's prefix or session hashes to,
// or -1 when it has neither.
func (c *cluster) affinity(r workload.Request) int {
	n := len(c.insts)
	if r.PrefixID != "" {
		return int(token.Hash64(r.PrefixID) % uint64(n))
	}
	if r.Session != "" {
		return int(token.Hash64(r.Session) % uint64(n))
	}
	return -1
}

// leastLoaded returns the instance with the smallest live outstanding
// token load, skipping exclude (ties break to the lowest index). The
// live router now picks through the scored path (scoreInstances);
// this direct argmin survives as the reference the scored CacheAware
// fallback is differentially tested against.
func (c *cluster) leastLoaded(exclude int) int {
	best := -1
	for i, in := range c.insts {
		if i == exclude && len(c.insts) > 1 {
			continue
		}
		if best < 0 || in.queueLoad() < c.insts[best].queueLoad() {
			best = i
		}
	}
	return best
}

// route picks the instance for a request arriving now. exclude is the
// instance a re-routed sequence was just dropped by (-1 for fresh
// arrivals): sending it straight back would race its own recovery.
// held marks an arrival the admission controller delayed first.
//
// Every policy is expressed as a candidate score vector with the
// winner the strict-less argmin, so ties always break to the lowest
// instance index (TestRouterTieBreakAtEqualScores pins this). That
// single discipline
// — shared with obs.Decision.Ranked — is what lets a counterfactual
// replay force rank-k alternatives without ever disagreeing with live
// routing on ties.
func (c *cluster) route(now float64, r workload.Request, exclude int, held bool) int {
	c.scoreInstances(now, r, exclude)
	chosen := 0
	for i := 1; i < len(c.scores); i++ {
		if c.scores[i].score < c.scores[chosen].score {
			chosen = i
		}
	}
	c.routeCalls++
	if c.force != nil && c.force.Decision == c.routeCalls {
		chosen = c.rankedInstance(c.force.Rank)
	}
	c.recordDecision(now, r, exclude, held, chosen)
	return chosen
}

// scoreInstances fills c.scores for one routing decision. Each policy's
// scoring reproduces its historical direct-pick behavior choice for
// choice:
//
//   - RoundRobin scores rotation distance from the current counter and
//     advances the counter exactly as the direct implementation did
//     (one step, plus one more when the first pick was excluded);
//   - CacheAware scores the affinity instance below any possible load
//     (-1) and everything else by live queue load;
//   - BreakerAware keeps its load × affinity × breaker-penalty formula
//     with identical float operation order.
//
// The excluded instance is scored past every real candidate with
// excludedPenalty rather than skipped (see that constant). BreakerAware
// deliberately does not consult the excluded instance's breaker:
// StateAt applies the lazy open→half-open transition, so an extra call
// the historical path never made would perturb breaker accounting. Its
// Breaker field records -1, unconsulted — as does every candidate's
// under the policies that never read breakers.
func (c *cluster) scoreInstances(now float64, r workload.Request, exclude int) {
	n := len(c.insts)
	switch c.policy {
	case CacheAware:
		aff := c.affinity(r)
		for i, in := range c.insts {
			cs := &c.scores[i]
			*cs = candScore{load: in.queueLoad(), breaker: -1, down: in.down}
			cs.score = float64(cs.load)
			if i == aff {
				cs.affinity = true
				cs.score = -1
			}
			if i == exclude && n > 1 {
				cs.excluded = true
				cs.score += excludedPenalty
			}
		}
	case BreakerAware:
		aff := c.affinity(r)
		for i, in := range c.insts {
			cs := &c.scores[i]
			*cs = candScore{load: in.queueLoad(), breaker: -1, down: in.down}
			score := float64(cs.load)
			if i == aff {
				cs.affinity = true
				score *= affinityFactor
			}
			if i == exclude && n > 1 {
				cs.excluded = true
				score += excludedPenalty
			} else {
				st := c.breakers[i].StateAt(now)
				cs.breaker = int(st)
				switch st {
				case resilient.BreakerOpen:
					score += openPenalty
				case resilient.BreakerHalfOpen:
					score += halfOpenPenalty
				}
			}
			cs.score = score
		}
	default: // RoundRobin
		base := c.rr % n
		c.rr++
		if base == exclude && n > 1 {
			c.rr++
		}
		for i, in := range c.insts {
			cs := &c.scores[i]
			*cs = candScore{load: in.queueLoad(), breaker: -1, down: in.down}
			cs.score = float64((i - base + n) % n)
			if i == exclude && n > 1 {
				cs.excluded = true
				cs.score += excludedPenalty
			}
		}
	}
}

// rankedInstance returns the instance at 1-based rank k of the current
// score vector: rank 1 is the argmin (the live choice), ties order by
// instance index, and k past the instance count clamps to the worst
// candidate. Called only on the forced decision of a replay.
func (c *cluster) rankedInstance(k int) int {
	n := len(c.scores)
	if c.rankBuf == nil {
		c.rankBuf = make([]int, n)
	}
	buf := c.rankBuf
	for i := range buf {
		buf[i] = i
	}
	sort.Slice(buf, func(a, b int) bool {
		if c.scores[buf[a]].score != c.scores[buf[b]].score {
			return c.scores[buf[a]].score < c.scores[buf[b]].score
		}
		return buf[a] < buf[b]
	})
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return buf[k-1]
}

// recordDecision copies the score vector into the decision log (no-op
// without one). chosen is the instance actually routed to — under
// forcing, the forced alternative.
func (c *cluster) recordDecision(now float64, r workload.Request, exclude int, held bool, chosen int) {
	if c.dlog == nil {
		return
	}
	kind := obs.DecisionArrival
	if exclude >= 0 {
		kind = obs.DecisionReroute
	}
	cands := make([]obs.Candidate, len(c.scores))
	for i, cs := range c.scores {
		cands[i] = obs.Candidate{
			Instance: i, QueueLoad: cs.load, Affinity: cs.affinity,
			Breaker: cs.breaker, Down: cs.down, Excluded: cs.excluded,
			Score: cs.score,
		}
	}
	c.dlog.Record(obs.Decision{
		AtMS: now, ReqID: r.ID, Kind: kind, Held: held, Chosen: chosen, Candidates: cands,
	})
}

// traceDecision ties the queue span a routed delivery just opened to
// its decision-log entry: obs.Check matches the "decision" and "inst"
// attrs against the log. Only route() outcomes are annotated —
// migration hops call arrive directly and carry no decision — and only
// when both a tracer and a decision log are on, so decision-free
// traces keep their historical bytes.
func (c *cluster) traceDecision(s *seqState, chosen int) {
	if c.trace == nil || c.dlog == nil {
		return
	}
	c.trace.SpanAttrs(s.phase,
		obs.I(obs.DecisionSeqKey, int64(c.routeCalls)),
		obs.I(obs.DecisionInstKey, int64(chosen)))
}

// rerouteAttrs annotates the reroute instant with the hop when decision
// recording is on (attr-free otherwise, preserving historical bytes).
func (c *cluster) rerouteAttrs(from, to int) []obs.Attr {
	if c.dlog == nil {
		return nil
	}
	return []obs.Attr{obs.I("from", int64(from)), obs.I("to", int64(to))}
}

// RunRouted serves the trace on n instances behind an online router:
// every request is assigned at its arrival instant from the cluster's
// live state (queue load, breaker state, cache affinity), with all
// instances sharing one discrete-event clock. Every instance gets its
// own prefix cache (and session store when sessions appear in the
// trace); the routing policy decides which instance's cache a request
// can hit.
func RunRouted(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts) (*RoutedReport, error) {
	return RunRoutedFaults(gpu, reqs, n, policy, opts, nil)
}

// RunRoutedFaults is RunRouted under a cluster fault plan: instances
// crash and recover on seeded windows (dropping their in-flight
// sequences back through the router after a detection delay), straggler
// windows slow them down, and per-instance circuit breakers observe the
// failures — which the BreakerAware policy folds into its routing score.
// A nil plan injects nothing. Crashed sequences recompute from token
// zero; see RunRoutedRecovery for checkpointed recovery.
func RunRoutedFaults(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts, plan *FaultPlan) (*RoutedReport, error) {
	return RunRoutedRecovery(gpu, reqs, n, policy, opts, plan, RecoveryConfig{})
}

// RunRoutedRecovery is RunRoutedFaults with a crash-recovery policy:
// periodic decode-state checkpoints let re-routed sequences resume from
// host memory instead of recomputing, live migration drains long
// sessions off distressed instances, and tiered prefix caches demote
// cold prefixes to a crash-surviving CPU tier under pressure (see
// RecoveryConfig). A zero rec reproduces RunRoutedFaults byte for byte.
func RunRoutedRecovery(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts, plan *FaultPlan, rec RecoveryConfig) (*RoutedReport, error) {
	rep, _, err := runRoutedCluster(gpu, reqs, n, policy, opts, plan, rec, AdmissionConfig{})
	return rep, err
}

// RunRoutedAdmission is RunRoutedRecovery with per-tenant token-bucket
// admission control at the router: each tenant's trace-token demand
// (prompt + output) is charged against a weighted bucket, and requests
// the bucket cannot cover are rejected or held per adm.Policy before any
// instance sees them. A zero adm reproduces RunRoutedRecovery byte for
// byte.
func RunRoutedAdmission(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts, plan *FaultPlan, rec RecoveryConfig, adm AdmissionConfig) (*RoutedReport, error) {
	rep, _, err := runRoutedCluster(gpu, reqs, n, policy, opts, plan, rec, adm)
	return rep, err
}

// runRoutedCluster is the routed entry points' shared engine room. It
// returns the drained cluster alongside the report so invariant tests
// can inspect post-run allocator and pool state.
func runRoutedCluster(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts, plan *FaultPlan, rec RecoveryConfig, adm AdmissionConfig) (*RoutedReport, *cluster, error) {
	if err := gpu.Validate(); err != nil {
		return nil, nil, err
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("%w: instances %d", ErrConfig, n)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	hasSessions := false
	for _, r := range ordered {
		if r.Session != "" {
			hasSessions = true
			break
		}
	}

	c := &cluster{
		eng: sim.NewEngine(), policy: policy,
		insts:    make([]*instance, n),
		prefixes: make([]*PrefixCache, n),
		breakers: make([]*resilient.Breaker, n),
		pending:  len(ordered),
		trace:    opts.Trace,
		rec:      newRecovery(rec),
		scores:   make([]candScore, n),
		dlog:     opts.Decisions,
		force:    opts.Force,
	}
	// Attach the log so Tracer.Check verifies decisions against the
	// timeline (nil-safe both ways).
	c.trace.AttachDecisions(c.dlog)
	if adm.Policy != AdmitAll {
		c.adm = newAdmitter(adm, opts.Trace.Registry())
	}
	tally := &clusterTally{}
	cooldown := 1000.0
	if plan != nil {
		cooldown = plan.crashDownMS()
	}
	for i := 0; i < n; i++ {
		i := i
		instOpts := opts
		instOpts.KV = &talliedKV{KVManager: NewPagedKV(gpu), tally: tally}
		if rec.PrefixGPUTokens > 0 {
			// Two-tier prefix cache: cold prefixes demote to a host tier
			// that survives this instance's crashes.
			c.prefixes[i] = NewTieredPrefixCache(PrefixCacheConfig{
				GPUCapacityTokens:  rec.PrefixGPUTokens,
				CPUCapacityTokens:  rec.PrefixCPUTokens,
				TransferMSPerToken: rec.prefixXferMSPerToken(),
				PrefillTokensPerMS: gpu.PrefillTokensPerMS,
			})
		} else {
			c.prefixes[i] = NewPrefixCache()
		}
		instOpts.Prefix = c.prefixes[i]
		if hasSessions {
			store, err := NewSessionStore(SessionStoreConfig{
				GPUCapacityTokens:  gpu.KVBlocks * gpu.BlockSize / 4,
				Policy:             LRU,
				PrefillTokensPerMS: gpu.PrefillTokensPerMS,
			})
			if err != nil {
				return nil, nil, err
			}
			instOpts.SessionCache = store
		}
		c.breakers[i] = resilient.NewBreaker(resilient.BreakerPolicy{FailureThreshold: 2, CooldownMS: cooldown})
		c.insts[i] = newInstance(i, gpu, instOpts, c.eng, &c.pool, func(now float64, r Result) {
			c.results = append(c.results, r)
			c.breakers[i].OnSuccess(now)
			c.traceBreaker(now, i)
			c.pending--
		})
		c.insts[i].rec = c.rec
		c.insts[i].onDrop = func(now float64, s *seqState) {
			// The router learns of the loss a detection delay later and
			// re-routes the sequence away from the crashed instance.
			c.eng.At(now+plan.detectMS(), func(t float64) {
				c.breakers[i].OnFailure(t)
				c.traceBreaker(t, i)
				c.rerouted++
				g := c.route(t, s.req, i, false)
				if c.trace != nil {
					c.trace.Instant(t, "router", "reroute", c.rerouteAttrs(i, g)...)
					c.trace.Registry().Counter("router/reroute_crash").Add(t, 1)
				}
				c.insts[g].arrive(t, s)
				c.traceDecision(s, g)
			})
		}
	}

	// One shared ArgHandler delivers every arrival; the event argument is
	// the request's index in the ordered trace, so scheduling n arrivals
	// allocates one closure instead of n.
	capacityTokens := gpu.KVBlocks * gpu.BlockSize
	// deliverHeld lands a request the admission controller reserved a
	// refill window for; deliver runs first, at the arrival instant.
	deliverHeld := func(now float64, idx uint64) {
		r := ordered[idx]
		c.adm.delivered(now, r.Tenant)
		g := c.route(now, r, -1, true)
		s := c.pool.get(r)
		c.insts[g].arrive(now, s)
		c.traceDecision(s, g)
	}
	deliver := func(now float64, idx uint64) {
		r := ordered[idx]
		footprint := r.PromptTokens + r.OutputTokens
		if footprint > capacityTokens || footprint > gpu.MaxSeqLen {
			traceRejectArrival(c.trace, now, r)
			c.results = append(c.results, Result{Req: r, Rejected: true})
			c.pending--
			return
		}
		if c.adm != nil {
			delay, ok := c.adm.decide(now, r)
			if !ok {
				traceRejectArrival(c.trace, now, r)
				c.results = append(c.results, Result{Req: r, Rejected: true})
				c.pending--
				return
			}
			if delay > 0 {
				c.eng.AtArg(now+delay, deliverHeld, idx)
				return
			}
		}
		g := c.route(now, r, -1, false)
		s := c.pool.get(r)
		c.insts[g].arrive(now, s)
		c.traceDecision(s, g)
	}
	for i := range ordered {
		c.eng.AtArg(ordered[i].ArrivalMS, deliver, uint64(i))
	}

	if plan != nil {
		var windowAt func(w int)
		windowAt = func(w int) {
			c.eng.At(float64(w)*plan.windowMS(), func(now float64) {
				if c.pending == 0 {
					return // trace fully resolved: stop driving windows
				}
				for i, in := range c.insts {
					if in.down {
						continue
					}
					in.setSlowdown(plan.slowdownAt(i, w))
					if plan.crashAt(i, w) {
						c.crashes++
						if c.trace != nil {
							c.trace.Registry().Counter("router/crashes").Add(now, 1)
						}
						in.crash(now)
						c.eng.At(now+plan.detectMS(), func(t float64) {
							// Health check: the detector notices the dead
							// instance even when nothing was in flight.
							c.breakers[i].OnFailure(t)
							c.traceBreaker(t, i)
						})
						c.eng.At(now+plan.crashDownMS(), func(t float64) {
							in.setSlowdown(1)
							in.recoverAt(t)
						})
					}
				}
				if plan.OverloadAlpha > 0 {
					// Post-crash cascade: survivors absorbing the down
					// instances' rerouted load run slower for the window,
					// on top of any straggler draw.
					downCount := 0
					for _, in := range c.insts {
						if in.down {
							downCount++
						}
					}
					if ov := plan.overloadFactor(downCount, len(c.insts)); ov > 1 {
						for i, in := range c.insts {
							if in.down {
								continue
							}
							in.setSlowdown(plan.slowdownAt(i, w) * ov)
						}
					}
				}
				windowAt(w + 1)
			})
		}
		windowAt(0)
	}
	if rec.Migrate {
		c.scheduleMigration()
	}

	c.eng.Run()

	var hits, misses, cpuHits, demotions, preemptions int
	for i, in := range c.insts {
		for in.waiting.Len() > 0 {
			// Never admittable: report rejected, reclaim the state —
			// Result copies the request, so pooling is safe — and drop
			// any host-side checkpoint the sequence left behind.
			s := in.waiting.PopFront()
			in.load -= seqLoad(s)
			in.traceReject(c.eng.Now(), s)
			c.results = append(c.results, Result{Req: s.req, Rejected: true})
			c.rec.drop(s.req.ID)
			c.pool.put(s)
		}
		h, m := c.prefixes[i].Stats()
		hits += h
		misses += m
		ch, d := c.prefixes[i].TierStats()
		cpuHits += ch
		demotions += d
		preemptions += in.preemptions
	}
	out := &RoutedReport{Report: *buildReport(c.results)}
	out.PeakKVBlocks = tally.peak
	out.Preemptions = preemptions
	out.PrefixHits = hits
	out.PrefixMisses = misses
	out.Rerouted = c.rerouted
	out.Crashes = c.crashes
	out.Migrations = c.migrations
	out.ResumedFromCkpt = c.rec.resumes
	out.WastedRecomputeTokens = c.rec.wasted
	out.CkptWrites = c.rec.writes
	out.CkptTokens = c.rec.writeTokens
	out.RecoveryMS = c.rec.recoveryMS
	out.PrefixCPUHits = cpuHits
	out.PrefixDemotions = demotions
	out.Tenants = tenantStats(c.adm, c.results)
	if c.adm != nil {
		for _, t := range out.Tenants {
			out.AdmissionRejected += t.AdmissionRejected
			out.AdmissionDelayed += t.Delayed
		}
		if tl, ok := c.adm.tallies[""]; ok {
			out.AdmissionRejected += tl.rejected
			out.AdmissionDelayed += tl.delayed
		}
	}
	return out, c, nil
}
