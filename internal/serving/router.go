package serving

import (
	"fmt"
	"sort"

	"dataai/internal/token"
	"dataai/internal/workload"
)

// RouterPolicy selects how a multi-instance front end spreads requests.
type RouterPolicy int

// Supported routing policies.
const (
	// RoundRobin spreads requests evenly, ignoring cache state.
	RoundRobin RouterPolicy = iota
	// CacheAware routes requests sharing a prefix or session to the
	// same instance, so its KV cache serves them — the KV-centric
	// scheduling idea of Mooncake [45]: cache reuse is worth more than
	// perfect load spread.
	CacheAware
)

// String names the policy.
func (p RouterPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case CacheAware:
		return "cache-aware"
	default:
		return fmt.Sprintf("router(%d)", int(p))
	}
}

// RoutedReport aggregates a routed multi-instance run.
type RoutedReport struct {
	Report
	// PrefixHits and PrefixMisses sum the per-instance prefix caches.
	PrefixHits   int
	PrefixMisses int
}

// RunRouted serves the trace on n instances behind a router. Every
// instance gets its own prefix cache (and session store when sessions
// appear in the trace); the routing policy decides which instance's
// cache a request can hit.
func RunRouted(gpu GPUConfig, reqs []workload.Request, n int, policy RouterPolicy, opts ContinuousOpts) (*RoutedReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: instances %d", ErrConfig, n)
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ArrivalMS < ordered[j].ArrivalMS })

	shares := make([][]workload.Request, n)
	loads := make([]int, n) // outstanding token load per instance
	pick := func(r workload.Request) int {
		if policy == CacheAware {
			if r.PrefixID != "" {
				return int(token.Hash64(r.PrefixID) % uint64(n))
			}
			if r.Session != "" {
				return int(token.Hash64(r.Session) % uint64(n))
			}
		}
		// Least-loaded fallback (round-robin degenerate under equal
		// loads, deterministic tie-break by index).
		best := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		return best
	}
	for _, r := range ordered {
		g := pick(r)
		shares[g] = append(shares[g], r)
		loads[g] += r.PromptTokens + r.OutputTokens
	}

	hasSessions := false
	for _, r := range ordered {
		if r.Session != "" {
			hasSessions = true
			break
		}
	}

	var all []Result
	var peak, preemptions, hits, misses int
	for _, share := range shares {
		if len(share) == 0 {
			continue
		}
		shareOpts := opts
		shareOpts.KV = nil
		pc := NewPrefixCache()
		shareOpts.Prefix = pc
		if hasSessions {
			store, err := NewSessionStore(SessionStoreConfig{
				GPUCapacityTokens:  gpu.KVBlocks * gpu.BlockSize / 4,
				Policy:             LRU,
				PrefillTokensPerMS: gpu.PrefillTokensPerMS,
			})
			if err != nil {
				return nil, err
			}
			shareOpts.SessionCache = store
		}
		rep, err := RunContinuous(gpu, share, shareOpts)
		if err != nil {
			return nil, err
		}
		all = append(all, rep.Results...)
		peak += rep.PeakKVBlocks
		preemptions += rep.Preemptions
		h, m := pc.Stats()
		hits += h
		misses += m
	}
	out := &RoutedReport{Report: *buildReport(all)}
	out.PeakKVBlocks = peak
	out.Preemptions = preemptions
	out.PrefixHits = hits
	out.PrefixMisses = misses
	return out, nil
}
