package serving

import "dataai/internal/resilient"

// Live session migration: a deterministic periodic scan (every
// RecoveryConfig.MigrateCheckMS of logical time) that drains long
// sequences off distressed instances — straggling, breaker-open, or
// carrying far more than their share of load — and ships them
// (checkpoint → transfer → resume) to the least-loaded healthy
// instance. Every decision reads only cluster state at the scan
// instant, so runs are byte-identical across repetitions and worker
// counts; ties always break to the lowest instance index or smallest
// request ID.

// removeRunning unlinks s from the running batch without freeing its KV
// accounting elsewhere — the migration path, which hands the sequence to
// another instance mid-decode. It reports whether s was found.
func (in *instance) removeRunning(s *seqState) bool {
	for i, r := range in.running {
		if r == s {
			copy(in.running[i:], in.running[i+1:])
			in.running[len(in.running)-1] = nil
			in.running = in.running[:len(in.running)-1]
			return true
		}
	}
	return false
}

// migrateScan runs one migration pass at now: each distressed donor may
// surrender at most one running sequence per scan (migration is a
// relief valve, not a rebalance), and only when a strictly less-loaded
// healthy receiver exists.
func (c *cluster) migrateScan(now float64) {
	n := len(c.insts)
	if n < 2 {
		return
	}
	// Speed is judged relative to the fastest surviving instance, not an
	// absolute slow == 1: a post-crash overload cascade slows *every*
	// survivor, and migration must still be able to drain a straggler
	// (slow 3×overload) onto a merely-overloaded peer (slow 1×overload).
	up, totalLoad := 0, 0
	minSlow := 0.0
	for _, in := range c.insts {
		if in.down {
			continue
		}
		up++
		totalLoad += in.queueLoad()
		if minSlow == 0 || in.slow < minSlow {
			minSlow = in.slow
		}
	}
	if up < 2 {
		return
	}
	mean := float64(totalLoad) / float64(up)
	hotAt := c.rec.cfg.hotLoadFactor() * mean
	for i, d := range c.insts {
		if d.down || len(d.running) == 0 {
			continue
		}
		load := d.queueLoad()
		hot := float64(load) > hotAt && load > 0
		// A donor counts as straggling only when it is at least twice as
		// slow as the best tier: a uniform overload multiplier (every
		// survivor at 1×ov) is not a reason to move — the move would pay
		// ship + restore without escaping anything.
		distressed := d.slow > 2*minSlow || c.breakers[i].StateAt(now) != resilient.BreakerClosed
		if !hot && !distressed {
			continue
		}
		// Receiver: up, in the fastest speed tier, breaker closed, least
		// loaded, lowest index on ties — and strictly better off than
		// the donor, or the move is churn.
		r := -1
		for j, cand := range c.insts {
			if j == i || cand.down || cand.slow > minSlow ||
				c.breakers[j].StateAt(now) != resilient.BreakerClosed {
				continue
			}
			if r < 0 || cand.queueLoad() < c.insts[r].queueLoad() {
				r = j
			}
		}
		if r < 0 || c.insts[r].queueLoad() >= load {
			continue
		}
		// Victim: the longest session — the running sequence with the
		// most remaining decode work (smallest request ID on ties).
		// Sequences close to finishing aren't worth the transfer.
		var v *seqState
		vLeft := 0
		for _, s := range d.running {
			left := s.req.OutputTokens - s.generated
			if left < c.rec.cfg.migrateMinTokens() {
				continue
			}
			if v == nil || left > vLeft || (left == vLeft && s.req.ID < v.req.ID) {
				v, vLeft = s, left
			}
		}
		if v == nil {
			continue
		}
		c.migrate(now, i, r, v)
	}
}

// migrate checkpoints v's full context, frees its device state on the
// donor, and schedules its arrival at the receiver after the ship
// delay. The sequence keeps its generated tokens — the client already
// has them — and resumes from the checkpoint at the destination,
// paying a restore transfer instead of a recompute.
func (c *cluster) migrate(now float64, from, to int, v *seqState) {
	d := c.insts[from]
	if !d.removeRunning(v) {
		return
	}
	d.load -= seqLoad(v)
	d.kv.Free(v.req.ID)
	ctx := v.req.PromptTokens + v.generated
	// Ship the checkpoint delta (context not yet on the host) plus the
	// full context over the interconnect.
	delta := c.rec.save(v.req.ID, ctx)
	shipMS := float64(ctx)*c.rec.cfg.migrateMSPerToken() + float64(delta)*c.rec.cfg.ckptMSPerToken()
	v.admitted = false
	v.preempted = false
	v.saved = 0
	v.prefillLeft = 0
	v.migrated = true
	c.migrations++
	d.tracePhase(now, v, "migrate")
	if c.trace != nil {
		c.trace.Instant(now, "router", "migrate")
		c.trace.Registry().Counter("router/reroute_migration").Add(now, 1)
		d.traceDepth(now)
	}
	target := c.insts[to]
	c.eng.At(now+shipMS, func(t float64) { target.arrive(t, v) })
}

// scheduleMigration chains the periodic migration scan on the engine,
// stopping (like the fault-window driver) once the trace is fully
// resolved.
func (c *cluster) scheduleMigration() {
	period := c.rec.cfg.migrateCheckMS()
	var scanAt func(k int)
	scanAt = func(k int) {
		c.eng.At(float64(k)*period, func(now float64) {
			if c.pending == 0 {
				return
			}
			c.migrateScan(now)
			scanAt(k + 1)
		})
	}
	scanAt(1)
}
