package serving

import (
	"bytes"
	"reflect"
	"testing"

	"dataai/internal/obs"
	"dataai/internal/workload"
)

// severeRouted runs the E23 worst case — 4 instances, breaker-aware
// routing, severe fault plan — with the given tracer attached.
func severeRouted(t *testing.T, tr *obs.Tracer) *RoutedReport {
	t.Helper()
	rep, err := RunRoutedFaults(DefaultGPU(), prefixTrace(t, 47), 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Trace: tr}, SevereFaultPlan(2303))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRoutedSevereTracePassesInvariants(t *testing.T) {
	tr := obs.NewTracer()
	rep := severeRouted(t, tr)
	if rep.Crashes == 0 || rep.Rerouted == 0 {
		t.Fatalf("severe plan injected nothing: %d crashes, %d rerouted", rep.Crashes, rep.Rerouted)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("severe routed trace failed invariants: %v", err)
	}

	// The trace must carry the fault story: crash instants, reroute
	// phases, and registry counters agreeing with the report.
	phases := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Cat == obs.CatRequest && s.Parent != 0 {
			phases[s.Name]++
		}
	}
	for _, want := range []string{"queue", "prefill", "decode", "reroute"} {
		if phases[want] == 0 {
			t.Errorf("no %q phase spans in a crashing run (histogram %v)", want, phases)
		}
	}
	crashes := 0
	for _, in := range tr.Instants() {
		if in.Name == "crash" {
			crashes++
		}
	}
	if crashes != rep.Crashes {
		t.Errorf("crash instants = %d, report says %d", crashes, rep.Crashes)
	}
	reg := tr.Registry()
	if got := reg.Lookup("router/reroute_crash").Final(); got != float64(rep.Rerouted) {
		t.Errorf("router/reroute_crash counter = %v, report says %d", got, rep.Rerouted)
	}
	if got := reg.Lookup("router/crashes").Final(); got != float64(rep.Crashes) {
		t.Errorf("router/crashes counter = %v, report says %d", got, rep.Crashes)
	}
	// Every instance published its KV capacity for the checker.
	for _, name := range []string{"gpu0/kv_capacity_blocks", "gpu3/kv_used_blocks", "gpu0/queue_depth"} {
		if reg.Lookup(name) == nil {
			t.Errorf("registry missing %s (have %v)", name, reg.Names())
		}
	}
}

func TestTracingDoesNotChangeBehavior(t *testing.T) {
	// The zero-overhead-when-nil contract's stronger sibling: even when
	// tracing is ON, the simulation's decisions are untouched — the
	// traced and untraced reports must be deeply equal.
	untraced := severeRouted(t, nil)
	traced := severeRouted(t, obs.NewTracer())
	if !reflect.DeepEqual(untraced, traced) {
		t.Error("attaching a tracer changed the routed report")
	}
}

func TestRoutedTraceBytesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	trA := obs.NewTracer()
	severeRouted(t, trA)
	if err := trA.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	trB := obs.NewTracer()
	severeRouted(t, trB)
	if err := trB.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical severe routed runs exported different trace bytes")
	}
}

func TestContinuousPreemptionTrace(t *testing.T) {
	// Under severe memory pressure the OnDemand discipline preempts;
	// preempted sequences must re-enter the queue phase and the trace
	// must stay well-formed.
	gpu := DefaultGPU()
	gpu.KVBlocks = 96
	cfg := workload.DefaultTrace(22, 120, 80)
	cfg.OutputMax = 1024
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Fatal("no preemptions under severe pressure")
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("preemption trace failed invariants: %v", err)
	}
	preempts := 0
	for _, in := range tr.Instants() {
		if in.Name == "preempt" {
			preempts++
		}
	}
	if preempts != rep.Preemptions {
		t.Errorf("preempt instants = %d, report says %d", preempts, rep.Preemptions)
	}
	// A preempted request's track holds more queue spans than requests.
	queueSpans := 0
	for _, s := range tr.Spans() {
		if s.Cat == obs.CatRequest && s.Name == "queue" {
			queueSpans++
		}
	}
	if queueSpans <= len(reqs) {
		t.Errorf("queue spans = %d, want > %d (re-queued preemption victims)", queueSpans, len(reqs))
	}
}

func TestDisaggTraceInvariants(t *testing.T) {
	reqs, err := workload.Generate(workload.DefaultTrace(31, 200, 60))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	rep, err := RunDisaggregated(DefaultGPU(), reqs, DisaggOpts{
		PrefillGPUs: 2, DecodeGPUs: 2, TransferMSPerToken: 0.02,
		Faults: SevereFaultPlan(7), Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutputTokens == 0 {
		t.Fatal("nothing served")
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("disagg trace failed invariants: %v", err)
	}
	tracks := map[string]bool{}
	for _, s := range tr.Spans() {
		tracks[s.Track] = true
	}
	for _, want := range []string{"prefill0", "prefill1", "decode0", "decode1"} {
		if !tracks[want] {
			t.Errorf("no spans on pool track %s", want)
		}
	}
	if got := tr.Registry().Lookup("transfer/retries").Final(); got == 0 {
		t.Error("severe plan produced no transfer retries")
	}
}

func TestPhaseBreakdownOnRoutedRun(t *testing.T) {
	tr := obs.NewTracer()
	severeRouted(t, tr)
	names, byPhase := obs.PhaseBreakdown(tr)
	if len(names) < 3 {
		t.Fatalf("breakdown phases = %v, want at least queue/prefill/decode", names)
	}
	if byPhase["decode"] == nil || byPhase["decode"].Count() == 0 {
		t.Fatal("no decode samples in breakdown")
	}
	if byPhase["reroute"] == nil || byPhase["reroute"].Mean() <= 0 {
		t.Error("reroute phase missing or zero under a crashing plan")
	}
}

// benchSevereRouted measures the E23 severe cell with and without a
// tracer attached; the pair quantifies the observability layer's
// overhead for BENCH_obs.json.
func benchSevereRouted(b *testing.B, newTracer func() *obs.Tracer) {
	cfg := workload.DefaultTrace(47, 300, 50)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 512
	cfg.SharedPrefixProb = 0.8
	reqs, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunRoutedFaults(DefaultGPU(), reqs, 4, BreakerAware,
			ContinuousOpts{ChunkTokens: 256, Trace: newTracer()}, SevereFaultPlan(2303)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutedTraceOff(b *testing.B) {
	benchSevereRouted(b, func() *obs.Tracer { return nil })
}

func BenchmarkRoutedTraceOn(b *testing.B) { benchSevereRouted(b, obs.NewTracer) }

func BenchmarkWriteChrome(b *testing.B) {
	cfg := workload.DefaultTrace(47, 300, 50)
	reqs, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := obs.NewTracer()
	if _, err := RunRoutedFaults(DefaultGPU(), reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Trace: tr}, SevereFaultPlan(2303)); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.WriteChrome(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "trace-bytes")
}
