package serving

import (
	"fmt"

	"dataai/internal/faults"
)

// FaultPlan injects cluster-side faults into a routed serving run. It is
// the serving-layer sibling of the call-path faults.Injector: every
// fault is a pure function of (Seed, instance, time-window) drawn
// through faults.Uniform, so a run is byte-identical across repetitions
// and worker counts — faults never depend on wall time or event
// interleaving, only on which window of the logical clock an instance is
// in.
//
// Three fault kinds, all optional:
//
//   - Crashes: at the start of a window whose crash draw fires, the
//     instance goes down for CrashDownMS, dropping every in-flight
//     sequence (their KV and GPU-resident caches die with the device);
//     after DetectMS the router observes the failure and re-routes the
//     dropped sequences to surviving instances.
//   - Stragglers: during a window whose straggler draw fires, the
//     instance's iteration costs are scaled by StragglerFactor — the
//     GPU is alive but slow (thermal throttling, a noisy neighbour).
//   - KV-transfer failures (disagg path): a transfer draw can lose a
//     prefill→decode shipment, which is retried at full transfer cost.
//
// A plan may additionally carry a failure *topology* (RackSize /
// RacksPerZone): crash draws then correlate within a rack or zone, and
// OverloadAlpha adds a post-crash cascade that slows the survivors.
type FaultPlan struct {
	// Seed drives every draw.
	Seed uint64
	// WindowMS is the fault-window width (default 2000).
	WindowMS float64
	// CrashProb is the per-(instance, window) probability of a crash at
	// the window boundary.
	CrashProb float64
	// CrashDownMS is how long a crashed instance stays down (default
	// 1500).
	CrashDownMS float64
	// DetectMS is the failure-detection delay before dropped sequences
	// are re-routed (default 50).
	DetectMS float64
	// StragglerProb is the per-(instance, window) probability the
	// instance runs slow for that window.
	StragglerProb float64
	// StragglerFactor scales iteration cost during straggler windows
	// (default 2.5; values below 1 are clamped to 1).
	StragglerFactor float64
	// TransferFailProb is the per-attempt probability a disagg KV
	// transfer is lost and must be resent.
	TransferFailProb float64

	// RackSize > 0 overlays a failure topology: instances are grouped
	// into racks of RackSize consecutive indexes, and a per-(rack,
	// window) draw of RackCrashProb crashes the whole rack at once —
	// the correlated-domain regime where recovery policies separate
	// hardest. 0 keeps every draw independent.
	RackSize int
	// RacksPerZone > 0 adds a second correlation level: racks are
	// grouped into zones, and a per-(zone, window) draw of
	// ZoneCrashProb takes the whole zone down (a power or network
	// domain failure).
	RacksPerZone  int
	RackCrashProb float64
	ZoneCrashProb float64
	// OverloadAlpha > 0 models the post-crash cascade: while d of the
	// cluster's n instances are down, every survivor's iteration cost is
	// scaled by 1 + OverloadAlpha·d/(n−d) — the rerouted load makes the
	// remaining GPUs effectively slower, which is when checkpointed
	// recovery and migration matter most.
	OverloadAlpha float64
}

// MediumFaultPlan returns a plan with noticeable but survivable cluster
// failure pressure: occasional crashes, some slow windows.
func MediumFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{Seed: seed, CrashProb: 0.05, StragglerProb: 0.10, TransferFailProb: 0.02}
}

// SevereFaultPlan returns a plan modelling a badly degraded cluster:
// frequent crashes with slow recovery and widespread stragglers.
func SevereFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		Seed: seed, CrashProb: 0.15, CrashDownMS: 2500,
		StragglerProb: 0.25, StragglerFactor: 3, TransferFailProb: 0.08,
	}
}

// CorrelatedFaultPlan returns a topology-aware plan: moderate
// independent crash/straggler pressure plus per-(rack, window) draws
// that take whole racks of rackSize instances down together —
// correlated failure domains, per the ROADMAP's fault-plan realism
// item. A rack draw firing is far more damaging than the same number
// of independent crashes: every sequence in the rack loses its device
// state in the same instant and the survivors absorb the whole rack's
// load at once.
func CorrelatedFaultPlan(seed uint64, rackSize int) *FaultPlan {
	return &FaultPlan{
		Seed: seed, CrashProb: 0.05, CrashDownMS: 2500,
		StragglerProb: 0.25, StragglerFactor: 3, TransferFailProb: 0.02,
		RackSize: rackSize, RackCrashProb: 0.25,
	}
}

// CascadeFaultPlan is CorrelatedFaultPlan plus post-crash overload:
// while a rack is down, survivors absorbing its rerouted load run
// slower (OverloadAlpha), the cascading regime where checkpointed
// recovery and live migration separate most from plain rerouting.
func CascadeFaultPlan(seed uint64, rackSize int) *FaultPlan {
	p := CorrelatedFaultPlan(seed, rackSize)
	p.OverloadAlpha = 0.75
	return p
}

func (p *FaultPlan) windowMS() float64 {
	if p.WindowMS > 0 {
		return p.WindowMS
	}
	return 2000
}

func (p *FaultPlan) crashDownMS() float64 {
	if p.CrashDownMS > 0 {
		return p.CrashDownMS
	}
	return 1500
}

func (p *FaultPlan) detectMS() float64 {
	if p.DetectMS > 0 {
		return p.DetectMS
	}
	return 50
}

func (p *FaultPlan) stragglerFactor() float64 {
	if p.StragglerFactor > 1 {
		return p.StragglerFactor
	}
	if p.StragglerFactor > 0 {
		return 1
	}
	return 2.5
}

// crashAt reports whether instance crashes at the start of window w:
// its independent draw, then its rack's, then its zone's. The
// independent draw fires first and uses the exact key it always did, so
// plans without a topology keep byte-identical fault sequences.
func (p *FaultPlan) crashAt(instance, w int) bool {
	if p == nil {
		return false
	}
	if p.CrashProb > 0 && faults.Uniform(p.Seed, faults.WindowKey("crash", instance, w)) < p.CrashProb {
		return true
	}
	if p.RackSize <= 0 {
		return false
	}
	rack := instance / p.RackSize
	if p.RackCrashProb > 0 && faults.Uniform(p.Seed, faults.WindowKey("rackcrash", rack, w)) < p.RackCrashProb {
		return true
	}
	if p.RacksPerZone > 0 && p.ZoneCrashProb > 0 &&
		faults.Uniform(p.Seed, faults.WindowKey("zonecrash", rack/p.RacksPerZone, w)) < p.ZoneCrashProb {
		return true
	}
	return false
}

// overloadFactor is the cascade multiplier applied to every surviving
// instance's iteration cost while down of n instances are crashed
// (1 = no cascade).
func (p *FaultPlan) overloadFactor(down, n int) float64 {
	if p == nil || p.OverloadAlpha <= 0 || down <= 0 || down >= n {
		return 1
	}
	return 1 + p.OverloadAlpha*float64(down)/float64(n-down)
}

// Correlate overlays a rack topology on the plan: racks of rackSize
// instances with a correlated per-(rack, window) crash draw and a
// post-crash overload cascade on survivors. Fields already set are
// respected; only zero ones receive defaults. It returns p for
// chaining.
func (p *FaultPlan) Correlate(rackSize int) *FaultPlan {
	p.RackSize = rackSize
	if p.RackCrashProb == 0 {
		p.RackCrashProb = 0.05
	}
	if p.OverloadAlpha == 0 {
		p.OverloadAlpha = 0.75
	}
	return p
}

// slowdownAt reports instance's cost multiplier during window w
// (1 = healthy).
func (p *FaultPlan) slowdownAt(instance, w int) float64 {
	if p == nil || p.StragglerProb <= 0 {
		return 1
	}
	if faults.Uniform(p.Seed, faults.WindowKey("straggler", instance, w)) < p.StragglerProb {
		return p.stragglerFactor()
	}
	return 1
}

// transferFails reports whether the attempt-th shipment of reqID's KV is
// lost in transit.
func (p *FaultPlan) transferFails(reqID string, attempt int) bool {
	if p == nil || p.TransferFailProb <= 0 {
		return false
	}
	return faults.Uniform(p.Seed, fmt.Sprintf("xfer\x00%s\x00%d", reqID, attempt)) < p.TransferFailProb
}
