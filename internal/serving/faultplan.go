package serving

import (
	"fmt"

	"dataai/internal/faults"
)

// FaultPlan injects cluster-side faults into a routed serving run. It is
// the serving-layer sibling of the call-path faults.Injector: every
// fault is a pure function of (Seed, instance, time-window) drawn
// through faults.Uniform, so a run is byte-identical across repetitions
// and worker counts — faults never depend on wall time or event
// interleaving, only on which window of the logical clock an instance is
// in.
//
// Three fault kinds, all optional:
//
//   - Crashes: at the start of a window whose crash draw fires, the
//     instance goes down for CrashDownMS, dropping every in-flight
//     sequence (their KV and GPU-resident caches die with the device);
//     after DetectMS the router observes the failure and re-routes the
//     dropped sequences to surviving instances.
//   - Stragglers: during a window whose straggler draw fires, the
//     instance's iteration costs are scaled by StragglerFactor — the
//     GPU is alive but slow (thermal throttling, a noisy neighbour).
//   - KV-transfer failures (disagg path): a transfer draw can lose a
//     prefill→decode shipment, which is retried at full transfer cost.
type FaultPlan struct {
	// Seed drives every draw.
	Seed uint64
	// WindowMS is the fault-window width (default 2000).
	WindowMS float64
	// CrashProb is the per-(instance, window) probability of a crash at
	// the window boundary.
	CrashProb float64
	// CrashDownMS is how long a crashed instance stays down (default
	// 1500).
	CrashDownMS float64
	// DetectMS is the failure-detection delay before dropped sequences
	// are re-routed (default 50).
	DetectMS float64
	// StragglerProb is the per-(instance, window) probability the
	// instance runs slow for that window.
	StragglerProb float64
	// StragglerFactor scales iteration cost during straggler windows
	// (default 2.5; values below 1 are clamped to 1).
	StragglerFactor float64
	// TransferFailProb is the per-attempt probability a disagg KV
	// transfer is lost and must be resent.
	TransferFailProb float64
}

// MediumFaultPlan returns a plan with noticeable but survivable cluster
// failure pressure: occasional crashes, some slow windows.
func MediumFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{Seed: seed, CrashProb: 0.05, StragglerProb: 0.10, TransferFailProb: 0.02}
}

// SevereFaultPlan returns a plan modelling a badly degraded cluster:
// frequent crashes with slow recovery and widespread stragglers.
func SevereFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		Seed: seed, CrashProb: 0.15, CrashDownMS: 2500,
		StragglerProb: 0.25, StragglerFactor: 3, TransferFailProb: 0.08,
	}
}

func (p *FaultPlan) windowMS() float64 {
	if p.WindowMS > 0 {
		return p.WindowMS
	}
	return 2000
}

func (p *FaultPlan) crashDownMS() float64 {
	if p.CrashDownMS > 0 {
		return p.CrashDownMS
	}
	return 1500
}

func (p *FaultPlan) detectMS() float64 {
	if p.DetectMS > 0 {
		return p.DetectMS
	}
	return 50
}

func (p *FaultPlan) stragglerFactor() float64 {
	if p.StragglerFactor > 1 {
		return p.StragglerFactor
	}
	if p.StragglerFactor > 0 {
		return 1
	}
	return 2.5
}

// crashAt reports whether instance crashes at the start of window w.
func (p *FaultPlan) crashAt(instance, w int) bool {
	if p == nil || p.CrashProb <= 0 {
		return false
	}
	return faults.Uniform(p.Seed, faults.WindowKey("crash", instance, w)) < p.CrashProb
}

// slowdownAt reports instance's cost multiplier during window w
// (1 = healthy).
func (p *FaultPlan) slowdownAt(instance, w int) float64 {
	if p == nil || p.StragglerProb <= 0 {
		return 1
	}
	if faults.Uniform(p.Seed, faults.WindowKey("straggler", instance, w)) < p.StragglerProb {
		return p.stragglerFactor()
	}
	return 1
}

// transferFails reports whether the attempt-th shipment of reqID's KV is
// lost in transit.
func (p *FaultPlan) transferFails(reqID string, attempt int) bool {
	if p == nil || p.TransferFailProb <= 0 {
		return false
	}
	return faults.Uniform(p.Seed, fmt.Sprintf("xfer\x00%s\x00%d", reqID, attempt)) < p.TransferFailProb
}
