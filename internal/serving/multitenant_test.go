package serving

import (
	"fmt"
	"testing"

	"dataai/internal/workload"
)

// Tests for the multi-tenant machinery: the ring's out-of-order
// removal, the router's token-bucket admitter, and class-priority batch
// formation with batch-slot preemption.

// TestSeqRingRemoveAt model-checks RemoveAt against a slice across head
// rotations (so both the front-shift and back-shift paths run with and
// without wraparound).
func TestSeqRingRemoveAt(t *testing.T) {
	pool := &seqPool{}
	for rot := 0; rot < 24; rot++ {
		var q seqRing
		// Rotate the head: push/pop rot placeholders.
		for i := 0; i < rot; i++ {
			q.PushBack(pool.get(workload.Request{}))
			pool.put(q.PopFront())
		}
		var model []*seqState
		for i := 0; i < 9; i++ {
			s := pool.get(workload.Request{ID: fmt.Sprintf("s%d", i)})
			q.PushBack(s)
			model = append(model, s)
		}
		// Remove a front-half, a back-half, and an end index.
		for _, i := range []int{2, 5, 0, 5} {
			got := q.RemoveAt(i)
			want := model[i]
			model = append(model[:i], model[i+1:]...)
			if got != want {
				t.Fatalf("rot %d: RemoveAt(%d) = %v, want %v", rot, i, got.req.ID, want.req.ID)
			}
			pool.put(got)
		}
		if q.Len() != len(model) {
			t.Fatalf("rot %d: Len = %d, want %d", rot, q.Len(), len(model))
		}
		for i, want := range model {
			if q.At(i) != want {
				t.Fatalf("rot %d: At(%d) = %v, want %v", rot, i, q.At(i).req.ID, want.req.ID)
			}
		}
		for q.Len() > 0 {
			pool.put(q.PopFront())
		}
	}
	if pool.outstanding != 0 {
		t.Errorf("pool outstanding = %d after drain", pool.outstanding)
	}
}

func admitReq(tenant string) workload.Request {
	return workload.Request{Tenant: tenant, PromptTokens: 30, OutputTokens: 30} // cost 60
}

func TestAdmitterReject(t *testing.T) {
	a := newAdmitter(AdmissionConfig{
		Policy: AdmitReject, BurstTokens: 100, RefillPerSec: 1000,
		Weights: map[string]float64{"big": 2},
	}, nil)
	if _, ok := a.decide(0, admitReq("t")); !ok {
		t.Fatal("first request within burst rejected")
	}
	if _, ok := a.decide(0, admitReq("t")); ok {
		t.Fatal("second request admitted past burst (level was 40, cost 60)")
	}
	// Refill at 1 token/ms: by t=20 level is back to 60.
	if _, ok := a.decide(20, admitReq("t")); !ok {
		t.Fatal("refilled bucket still rejecting")
	}
	// A weight-2 tenant gets a 200-token burst: three requests fit.
	for i := 0; i < 3; i++ {
		if _, ok := a.decide(0, admitReq("big")); !ok {
			t.Fatalf("weighted tenant rejected at request %d", i)
		}
	}
	if _, ok := a.decide(0, admitReq("big")); ok {
		t.Fatal("weighted tenant admitted past its burst")
	}
	// Rejections never charge: tenant "t"'s tallies add up.
	tl := a.tally("t")
	if tl.admitted != 2 || tl.rejected != 1 {
		t.Errorf("tally = %d admitted / %d rejected, want 2/1", tl.admitted, tl.rejected)
	}
}

func TestAdmitterQueue(t *testing.T) {
	a := newAdmitter(AdmissionConfig{
		Policy: AdmitQueue, BurstTokens: 100, RefillPerSec: 1000, MaxQueueMS: 50,
	}, nil)
	if d, ok := a.decide(0, admitReq("t")); !ok || d != 0 {
		t.Fatalf("first request: delay %v ok %v, want 0 true", d, ok)
	}
	// Level 40, cost 60: a 20-token deficit at 1 token/ms holds 20ms.
	d, ok := a.decide(0, admitReq("t"))
	if !ok || d != 20 {
		t.Fatalf("second request: delay %v ok %v, want 20 true", d, ok)
	}
	// Level -20: the next deficit is 80 > MaxQueueMS 50 — rejected,
	// without charging the bucket.
	if _, ok := a.decide(0, admitReq("t")); ok {
		t.Fatal("over-bound hold admitted")
	}
	// By t=40 the level is back to 20; deficit 40 fits the bound.
	d, ok = a.decide(40, admitReq("t"))
	if !ok || d != 40 {
		t.Fatalf("post-reject request: delay %v ok %v, want 40 true (reject must not have charged)", d, ok)
	}
	tl := a.tally("t")
	if tl.delayed != 2 || tl.rejected != 1 {
		t.Errorf("tally = %d delayed / %d rejected, want 2/1", tl.delayed, tl.rejected)
	}
}

// slotSaturationTrace fills the KV budget with long batch-class
// sequences at t=0, then lands one short interactive request behind
// them.
func slotSaturationTrace() []workload.Request {
	var reqs []workload.Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, workload.Request{
			ID: fmt.Sprintf("b%02d", i), Tenant: "bulk", SLOClass: workload.Batch,
			ArrivalMS: 0, PromptTokens: 3000, OutputTokens: 400,
		})
	}
	reqs = append(reqs, workload.Request{
		ID: "chat", Tenant: "chat", SLOClass: workload.Interactive,
		ArrivalMS: 1, PromptTokens: 512, OutputTokens: 8,
	})
	return reqs
}

// TestPrioritySchedProtectsInteractive pins the scheduling half of the
// multi-tenant story: with the KV budget saturated by batch sequences,
// FCFS makes the interactive request wait for a slot, while class
// priority with batch preemption seats it almost immediately.
func TestPrioritySchedProtectsInteractive(t *testing.T) {
	gpu := DefaultGPU()
	// Four 3400-token batch sequences reserve 4x213 blocks, leaving 8 —
	// too few for the 520-token interactive request: it must either wait
	// (FCFS) or evict a batch slot (priority + preemption).
	gpu.KVBlocks = 860
	interTTFT := func(opts ContinuousOpts) (float64, int) {
		rep, err := RunContinuous(gpu, slotSaturationTrace(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Req.ID == "chat" {
				if r.Rejected {
					t.Fatal("interactive request rejected")
				}
				return r.TTFTms, rep.Preemptions
			}
		}
		t.Fatal("interactive request missing from results")
		return 0, 0
	}
	fcfs, _ := interTTFT(ContinuousOpts{ChunkTokens: 256})
	prio, preempts := interTTFT(ContinuousOpts{ChunkTokens: 256, Sched: SchedPriority, PreemptBatch: true})
	if preempts == 0 {
		t.Error("no batch preemption despite a saturated instance")
	}
	if prio >= fcfs/4 {
		t.Errorf("priority TTFT %.1fms not well below FCFS %.1fms", prio, fcfs)
	}
	// SJF seats the interactive request too (it is the shortest job in
	// the lowest class).
	sjf, _ := interTTFT(ContinuousOpts{ChunkTokens: 256, Sched: SchedSJF, PreemptBatch: true})
	if sjf >= fcfs/4 {
		t.Errorf("SJF TTFT %.1fms not well below FCFS %.1fms", sjf, fcfs)
	}
}

// TestRoutedAdmissionShedsOverload pins the admission half: under ~2x
// overload a token-bucket router sheds the over-rate batch tenants and
// every tenant's arithmetic is consistent, while the no-admission
// baseline queues everything it sees.
func TestRoutedAdmissionShedsOverload(t *testing.T) {
	reqs, err := workload.GenerateSpec(workload.DefaultMultiTenant(77, 400, 130))
	if err != nil {
		t.Fatal(err)
	}
	weights := map[string]float64{"chat": 0.30, "bulk-a": 0.45, "bulk-b": 0.25}
	run := func(adm AdmissionConfig) *RoutedReport {
		rep, err := RunRoutedAdmission(DefaultGPU(), reqs, 2, CacheAware,
			ContinuousOpts{ChunkTokens: 256}, nil, RecoveryConfig{}, adm)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(AdmissionConfig{})
	if base.AdmissionRejected != 0 {
		t.Errorf("no-admission baseline rejected %d", base.AdmissionRejected)
	}
	shed := run(AdmissionConfig{
		Policy: AdmitReject, BurstTokens: 30000, RefillPerSec: 18000, Weights: weights,
	})
	if shed.AdmissionRejected == 0 {
		t.Fatal("token bucket shed nothing under 2x overload")
	}
	perTenant := map[string]int{}
	for _, r := range reqs {
		perTenant[r.Tenant]++
	}
	for _, ts := range shed.Tenants {
		if ts.Admitted+ts.AdmissionRejected != perTenant[ts.Tenant] {
			t.Errorf("tenant %s: admitted %d + rejected %d != arrivals %d",
				ts.Tenant, ts.Admitted, ts.AdmissionRejected, perTenant[ts.Tenant])
		}
		if ts.Served > ts.Admitted {
			t.Errorf("tenant %s: served %d > admitted %d", ts.Tenant, ts.Served, ts.Admitted)
		}
	}
	// Queue mode converts (bounded) excess into delay instead of errors.
	queued := run(AdmissionConfig{
		Policy: AdmitQueue, BurstTokens: 30000, RefillPerSec: 18000,
		MaxQueueMS: 4000, Weights: weights,
	})
	if queued.AdmissionDelayed == 0 {
		t.Error("queue mode delayed nothing under 2x overload")
	}
	if queued.AdmissionRejected >= shed.AdmissionRejected {
		t.Errorf("queue mode rejected %d, want fewer than reject mode's %d",
			queued.AdmissionRejected, shed.AdmissionRejected)
	}
}
