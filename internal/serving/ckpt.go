package serving

import "dataai/internal/metrics"

// Crash-survivable serving: periodic decode-state checkpoints and the
// host-side store they write to. A routed cluster without a recovery
// policy loses every in-flight sequence's KV to a crash and re-prefills
// it from token zero wherever the router re-lands it; with
// checkpointing, each instance ships every running sequence's context
// delta to host memory every CkptEveryIters iterations (the write is
// charged on the simulated clock, riding the iteration it happens in),
// and a re-routed sequence resumes from its newest checkpoint, paying
// only a restore transfer plus the tokens generated since the capture.
// The store is keyed by request ID and lives outside any instance, so
// it survives the crash that killed the GPU-resident state — the
// serving-side sibling of internal/training's checkpoint/recovery
// model. Everything here is a pure function of the logical clock: no
// wall time, no math/rand.

// RecoveryConfig selects a routed run's crash-recovery policy. The zero
// value disables all of it, making RunRoutedRecovery byte-identical to
// RunRoutedFaults: no checkpoints, no migration, unbounded single-tier
// prefix caches.
type RecoveryConfig struct {
	// CkptEveryIters takes a decode-state checkpoint of every running
	// sequence each K mixed iterations (0 disables checkpointing).
	CkptEveryIters int
	// CkptMSPerToken is the GPU→host write cost per context token newly
	// covered by a checkpoint, charged on the iteration that carries the
	// write (default 0.002 ms/token). Host-side DMA: straggler slowdowns
	// do not scale it.
	CkptMSPerToken float64
	// RestoreMSPerToken is the host→GPU transfer cost when a re-routed
	// sequence resumes from its checkpoint (default 0.005 ms/token). The
	// restore is priced in prefill-token equivalents, exactly like the
	// session store's transfer model.
	RestoreMSPerToken float64

	// Migrate enables live session migration: a deterministic periodic
	// scan drains the longest running sequence off hot, straggling, or
	// breaker-open instances and ships it (checkpoint → transfer →
	// resume) to the least-loaded healthy one.
	Migrate bool
	// MigrateCheckMS is the migration scan period (default 500).
	MigrateCheckMS float64
	// MigrateMSPerToken is the instance→instance ship cost per context
	// token (default 0.005 ms/token); the sequence is in transit for
	// that long before re-queueing at its destination.
	MigrateMSPerToken float64
	// HotLoadFactor marks an instance a migration donor when its
	// outstanding token load exceeds this multiple of the healthy-mean
	// load (default 2).
	HotLoadFactor float64
	// MigrateMinTokens is the minimum remaining decode work worth
	// shipping (default 16): sequences about to finish stay put.
	MigrateMinTokens int

	// PrefixGPUTokens > 0 gives each instance a *tiered* prefix cache:
	// a GPU tier of this capacity backed by PrefixCPUTokens of host
	// memory. Under pressure, cold prefixes are demoted to the CPU tier
	// instead of evicted; CPU hits promote back at
	// PrefixXferMSPerToken fetch cost (default 0.005 ms/token), and the
	// CPU tier survives instance crashes. 0 keeps the legacy unbounded
	// single-tier cache.
	PrefixGPUTokens      int
	PrefixCPUTokens      int
	PrefixXferMSPerToken float64
}

func (rc RecoveryConfig) ckptMSPerToken() float64 {
	if rc.CkptMSPerToken > 0 {
		return rc.CkptMSPerToken
	}
	return 0.002
}

func (rc RecoveryConfig) restoreMSPerToken() float64 {
	if rc.RestoreMSPerToken > 0 {
		return rc.RestoreMSPerToken
	}
	return 0.005
}

func (rc RecoveryConfig) migrateCheckMS() float64 {
	if rc.MigrateCheckMS > 0 {
		return rc.MigrateCheckMS
	}
	return 500
}

func (rc RecoveryConfig) migrateMSPerToken() float64 {
	if rc.MigrateMSPerToken > 0 {
		return rc.MigrateMSPerToken
	}
	return 0.005
}

func (rc RecoveryConfig) hotLoadFactor() float64 {
	if rc.HotLoadFactor > 0 {
		return rc.HotLoadFactor
	}
	return 2
}

func (rc RecoveryConfig) migrateMinTokens() int {
	if rc.MigrateMinTokens > 0 {
		return rc.MigrateMinTokens
	}
	return 16
}

func (rc RecoveryConfig) prefixXferMSPerToken() float64 {
	if rc.PrefixXferMSPerToken > 0 {
		return rc.PrefixXferMSPerToken
	}
	return 0.005
}

// recovery is one routed run's crash-recovery state: the host-side
// checkpoint store (crash-survivable by construction — it lives with
// the router, not on any instance) and the run's recovery accounting.
// Engines are single-threaded, so no locking.
type recovery struct {
	cfg RecoveryConfig
	// ctx maps request ID → context tokens covered by the newest
	// checkpoint (prompt + generated at capture time). Entries are
	// dropped when the request resolves.
	ctx map[string]int

	writes      int // checkpoint captures that covered new tokens
	writeTokens int // context tokens shipped to host memory
	resumes     int // re-admissions that restored from a checkpoint
	// wasted counts context tokens re-prefilled because a crash (or a
	// migration shortfall) lost state an instance had already computed
	// — the recompute tax a recovery policy exists to shrink.
	wasted int
	// recoveryMS samples crash-drop → re-admission latency per dropped
	// sequence: detection delay + routing + queueing + any restore wait.
	recoveryMS metrics.Summary
}

func newRecovery(cfg RecoveryConfig) *recovery {
	return &recovery{cfg: cfg, ctx: make(map[string]int)}
}

// covered reports the context tokens the newest checkpoint of id holds
// (0 when none exists).
func (rc *recovery) covered(id string) int {
	if rc == nil {
		return 0
	}
	return rc.ctx[id]
}

// save records a checkpoint of id at ctx context tokens and returns the
// newly covered delta — the tokens whose transfer the caller must
// charge. A capture that is no further than the stored one is free.
func (rc *recovery) save(id string, ctx int) int {
	prev := rc.ctx[id]
	if ctx <= prev {
		return 0
	}
	rc.ctx[id] = ctx
	rc.writes++
	rc.writeTokens += ctx - prev
	return ctx - prev
}

// drop forgets id's checkpoint — the request resolved (finished or was
// rejected at drain) and its host-side state is reclaimed.
func (rc *recovery) drop(id string) {
	if rc == nil {
		return
	}
	delete(rc.ctx, id)
}
