package serving

import (
	"sort"

	"dataai/internal/obs"
	"dataai/internal/par"
)

// ForcedChoice pins one routing decision to a ranked alternative during
// a counterfactual replay (see ReplayRegret). Decision is the 1-based
// decision sequence number from the recorded run's DecisionLog; Rank is
// the 1-based position in that decision's (score, instance-index)
// order — rank 1 is the instance the live policy picks, so forcing
// rank 1 reproduces the recorded run byte for byte
// (TestReplayRank1Identity pins this). Ranks past the instance count
// clamp to the worst candidate.
type ForcedChoice struct {
	Decision uint64
	Rank     int
}

// ReplayRun runs one deterministic routed simulation: recording
// decisions into dl when non-nil, forcing one decision when force is
// non-nil. ReplayRegret calls it once to record the baseline and once
// per (decision, rank) counterfactual arm; implementations just thread
// the two values into ContinuousOpts (Decisions, Force) and must be
// safe to call concurrently — every call builds its own engine,
// instances, and fault-plan draws from the same seeds, which is exactly
// what the RunRouted* entry points do.
type ReplayRun func(dl *obs.DecisionLog, force *ForcedChoice) (*RoutedReport, error)

// ReplayConfig parameterizes ReplayRegret.
type ReplayConfig struct {
	// MaxRank is the deepest alternative to price: every decision is
	// replayed forced to each rank in [2, MaxRank]. Values below 2
	// default to 2 (the first runner-up only).
	MaxRank int
	// Workers is the worker count for the replay batch (<= 0 means
	// GOMAXPROCS). The regret table is byte-identical at any count:
	// each replay commits to its own slot and aggregation is serial.
	Workers int
	// TTFTSLOms and TBTSLOms define the goodput SLO the regret prices.
	TTFTSLOms, TBTSLOms float64
	// TopN bounds the summary's most-expensive-decisions list
	// (<= 0 means 10).
	TopN int
}

// AltOutcome prices one forced alternative of one decision against the
// recorded run. Positive deltas mean the recorded choice was better.
type AltOutcome struct {
	// Rank is the forced 1-based rank; Instance the instance it maps to.
	Rank     int
	Instance int
	// TTFTDeltaMS = forced-run mean TTFT − recorded-run mean TTFT.
	TTFTDeltaMS float64
	// GoodputDelta = recorded goodput − forced goodput.
	GoodputDelta float64
}

// DecisionRegret is one decision's priced counterfactuals.
type DecisionRegret struct {
	Decision obs.Decision
	// Alts holds one outcome per forced rank, ascending.
	Alts []AltOutcome
	// RegretMS is the worst alternative's TTFTDeltaMS: the mean-TTFT
	// cost the cluster would have paid had this decision gone the most
	// damaging other way — the decision's value. With MaxRank 2 it is
	// simply the first runner-up's delta.
	RegretMS float64
	// BestDeltaMS is the best alternative's TTFTDeltaMS; negative means
	// some alternative would have strictly improved mean TTFT (the
	// decision is improvable).
	BestDeltaMS float64
	// GoodputRegret is the worst alternative's GoodputDelta.
	GoodputRegret float64
}

// RegretSummary aggregates a run's per-decision counterfactual regret.
type RegretSummary struct {
	// Decisions is the recorded decision count; Replays the number of
	// forced re-runs priced (Decisions × (MaxRank-1)).
	Decisions, Replays, MaxRank int
	// TTFTSLOms and TBTSLOms echo the goodput SLO used.
	TTFTSLOms, TBTSLOms float64
	// TotalRegretMS sums the positive per-decision RegretMS values;
	// TotalGoodputRegret the positive GoodputRegret values.
	TotalRegretMS      float64
	TotalGoodputRegret float64
	// RerouteRegretMS is the share of TotalRegretMS carried by
	// "reroute"-kind decisions (crash reroutes).
	RerouteRegretMS float64
	// Improvable counts decisions with a strictly better alternative
	// (BestDeltaMS < 0).
	Improvable int
	// TopShare is the fraction of TotalRegretMS carried by the top 10%
	// (by regret) of decisions — how concentrated the win is.
	TopShare float64
	// Top lists the most expensive decisions, regret-descending (ties
	// to the lowest decision seq), capped at ReplayConfig.TopN.
	Top []DecisionRegret
}

// ReplayRegret prices every routing decision of a deterministic routed
// run by counterfactual replay. It calls run once with a fresh
// DecisionLog to record the baseline, then re-runs the identical
// simulation — same trace, fault plan, and seeds — once per
// (decision, rank ∈ [2, MaxRank]) pair, each replay forcing exactly
// that one decision to that ranked alternative while every other
// decision is re-decided live by the policy. Each forced run is priced
// against the baseline (see AltOutcome), and the per-decision worst
// case becomes the decision's regret: what the recorded choice saved.
//
// The replay batch fans out through par.Map with ordered commits and
// the aggregation is serial in decision order, so the returned summary
// (and any table rendered from it) is byte-identical at every worker
// count. The returned report is the baseline run's, with Regret
// attached.
func ReplayRegret(run ReplayRun, cfg ReplayConfig) (*RoutedReport, error) {
	maxRank := cfg.MaxRank
	if maxRank < 2 {
		maxRank = 2
	}
	topN := cfg.TopN
	if topN <= 0 {
		topN = 10
	}

	dl := obs.NewDecisionLog()
	base, err := run(dl, nil)
	if err != nil {
		return nil, err
	}
	decs := dl.Decisions()
	baseTTFT := base.TTFT.Mean()
	baseGoodput := base.Goodput(cfg.TTFTSLOms, cfg.TBTSLOms)

	ranks := maxRank - 1
	type arm struct {
		out AltOutcome
		err error
	}
	arms := par.Map(len(decs)*ranks, cfg.Workers, func(j int) arm {
		d := decs[j/ranks]
		rank := 2 + j%ranks
		rep, err := run(nil, &ForcedChoice{Decision: d.Seq, Rank: rank})
		if err != nil {
			return arm{err: err}
		}
		order := d.Ranked()
		inst := order[len(order)-1]
		if rank-1 < len(order) {
			inst = order[rank-1]
		}
		return arm{out: AltOutcome{
			Rank:         rank,
			Instance:     inst,
			TTFTDeltaMS:  rep.TTFT.Mean() - baseTTFT,
			GoodputDelta: baseGoodput - rep.Goodput(cfg.TTFTSLOms, cfg.TBTSLOms),
		}}
	})
	for _, a := range arms {
		if a.err != nil {
			return nil, a.err
		}
	}

	sum := &RegretSummary{
		Decisions: len(decs), Replays: len(arms), MaxRank: maxRank,
		TTFTSLOms: cfg.TTFTSLOms, TBTSLOms: cfg.TBTSLOms,
	}
	regrets := make([]DecisionRegret, len(decs))
	for i, d := range decs {
		dr := DecisionRegret{Decision: d, Alts: make([]AltOutcome, ranks)}
		for k := 0; k < ranks; k++ {
			dr.Alts[k] = arms[i*ranks+k].out
		}
		dr.RegretMS = dr.Alts[0].TTFTDeltaMS
		dr.BestDeltaMS = dr.Alts[0].TTFTDeltaMS
		dr.GoodputRegret = dr.Alts[0].GoodputDelta
		for _, a := range dr.Alts[1:] {
			if a.TTFTDeltaMS > dr.RegretMS {
				dr.RegretMS = a.TTFTDeltaMS
			}
			if a.TTFTDeltaMS < dr.BestDeltaMS {
				dr.BestDeltaMS = a.TTFTDeltaMS
			}
			if a.GoodputDelta > dr.GoodputRegret {
				dr.GoodputRegret = a.GoodputDelta
			}
		}
		regrets[i] = dr
		if dr.RegretMS > 0 {
			sum.TotalRegretMS += dr.RegretMS
			if d.Kind == obs.DecisionReroute {
				sum.RerouteRegretMS += dr.RegretMS
			}
		}
		if dr.GoodputRegret > 0 {
			sum.TotalGoodputRegret += dr.GoodputRegret
		}
		if dr.BestDeltaMS < 0 {
			sum.Improvable++
		}
	}

	// Rank decisions by regret (ties to the lowest seq — deterministic)
	// for the concentration measure and the top-N list.
	order := make([]int, len(regrets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := regrets[order[a]].RegretMS, regrets[order[b]].RegretMS
		if ra != rb {
			return ra > rb
		}
		return regrets[order[a]].Decision.Seq < regrets[order[b]].Decision.Seq
	})
	if sum.TotalRegretMS > 0 {
		topCount := (len(regrets) + 9) / 10
		topSum := 0.0
		for _, idx := range order[:topCount] {
			if r := regrets[idx].RegretMS; r > 0 {
				topSum += r
			}
		}
		sum.TopShare = topSum / sum.TotalRegretMS
	}
	if topN > len(order) {
		topN = len(order)
	}
	sum.Top = make([]DecisionRegret, topN)
	for i := 0; i < topN; i++ {
		sum.Top[i] = regrets[order[i]]
	}

	out := *base
	out.Regret = sum
	return &out, nil
}
