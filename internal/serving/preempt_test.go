package serving

import (
	"testing"

	"dataai/internal/workload"
)

// The OnDemand (vLLM-discipline) tests: output lengths unknown, prompt-
// only admission behind a watermark, block-at-a-time growth, and
// all-or-nothing preemption with recompute.

func TestOnDemandServesEverythingUnderPressure(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 256 // tight
	reqs := trace(t, 21, 200, 60)
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 0 {
		t.Errorf("rejected %d requests that fit individually", rep.Rejected)
	}
	if len(rep.Results) != 200 {
		t.Errorf("results = %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Rejected {
			continue
		}
		if r.TTFTms < 0 || r.TBTms < 0 || r.FinishMS < r.Req.ArrivalMS {
			t.Fatalf("inconsistent result for %s: %+v", r.Req.ID, r)
		}
	}
}

func TestOnDemandPreemptsUnderSevereMemoryPressure(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 96 // severe: a few long sequences exhaust it
	cfg := workload.DefaultTrace(22, 120, 80)
	cfg.OutputMax = 1024
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Error("no preemptions under severe pressure")
	}
	// Preempted sequences must still complete with their full output.
	done := 0
	for _, r := range rep.Results {
		if !r.Rejected {
			done++
		}
	}
	if done < 110 {
		t.Errorf("only %d/120 completed", done)
	}
}

func TestOnDemandNoPreemptionsWhenRoomy(t *testing.T) {
	gpu := DefaultGPU() // 2048 blocks: plenty
	reqs := trace(t, 23, 150, 30)
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions != 0 {
		t.Errorf("preempted %d with a roomy cache", rep.Preemptions)
	}
}

func TestOnDemandMatchesOracleWhenRoomy(t *testing.T) {
	// With ample KV, the discipline should not matter.
	gpu := DefaultGPU()
	reqs := trace(t, 24, 150, 30)
	oracle, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	onDemand, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if onDemand.MakespanMS != oracle.MakespanMS {
		t.Errorf("makespans differ with roomy cache: %v vs %v", onDemand.MakespanMS, oracle.MakespanMS)
	}
}

func TestOnDemandBeatsOracleReservationUnderTightMemory(t *testing.T) {
	// The vLLM insight: reserving a sequence's whole footprint up front
	// (even with oracle knowledge) idles memory the sequence won't touch
	// for a while; on-demand growth packs more concurrent sequences.
	gpu := DefaultGPU()
	gpu.KVBlocks = 192
	reqs := trace(t, 25, 200, 60)
	oracle, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	onDemand, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if onDemand.MakespanMS >= oracle.MakespanMS {
		t.Errorf("on-demand makespan %v >= oracle reservation %v", onDemand.MakespanMS, oracle.MakespanMS)
	}
}

func TestOnDemandOversizedRequestRejected(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 8 // 128 tokens total
	reqs := []workload.Request{
		{ID: "big", ArrivalMS: 0, PromptTokens: 100, OutputTokens: 200},
	}
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 {
		t.Errorf("oversized request not rejected: %+v", rep.Results)
	}
}

func TestOnDemandDeterministic(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 128
	reqs := trace(t, 26, 150, 70)
	a, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanMS != b.MakespanMS || a.Preemptions != b.Preemptions {
		t.Error("on-demand simulation not deterministic")
	}
}

func TestPreemptedSequenceKeepsFirstTokenTime(t *testing.T) {
	// TTFT reflects the first emission; preemption later must not reset
	// it (the user already saw the token).
	gpu := DefaultGPU()
	gpu.KVBlocks = 96
	cfg := workload.DefaultTrace(27, 100, 80)
	cfg.OutputMax = 1024
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunContinuous(gpu, reqs, ContinuousOpts{OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Skip("no preemptions at this seed")
	}
	for _, r := range rep.Results {
		if !r.Rejected && r.TTFTms > r.FinishMS-r.Req.ArrivalMS {
			t.Fatalf("TTFT %v after finish for %s", r.TTFTms, r.Req.ID)
		}
	}
}
