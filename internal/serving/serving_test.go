package serving

import (
	"errors"
	"fmt"
	"testing"

	"dataai/internal/workload"
)

func trace(t testing.TB, seed int64, n int, rate float64) []workload.Request {
	t.Helper()
	reqs, err := workload.Generate(workload.DefaultTrace(seed, n, rate))
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestGPUConfigValidate(t *testing.T) {
	if err := (GPUConfig{}).Validate(); !errors.Is(err, ErrConfig) {
		t.Errorf("zero config err = %v", err)
	}
	if err := DefaultGPU().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func checkSane(t *testing.T, rep *Report, total int) {
	t.Helper()
	if len(rep.Results) != total {
		t.Fatalf("results = %d, want %d", len(rep.Results), total)
	}
	for _, r := range rep.Results {
		if r.Rejected {
			continue
		}
		if r.TTFTms < 0 {
			t.Fatalf("negative TTFT for %s: %v", r.Req.ID, r.TTFTms)
		}
		if r.TBTms < 0 {
			t.Fatalf("negative TBT for %s", r.Req.ID)
		}
		if r.FinishMS < r.Req.ArrivalMS {
			t.Fatalf("%s finished before arrival", r.Req.ID)
		}
	}
	if rep.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunStaticBasics(t *testing.T) {
	reqs := trace(t, 1, 100, 20)
	rep, err := RunStatic(DefaultGPU(), reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkSane(t, rep, 100)
	if rep.PeakKVBlocks == 0 {
		t.Error("no KV usage recorded")
	}
}

func TestRunStaticValidation(t *testing.T) {
	if _, err := RunStatic(DefaultGPU(), nil, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestRunContinuousBasics(t *testing.T) {
	reqs := trace(t, 2, 100, 20)
	rep, err := RunContinuous(DefaultGPU(), reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	checkSane(t, rep, 100)
	if rep.Rejected != 0 {
		t.Errorf("rejected = %d", rep.Rejected)
	}
}

func TestContinuousBeatsStaticThroughput(t *testing.T) {
	// E11's first claim (Orca): continuous batching improves throughput
	// and completion latency over static batching.
	gpu := DefaultGPU()
	reqs := trace(t, 3, 300, 40)
	static, err := RunStatic(gpu, reqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if cont.Throughput() <= static.Throughput() {
		t.Errorf("continuous throughput %v <= static %v", cont.Throughput(), static.Throughput())
	}
	if cont.MakespanMS >= static.MakespanMS {
		t.Errorf("continuous makespan %v >= static %v", cont.MakespanMS, static.MakespanMS)
	}
}

func TestChunkedPrefillImprovesTBT(t *testing.T) {
	// E11's second claim (Sarathi): batching a prefill with decode stalls
	// the decodes; chunking the prefill tames the TBT tail at a small
	// TTFT cost.
	gpu := DefaultGPU()
	reqs := trace(t, 4, 300, 40)
	plain, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := RunContinuous(gpu, reqs, ContinuousOpts{ChunkTokens: 128})
	if err != nil {
		t.Fatal(err)
	}
	if chunked.TBT.P95() >= plain.TBT.P95() {
		t.Errorf("chunked P95 TBT %v >= plain %v", chunked.TBT.P95(), plain.TBT.P95())
	}
}

func TestPagedAdmitsMoreThanContiguous(t *testing.T) {
	// E13 (vLLM): preallocation wastes memory; paging raises achievable
	// concurrency for short sequences.
	gpu := DefaultGPU()
	cont := MaxConcurrent(NewContiguousKV(gpu), 256, 64)
	paged := MaxConcurrent(NewPagedKV(gpu), 256, 64)
	if paged <= cont {
		t.Errorf("paged concurrency %d <= contiguous %d", paged, cont)
	}
	if cont != gpu.KVBlocks/((gpu.MaxSeqLen+gpu.BlockSize-1)/gpu.BlockSize) {
		t.Errorf("contiguous concurrency %d formula mismatch", cont)
	}
}

func TestPagedThroughputBeatsContiguous(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 512 // tight cache so the allocator is the bottleneck
	reqs := trace(t, 5, 200, 50)
	contig, err := RunContinuous(gpu, reqs, ContinuousOpts{KV: NewContiguousKV(gpu)})
	if err != nil {
		t.Fatal(err)
	}
	paged, err := RunContinuous(gpu, reqs, ContinuousOpts{KV: NewPagedKV(gpu)})
	if err != nil {
		t.Fatal(err)
	}
	if paged.MakespanMS >= contig.MakespanMS {
		t.Errorf("paged makespan %v >= contiguous %v", paged.MakespanMS, contig.MakespanMS)
	}
}

func TestKVManagerAccounting(t *testing.T) {
	gpu := DefaultGPU()
	for _, m := range []KVManager{NewContiguousKV(gpu), NewPagedKV(gpu)} {
		if !m.Alloc("a", 100) {
			t.Fatalf("%s: first alloc failed", m.Name())
		}
		if m.Alloc("a", 100) {
			t.Fatalf("%s: duplicate alloc allowed", m.Name())
		}
		used := m.UsedBlocks()
		if used <= 0 || used > m.Capacity() {
			t.Fatalf("%s: used %d", m.Name(), used)
		}
		if !m.Extend("a", 200) {
			t.Fatalf("%s: extend failed", m.Name())
		}
		m.Free("a")
		if m.UsedBlocks() != 0 {
			t.Fatalf("%s: leak after free", m.Name())
		}
		if m.PeakBlocks() < used {
			t.Fatalf("%s: peak below used", m.Name())
		}
		if m.Alloc("big", gpu.MaxSeqLen+1) {
			t.Fatalf("%s: oversized alloc allowed", m.Name())
		}
	}
}

func TestPagedKVExactBlocks(t *testing.T) {
	gpu := DefaultGPU() // BlockSize 16
	p := NewPagedKV(gpu)
	p.Alloc("a", 17) // 2 blocks
	if p.UsedBlocks() != 2 {
		t.Errorf("used = %d, want 2", p.UsedBlocks())
	}
	p.Extend("a", 32) // still 2 blocks
	if p.UsedBlocks() != 2 {
		t.Errorf("used after extend = %d, want 2", p.UsedBlocks())
	}
	p.Extend("a", 33) // 3 blocks
	if p.UsedBlocks() != 3 {
		t.Errorf("used after extend = %d, want 3", p.UsedBlocks())
	}
}

func TestPagedKVExhaustion(t *testing.T) {
	gpu := DefaultGPU()
	gpu.KVBlocks = 4
	p := NewPagedKV(gpu)
	if !p.Alloc("a", 64) { // 4 blocks
		t.Fatal("alloc failed")
	}
	if p.Alloc("b", 1) {
		t.Error("alloc beyond capacity allowed")
	}
	if p.Extend("a", 65) {
		t.Error("extend beyond capacity allowed")
	}
}

func TestPrefixCacheCutsTTFT(t *testing.T) {
	// E13 (Prompt Cache / TensorRT-LLM): reusing shared-prefix KV skips
	// recomputation and cuts TTFT.
	gpu := DefaultGPU()
	cfg := workload.DefaultTrace(6, 200, 25)
	cfg.SharedPrefixes = 2
	cfg.SharedPrefixTokens = 512
	cfg.SharedPrefixProb = 0.8
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPrefixCache()
	cached, err := RunContinuous(gpu, reqs, ContinuousOpts{Prefix: pc})
	if err != nil {
		t.Fatal(err)
	}
	if cached.TTFT.Mean() >= plain.TTFT.Mean() {
		t.Errorf("prefix-cached mean TTFT %v >= plain %v", cached.TTFT.Mean(), plain.TTFT.Mean())
	}
	if cached.PrefillTokens >= plain.PrefillTokens {
		t.Errorf("prefix cache saved no prefill: %d vs %d", cached.PrefillTokens, plain.PrefillTokens)
	}
	hits, misses := pc.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("prefix cache stats %d/%d", hits, misses)
	}
}

func TestDisaggregatedImprovesTBTUnderLoad(t *testing.T) {
	// E12 (DistServe/Splitwise): same GPU budget, decodes isolated from
	// prefill interference.
	// The DistServe regime is *high load*: under light load prefill
	// interference is rare and the architectures tie; as load grows,
	// colocated decodes stall behind prefills and goodput separates.
	gpu := DefaultGPU()
	reqs := trace(t, 7, 400, 100)
	colo, err := RunColocated(gpu, reqs, 4, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	disagg, err := RunDisaggregated(gpu, reqs, DisaggOpts{
		PrefillGPUs: 2, DecodeGPUs: 2, TransferMSPerToken: 0.005, OverlapTransfer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if disagg.TBT.P95() >= colo.TBT.P95() {
		t.Errorf("disaggregated P95 TBT %v >= colocated %v", disagg.TBT.P95(), colo.TBT.P95())
	}
	// Goodput under joint SLOs should favor disaggregation at high load.
	gColo := colo.Goodput(1000, 12)
	gDisagg := disagg.Goodput(1000, 12)
	if gDisagg <= gColo {
		t.Errorf("disaggregated goodput %v <= colocated %v", gDisagg, gColo)
	}
}

func TestDisaggValidation(t *testing.T) {
	if _, err := RunDisaggregated(DefaultGPU(), nil, DisaggOpts{}); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunColocated(DefaultGPU(), nil, 0, ContinuousOpts{}); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestTransferCostMattersWithoutOverlap(t *testing.T) {
	gpu := DefaultGPU()
	reqs := trace(t, 8, 150, 30)
	overlapped, err := RunDisaggregated(gpu, reqs, DisaggOpts{
		PrefillGPUs: 1, DecodeGPUs: 1, TransferMSPerToken: 0.05, OverlapTransfer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunDisaggregated(gpu, reqs, DisaggOpts{
		PrefillGPUs: 1, DecodeGPUs: 1, TransferMSPerToken: 0.05, OverlapTransfer: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.TBT.Mean() <= overlapped.TBT.Mean() {
		t.Errorf("blocking transfer TBT %v <= overlapped %v", blocking.TBT.Mean(), overlapped.TBT.Mean())
	}
}

func TestSessionStoreHitsCutPrefill(t *testing.T) {
	// E14: a conversation cache turns history re-prefill into reuse.
	gpu := DefaultGPU()
	reqs, err := workload.GenerateConversations(workload.DefaultConversations(9))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunContinuous(gpu, reqs, ContinuousOpts{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewSessionStore(SessionStoreConfig{
		GPUCapacityTokens:  1 << 20, // effectively unbounded
		Policy:             LRU,
		PrefillTokensPerMS: gpu.PrefillTokensPerMS,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunContinuous(gpu, reqs, ContinuousOpts{SessionCache: store})
	if err != nil {
		t.Fatal(err)
	}
	if cached.PrefillTokens >= plain.PrefillTokens {
		t.Errorf("session cache saved nothing: %d vs %d", cached.PrefillTokens, plain.PrefillTokens)
	}
	if store.HitRate() <= 0.3 {
		t.Errorf("hit rate %v too low", store.HitRate())
	}
	if cached.TTFT.Mean() >= plain.TTFT.Mean() {
		t.Errorf("cached mean TTFT %v >= plain %v", cached.TTFT.Mean(), plain.TTFT.Mean())
	}
}

func TestEvictionPolicyHitRates(t *testing.T) {
	reqs, err := workload.GenerateConversations(workload.DefaultConversations(10))
	if err != nil {
		t.Fatal(err)
	}
	gpu := DefaultGPU()
	rates := map[EvictionPolicy]float64{}
	for _, pol := range []EvictionPolicy{LRU, LFU, TreeLRU} {
		store, err := NewSessionStore(SessionStoreConfig{
			GPUCapacityTokens:  2000, // tight: forces eviction pressure
			Policy:             pol,
			PrefillTokensPerMS: gpu.PrefillTokensPerMS,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunContinuous(gpu, reqs, ContinuousOpts{SessionCache: store}); err != nil {
			t.Fatal(err)
		}
		rates[pol] = store.HitRate()
		if store.Evictions == 0 {
			t.Errorf("%s: no evictions under pressure", pol)
		}
	}
	for pol, r := range rates {
		if r <= 0 || r >= 1 {
			t.Errorf("%s hit rate %v out of range", pol, r)
		}
	}
}

func TestHierarchicalStoreBeatsSingleTier(t *testing.T) {
	// AttentionStore claim: a host-memory tier retains what the GPU tier
	// evicts; overlapped transmission keeps the fetch cheap.
	reqs, err := workload.GenerateConversations(workload.DefaultConversations(11))
	if err != nil {
		t.Fatal(err)
	}
	gpu := DefaultGPU()
	run := func(cpuTokens int, overlap bool) (*SessionStore, *Report) {
		store, err := NewSessionStore(SessionStoreConfig{
			GPUCapacityTokens:  2000,
			CPUCapacityTokens:  cpuTokens,
			Policy:             LRU,
			TransferMSPerToken: 0.02,
			OverlapTransfer:    overlap,
			PrefillTokensPerMS: gpu.PrefillTokensPerMS,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunContinuous(gpu, reqs, ContinuousOpts{SessionCache: store})
		if err != nil {
			t.Fatal(err)
		}
		return store, rep
	}
	single, _ := run(0, false)
	tiered, _ := run(1<<20, true)
	if tiered.SavedTokens <= single.SavedTokens {
		t.Errorf("tiered saved %d <= single %d", tiered.SavedTokens, single.SavedTokens)
	}
	if tiered.Demotions == 0 {
		t.Error("no demotions to CPU tier")
	}
	// Overlap beats blocking transfer on net savings.
	blocked, _ := run(1<<20, false)
	if tiered.SavedTokens < blocked.SavedTokens {
		t.Errorf("overlapped saved %d < blocking %d", tiered.SavedTokens, blocked.SavedTokens)
	}
}

func TestSessionStoreValidation(t *testing.T) {
	if _, err := NewSessionStore(SessionStoreConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeCostKVSpeedup(t *testing.T) {
	// E15: KV caching avoids recomputing K/V per step; the speedup grows
	// with generation length.
	m := DefaultDecodeCost()
	s64, err := m.Speedup(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	s256, err := m.Speedup(256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if s64 <= 1 {
		t.Errorf("speedup %v <= 1", s64)
	}
	if s256 <= s64 {
		t.Errorf("speedup should grow with length: %v vs %v", s256, s64)
	}
	if _, err := m.GenerateLatencyMS(-1, 5, true); err == nil {
		t.Error("negative prompt accepted")
	}
	if _, err := m.GenerateLatencyMS(5, 0, true); err == nil {
		t.Error("zero output accepted")
	}
}

func TestGoodputAndSummaries(t *testing.T) {
	rep := buildReport([]Result{
		{Req: workload.Request{ID: "a", OutputTokens: 10}, TTFTms: 50, TBTms: 5, FinishMS: 100},
		{Req: workload.Request{ID: "b", OutputTokens: 10}, TTFTms: 500, TBTms: 50, FinishMS: 600},
		{Req: workload.Request{ID: "c"}, Rejected: true},
	})
	if g := rep.Goodput(100, 10); g != 1.0/3 {
		t.Errorf("goodput = %v, want 1/3", g)
	}
	if rep.Rejected != 1 {
		t.Errorf("rejected = %d", rep.Rejected)
	}
	var empty Report
	if empty.Goodput(1, 1) != 0 || empty.Throughput() != 0 {
		t.Error("empty report not zeroed")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	gpu := DefaultGPU()
	reqs := trace(t, 12, 150, 30)
	a, err := RunContinuous(gpu, reqs, ContinuousOpts{ChunkTokens: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContinuous(gpu, reqs, ContinuousOpts{ChunkTokens: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanMS != b.MakespanMS || a.TTFT.Mean() != b.TTFT.Mean() {
		t.Error("simulation not deterministic")
	}
}

func BenchmarkRunContinuous(b *testing.B) {
	gpu := DefaultGPU()
	reqs := trace(b, 1, 500, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunContinuous(gpu, reqs, ContinuousOpts{ChunkTokens: 128}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunDisaggregated(b *testing.B) {
	gpu := DefaultGPU()
	reqs := trace(b, 1, 500, 50)
	opts := DisaggOpts{PrefillGPUs: 2, DecodeGPUs: 2, TransferMSPerToken: 0.005, OverlapTransfer: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunDisaggregated(gpu, reqs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleReport_Goodput() {
	rep := buildReport([]Result{
		{Req: workload.Request{ID: "a", OutputTokens: 8}, TTFTms: 80, TBTms: 8, FinishMS: 150},
		{Req: workload.Request{ID: "b", OutputTokens: 8}, TTFTms: 900, TBTms: 9, FinishMS: 1000},
	})
	fmt.Printf("%.1f\n", rep.Goodput(200, 10))
	// Output: 0.5
}
