package serving

import (
	"fmt"
)

// KVManager tracks KV cache block allocation for in-flight sequences.
// Implementations differ in *how much* they reserve — the E13 subject.
type KVManager interface {
	// Alloc reserves space for a new sequence currently holding tokens.
	// It reports false when the reservation does not fit.
	Alloc(id string, tokens int) bool
	// Extend grows the sequence to newTotal tokens, reporting false on
	// exhaustion (paged) — contiguous never fails within MaxSeqLen.
	Extend(id string, newTotal int) bool
	// Free releases the sequence.
	Free(id string)
	// UsedBlocks and PeakBlocks report current and high-water occupancy.
	UsedBlocks() int
	PeakBlocks() int
	// Capacity is the total block count.
	Capacity() int
	// Name identifies the manager in experiment tables.
	Name() string
}

// ContiguousKV models the pre-vLLM allocator: every admitted sequence
// reserves blocks for the maximum sequence length up front, "wasting a
// significant amount of memory for shorter inputs".
type ContiguousKV struct {
	cfg        GPUConfig
	perSeq     int
	used, peak int
	owners     map[string]bool
}

// NewContiguousKV builds the preallocating manager.
func NewContiguousKV(cfg GPUConfig) *ContiguousKV {
	perSeq := (cfg.MaxSeqLen + cfg.BlockSize - 1) / cfg.BlockSize
	return &ContiguousKV{cfg: cfg, perSeq: perSeq, owners: make(map[string]bool)}
}

// Name implements KVManager.
func (c *ContiguousKV) Name() string { return "contiguous" }

// Alloc implements KVManager.
func (c *ContiguousKV) Alloc(id string, tokens int) bool {
	if c.owners[id] || tokens > c.cfg.MaxSeqLen {
		return false
	}
	if c.used+c.perSeq > c.cfg.KVBlocks {
		return false
	}
	c.owners[id] = true
	c.used += c.perSeq
	if c.used > c.peak {
		c.peak = c.used
	}
	return true
}

// Extend implements KVManager: preallocation means growth is free.
func (c *ContiguousKV) Extend(id string, newTotal int) bool {
	return c.owners[id] && newTotal <= c.cfg.MaxSeqLen
}

// Free implements KVManager.
func (c *ContiguousKV) Free(id string) {
	if c.owners[id] {
		delete(c.owners, id)
		c.used -= c.perSeq
	}
}

// UsedBlocks implements KVManager.
func (c *ContiguousKV) UsedBlocks() int { return c.used }

// PeakBlocks implements KVManager.
func (c *ContiguousKV) PeakBlocks() int { return c.peak }

// Capacity implements KVManager.
func (c *ContiguousKV) Capacity() int { return c.cfg.KVBlocks }

// PagedKV models vLLM's block allocator [28]: sequences hold exactly the
// blocks their current length needs, growing one block at a time.
type PagedKV struct {
	cfg        GPUConfig
	used, peak int
	seqs       map[string]int // id -> blocks held
}

// NewPagedKV builds the paged manager.
func NewPagedKV(cfg GPUConfig) *PagedKV {
	return &PagedKV{cfg: cfg, seqs: make(map[string]int)}
}

// Name implements KVManager.
func (p *PagedKV) Name() string { return "paged" }

func (p *PagedKV) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + p.cfg.BlockSize - 1) / p.cfg.BlockSize
}

// Alloc implements KVManager.
func (p *PagedKV) Alloc(id string, tokens int) bool {
	if _, ok := p.seqs[id]; ok || tokens > p.cfg.MaxSeqLen {
		return false
	}
	need := p.blocksFor(tokens)
	if p.used+need > p.cfg.KVBlocks {
		return false
	}
	p.seqs[id] = need
	p.used += need
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// Extend implements KVManager.
func (p *PagedKV) Extend(id string, newTotal int) bool {
	have, ok := p.seqs[id]
	if !ok || newTotal > p.cfg.MaxSeqLen {
		return false
	}
	need := p.blocksFor(newTotal)
	if need <= have {
		return true
	}
	delta := need - have
	if p.used+delta > p.cfg.KVBlocks {
		return false
	}
	p.seqs[id] = need
	p.used += delta
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// Free implements KVManager.
func (p *PagedKV) Free(id string) {
	if n, ok := p.seqs[id]; ok {
		delete(p.seqs, id)
		p.used -= n
	}
}

// UsedBlocks implements KVManager.
func (p *PagedKV) UsedBlocks() int { return p.used }

// PeakBlocks implements KVManager.
func (p *PagedKV) PeakBlocks() int { return p.peak }

// Capacity implements KVManager.
func (p *PagedKV) Capacity() int { return p.cfg.KVBlocks }

// PrefixCache tracks shared prompt prefixes whose KV is resident and
// reusable across requests — Prompt Cache [22] / vLLM shared prefix /
// TensorRT-LLM KV reuse [3]. A prefix is warmed by the first request
// that computes it; later requests skip prefilling those tokens.
type PrefixCache struct {
	// tokensByPrefix maps prefix id -> cached token count.
	tokensByPrefix map[string]int
	hits, misses   int
}

// NewPrefixCache returns an empty cache.
func NewPrefixCache() *PrefixCache {
	return &PrefixCache{tokensByPrefix: make(map[string]int)}
}

// SavedTokens reports how many prompt tokens of r can be skipped, and
// warms the cache with r's prefix when it misses.
func (pc *PrefixCache) SavedTokens(prefixID string, prefixTokens int) int {
	if pc == nil || prefixID == "" || prefixTokens <= 0 {
		return 0
	}
	if cached, ok := pc.tokensByPrefix[prefixID]; ok {
		pc.hits++
		if cached < prefixTokens {
			return cached
		}
		return prefixTokens
	}
	pc.misses++
	pc.tokensByPrefix[prefixID] = prefixTokens
	return 0
}

// Stats reports hit/miss counts.
func (pc *PrefixCache) Stats() (hits, misses int) {
	return pc.hits, pc.misses
}

// Invalidate forgets every cached prefix — an instance crash takes its
// GPU-resident prefix KV with it. Hit/miss counters survive: they count
// lookups, not residency.
func (pc *PrefixCache) Invalidate() {
	if pc == nil {
		return
	}
	pc.tokensByPrefix = make(map[string]int)
}

// MaxConcurrent reports how many sequences of the given prompt+output
// length the manager could hold at once — the E13 concurrency headroom
// comparison.
func MaxConcurrent(m KVManager, promptTokens, outputTokens int) int {
	n := 0
	for {
		id := fmt.Sprintf("probe-%d", n)
		if !m.Alloc(id, promptTokens+outputTokens) {
			break
		}
		n++
	}
	for i := 0; i < n; i++ {
		m.Free(fmt.Sprintf("probe-%d", i))
	}
	return n
}
