package serving

import (
	"fmt"
)

// KVManager tracks KV cache block allocation for in-flight sequences.
// Implementations differ in *how much* they reserve — the E13 subject.
type KVManager interface {
	// Alloc reserves space for a new sequence currently holding tokens.
	// It reports false when the reservation does not fit.
	Alloc(id string, tokens int) bool
	// Extend grows the sequence to newTotal tokens, reporting false on
	// exhaustion (paged) — contiguous never fails within MaxSeqLen.
	Extend(id string, newTotal int) bool
	// Free releases the sequence.
	Free(id string)
	// UsedBlocks and PeakBlocks report current and high-water occupancy.
	UsedBlocks() int
	PeakBlocks() int
	// Capacity is the total block count.
	Capacity() int
	// Name identifies the manager in experiment tables.
	Name() string
}

// ContiguousKV models the pre-vLLM allocator: every admitted sequence
// reserves blocks for the maximum sequence length up front, "wasting a
// significant amount of memory for shorter inputs".
type ContiguousKV struct {
	cfg        GPUConfig
	perSeq     int
	used, peak int
	owners     map[string]bool
}

// NewContiguousKV builds the preallocating manager.
func NewContiguousKV(cfg GPUConfig) *ContiguousKV {
	perSeq := (cfg.MaxSeqLen + cfg.BlockSize - 1) / cfg.BlockSize
	return &ContiguousKV{cfg: cfg, perSeq: perSeq, owners: make(map[string]bool)}
}

// Name implements KVManager.
func (c *ContiguousKV) Name() string { return "contiguous" }

// Alloc implements KVManager.
func (c *ContiguousKV) Alloc(id string, tokens int) bool {
	if c.owners[id] || tokens > c.cfg.MaxSeqLen {
		return false
	}
	if c.used+c.perSeq > c.cfg.KVBlocks {
		return false
	}
	c.owners[id] = true
	c.used += c.perSeq
	if c.used > c.peak {
		c.peak = c.used
	}
	return true
}

// Extend implements KVManager: preallocation means growth is free.
func (c *ContiguousKV) Extend(id string, newTotal int) bool {
	return c.owners[id] && newTotal <= c.cfg.MaxSeqLen
}

// Free implements KVManager.
func (c *ContiguousKV) Free(id string) {
	if c.owners[id] {
		delete(c.owners, id)
		c.used -= c.perSeq
	}
}

// UsedBlocks implements KVManager.
func (c *ContiguousKV) UsedBlocks() int { return c.used }

// PeakBlocks implements KVManager.
func (c *ContiguousKV) PeakBlocks() int { return c.peak }

// Capacity implements KVManager.
func (c *ContiguousKV) Capacity() int { return c.cfg.KVBlocks }

// PagedKV models vLLM's block allocator [28]: sequences hold exactly the
// blocks their current length needs, growing one block at a time.
type PagedKV struct {
	cfg        GPUConfig
	used, peak int
	seqs       map[string]int // id -> blocks held
}

// NewPagedKV builds the paged manager.
func NewPagedKV(cfg GPUConfig) *PagedKV {
	return &PagedKV{cfg: cfg, seqs: make(map[string]int)}
}

// Name implements KVManager.
func (p *PagedKV) Name() string { return "paged" }

func (p *PagedKV) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + p.cfg.BlockSize - 1) / p.cfg.BlockSize
}

// Alloc implements KVManager.
func (p *PagedKV) Alloc(id string, tokens int) bool {
	if _, ok := p.seqs[id]; ok || tokens > p.cfg.MaxSeqLen {
		return false
	}
	need := p.blocksFor(tokens)
	if p.used+need > p.cfg.KVBlocks {
		return false
	}
	p.seqs[id] = need
	p.used += need
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// Extend implements KVManager.
func (p *PagedKV) Extend(id string, newTotal int) bool {
	have, ok := p.seqs[id]
	if !ok || newTotal > p.cfg.MaxSeqLen {
		return false
	}
	need := p.blocksFor(newTotal)
	if need <= have {
		return true
	}
	delta := need - have
	if p.used+delta > p.cfg.KVBlocks {
		return false
	}
	p.seqs[id] = need
	p.used += delta
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// Free implements KVManager.
func (p *PagedKV) Free(id string) {
	if n, ok := p.seqs[id]; ok {
		delete(p.seqs, id)
		p.used -= n
	}
}

// UsedBlocks implements KVManager.
func (p *PagedKV) UsedBlocks() int { return p.used }

// PeakBlocks implements KVManager.
func (p *PagedKV) PeakBlocks() int { return p.peak }

// Capacity implements KVManager.
func (p *PagedKV) Capacity() int { return p.cfg.KVBlocks }

// prefixEntry is one cached prefix: its token span and a logical
// recency stamp (the cache's lookup counter at last touch — never wall
// time, so eviction order is a pure function of the lookup sequence).
type prefixEntry struct {
	tokens int
	use    uint64
}

// PrefixCacheConfig sizes a two-tier prefix cache. The zero value means
// unbounded single-tier — the legacy behavior of NewPrefixCache.
type PrefixCacheConfig struct {
	// GPUCapacityTokens bounds the device-resident tier (0 = unbounded).
	GPUCapacityTokens int
	// CPUCapacityTokens sizes the host tier that cold prefixes demote
	// into instead of being evicted (0 = no host tier: demotion drops).
	CPUCapacityTokens int
	// TransferMSPerToken is the CPU→GPU fetch cost charged when a
	// host-tier hit promotes back to the device.
	TransferMSPerToken float64
	// PrefillTokensPerMS converts residual fetch time into prefill-token
	// equivalents, mirroring SessionStore's transfer pricing.
	PrefillTokensPerMS float64
}

// PrefixCache tracks shared prompt prefixes whose KV is resident and
// reusable across requests — Prompt Cache [22] / vLLM shared prefix /
// TensorRT-LLM KV reuse [3]. A prefix is warmed by the first request
// that computes it; later requests skip prefilling those tokens.
//
// With a PrefixCacheConfig the cache is two-tier: when the GPU tier
// overflows, the coldest prefix is *demoted* to a CPU tier rather than
// forgotten, a CPU hit promotes it back at a bandwidth-charged transfer
// cost (netted against the saved prefill, like SessionStore), and the
// CPU tier survives Invalidate — host memory outlives the crash that
// wiped the device.
type PrefixCache struct {
	cfg              PrefixCacheConfig
	gpu              map[string]*prefixEntry
	cpu              map[string]*prefixEntry
	gpuUsed, cpuUsed int // resident tokens per tier
	clock            uint64
	hits, misses     int
	cpuHits          int // hits served from the host tier (promotions)
	demotions        int // prefixes pushed off the GPU tier by pressure
}

// NewPrefixCache returns an empty unbounded single-tier cache.
func NewPrefixCache() *PrefixCache {
	return NewTieredPrefixCache(PrefixCacheConfig{})
}

// NewTieredPrefixCache returns an empty cache with the given tier
// geometry.
func NewTieredPrefixCache(cfg PrefixCacheConfig) *PrefixCache {
	return &PrefixCache{
		cfg: cfg,
		gpu: make(map[string]*prefixEntry),
		cpu: make(map[string]*prefixEntry),
	}
}

// SavedTokens reports how many prompt tokens of r can be skipped (net
// of any promotion transfer), and warms the cache with r's prefix when
// it misses.
func (pc *PrefixCache) SavedTokens(prefixID string, prefixTokens int) int {
	if pc == nil || prefixID == "" || prefixTokens <= 0 {
		return 0
	}
	pc.clock++
	if e, ok := pc.gpu[prefixID]; ok {
		pc.hits++
		e.use = pc.clock
		if e.tokens < prefixTokens {
			return e.tokens
		}
		return prefixTokens
	}
	if e, ok := pc.cpu[prefixID]; ok {
		// Host-tier hit: promote back to the device, netting the fetch
		// cost (in prefill-token equivalents) against the saved span.
		pc.hits++
		pc.cpuHits++
		e.use = pc.clock
		usable := min(e.tokens, prefixTokens)
		delete(pc.cpu, prefixID)
		pc.cpuUsed -= e.tokens
		pc.insertGPU(prefixID, e)
		saved := usable - int(float64(usable)*pc.cfg.TransferMSPerToken*pc.cfg.PrefillTokensPerMS)
		if saved < 0 {
			saved = 0
		}
		return saved
	}
	pc.misses++
	pc.insertGPU(prefixID, &prefixEntry{tokens: prefixTokens, use: pc.clock})
	return 0
}

// insertGPU places e on the device tier, demoting the coldest residents
// until it fits. An entry larger than the whole tier is uncacheable.
func (pc *PrefixCache) insertGPU(id string, e *prefixEntry) {
	limit := pc.cfg.GPUCapacityTokens
	if limit > 0 && e.tokens > limit {
		return
	}
	pc.gpu[id] = e
	pc.gpuUsed += e.tokens
	if limit <= 0 {
		return
	}
	for pc.gpuUsed > limit {
		v := coldestPrefix(pc.gpu)
		if v == "" {
			return
		}
		pc.demote(v)
	}
}

// demote moves a prefix off the GPU tier: into the host tier when one
// is configured (evicting its own coldest entries to fit), gone
// otherwise.
func (pc *PrefixCache) demote(id string) {
	e := pc.gpu[id]
	delete(pc.gpu, id)
	pc.gpuUsed -= e.tokens
	pc.demotions++
	if pc.cfg.CPUCapacityTokens <= 0 || e.tokens > pc.cfg.CPUCapacityTokens {
		return
	}
	pc.cpu[id] = e
	pc.cpuUsed += e.tokens
	for pc.cpuUsed > pc.cfg.CPUCapacityTokens {
		v := coldestPrefix(pc.cpu)
		ev := pc.cpu[v]
		delete(pc.cpu, v)
		pc.cpuUsed -= ev.tokens
	}
}

// coldestPrefix picks the eviction victim: minimum recency stamp,
// smallest id on ties — a deterministic choice however the map
// iterates. Recency stamps are unique (one lookup, one stamp), so the
// tie-break is belt and braces.
func coldestPrefix(m map[string]*prefixEntry) string {
	vid := ""
	var best uint64
	for id, e := range m {
		if vid == "" || e.use < best || (e.use == best && id < vid) {
			vid, best = id, e.use
		}
	}
	return vid
}

// Stats reports hit/miss counts (host-tier hits included in hits).
func (pc *PrefixCache) Stats() (hits, misses int) {
	return pc.hits, pc.misses
}

// TierStats reports the two-tier traffic: hits served from the host
// tier and prefixes demoted off the device tier. Both are zero for an
// unbounded single-tier cache.
func (pc *PrefixCache) TierStats() (cpuHits, demotions int) {
	return pc.cpuHits, pc.demotions
}

// Invalidate forgets every GPU-resident prefix — an instance crash
// takes the device KV with it. The CPU tier survives: host memory
// outlives the GPU, which is exactly why demotion beats eviction under
// a fault plan. Hit/miss counters survive too: they count lookups, not
// residency.
func (pc *PrefixCache) Invalidate() {
	if pc == nil {
		return
	}
	pc.gpu = make(map[string]*prefixEntry)
	pc.gpuUsed = 0
}

// MaxConcurrent reports how many sequences of the given prompt+output
// length the manager could hold at once — the E13 concurrency headroom
// comparison.
func MaxConcurrent(m KVManager, promptTokens, outputTokens int) int {
	n := 0
	for {
		id := fmt.Sprintf("probe-%d", n)
		if !m.Alloc(id, promptTokens+outputTokens) {
			break
		}
		n++
	}
	for i := 0; i < n; i++ {
		m.Free(fmt.Sprintf("probe-%d", i))
	}
	return n
}
