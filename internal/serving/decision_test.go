package serving

import (
	"fmt"
	"reflect"
	"testing"

	"dataai/internal/obs"
	"dataai/internal/par"
	"dataai/internal/resilient"
	"dataai/internal/sim"
	"dataai/internal/workload"
)

// newBareCluster builds a minimal n-instance cluster for direct route()
// tests: fresh idle instances, closed breakers, no fault plan.
func newBareCluster(policy RouterPolicy, n int) *cluster {
	eng := sim.NewEngine()
	c := &cluster{eng: eng, policy: policy, scores: make([]candScore, n)}
	for i := 0; i < n; i++ {
		c.insts = append(c.insts, newInstance(i, DefaultGPU(), ContinuousOpts{}, eng, &c.pool, func(float64, Result) {}))
		c.breakers = append(c.breakers, resilient.NewBreaker(resilient.BreakerPolicy{FailureThreshold: 2}))
	}
	return c
}

// decisionTrace is a small routed workload with shared prefixes — the
// replay tests force every decision of it, so it stays deliberately
// smaller than prefixTrace.
func decisionTrace(t *testing.T, seed int64, n int) []workload.Request {
	t.Helper()
	cfg := workload.DefaultTrace(seed, n, 60)
	cfg.SharedPrefixes = 8
	cfg.SharedPrefixTokens = 192
	cfg.SharedPrefixProb = 0.6
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestScoredCacheAwareMatchesLeastLoaded(t *testing.T) {
	// The scored CacheAware fallback must agree with the historical
	// direct argmin (leastLoaded) on arbitrary load vectors.
	noAffinity := workload.Request{ID: "r", PromptTokens: 100, OutputTokens: 10}
	loadSets := [][]int{
		{0, 0, 0, 0}, {5, 3, 9, 3}, {7, 7, 7, 7}, {1, 0, 0, 2}, {9, 8, 7, 6},
	}
	for _, loads := range loadSets {
		for exclude := -1; exclude < 4; exclude++ {
			c := newBareCluster(CacheAware, 4)
			for i, l := range loads {
				c.insts[i].load = l
			}
			want := c.leastLoaded(exclude)
			if got := c.route(0, noAffinity, exclude, false); got != want {
				t.Errorf("loads %v exclude %d: scored picked %d, leastLoaded %d",
					loads, exclude, got, want)
			}
		}
	}
}

func TestRankedInstanceOrder(t *testing.T) {
	c := newBareCluster(CacheAware, 4)
	for i, l := range []int{5, 3, 9, 3} {
		c.insts[i].load = l
	}
	r := workload.Request{ID: "r", PromptTokens: 100, OutputTokens: 10}
	c.scoreInstances(0, r, -1)
	// Scores 5,3,9,3 → ranks: 1, 3 (tie to lower index), 0, 2.
	want := []int{1, 3, 0, 2}
	for k := 1; k <= 6; k++ {
		wi := want[len(want)-1] // ranks past n clamp to the worst
		if k <= len(want) {
			wi = want[k-1]
		}
		if got := c.rankedInstance(k); got != wi {
			t.Errorf("rank %d = %d, want %d", k, got, wi)
		}
	}
	if got := c.rankedInstance(0); got != want[0] {
		t.Errorf("rank 0 clamps to 1: got %d, want %d", got, want[0])
	}
}

func TestRouteZeroAllocWhenDecisionsOff(t *testing.T) {
	r := workload.Request{ID: "r", PrefixID: "p1", PromptTokens: 100, OutputTokens: 10}
	for _, policy := range []RouterPolicy{RoundRobin, CacheAware, BreakerAware} {
		c := newBareCluster(policy, 4)
		allocs := testing.AllocsPerRun(200, func() {
			c.route(0, r, -1, false)
		})
		if allocs != 0 {
			t.Errorf("%v: route allocates %.1f/op with decisions off, want 0", policy, allocs)
		}
	}
}

func TestDecisionLogRecordsRoutedRun(t *testing.T) {
	gpu := DefaultGPU()
	reqs := decisionTrace(t, 91, 120)
	dl := obs.NewDecisionLog()
	rep, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Decisions: dl}, SevereFaultPlan(2303))
	if err != nil {
		t.Fatal(err)
	}
	decs := dl.Decisions()
	if len(decs) == 0 {
		t.Fatal("no decisions recorded")
	}
	arrivals, reroutes := 0, 0
	for i, d := range decs {
		if d.Seq != uint64(i+1) {
			t.Fatalf("decision %d has seq %d", i, d.Seq)
		}
		if len(d.Candidates) != 4 {
			t.Fatalf("decision %d has %d candidates", d.Seq, len(d.Candidates))
		}
		// Unforced runs choose the argmin: rank 1 of the recorded vector.
		if want := d.Ranked()[0]; d.Chosen != want {
			t.Errorf("decision %d chose %d, rank-1 is %d", d.Seq, d.Chosen, want)
		}
		switch d.Kind {
		case obs.DecisionArrival:
			arrivals++
		case obs.DecisionReroute:
			reroutes++
			excluded := false
			for _, cand := range d.Candidates {
				if cand.Excluded {
					excluded = true
					if cand.Instance == d.Chosen {
						t.Errorf("decision %d rerouted back onto the excluded instance", d.Seq)
					}
				}
			}
			if !excluded {
				t.Errorf("reroute decision %d marks no excluded candidate", d.Seq)
			}
		default:
			t.Fatalf("decision %d has kind %q", d.Seq, d.Kind)
		}
	}
	served := 0
	for _, res := range rep.Results {
		if !res.Rejected {
			served++
		}
	}
	if arrivals < served {
		t.Errorf("%d arrival decisions < %d served requests", arrivals, served)
	}
	if reroutes != rep.Rerouted {
		t.Errorf("%d reroute decisions, report says %d", reroutes, rep.Rerouted)
	}

	// The identical run records the identical log.
	dl2 := obs.NewDecisionLog()
	if _, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Decisions: dl2}, SevereFaultPlan(2303)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decs, dl2.Decisions()) {
		t.Error("decision log differs across identical runs")
	}
}

func TestTracedDecisionRunPassesCheck(t *testing.T) {
	// With trace + decisions on, the obs invariant checker verifies the
	// decision log against the timeline (and the trace stays valid).
	gpu := DefaultGPU()
	reqs := decisionTrace(t, 91, 120)
	tr := obs.NewTracer()
	dl := obs.NewDecisionLog()
	if _, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Trace: tr, Decisions: dl}, SevereFaultPlan(2303)); err != nil {
		t.Fatal(err)
	}
	if tr.Decisions() != dl {
		t.Fatal("decision log was not attached to the tracer")
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("decision-annotated trace fails invariants: %v", err)
	}
}

func TestReplayRank1Identity(t *testing.T) {
	// Forcing every decision to its own rank-1 (the recorded choice)
	// must reproduce the recorded run exactly — serially and at 8
	// workers — across fault plans. This is the contract that makes
	// rank-k deltas attributable to the forced choice alone.
	gpu := DefaultGPU()
	reqs := decisionTrace(t, 91, 100)
	plans := []struct {
		name string
		plan *FaultPlan
	}{{"medium", MediumFaultPlan(2303)}, {"severe", SevereFaultPlan(2303)}}
	for _, pc := range plans {
		t.Run(pc.name, func(t *testing.T) {
			dl := obs.NewDecisionLog()
			base, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
				ContinuousOpts{ChunkTokens: 256, Decisions: dl}, pc.plan)
			if err != nil {
				t.Fatal(err)
			}
			n := dl.Len()
			if n == 0 {
				t.Fatal("no decisions recorded")
			}
			for _, workers := range []int{1, 8} {
				reps := par.Map(n, workers, func(i int) *RoutedReport {
					rep, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
						ContinuousOpts{ChunkTokens: 256, Force: &ForcedChoice{Decision: uint64(i + 1), Rank: 1}},
						pc.plan)
					if err != nil {
						t.Error(err)
						return nil
					}
					return rep
				})
				for i, rep := range reps {
					if rep == nil {
						t.Fatal("missing forced report")
					}
					if !reflect.DeepEqual(base, rep) {
						t.Fatalf("workers=%d: forcing decision %d to rank 1 changed the run", workers, i+1)
					}
				}
			}
		})
	}
}

func TestForcedAlternativeChangesDelivery(t *testing.T) {
	// Forcing rank 2 must deliver the forced request to the runner-up
	// instance of the recorded decision.
	gpu := DefaultGPU()
	reqs := decisionTrace(t, 91, 100)
	dl := obs.NewDecisionLog()
	base, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Decisions: dl}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := dl.At(1)
	if !ok || d.Kind != obs.DecisionArrival {
		t.Fatalf("decision 1 = %+v, %v", d, ok)
	}
	forced, err := RunRoutedFaults(gpu, reqs, 4, BreakerAware,
		ContinuousOpts{ChunkTokens: 256, Force: &ForcedChoice{Decision: 1, Rank: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Ranked()[1]
	if got := assignments(forced)[d.ReqID]; got != want {
		t.Errorf("forced req %s landed on %d, want runner-up %d (recorded %d)",
			d.ReqID, got, want, d.Chosen)
	}
	if base.TTFT.Mean() == 0 {
		t.Fatal("degenerate baseline")
	}
}

func TestReplayRegretWorkerInvariance(t *testing.T) {
	gpu := DefaultGPU()
	reqs := decisionTrace(t, 91, 80)
	run := func(dl *obs.DecisionLog, force *ForcedChoice) (*RoutedReport, error) {
		return RunRoutedFaults(gpu, reqs, 4, BreakerAware,
			ContinuousOpts{ChunkTokens: 256, Decisions: dl, Force: force}, MediumFaultPlan(2303))
	}
	cfg := ReplayConfig{MaxRank: 3, TTFTSLOms: 1500, TBTSLOms: 25, TopN: 5}
	cfg.Workers = 1
	serial, err := ReplayRegret(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := ReplayRegret(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("regret output differs between 1 and 8 workers")
	}
	reg := serial.Regret
	if reg == nil || reg.Decisions == 0 || reg.Replays != reg.Decisions*2 {
		t.Fatalf("regret summary malformed: %+v", reg)
	}
	if len(reg.Top) == 0 || len(reg.Top) > 5 {
		t.Fatalf("top list has %d entries", len(reg.Top))
	}
	for i := 1; i < len(reg.Top); i++ {
		a, b := reg.Top[i-1], reg.Top[i]
		if a.RegretMS < b.RegretMS ||
			(a.RegretMS == b.RegretMS && a.Decision.Seq > b.Decision.Seq) {
			t.Fatalf("top list not (regret desc, seq asc) at %d: %v then %v",
				i, fmt.Sprintf("%.3f/%d", a.RegretMS, a.Decision.Seq),
				fmt.Sprintf("%.3f/%d", b.RegretMS, b.Decision.Seq))
		}
	}
}
