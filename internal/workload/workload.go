// Package workload generates the request traces the serving experiments
// (E11–E14) replay: Poisson arrivals with lognormal-ish length
// distributions, shared-prefix populations (system prompts / few-shot
// templates), and multi-turn conversation sessions. Production systems
// replay recorded traces (Mooncake publishes theirs); this generator
// substitutes seeded synthetic traces with the same controlling
// statistics: arrival rate, length distributions, prefix sharing, and
// turn structure.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one inference request.
type Request struct {
	ID string
	// ArrivalMS is the arrival time on the logical clock.
	ArrivalMS float64
	// PromptTokens includes PrefixTokens.
	PromptTokens int
	// OutputTokens is the generation length (known to the simulator,
	// as if the trace were replayed).
	OutputTokens int
	// PrefixID names the shared prefix this request starts with
	// ("" = unique prompt). PrefixTokens is the shared span's length.
	PrefixID     string
	PrefixTokens int
	// Session and Turn identify multi-turn conversations; Turn counts
	// from 0. HistoryTokens is the reusable KV span from prior turns.
	Session       string
	Turn          int
	HistoryTokens int
	// Tenant and Client attribute the request to its WorkloadSpec
	// stream ("" for legacy single-stream traces): Tenant is the
	// admission-control and fairness identity, Client the generating
	// stream. SLOClass is the request's latency class (Interactive is
	// the zero value, so legacy traces default to it).
	Tenant   string
	Client   string
	SLOClass SLOClass
}

// TraceConfig controls generation.
type TraceConfig struct {
	Seed int64
	// Count is the number of requests.
	Count int
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64
	// PromptMean/PromptSigma parameterize the lognormal prompt-length
	// distribution (in tokens); lengths are clamped to [16, PromptMax].
	PromptMean  float64
	PromptSigma float64
	PromptMax   int
	// OutputMean/OutputSigma/OutputMax likewise for generation lengths,
	// clamped to [4, OutputMax].
	OutputMean  float64
	OutputSigma float64
	OutputMax   int
	// SharedPrefixes > 0 assigns each request one of that many shared
	// prefixes of SharedPrefixTokens tokens with probability
	// SharedPrefixProb.
	SharedPrefixes     int
	SharedPrefixTokens int
	SharedPrefixProb   float64
}

// DefaultTrace returns the baseline E11 configuration.
func DefaultTrace(seed int64, count int, ratePerSec float64) TraceConfig {
	return TraceConfig{
		Seed:        seed,
		Count:       count,
		RatePerSec:  ratePerSec,
		PromptMean:  math.Log(256),
		PromptSigma: 0.8,
		PromptMax:   2048,
		OutputMean:  math.Log(64),
		OutputSigma: 0.7,
		OutputMax:   512,
	}
}

// Generate produces the trace, sorted by arrival time. Since the
// multi-tenant refactor it is the single-client special case of
// GenerateSpec (see TraceConfig.Spec); the output is byte-identical to
// the historical standalone loop, which the spec equivalence test pins.
func Generate(cfg TraceConfig) ([]Request, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: count must be >= 1, got %d", cfg.Count)
	}
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("workload: rate must be > 0, got %v", cfg.RatePerSec)
	}
	return GenerateSpec(cfg.Spec())
}

func lognormal(rng *rand.Rand, mu, sigma float64, min, max int) int {
	v := int(math.Exp(rng.NormFloat64()*sigma + mu))
	if v < min {
		v = min
	}
	if max > 0 && v > max {
		v = max
	}
	return v
}

// ConversationConfig controls multi-turn trace generation.
type ConversationConfig struct {
	Seed int64
	// Sessions and TurnsPerSession shape the population; turn counts
	// vary ±50% around TurnsPerSession.
	Sessions        int
	TurnsPerSession int
	// ThinkTimeMeanMS is the user's mean gap between turns
	// (exponentially distributed).
	ThinkTimeMeanMS float64
	// SessionRatePerSec is the Poisson rate of session starts.
	SessionRatePerSec float64
	// TurnPromptMean is the mean new-prompt tokens per turn; the KV
	// history accumulated by earlier turns is tracked in HistoryTokens.
	TurnPromptMean int
	// OutputMean is the mean generation length per turn.
	OutputMean int
	// ZipfSkew skews session popularity: a few sessions produce most
	// turns (>= 0; 0 disables).
	ZipfSkew float64
}

// DefaultConversations returns the baseline E14 configuration.
func DefaultConversations(seed int64) ConversationConfig {
	return ConversationConfig{
		Seed:              seed,
		Sessions:          40,
		TurnsPerSession:   6,
		ThinkTimeMeanMS:   4000,
		SessionRatePerSec: 2,
		TurnPromptMean:    64,
		OutputMean:        48,
		ZipfSkew:          1.2,
	}
}

// GenerateConversations produces a multi-turn trace sorted by arrival.
// Each turn's HistoryTokens counts all prompt+output tokens of earlier
// turns in the session — the KV span a conversation cache could reuse.
func GenerateConversations(cfg ConversationConfig) ([]Request, error) {
	if cfg.Sessions <= 0 || cfg.TurnsPerSession <= 0 {
		return nil, fmt.Errorf("workload: sessions/turns must be >= 1")
	}
	if cfg.SessionRatePerSec <= 0 || cfg.ThinkTimeMeanMS <= 0 {
		return nil, fmt.Errorf("workload: rates must be > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var reqs []Request
	start := 0.0
	id := 0
	for s := 0; s < cfg.Sessions; s++ {
		start += rng.ExpFloat64() / cfg.SessionRatePerSec * 1000
		turns := cfg.TurnsPerSession
		if cfg.ZipfSkew > 0 {
			// Session 0 is hottest: scale turn count by rank^-skew.
			scale := math.Pow(float64(s+1), -cfg.ZipfSkew)
			turns = int(float64(cfg.TurnsPerSession*3)*scale) + 1
		} else {
			turns += rng.Intn(cfg.TurnsPerSession) - cfg.TurnsPerSession/2
			if turns < 1 {
				turns = 1
			}
		}
		clock := start
		history := 0
		for turn := 0; turn < turns; turn++ {
			prompt := cfg.TurnPromptMean/2 + rng.Intn(cfg.TurnPromptMean)
			output := cfg.OutputMean/2 + rng.Intn(cfg.OutputMean)
			reqs = append(reqs, Request{
				ID:            fmt.Sprintf("s%03d-t%02d (r%05d)", s, turn, id),
				ArrivalMS:     clock,
				PromptTokens:  history + prompt,
				OutputTokens:  output,
				Session:       fmt.Sprintf("s%03d", s),
				Turn:          turn,
				HistoryTokens: history,
			})
			id++
			history += prompt + output
			clock += rng.ExpFloat64() * cfg.ThinkTimeMeanMS
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalMS < reqs[j].ArrivalMS })
	return reqs, nil
}

// TotalTokens sums prompt and output tokens across the trace.
func TotalTokens(reqs []Request) (prompt, output int) {
	for _, r := range reqs {
		prompt += r.PromptTokens
		output += r.OutputTokens
	}
	return prompt, output
}
