package workload

// This file grows the single anonymous Poisson stream into a ServeGen-
// style multi-tenant workload *spec*: a seeded list of clients, each
// with a tenant identity, a share of the aggregate arrival rate, an SLO
// class, its own arrival process (Poisson, Gamma burst, diurnal ramp)
// and its own prompt/output length distributions. Generate merges the
// per-client streams into one deterministically ordered trace.
//
// Determinism contract: every client draws from a private RNG whose
// seed is a pure function of (spec seed, client ID), and the merge
// orders by (arrival, client ID, per-client index) — so the merged
// trace is a pure function of the spec's *contents*, invariant under
// client list permutation and under whatever order the streams were
// generated in. The legacy TraceConfig API is re-expressed as a
// single-client spec (TraceConfig.Spec) with a draw-for-draw identical
// generation path, so historical traces are byte-identical.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dataai/internal/token"
)

// SLOClass is a request's latency class. Interactive is the zero value,
// so legacy single-stream traces (and any unspecified client) default
// to it.
type SLOClass int

// The two SLO classes the serving layer schedules across.
const (
	// Interactive requests carry tight TTFT expectations (chat, agent
	// steps); schedulers may prioritize them and admission protects them.
	Interactive SLOClass = iota
	// Batch requests are throughput-oriented background work (synthetic
	// data generation, bulk extraction) with loose latency expectations.
	Batch
)

// String names the class.
func (c SLOClass) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("slo(%d)", int(c))
	}
}

// ArrivalProcess selects a client's inter-arrival law.
type ArrivalProcess int

// Supported arrival processes.
const (
	// Poisson draws exponential gaps at the client's rate — the
	// memoryless baseline every earlier experiment used.
	Poisson ArrivalProcess = iota
	// GammaBurst draws Gamma-distributed gaps with the same mean but a
	// configurable squared coefficient of variation (Burstiness): > 1
	// clumps arrivals into bursts separated by lulls.
	GammaBurst
	// DiurnalRamp modulates a Poisson process with a sinusoidal rate
	// (Amplitude, PeriodMS) via thinning — a compressed day/night cycle.
	DiurnalRamp
)

// String names the process.
func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case GammaBurst:
		return "gamma-burst"
	case DiurnalRamp:
		return "diurnal-ramp"
	default:
		return fmt.Sprintf("arrival(%d)", int(p))
	}
}

// ArrivalSpec configures one client's arrival process.
type ArrivalSpec struct {
	Process ArrivalProcess
	// Burstiness is GammaBurst's squared coefficient of variation of
	// inter-arrival gaps (1 reproduces Poisson statistics; 4 is bursty).
	Burstiness float64
	// Amplitude (0 <= a < 1) and PeriodMS shape DiurnalRamp's rate
	// r(t) = rate * (1 + Amplitude*sin(2*pi*t/PeriodMS)).
	Amplitude float64
	PeriodMS  float64
}

// LengthSpec is a lognormal token-length distribution: exp(N(Mean,
// Sigma^2)) clamped to [Min, Max] (Max <= 0 leaves the tail unclamped,
// Min < 1 clamps at 1).
type LengthSpec struct {
	Mean  float64
	Sigma float64
	Min   int
	Max   int
}

// ClientSpec is one tenant-attributed request stream inside a
// WorkloadSpec.
type ClientSpec struct {
	// ID names the client; it must be unique within the spec and seeds
	// the client's private RNG, so a client's stream is a function of
	// its identity, not its position in the list. A single client may
	// leave it empty (the legacy TraceConfig path does).
	ID string
	// TenantID attributes the stream for admission control and
	// per-tenant reporting; several clients may share one tenant.
	TenantID string
	// RateFraction is this client's share of the spec's aggregate
	// arrival rate (fractions are normalized, so they need not sum to 1).
	RateFraction float64
	// SLOClass tags every request the client emits.
	SLOClass SLOClass
	// Arrival selects the inter-arrival law.
	Arrival ArrivalSpec
	// Prompt and Output are the token-length distributions.
	Prompt LengthSpec
	Output LengthSpec
	// SharedPrefixes > 0 assigns each request one of that many client-
	// scoped shared prefixes of SharedPrefixTokens tokens with
	// probability SharedPrefixProb (mirroring TraceConfig).
	SharedPrefixes     int
	SharedPrefixTokens int
	SharedPrefixProb   float64
}

// WorkloadSpec is a seeded multi-client workload: Count requests split
// across Clients by rate fraction at an aggregate RatePerSec.
type WorkloadSpec struct {
	Seed       int64
	Count      int
	RatePerSec float64
	Clients    []ClientSpec
}

// Validate checks the spec.
func (spec WorkloadSpec) Validate() error {
	if spec.Count <= 0 {
		return fmt.Errorf("workload: count must be >= 1, got %d", spec.Count)
	}
	if spec.RatePerSec <= 0 {
		return fmt.Errorf("workload: rate must be > 0, got %v", spec.RatePerSec)
	}
	if len(spec.Clients) == 0 {
		return fmt.Errorf("workload: spec needs at least one client")
	}
	seen := make(map[string]bool, len(spec.Clients))
	for i, c := range spec.Clients {
		if c.RateFraction <= 0 {
			return fmt.Errorf("workload: client %q rate fraction must be > 0, got %v", c.ID, c.RateFraction)
		}
		if c.ID == "" && len(spec.Clients) > 1 {
			return fmt.Errorf("workload: client %d needs an ID in a multi-client spec", i)
		}
		if seen[c.ID] {
			return fmt.Errorf("workload: duplicate client ID %q", c.ID)
		}
		seen[c.ID] = true
		switch c.Arrival.Process {
		case Poisson:
		case GammaBurst:
			if c.Arrival.Burstiness <= 0 {
				return fmt.Errorf("workload: client %q gamma-burst needs Burstiness > 0", c.ID)
			}
		case DiurnalRamp:
			if c.Arrival.Amplitude < 0 || c.Arrival.Amplitude >= 1 {
				return fmt.Errorf("workload: client %q diurnal amplitude must be in [0, 1), got %v", c.ID, c.Arrival.Amplitude)
			}
			if c.Arrival.PeriodMS <= 0 {
				return fmt.Errorf("workload: client %q diurnal period must be > 0, got %v", c.ID, c.Arrival.PeriodMS)
			}
		default:
			return fmt.Errorf("workload: client %q has unknown arrival process %d", c.ID, int(c.Arrival.Process))
		}
	}
	return nil
}

// clientSeed derives a client's private RNG seed. An empty ID keeps the
// spec seed verbatim — the legacy single-client path, whose stream must
// reproduce TraceConfig's historical draws byte for byte.
func clientSeed(specSeed int64, id string) int64 {
	if id == "" {
		return specSeed
	}
	return specSeed ^ int64(token.Hash64(id))
}

// clientCounts splits spec.Count across clients proportionally to their
// rate fractions by largest remainder, with ties broken by client ID —
// a pure function of the spec's contents, invariant under list order.
func (spec WorkloadSpec) clientCounts() []int {
	sum := 0.0
	for _, c := range spec.Clients {
		sum += c.RateFraction
	}
	counts := make([]int, len(spec.Clients))
	type rem struct {
		frac float64
		id   string
		idx  int
	}
	rems := make([]rem, len(spec.Clients))
	assigned := 0
	for i, c := range spec.Clients {
		exact := float64(spec.Count) * c.RateFraction / sum
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{frac: exact - math.Floor(exact), id: c.ID, idx: i}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].id < rems[j].id
	})
	for k := 0; k < spec.Count-assigned; k++ {
		counts[rems[k%len(rems)].idx]++
	}
	return counts
}

// prefixName scopes a shared prefix to its client. The legacy empty-ID
// client keeps the historical global "prefix-<k>" names.
func prefixName(clientID string, k int) string {
	if clientID == "" {
		return fmt.Sprintf("prefix-%d", k)
	}
	return fmt.Sprintf("%s/prefix-%d", clientID, k)
}

// generateClient produces one client's stream in arrival order. The
// draw order per request — gap, prompt, output, then the optional
// prefix pair — matches the historical Generate loop exactly, so the
// legacy single-client spec reproduces its traces byte for byte.
func generateClient(spec WorkloadSpec, ci, count int, rate float64) []Request {
	c := spec.Clients[ci]
	rng := rand.New(rand.NewSource(clientSeed(spec.Seed, c.ID)))
	promptMin, outputMin := c.Prompt.Min, c.Output.Min
	if promptMin < 1 {
		promptMin = 1
	}
	if outputMin < 1 {
		outputMin = 1
	}
	reqs := make([]Request, count)
	clock := 0.0
	for i := range reqs {
		clock += arrivalGap(rng, c.Arrival, rate, clock)
		r := Request{
			ArrivalMS:    clock,
			PromptTokens: lognormal(rng, c.Prompt.Mean, c.Prompt.Sigma, promptMin, c.Prompt.Max),
			OutputTokens: lognormal(rng, c.Output.Mean, c.Output.Sigma, outputMin, c.Output.Max),
			Tenant:       c.TenantID,
			Client:       c.ID,
			SLOClass:     c.SLOClass,
		}
		if c.SharedPrefixes > 0 && rng.Float64() < c.SharedPrefixProb {
			r.PrefixID = prefixName(c.ID, rng.Intn(c.SharedPrefixes))
			r.PrefixTokens = c.SharedPrefixTokens
			if r.PrefixTokens >= r.PromptTokens {
				r.PromptTokens = r.PrefixTokens + 16
			}
		}
		reqs[i] = r
	}
	return reqs
}

// arrivalGap draws the next inter-arrival gap in ms for a client whose
// last arrival was at clock.
func arrivalGap(rng *rand.Rand, a ArrivalSpec, rate, clock float64) float64 {
	switch a.Process {
	case GammaBurst:
		// Gamma(shape k, mean 1/rate): CV^2 of gaps is 1/k = Burstiness.
		shape := 1 / a.Burstiness
		return gammaDraw(rng, shape) / (shape * rate) * 1000
	case DiurnalRamp:
		// Thinning against the peak rate: candidate gaps at rmax are
		// accepted with probability r(t)/rmax, yielding a nonhomogeneous
		// Poisson process with the sinusoidal rate.
		rmax := rate * (1 + a.Amplitude)
		t := clock
		for {
			t += rng.ExpFloat64() / rmax * 1000
			r := rate * (1 + a.Amplitude*math.Sin(2*math.Pi*t/a.PeriodMS))
			if rng.Float64()*rmax <= r {
				return t - clock
			}
		}
	default: // Poisson
		return rng.ExpFloat64() / rate * 1000
	}
}

// gammaDraw samples Gamma(shape, 1) by Marsaglia–Tsang squeeze; the
// shape < 1 boost keeps it exact for bursty (small-shape) clients.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		return gammaDraw(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// GenerateSpec produces the merged multi-client trace: every client's
// stream is generated from its private RNG, the streams are merged in
// (arrival, client ID, per-client index) order, and request IDs are
// assigned in merged order — so the result is a pure function of the
// spec's contents, not of client list order or generation order.
func GenerateSpec(spec WorkloadSpec) ([]Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	counts := spec.clientCounts()
	sum := 0.0
	for _, c := range spec.Clients {
		sum += c.RateFraction
	}
	streams := make([][]Request, len(spec.Clients))
	for ci := range spec.Clients {
		rate := spec.RatePerSec * spec.Clients[ci].RateFraction / sum
		streams[ci] = generateClient(spec, ci, counts[ci], rate)
	}
	type tagged struct {
		req Request
		seq int // index within the client's stream
	}
	merged := make([]tagged, 0, spec.Count)
	for _, stream := range streams {
		for seq, r := range stream {
			merged = append(merged, tagged{req: r, seq: seq})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := &merged[i], &merged[j]
		if a.req.ArrivalMS != b.req.ArrivalMS {
			return a.req.ArrivalMS < b.req.ArrivalMS
		}
		if a.req.Client != b.req.Client {
			return a.req.Client < b.req.Client
		}
		return a.seq < b.seq
	})
	out := make([]Request, len(merged))
	for i := range merged {
		out[i] = merged[i].req
		out[i].ID = fmt.Sprintf("r%05d", i)
	}
	return out, nil
}

// Spec re-expresses the legacy single-stream TraceConfig as a one-
// client WorkloadSpec. GenerateSpec over it reproduces the historical
// Generate output byte for byte (the spec path's draw order is
// identical), which the equivalence test pins.
func (cfg TraceConfig) Spec() WorkloadSpec {
	return WorkloadSpec{
		Seed:       cfg.Seed,
		Count:      cfg.Count,
		RatePerSec: cfg.RatePerSec,
		Clients: []ClientSpec{{
			RateFraction:       1,
			Arrival:            ArrivalSpec{Process: Poisson},
			Prompt:             LengthSpec{Mean: cfg.PromptMean, Sigma: cfg.PromptSigma, Min: 16, Max: cfg.PromptMax},
			Output:             LengthSpec{Mean: cfg.OutputMean, Sigma: cfg.OutputSigma, Min: 4, Max: cfg.OutputMax},
			SharedPrefixes:     cfg.SharedPrefixes,
			SharedPrefixTokens: cfg.SharedPrefixTokens,
			SharedPrefixProb:   cfg.SharedPrefixProb,
		}},
	}
}

// DefaultMultiTenant is the baseline E25 traffic mix: three tenants with
// different arrival processes, length shapes, and SLO classes sharing
// one aggregate rate.
//
//   - "chat" (30%, interactive): short prompts and outputs on a smooth
//     Poisson process — the latency-sensitive tenant the cluster must
//     protect.
//   - "bulk-a" (45%, batch): long analytics-style prompts on a Gamma
//     burst process (CV² = 4) — arrives in clumps that saturate slots.
//   - "bulk-b" (25%, batch): the same shape on a diurnal ramp (amplitude
//     0.8, 40s period) — sustained waves rather than clumps.
func DefaultMultiTenant(seed int64, count int, ratePerSec float64) WorkloadSpec {
	bulk := ClientSpec{
		SLOClass: Batch,
		Prompt:   LengthSpec{Mean: 6.0, Sigma: 0.8, Min: 16, Max: 2048},
		Output:   LengthSpec{Mean: 4.7, Sigma: 0.7, Min: 4, Max: 512},
	}
	bulkA, bulkB := bulk, bulk
	bulkA.ID, bulkA.TenantID, bulkA.RateFraction = "bulk-a", "bulk-a", 0.45
	bulkA.Arrival = ArrivalSpec{Process: GammaBurst, Burstiness: 4}
	bulkB.ID, bulkB.TenantID, bulkB.RateFraction = "bulk-b", "bulk-b", 0.25
	bulkB.Arrival = ArrivalSpec{Process: DiurnalRamp, Amplitude: 0.8, PeriodMS: 40000}
	return WorkloadSpec{
		Seed:       seed,
		Count:      count,
		RatePerSec: ratePerSec,
		Clients: []ClientSpec{
			{
				ID: "chat", TenantID: "chat", RateFraction: 0.30,
				SLOClass: Interactive,
				Arrival:  ArrivalSpec{Process: Poisson},
				Prompt:   LengthSpec{Mean: 4.9, Sigma: 0.6, Min: 16, Max: 1024},
				Output:   LengthSpec{Mean: 3.5, Sigma: 0.6, Min: 4, Max: 256},
			},
			bulkA,
			bulkB,
		},
	}
}

// Tenants lists the distinct non-empty tenant IDs in the trace, sorted.
func Tenants(reqs []Request) []string {
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.Tenant != "" && !seen[r.Tenant] {
			seen[r.Tenant] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
