package workload

import (
	"math"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultTrace(1, 500, 10)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Fatalf("count = %d", len(reqs))
	}
	prev := -1.0
	for _, r := range reqs {
		if r.ArrivalMS < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.ArrivalMS
		if r.PromptTokens < 16 || r.PromptTokens > cfg.PromptMax {
			t.Fatalf("prompt tokens %d out of range", r.PromptTokens)
		}
		if r.OutputTokens < 4 || r.OutputTokens > cfg.OutputMax {
			t.Fatalf("output tokens %d out of range", r.OutputTokens)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultTrace(7, 100, 5)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestGeneratePoissonRate(t *testing.T) {
	cfg := DefaultTrace(3, 2000, 20)
	reqs, _ := Generate(cfg)
	span := reqs[len(reqs)-1].ArrivalMS / 1000
	rate := float64(len(reqs)) / span
	if math.Abs(rate-20) > 3 {
		t.Errorf("empirical rate %v, want ~20", rate)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(TraceConfig{Count: 0, RatePerSec: 1}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Generate(TraceConfig{Count: 5, RatePerSec: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSharedPrefixes(t *testing.T) {
	cfg := DefaultTrace(5, 400, 10)
	cfg.SharedPrefixes = 3
	cfg.SharedPrefixTokens = 128
	cfg.SharedPrefixProb = 0.7
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withPrefix := 0
	ids := map[string]bool{}
	for _, r := range reqs {
		if r.PrefixID == "" {
			continue
		}
		withPrefix++
		ids[r.PrefixID] = true
		if r.PrefixTokens != 128 {
			t.Fatalf("prefix tokens = %d", r.PrefixTokens)
		}
		if r.PromptTokens <= r.PrefixTokens {
			t.Fatalf("prompt %d not longer than prefix %d", r.PromptTokens, r.PrefixTokens)
		}
	}
	frac := float64(withPrefix) / float64(len(reqs))
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("prefix fraction %v, want ~0.7", frac)
	}
	if len(ids) != 3 {
		t.Errorf("distinct prefixes = %d", len(ids))
	}
}

func TestGenerateConversations(t *testing.T) {
	cfg := DefaultConversations(11)
	reqs, err := GenerateConversations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	prev := -1.0
	bySession := map[string][]Request{}
	for _, r := range reqs {
		if r.ArrivalMS < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.ArrivalMS
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	// History must accumulate monotonically within a session, and the
	// prompt must contain it.
	for s, turns := range bySession {
		hist := -1
		for _, r := range turns {
			if r.HistoryTokens <= hist && r.Turn > 0 {
				t.Fatalf("session %s: history not growing", s)
			}
			hist = r.HistoryTokens
			if r.PromptTokens <= r.HistoryTokens && r.Turn > 0 {
				t.Fatalf("session %s: prompt %d <= history %d", s, r.PromptTokens, r.HistoryTokens)
			}
		}
	}
	// Zipf skew: the hottest session has more turns than the coldest.
	if len(bySession["s000"]) <= len(bySession["s039"]) {
		t.Errorf("no popularity skew: s000=%d s039=%d",
			len(bySession["s000"]), len(bySession["s039"]))
	}
}

func TestGenerateConversationsValidation(t *testing.T) {
	if _, err := GenerateConversations(ConversationConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTotalTokens(t *testing.T) {
	reqs := []Request{{PromptTokens: 10, OutputTokens: 5}, {PromptTokens: 3, OutputTokens: 2}}
	p, o := TotalTokens(reqs)
	if p != 13 || o != 7 {
		t.Errorf("totals = %d/%d", p, o)
	}
}
