package workload

import (
	"math"
	"testing"
)

// singleClientSpec is a one-client spec with the given arrival law —
// the property-test harness for the new processes.
func singleClientSpec(a ArrivalSpec, count int, rate float64) WorkloadSpec {
	return WorkloadSpec{
		Seed:       41,
		Count:      count,
		RatePerSec: rate,
		Clients: []ClientSpec{{
			ID: "c", TenantID: "t", RateFraction: 1, Arrival: a,
			Prompt: LengthSpec{Mean: 5, Sigma: 0.5, Min: 16, Max: 1024},
			Output: LengthSpec{Mean: 4, Sigma: 0.5, Min: 4, Max: 512},
		}},
	}
}

// TestSpecLegacyEquivalence pins the compatibility contract: the legacy
// TraceConfig re-expressed as a single-client spec reproduces the
// historical trace element for element (Generate itself routes through
// GenerateSpec, so this guards the wrapper against future divergence).
func TestSpecLegacyEquivalence(t *testing.T) {
	cfg := DefaultTrace(9, 300, 25)
	cfg.SharedPrefixes = 4
	cfg.SharedPrefixTokens = 256
	cfg.SharedPrefixProb = 0.5
	legacy, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := GenerateSpec(cfg.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(viaSpec) {
		t.Fatalf("lengths differ: %d vs %d", len(legacy), len(viaSpec))
	}
	for i := range legacy {
		if legacy[i] != viaSpec[i] {
			t.Fatalf("request %d differs:\nlegacy: %+v\nspec:   %+v", i, legacy[i], viaSpec[i])
		}
	}
}

// TestSpecArrivalProperties checks, for each arrival process: arrivals
// are sorted, regeneration is byte-stable in the seed, and the
// empirical rate lands near the nominal one (Gamma gaps share the
// Poisson mean; the diurnal sine averages out over whole periods).
func TestSpecArrivalProperties(t *testing.T) {
	cases := []struct {
		name string
		a    ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Process: Poisson}},
		{"gamma-burst", ArrivalSpec{Process: GammaBurst, Burstiness: 4}},
		{"diurnal-ramp", ArrivalSpec{Process: DiurnalRamp, Amplitude: 0.8, PeriodMS: 10000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := singleClientSpec(tc.a, 2000, 20)
			reqs, err := GenerateSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			prev := -1.0
			for i, r := range reqs {
				if r.ArrivalMS < prev {
					t.Fatalf("request %d: arrival %v before %v", i, r.ArrivalMS, prev)
				}
				prev = r.ArrivalMS
			}
			again, err := GenerateSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := range reqs {
				if reqs[i] != again[i] {
					t.Fatalf("request %d not seed-stable", i)
				}
			}
			span := reqs[len(reqs)-1].ArrivalMS / 1000
			rate := float64(len(reqs)) / span
			if math.Abs(rate-20) > 4 {
				t.Errorf("empirical rate %v, want ~20", rate)
			}
		})
	}
}

// TestSpecBurstClumping verifies GammaBurst actually burstifies: the
// gap CV² should sit well above Poisson's 1.
func TestSpecBurstClumping(t *testing.T) {
	gapCV2 := func(a ArrivalSpec) float64 {
		reqs, err := GenerateSpec(singleClientSpec(a, 4000, 20))
		if err != nil {
			t.Fatal(err)
		}
		var sum, sumSq float64
		prev := 0.0
		for _, r := range reqs {
			g := r.ArrivalMS - prev
			prev = r.ArrivalMS
			sum += g
			sumSq += g * g
		}
		n := float64(len(reqs))
		mean := sum / n
		return (sumSq/n - mean*mean) / (mean * mean)
	}
	poisson := gapCV2(ArrivalSpec{Process: Poisson})
	bursty := gapCV2(ArrivalSpec{Process: GammaBurst, Burstiness: 4})
	if bursty < 2*poisson {
		t.Errorf("gamma-burst CV² %.2f not clearly above poisson's %.2f", bursty, poisson)
	}
	if bursty < 3 || bursty > 5.5 {
		t.Errorf("gamma-burst CV² %.2f, want ~4", bursty)
	}
}

// TestSpecMergeDeterminism pins permutation invariance: reordering the
// client list changes nothing about the merged trace, because client
// RNG seeds hang off client IDs and the merge orders by contents.
func TestSpecMergeDeterminism(t *testing.T) {
	spec := DefaultMultiTenant(2501, 600, 90)
	base, err := GenerateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	perm := spec
	perm.Clients = []ClientSpec{spec.Clients[2], spec.Clients[0], spec.Clients[1]}
	swapped, err := GenerateSpec(perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != swapped[i] {
			t.Fatalf("request %d differs under client permutation:\n%+v\n%+v", i, base[i], swapped[i])
		}
	}
}

// TestSpecCountSplit checks the largest-remainder split: counts sum to
// Count and track rate fractions to within one request.
func TestSpecCountSplit(t *testing.T) {
	spec := DefaultMultiTenant(1, 601, 60)
	reqs, err := GenerateSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 601 {
		t.Fatalf("count = %d, want 601", len(reqs))
	}
	perClient := map[string]int{}
	for _, r := range reqs {
		perClient[r.Client]++
	}
	for _, c := range spec.Clients {
		exact := 601 * c.RateFraction
		if math.Abs(float64(perClient[c.ID])-exact) > 1 {
			t.Errorf("client %s got %d requests, want ~%.1f", c.ID, perClient[c.ID], exact)
		}
	}
	if got := Tenants(reqs); len(got) != 3 || got[0] != "bulk-a" || got[1] != "bulk-b" || got[2] != "chat" {
		t.Errorf("Tenants = %v", got)
	}
}

// TestSpecValidation exercises the rejection paths.
func TestSpecValidation(t *testing.T) {
	ok := singleClientSpec(ArrivalSpec{Process: Poisson}, 10, 5)
	bad := func(mutate func(*WorkloadSpec)) error {
		s := ok
		s.Clients = append([]ClientSpec(nil), ok.Clients...)
		mutate(&s)
		_, err := GenerateSpec(s)
		return err
	}
	cases := []struct {
		name   string
		mutate func(*WorkloadSpec)
	}{
		{"zero count", func(s *WorkloadSpec) { s.Count = 0 }},
		{"zero rate", func(s *WorkloadSpec) { s.RatePerSec = 0 }},
		{"no clients", func(s *WorkloadSpec) { s.Clients = nil }},
		{"zero fraction", func(s *WorkloadSpec) { s.Clients[0].RateFraction = 0 }},
		{"gamma without burstiness", func(s *WorkloadSpec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: GammaBurst}
		}},
		{"diurnal amplitude 1", func(s *WorkloadSpec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: DiurnalRamp, Amplitude: 1, PeriodMS: 1000}
		}},
		{"diurnal without period", func(s *WorkloadSpec) {
			s.Clients[0].Arrival = ArrivalSpec{Process: DiurnalRamp, Amplitude: 0.5}
		}},
		{"duplicate IDs", func(s *WorkloadSpec) {
			s.Clients = append(s.Clients, s.Clients[0])
		}},
		{"anonymous client in multi-client spec", func(s *WorkloadSpec) {
			extra := s.Clients[0]
			extra.ID = ""
			s.Clients = append(s.Clients, extra)
		}},
	}
	for _, tc := range cases {
		if err := bad(tc.mutate); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
