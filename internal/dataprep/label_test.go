package dataprep

import (
	"strings"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/embed"
	"dataai/internal/llm"
)

// labeledDocs returns clean corpus docs with their gold domain labels.
func labeledDocs(t *testing.T, n int) (docs, gold []string) {
	t.Helper()
	c := testCorpus(t, 73)
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		docs = append(docs, d.Text)
		gold = append(gold, d.Domain)
		if len(docs) == n {
			break
		}
	}
	if len(docs) < n {
		t.Fatalf("only %d clean docs", len(docs))
	}
	return docs, gold
}

// keywordLF labels docs containing any keyword; abstains otherwise.
func keywordLF(name, label string, keywords ...string) LabelingFunc {
	return LabelingFunc{Name: name, Fn: func(text string) string {
		for _, k := range keywords {
			if strings.Contains(text, k) {
				return label
			}
		}
		return Abstain
	}}
}

func domainLFs() []LabelingFunc {
	return []LabelingFunc{
		keywordLF("fin1", "finance", "market", "dividend"),
		keywordLF("fin2", "finance", "portfolio", "merger", "equity"),
		keywordLF("med1", "medicine", "clinical", "patient", "immune"),
		keywordLF("med2", "medicine", "therapy", "diagnosis"),
		keywordLF("tech1", "technology", "compiler", "kernel", "protocol"),
		keywordLF("tech2", "technology", "latency", "framework"),
		keywordLF("sport1", "sports", "championship", "playoff", "referee"),
		keywordLF("sport2", "sports", "stadium", "tournament"),
		// A deliberately bad function: labels everything finance.
		{Name: "noisy", Fn: func(string) string { return "finance" }},
	}
}

func TestMajorityVote(t *testing.T) {
	docs, gold := labeledDocs(t, 120)
	pred := MajorityVote(domainLFs(), docs)
	acc := LabelAccuracy(pred, gold)
	if acc < 0.5 {
		t.Errorf("majority vote accuracy %v too low", acc)
	}
}

func TestLabelModelBeatsMajorityVote(t *testing.T) {
	docs, gold := labeledDocs(t, 200)
	fns := domainLFs()
	mv := MajorityVote(fns, docs)
	model, err := FitLabelModel(fns, docs)
	if err != nil {
		t.Fatal(err)
	}
	wv := model.Label(fns, docs)
	accMV := LabelAccuracy(mv, gold)
	accWV := LabelAccuracy(wv, gold)
	if accWV < accMV {
		t.Errorf("label model %v worse than majority vote %v", accWV, accMV)
	}
	// The always-finance function must get a low weight.
	if model.Weights["noisy"] >= model.Weights["med1"] {
		t.Errorf("noisy LF weight %v not below good LF %v",
			model.Weights["noisy"], model.Weights["med1"])
	}
}

func TestFitLabelModelValidation(t *testing.T) {
	if _, err := FitLabelModel(domainLFs(), nil); err == nil {
		t.Error("empty docs accepted")
	}
	if _, err := FitLabelModel(nil, []string{"x"}); err == nil {
		t.Error("no LFs accepted")
	}
}

func TestModelLabel(t *testing.T) {
	docs, gold := labeledDocs(t, 60)
	m := llm.LargeModel()
	m.ErrRate = 0
	client := llm.NewSimulator(m, 5)
	client.RegisterLabel("finance", []string{"market", "dividend", "portfolio", "merger", "equity", "shares"})
	client.RegisterLabel("medicine", []string{"clinical", "patient", "therapy", "immune", "diagnosis"})
	client.RegisterLabel("technology", []string{"compiler", "kernel", "protocol", "latency", "framework"})
	client.RegisterLabel("sports", []string{"championship", "playoff", "referee", "stadium", "tournament"})
	labels := []string{"finance", "medicine", "technology", "sports"}
	pred, cost, err := ModelLabel(client, labels, docs)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("cost not accounted")
	}
	if acc := LabelAccuracy(pred, gold); acc < 0.7 {
		t.Errorf("model labeling accuracy %v", acc)
	}
}

func TestActiveLearningBeatsRandomBudget(t *testing.T) {
	docs, gold := labeledDocs(t, 150)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	al := ActiveLearner{
		Embedder: e,
		Oracle:   func(i int) string { return gold[i] },
	}
	const budget = 20
	pred, queried, err := al.Run(docs, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(queried) > budget {
		t.Errorf("queried %d > budget %d", len(queried), budget)
	}
	acc := LabelAccuracy(pred, gold)
	if acc < 0.6 {
		t.Errorf("active learning accuracy %v with budget %d", acc, budget)
	}
	// Queried examples must carry their oracle label exactly.
	for _, q := range queried {
		if pred[q] != gold[q] {
			t.Errorf("queried doc %d mislabeled", q)
		}
	}
}

func TestActiveLearnerValidation(t *testing.T) {
	e := embed.NewHashEmbedder(32)
	if _, _, err := (ActiveLearner{Embedder: e, Oracle: func(int) string { return "" }}).Run(nil, 3); err == nil {
		t.Error("empty docs accepted")
	}
	if _, _, err := (ActiveLearner{}).Run([]string{"x"}, 1); err == nil {
		t.Error("missing embedder/oracle accepted")
	}
}

func TestLabelAccuracyEdgeCases(t *testing.T) {
	if LabelAccuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if LabelAccuracy([]string{"a"}, []string{"a", "b"}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if got := LabelAccuracy([]string{"a", "b"}, []string{"a", "c"}); got != 0.5 {
		t.Errorf("accuracy = %v", got)
	}
}
