package dataprep

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dataai/internal/llm/ngram"
)

// This file implements the data-synthesis techniques of §2.3.2:
// "statistical methods, generative models, rule-based methods" — here a
// Markov-chain generator (the n-gram model sampling from its learned
// distribution) and template instantiation.

// MarkovSynthesize trains an n-gram model on the corpus and samples n
// synthetic documents of up to maxTokens tokens each.
func MarkovSynthesize(corpus []string, n, maxTokens int, seed int64) ([]string, error) {
	if len(corpus) == 0 {
		return nil, ErrNoDocs
	}
	if n < 1 || maxTokens < 1 {
		return nil, fmt.Errorf("dataprep: invalid synthesis size n=%d maxTokens=%d", n, maxTokens)
	}
	m := ngram.New()
	m.TrainAll(corpus)
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for len(out) < n {
		doc := m.Generate(rng, maxTokens)
		if doc == "" {
			// Degenerate sample (immediate <eos>); try again — bounded
			// by the loop's progress guarantee below.
			doc = m.Generate(rng, maxTokens)
			if doc == "" {
				doc = corpus[len(out)%len(corpus)]
			}
		}
		out = append(out, doc)
	}
	return out, nil
}

// TemplateSynthesize instantiates each template n times, filling "$slot"
// placeholders with uniform draws from slots — the rule-based method.
func TemplateSynthesize(templates []string, slots map[string][]string, n int, seed int64) ([]string, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("dataprep: no templates")
	}
	if n < 1 {
		return nil, fmt.Errorf("dataprep: n must be >= 1, got %d", n)
	}
	slotNames := make([]string, 0, len(slots))
	for s := range slots {
		slotNames = append(slotNames, s)
	}
	sort.Strings(slotNames) // rng consumption must not follow map order
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		t := templates[rng.Intn(len(templates))]
		for _, slot := range slotNames {
			values := slots[slot]
			for strings.Contains(t, "$"+slot) {
				if len(values) == 0 {
					return nil, fmt.Errorf("dataprep: empty slot %q", slot)
				}
				t = strings.Replace(t, "$"+slot, values[rng.Intn(len(values))], 1)
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// SyntheticQuality measures how well synthetic data mimics the real
// distribution: the perplexity of the synthetic documents under a model
// trained on real data (closer to the real held-out perplexity = better
// mimicry).
func SyntheticQuality(real, synthetic []string) (realPPL, synthPPL float64, err error) {
	if len(real) < 2 {
		return 0, 0, ErrNoDocs
	}
	half := len(real) / 2
	m := ngram.New()
	m.TrainAll(real[:half])
	realPPL, err = m.CorpusPerplexity(real[half:])
	if err != nil {
		return 0, 0, err
	}
	synthPPL, err = m.CorpusPerplexity(synthetic)
	if err != nil {
		return 0, 0, err
	}
	return realPPL, synthPPL, nil
}
