package dataprep

import (
	"errors"
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/embed"
)

// selectionFixture returns a mixed-domain pool, a finance target set, and
// a finance held-out set.
func selectionFixture(t *testing.T) (pool, target, heldOut []string) {
	t.Helper()
	c := testCorpus(t, 61)
	var finance []string
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		if d.Domain == "finance" {
			finance = append(finance, d.Text)
		} else {
			pool = append(pool, d.Text)
		}
	}
	if len(finance) < 60 {
		t.Fatal("not enough finance docs")
	}
	target = finance[:20]
	heldOut = finance[20:50]
	pool = append(pool, finance[50:]...)
	return pool, target, heldOut
}

func TestSelectorsValidation(t *testing.T) {
	e := embed.NewHashEmbedder(64)
	sels := []Selector{
		RandomSelector{Seed: 1},
		PerplexitySelector{Target: []string{"x y z"}},
		CoresetSelector{Embedder: e, Seed: 1},
		InfluenceSelector{Embedder: e, Target: []string{"x y z"}},
	}
	for _, s := range sels {
		if _, err := s.Select(nil, 5); !errors.Is(err, ErrNoDocs) {
			t.Errorf("%s: empty docs err = %v", s.Name(), err)
		}
		if _, err := s.Select([]string{"a b c"}, 0); err == nil {
			t.Errorf("%s: zero budget accepted", s.Name())
		}
	}
	if _, err := (PerplexitySelector{}).Select([]string{"a"}, 1); err == nil {
		t.Error("perplexity selector without target accepted")
	}
	if _, err := (CoresetSelector{}).Select([]string{"a"}, 1); err == nil {
		t.Error("coreset selector without embedder accepted")
	}
	if _, err := (InfluenceSelector{}).Select([]string{"a"}, 1); err == nil {
		t.Error("influence selector without embedder/target accepted")
	}
}

func TestSelectorsReturnSortedUniqueWithinBudget(t *testing.T) {
	pool, target, _ := selectionFixture(t)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	sels := []Selector{
		RandomSelector{Seed: 2},
		PerplexitySelector{Target: target},
		CoresetSelector{Embedder: e, Seed: 2},
		InfluenceSelector{Embedder: e, Target: target},
	}
	for _, s := range sels {
		idx, err := s.Select(pool, 30)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(idx) != 30 {
			t.Errorf("%s: got %d indices", s.Name(), len(idx))
		}
		seen := map[int]bool{}
		for i, v := range idx {
			if v < 0 || v >= len(pool) {
				t.Fatalf("%s: index %d out of range", s.Name(), v)
			}
			if seen[v] {
				t.Fatalf("%s: duplicate index %d", s.Name(), v)
			}
			seen[v] = true
			if i > 0 && idx[i-1] >= v {
				t.Fatalf("%s: indices not ascending", s.Name())
			}
		}
	}
}

func TestBudgetClamped(t *testing.T) {
	idx, err := (RandomSelector{Seed: 3}).Select([]string{"a b", "c d"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Errorf("got %d indices, want 2", len(idx))
	}
}

func TestTargetedSelectorsBeatRandom(t *testing.T) {
	// E7's claim: selecting target-like data trains a better model for
	// the target than random selection at the same budget.
	pool, target, heldOut := selectionFixture(t)
	e := embed.NewHashEmbedder(embed.DefaultDim)
	const budget = 60

	score := func(s Selector) float64 {
		idx, err := s.Select(pool, budget)
		if err != nil {
			t.Fatal(err)
		}
		return trainAndScore(t, Pick(pool, idx), heldOut)
	}
	ppRandom := score(RandomSelector{Seed: 4})
	ppPerplexity := score(PerplexitySelector{Target: target})
	ppInfluence := score(InfluenceSelector{Embedder: e, Target: target})

	if ppPerplexity >= ppRandom {
		t.Errorf("perplexity selection %v >= random %v", ppPerplexity, ppRandom)
	}
	if ppInfluence >= ppRandom {
		t.Errorf("influence selection %v >= random %v", ppInfluence, ppRandom)
	}
}

func TestCoresetSpreadsAcrossDomains(t *testing.T) {
	c := testCorpus(t, 67)
	var docs []string
	var domains []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean {
			docs = append(docs, d.Text)
			domains = append(domains, d.Domain)
		}
	}
	e := embed.NewHashEmbedder(embed.DefaultDim)
	idx, err := (CoresetSelector{Embedder: e, Seed: 5}).Select(docs, 24)
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	for _, i := range idx {
		hit[domains[i]] = true
	}
	if len(hit) < 4 {
		t.Errorf("coreset covered only %d domains: %v", len(hit), hit)
	}
}

func TestPick(t *testing.T) {
	docs := []string{"a", "b", "c"}
	got := Pick(docs, []int{0, 2})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Pick = %v", got)
	}
}
