package dataprep

import (
	"dataai/internal/corpus"
	"strings"
	"testing"

	"dataai/internal/embed"
)

func TestSynonymAugment(t *testing.T) {
	docs := []string{"the market rose sharply today"}
	syn := map[string]string{"market": "exchange", "rose": "climbed"}
	out := SynonymAugment(docs, syn, 1.0, 1)
	if len(out) != 1 {
		t.Fatalf("got %d docs", len(out))
	}
	if !strings.Contains(out[0], "exchange") || !strings.Contains(out[0], "climbed") {
		t.Errorf("replacements missing: %q", out[0])
	}
	// Rate 0: nothing changes.
	out = SynonymAugment(docs, syn, 0, 1)
	if out[0] != "the market rose sharply today" {
		t.Errorf("rate 0 changed text: %q", out[0])
	}
}

func TestSynonymAugmentDeterministic(t *testing.T) {
	docs := []string{"alpha beta gamma delta epsilon"}
	syn := map[string]string{"alpha": "a", "beta": "b", "gamma": "c"}
	a := SynonymAugment(docs, syn, 0.5, 7)
	b := SynonymAugment(docs, syn, 0.5, 7)
	if a[0] != b[0] {
		t.Error("augmentation not deterministic for same seed")
	}
}

func TestLinkAugment(t *testing.T) {
	e := embed.NewHashEmbedder(embed.DefaultDim)
	docs := []string{
		"the market rallied after strong earnings reports",
		"earnings season lifted the market to new highs",
		"penguins huddle through the antarctic winter",
	}
	out, err := LinkAugment(docs, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d docs", len(out))
	}
	// The two market docs must be linked to each other, not the penguin.
	if !strings.Contains(out[0], "earnings season") {
		t.Errorf("doc 0 linked wrongly: %q", out[0])
	}
	for _, o := range out {
		if len(o) == 0 {
			t.Error("empty augmented doc")
		}
	}
}

func TestLinkAugmentEdgeCases(t *testing.T) {
	e := embed.NewHashEmbedder(32)
	if _, err := LinkAugment(nil, e); err == nil {
		t.Error("empty docs accepted")
	}
	out, err := LinkAugment([]string{"lonely document"}, e)
	if err != nil || len(out) != 1 || out[0] != "lonely document" {
		t.Errorf("singleton handling: %v %v", out, err)
	}
}

func TestBuildSynonymMap(t *testing.T) {
	docs := []string{
		"the cat sat on the mat",
		"the dog sat on the rug",
		"the cat ran on the mat",
	}
	syn := BuildSynonymMap(docs, 10)
	// "cat" and "dog" share context (the _ sat); "sat" and "ran" share
	// (cat _ on). At least one such pair must be found.
	if len(syn) == 0 {
		t.Fatal("no synonyms derived")
	}
	for a, b := range syn {
		if a == b {
			t.Errorf("self synonym %q", a)
		}
	}
}

func TestBuildSynonymMapCap(t *testing.T) {
	var docs []string
	for i := 0; i < 50; i++ {
		docs = append(docs, "prefix word"+string(rune('a'+i%26))+" suffix")
	}
	syn := BuildSynonymMap(docs, 3)
	if len(syn) > 3 {
		t.Errorf("cap exceeded: %d", len(syn))
	}
}

func TestMarkovSynthesize(t *testing.T) {
	c := testCorpus(t, 79)
	var clean []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean {
			clean = append(clean, d.Text)
		}
	}
	synth, err := MarkovSynthesize(clean, 20, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != 20 {
		t.Fatalf("got %d synthetic docs", len(synth))
	}
	for _, s := range synth {
		if s == "" {
			t.Error("empty synthetic doc")
		}
	}
	// Determinism.
	again, err := MarkovSynthesize(clean, 20, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range synth {
		if synth[i] != again[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestMarkovSynthesizeValidation(t *testing.T) {
	if _, err := MarkovSynthesize(nil, 5, 10, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := MarkovSynthesize([]string{"a b"}, 0, 10, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSyntheticQualityCloseToReal(t *testing.T) {
	c := testCorpus(t, 83)
	var clean []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean {
			clean = append(clean, d.Text)
		}
	}
	synth, err := MarkovSynthesize(clean, 50, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	realPPL, synthPPL, err := SyntheticQuality(clean, synth)
	if err != nil {
		t.Fatal(err)
	}
	// Markov samples from the learned distribution, so they should score
	// within a small factor of real held-out text — and far below what
	// unrelated text would score.
	if synthPPL > realPPL*3 {
		t.Errorf("synthetic ppl %v more than 3x real %v", synthPPL, realPPL)
	}
}

func TestTemplateSynthesize(t *testing.T) {
	templates := []string{"the $attr of $name is high", "$name has low $attr"}
	slots := map[string][]string{
		"attr": {"revenue", "growth"},
		"name": {"acme", "bolt"},
	}
	out, err := TemplateSynthesize(templates, slots, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d docs", len(out))
	}
	for _, o := range out {
		if strings.Contains(o, "$") {
			t.Errorf("unfilled slot: %q", o)
		}
	}
	again, _ := TemplateSynthesize(templates, slots, 10, 3)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("template synthesis not deterministic")
		}
	}
}

func TestTemplateSynthesizeValidation(t *testing.T) {
	if _, err := TemplateSynthesize(nil, nil, 5, 1); err == nil {
		t.Error("no templates accepted")
	}
	if _, err := TemplateSynthesize([]string{"x"}, nil, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TemplateSynthesize([]string{"$a"}, map[string][]string{"a": {}}, 1, 1); err == nil {
		t.Error("empty slot accepted")
	}
}
