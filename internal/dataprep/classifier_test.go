package dataprep

import (
	"testing"

	"dataai/internal/corpus"
	"dataai/internal/embed"
)

func classifierFixture(t *testing.T) (good, bad, testGood, testBad []string) {
	t.Helper()
	c := testCorpus(t, 89)
	for _, d := range c.Docs {
		switch d.Kind {
		case corpus.Clean:
			if len(good) < 60 {
				good = append(good, d.Text)
			} else if len(testGood) < 60 {
				testGood = append(testGood, d.Text)
			}
		case corpus.Noisy, corpus.Boilerplate:
			if len(bad) < 15 {
				bad = append(bad, d.Text)
			} else {
				testBad = append(testBad, d.Text)
			}
		}
	}
	if len(bad) < 5 || len(testBad) < 5 {
		t.Skip("not enough bad docs in corpus")
	}
	return good, bad, testGood, testBad
}

func TestClassifierFilterSeparates(t *testing.T) {
	good, bad, testGood, testBad := classifierFixture(t)
	f, err := FitClassifierFilter(embed.NewHashEmbedder(embed.DefaultDim), good, bad)
	if err != nil {
		t.Fatal(err)
	}
	keptGood := 0
	for _, d := range testGood {
		if ok, _ := f.Keep(d); ok {
			keptGood++
		}
	}
	droppedBad := 0
	for _, d := range testBad {
		if ok, _ := f.Keep(d); !ok {
			droppedBad++
		}
	}
	if frac := float64(keptGood) / float64(len(testGood)); frac < 0.9 {
		t.Errorf("kept only %v of held-out good docs", frac)
	}
	if frac := float64(droppedBad) / float64(len(testBad)); frac < 0.8 {
		t.Errorf("dropped only %v of held-out bad docs", frac)
	}
}

func TestClassifierFilterMargin(t *testing.T) {
	good, bad, _, testBad := classifierFixture(t)
	f, err := FitClassifierFilter(embed.NewHashEmbedder(embed.DefaultDim), good, bad)
	if err != nil {
		t.Fatal(err)
	}
	strict := *f
	strict.Margin = -0.2
	lax := *f
	lax.Margin = 0.5
	strictDrops, laxDrops := 0, 0
	for _, d := range testBad {
		if ok, _ := strict.Keep(d); !ok {
			strictDrops++
		}
		if ok, _ := lax.Keep(d); !ok {
			laxDrops++
		}
	}
	if strictDrops < laxDrops {
		t.Errorf("negative margin dropped fewer (%d) than positive (%d)", strictDrops, laxDrops)
	}
}

func TestClassifierFilterValidation(t *testing.T) {
	e := embed.NewHashEmbedder(32)
	if _, err := FitClassifierFilter(e, nil, []string{"x"}); err == nil {
		t.Error("missing good seed accepted")
	}
	if _, err := FitClassifierFilter(e, []string{"x"}, nil); err == nil {
		t.Error("missing bad seed accepted")
	}
}

func TestClassifierScoreOrdering(t *testing.T) {
	good, bad, testGood, testBad := classifierFixture(t)
	f, err := FitClassifierFilter(embed.NewHashEmbedder(embed.DefaultDim), good, bad)
	if err != nil {
		t.Fatal(err)
	}
	var goodMean, badMean float32
	for _, d := range testGood {
		goodMean += f.Score(d)
	}
	goodMean /= float32(len(testGood))
	for _, d := range testBad {
		badMean += f.Score(d)
	}
	badMean /= float32(len(testBad))
	if goodMean <= badMean {
		t.Errorf("good mean score %v <= bad mean %v", goodMean, badMean)
	}
}

func TestClassifierComposesWithHeuristics(t *testing.T) {
	c := testCorpus(t, 97)
	var good, bad []string
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean && len(good) < 50 {
			good = append(good, d.Text)
		}
		if (d.Kind == corpus.Noisy || d.Kind == corpus.Boilerplate) && len(bad) < 15 {
			bad = append(bad, d.Text)
		}
	}
	if len(bad) < 5 {
		t.Skip("not enough bad docs")
	}
	cf, err := FitClassifierFilter(embed.NewHashEmbedder(embed.DefaultDim), good, bad)
	if err != nil {
		t.Fatal(err)
	}
	kept, rep := ApplyFilters(c.Texts(),
		DefaultHeuristicFilter(),
		ToxicityFilter{Lexicon: c.ToxicLexicon},
		cf,
	)
	if rep.Kept != len(kept) {
		t.Error("report mismatch")
	}
	if rep.ByFilter["classifier"] == 0 && rep.ByFilter["heuristic"] == 0 {
		t.Error("neither quality filter fired")
	}
}
