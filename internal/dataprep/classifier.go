package dataprep

import (
	"fmt"

	"dataai/internal/embed"
)

// ClassifierFilter is the learned quality filter the paper cites for data
// cleaning ([10]'s GPT-3 quality classifier, QuRating [62]): a classifier
// trained on examples of wanted and unwanted text scores each candidate
// document. Here it is a nearest-centroid classifier over embeddings with
// a tunable margin — documents closer to the "bad" centroid than
// Margin-adjusted "good" similarity are dropped.
type ClassifierFilter struct {
	emb  embed.Embedder
	good []float32
	bad  []float32
	// Margin biases the decision: positive values keep borderline
	// documents (higher recall of good data), negative values drop them
	// (higher precision). Zero is the unbiased boundary.
	Margin float32
}

// FitClassifierFilter trains the filter from labeled seed sets.
func FitClassifierFilter(e embed.Embedder, goodSeed, badSeed []string) (*ClassifierFilter, error) {
	if len(goodSeed) == 0 || len(badSeed) == 0 {
		return nil, fmt.Errorf("dataprep: classifier filter needs good and bad seeds: %w", ErrNoDocs)
	}
	goodVecs := make([][]float32, len(goodSeed))
	for i, s := range goodSeed {
		goodVecs[i] = e.Embed(s)
	}
	badVecs := make([][]float32, len(badSeed))
	for i, s := range badSeed {
		badVecs[i] = e.Embed(s)
	}
	return &ClassifierFilter{
		emb:  e,
		good: embed.Mean(goodVecs),
		bad:  embed.Mean(badVecs),
	}, nil
}

// Name implements Filter.
func (c *ClassifierFilter) Name() string { return "classifier" }

// Keep implements Filter.
func (c *ClassifierFilter) Keep(text string) (bool, string) {
	v := c.emb.Embed(text)
	goodSim := embed.Cosine(v, c.good)
	badSim := embed.Cosine(v, c.bad)
	if goodSim+c.Margin >= badSim {
		return true, ""
	}
	return false, fmt.Sprintf("classifier: good %.3f < bad %.3f", goodSim, badSim)
}

// Score returns the classifier's margin for a document (positive = more
// good-like), for threshold sweeps and ranking.
func (c *ClassifierFilter) Score(text string) float32 {
	v := c.emb.Embed(text)
	return embed.Cosine(v, c.good) - embed.Cosine(v, c.bad)
}
