package dataprep

import (
	"math/rand"
	"sort"
	"strconv"

	"dataai/internal/embed"
	"dataai/internal/token"
	"dataai/internal/vecdb"
)

// This file implements the data-augmentation techniques of §2.3.2:
// "synonym replacement, data linking, etc." — transformations that grow
// training-set diversity without new collection.

// SynonymAugment produces one augmented copy per document, replacing each
// token found in synonyms with probability rate.
func SynonymAugment(docs []string, synonyms map[string]string, rate float64, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, len(docs))
	for _, d := range docs {
		toks := token.Tokenize(d)
		for i, t := range toks {
			if rep, ok := synonyms[t]; ok && rng.Float64() < rate {
				toks[i] = rep
			}
		}
		out = append(out, token.Detokenize(toks))
	}
	return out
}

// LinkAugment implements data-linking augmentation: each document is
// extended with its nearest neighbor's text, exposing the model to
// related contexts jointly. A singleton corpus passes through unchanged.
func LinkAugment(docs []string, e embed.Embedder) ([]string, error) {
	if len(docs) == 0 {
		return nil, ErrNoDocs
	}
	if len(docs) == 1 {
		return append([]string(nil), docs...), nil
	}
	idx := vecdb.NewFlat(e.Dim())
	for i, d := range docs {
		if err := idx.Add(strconv.Itoa(i), e.Embed(d)); err != nil {
			return nil, err
		}
	}
	out := make([]string, len(docs))
	for i, d := range docs {
		res, err := idx.Search(e.Embed(d), 2)
		if err != nil {
			return nil, err
		}
		out[i] = d
		for _, r := range res {
			if r.ID != strconv.Itoa(i) {
				j, err := strconv.Atoi(r.ID)
				if err != nil {
					return nil, err
				}
				out[i] = d + " " + docs[j]
				break
			}
		}
	}
	return out, nil
}

// BuildSynonymMap derives a crude synonym table from the corpus itself:
// tokens observed between identical (previous, next) token contexts are
// treated as interchangeable — a distributional-similarity heuristic. It
// returns at most maxPairs replacements, deterministically.
func BuildSynonymMap(docs []string, maxPairs int) map[string]string {
	ctx := make(map[string][]string) // context key -> tokens in that slot
	for _, d := range docs {
		toks := token.Tokenize(d)
		for i := 1; i+1 < len(toks); i++ {
			key := toks[i-1] + "\x00" + toks[i+1]
			ctx[key] = append(ctx[key], toks[i])
		}
	}
	keys := make([]string, 0, len(ctx))
	for k := range ctx {
		keys = append(keys, k)
	}
	sort.Strings(keys) // map order must not leak into the output
	out := make(map[string]string)
	for _, k := range keys {
		if len(out) >= maxPairs {
			break
		}
		words := ctx[k]
		if len(words) < 2 {
			continue
		}
		sort.Strings(words)
		a, b := words[0], words[len(words)-1]
		if a == b {
			continue
		}
		if _, dup := out[a]; dup {
			continue
		}
		out[a] = b
	}
	return out
}
