package dataprep

import (
	"fmt"

	"dataai/internal/par"
	"dataai/internal/token"
)

// This file implements the deduplication techniques of §2.3.2 Data
// Cleaning: exact hashing at line and document level [24, 52], and
// MinHash with LSH banding plus SimHash for near-duplicates [29, 46].

// ExactDedup removes documents whose full token stream hashes equal an
// earlier document's. First occurrence wins; order is preserved.
func ExactDedup(docs []string) []string {
	seen := make(map[uint64]bool, len(docs))
	var out []string
	for _, d := range docs {
		h := token.Hash64(normalizeForHash(d))
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, d)
	}
	return out
}

// normalizeForHash canonicalizes whitespace/case so trivially reformatted
// copies hash equal.
func normalizeForHash(d string) string {
	return token.Detokenize(token.Tokenize(d))
}

// LineDedup removes repeated lines across the corpus (the line-level
// dedup of LLaMA's pipeline [52]): any line previously seen in an earlier
// document is dropped from later ones. Documents reduced to nothing are
// removed entirely.
func LineDedup(docs []string) []string {
	seen := make(map[uint64]bool)
	out := make([]string, 0, len(docs))
	for _, d := range docs {
		var keptLines []string
		for _, line := range splitLines(d) {
			h := token.Hash64(normalizeForHash(line))
			if seen[h] {
				continue
			}
			seen[h] = true
			keptLines = append(keptLines, line)
		}
		if len(keptLines) > 0 {
			out = append(out, joinLines(keptLines))
		}
	}
	return out
}

func splitLines(d string) []string {
	var out []string
	start := 0
	for i := 0; i < len(d); i++ {
		if d[i] == '\n' {
			if s := d[start:i]; s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := d[start:]; s != "" {
		out = append(out, s)
	}
	return out
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

// MinHasher computes MinHash signatures over token shingles and groups
// near-duplicates with LSH banding.
type MinHasher struct {
	// NumHashes is the signature length (bands * rowsPerBand).
	NumHashes int
	// Bands for LSH; candidates collide when any band matches exactly.
	Bands int
	// ShingleSize is the n-gram width hashed into the signature.
	ShingleSize int
	// Workers bounds the goroutines Dedup uses for its signature pass;
	// <= 0 means GOMAXPROCS. Signature is a pure function of the
	// document, so the worker count never changes which documents are
	// kept or removed.
	Workers int
	seed    uint64
}

// NewMinHasher validates the configuration. numHashes must be divisible
// by bands.
func NewMinHasher(numHashes, bands, shingleSize int, seed uint64) (*MinHasher, error) {
	if numHashes <= 0 || bands <= 0 || shingleSize <= 0 {
		return nil, fmt.Errorf("dataprep: invalid minhash config %d/%d/%d", numHashes, bands, shingleSize)
	}
	if numHashes%bands != 0 {
		return nil, fmt.Errorf("dataprep: numHashes %d not divisible by bands %d", numHashes, bands)
	}
	return &MinHasher{NumHashes: numHashes, Bands: bands, ShingleSize: shingleSize, seed: seed}, nil
}

// Signature computes the document's MinHash signature. Documents shorter
// than the shingle size fall back to unigram shingles.
func (m *MinHasher) Signature(text string) []uint64 {
	toks := token.Tokenize(text)
	n := m.ShingleSize
	if len(toks) < n {
		n = 1
	}
	shingles := token.HashNGrams(toks, n)
	sig := make([]uint64, m.NumHashes)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, sh := range shingles {
		for i := 0; i < m.NumHashes; i++ {
			// Universal-ish hash family: mix shingle hash with per-
			// function constant derived from the seed.
			h := mix(sh ^ (m.seed + uint64(i)*0x9e3779b97f4a7c15))
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// EstimateJaccard estimates the Jaccard similarity of two documents from
// their signatures (the fraction of agreeing hash positions).
func (m *MinHasher) EstimateJaccard(a, b []uint64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}

// Dedup removes near-duplicate documents: LSH banding proposes candidate
// pairs, and candidates whose estimated Jaccard exceeds threshold are
// clustered; only each cluster's first document survives. Returns the
// kept documents and the indices of removed ones.
func (m *MinHasher) Dedup(docs []string, threshold float64) (kept []string, removed []int) {
	// The signature pass dominates Dedup cost and each signature depends
	// only on its own document, so it fans out; sigs[i] lands at index i
	// regardless of completion order, and everything after this line is
	// unchanged serial code.
	sigs := par.Map(len(docs), m.Workers, func(i int) []uint64 {
		return m.Signature(docs[i])
	})
	rows := m.NumHashes / m.Bands
	parent := make([]int, len(docs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	buckets := make(map[uint64][]int)
	for band := 0; band < m.Bands; band++ {
		for k := range buckets {
			delete(buckets, k)
		}
		for i, sig := range sigs {
			h := token.Hash64Seed(fmt.Sprint(sig[band*rows:(band+1)*rows]), uint64(band))
			buckets[h] = append(buckets[h], i)
		}
		for _, group := range buckets {
			for j := 1; j < len(group); j++ {
				a, b := group[0], group[j]
				if m.EstimateJaccard(sigs[a], sigs[b]) >= threshold {
					union(a, b)
				}
			}
		}
	}
	first := make(map[int]int) // cluster root -> first doc index
	for i := range docs {
		r := find(i)
		if f, ok := first[r]; !ok || i < f {
			if !ok {
				first[r] = i
			}
		}
	}
	for i, d := range docs {
		if first[find(i)] == i {
			kept = append(kept, d)
		} else {
			removed = append(removed, i)
		}
	}
	return kept, removed
}

// SimHash computes a 64-bit locality-sensitive fingerprint over token
// n-grams; near-duplicate documents differ in few bits.
func SimHash(text string, shingleSize int) uint64 {
	toks := token.Tokenize(text)
	n := shingleSize
	if n <= 0 {
		n = 3
	}
	if len(toks) < n {
		n = 1
	}
	var counts [64]int
	for _, h := range token.HashNGrams(toks, n) {
		h = mix(h)
		for b := 0; b < 64; b++ {
			if h>>uint(b)&1 == 1 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

// HammingDistance counts differing bits between two SimHash fingerprints.
func HammingDistance(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SimHashDedup removes documents within maxDistance Hamming bits of an
// earlier document. O(n²) comparison — suitable for the corpus sizes the
// experiments use; MinHash LSH is the scalable path.
func SimHashDedup(docs []string, shingleSize, maxDistance int) []string {
	var keptHashes []uint64
	var out []string
	for _, d := range docs {
		h := SimHash(d, shingleSize)
		dup := false
		for _, kh := range keptHashes {
			if HammingDistance(h, kh) <= maxDistance {
				dup = true
				break
			}
		}
		if !dup {
			keptHashes = append(keptHashes, h)
			out = append(out, d)
		}
	}
	return out
}

// DedupReport compares document counts before/after for experiment
// tables.
type DedupReport struct {
	Before, After int
}

// Removed reports how many documents were eliminated.
func (r DedupReport) Removed() int { return r.Before - r.After }
