package dataprep

import (
	"math"
	"testing"

	"dataai/internal/corpus"
)

// mixtureFixture builds per-domain pools and a finance target/held-out.
func mixtureFixture(t *testing.T) (DomainPool, []string, []string) {
	t.Helper()
	c := testCorpus(t, 71)
	pool := DomainPool{}
	var target, heldOut []string
	finSeen := 0
	for _, d := range c.Docs {
		if d.Kind != corpus.Clean {
			continue
		}
		if d.Domain == "finance" && finSeen < 40 {
			if finSeen < 15 {
				target = append(target, d.Text)
			} else {
				heldOut = append(heldOut, d.Text)
			}
			finSeen++
			continue
		}
		pool[d.Domain] = append(pool[d.Domain], d.Text)
	}
	return pool, target, heldOut
}

func mixSums(t *testing.T, m Mixture) {
	t.Helper()
	var sum float64
	for _, w := range m {
		if w < 0 {
			t.Fatalf("negative weight in %v", m)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mixture sums to %v: %v", sum, m)
	}
}

func TestUniformAndProportionalMixtures(t *testing.T) {
	pool := DomainPool{"a": {"x", "y", "z"}, "b": {"w"}}
	u := UniformMixture(pool)
	mixSums(t, u)
	if u["a"] != 0.5 {
		t.Errorf("uniform a = %v", u["a"])
	}
	p := ProportionalMixture(pool)
	mixSums(t, p)
	if p["a"] != 0.75 || p["b"] != 0.25 {
		t.Errorf("proportional = %v", p)
	}
}

func TestSampleRespectsWeights(t *testing.T) {
	pool := DomainPool{}
	for i := 0; i < 100; i++ {
		pool["a"] = append(pool["a"], "doc a")
		pool["b"] = append(pool["b"], "doc b")
	}
	mix := Mixture{"a": 0.8, "b": 0.2}
	sample, err := pool.Sample(mix, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 50 {
		t.Fatalf("sample size = %d", len(sample))
	}
	na := 0
	for _, d := range sample {
		if d == "doc a" {
			na++
		}
	}
	if na < 35 || na > 45 {
		t.Errorf("domain a docs = %d, want ~40", na)
	}
}

func TestSampleSpillsWhenPoolExhausted(t *testing.T) {
	pool := DomainPool{"a": {"1", "2"}, "b": {"3", "4", "5", "6"}}
	mix := Mixture{"a": 0.9, "b": 0.1}
	sample, err := pool.Sample(mix, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 5 {
		t.Errorf("sample size = %d, want 5 (spill)", len(sample))
	}
	// Budget beyond total pool returns everything.
	sample, err = pool.Sample(mix, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 6 {
		t.Errorf("exhausted sample = %d, want 6", len(sample))
	}
}

func TestSampleValidation(t *testing.T) {
	if _, err := (DomainPool{}).Sample(Mixture{}, 5, 1); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := (DomainPool{"a": {"x"}}).Sample(Mixture{"a": 1}, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestImportanceMixtureFavorsTargetDomain(t *testing.T) {
	pool, target, _ := mixtureFixture(t)
	// Add a finance pool so importance weighting has the right domain
	// available (fixture routed extra finance docs into the pool).
	mix, err := ImportanceMixture(pool, target)
	if err != nil {
		t.Fatal(err)
	}
	mixSums(t, mix)
	// finance docs remaining in pool should get the top weight.
	best, bestW := "", -1.0
	for d, w := range mix {
		if w > bestW {
			best, bestW = d, w
		}
	}
	if best != "finance" {
		t.Errorf("importance mixture favors %q (%v), want finance", best, mix)
	}
}

func TestGradientMixtureFavorsTargetDomain(t *testing.T) {
	pool, target, _ := mixtureFixture(t)
	mix, err := GradientMixture(pool, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	mixSums(t, mix)
	best, bestW := "", -1.0
	for d, w := range mix {
		if w > bestW {
			best, bestW = d, w
		}
	}
	if best != "finance" {
		t.Errorf("gradient mixture favors %q (%v), want finance", best, mix)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := ImportanceMixture(DomainPool{}, []string{"t"}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := ImportanceMixture(DomainPool{"a": {"x"}}, nil); err == nil {
		t.Error("no target accepted")
	}
	if _, err := GradientMixture(DomainPool{}, []string{"t"}, 1); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := GradientMixture(DomainPool{"a": {"x"}}, nil, 1); err == nil {
		t.Error("no target accepted")
	}
}

func TestOptimizedMixturesBeatUniform(t *testing.T) {
	// E6's claim: the mixture ratio matters, and target-aware ratios beat
	// target-blind ones on target-domain perplexity.
	pool, target, heldOut := mixtureFixture(t)
	const budget = 80

	ppUniform, err := EvaluateMixture(pool, UniformMixture(pool), heldOut, budget, 3)
	if err != nil {
		t.Fatal(err)
	}
	impMix, err := ImportanceMixture(pool, target)
	if err != nil {
		t.Fatal(err)
	}
	ppImportance, err := EvaluateMixture(pool, impMix, heldOut, budget, 3)
	if err != nil {
		t.Fatal(err)
	}
	gradMix, err := GradientMixture(pool, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	ppGradient, err := EvaluateMixture(pool, gradMix, heldOut, budget, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ppImportance >= ppUniform {
		t.Errorf("importance mixture ppl %v >= uniform %v", ppImportance, ppUniform)
	}
	if ppGradient >= ppUniform {
		t.Errorf("gradient mixture ppl %v >= uniform %v", ppGradient, ppUniform)
	}
}
