// Package dataprep implements the Data Preparation stage of Data4LLM
// (§2.3.2): discovery (domain mixture), selection (coresets, perplexity),
// cleaning (quality filtering, toxicity filtering, deduplication),
// augmentation, labeling (weak supervision, active learning), and
// synthesis. Each sub-area follows the specific techniques the paper
// cites; see the per-file comments.
package dataprep

import (
	"errors"
	"fmt"
	"strings"

	"dataai/internal/llm/ngram"
	"dataai/internal/token"
)

// ErrNoDocs indicates an operation over an empty document list.
var ErrNoDocs = errors.New("dataprep: no documents")

// Filter decides whether a document is kept.
type Filter interface {
	// Keep reports whether text passes the filter. Reason describes a
	// rejection (empty when kept).
	Keep(text string) (keep bool, reason string)
	// Name identifies the filter in reports.
	Name() string
}

// HeuristicFilter applies the rule-based quality checks production
// pipelines use ([41, 46]): length bounds, repetition ratio, and a
// minimum fraction of "common" words drawn from a reference vocabulary.
type HeuristicFilter struct {
	// MinTokens and MaxTokens bound document length (0 = unbounded max).
	MinTokens int
	MaxTokens int
	// MaxRepetitionRatio caps the frequency share of the single most
	// common token (gibberish and boilerplate repeat heavily).
	MaxRepetitionRatio float64
	// MinDistinctRatio requires distinct/total tokens above a floor.
	MinDistinctRatio float64
	// RequireSentencePunct demands at least one sentence terminator —
	// the C4 rule [46] that drops non-prose text (gibberish streams,
	// menus, code dumps rarely end sentences).
	RequireSentencePunct bool
}

// DefaultHeuristicFilter returns the configuration used by the E8
// experiment.
func DefaultHeuristicFilter() HeuristicFilter {
	return HeuristicFilter{
		MinTokens:            8,
		MaxTokens:            100000,
		MaxRepetitionRatio:   0.25,
		MinDistinctRatio:     0.3,
		RequireSentencePunct: true,
	}
}

// Name implements Filter.
func (h HeuristicFilter) Name() string { return "heuristic" }

// Keep implements Filter.
func (h HeuristicFilter) Keep(text string) (bool, string) {
	toks := token.Tokenize(text)
	n := len(toks)
	if n < h.MinTokens {
		return false, fmt.Sprintf("too short: %d < %d tokens", n, h.MinTokens)
	}
	if h.MaxTokens > 0 && n > h.MaxTokens {
		return false, fmt.Sprintf("too long: %d > %d tokens", n, h.MaxTokens)
	}
	freq := token.Frequencies(toks)
	maxCount := 0
	for _, c := range freq {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.MaxRepetitionRatio > 0 && float64(maxCount)/float64(n) > h.MaxRepetitionRatio {
		return false, "excessive repetition"
	}
	if h.MinDistinctRatio > 0 && float64(len(freq))/float64(n) < h.MinDistinctRatio {
		return false, "low vocabulary diversity"
	}
	if h.RequireSentencePunct && !strings.ContainsAny(text, ".!?") {
		return false, "no sentence punctuation"
	}
	return true, ""
}

// ToxicityFilter rejects documents containing lexicon terms — the
// heuristic rule-based toxic filtering of [30, 46].
type ToxicityFilter struct {
	Lexicon []string
}

// Name implements Filter.
func (t ToxicityFilter) Name() string { return "toxicity" }

// Keep implements Filter.
func (t ToxicityFilter) Keep(text string) (bool, string) {
	lower := strings.ToLower(text)
	for _, w := range t.Lexicon {
		if strings.Contains(lower, strings.ToLower(w)) {
			return false, "toxic term: " + w
		}
	}
	return true, ""
}

// PerplexityFilter rejects documents whose perplexity under a reference
// language model exceeds a threshold — the metric-based filtering of [39]:
// text unlike known-good text scores high and is dropped.
type PerplexityFilter struct {
	Reference *ngram.Model
	Threshold float64
}

// NewPerplexityFilter trains a reference model on seed documents assumed
// clean and sets the rejection threshold to scale times the mean
// perplexity of a held-out portion of the seed. Calibrating on held-out
// seed (not in-sample) matters: a model scores its own training text far
// below unseen clean text, and an in-sample threshold would reject most
// clean documents.
func NewPerplexityFilter(seed []string, scale float64) (*PerplexityFilter, error) {
	if len(seed) < 2 {
		return nil, fmt.Errorf("dataprep: perplexity filter needs >= 2 seed docs: %w", ErrNoDocs)
	}
	calib := len(seed) / 5
	if calib < 1 {
		calib = 1
	}
	train, holdout := seed[calib:], seed[:calib]
	m := ngram.New()
	m.TrainAll(train)
	var sum float64
	n := 0
	for _, s := range holdout {
		pp, err := m.Perplexity(s)
		if err != nil {
			continue
		}
		sum += pp
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("dataprep: seed documents all empty")
	}
	if scale <= 0 {
		scale = 3
	}
	// Fold the held-out docs into the final reference model so no seed
	// data is wasted at filter time.
	m.TrainAll(holdout)
	return &PerplexityFilter{Reference: m, Threshold: scale * sum / float64(n)}, nil
}

// Name implements Filter.
func (p *PerplexityFilter) Name() string { return "perplexity" }

// Keep implements Filter.
func (p *PerplexityFilter) Keep(text string) (bool, string) {
	pp, err := p.Reference.Perplexity(text)
	if err != nil {
		return false, "empty document"
	}
	if pp > p.Threshold {
		return false, fmt.Sprintf("perplexity %.1f > %.1f", pp, p.Threshold)
	}
	return true, ""
}

// FilterReport tallies one cleaning pass.
type FilterReport struct {
	Kept    int
	Dropped int
	// ByReason counts rejections per "<filter>: <reason>" string prefix
	// (filter name only, to keep cardinality bounded).
	ByFilter map[string]int
}

// ApplyFilters runs docs through filters in order (cheap rules first by
// convention) and returns the surviving texts with a report.
func ApplyFilters(docs []string, filters ...Filter) ([]string, FilterReport) {
	rep := FilterReport{ByFilter: make(map[string]int)}
	var kept []string
outer:
	for _, d := range docs {
		for _, f := range filters {
			if ok, _ := f.Keep(d); !ok {
				rep.Dropped++
				rep.ByFilter[f.Name()]++
				continue outer
			}
		}
		kept = append(kept, d)
		rep.Kept++
	}
	return kept, rep
}
