package dataprep

import (
	"strings"
	"testing"

	"dataai/internal/corpus"
)

func testCorpus(t *testing.T, seed int64) *corpus.Corpus {
	t.Helper()
	gen, err := corpus.NewGenerator(corpus.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate()
}

func TestHeuristicFilterRules(t *testing.T) {
	f := DefaultHeuristicFilter()
	cases := []struct {
		text string
		keep bool
	}{
		{"short", false}, // too few tokens
		{"a perfectly normal sentence with enough distinct words to pass all checks.", true},
		{strings.Repeat("spam ", 50), false},                                 // repetition
		{"zzqab zzqcd zzqef zzqgh zzqij zzqkl zzqmn zzqop zzqqr", false},     // gibberish: no sentence punctuation
		{"one two three four five six seven eight nine ten and done.", true}, // diverse, punctuated
	}
	for _, c := range cases {
		keep, reason := f.Keep(c.text)
		if keep != c.keep {
			t.Errorf("Keep(%.30q) = %v (%s), want %v", c.text, keep, reason, c.keep)
		}
	}
}

func TestHeuristicFilterMaxTokens(t *testing.T) {
	f := HeuristicFilter{MinTokens: 1, MaxTokens: 5}
	if keep, _ := f.Keep("one two three four five six"); keep {
		t.Error("over-long doc kept")
	}
}

func TestToxicityFilter(t *testing.T) {
	f := ToxicityFilter{Lexicon: []string{"grubflark"}}
	if keep, _ := f.Keep("contains the word Grubflark here"); keep {
		t.Error("toxic doc kept (case-insensitive match expected)")
	}
	if keep, _ := f.Keep("perfectly fine text"); !keep {
		t.Error("clean doc dropped")
	}
}

func TestPerplexityFilterSeparatesGibberish(t *testing.T) {
	c := testCorpus(t, 41)
	var clean, noisy []string
	for _, d := range c.Docs {
		switch d.Kind {
		case corpus.Clean:
			clean = append(clean, d.Text)
		case corpus.Noisy:
			noisy = append(noisy, d.Text)
		}
	}
	f, err := NewPerplexityFilter(clean[:100], 3)
	if err != nil {
		t.Fatal(err)
	}
	keptClean := 0
	for _, d := range clean[100:150] {
		if ok, _ := f.Keep(d); ok {
			keptClean++
		}
	}
	droppedNoisy := 0
	for _, d := range noisy {
		if ok, _ := f.Keep(d); !ok {
			droppedNoisy++
		}
	}
	if frac := float64(keptClean) / 50; frac < 0.8 {
		t.Errorf("perplexity filter kept only %v of clean docs", frac)
	}
	if len(noisy) > 0 && float64(droppedNoisy)/float64(len(noisy)) < 0.8 {
		t.Errorf("perplexity filter dropped only %d/%d noisy docs", droppedNoisy, len(noisy))
	}
}

func TestNewPerplexityFilterValidation(t *testing.T) {
	if _, err := NewPerplexityFilter(nil, 3); err == nil {
		t.Error("empty seed accepted")
	}
	if _, err := NewPerplexityFilter([]string{""}, 3); err == nil {
		t.Error("all-empty seed accepted")
	}
}

func TestApplyFiltersReport(t *testing.T) {
	c := testCorpus(t, 43)
	docs := c.Texts()
	kept, rep := ApplyFilters(docs,
		DefaultHeuristicFilter(),
		ToxicityFilter{Lexicon: c.ToxicLexicon},
	)
	if rep.Kept+rep.Dropped != len(docs) {
		t.Errorf("report counts %d+%d != %d", rep.Kept, rep.Dropped, len(docs))
	}
	if len(kept) != rep.Kept {
		t.Errorf("kept mismatch %d vs %d", len(kept), rep.Kept)
	}
	// Every toxic doc must be gone.
	for _, d := range kept {
		for _, w := range c.ToxicLexicon {
			if strings.Contains(d, w) {
				t.Fatalf("toxic doc survived filtering")
			}
		}
	}
	if rep.ByFilter["toxicity"] == 0 {
		t.Error("toxicity filter fired zero times on a corpus with toxic docs")
	}
	if rep.ByFilter["heuristic"] == 0 {
		t.Error("heuristic filter fired zero times on a corpus with noisy docs")
	}
}

func TestFilteringImprovesModelQuality(t *testing.T) {
	// The E8 claim in miniature: training on filtered data yields lower
	// held-out perplexity per training token than training on raw data.
	c := testCorpus(t, 47)
	var heldOut []string
	var raw []string
	cleanSeen := 0
	for _, d := range c.Docs {
		if d.Kind == corpus.Clean && cleanSeen < 60 {
			heldOut = append(heldOut, d.Text)
			cleanSeen++
			continue
		}
		raw = append(raw, d.Text)
	}
	filtered, _ := ApplyFilters(raw, DefaultHeuristicFilter(), ToxicityFilter{Lexicon: c.ToxicLexicon})

	ppRaw := trainAndScore(t, raw, heldOut)
	ppFiltered := trainAndScore(t, filtered, heldOut)
	if ppFiltered >= ppRaw {
		t.Errorf("filtered ppl %v >= raw %v", ppFiltered, ppRaw)
	}
}
