package dataprep

import (
	"fmt"
	"sort"

	"dataai/internal/embed"
	"dataai/internal/llm"
)

// This file implements the data-labeling techniques of §2.3.2:
// "crowdsourced labelling, weak supervision, model-based labelling,
// transfer learning, active learning". Weak supervision combines noisy
// labeling functions; active learning spends an oracle budget on the
// most uncertain examples; model-based labeling delegates to the LLM.

// Abstain is the labeling-function output meaning "no opinion".
const Abstain = ""

// LabelingFunc is one weak-supervision source: a cheap heuristic that
// labels some documents and abstains on the rest.
type LabelingFunc struct {
	Name string
	Fn   func(text string) string
}

// MajorityVote labels each document by the most common non-abstain LF
// output; ties break lexicographically, all-abstain yields Abstain.
func MajorityVote(fns []LabelingFunc, docs []string) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		votes := map[string]float64{}
		for _, f := range fns {
			if l := f.Fn(d); l != Abstain {
				votes[l]++
			}
		}
		out[i] = argmaxLabel(votes)
	}
	return out
}

func argmaxLabel(votes map[string]float64) string {
	labels := make([]string, 0, len(votes))
	for l := range votes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	best, bestW := Abstain, 0.0
	for _, l := range labels {
		if votes[l] > bestW {
			best, bestW = l, votes[l]
		}
	}
	return best
}

// LabelModel estimates per-LF reliability from inter-function agreement
// (one round of the classic weak-supervision EM: initial majority vote,
// then weight each LF by its agreement with the vote) and labels by
// weighted vote. This is the "weak supervision" combiner Evaporate-style
// systems use.
type LabelModel struct {
	Weights map[string]float64
}

// FitLabelModel learns LF weights on the given documents.
func FitLabelModel(fns []LabelingFunc, docs []string) (*LabelModel, error) {
	if len(docs) == 0 {
		return nil, ErrNoDocs
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("dataprep: no labeling functions")
	}
	initial := MajorityVote(fns, docs)
	m := &LabelModel{Weights: make(map[string]float64, len(fns))}
	for _, f := range fns {
		agree, fired := 0, 0
		for i, d := range docs {
			l := f.Fn(d)
			if l == Abstain || initial[i] == Abstain {
				continue
			}
			fired++
			if l == initial[i] {
				agree++
			}
		}
		w := 0.5 // uninformative prior for never-firing functions
		if fired > 0 {
			w = float64(agree) / float64(fired)
		}
		m.Weights[f.Name] = w
	}
	return m, nil
}

// Label applies the weighted vote.
func (m *LabelModel) Label(fns []LabelingFunc, docs []string) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		votes := map[string]float64{}
		for _, f := range fns {
			if l := f.Fn(d); l != Abstain {
				votes[l] += m.Weights[f.Name]
			}
		}
		out[i] = argmaxLabel(votes)
	}
	return out
}

// ModelLabel is model-based labeling: the LLM classifies each document
// into one of labels. It returns the predicted labels and the total cost.
func ModelLabel(client llm.Client, labels []string, docs []string) ([]string, float64, error) {
	out := make([]string, len(docs))
	var cost float64
	for i, d := range docs {
		resp, err := client.Complete(llm.Request{Prompt: llm.ClassifyPrompt(labels, d)})
		if err != nil {
			return nil, cost, fmt.Errorf("dataprep: model label %d: %w", i, err)
		}
		out[i] = resp.Text
		cost += resp.CostUSD
	}
	return out, cost, nil
}

// ActiveLearner labels a corpus with a limited oracle budget: a
// nearest-centroid classifier over embeddings is retrained as labels
// arrive, and each round queries the oracle on the document the current
// classifier is least certain about (smallest margin between the two
// nearest centroids) — uncertainty sampling.
type ActiveLearner struct {
	Embedder embed.Embedder
	// Oracle returns the true label of document i (a human annotator in
	// the paper's framing; ground truth in the experiments).
	Oracle func(i int) string
}

// Run queries the oracle budget times and returns predicted labels for
// every document plus the indices that were queried.
func (a ActiveLearner) Run(docs []string, budget int) (labels []string, queried []int, err error) {
	if len(docs) == 0 {
		return nil, nil, ErrNoDocs
	}
	if a.Embedder == nil || a.Oracle == nil {
		return nil, nil, fmt.Errorf("dataprep: active learner needs embedder and oracle")
	}
	if budget > len(docs) {
		budget = len(docs)
	}
	vecs := make([][]float32, len(docs))
	for i, d := range docs {
		vecs[i] = a.Embedder.Embed(d)
	}
	known := make(map[int]string)
	// Seed with the first document (no classifier exists yet).
	if budget > 0 {
		known[0] = a.Oracle(0)
		queried = append(queried, 0)
	}
	for len(known) < budget {
		cents := centroids(vecs, known)
		// Most uncertain unlabeled doc: smallest margin.
		best, bestMargin := -1, float32(2)
		for i := range docs {
			if _, ok := known[i]; ok {
				continue
			}
			m := margin(vecs[i], cents)
			if m < bestMargin {
				best, bestMargin = i, m
			}
		}
		if best < 0 {
			break
		}
		known[best] = a.Oracle(best)
		queried = append(queried, best)
	}
	cents := centroids(vecs, known)
	labels = make([]string, len(docs))
	for i := range docs {
		if l, ok := known[i]; ok {
			labels[i] = l
			continue
		}
		labels[i] = nearest(vecs[i], cents)
	}
	return labels, queried, nil
}

func centroids(vecs [][]float32, known map[int]string) map[string][]float32 {
	// Group in sorted key order: Mean accumulates floats, so membership
	// order changes the centroid in the last ulp — map iteration order
	// here would make labeling nondeterministic across runs.
	idxs := make([]int, 0, len(known))
	for i := range known {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	groups := map[string][][]float32{}
	for _, i := range idxs {
		groups[known[i]] = append(groups[known[i]], vecs[i])
	}
	out := map[string][]float32{}
	for l, vs := range groups {
		out[l] = embed.Mean(vs)
	}
	return out
}

// margin returns best-similarity minus second-best; with < 2 centroids
// everything is maximally uncertain (margin 0).
func margin(v []float32, cents map[string][]float32) float32 {
	if len(cents) < 2 {
		return 0
	}
	best, second := float32(-2), float32(-2)
	for _, c := range cents {
		s := embed.Cosine(v, c)
		if s > best {
			second = best
			best = s
		} else if s > second {
			second = s
		}
	}
	return best - second
}

func nearest(v []float32, cents map[string][]float32) string {
	labels := make([]string, 0, len(cents))
	for l := range cents {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	best, bestSim := Abstain, float32(-2)
	for _, l := range labels {
		if s := embed.Cosine(v, cents[l]); s > bestSim {
			best, bestSim = l, s
		}
	}
	return best
}

// LabelAccuracy scores predictions against gold labels, ignoring
// Abstain predictions in neither numerator nor denominator (they count
// as wrong).
func LabelAccuracy(pred, gold []string) float64 {
	if len(pred) == 0 || len(pred) != len(gold) {
		return 0
	}
	right := 0
	for i := range pred {
		if pred[i] == gold[i] {
			right++
		}
	}
	return float64(right) / float64(len(pred))
}
