package dataprep

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dataai/internal/llm/ngram"
)

// This file implements the data-discovery techniques of §2.3.2:
// "establishing an appropriate domain mixture ratio is crucial for
// effective pretraining" — heuristic ratios [16, 20], importance
// resampling (DSIR [64]), and gradient-style domain reweighting
// (DoGE [18]).

// DomainPool holds candidate documents per domain.
type DomainPool map[string][]string

// domains returns pool names sorted for determinism.
func (p DomainPool) domains() []string {
	out := make([]string, 0, len(p))
	for d := range p {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// total counts all pooled documents.
func (p DomainPool) total() int {
	n := 0
	for _, docs := range p {
		n += len(docs)
	}
	return n
}

// Mixture assigns a sampling weight to each domain; weights sum to 1.
type Mixture map[string]float64

// Sample draws budget documents according to the mixture (without
// replacement within each domain; a domain exhausting its pool yields
// what it has and the remainder spills into other domains by weight).
func (p DomainPool) Sample(mix Mixture, budget int, seed int64) ([]string, error) {
	if p.total() == 0 {
		return nil, ErrNoDocs
	}
	if budget < 1 {
		return nil, fmt.Errorf("dataprep: budget must be >= 1, got %d", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	domains := p.domains()

	// Initial per-domain quotas.
	quota := make(map[string]int, len(domains))
	assigned := 0
	for _, d := range domains {
		q := int(math.Floor(mix[d] * float64(budget)))
		if q > len(p[d]) {
			q = len(p[d])
		}
		quota[d] = q
		assigned += q
	}
	// Spill remaining budget round-robin into domains with spare docs.
	for assigned < budget {
		progressed := false
		for _, d := range domains {
			if assigned >= budget {
				break
			}
			if quota[d] < len(p[d]) {
				quota[d]++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			break // every pool exhausted
		}
	}

	var out []string
	for _, d := range domains {
		perm := rng.Perm(len(p[d]))
		for i := 0; i < quota[d]; i++ {
			out = append(out, p[d][perm[i]])
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// UniformMixture weights every domain equally.
func UniformMixture(p DomainPool) Mixture {
	m := Mixture{}
	domains := p.domains()
	for _, d := range domains {
		m[d] = 1 / float64(len(domains))
	}
	return m
}

// ProportionalMixture weights domains by pool size — the "experimental
// heuristics and intuitions" baseline [16, 20]: big sources dominate.
func ProportionalMixture(p DomainPool) Mixture {
	m := Mixture{}
	total := float64(p.total())
	for _, d := range p.domains() {
		m[d] = float64(len(p[d])) / total
	}
	return m
}

// ImportanceMixture implements DSIR-style importance resampling [64]:
// two n-gram models estimate the target and the general (pooled)
// distributions; each domain's weight is the average importance
// exp(log p_target - log p_general) of its documents, normalized.
func ImportanceMixture(p DomainPool, target []string) (Mixture, error) {
	if p.total() == 0 {
		return nil, ErrNoDocs
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("dataprep: importance mixture needs a target set")
	}
	tm := ngram.New()
	tm.TrainAll(target)
	gm := ngram.New()
	for _, d := range p.domains() {
		gm.TrainAll(p[d])
	}
	m := Mixture{}
	var sum float64
	for _, d := range p.domains() {
		var imp float64
		n := 0
		for _, doc := range p[d] {
			ht, err1 := tm.CrossEntropy(doc)
			hg, err2 := gm.CrossEntropy(doc)
			if err1 != nil || err2 != nil {
				continue
			}
			// log2 importance per token; clamp to avoid one outlier
			// dominating the average.
			li := hg - ht
			if li > 10 {
				li = 10
			}
			if li < -10 {
				li = -10
			}
			imp += math.Exp2(li)
			n++
		}
		if n > 0 {
			m[d] = imp / float64(n)
		}
		sum += m[d]
	}
	if sum == 0 {
		return UniformMixture(p), nil
	}
	for d := range m {
		m[d] /= sum
	}
	return m, nil
}

// GradientMixture implements DoGE-style reweighting [18]: it trains a
// probe model per domain, measures each domain's generalization to the
// target (held-out perplexity), and softmax-weights domains by how much
// they help. Temperature controls sharpness (default 1 bit).
func GradientMixture(p DomainPool, target []string, temperature float64) (Mixture, error) {
	if p.total() == 0 {
		return nil, ErrNoDocs
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("dataprep: gradient mixture needs a target set")
	}
	if temperature <= 0 {
		temperature = 1
	}
	// Per-domain probe: cross-entropy of the target under a model
	// trained on that domain alone — the (negated) "contribution
	// gradient" of adding that domain's data.
	ce := map[string]float64{}
	for _, d := range p.domains() {
		probe := ngram.New()
		probe.TrainAll(p[d])
		var bits float64
		n := 0
		for _, t := range target {
			h, err := probe.CrossEntropy(t)
			if err != nil {
				continue
			}
			bits += h
			n++
		}
		if n == 0 {
			continue
		}
		ce[d] = bits / float64(n)
	}
	if len(ce) == 0 {
		return UniformMixture(p), nil
	}
	// Softmax over negative cross-entropy: lower target CE -> higher
	// weight.
	minCE := math.Inf(1)
	for _, v := range ce {
		if v < minCE {
			minCE = v
		}
	}
	m := Mixture{}
	var sum float64
	for d, v := range ce {
		w := math.Exp2(-(v - minCE) / temperature)
		m[d] = w
		sum += w
	}
	for d := range m {
		m[d] /= sum
	}
	return m, nil
}

// EvaluateMixture trains an n-gram model on a mixture-sampled budget and
// reports held-out target perplexity — the E6 experiment's measurement.
func EvaluateMixture(p DomainPool, mix Mixture, target []string, budget int, seed int64) (float64, error) {
	sample, err := p.Sample(mix, budget, seed)
	if err != nil {
		return 0, err
	}
	m := ngram.New()
	m.TrainAll(sample)
	return m.CorpusPerplexity(target)
}
