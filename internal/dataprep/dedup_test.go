package dataprep

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dataai/internal/corpus"
	"dataai/internal/llm/ngram"
)

func trainAndScore(t testing.TB, train, heldOut []string) float64 {
	t.Helper()
	m := ngram.New()
	m.TrainAll(train)
	pp, err := m.CorpusPerplexity(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestExactDedup(t *testing.T) {
	docs := []string{"a b c", "d e f", "A   b c", "d e f"}
	out := ExactDedup(docs)
	if len(out) != 2 {
		t.Fatalf("got %d docs: %v", len(out), out)
	}
	if out[0] != "a b c" || out[1] != "d e f" {
		t.Errorf("order not preserved: %v", out)
	}
}

func TestExactDedupIdempotent(t *testing.T) {
	f := func(docs []string) bool {
		once := ExactDedup(docs)
		twice := ExactDedup(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLineDedup(t *testing.T) {
	docs := []string{
		"unique first\nshared boilerplate line",
		"unique second\nshared boilerplate line",
		"shared boilerplate line",
	}
	out := LineDedup(docs)
	if len(out) != 2 {
		t.Fatalf("got %d docs: %v", len(out), out)
	}
	if strings.Contains(out[1], "boilerplate") {
		t.Errorf("repeated line survived: %q", out[1])
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	m, err := NewMinHasher(128, 16, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := "the quick brown fox jumps over the lazy dog and runs far away into the woods"
	identical := m.EstimateJaccard(m.Signature(base), m.Signature(base))
	if identical != 1 {
		t.Errorf("identical docs estimate = %v", identical)
	}
	near := base + " tonight"
	nearSim := m.EstimateJaccard(m.Signature(base), m.Signature(near))
	if nearSim < 0.5 {
		t.Errorf("near-duplicate estimate = %v, want high", nearSim)
	}
	far := "completely different content about compilers and kernels with zero overlap whatsoever in any shingle"
	farSim := m.EstimateJaccard(m.Signature(base), m.Signature(far))
	if farSim > 0.2 {
		t.Errorf("unrelated estimate = %v, want low", farSim)
	}
	if nearSim <= farSim {
		t.Error("similarity ordering violated")
	}
}

func TestMinHashSimilarityConcentration(t *testing.T) {
	// Property: for random token-swap perturbations, the MinHash estimate
	// tracks true shingle Jaccard within a tolerance.
	m, err := NewMinHasher(256, 32, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	words := strings.Fields("alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu nu xi omicron pi rho sigma tau")
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(30)
		a := make([]string, n)
		for i := range a {
			a[i] = words[rng.Intn(len(words))]
		}
		b := append([]string(nil), a...)
		swaps := rng.Intn(n / 2)
		for i := 0; i < swaps; i++ {
			b[rng.Intn(n)] = words[rng.Intn(len(words))]
		}
		docA, docB := strings.Join(a, " "), strings.Join(b, " ")
		truth := shingleJaccard(docA, docB, 2)
		est := m.EstimateJaccard(m.Signature(docA), m.Signature(docB))
		if diff := truth - est; diff > 0.25 || diff < -0.25 {
			t.Errorf("trial %d: estimate %v far from truth %v", trial, est, truth)
		}
	}
}

func shingleJaccard(a, b string, n int) float64 {
	setA := map[string]bool{}
	for _, g := range ngrams(a, n) {
		setA[g] = true
	}
	setB := map[string]bool{}
	for _, g := range ngrams(b, n) {
		setB[g] = true
	}
	inter := 0
	for g := range setA {
		if setB[g] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func ngrams(s string, n int) []string {
	toks := strings.Fields(s)
	var out []string
	for i := 0; i+n <= len(toks); i++ {
		out = append(out, strings.Join(toks[i:i+n], " "))
	}
	return out
}

func TestMinHashDedupFindsCorpusDuplicates(t *testing.T) {
	c := testCorpus(t, 53)
	docs := c.Texts()
	m, err := NewMinHasher(128, 32, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	kept, removed := m.Dedup(docs, 0.6)
	if len(kept)+len(removed) != len(docs) {
		t.Fatalf("partition broken: %d + %d != %d", len(kept), len(removed), len(docs))
	}
	// Count how many known duplicates were removed.
	dupTotal := c.CountKind(corpus.Duplicate)
	removedSet := map[int]bool{}
	for _, i := range removed {
		removedSet[i] = true
	}
	caught := 0
	for i, d := range c.Docs {
		if d.Kind == corpus.Duplicate && removedSet[i] {
			caught++
		}
	}
	if dupTotal == 0 {
		t.Skip("no duplicates in corpus")
	}
	recall := float64(caught) / float64(dupTotal)
	if recall < 0.6 {
		t.Errorf("dedup recall %v (caught %d/%d)", recall, caught, dupTotal)
	}
	// Boilerplate is identical across docs and also collapses; verify we
	// did not remove most clean docs (precision proxy).
	cleanRemoved := 0
	for i, d := range c.Docs {
		if d.Kind == corpus.Clean && removedSet[i] {
			cleanRemoved++
		}
	}
	if frac := float64(cleanRemoved) / float64(c.CountKind(corpus.Clean)); frac > 0.15 {
		t.Errorf("dedup removed %v of clean docs", frac)
	}
}

func TestNewMinHasherValidation(t *testing.T) {
	if _, err := NewMinHasher(0, 1, 3, 1); err == nil {
		t.Error("zero hashes accepted")
	}
	if _, err := NewMinHasher(100, 7, 3, 1); err == nil {
		t.Error("non-divisible bands accepted")
	}
}

func TestSimHashNearDuplicates(t *testing.T) {
	base := "the quick brown fox jumps over the lazy dog and keeps running through the field all day"
	near := strings.Replace(base, "lazy", "sleepy", 1)
	far := "unrelated discussion of database systems and query optimizers with different vocabulary entirely"
	dNear := HammingDistance(SimHash(base, 3), SimHash(near, 3))
	dFar := HammingDistance(SimHash(base, 3), SimHash(far, 3))
	if dNear >= dFar {
		t.Errorf("near distance %d >= far distance %d", dNear, dFar)
	}
	if HammingDistance(SimHash(base, 3), SimHash(base, 3)) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestSimHashDedup(t *testing.T) {
	docs := []string{
		"aaa bbb ccc ddd eee fff ggg hhh",
		"aaa bbb ccc ddd eee fff ggg xxx", // near dup
		"totally different words in here now",
	}
	out := SimHashDedup(docs, 2, 12)
	if len(out) != 2 {
		t.Errorf("got %d docs: %v", len(out), out)
	}
}

func TestDedupImprovesModelPerTrainingToken(t *testing.T) {
	// The [29] claim: deduplicating training data makes LMs better for a
	// matched training budget.
	// Duplication-heavy corpus — the regime [29] studies: a third of the
	// crawl is near/exact copies, so an undeduplicated training prefix
	// wastes much of its budget restating the same documents.
	cfg := corpus.DefaultConfig(59)
	cfg.DuplicateFraction = 0.35
	cfg.BoilerplateFraction = 0.1
	gen, err := corpus.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Generate()
	// Shuffle first: the corpus is generated domain-by-domain, and a
	// prefix-budget comparison must not conflate dedup with domain mix.
	perm := rand.New(rand.NewSource(59)).Perm(len(c.Docs))
	var heldOut, pool []string
	heldOutIDs := map[string]bool{}
	cleanSeen := 0
	for _, pi := range perm {
		d := c.Docs[pi]
		if d.Kind == corpus.Clean && cleanSeen < 50 {
			heldOut = append(heldOut, d.Text)
			heldOutIDs[d.ID] = true
			cleanSeen++
		}
	}
	for _, pi := range perm {
		d := c.Docs[pi]
		if heldOutIDs[d.ID] {
			continue
		}
		// Duplicates of held-out docs would leak evaluation text into the
		// raw pool and flatter the no-dedup arm.
		if d.Kind == corpus.Duplicate && heldOutIDs[d.DupOf] {
			continue
		}
		pool = append(pool, d.Text)
	}
	m, err := NewMinHasher(128, 32, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	deduped, _ := m.Dedup(pool, 0.6)

	// Matched budget: train both on the same number of documents.
	budget := len(deduped)
	if budget > len(pool) {
		budget = len(pool)
	}
	ppRaw := trainAndScore(t, pool[:budget], heldOut)
	ppDeduped := trainAndScore(t, deduped[:budget], heldOut)
	if ppDeduped >= ppRaw {
		t.Errorf("deduped ppl %v >= raw %v at matched budget %d", ppDeduped, ppRaw, budget)
	}
}

func TestHammingDistance(t *testing.T) {
	if HammingDistance(0, 0) != 0 {
		t.Error("0,0")
	}
	if HammingDistance(0, ^uint64(0)) != 64 {
		t.Error("all bits")
	}
	if HammingDistance(0b1010, 0b0110) != 2 {
		t.Error("2 bits")
	}
}

func BenchmarkMinHashSignature(b *testing.B) {
	m, _ := NewMinHasher(128, 16, 3, 1)
	doc := strings.Repeat("the quick brown fox jumps over the lazy dog ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Signature(doc)
	}
}

func BenchmarkMinHashDedup1k(b *testing.B) {
	var docs []string
	for i := 0; i < 1000; i++ {
		docs = append(docs, fmt.Sprintf("document %d about topic %d with shared boilerplate text", i, i%50))
	}
	m, _ := NewMinHasher(64, 16, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Dedup(docs, 0.7)
	}
}

// dedupCorpus builds a corpus with planted near-duplicates: every fifth
// document is a lightly edited copy of the previous one, so Dedup has
// real clusters to find at any worker count.
func dedupCorpus(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		if i%5 == 4 {
			docs[i] = docs[i-1] + " trailing edit"
			continue
		}
		docs[i] = fmt.Sprintf(
			"report %d covers metric %d for region %d with shared boilerplate text about quarterly performance",
			i, i%13, i%7)
	}
	return docs
}

// TestDedupParallelMatchesSerial: the parallel signature pass changes
// only scheduling, so kept documents and removed indices are identical
// at every worker count.
func TestDedupParallelMatchesSerial(t *testing.T) {
	docs := dedupCorpus(200)
	serial, _ := NewMinHasher(64, 16, 3, 1)
	serial.Workers = 1
	wantKept, wantRemoved := serial.Dedup(docs, 0.7)
	if len(wantRemoved) == 0 {
		t.Fatal("corpus has no near-duplicates; test is vacuous")
	}
	for _, workers := range []int{2, 4, 8, 0} {
		m, _ := NewMinHasher(64, 16, 3, 1)
		m.Workers = workers
		kept, removed := m.Dedup(docs, 0.7)
		if !reflect.DeepEqual(kept, wantKept) || !reflect.DeepEqual(removed, wantRemoved) {
			t.Fatalf("workers=%d: Dedup differs from serial (kept %d vs %d, removed %d vs %d)",
				workers, len(kept), len(wantKept), len(removed), len(wantRemoved))
		}
	}
}

// BenchmarkParDedup: serial vs parallel MinHash dedup at 1/2/4/8
// workers (`go test -bench=Par -benchtime=1x ./...`).
func BenchmarkParDedup(b *testing.B) {
	docs := dedupCorpus(1000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			m, _ := NewMinHasher(64, 16, 3, 1)
			m.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if kept, _ := m.Dedup(docs, 0.7); len(kept) == 0 {
					b.Fatal("empty dedup result")
				}
			}
		})
	}
}
