package dataprep

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dataai/internal/embed"
	"dataai/internal/llm/ngram"
)

// This file implements the data-selection techniques of §2.3.2: random
// baseline, perplexity-based importance scoring [14], cluster-based
// coreset selection [12, 57], and an influence-function proxy [63].
// Every selector returns indices into the input slice so callers keep
// provenance.

// Selector picks a budget-sized subset of documents for training.
type Selector interface {
	// Select returns the indices of the chosen documents, in ascending
	// order. budget is clamped to len(docs).
	Select(docs []string, budget int) ([]int, error)
	// Name identifies the selector in experiment tables.
	Name() string
}

func clampBudget(n, budget int) (int, error) {
	if n == 0 {
		return 0, ErrNoDocs
	}
	if budget < 1 {
		return 0, fmt.Errorf("dataprep: budget must be >= 1, got %d", budget)
	}
	if budget > n {
		budget = n
	}
	return budget, nil
}

// RandomSelector is the baseline: a uniform sample without replacement.
type RandomSelector struct {
	Seed int64
}

// Name implements Selector.
func (r RandomSelector) Name() string { return "random" }

// Select implements Selector.
func (r RandomSelector) Select(docs []string, budget int) ([]int, error) {
	budget, err := clampBudget(len(docs), budget)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(len(docs))[:budget]
	sort.Ints(perm)
	return perm, nil
}

// PerplexitySelector keeps the documents most like a target distribution:
// it trains a reference n-gram model on Target and selects the documents
// with the lowest reference perplexity — "data selection techniques often
// rely on specific importance metrics, such as perplexity" [14].
type PerplexitySelector struct {
	Target []string
}

// Name implements Selector.
func (p PerplexitySelector) Name() string { return "perplexity" }

// Select implements Selector.
func (p PerplexitySelector) Select(docs []string, budget int) ([]int, error) {
	budget, err := clampBudget(len(docs), budget)
	if err != nil {
		return nil, err
	}
	if len(p.Target) == 0 {
		return nil, fmt.Errorf("dataprep: perplexity selector needs a target set")
	}
	ref := ngram.New()
	ref.TrainAll(p.Target)
	type scored struct {
		idx int
		pp  float64
	}
	all := make([]scored, 0, len(docs))
	for i, d := range docs {
		pp, err := ref.Perplexity(d)
		if err != nil {
			pp = math.Inf(1)
		}
		all = append(all, scored{i, pp})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pp != all[j].pp {
			return all[i].pp < all[j].pp
		}
		return all[i].idx < all[j].idx
	})
	out := make([]int, budget)
	for i := 0; i < budget; i++ {
		out[i] = all[i].idx
	}
	sort.Ints(out)
	return out, nil
}

// CoresetSelector picks a diverse representative subset by greedy
// k-center (farthest-point traversal) over document embeddings — the
// cluster-based coreset construction of [12, 57]: each new pick is the
// document farthest from all previous picks, maximizing coverage of the
// embedding space.
type CoresetSelector struct {
	Embedder embed.Embedder
	Seed     int64
}

// Name implements Selector.
func (c CoresetSelector) Name() string { return "coreset" }

// Select implements Selector.
func (c CoresetSelector) Select(docs []string, budget int) ([]int, error) {
	budget, err := clampBudget(len(docs), budget)
	if err != nil {
		return nil, err
	}
	if c.Embedder == nil {
		return nil, fmt.Errorf("dataprep: coreset selector needs an embedder")
	}
	vecs := make([][]float32, len(docs))
	for i, d := range docs {
		vecs[i] = c.Embedder.Embed(d)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	chosen := make([]int, 0, budget)
	start := rng.Intn(len(docs))
	chosen = append(chosen, start)
	// minDist[i] tracks distance from doc i to its nearest chosen center.
	minDist := make([]float32, len(docs))
	for i := range minDist {
		minDist[i] = embed.EuclideanSq(vecs[i], vecs[start])
	}
	for len(chosen) < budget {
		far, farDist := -1, float32(-1)
		for i, d := range minDist {
			if d > farDist {
				far, farDist = i, d
			}
		}
		chosen = append(chosen, far)
		for i := range minDist {
			if d := embed.EuclideanSq(vecs[i], vecs[far]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// InfluenceSelector approximates influence-based selection [63]: each
// document is scored by the cosine similarity of its embedding to the
// centroid of the target set — a first-order proxy for "training on this
// document moves the model toward the target distribution".
type InfluenceSelector struct {
	Embedder embed.Embedder
	Target   []string
}

// Name implements Selector.
func (s InfluenceSelector) Name() string { return "influence" }

// Select implements Selector.
func (s InfluenceSelector) Select(docs []string, budget int) ([]int, error) {
	budget, err := clampBudget(len(docs), budget)
	if err != nil {
		return nil, err
	}
	if s.Embedder == nil || len(s.Target) == 0 {
		return nil, fmt.Errorf("dataprep: influence selector needs an embedder and target set")
	}
	targets := make([][]float32, len(s.Target))
	for i, t := range s.Target {
		targets[i] = s.Embedder.Embed(t)
	}
	centroid := embed.Mean(targets)
	type scored struct {
		idx int
		sim float32
	}
	all := make([]scored, len(docs))
	for i, d := range docs {
		all[i] = scored{i, embed.Cosine(s.Embedder.Embed(d), centroid)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sim != all[j].sim {
			return all[i].sim > all[j].sim
		}
		return all[i].idx < all[j].idx
	})
	out := make([]int, budget)
	for i := 0; i < budget; i++ {
		out[i] = all[i].idx
	}
	sort.Ints(out)
	return out, nil
}

// Pick materializes selected indices into documents.
func Pick(docs []string, idx []int) []string {
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		out = append(out, docs[i])
	}
	return out
}
