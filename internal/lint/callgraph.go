package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph the cross-package analyzers
// walk. It is deliberately simple — and deliberately documented about
// it:
//
//   - Nodes are *types.Func objects, which the shared type-checker makes
//     canonical across every package of one Load: the util.StampNow a
//     caller in internal/sim resolves is the same object util's own
//     analysis saw, so facts attached to it line up.
//   - Edges are static calls only: direct calls to package-level
//     functions and method calls whose selection the checker resolved.
//     Calls through interface values resolve to the interface method
//     object; calls through plain function values (fields, parameters)
//     produce no edge.
//   - Calls inside a function literal are attributed to the enclosing
//     declared function — for taint purposes a closure's body is part of
//     the function that wrote it.
//
// These choices make the graph an under-approximation of dynamic calls
// through function values and an over-approximation of nothing: every
// edge corresponds to a call that can happen. Taint built on it
// therefore never flags an impossible path, at the cost of missing
// laundering through stored function values — the nondeterminism
// analyzer still catches those at the source site.

// CallEdge is one static call site: Caller invokes Callee at Pos.
// Caller is nil for calls outside any function declaration (package
// variable initializers).
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
}

// CallGraph is the static call multigraph of a set of packages.
type CallGraph struct {
	Fset  *token.FileSet
	Edges []CallEdge

	out map[*types.Func][]int // caller → edge indexes, in source order
}

// BuildCallGraph constructs the call graph of the given packages. Edge
// order is deterministic: packages in the order given, files in
// FileSet order, call sites in AST order.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{out: map[*types.Func][]int{}}
	for _, p := range pkgs {
		if g.Fset == nil {
			g.Fset = p.Fset
		}
		for _, f := range p.Files {
			if p.isTestFile(f.Pos()) {
				continue
			}
			addFileEdges(g, p, f)
		}
	}
	return g
}

func addFileEdges(g *CallGraph, p *Package, f *ast.File) {
	inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := p.calleeFunc(call)
		if callee == nil {
			return
		}
		caller := p.enclosingDeclaredFunc(stack)
		idx := len(g.Edges)
		g.Edges = append(g.Edges, CallEdge{Caller: caller, Callee: callee, Pos: call.Pos()})
		if caller != nil {
			g.out[caller] = append(g.out[caller], idx)
		}
	})
}

// CallsFrom returns fn's outgoing edges in source order.
func (g *CallGraph) CallsFrom(fn *types.Func) []CallEdge {
	idxs := g.out[fn]
	out := make([]CallEdge, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.Edges[i])
	}
	return out
}

// Callees returns the distinct functions fn calls, sorted by full name.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, e := range g.CallsFrom(fn) {
		if !seen[e.Callee] {
			seen[e.Callee] = true
			out = append(out, e.Callee)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// calleeFunc resolves the function a call expression statically invokes,
// or nil when the call goes through a function value, a type conversion,
// or a builtin.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

// enclosingDeclaredFunc returns the *types.Func of the innermost
// enclosing function *declaration* on the stack — function literals are
// skipped over, attributing their calls to the declaring function.
func (p *Package) enclosingDeclaredFunc(stack []ast.Node) *types.Func {
	for i := len(stack) - 2; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

// funcDisplayName renders fn for diagnostics: "pkg.Func" or
// "pkg.(*Recv).Method", with pkg the last import-path element.
func funcDisplayName(fn *types.Func) string {
	if fn == nil {
		return "<none>"
	}
	pkg := fn.Pkg()
	prefix := ""
	if pkg != nil {
		path := pkg.Path()
		if i := lastSlash(path); i >= 0 {
			path = path[i+1:]
		}
		prefix = path + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return prefix + "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return prefix + fn.Name()
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
