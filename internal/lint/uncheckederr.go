package lint

import (
	"go/ast"
	"go/types"
)

// The uncheckederr analyzer flags calls whose error result is silently
// discarded — a call used as a bare statement when its (last) result is
// an error. As the ROADMAP pushes toward a concurrent serving stack,
// dropped errors become invisible data corruption; every error is either
// handled, returned, or explicitly assigned to _ (which at least leaves
// a grep-able mark of intent).
//
// Exemptions, to keep the signal high:
//   - test files (helpers there fail the test directly),
//   - fmt.Print/Printf/Println and friends (stdout errors are not
//     actionable in this codebase),
//   - methods on strings.Builder and bytes.Buffer, whose errors are
//     documented to be always nil,
//   - `go` and `defer` statements (the result is unobservable by
//     construction; lockbalance relies on `defer mu.Unlock()`).

func init() {
	Register(&Analyzer{
		Name: "uncheckederr",
		Doc:  "call results of type error discarded in non-test code",
		Run:  runUncheckedErr,
	})
}

// errExemptFmt lists fmt functions whose error results are conventionally
// ignored.
var errExemptFmt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runUncheckedErr(pass *Pass) {
	p := pass.Pkg
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || exemptCall(p, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign to _", callName(call))
			return true
		})
	}
}

// returnsError reports whether call's single or last result is an error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.typeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		return rt.Len() > 0 && isErrorType(rt.At(rt.Len()-1).Type())
	default:
		return isErrorType(rt)
	}
}

func exemptCall(p *Package, call *ast.CallExpr) bool {
	if path, name, ok := p.pkgCall(call); ok {
		return path == "fmt" && errExemptFmt[name]
	}
	// Method call: exempt the never-fails writers.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := p.typeOf(sel.X)
	if recv == nil {
		return false
	}
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders a short name for the called function, for messages.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if root := rootIdent(fun.X); root != nil {
			return root.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
