package lint_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"dataai/internal/lint"
)

// writeTree materializes a map of relative path → contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// otherOS returns a real GOOS that is not the host's, for exercising
// filename and //go:build exclusions that must fire on any machine.
func otherOS(t *testing.T) string {
	t.Helper()
	for _, os := range []string{"windows", "plan9", "linux"} {
		if os != runtime.GOOS {
			return os
		}
	}
	t.Fatal("no alternative GOOS")
	return ""
}

// TestLoadReportAccountsForSkips pins the LoadWithReport contract: a
// test-only package directory and every constraint-excluded file show
// up in the report with a reason — the loader drops nothing silently.
func TestLoadReportAccountsForSkips(t *testing.T) {
	alt := otherOS(t)
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":                "module tmp\n\ngo 1.22\n",
		"a/a.go":                "package a\n\nfunc A() int { return 1 }\n",
		"a/gated.go":            "//go:build neverever\n\npackage a\n\nfunc Gated() {}\n",
		"a/byos_" + alt + ".go": "package a\n\nfunc ByOS() {}\n",
		"testonly/only_test.go": "package testonly\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n",
	})

	pkgs, report, err := lint.LoadWithReport(dir, "./...")
	if err != nil {
		t.Fatalf("LoadWithReport: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "tmp/a" {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.ImportPath)
		}
		t.Fatalf("loaded %v, want exactly [tmp/a]", paths)
	}
	if len(pkgs[0].Files) != 1 {
		t.Errorf("tmp/a loaded %d files, want 1 (a.go only)", len(pkgs[0].Files))
	}

	if len(report.TestOnlyDirs) != 1 || filepath.Base(report.TestOnlyDirs[0]) != "testonly" {
		t.Errorf("TestOnlyDirs = %v, want the testonly dir", report.TestOnlyDirs)
	}
	reasons := map[string]string{}
	for _, sf := range report.SkippedFiles {
		reasons[filepath.Base(sf.Path)] = sf.Reason
	}
	if len(reasons) != 2 {
		t.Fatalf("SkippedFiles = %v, want gated.go and byos_%s.go", report.SkippedFiles, alt)
	}
	if r := reasons["gated.go"]; !strings.Contains(r, "neverever") {
		t.Errorf("gated.go reason = %q, want the unsatisfied constraint named", r)
	}
	if r := reasons["byos_"+alt+".go"]; !strings.Contains(r, "GOOS="+alt) {
		t.Errorf("byos_%s.go reason = %q, want the filename GOOS constraint named", alt, r)
	}
}

// TestLoadLegacyPlusBuildConstraint pins that pre-//go:build files are
// still gated: the conjunction of // +build lines is evaluated.
func TestLoadLegacyPlusBuildConstraint(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":    "module tmp\n\ngo 1.22\n",
		"b/b.go":    "package b\n\nfunc B() {}\n",
		"b/tagd.go": "// +build sometag\n\npackage b\n\nfunc Tagged() {}\n",
	})
	pkgs, report, err := lint.LoadWithReport(dir, "./...")
	if err != nil {
		t.Fatalf("LoadWithReport: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want one package with one file, got %d packages", len(pkgs))
	}
	if len(report.SkippedFiles) != 1 || filepath.Base(report.SkippedFiles[0].Path) != "tagd.go" {
		t.Errorf("SkippedFiles = %v, want tagd.go", report.SkippedFiles)
	}
}

// TestLoadNonRecursiveTestOnlyPattern pins the Load edge case that used
// to error: naming a test-only package directly (no /... wildcard) must
// report it, not fail with "no Go files".
func TestLoadNonRecursiveTestOnlyPattern(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":                "module tmp\n\ngo 1.22\n",
		"testonly/only_test.go": "package testonly\n",
	})
	pkgs, report, err := lint.LoadWithReport(dir, "./testonly")
	if err != nil {
		t.Fatalf("LoadWithReport(./testonly): %v", err)
	}
	if len(pkgs) != 0 {
		t.Errorf("loaded %d packages from a test-only dir, want 0", len(pkgs))
	}
	if len(report.TestOnlyDirs) != 1 {
		t.Errorf("TestOnlyDirs = %v, want the named dir reported", report.TestOnlyDirs)
	}
}

// TestLoadReportsBenchallRaceFile pins the report against the real
// repo: cmd/benchall gates raceEnabled behind //go:build race /
// !race, and a plain load must take exactly the !race file and account
// for the other. (Before build-constraint evaluation the loader parsed
// both, giving the package a silent duplicate-symbol type error.)
func TestLoadReportsBenchallRaceFile(t *testing.T) {
	pkgs, report, err := lint.LoadWithReport("../..", "./cmd/benchall")
	if err != nil {
		t.Fatalf("LoadWithReport: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	found := false
	for _, sf := range report.SkippedFiles {
		if filepath.Base(sf.Path) == "race_on.go" {
			found = true
			if !strings.Contains(sf.Reason, "race") {
				t.Errorf("race_on.go reason = %q, want the race constraint named", sf.Reason)
			}
		}
		if filepath.Base(sf.Path) == "race_off.go" {
			t.Errorf("race_off.go skipped (%s); the !race file must load", sf.Reason)
		}
	}
	if !found {
		t.Errorf("race_on.go not in SkippedFiles: %v", report.SkippedFiles)
	}
}
