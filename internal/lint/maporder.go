package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The maporder analyzer catches the classic silent reproducibility
// killer: Go randomizes map iteration order, so a `for range m` over a
// map that accumulates into a slice — or prints — without an intervening
// sort produces different output on every run. It flags:
//
//   - appends inside a map-range body to a slice declared outside the
//     loop, unless the enclosing function later sorts that slice (any
//     sort.* or slices.Sort* call mentioning the same variable), and
//   - direct output calls (fmt.Print*/Fprint*) inside a map-range body.
//
// The collect-then-sort idiom is recognized and allowed:
//
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	sort.Strings(keys)

func init() {
	Register(&Analyzer{
		Name: "maporder",
		Doc:  "map iteration that accumulates or prints in randomized order",
		Run:  runMapOrder,
	})
}

func runMapOrder(pass *Pass) {
	p := pass.Pkg
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := p.typeOf(rng.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			fn := enclosingFunc(stack)
			checkMapRangeBody(pass, rng, fn)
		})
	}
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	p := pass.Pkg
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(stmt.Lhs) {
					continue
				}
				target := rootIdent(stmt.Lhs[i])
				if target == nil {
					continue
				}
				obj := p.Info.Uses[target]
				if obj == nil {
					obj = p.Info.Defs[target]
				}
				if obj == nil {
					continue
				}
				// A slice created inside the loop body is rebuilt per
				// iteration; order leaks only through outer accumulators.
				if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				if sortedAfter(p, fn, rng, obj) {
					continue
				}
				pass.Reportf(stmt.Pos(),
					"append to %q inside map iteration without a later sort: order is randomized per run", target.Name)
			}
		case *ast.ExprStmt:
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := p.pkgCall(call); ok && path == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(stmt.Pos(),
					"fmt.%s inside map iteration prints in randomized order; collect and sort first", name)
			}
		}
		return true
	})
}

func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin || obj == nil
}

// sortedAfter reports whether, somewhere in fn after the range statement,
// a sorting call mentions obj.
func sortedAfter(p *Package, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		path, name, ok := p.pkgCall(call)
		if !ok {
			return true
		}
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if p.mentionsObject(arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
