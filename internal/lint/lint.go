// Package lint is the repo's own static-analysis layer: a small analyzer
// framework built entirely on the standard library (go/parser, go/ast,
// go/types — no external deps, matching go.mod) plus the repo-specific
// analyzers that enforce the invariants every number in EXPERIMENTS.md
// rests on: determinism under fixed seeds, checked errors, balanced
// lock usage, and — via the fact layer — the absence of wall-clock or
// global-rand influence anywhere on a path into seeded code.
//
// Analyzers register themselves in init functions (the same pattern the
// experiments package uses). cmd/dataailint runs the full suite from the
// command line; lint_selfcheck_test.go at the repo root runs it inside
// `go test ./...` so tier-1 verification permanently includes the linter.
//
// # Suppressions
//
// Findings are suppressed with a comment on the offending line or the
// line directly above it:
//
//	//lint:ignore <check> <reason>
//
// where <check> is the analyzer name (or a comma-separated list). The
// reason is mandatory by convention — a suppression without one should
// not survive review. When the full suite runs (RunAudited, which is
// what cmd/dataailint and the self-check test use), every directive that
// suppressed nothing is itself reported under the synthetic check name
// "staleignore", with a suggested fix that deletes the dead comment —
// suppressions do not outlive the findings they justified.
//
// # Writing an analyzer
//
// An analyzer is a named Run function over one package:
//
//	func init() {
//		Register(&Analyzer{
//			Name: "mycheck",
//			Doc:  "one-line description shown by dataailint -list",
//			Run:  runMyCheck,
//		})
//	}
//
//	func runMyCheck(pass *Pass) {
//		p := pass.Pkg
//		for _, f := range p.Files {
//			if p.isTestFile(f.Pos()) { // most checks skip test code
//				continue
//			}
//			ast.Inspect(f, func(n ast.Node) bool {
//				// consult p.Info (go/types facts) and report:
//				// pass.Reportf(n.Pos(), "explain the invariant, not just the site")
//				return true
//			})
//		}
//	}
//
// Conventions that keep the suite trustworthy:
//
//   - Tolerate missing type info (p.Info lookups return nil on files the
//     checker could not fully resolve); never panic on odd ASTs.
//   - Report the *invariant* the code breaks and the idiomatic repair,
//     not just the location.
//   - Attach a SuggestedFix (pass.ReportFix) when the repair is purely
//     mechanical; `dataailint -fix` applies it.
//   - Add a fixture package under testdata/src/<name> with `// want`
//     expectations plus a clean variant, and extend the roster test.
//
// An analyzer that needs to see across package boundaries declares fact
// types (Analyzer.FactTypes) and communicates through object facts, the
// same shape as go/analysis facts: while analyzing a package it may
// ExportObjectFact(obj, fact) on objects the package defines, and
// ImportObjectFact(obj, &fact) on objects defined by its (transitive)
// imports. Run analyzes packages in dependency order — imports before
// importers — so facts flow forward; packages that were loaded only as
// dependencies of the requested set are analyzed for facts but their
// diagnostics are discarded. The walltaint analyzer is the worked
// example: it exports a WallTaint fact from every function that
// transitively reaches a wall-clock read and flags the call sites in
// seeded packages where the taint crosses in.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one finding: which check fired, where, and why.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
	// SuggestedFixes are machine-applicable repairs for the finding, in
	// preference order; ApplyFixes applies the first one. Empty when the
	// repair needs human judgment.
	SuggestedFixes []SuggestedFix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check. Run inspects every file of the Pass's
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check identifier used in output and in //lint:ignore.
	Name string
	// Doc is a one-line description shown by `dataailint -list`.
	Doc string
	// Run executes the check over pass.Pkg.
	Run func(pass *Pass)
	// FactTypes lists the fact types the analyzer exports or imports
	// (values are only type witnesses, e.g. (*WallTaint)(nil)). A
	// non-empty list makes Run execute on dependency packages too, so
	// facts exist before any importer is analyzed.
	FactTypes []Fact
}

// registry holds all registered analyzers by name.
var registry = map[string]*Analyzer{}

// Register adds an analyzer to the suite. It panics on duplicate names —
// registration happens in init functions, so a duplicate is a programming
// error, not a runtime condition.
func Register(a *Analyzer) {
	if _, ok := registry[a.Name]; ok {
		panic(fmt.Sprintf("lint: duplicate analyzer %q", a.Name))
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer { return registry[name] }

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	ctx    *runContext
	report bool
	diags  []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if !p.report {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a machine-applicable fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...interface{}) {
	if !p.report {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Check:          p.Analyzer.Name,
		Pos:            p.Pkg.Fset.Position(pos),
		Message:        fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{fix},
	})
}

// Run executes the given analyzers over the given packages, applies
// //lint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, column, then check name — a deterministic order,
// as befits the suite's own subject matter.
//
// Packages are analyzed in dependency order (imports first), extended
// with any module-local dependency packages the loader pulled in, so
// fact-carrying analyzers see their imports' facts; diagnostics are kept
// only for the packages actually requested.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkgs, analyzers, false)
}

// RunAudited is Run plus the suppression audit: every //lint:ignore
// directive in a requested, non-test file that suppressed no diagnostic
// from the given analyzers is reported as a "staleignore" finding with a
// fix that deletes the comment. Use it only when running the full suite
// — a directive for an analyzer excluded from a partial run is not
// stale, merely unexercised.
func RunAudited(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkgs, analyzers, true)
}

func run(pkgs []*Package, analyzers []*Analyzer, audit bool) []Diagnostic {
	ctx := &runContext{facts: map[factKey][]Fact{}}
	ordered, requested := analysisOrder(pkgs)
	var out []Diagnostic
	for _, pkg := range ordered {
		target := requested[pkg]
		dirs := pkg.directives()
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !target && len(a.FactTypes) == 0 {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, ctx: ctx, report: target}
			a.Run(pass)
			pkgDiags = append(pkgDiags, pass.diags...)
		}
		for _, d := range pkgDiags {
			if !dirs.suppress(d) {
				out = append(out, d)
			}
		}
		if audit && target {
			for _, d := range staleDirectives(pkg, dirs) {
				if !dirs.suppress(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// directive is one //lint:ignore comment: where it sits, which checks it
// names, and whether it suppressed anything this run.
type directive struct {
	file     string
	line     int
	startOff int // byte offset of the comment in its file
	endOff   int
	checks   map[string]bool
	testFile bool
	used     bool
}

// directiveSet indexes a package's directives by file and line for
// suppression lookups while retaining the list for the audit.
type directiveSet struct {
	all   []*directive
	index map[string]map[int]*directive // file → covered line → directive
}

// suppress reports whether d is covered by a directive and marks the
// directive used.
func (s *directiveSet) suppress(d Diagnostic) bool {
	lines := s.index[d.Pos.Filename]
	if lines == nil {
		return false
	}
	dir := lines[d.Pos.Line]
	if dir == nil {
		return false
	}
	if dir.checks[d.Check] || dir.checks["*"] {
		dir.used = true
		return true
	}
	return false
}

// directives scans every file's comments for //lint:ignore directives.
// A directive applies to the line it sits on and to the line directly
// below it, so both placements work:
//
//	x := time.Now() //lint:ignore nondeterminism wall time, measured outside the simulator
//
//	//lint:ignore uncheckederr best-effort cleanup
//	os.Remove(tmp)
func (p *Package) directives() *directiveSet {
	s := &directiveSet{index: map[string]map[int]*directive{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				end := p.Fset.Position(c.End())
				dir := &directive{
					file:     pos.Filename,
					line:     pos.Line,
					startOff: pos.Offset,
					endOff:   end.Offset,
					checks:   map[string]bool{},
					testFile: strings.HasSuffix(pos.Filename, "_test.go"),
				}
				for _, name := range strings.Split(fields[0], ",") {
					dir.checks[name] = true
				}
				s.all = append(s.all, dir)
				lines := s.index[pos.Filename]
				if lines == nil {
					lines = map[int]*directive{}
					s.index[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = dir
					}
				}
			}
		}
	}
	return s
}

// staleDirectives turns every unused //lint:ignore directive in non-test
// files into a "staleignore" diagnostic whose fix deletes the comment.
// Analyzers never look at test files, so a directive there is advisory
// prose, not a live suppression, and is left alone.
func staleDirectives(p *Package, dirs *directiveSet) []Diagnostic {
	var out []Diagnostic
	for _, dir := range dirs.all {
		if dir.used || dir.testFile {
			continue
		}
		names := make([]string, 0, len(dir.checks))
		for name := range dir.checks {
			names = append(names, name)
		}
		sort.Strings(names)
		d := Diagnostic{
			Check: "staleignore",
			Pos:   token.Position{Filename: dir.file, Line: dir.line, Column: 1},
			Message: fmt.Sprintf("//lint:ignore %s suppresses nothing; the finding it justified is gone — delete the comment",
				strings.Join(names, ",")),
		}
		if fix, ok := deleteCommentFix(dir); ok {
			d.SuggestedFixes = []SuggestedFix{fix}
		}
		out = append(out, d)
	}
	return out
}

// deleteCommentFix builds the edit removing a stale directive: the whole
// line when the comment stands alone, just the trailing comment (and the
// spacing before it) otherwise.
func deleteCommentFix(dir *directive) (SuggestedFix, bool) {
	src, err := os.ReadFile(dir.file)
	if err != nil || dir.endOff > len(src) {
		return SuggestedFix{}, false
	}
	ls := dir.startOff
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	le := dir.endOff
	for le < len(src) && src[le] != '\n' {
		le++
	}
	onlyComment := strings.TrimSpace(string(src[ls:dir.startOff])) == "" &&
		strings.TrimSpace(string(src[dir.endOff:le])) == ""
	start, end := dir.startOff, dir.endOff
	if onlyComment {
		start = ls
		if le < len(src) {
			le++ // take the newline with the line
		}
		end = le
	} else {
		for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
			start--
		}
	}
	return SuggestedFix{
		Message: "delete stale //lint:ignore",
		Edits:   []TextEdit{{Filename: dir.file, Start: start, End: end}},
	}, true
}

// inspectWithStack walks the file like ast.Inspect but hands the callback
// the stack of enclosing nodes (outermost first, n last). Analyzers use
// it to find the enclosing function of a call or the enclosing block of a
// statement.
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack (excluding the node itself at the top), or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The loader excludes test files, but fixture harnesses and future
// callers may not, and several analyzers are scoped to non-test code.
func (p *Package) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
