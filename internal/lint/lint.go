// Package lint is the repo's own static-analysis layer: a small analyzer
// framework built entirely on the standard library (go/parser, go/ast,
// go/types — no external deps, matching go.mod) plus the repo-specific
// analyzers that enforce the invariants every number in EXPERIMENTS.md
// rests on: determinism under fixed seeds, checked errors, and balanced
// lock usage.
//
// Analyzers register themselves in init functions (the same pattern the
// experiments package uses). cmd/dataailint runs the full suite from the
// command line; lint_selfcheck_test.go at the repo root runs it inside
// `go test ./...` so tier-1 verification permanently includes the linter.
//
// Findings are suppressed with a comment on the offending line or the
// line directly above it:
//
//	//lint:ignore <check> <reason>
//
// where <check> is the analyzer name (or a comma-separated list). The
// reason is mandatory by convention — a suppression without one should
// not survive review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: which check fired, where, and why.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check. Run inspects every file of the Pass's
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check identifier used in output and in //lint:ignore.
	Name string
	// Doc is a one-line description shown by `dataailint -list`.
	Doc string
	// Run executes the check over pass.Pkg.
	Run func(pass *Pass)
}

// registry holds all registered analyzers by name.
var registry = map[string]*Analyzer{}

// Register adds an analyzer to the suite. It panics on duplicate names —
// registration happens in init functions, so a duplicate is a programming
// error, not a runtime condition.
func Register(a *Analyzer) {
	if _, ok := registry[a.Name]; ok {
		panic(fmt.Sprintf("lint: duplicate analyzer %q", a.Name))
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer { return registry[name] }

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the given packages, applies
// //lint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, column, then check name — a deterministic order,
// as befits the suite's own subject matter.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := pkg.ignoreIndex()
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ignores.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// ignoreIndex maps file → line → set of suppressed check names.
type ignoreIndex map[string]map[int]map[string]bool

// suppressed reports whether d is covered by a //lint:ignore comment.
func (ix ignoreIndex) suppressed(d Diagnostic) bool {
	lines := ix[d.Pos.Filename]
	if lines == nil {
		return false
	}
	checks := lines[d.Pos.Line]
	if checks == nil {
		return false
	}
	return checks[d.Check] || checks["*"]
}

// ignoreIndex scans every file's comments for //lint:ignore directives.
// A directive applies to the line it sits on and to the line directly
// below it, so both placements work:
//
//	x := time.Now() //lint:ignore nondeterminism wall time, measured outside the simulator
//
//	//lint:ignore uncheckederr best-effort cleanup
//	os.Remove(tmp)
func (p *Package) ignoreIndex() ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := ix[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ix[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					checks := lines[ln]
					if checks == nil {
						checks = map[string]bool{}
						lines[ln] = checks
					}
					for _, name := range strings.Split(fields[0], ",") {
						checks[name] = true
					}
				}
			}
		}
	}
	return ix
}

// inspectWithStack walks the file like ast.Inspect but hands the callback
// the stack of enclosing nodes (outermost first, n last). Analyzers use
// it to find the enclosing function of a call or the enclosing block of a
// statement.
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack (excluding the node itself at the top), or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The loader excludes test files, but fixture harnesses and future
// callers may not, and several analyzers are scoped to non-test code.
func (p *Package) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
