package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The parcapture analyzer guards the contract internal/par is built on:
// closures handed to par.Map/MapChunks/ForEach/Reduce run concurrently,
// and the *only* deterministic ways out of them are the return value
// (committed by slot) and writes to disjoint, index-addressed slots. A
// closure that instead mutates a captured variable — `sum += x`,
// `results = append(results, y)`, `m[k] = v` — produces output that
// depends on goroutine interleaving: exactly the bug class that breaks
// the repo's byte-identical serial-vs-parallel guarantee, and the race
// detector only catches it when the schedule cooperates.
//
// Flagged inside a closure argument to a par entry point:
//
//   - assignments and ++/-- whose target is declared outside the
//     closure, unless the target is a slice/array element whose index
//     mentions a closure-local variable (the per-slot idiom
//     `out[i] = f(i)` is disjoint by construction);
//   - writes into captured maps, regardless of key — concurrent map
//     writes fault even when keys are disjoint.
//
// A closure that takes a lock (any method call named Lock/RLock inside
// it) is skipped: it is synchronized, and whether its commit order is
// deterministic is a design question for its author, recorded with a
// //lint:ignore when the analyzer is wrong about it.

func init() {
	Register(&Analyzer{
		Name: "parcapture",
		Doc:  "unsynchronized writes to captured variables in closures passed to par.Map/MapChunks/ForEach/Reduce",
		Run:  runParCapture,
	})
}

// parEntryPoints are the internal/par functions that run their closure
// arguments concurrently.
var parEntryPoints = map[string]bool{
	"Map": true, "MapChunks": true, "ForEach": true, "Reduce": true,
}

// isParPackage matches the real package and fixture stand-ins.
func isParPackage(path string) bool {
	return path == "dataai/internal/par" || strings.HasSuffix(path, "internal/par")
}

func runParCapture(pass *Pass) {
	p := pass.Pkg
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeFunc(call)
			if callee == nil || callee.Pkg() == nil ||
				!isParPackage(callee.Pkg().Path()) || !parEntryPoints[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkParClosure(pass, callee.Name(), lit)
				}
			}
			return true
		})
	}
}

func checkParClosure(pass *Pass, entry string, lit *ast.FuncLit) {
	p := pass.Pkg
	if closureTakesLock(p, lit) {
		return
	}
	declaredInside := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End()
	}
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(),
			"closure passed to par.%s writes captured %q without synchronization: result depends on goroutine interleaving and breaks byte-identical parallel output; commit through the return value or a per-index slot",
			entry, name)
	}
	checkTarget := func(stmt ast.Node, lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			return
		}
		obj := p.Info.Uses[root]
		if obj == nil {
			obj = p.Info.Defs[root]
		}
		if obj == nil || declaredInside(obj) {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if base := p.typeOf(idx.X); base != nil {
				switch base.Underlying().(type) {
				case *types.Map:
					report(stmt, root.Name)
					return
				case *types.Slice, *types.Array, *types.Pointer:
					if indexUsesLocal(p, idx.Index, declaredInside) {
						return // disjoint per-slot write
					}
				}
			}
		}
		report(stmt, root.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				checkTarget(stmt, lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(stmt, stmt.X)
		}
		return true
	})
}

// closureTakesLock reports whether the closure body calls a Lock/RLock
// method — the author synchronized, so interleaving is their design.
func closureTakesLock(p *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			found = true
			return false
		}
		return true
	})
	return found
}

// indexUsesLocal reports whether the index expression mentions any
// object declared inside the closure (a parameter or loop variable) —
// the signature of the disjoint-slot idiom.
func indexUsesLocal(p *Package, index ast.Expr, declaredInside func(types.Object) bool) bool {
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; declaredInside(obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
