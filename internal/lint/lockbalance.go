package lint

import (
	"go/ast"
	"go/types"
)

// The lockbalance analyzer enforces two mutex invariants:
//
//   - every sync.Mutex/RWMutex Lock (or RLock) acquired in a function has
//     a matching Unlock (or RUnlock) on the same receiver somewhere in
//     that function — as a plain call or a defer. Matching is
//     function-scoped, not path-sensitive: a lock whose release lives in
//     a different function (handoff patterns) needs a //lint:ignore with
//     its justification spelled out.
//
//   - locks are never copied: parameters, results, and receivers whose
//     type holds a sync.Mutex/RWMutex (or WaitGroup/Once/Cond) by value
//     are flagged — a copied lock guards nothing.

func init() {
	Register(&Analyzer{
		Name: "lockbalance",
		Doc:  "Lock without matching Unlock in the same function; locks passed by value",
		Run:  runLockBalance,
	})
}

// lockPairs maps an acquire method to its release.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runLockBalance(pass *Pass) {
	p := pass.Pkg
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkBalance(pass, fd.Body)
			// Function literals get their own scope: a goroutine body that
			// locks must also unlock.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBalance(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// lockCall decomposes a statement-level call into (receiver key, method)
// when it invokes a Lock/Unlock-family method on a sync lock.
func lockCall(p *Package, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isSyncLock(p.typeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkBalance walks one function body (skipping nested function
// literals, which are checked separately) and verifies every acquire has
// a release on the same receiver key.
func checkBalance(pass *Pass, body *ast.BlockStmt) {
	p := pass.Pkg
	type acquire struct {
		pos    ast.Node
		method string
	}
	acquires := map[string][]acquire{} // key → acquisitions
	releases := map[string]map[string]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false // has its own balance scope
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if key, method, ok := lockCall(p, call); ok {
					if _, isAcq := lockPairs[method]; isAcq {
						acquires[key] = append(acquires[key], acquire{call, method})
					} else {
						addRelease(releases, key, method)
					}
				}
			}
		case *ast.DeferStmt:
			if key, method, ok := lockCall(p, stmt.Call); ok {
				if _, isAcq := lockPairs[method]; !isAcq {
					addRelease(releases, key, method)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for key, acqs := range acquires {
		for _, a := range acqs {
			want := lockPairs[a.method]
			if !releases[key][want] {
				pass.Reportf(a.pos.Pos(),
					"%s.%s with no %s on any path in this function; release it here or //lint:ignore with the handoff protocol",
					key, a.method, want)
			}
		}
	}
}

func addRelease(releases map[string]map[string]bool, key, method string) {
	if releases[key] == nil {
		releases[key] = map[string]bool{}
	}
	releases[key][method] = true
}

// checkLockCopies flags receivers, parameters, and results whose type
// copies a lock by value.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	p := pass.Pkg
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.typeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Pos(),
					"%s of %s copies a lock by value; use a pointer", kind, fd.Name.Name)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}
