package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package — the unit an
// analyzer runs over.
type Package struct {
	// ImportPath is the module-qualified path, e.g. "dataai/internal/vecdb".
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (may be incomplete if the source
	// has type errors — analyzers must tolerate nil type info).
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info

	// deps are the module-local packages this one imports, sorted by
	// import path. Run analyzes them first so cross-package facts exist
	// when this package is analyzed.
	deps []*Package
}

// SkippedFile records one source file the loader excluded and why —
// nothing is dropped silently.
type SkippedFile struct {
	Path   string
	Reason string
}

// LoadReport accounts for everything Load looked at but did not analyze:
// directories whose only Go sources are _test.go files (no analyzable
// package, but a package nonetheless), and files excluded by build
// constraints (//go:build headers or GOOS/GOARCH filename suffixes) for
// the host configuration.
type LoadReport struct {
	// TestOnlyDirs are package directories containing only test files.
	TestOnlyDirs []string
	// SkippedFiles are sources excluded by build constraints.
	SkippedFiles []SkippedFile
}

// Load parses and type-checks the packages matched by patterns, rooted at
// the module containing dir. Patterns follow go tooling conventions: a
// relative directory ("./internal/vecdb") names one package, and a
// "/..." suffix matches the tree below it. Test files (_test.go),
// testdata directories, and dot/underscore-prefixed entries are skipped,
// like the go tool itself skips them; build constraints are evaluated
// for the host GOOS/GOARCH with no extra tags, so of two files gated
// //go:build race / !race exactly the !race one loads.
//
// Type checking resolves module-local imports by recursively loading
// sibling packages, and standard-library imports from GOROOT source —
// no compiled export data, no network, no external deps.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, _, err := LoadWithReport(dir, patterns...)
	return pkgs, err
}

// LoadWithReport is Load plus an accounting of what was skipped and why.
func LoadWithReport(dir string, patterns ...string) ([]*Package, *LoadReport, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := matchPatterns(dir, root, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, root)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := imp.load(d)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Strings(imp.report.TestOnlyDirs)
	sort.Slice(imp.report.SkippedFiles, func(i, j int) bool {
		return imp.report.SkippedFiles[i].Path < imp.report.SkippedFiles[j].Path
	})
	return pkgs, imp.report, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// matchPatterns expands patterns (relative to base) into a sorted list of
// package directories under root. A directory qualifies when it holds
// any Go source at all — including test-only packages, which the loader
// then reports rather than silently dropping.
func matchPatterns(base, root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(base, start)
		}
		abs, err := filepath.Abs(start)
		if err != nil {
			return nil, err
		}
		start = abs
		if !recursive {
			if hasAnyGoFiles(start) {
				add(start)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			continue
		}
		err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasAnyGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	// Keep only directories inside the module.
	kept := dirs[:0]
	for _, d := range dirs {
		if d == root || strings.HasPrefix(d, root+string(filepath.Separator)) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// hasAnyGoFiles reports whether dir holds any candidate Go source,
// test files included.
func hasAnyGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// moduleImporter type-checks module-local packages from source on demand
// and delegates everything else (the standard library) to the stdlib
// source importer. Both layers cache, so each package is checked once.
type moduleImporter struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.Importer
	cache   map[string]*Package // keyed by directory
	loading map[string]bool     // import-cycle guard
	report  *LoadReport
}

func newModuleImporter(fset *token.FileSet, modPath, root string) *moduleImporter {
	return &moduleImporter{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
		report:  &LoadReport{},
	}
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		pkg, err := m.load(m.dirFor(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for import %q", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (m *moduleImporter) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
	return filepath.Join(m.root, filepath.FromSlash(rel))
}

// load parses and type-checks the package in dir, caching the result.
// It returns (nil, nil) when dir holds no analyzable Go files, recording
// test-only packages and constraint-excluded files in the report.
func (m *moduleImporter) load(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := m.cache[dir]; ok {
		return pkg, nil
	}
	if m.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	m.loading[dir] = true
	defer delete(m.loading, dir)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	testOnly := false
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testOnly = true
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		if testOnly {
			m.report.TestOnlyDirs = append(m.report.TestOnlyDirs, dir)
		}
		m.cache[dir] = nil
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if reason, excluded := fileExcluded(name, src); excluded {
			m.report.SkippedFiles = append(m.report.SkippedFiles, SkippedFile{Path: path, Reason: reason})
			continue
		}
		f, err := parser.ParseFile(m.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// Every source was constraint-excluded for this configuration.
		m.cache[dir] = nil
		return nil, nil
	}

	rel, err := filepath.Rel(m.root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.modPath
	if rel != "." {
		importPath = m.modPath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := TypeCheck(m.fset, importPath, files, m)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	m.cache[dir] = pkg
	m.attachDeps(pkg)
	return pkg, nil
}

// attachDeps records the module-local packages pkg imports, resolved
// from the importer cache (type-checking pkg just populated it).
func (m *moduleImporter) attachDeps(pkg *Package) {
	seen := map[*Package]bool{}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != m.modPath && !strings.HasPrefix(path, m.modPath+"/") {
				continue
			}
			dep := m.cache[filepath.Clean(m.dirFor(path))]
			if dep != nil && dep != pkg && !seen[dep] {
				seen[dep] = true
				pkg.deps = append(pkg.deps, dep)
			}
		}
	}
	sort.Slice(pkg.deps, func(i, j int) bool { return pkg.deps[i].ImportPath < pkg.deps[j].ImportPath })
}

// fileExcluded evaluates filename-suffix and //go:build constraints for
// the host configuration (GOOS, GOARCH, gc, unix where applicable, and
// the toolchain's go1.N versions — no free-form tags such as race). It
// returns a human-readable reason when the file is excluded.
func fileExcluded(name string, src []byte) (string, bool) {
	if os, arch, ok := filenameConstraint(name); ok {
		if os != "" && os != runtime.GOOS {
			return fmt.Sprintf("filename constrains GOOS=%s (host is %s)", os, runtime.GOOS), true
		}
		if arch != "" && arch != runtime.GOARCH {
			return fmt.Sprintf("filename constrains GOARCH=%s (host is %s)", arch, runtime.GOARCH), true
		}
	}
	expr, ok := headerConstraint(src)
	if !ok {
		return "", false
	}
	if !expr.Eval(buildTagSatisfied) {
		return fmt.Sprintf("build constraint %q not satisfied", exprString(expr)), true
	}
	return "", false
}

// filenameConstraint extracts GOOS/GOARCH constraints encoded in the
// file name per go/build rules: *_GOOS.go, *_GOARCH.go, *_GOOS_GOARCH.go.
func filenameConstraint(name string) (osName, arch string, ok bool) {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return "", "", false
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		arch = last
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			osName = parts[len(parts)-2]
		}
		return osName, arch, true
	}
	if knownOS[last] {
		return last, "", true
	}
	return "", "", false
}

// headerConstraint parses the build constraint governing src, if any:
// the //go:build line when present, else the conjunction of legacy
// // +build lines. Scanning stops at the package clause.
func headerConstraint(src []byte) (constraint.Expr, bool) {
	var legacy []constraint.Expr
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if constraint.IsGoBuild(trimmed) {
				if expr, err := constraint.Parse(trimmed); err == nil {
					return expr, true
				}
			}
			if constraint.IsPlusBuild(trimmed) {
				if expr, err := constraint.Parse(trimmed); err == nil {
					legacy = append(legacy, expr)
				}
			}
			continue
		}
		break // package clause (or any code) ends the header
	}
	if len(legacy) == 0 {
		return nil, false
	}
	expr := legacy[0]
	for _, e := range legacy[1:] {
		expr = &constraint.AndExpr{X: expr, Y: e}
	}
	return expr, true
}

// buildTagSatisfied is the host tag set: GOOS, GOARCH, compiler, unix,
// and released go1.N versions. Free-form tags (race, integration, ...)
// are unset, matching a plain `go build`.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	}
	if minor, ok := strings.CutPrefix(tag, "go1."); ok {
		if n, err := strconv.Atoi(minor); err == nil {
			return n <= goMinorVersion()
		}
	}
	return false
}

// goMinorVersion extracts N from runtime.Version()'s "go1.N[.M]".
func goMinorVersion() int {
	v := runtime.Version()
	rest, ok := strings.CutPrefix(v, "go1.")
	if !ok {
		return 22 // matches go.mod's floor
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		rest = rest[:i]
	}
	if n, err := strconv.Atoi(rest); err == nil {
		return n
	}
	return 22
}

// exprString renders a constraint for the skip reason, tolerating nil.
func exprString(e constraint.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// TypeCheck type-checks files as one package under importPath, resolving
// imports through imp (nil means standard library only, from source).
// Type errors are tolerated: analyzers see whatever facts the checker
// could compute. The fixture tests use this entry point directly.
func TypeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // tolerate type errors; facts stay partial
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
