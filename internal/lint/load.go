package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package — the unit an
// analyzer runs over.
type Package struct {
	// ImportPath is the module-qualified path, e.g. "dataai/internal/vecdb".
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (may be incomplete if the source
	// has type errors — analyzers must tolerate nil type info).
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// Load parses and type-checks the packages matched by patterns, rooted at
// the module containing dir. Patterns follow go tooling conventions: a
// relative directory ("./internal/vecdb") names one package, and a
// "/..." suffix matches the tree below it. Test files (_test.go),
// testdata directories, and dot/underscore-prefixed entries are skipped,
// like the go tool itself skips them.
//
// Type checking resolves module-local imports by recursively loading
// sibling packages, and standard-library imports from GOROOT source —
// no compiled export data, no network, no external deps.
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := matchPatterns(dir, root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, root)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := imp.load(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// matchPatterns expands patterns (relative to base) into a sorted list of
// package directories under root.
func matchPatterns(base, root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(base, start)
		}
		abs, err := filepath.Abs(start)
		if err != nil {
			return nil, err
		}
		start = abs
		if !recursive {
			if hasGoFiles(start) {
				add(start)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			continue
		}
		err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	// Keep only directories inside the module.
	kept := dirs[:0]
	for _, d := range dirs {
		if d == root || strings.HasPrefix(d, root+string(filepath.Separator)) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// moduleImporter type-checks module-local packages from source on demand
// and delegates everything else (the standard library) to the stdlib
// source importer. Both layers cache, so each package is checked once.
type moduleImporter struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.Importer
	cache   map[string]*Package // keyed by directory
	loading map[string]bool     // import-cycle guard
}

func newModuleImporter(fset *token.FileSet, modPath, root string) *moduleImporter {
	return &moduleImporter{
		fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
		pkg, err := m.load(filepath.Join(m.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for import %q", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// load parses and type-checks the package in dir, caching the result.
// It returns (nil, nil) when dir holds no non-test Go files.
func (m *moduleImporter) load(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := m.cache[dir]; ok {
		return pkg, nil
	}
	if m.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	m.loading[dir] = true
	defer delete(m.loading, dir)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		m.cache[dir] = nil
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	rel, err := filepath.Rel(m.root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.modPath
	if rel != "." {
		importPath = m.modPath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := TypeCheck(m.fset, importPath, files, m)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	m.cache[dir] = pkg
	return pkg, nil
}

// TypeCheck type-checks files as one package under importPath, resolving
// imports through imp (nil means standard library only, from source).
// Type errors are tolerated: analyzers see whatever facts the checker
// could compute. The fixture tests use this entry point directly.
func TypeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // tolerate type errors; facts stay partial
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
