package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The floateq analyzer flags == and != between floating-point operands
// outside test code. Accumulated rounding makes exact float equality a
// latent bug: two mathematically equal computations differ in the last
// ulp and the comparison silently picks a branch. Compare against an
// epsilon, or restructure to compare the integers the floats came from.
//
// Four idioms are exempt because they are exact by construction:
//
//   - `x != x`, the standard NaN test;
//   - comparisons where both operands are compile-time constants;
//   - comparisons against constant zero (`sum == 0` division guards and
//     unset-sentinel checks — exact zero is preserved by IEEE 754 and is
//     the conventional "nothing accumulated" test);
//   - tie-breaks in three-way comparisons: when the same operand pair is
//     also ordered with < / > / <= / >= in the same function (a sort
//     comparator or best-candidate scan), the equality branch only picks
//     between two orderings, and either outcome is deterministic.
//
// Anything else that genuinely wants exact equality (e.g. change
// detection between checkpoints) carries a //lint:ignore with its
// justification.

func init() {
	Register(&Analyzer{
		Name: "floateq",
		Doc:  "exact == / != comparison of floating-point values outside tests",
		Run:  runFloatEq,
	})
}

func runFloatEq(pass *Pass) {
	p := pass.Pkg
	// strictPairs caches, per enclosing function, the operand pairs that
	// appear under an ordering comparison.
	strictPairs := map[ast.Node]map[[2]string]bool{}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return
			}
			lt, rt := p.typeOf(bin.X), p.typeOf(bin.Y)
			if !isFloat(lt) && !isFloat(rt) {
				return
			}
			lv, rv := p.Info.Types[bin.X], p.Info.Types[bin.Y]
			if lv.Value != nil && rv.Value != nil {
				return // constant fold, exact
			}
			if isZeroConst(lv) || isZeroConst(rv) {
				return // division guard / unset sentinel
			}
			if sameExpr(bin.X, bin.Y) {
				return // NaN test
			}
			fn := enclosingFunc(stack)
			if fn != nil {
				pairs, ok := strictPairs[fn]
				if !ok {
					pairs = orderedPairs(fn)
					strictPairs[fn] = pairs
				}
				if pairs[pairKey(bin.X, bin.Y)] {
					return // tie-break in a three-way comparison
				}
			}
			pass.Reportf(bin.Pos(),
				"exact float %s comparison; use an epsilon or compare the underlying integers", bin.Op)
		})
	}
}

// isZeroConst reports whether tv is a compile-time constant equal to 0.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// pairKey normalizes an operand pair into an order-insensitive key.
func pairKey(x, y ast.Expr) [2]string {
	a, b := types.ExprString(x), types.ExprString(y)
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// orderedPairs collects every operand pair compared with an ordering
// operator anywhere in fn's body.
func orderedPairs(fn ast.Node) map[[2]string]bool {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	pairs := map[[2]string]bool{}
	if body == nil {
		return pairs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			pairs[pairKey(bin.X, bin.Y)] = true
		}
		return true
	})
	return pairs
}

// sameExpr reports whether two expressions are syntactically identical
// identifier/selector chains (enough to recognize `x != x`).
func sameExpr(a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && ae.Name == be.Name
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameExpr(ae.X, be.X)
	}
	return false
}
