package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dataai/internal/lint"
)

// wantRe extracts the expectation regex from a `// want `...“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixturePackage parses and type-checks every .go file under
// testdata/src/<dir> as one package with the given import path.
func fixturePackage(t *testing.T, dir, importPath string) *lint.Package {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(root, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	pkg, err := lint.TypeCheck(fset, importPath, files, nil)
	if err != nil {
		t.Fatalf("typecheck fixtures: %v", err)
	}
	return pkg
}

// expectations maps "file:line" to the regexes `// want` comments declare
// there.
func expectations(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	want := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				want[key] = append(want[key], re)
			}
		}
	}
	return want
}

func runFixture(t *testing.T, fixtureDir, analyzerName, importPath string) {
	t.Helper()
	a := lint.Lookup(analyzerName)
	if a == nil {
		t.Fatalf("analyzer %q not registered", analyzerName)
	}
	pkg := fixturePackage(t, fixtureDir, importPath)
	want := expectations(t, pkg)
	got := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	matched := map[string][]bool{}
	for key, res := range want {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range got {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res := want[key]
		found := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, flags := range matched {
		for i, ok := range flags {
			if !ok {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, want[key][i])
			}
		}
	}
}

func TestNondeterminismSeededPackage(t *testing.T) {
	runFixture(t, "nondeterminism", "nondeterminism", "fix/internal/experiments")
}

func TestNondeterminismRandParamScope(t *testing.T) {
	runFixture(t, "randparam", "nondeterminism", "fix/util")
}

func TestMapOrder(t *testing.T) {
	runFixture(t, "maporder", "maporder", "fix/maporder")
}

func TestUncheckedErr(t *testing.T) {
	runFixture(t, "uncheckederr", "uncheckederr", "fix/uncheckederr")
}

func TestLockBalance(t *testing.T) {
	runFixture(t, "lockbalance", "lockbalance", "fix/lockbalance")
}

func TestFloatEq(t *testing.T) {
	runFixture(t, "floateq", "floateq", "fix/floateq")
}

// TestResilienceFixtureClean runs the ENTIRE analyzer suite over the
// resilience fixture — a distillation of internal/resilient's breaker
// locking, seeded-hash jitter, zero-guarded waste accounting, and
// sorted stats rendering — and requires zero diagnostics. It pins that
// the resilience layer's core idioms stay expressible without
// //lint:ignore suppressions.
func TestResilienceFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "resilience", "fix/internal/resilient")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSimFixtureClean runs the ENTIRE analyzer suite over the simengine
// fixture — a distillation of internal/sim's (time, seq)-ordered event
// heap, logical-clock clamping, seeded fault-window draws, and sorted
// report rendering — under a seeded import path ("fix/internal/sim"),
// and requires zero diagnostics. It pins that the discrete-event
// engine's core idioms (including the exact-float tie-break in the heap
// comparator) stay expressible without //lint:ignore suppressions.
func TestSimFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "simengine", "fix/internal/sim")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestObstraceFixtureClean runs the ENTIRE analyzer suite over the
// obstrace fixture — a distillation of internal/obs's mutex-guarded
// span ingestion, (time, seq)-ordered export with its exact-float
// tie-break, sorted counter rendering, and error-checked trace writing
// — under a seeded import path ("fix/internal/obs"), and requires zero
// diagnostics. It pins that the observability layer's core idioms stay
// expressible without //lint:ignore suppressions.
func TestObstraceFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "obstrace", "fix/internal/obs")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSuiteRegistered pins the analyzer roster: removing a check from the
// suite should be a deliberate, visible act.
func TestSuiteRegistered(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	wantNames := []string{"floateq", "lockbalance", "maporder", "nondeterminism", "uncheckederr"}
	if strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Fatalf("registered analyzers = %v, want %v", names, wantNames)
	}
}

// TestLoadModule exercises the module loader on the real repo: it must
// find this very package and resolve its imports.
func TestLoadModule(t *testing.T) {
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	found := false
	for _, p := range pkgs {
		if p.ImportPath == "dataai/internal/lint" {
			found = true
			if p.Types == nil {
				t.Fatal("lint package loaded without type info")
			}
		}
	}
	if !found {
		t.Fatal("Load(./...) from internal/lint did not find dataai/internal/lint")
	}
}
