package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dataai/internal/lint"
)

// wantRe extracts the expectation regex from a `// want `...“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixturePackage parses and type-checks every .go file under
// testdata/src/<dir> as one package with the given import path.
func fixturePackage(t *testing.T, dir, importPath string) *lint.Package {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(root, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	pkg, err := lint.TypeCheck(fset, importPath, files, nil)
	if err != nil {
		t.Fatalf("typecheck fixtures: %v", err)
	}
	return pkg
}

// expectations maps "file:line" to the regexes `// want` comments declare
// there.
func expectations(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	want := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				want[key] = append(want[key], re)
			}
		}
	}
	return want
}

// matchDiagnostics checks got against the want expectations: every
// diagnostic must match a `// want` regex on its line, and every regex
// must be matched by some diagnostic.
func matchDiagnostics(t *testing.T, want map[string][]*regexp.Regexp, got []lint.Diagnostic) {
	t.Helper()
	matched := map[string][]bool{}
	for key, res := range want {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range got {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res := want[key]
		found := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, flags := range matched {
		for i, ok := range flags {
			if !ok {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, want[key][i])
			}
		}
	}
}

func runFixture(t *testing.T, fixtureDir, analyzerName, importPath string) {
	t.Helper()
	a := lint.Lookup(analyzerName)
	if a == nil {
		t.Fatalf("analyzer %q not registered", analyzerName)
	}
	pkg := fixturePackage(t, fixtureDir, importPath)
	matchDiagnostics(t, expectations(t, pkg), lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}))
}

// loadModuleFixture loads the mini-module under testdata/src/<dir> —
// it carries its own go.mod, so cross-package imports and dependency
// ordering work exactly as they do on the real repo.
func loadModuleFixture(t *testing.T, fixtureDir string) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(filepath.Join("testdata", "src", fixtureDir), "./...")
	if err != nil {
		t.Fatalf("load fixture module %s: %v", fixtureDir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages in fixture module %s", fixtureDir)
	}
	return pkgs
}

// runModuleFixture runs one analyzer over every package of a module
// fixture, aggregating `// want` expectations across all of its files.
// Facts exported by dependency packages are visible to dependents, so
// this is the harness for the cross-package analyzers.
func runModuleFixture(t *testing.T, fixtureDir, analyzerName string) {
	t.Helper()
	a := lint.Lookup(analyzerName)
	if a == nil {
		t.Fatalf("analyzer %q not registered", analyzerName)
	}
	pkgs := loadModuleFixture(t, fixtureDir)
	want := map[string][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for key, res := range expectations(t, pkg) {
			want[key] = append(want[key], res...)
		}
	}
	matchDiagnostics(t, want, lint.Run(pkgs, []*lint.Analyzer{a}))
}

func TestNondeterminismSeededPackage(t *testing.T) {
	runFixture(t, "nondeterminism", "nondeterminism", "fix/internal/experiments")
}

func TestNondeterminismRandParamScope(t *testing.T) {
	runFixture(t, "randparam", "nondeterminism", "fix/util")
}

func TestMapOrder(t *testing.T) {
	runFixture(t, "maporder", "maporder", "fix/maporder")
}

func TestUncheckedErr(t *testing.T) {
	runFixture(t, "uncheckederr", "uncheckederr", "fix/uncheckederr")
}

func TestLockBalance(t *testing.T) {
	runFixture(t, "lockbalance", "lockbalance", "fix/lockbalance")
}

func TestFloatEq(t *testing.T) {
	runFixture(t, "floateq", "floateq", "fix/floateq")
}

// TestWallTaint pins the interprocedural determinism gate: wall-clock
// reads laundered through one- and two-hop wrappers in a *different*
// package are caught at the call site inside the seeded package, with
// the witness chain in the message. The clean injected-clock path must
// stay silent.
func TestWallTaint(t *testing.T) {
	runModuleFixture(t, "walltaint", "walltaint")
}

// TestParCapture pins the captured-write analyzer against both the bug
// class (accumulate/append/map-write/increment into captures) and every
// accepted idiom (per-slot writes, chunk-local indexes, explicit locks,
// return-value commits).
func TestParCapture(t *testing.T) {
	runModuleFixture(t, "parcapture", "parcapture")
}

// TestObsGuard pins the nil-receiver contract: guarded methods (plain
// and compound conditions), delegation to guarded methods, unexported
// methods, and value receivers pass; exported unguarded methods fail.
func TestObsGuard(t *testing.T) {
	runFixture(t, "obsguard", "obsguard", "fix/internal/obs")
}

// TestCallGraphCrossPackageEdges pins how the call graph is built
// across package boundaries: the util.StampNow node a caller in
// fix/internal/sim resolves must be the same object util's own edges
// hang off, with the stdlib frontier (time.Now) reachable behind it.
func TestCallGraphCrossPackageEdges(t *testing.T) {
	pkgs := loadModuleFixture(t, "walltaint")
	g := lint.BuildCallGraph(pkgs)

	lookup := func(pkgPath, name string) *types.Func {
		for _, p := range pkgs {
			if p.ImportPath != pkgPath || p.Types == nil {
				continue
			}
			fn, _ := p.Types.Scope().Lookup(name).(*types.Func)
			if fn == nil {
				t.Fatalf("%s.%s not found in fixture", pkgPath, name)
			}
			return fn
		}
		t.Fatalf("package %s not loaded", pkgPath)
		return nil
	}
	stamp := lookup("fix/internal/sim", "Stamp")
	measure := lookup("fix/internal/sim", "Measure")
	stampNow := lookup("fix/util", "StampNow")
	elapsed := lookup("fix/util", "Elapsed")

	calleeNames := func(fn *types.Func) string {
		var names []string
		for _, c := range g.Callees(fn) {
			names = append(names, c.FullName())
		}
		return strings.Join(names, ", ")
	}
	// Cross-package edges: sim → util, resolved to the identical
	// *types.Func objects util's own pass sees.
	if got := g.Callees(stamp); len(got) != 1 || got[0] != stampNow {
		t.Errorf("Callees(sim.Stamp) = [%s], want exactly fix/util.StampNow", calleeNames(stamp))
	}
	if got := g.Callees(measure); len(got) != 1 || got[0] != elapsed {
		t.Errorf("Callees(sim.Measure) = [%s], want exactly fix/util.Elapsed", calleeNames(measure))
	}
	// The stdlib frontier: util.StampNow statically calls time.Now (the
	// UnixNano method call is also recorded — edges, not a set of one).
	foundTimeNow := false
	for _, e := range g.CallsFrom(stampNow) {
		if e.Callee.FullName() == "time.Now" {
			foundTimeNow = true
		}
		if e.Caller != stampNow {
			t.Errorf("CallsFrom(util.StampNow) returned edge with caller %v", e.Caller)
		}
	}
	if !foundTimeNow {
		t.Errorf("CallsFrom(util.StampNow) has no time.Now edge; callees: %s", calleeNames(stampNow))
	}
	// Two-hop chain within util: Elapsed → StampNow.
	if got := g.Callees(elapsed); len(got) != 1 || got[0] != stampNow {
		t.Errorf("Callees(util.Elapsed) = [%s], want exactly fix/util.StampNow", calleeNames(elapsed))
	}
}

// TestResilienceFixtureClean runs the ENTIRE analyzer suite over the
// resilience fixture — a distillation of internal/resilient's breaker
// locking, seeded-hash jitter, zero-guarded waste accounting, and
// sorted stats rendering — and requires zero diagnostics. It pins that
// the resilience layer's core idioms stay expressible without
// //lint:ignore suppressions.
func TestResilienceFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "resilience", "fix/internal/resilient")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSimFixtureClean runs the ENTIRE analyzer suite over the simengine
// fixture — a distillation of internal/sim's (time, seq)-ordered event
// heap, logical-clock clamping, seeded fault-window draws, and sorted
// report rendering — under a seeded import path ("fix/internal/sim"),
// and requires zero diagnostics. It pins that the discrete-event
// engine's core idioms (including the exact-float tie-break in the heap
// comparator) stay expressible without //lint:ignore suppressions.
func TestSimFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "simengine", "fix/internal/sim")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestObstraceFixtureClean runs the ENTIRE analyzer suite over the
// obstrace fixture — a distillation of internal/obs's mutex-guarded
// span ingestion, (time, seq)-ordered export with its exact-float
// tie-break, sorted counter rendering, and error-checked trace writing
// — under a seeded import path ("fix/internal/obs"), and requires zero
// diagnostics. It pins that the observability layer's core idioms stay
// expressible without //lint:ignore suppressions.
func TestObstraceFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "obstrace", "fix/internal/obs")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestDecisiontraceFixtureClean runs the ENTIRE analyzer suite over the
// decisiontrace fixture — a distillation of the counterfactual-replay
// stack: a nil-safe mutex-guarded decision log, the strict-less scored
// argmin with an exact-float tie-break in the rank comparator, fan-out
// replay committing into per-slot results with loop indexes passed as
// arguments, and sorted regret rendering with checked writes — under a
// seeded import path ("fix/internal/serving"), and requires zero
// diagnostics. It pins that the decision-tracing idioms stay
// expressible without //lint:ignore suppressions.
func TestDecisiontraceFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "decisiontrace", "fix/internal/serving")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSuiteRegistered pins the analyzer roster: removing a check from the
// suite should be a deliberate, visible act.
func TestSuiteRegistered(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	wantNames := []string{
		"floateq", "lockbalance", "maporder", "nondeterminism",
		"obsguard", "parcapture", "uncheckederr", "walltaint",
	}
	if strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Fatalf("registered analyzers = %v, want %v", names, wantNames)
	}
}

// TestLoadModule exercises the module loader on the real repo: it must
// find this very package and resolve its imports.
func TestLoadModule(t *testing.T) {
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	found := false
	for _, p := range pkgs {
		if p.ImportPath == "dataai/internal/lint" {
			found = true
			if p.Types == nil {
				t.Fatal("lint package loaded without type info")
			}
		}
	}
	if !found {
		t.Fatal("Load(./...) from internal/lint did not find dataai/internal/lint")
	}
}

// TestMultitenantFixtureClean runs the ENTIRE analyzer suite over the
// multitenant fixture — a distillation of the multi-tenant workload and
// admission layers: per-client RNG streams seeded from (spec seed,
// client ID), a largest-remainder count split with an exact-float
// tie-break, logical-clock token buckets over lazily-populated tenant
// maps, and sorted per-tenant stats rendering — under a seeded import
// path ("fix/internal/workload"), and requires zero diagnostics. It
// pins that the multi-tenant idioms stay expressible without
// //lint:ignore suppressions.
func TestMultitenantFixtureClean(t *testing.T) {
	pkg := fixturePackage(t, "multitenant", "fix/internal/workload")
	for _, d := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
