package lint

import (
	"go/ast"
	"go/types"
)

// importedPkg returns the import path of the package a selector's
// qualifier names (e.g. "time" for time.Now), or "" when the qualifier
// is not a package name or type info is missing.
func (p *Package) importedPkg(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := p.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// pkgCall decomposes call into (importPath, funcName) when it invokes a
// package-level function through a selector, e.g. time.Now() →
// ("time", "Now"). ok is false for method calls and local calls.
func (p *Package) pkgCall(call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	path = p.importedPkg(sel.X)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// typeOf returns the type of expr, or nil when the checker could not
// determine one.
func (p *Package) typeOf(expr ast.Expr) types.Type {
	return p.Info.TypeOf(expr)
}

// isSyncLock reports whether t (after stripping one pointer level) is
// sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsLock reports whether a value of type t holds a sync.Mutex or
// sync.RWMutex by value (directly, or in a struct field or array element,
// recursively). Pointers, maps, slices, and channels reference their
// element, so copying them does not copy the lock.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once" || obj.Name() == "Cond") {
			return true
		}
		return containsLockSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// isFloat reports whether t is a floating-point type (float32, float64,
// or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// rootIdent returns the leftmost identifier of an expression like
// x, x.f, x[i], or *x — the variable a compound expression hangs off.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// mentionsObject reports whether the subtree rooted at n uses the given
// object (per the type-checker's Uses table).
func (p *Package) mentionsObject(n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		if found {
			return false
		}
		if id, ok := child.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
