package lint

import (
	"go/types"
	"reflect"
	"sort"
)

// Fact is a piece of analyzer-computed knowledge attached to a types
// object and visible to later passes over importing packages — the same
// shape as go/analysis facts, minus serialization (everything here runs
// in one process over one module, so facts live in memory for the
// duration of a Run).
//
// A fact type is a pointer to a struct implementing AFact:
//
//	type WallTaint struct{ Path string }
//	func (*WallTaint) AFact() {}
//
// Analyzers declare the fact types they use in Analyzer.FactTypes, which
// opts them into running over dependency packages so their facts exist
// before any importer is analyzed.
type Fact interface {
	AFact()
}

// factKey scopes facts to the defining object.
type factKey = types.Object

// runContext is the state shared by every Pass of one Run invocation:
// the fact store keyed by (object, fact type).
type runContext struct {
	facts map[factKey][]Fact
}

// ExportObjectFact attaches fact to obj for the rest of this Run. A
// second export of the same fact type on the same object replaces the
// first (analyzers converge before exporting, so replacement is the
// rare refinement case, not a fixpoint mechanism).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.ctx == nil || obj == nil || fact == nil {
		return
	}
	t := reflect.TypeOf(fact)
	for i, f := range p.ctx.facts[obj] {
		if reflect.TypeOf(f) == t {
			p.ctx.facts[obj][i] = fact
			return
		}
	}
	p.ctx.facts[obj] = append(p.ctx.facts[obj], fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// *ptr and reports whether one was found. ptr must be a non-nil pointer
// to a fact struct, e.g.:
//
//	var taint WallTaint
//	if pass.ImportObjectFact(fn, &taint) { ... }
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.ctx == nil || obj == nil || ptr == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	for _, f := range p.ctx.facts[obj] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// analysisOrder returns the requested packages plus every module-local
// dependency the loader attached, in dependency order (imports before
// importers), and the set of packages whose diagnostics the caller asked
// for. Roots are visited in ImportPath order so the result — and with it
// every fact and diagnostic — is deterministic.
func analysisOrder(pkgs []*Package) ([]*Package, map[*Package]bool) {
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	roots := append([]*Package(nil), pkgs...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	visited := map[*Package]bool{}
	var ordered []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if p == nil || visited[p] {
			return
		}
		visited[p] = true
		for _, dep := range p.deps {
			visit(dep)
		}
		ordered = append(ordered, p)
	}
	for _, p := range roots {
		visit(p)
	}
	return ordered, requested
}
