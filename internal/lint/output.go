package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Machine-readable diagnostic output for CI: a plain JSON array for
// scripts, and SARIF 2.1.0 for code-scanning UIs. Both encoders emit
// deterministic bytes for a given diagnostic list (diagnostics are
// already sorted by Run, struct fields encode in declaration order).

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

// WriteJSON writes diags as a JSON array. File paths are made relative
// to baseDir when possible, keeping output machine-portable.
func WriteJSON(w io.Writer, baseDir string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Check:   d.Check,
			File:    relPath(baseDir, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
			Fixable: len(d.SuggestedFixes) > 0,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 structures — only the fields consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes diags as a SARIF 2.1.0 log whose rule table lists
// the analyzers that ran (so a clean run still documents its coverage).
func WriteSARIF(w io.Writer, baseDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "staleignore",
		ShortDescription: sarifText{Text: "//lint:ignore directives that no longer suppress anything"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(baseDir, d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dataailint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders path relative to base when that is shorter-scoped;
// otherwise the path is returned unchanged.
func relPath(base, path string) string {
	if base == "" {
		return path
	}
	rel, err := filepath.Rel(base, path)
	if err != nil || len(rel) >= 2 && rel[0] == '.' && rel[1] == '.' {
		return path
	}
	return rel
}
