// Fixture distilling the patterns internal/obs relies on, type-checked
// under a seeded import path so every analyzer in the suite runs over
// it. It carries zero `// want` comments on purpose: the test asserts
// the whole file is clean, pinning that a logical-clock span recorder —
// mutex-guarded ingestion, (time, seq)-ordered export with an exact-
// float tie-break, sorted counter rendering, and error-checked trace
// writing — survives all five checks without suppressions.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// span is one recorded interval on the logical clock.
type span struct {
	track   string
	startMS float64
	seq     uint64
}

// tracer collects spans and counters; every method is safe for
// concurrent producers (lockbalance sees symmetric Lock/Unlock pairs).
type tracer struct {
	mu       sync.Mutex
	spans    []span
	seq      uint64
	counters map[string]float64
}

func newTracer() *tracer {
	return &tracer{counters: make(map[string]float64)}
}

// begin records a span start at the caller-supplied logical time; the
// clock is an input, never a wall-clock read (nondeterminism requires a
// seeded package to stay off time.Now and the global rand).
func (t *tracer) begin(now float64, track string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.spans = append(t.spans, span{track: track, startMS: now, seq: t.seq})
	return t.seq
}

// add bumps a counter at the given logical time.
func (t *tracer) add(name string, delta float64) {
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// export writes spans ordered by (time, seq) and counters by sorted
// name, so two identical runs produce identical bytes.
func (t *tracer) export(w io.Writer) error {
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	t.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool {
		// Exact float comparison as a tie-break: the same operand pair
		// is ordered with < first, which floateq recognizes as a
		// three-way comparator.
		if spans[i].startMS != spans[j].startMS {
			return spans[i].startMS < spans[j].startMS
		}
		return spans[i].seq < spans[j].seq
	})
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "%s %v %d\n", s.track, s.startMS, s.seq); err != nil {
			return err
		}
	}
	// Map iteration over collected-then-sorted keys: the maporder idiom.
	sort.Strings(names)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s=%v\n", name, t.counters[name]); err != nil {
			return err
		}
	}
	return nil
}
