// Fixture for the lockbalance analyzer.
package lockbalance

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (b *box) leaks() {
	b.mu.Lock() // want `b\.mu\.Lock with no Unlock`
	b.n++
}

func (b *box) balancedDefer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) balancedInline() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) readLeaks() int {
	b.rw.RLock() // want `b\.rw\.RLock with no RUnlock`
	return b.n
}

func (b *box) wrongFlavor() {
	b.rw.RLock() // want `b\.rw\.RLock with no RUnlock`
	b.n++
	b.rw.Unlock() // an RLock needs RUnlock, not Unlock
}

func (b *box) goroutineScopes() {
	go func() {
		b.mu.Lock() // want `b\.mu\.Lock with no Unlock`
		b.n++
	}()
	// The outer function holds no lock: balanced.
}

func byValue(b box) int { // want `parameter of byValue copies a lock by value`
	return b.n
}

type wrapper struct{ inner box }

func nested(w wrapper) int { // want `parameter of nested copies a lock by value`
	return w.inner.n
}

func pointerIsFine(b *box) int { return b.n }

func (b *box) suppressedHandoff() {
	//lint:ignore lockbalance fixture exercises the suppression path
	b.mu.Lock()
}
