// Fixture for the nondeterminism analyzer's second scope: the package
// path ("fix/util") is not a seeded package, but a function that accepts
// a *rand.Rand has promised determinism and must not consult the global
// generator or the wall clock.
package util

import (
	"math/rand"
	"time"
)

func shuffleHalf(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	if rand.Intn(2) == 0 { // want `global rand\.Intn in function taking \*rand\.Rand`
		xs[0] = 0
	}
	_ = time.Now() // want `time\.Now in function taking \*rand\.Rand`
}

func freeFunction() int {
	// No *rand.Rand parameter and not a seeded package: out of scope.
	return rand.Intn(10) + int(time.Now().Unix())
}
