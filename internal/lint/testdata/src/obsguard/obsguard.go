// Package obs distills the nil-safe method contract the real
// observability layer keeps: every exported pointer-receiver method
// must no-op on a nil receiver, so disabled instrumentation costs one
// nil check and zero call-site guards.
package obs

// Probe is a tracer-shaped type: nil means disabled.
type Probe struct {
	n     int
	notes []string
}

// Count is guarded: the canonical shape.
func (p *Probe) Count() int {
	if p == nil {
		return 0
	}
	return p.n
}

// Note guards with a compound condition; a nil receiver still takes
// the branch.
func (p *Probe) Note(s string) {
	if p == nil || s == "" {
		return
	}
	p.notes = append(p.notes, s)
}

// Record delegates every receiver use to a guarded method.
func (p *Probe) Record(s string) {
	p.Note(s)
}

// Reset never touches its receiver... except it does, unguarded.
func (p *Probe) Reset() { // want `exported method \(\*Probe\)\.Reset is not nil-safe`
	p.n = 0
	p.notes = nil
}

// Leak reads the receiver with no guard.
func (p *Probe) Leak() int { // want `exported method \(\*Probe\)\.Leak is not nil-safe`
	return p.n
}

// Flip delegates to an unexported method that itself lacks a guard, so
// delegation does not save it.
func (p *Probe) Flip() { // want `exported method \(\*Probe\)\.Flip is not nil-safe`
	p.bump()
}

// bump is unexported: not required to guard, and not a safe delegation
// target either.
func (p *Probe) bump() { p.n++ }

// Snapshot has a value receiver: nil is not a concern.
type Snapshot struct{ N int }

// Total is fine without a guard.
func (s Snapshot) Total() int { return s.N }
