// Fixture distilling the patterns the multi-tenant workload and
// admission layers rely on, type-checked under a seeded import path so
// every analyzer in the suite runs over it. It carries zero `// want`
// comments on purpose: the test asserts the whole file is clean,
// pinning that per-client seeded RNG streams, a largest-remainder count
// split with an exact-float tie-break, token-bucket admission over a
// lazily-populated tenant map, and sorted per-tenant stats rendering
// survive all eight checks without suppressions.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// hash64 is a stand-in for the repo's token hash: a client's RNG seed
// is a pure function of (spec seed, client ID), never of list position.
func hash64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// clientSeed derives a client's private seed; the empty ID keeps the
// spec seed verbatim (the legacy single-stream path).
func clientSeed(specSeed int64, id string) int64 {
	if id == "" {
		return specSeed
	}
	return specSeed ^ int64(hash64(id))
}

type client struct {
	id       string
	tenant   string
	fraction float64
}

// splitCounts divides count across clients by largest remainder. Ties
// break on client ID — the comparator's exact-float inequality is the
// point: equal remainders must fall through to the ID, not flap on
// epsilon.
func splitCounts(clients []client, count int) []int {
	sum := 0.0
	for _, c := range clients {
		sum += c.fraction
	}
	counts := make([]int, len(clients))
	type rem struct {
		frac float64
		id   string
		idx  int
	}
	rems := make([]rem, len(clients))
	assigned := 0
	for i, c := range clients {
		exact := float64(count) * c.fraction / sum
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{frac: exact - math.Floor(exact), id: c.id, idx: i}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].id < rems[j].id
	})
	for k := 0; k < count-assigned; k++ {
		counts[rems[k%len(rems)].idx]++
	}
	return counts
}

type arrival struct {
	atMS   float64
	client string
	seq    int
}

// generate draws every client's stream from its private seeded RNG and
// merges by (arrival, client, seq) — a pure function of spec contents,
// invariant under client list order.
func generate(seed int64, clients []client, count int, ratePerSec float64) []arrival {
	counts := splitCounts(clients, count)
	var merged []arrival
	for ci, c := range clients {
		rng := rand.New(rand.NewSource(clientSeed(seed, c.id)))
		clock := 0.0
		for i := 0; i < counts[ci]; i++ {
			clock += rng.ExpFloat64() / (ratePerSec * c.fraction) * 1000
			merged = append(merged, arrival{atMS: clock, client: c.id, seq: i})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.atMS != b.atMS {
			return a.atMS < b.atMS
		}
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	return merged
}

// bucket is one tenant's token-bucket state on the logical clock — no
// wall time anywhere; refill is driven by the simulation's now.
type bucket struct {
	level     float64
	lastMS    float64
	ratePerMS float64
	burst     float64
}

func (b *bucket) refill(nowMS float64) {
	b.level += (nowMS - b.lastMS) * b.ratePerMS
	if b.level > b.burst {
		b.level = b.burst
	}
	b.lastMS = nowMS
}

// admitter holds lazily-created per-tenant buckets and tallies; the
// maps are only ever read by key during simulation, so their order
// never leaks into results.
type admitter struct {
	buckets  map[string]*bucket
	admitted map[string]int
	rejected map[string]int
}

func newAdmitter() *admitter {
	return &admitter{
		buckets:  make(map[string]*bucket),
		admitted: make(map[string]int),
		rejected: make(map[string]int),
	}
}

func (a *admitter) bucket(tenant string, burst, ratePerMS float64) *bucket {
	b, ok := a.buckets[tenant]
	if !ok {
		b = &bucket{level: burst, burst: burst, ratePerMS: ratePerMS}
		a.buckets[tenant] = b
	}
	return b
}

func (a *admitter) decide(nowMS float64, tenant string, cost float64) bool {
	b := a.bucket(tenant, 30000, 36)
	b.refill(nowMS)
	if b.level < cost {
		a.rejected[tenant]++
		return false
	}
	b.level -= cost
	a.admitted[tenant]++
	return true
}

// render walks the tenant tallies in sorted key order — the collect-
// then-sort idiom that keeps map iteration out of the output.
func (a *admitter) render() (string, error) {
	ids := make([]string, 0, len(a.admitted))
	for t := range a.admitted {
		ids = append(ids, t)
	}
	sort.Strings(ids)
	var sb strings.Builder
	for _, t := range ids {
		if _, err := fmt.Fprintf(&sb, "%s: %d admitted, %d rejected\n",
			t, a.admitted[t], a.rejected[t]); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

// jain is the fairness index over per-tenant allocations; all-zero
// allocations (everyone equally starved) count as perfectly fair.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Replay drives the fixture end to end so nothing is dead code.
func Replay() (string, error) {
	clients := []client{
		{id: "chat", tenant: "chat", fraction: 0.3},
		{id: "bulk-a", tenant: "bulk-a", fraction: 0.45},
		{id: "bulk-b", tenant: "bulk-b", fraction: 0.25},
	}
	adm := newAdmitter()
	served := make(map[string]float64)
	for _, ar := range generate(2501, clients, 300, 90) {
		if adm.decide(ar.atMS, ar.client, 600) {
			served[ar.client] += 600
		}
	}
	xs := make([]float64, 0, len(clients))
	for _, c := range clients { // slice order, not map order
		xs = append(xs, served[c.id]/c.fraction)
	}
	out, err := adm.render()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%sjain=%.4f\n", out, jain(xs)), nil
}
