// Fixture for the floateq analyzer.
package floateq

import "sort"

func exactCompare(a, b float64) bool {
	return a == b // want `exact float == comparison`
}

func exactNotEqual(a float32, b float32) bool {
	return a != b // want `exact float != comparison`
}

func mixedWidths(a float64, b int) bool {
	return a == float64(b) // want `exact float == comparison`
}

func nanTest(x float64) bool {
	return x != x // ok: the standard NaN test
}

func zeroGuard(sum float64) float64 {
	if sum == 0 { // ok: division guard against exact zero
		return 0
	}
	return 1 / sum
}

func constFold() bool {
	const a, b = 0.1, 0.2
	return a+b == 0.3 // ok: compile-time constants compare exactly
}

type item struct {
	score float64
	id    string
}

func tieBreak(items []item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].score != items[j].score { // ok: tie-break, same pair ordered below
			return items[i].score > items[j].score
		}
		return items[i].id < items[j].id
	})
}

func bestScan(items []item) int {
	best := 0
	for i := 1; i < len(items); i++ {
		if items[i].score > items[best].score ||
			(items[i].score == items[best].score && items[i].id < items[best].id) { // ok: three-way scan
			best = i
		}
	}
	return best
}

func suppressed(a, b float64) bool {
	//lint:ignore floateq fixture exercises the suppression path
	return a == b
}
