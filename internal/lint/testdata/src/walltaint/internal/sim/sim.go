// Package sim stands in for the protected discrete-event engine: its
// import path matches the seeded scope, so tainted calls crossing into
// it must be flagged — with the witness chain in the message.
package sim

import "fix/util"

// State carries the simulated clock the clean path uses.
type State struct{ Now float64 }

// Stamp launders a wall-clock read through one cross-package hop.
func Stamp() int64 {
	return util.StampNow() // want `call to util\.StampNow reaches time\.Now \(util\.StampNow → time\.Now\)`
}

// Measure launders it through two hops.
func Measure() float64 {
	return util.Elapsed() // want `call to util\.Elapsed reaches time\.Now \(util\.Elapsed → util\.StampNow → time\.Now\)`
}

// Advance is clean: the clock value is injected by the caller.
func (s *State) Advance(dt float64) float64 {
	s.Now += dt
	return util.FromClock(s.Now)
}
