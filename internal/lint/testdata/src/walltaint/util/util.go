// Package util is the unprotected helper package a wall-clock read
// launders through: nothing here is seeded-scope, so the intra-package
// nondeterminism analyzer stays silent about all of it.
package util

import "time"

// StampNow is the laundering wrapper: one line, and no time.Now appears
// at any seeded call site.
func StampNow() int64 { return time.Now().UnixNano() }

// Elapsed adds a second hop to the chain.
func Elapsed() float64 { return float64(StampNow()) / 1e9 }

// FromClock is the clean shape: the caller injects the clock reading.
func FromClock(now float64) float64 { return now * 2 }
