// Fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
)

func unsortedAccumulate(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration without a later sort`
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func sortSliceVariant(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // ok: sort.Slice below mentions vals
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func printsInsideRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside map iteration prints in randomized order`
	}
}

func innerSliceIsFine(m map[string][]int) []int {
	var out []int
	for k := range m {
		var local []int
		local = append(local, len(k)) // ok: rebuilt every iteration
		out = local
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore maporder fixture exercises the suppression path
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // ok: slices iterate in order
	}
	return out
}
