// Fixture distilling the patterns internal/resilient and
// internal/faults rely on, type-checked under a seeded import path so
// every analyzer in the suite runs over it. It carries zero `// want`
// comments on purpose: the test asserts the whole file is clean,
// pinning that a breaker-style mutex discipline, seeded-hash jitter,
// and waste accounting survive all five checks without suppressions.
package resilient

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// hash64 is a stand-in for the repo's seeded token hash: determinism
// comes from hashing the inputs, never from math/rand or the clock.
func hash64(s string, seed uint64) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// jitter draws a deterministic uniform in [0,1) from (key, attempt,
// seed) — the only randomness a resilience policy is allowed.
func jitter(key string, attempt int, seed uint64) float64 {
	h := hash64(fmt.Sprintf("%s\x00%d", key, attempt), seed)
	return float64(h>>11) / float64(1<<53)
}

// backoffFor is capped exponential backoff with seeded equal-jitter.
func backoffFor(base, maxMS float64, key string, attempt int, seed uint64) float64 {
	b := base
	for i := 1; i < attempt; i++ {
		b *= 2
		if b >= maxMS {
			b = maxMS
			break
		}
	}
	return b/2 + (b/2)*jitter(key, attempt, seed)
}

// breaker mirrors the circuit breaker's locking discipline: every
// method acquires and releases the mutex on all paths.
type breaker struct {
	mu          sync.Mutex
	state       int
	consecFails int
	threshold   int
	clockMS     float64
	openedAtMS  float64
	cooldownMS  float64
}

func (b *breaker) advance(ms float64) {
	b.mu.Lock()
	b.clockMS += ms
	b.mu.Unlock()
}

func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == 1 && b.clockMS-b.openedAtMS >= b.cooldownMS {
		b.state = 2
		return true
	}
	return b.state != 1
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	b.consecFails++
	if b.consecFails >= b.threshold {
		b.state = 1
		b.openedAtMS = b.clockMS
	}
	b.mu.Unlock()
}

// waste demonstrates accumulation with a zero-guard: comparisons
// against constant zero are the one exact float equality floateq
// permits, and this fixture stays inside that boundary.
type waste struct{ latencyMS float64 }

func (w *waste) charge(ms float64) {
	if ms == 0 {
		return
	}
	w.latencyMS += ms
}

// retry runs fn with bounded retries, checking every error it sees.
func retry(maxRetries int, key string, seed uint64, fn func(int) error) (float64, error) {
	var backoffMS float64
	var err error
	for attempt := 0; ; attempt++ {
		err = fn(attempt)
		if err == nil || attempt >= maxRetries {
			return backoffMS, err
		}
		if !errors.Is(err, errRetryable) {
			return backoffMS, err
		}
		backoffMS += backoffFor(50, 2000, key, attempt+1, seed)
	}
}

var errRetryable = errors.New("retryable")

// domainCrash mirrors the correlated fault plan: the instance's
// independent draw fires first, then its rack's — both pure functions
// of (seed, domain, window), so one rack draw takes every member down
// in the same window without any cross-instance communication.
func domainCrash(seed uint64, instance, rackSize, window int, pInst, pRack float64) bool {
	if jitter(fmt.Sprintf("crash\x00%d", instance), window, seed) < pInst {
		return true
	}
	if rackSize <= 0 {
		return false
	}
	return jitter(fmt.Sprintf("rack\x00%d", instance/rackSize), window, seed) < pRack
}

// recoveryTally accumulates crash-to-resume latency with the zero-guard
// discipline: the exact comparison is against constant zero only.
type recoveryTally struct {
	sumMS   float64
	samples int
}

func (t *recoveryTally) add(droppedAtMS, resumedAtMS float64) {
	d := resumedAtMS - droppedAtMS
	if d == 0 {
		return
	}
	t.sumMS += d
	t.samples++
}

func (t *recoveryTally) meanMS() float64 {
	if t.samples == 0 {
		return 0
	}
	return t.sumMS / float64(t.samples)
}

// statsByKind renders a tally map in sorted key order — the maporder
// discipline for anything that reaches output.
func statsByKind(counts map[string]int64) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, counts[k])
	}
	return out
}
