// Fixture distilling the decision-tracing patterns the routed serving
// stack relies on, type-checked under a seeded import path so every
// analyzer in the suite runs over it. It carries zero `// want`
// comments on purpose: the test asserts the whole file is clean,
// pinning that the counterfactual-replay idioms — a nil-safe
// mutex-guarded decision log, a strict-less scored argmin with an
// exact-float tie-break in the rank comparator, fan-out replay with
// per-slot commits and index arguments, and sorted regret-table
// rendering with checked writes — survive all checks without
// //lint:ignore suppressions.
package serving

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// decision is one recorded routing choice: the per-candidate scores and
// the argmin the policy picked at a logical-clock instant. Time is a
// caller-supplied logical value, never a wall-clock read.
type decision struct {
	seq    uint64
	atMS   float64
	scores []float64
	chosen int
}

// decisionLog is an append-only decision record. Every method is
// nil-safe, mirroring the production contract: a run without an
// attached log pays nothing for the instrumentation.
type decisionLog struct {
	mu   sync.Mutex
	decs []decision
}

// record appends d, stamps its 1-based sequence number, and returns it.
func (l *decisionLog) record(d decision) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	d.seq = uint64(len(l.decs)) + 1
	l.decs = append(l.decs, d)
	return d.seq
}

// snapshot returns a copy of the recorded decisions.
func (l *decisionLog) snapshot() []decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]decision(nil), l.decs...)
}

// argmin is the routing tie-break discipline: strict less, so equal
// scores resolve to the lowest candidate index. Scores are
// deterministic functions of the logical clock, so the exact float
// comparison is the contract, not an accident.
func argmin(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return best
}

// ranked orders candidate indexes by (score, index). The != guard keeps
// the comparator total on exact ties without an epsilon, the same
// pattern the trace exporter uses for its (time, seq) sort.
func ranked(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	return order
}

// replay prices each decision's forced alternative concurrently: every
// goroutine receives its index as an argument and commits into its own
// slot, so the result is identical at any interleaving and the serial
// aggregation can walk the slots in decision order.
func replay(decs []decision, run func(seq uint64, rank int) float64) []float64 {
	out := make([]float64, len(decs))
	var wg sync.WaitGroup
	for i := range decs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = run(decs[i].seq, 2)
		}(i)
	}
	wg.Wait()
	return out
}

// render writes the per-decision regret table with map iteration pinned
// to sorted keys and every write error checked.
func render(w io.Writer, regret map[string]float64) error {
	keys := make([]string, 0, len(regret))
	for k := range regret {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %.3f\n", k, regret[k]); err != nil {
			return err
		}
	}
	return nil
}

// priceRun wires the pieces together the way the production replay
// harness does: record a baseline, fan out one forced replay per
// decision, and fold the deltas into a rendered table.
func priceRun(w io.Writer, base func(*decisionLog) float64, forced func(seq uint64, rank int) float64) error {
	dl := &decisionLog{}
	baseTTFT := base(dl)
	decs := dl.snapshot()
	alts := replay(decs, forced)
	regret := make(map[string]float64, len(decs))
	for i, d := range decs {
		regret[fmt.Sprintf("d%04d", d.seq)] = alts[i] - baseTTFT
	}
	return render(w, regret)
}
