// Fixture for the nondeterminism analyzer. The harness type-checks this
// file under the import path "fix/internal/experiments", so the whole
// package counts as seeded code.
package experiments

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time\.Now in seeded package`
	return t.Unix()
}

func sinceToo() float64 {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return time.Since(start).Seconds() // want `time\.Since in seeded package`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in seeded package`
}

func seededRand() int {
	rng := rand.New(rand.NewSource(42)) // constructors are allowed
	return rng.Intn(10)                 // method on *rand.Rand, not the global
}

func suppressed() float64 {
	//lint:ignore nondeterminism fixture exercises the suppression path
	return rand.Float64()
}
