// Fixture distilling the patterns internal/sim and its serving-side
// processes rely on, type-checked under a seeded import path so every
// analyzer in the suite runs over it. It carries zero `// want`
// comments on purpose: the test asserts the whole file is clean,
// pinning that a (time, seq)-ordered event heap, logical-clock
// clamping, seeded fault-window draws, and sorted report rendering
// survive all five checks without suppressions.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// event is one scheduled callback; the heap orders by (time, seq) so
// same-instant events fire in scheduling order.
type event struct {
	time float64
	seq  uint64
	fn   func(now float64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	// Exact float comparison as a tie-break: the same operand pair is
	// ordered with < below, which floateq recognizes as a three-way
	// comparator — either branch of the equality is deterministic.
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// engine is the discrete-event loop: a logical-ms clock that never
// reads wall time — determinism comes from the total order.
type engine struct {
	queue eventHeap
	seq   uint64
	now   float64
}

// at schedules fn at absolute time t, clamping the past to now so the
// clock never runs backwards.
func (e *engine) at(t float64, fn func(now float64)) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

func (e *engine) run() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.time
		ev.fn(ev.time)
	}
}

// hash64 stands in for the repo's seeded token hash: the only
// randomness a fault plan is allowed.
func hash64(s string, seed uint64) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// crashAt draws a pure (seed, instance, window) fault decision — never
// the clock, never math/rand — mirroring serving.FaultPlan.
func crashAt(seed uint64, instance, window int, prob float64) bool {
	h := hash64(fmt.Sprintf("crash\x00%d\x00%d", instance, window), seed)
	return float64(h>>11)/float64(1<<53) < prob
}

// runWindows schedules recurring fault windows on the engine and counts
// the crashes each instance takes.
func runWindows(seed uint64, instances, windows int, widthMS float64) map[int]int {
	crashes := map[int]int{}
	e := &engine{}
	heap.Init(&e.queue)
	for w := 0; w < windows; w++ {
		w := w
		e.at(float64(w)*widthMS, func(now float64) {
			for i := 0; i < instances; i++ {
				if crashAt(seed, i, w, 0.1) {
					crashes[i]++
				}
			}
		})
	}
	e.run()
	return crashes
}

// renderCrashes walks the tally in sorted key order — the maporder
// discipline for anything that reaches output.
func renderCrashes(crashes map[int]int) string {
	keys := make([]int, 0, len(crashes))
	for k := range crashes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%d=%d;", k, crashes[k])
	}
	return out
}

// --- calendar-queue distillation (the engine's production queue) ---

const (
	calBuckets = 8
	calMask    = calBuckets - 1
	calWidth   = 1.0
)

// eventCmp is the (time, seq) three-way comparator shared by the wheel
// buckets and the overflow heap. The exact float equality pairs with
// the ordering comparison below it, which floateq recognizes as a
// deterministic three-way — no tolerance wanted on a total order.
func eventCmp(a, b event) int {
	if a.time != b.time {
		if a.time < b.time {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// calQueue distills the calendar structure: near events hash into wheel
// buckets by truncated (t-base)/width, far-future events wait in the
// overflow heap until the wheel rotates into their epoch.
type calQueue struct {
	base    float64
	cursor  int
	wheel   int
	buckets [calBuckets][]event
	over    eventHeap
}

func (q *calQueue) push(ev event) {
	d := int((ev.time - q.base) / calWidth)
	if d >= calBuckets {
		heap.Push(&q.over, ev)
		return
	}
	if d < 0 {
		d = 0 // clamped events land in the bucket being drained
	}
	q.buckets[(q.cursor+d)&calMask] = append(q.buckets[(q.cursor+d)&calMask], ev)
	q.wheel++
}

// insertSorted places a same-instant kick into the already-sorted tail
// of the draining bucket (sort.Search, shift, write) so zero-delay
// scheduling stays ordered without a re-sort.
func insertSorted(b []event, ev event) []event {
	i := sort.Search(len(b), func(k int) bool { return eventCmp(b[k], ev) > 0 })
	b = append(b, event{})
	copy(b[i+1:], b[i:])
	b[i] = ev
	return b
}

// drainBucket fires the current bucket in (time, seq) order — sorted
// once on first touch, unstable sort made deterministic by unique
// (time, seq) keys — then rotates the wheel one width.
func (q *calQueue) drainBucket(fire func(event)) {
	b := q.buckets[q.cursor]
	sort.Slice(b, func(i, j int) bool { return eventCmp(b[i], b[j]) < 0 })
	for _, ev := range b {
		fire(ev)
	}
	q.wheel -= len(b)
	q.buckets[q.cursor] = b[:0]
	q.cursor = (q.cursor + 1) & calMask
	q.base += calWidth
}

// --- checkpoint/migration distillation (the serving recovery stack) ---

// ckptLedger mirrors the host-side checkpoint store: covered context
// per sequence, with save returning only the newly covered delta so the
// write cost charged to the sim clock is incremental, never the full
// context again.
type ckptLedger struct {
	covered map[string]int
	writes  int
}

func (l *ckptLedger) save(id string, ctx int) int {
	if l.covered == nil {
		l.covered = map[string]int{}
	}
	prev := l.covered[id]
	if ctx <= prev {
		return 0
	}
	l.covered[id] = ctx
	l.writes++
	return ctx - prev
}

// resumeCover is what a crash-rerouted sequence may skip re-prefilling:
// the checkpointed context, capped at the context that actually exists.
func resumeCover(l *ckptLedger, id string, total int) int {
	c := l.covered[id]
	if c > total {
		c = total
	}
	return c
}

// session is a migratable decode in flight.
type session struct {
	id   int
	load int
}

// pickMigration selects the victim deterministically: the session with
// the most remaining work, smallest id on ties — never map order, never
// a random choice.
func pickMigration(running []session, minLoad int) (session, bool) {
	var v session
	found := false
	for _, s := range running {
		if s.load < minLoad {
			continue
		}
		if !found || s.load > v.load || (s.load == v.load && s.id < v.id) {
			v, found = s, true
		}
	}
	return v, found
}

// shipAt schedules a migrated session's arrival after a
// bandwidth-charged delay on the logical clock: tokens × ms/token,
// never wall time.
func shipAt(e *engine, now float64, tokens int, msPerToken float64, deliver func(now float64)) {
	e.at(now+float64(tokens)*msPerToken, deliver)
}
