// Fixture for the uncheckederr analyzer.
package uncheckederr

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, nil }

func noError() int { return 1 }

func discards() {
	mayFail() // want `error result of mayFail is discarded`
	noError() // ok: no error to drop
}

func discardsTuple(f *os.File) {
	f.Close()    // want `error result of f\.Close is discarded`
	twoResults() // want `error result of twoResults is discarded`
}

func handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	_, err := twoResults()
	return err
}

func explicitBlank() {
	_ = mayFail() // ok: visible statement of intent
}

func exemptions(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("stdout errors are not actionable here")
	buf.WriteString("documented to always return nil")
	sb.WriteString("same")
	defer mayFail() // ok: defer results are unobservable
	go mayFail()    // ok: go results are unobservable
}

func suppressed() {
	//lint:ignore uncheckederr fixture exercises the suppression path
	mayFail()
}
