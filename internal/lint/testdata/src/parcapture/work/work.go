// Package work exercises the parcapture analyzer: closures handed to
// the par entry points that mutate captured state, next to every
// accepted idiom.
package work

import (
	"sync"

	"fix/internal/par"
)

// BadSum accumulates into a captured variable: the total depends on
// goroutine interleaving under the real par.
func BadSum(xs []float64) float64 {
	sum := 0.0
	par.ForEach(len(xs), 4, func(i int) {
		sum += xs[i] // want `closure passed to par\.ForEach writes captured "sum" without synchronization`
	})
	return sum
}

// BadAppend grows a captured slice from workers.
func BadAppend(xs []int) []int {
	var out []int
	_ = par.Map(len(xs), 4, func(i int) int {
		out = append(out, xs[i]) // want `closure passed to par\.Map writes captured "out" without synchronization`
		return xs[i]
	})
	return out
}

// BadMapWrite writes a captured map: concurrent map writes fault even
// on disjoint keys.
func BadMapWrite(xs []int) map[int]int {
	m := map[int]int{}
	par.ForEach(len(xs), 4, func(i int) {
		m[i] = xs[i] // want `closure passed to par\.ForEach writes captured "m" without synchronization`
	})
	return m
}

// BadCount uses ++ on a captured counter inside a Reduce shard.
func BadCount(xs []int) int {
	seen := 0
	return par.Reduce(len(xs), 4, func(_, lo, hi int) int {
		seen++ // want `closure passed to par\.Reduce writes captured "seen" without synchronization`
		return hi - lo
	}, func(acc, part int) int { return acc + part })
}

// GoodSlots writes disjoint per-index slots: deterministic by
// construction.
func GoodSlots(xs []int) []int {
	out := make([]int, len(xs))
	par.ForEach(len(xs), 4, func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// GoodChunks writes only chunk-local slots through a closure-local
// index.
func GoodChunks(xs []int) []int {
	out := make([]int, len(xs))
	_ = par.MapChunks(len(xs), 4, func(_, lo, hi int) int {
		for j := lo; j < hi; j++ {
			out[j] = xs[j] + 1
		}
		return hi - lo
	})
	return out
}

// GoodLocked synchronizes: commit order is the author's design, not the
// analyzer's call.
func GoodLocked(xs []int) int {
	var mu sync.Mutex
	total := 0
	par.ForEach(len(xs), 4, func(i int) {
		mu.Lock()
		total += xs[i]
		mu.Unlock()
	})
	return total
}

// GoodReturn commits through return values, the canonical idiom.
func GoodReturn(xs []int) []int {
	return par.Map(len(xs), 4, func(i int) int { return xs[i] * 3 })
}

// GoodGrid mirrors sim.Sweep's per-cell slot write: the closure derives
// its grid coordinates from the cell index it was handed and commits
// only to out[cell], so a parameter sweep is deterministic at any
// worker count.
func GoodGrid(dims []int, workers int) []int {
	cells := 1
	for _, d := range dims {
		cells *= d
	}
	out := make([]int, cells)
	par.ForEach(cells, workers, func(cell int) {
		rem, sum := cell, 0
		for i := len(dims) - 1; i >= 0; i-- {
			sum += rem % dims[i]
			rem /= dims[i]
		}
		out[cell] = sum
	})
	return out
}
