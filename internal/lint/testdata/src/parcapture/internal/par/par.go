// Package par is a serial stand-in for the real deterministic parallel
// layer: same signatures, so the parcapture analyzer sees the exact
// call shapes the hot paths use.
package par

// Map runs fn(i) for i in [0, n) and commits results by slot.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

// ForEach is Map without results.
func ForEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// MapChunks hands fn one contiguous chunk per worker.
func MapChunks[T any](n, workers int, fn func(chunk, lo, hi int) T) []T {
	return []T{fn(0, 0, n)}
}

// Reduce folds MapChunks partials in shard order.
func Reduce[T any](n, workers int, shardFn func(shard, lo, hi int) T, merge func(acc, part T) T) T {
	parts := MapChunks(n, workers, shardFn)
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = merge(acc, p)
	}
	return acc
}
