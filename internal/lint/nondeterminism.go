package lint

import (
	"go/ast"
	"strings"
)

// The nondeterminism analyzer enforces the repo's core reproducibility
// invariant: simulator and experiment code must be a pure function of its
// seeds. It flags wall-clock reads (time.Now, time.Since) and calls to
// math/rand's global, process-seeded top-level functions in two scopes:
//
//   - any package under internal/experiments, internal/llm,
//     internal/serving, internal/sim, or internal/training (the seeded
//     simulators, the discrete-event engine they run on, and the
//     experiment harness that EXPERIMENTS.md's numbers come from), and
//   - any function, in any package, that takes a *rand.Rand parameter —
//     accepting a seeded source is a promise to use only that source.
//
// rand.New and rand.NewSource are the deterministic constructors and are
// always allowed.

// seededPkgFragments are the import-path fragments whose packages must be
// deterministic end to end.
var seededPkgFragments = []string{
	"internal/experiments",
	"internal/faults",
	"internal/llm",
	"internal/obs",
	"internal/resilient",
	"internal/serving",
	"internal/sim",
	"internal/training",
}

// randConstructors are the math/rand functions that build seeded
// generators rather than consult the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func init() {
	Register(&Analyzer{
		Name: "nondeterminism",
		Doc:  "wall-clock reads and global math/rand calls in seeded code paths",
		Run:  runNondeterminism,
	})
}

func inSeededPackage(importPath string) bool {
	for _, frag := range seededPkgFragments {
		if strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}

// takesRand reports whether fn declares a parameter of type *rand.Rand
// (math/rand or math/rand/v2).
func takesRand(p *Package, fn ast.Node) bool {
	var params *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		params = f.Type.Params
	case *ast.FuncLit:
		params = f.Type.Params
	default:
		return false
	}
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := p.typeOf(field.Type)
		if t == nil {
			continue
		}
		if s := t.String(); s == "*math/rand.Rand" || s == "*math/rand/v2.Rand" {
			return true
		}
	}
	return false
}

func runNondeterminism(pass *Pass) {
	p := pass.Pkg
	seededPkg := inSeededPackage(p.ImportPath)
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			path, name, ok := p.pkgCall(call)
			if !ok {
				return
			}
			seededFn := false
			if !seededPkg {
				if fn := enclosingFunc(stack); fn == nil || !takesRand(p, fn) {
					return
				}
				seededFn = true
			}
			scope := "seeded package"
			if seededFn {
				scope = "function taking *rand.Rand"
			}
			switch path {
			case "time":
				if name == "Now" || name == "Since" || name == "Until" {
					pass.Reportf(call.Pos(),
						"time.%s in %s breaks seed reproducibility; inject a clock or a deterministic cost model", name, scope)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(call.Pos(),
						"global rand.%s in %s is process-seeded; plumb a seeded *rand.Rand instead", name, scope)
				}
			}
		})
	}
}
