package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The obsguard analyzer enforces the observability layer's zero-cost-off
// contract. internal/obs promises that a nil *Tracer, *Registry, or
// *Metric no-ops every method, which is what lets the serving and LLM
// call paths stay instrumented unconditionally — no `if tracer != nil`
// noise at ten call sites per request, no overhead when tracing is off.
// One exported method that forgets the guard turns every untraced run
// into a nil-pointer crash, found only on the first untraced execution
// of that path.
//
// The analyzer applies to packages under internal/obs. An exported
// method with a pointer receiver must be nil-safe, which it is when
// either:
//
//   - its first statement is the guard `if recv == nil { ... }`, or
//   - every use of the receiver in its body is a call to another
//     nil-safe method of the same package (delegation, e.g.
//     Counter → metric), computed to a fixpoint so chains work.
//
// Methods that never touch their receiver are trivially safe.
// Unexported methods are not required to guard (they run behind an
// exported guard, often under its lock) but count as safe delegation
// targets when they do.
//
// The finding carries a suggested fix inserting the guard with
// zero-value returns when those are mechanically derivable.

func init() {
	Register(&Analyzer{
		Name: "obsguard",
		Doc:  "exported pointer-receiver methods in internal/obs missing the nil-receiver guard",
		Run:  runObsGuard,
	})
}

// obsGuardScope reports whether the package's methods must be nil-safe.
func obsGuardScope(importPath string) bool {
	return strings.Contains(importPath, "internal/obs")
}

// method is one pointer-receiver method declaration under analysis.
type obsMethod struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	recvName string
	recvObj  types.Object
	safe     bool
}

func runObsGuard(pass *Pass) {
	p := pass.Pkg
	if !obsGuardScope(p.ImportPath) {
		return
	}

	// Collect every pointer-receiver method on package-local types.
	methods := map[*types.Func]*obsMethod{}
	var order []*obsMethod
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if _, isPtr := fd.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			m := &obsMethod{decl: fd, obj: fn}
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				m.recvName = names[0].Name
				m.recvObj = p.Info.Defs[names[0]]
			}
			methods[fn] = m
			order = append(order, m)
		}
	}

	// Pass 1: directly safe — leading guard, or receiver never used.
	for _, m := range order {
		if hasNilGuard(m) || m.recvObj == nil || !p.mentionsObject(m.decl.Body, m.recvObj) {
			m.safe = true
		}
	}
	// Fixpoint: safe by delegation to safe same-package methods.
	for changed := true; changed; {
		changed = false
		for _, m := range order {
			if !m.safe && delegatesSafely(p, m, methods) {
				m.safe = true
				changed = true
			}
		}
	}

	for _, m := range order {
		if m.safe || !m.decl.Name.IsExported() {
			continue
		}
		recvType := "receiver"
		if t := p.typeOf(m.decl.Recv.List[0].Type); t != nil {
			recvType = t.String()
			if i := strings.LastIndex(recvType, "."); i >= 0 {
				recvType = "*" + recvType[i+1:]
			}
		}
		msg := fmt.Sprintf("exported method (%s).%s is not nil-safe: add the leading `if %s == nil` guard that keeps disabled instrumentation zero-cost",
			recvType, m.decl.Name.Name, m.recvName)
		if fix, ok := nilGuardFix(p, m); ok {
			pass.ReportFix(m.decl.Pos(), fix, "%s", msg)
		} else {
			pass.Reportf(m.decl.Pos(), "%s", msg)
		}
	}
}

// hasNilGuard reports whether the method's first statement is
// `if recv == nil { ... }` — including conditions where the nil test is
// one disjunct of an || chain (`if t == nil || ref == 0`): a nil
// receiver still takes the guard branch.
func hasNilGuard(m *obsMethod) bool {
	if m.recvName == "" || len(m.decl.Body.List) == 0 {
		return false
	}
	ifs, ok := m.decl.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return condImpliesNilTest(ifs.Cond, m.recvName)
}

// condImpliesNilTest reports whether cond is `recv == nil` (either
// operand order) or an || whose either side is.
func condImpliesNilTest(cond ast.Expr, recvName string) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LOR:
		return condImpliesNilTest(bin.X, recvName) || condImpliesNilTest(bin.Y, recvName)
	case token.EQL:
		isRecv := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == recvName
		}
		isNil := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
	}
	return false
}

// delegatesSafely reports whether every use of the receiver in m's body
// is as the receiver of a call to a method currently known safe.
func delegatesSafely(p *Package, m *obsMethod, methods map[*types.Func]*obsMethod) bool {
	if m.recvObj == nil {
		return false
	}
	ok := true
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if !ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if isCall {
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && p.Info.Uses[id] == m.recvObj {
					callee, _ := p.Info.Uses[sel.Sel].(*types.Func)
					if dm := methods[callee]; dm != nil && dm.safe {
						// recv.SafeMethod(args...): the receiver use is
						// delegated; still scan the arguments.
						for _, arg := range call.Args {
							ast.Inspect(arg, visit)
						}
						return false
					}
				}
			}
		}
		if id, isID := n.(*ast.Ident); isID && p.Info.Uses[id] == m.recvObj {
			ok = false
			return false
		}
		return true
	}
	ast.Inspect(m.decl.Body, visit)
	return ok
}

// nilGuardFix builds the edit inserting `if recv == nil { return <zeros> }`
// as the method's first statement. It declines when a result type has no
// mechanically-derivable zero expression.
func nilGuardFix(p *Package, m *obsMethod) (SuggestedFix, bool) {
	if m.recvName == "" {
		return SuggestedFix{}, false
	}
	ret := "return"
	results := m.decl.Type.Results
	if results != nil && results.NumFields() > 0 {
		named := true
		var zeros []string
		for _, field := range results.List {
			if len(field.Names) == 0 {
				named = false
			}
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			z, ok := zeroExpr(p.typeOf(field.Type))
			if !ok {
				return SuggestedFix{}, false
			}
			for i := 0; i < n; i++ {
				zeros = append(zeros, z)
			}
		}
		if !named {
			ret = "return " + strings.Join(zeros, ", ")
		}
	}
	insert := p.Fset.Position(m.decl.Body.Lbrace).Offset + 1
	text := fmt.Sprintf("\n\tif %s == nil {\n\t\t%s\n\t}", m.recvName, ret)
	return SuggestedFix{
		Message: "insert nil-receiver guard",
		Edits:   []TextEdit{{Filename: p.Fset.Position(m.decl.Pos()).Filename, Start: insert, End: insert, NewText: text}},
	}, true
}

// zeroExpr renders the zero value of t as an expression, or ok=false
// when none is mechanically safe to synthesize.
func zeroExpr(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsBoolean != 0:
			return "false", true
		case u.Info()&types.IsNumeric != 0:
			return "0", true
		case u.Info()&types.IsString != 0:
			return `""`, true
		}
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "nil", true
	case *types.Struct:
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Name() + "{}", true
		}
	}
	return "", false
}
